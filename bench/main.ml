(* Benchmark harness: reproduces every table and figure of the paper's
   evaluation (default) and runs Bechamel micro-benchmarks of the core
   primitives.

   Usage:
     dune exec bench/main.exe                  -- everything, full size
     dune exec bench/main.exe -- --scale 4     -- quarter-size workloads
     dune exec bench/main.exe -- --only fig10  -- a single experiment
     dune exec bench/main.exe -- --micro-only  -- just the micro-benchmarks
     dune exec bench/main.exe -- --no-micro    -- just the paper experiments
     dune exec bench/main.exe -- --json out.json -- also dump the metrics
                                                    registry as JSON *)

module Registry = Workload.Registry

(* ---- micro-benchmarks ---- *)

module Micro = struct
  open Bechamel
  open Toolkit

  module Ts = Topology.Transit_stub
  module Oracle = Topology.Oracle
  module Can_overlay = Can.Overlay
  module Ecan_exp = Ecan.Expressway
  module Hilbert = Geometry.Hilbert
  module Point = Geometry.Point
  module Store = Softstate.Store
  module Rng = Prelude.Rng

  (* Shared fixtures, built once. *)
  let oracle =
    lazy (Oracle.build (Ts.generate (Rng.create 9) (Ts.tsk_large ~latency:Ts.Manual ~scale:4 ())))

  let overlay =
    lazy
      (let rng = Rng.create 10 in
       let can = Can_overlay.create ~dims:2 0 in
       for id = 1 to 1023 do
         ignore (Can_overlay.join can id (Point.random rng 2))
       done;
       let e = Ecan_exp.create ~span_bits:2 can in
       let sel = Rng.create 11 in
       Ecan_exp.build_tables e ~selector:(fun ~node:_ ~region:_ ~candidates ->
           Some (Rng.pick sel candidates));
       e)

  let store_fixture =
    lazy
      (let e = Lazy.force overlay in
       let can = Ecan_exp.can e in
       let o = Lazy.force oracle in
       let lms = Landmark.Landmarks.choose (Rng.create 12) o 15 in
       let scheme =
         Landmark.Number.default_scheme
           ~max_latency:(Landmark.Number.calibrate_max_latency o (Landmark.Landmarks.nodes lms))
           ()
       in
       let store = Store.create ~scheme can in
       let vectors = Hashtbl.create 1024 in
       Array.iter
         (fun node ->
           let v = Landmark.Landmarks.vector lms node in
           Hashtbl.replace vectors node v;
           Store.publish_all store ~span_bits:2 ~node ~vector:v)
         (Can_overlay.node_ids can);
       (store, vectors))

  let tests () =
    let o = Lazy.force oracle in
    let e = Lazy.force overlay in
    let can = Ecan_exp.can e in
    let store, vectors = Lazy.force store_fixture in
    let n = Oracle.node_count o in
    let rng = Rng.create 13 in
    let members = Can_overlay.node_ids can in
    let some_vector = Hashtbl.find vectors members.(0) in
    [
      Test.make ~name:"hilbert-encode-3d"
        (Staged.stage (fun () -> Hilbert.index_of_coords ~bits:8 [| 17; 201; 96 |]));
      Test.make ~name:"hilbert-decode-3d"
        (Staged.stage (fun () -> Hilbert.coords_of_index ~bits:8 ~dims:3 123_456));
      Test.make ~name:"zcurve-encode-3d"
        (Staged.stage (fun () -> Geometry.Zcurve.index_of_coords ~bits:8 [| 17; 201; 96 |]));
      Test.make ~name:"oracle-distance"
        (Staged.stage (fun () -> Oracle.dist o (Rng.int rng n) (Rng.int rng n)));
      Test.make ~name:"can-route-1k"
        (Staged.stage (fun () ->
             Can_overlay.route can ~src:(Rng.pick rng members) (Point.random rng 2)));
      Test.make ~name:"ecan-route-1k"
        (Staged.stage (fun () ->
             Ecan_exp.route e ~src:(Rng.pick rng members) (Point.random rng 2)));
      Test.make ~name:"softstate-lookup"
        (Staged.stage (fun () ->
             Store.lookup store ~region:[||] ~vector:some_vector ~max_results:16 ~ttl:2 ()));
      Test.make ~name:"can-owner-of"
        (Staged.stage (fun () -> Can_overlay.owner_of can (Point.random rng 2)));
      Test.make ~name:"fault-plan"
        (Staged.stage (fun () ->
             let f = Engine.Faults.create ~seed:(Rng.int rng 1_000_000) () in
             Engine.Faults.plan f Engine.Faults.default_storm));
    ]

  let run ppf =
    Format.fprintf ppf "@.>>> micro — Bechamel micro-benchmarks of core primitives@.";
    let test = Test.make_grouped ~name:"micro" ~fmt:"%s %s" (tests ()) in
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
    let raw = Benchmark.all cfg instances test in
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
    let results =
      Analyze.merge ols instances (List.map (fun i -> Analyze.all ols i raw) instances)
    in
    let rows = ref [] in
    Hashtbl.iter
      (fun _measure tbl ->
        Hashtbl.iter
          (fun name ols_result ->
            match Analyze.OLS.estimates ols_result with
            | Some (t :: _) -> rows := (name, t) :: !rows
            | Some [] | None -> ())
          tbl)
      results;
    List.iter
      (fun (name, t) -> Format.fprintf ppf "  %-28s %12.1f ns/op@." name t)
      (List.sort compare !rows);
    Format.pp_print_flush ppf ()
end

let () =
  let scale = ref 1 in
  let only = ref None in
  let micro = ref true in
  let paper = ref true in
  let json = ref None in
  let args = Array.to_list Sys.argv in
  let rec parse = function
    | [] -> ()
    | "--scale" :: v :: rest ->
      (match int_of_string_opt v with
      | Some s when s >= 1 -> scale := s
      | Some _ | None ->
        Format.eprintf "bad --scale %S: expected a positive integer (e.g. --scale 4)@." v;
        exit 2);
      parse rest
    | "--only" :: v :: rest ->
      only := Some v;
      parse rest
    | "--json" :: v :: rest ->
      json := Some v;
      parse rest
    | "--micro-only" :: rest ->
      paper := false;
      parse rest
    | "--no-micro" :: rest ->
      micro := false;
      parse rest
    | _ :: rest -> parse rest
  in
  parse args;
  let ppf = Format.std_formatter in
  (match (!paper, !only) with
  | false, _ -> ()
  | true, Some id ->
    (match Registry.find id with
    | Some e -> e.Registry.run ~scale:!scale ppf
    | None ->
      Format.fprintf ppf "unknown experiment %S; known:@." id;
      List.iter (fun e -> Format.fprintf ppf "  %s@." e.Registry.name) Registry.all;
      exit 1)
  | true, None -> Registry.run_all ~scale:!scale ppf);
  if !micro && !only = None then Micro.run ppf;
  (* The experiments record into the process-global registry as they run;
     the dump is deterministic (sorted instruments, fixed float format),
     so same-seed runs produce byte-identical files. *)
  match !json with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Prelude.Json.to_string (Engine.Metrics.to_json Engine.Metrics.global));
    output_char oc '\n';
    close_out oc;
    Format.fprintf ppf "metrics written to %s@." path
