(* Regression gate for the bench metrics snapshot: diff a fresh
   [bench --json] dump against the checked-in baseline.

   Counters must match exactly — the whole simulation is deterministic
   from its seeds, so any drift in an event count is a behaviour change,
   not noise.  Gauges and histogram statistics are floats derived from
   latency arithmetic and may legitimately move a little under compiler
   or libm changes; they must agree within a relative tolerance.
   Instruments present in one file but not the other fail the gate, so
   adding, renaming or dropping an instrument forces a deliberate
   baseline refresh rather than slipping through silently.

   Usage: compare.exe BASELINE FRESH [--tolerance T]
   Exit status: 0 match, 1 regression, 2 usage/parse error. *)

module Json = Prelude.Json

let usage () =
  prerr_endline "usage: compare.exe BASELINE FRESH [--tolerance T]";
  exit 2

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("bench-compare: " ^ s); exit 2) fmt

let load ~role path =
  if not (Sys.file_exists path) then
    fail
      "%s file %S does not exist%s" role path
      (if role = "baseline" then
         "\n\
          \  (checked-in baselines live at the repo root; generate one with:\n\
          \      dune exec bench/main.exe -- --no-micro [--only EXP] --scale 8 --json FILE)"
       else "");
  let ic = try open_in_bin path with Sys_error e -> fail "%s" e in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Json.of_string s with
  | Ok j -> j
  | Error e -> fail "%s: parse error: %s" path e

(* Instrument identity: name + the (deterministically printed) labels. *)
let key_of obj =
  match (Json.member "name" obj, Json.member "labels" obj) with
  | Some (Json.String n), Some l -> n ^ " " ^ Json.to_string l
  | _ -> fail "instrument missing name/labels: %s" (Json.to_string obj)

let section name j =
  match Json.member name j with
  | Some (Json.List l) -> List.map (fun o -> (key_of o, o)) l
  | _ -> fail "snapshot has no %S section" name

let int_field name obj =
  match Option.map Json.to_int_opt (Json.member name obj) with
  | Some (Some v) -> v
  | _ -> fail "instrument missing int field %S: %s" name (Json.to_string obj)

(* Non-finite floats print as [null]; read them back as nan so that
   nan-vs-nan compares as unchanged. *)
let float_field name obj =
  match Json.member name obj with
  | Some (Json.Float f) -> f
  | Some (Json.Int i) -> float_of_int i
  | Some Json.Null -> Float.nan
  | _ -> fail "instrument missing float field %S: %s" name (Json.to_string obj)

let close ~tol a b =
  (Float.is_nan a && Float.is_nan b)
  || a = b
  || Float.abs (a -. b) <= tol *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let () =
  let baseline = ref None and fresh = ref None and tol = ref 0.05 in
  let rec parse = function
    | [] -> ()
    | "--tolerance" :: v :: rest ->
      (match float_of_string_opt v with
      | Some t when t >= 0.0 -> tol := t
      | _ -> fail "--tolerance wants a non-negative float, got %S" v);
      parse rest
    | a :: rest when String.length a > 0 && a.[0] <> '-' ->
      (if !baseline = None then baseline := Some a
       else if !fresh = None then fresh := Some a
       else usage ());
      parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let base_path, fresh_path =
    match (!baseline, !fresh) with Some b, Some f -> (b, f) | _ -> usage ()
  in
  let base = load ~role:"baseline" base_path and cur = load ~role:"fresh snapshot" fresh_path in
  (match (Json.member "schema" base, Json.member "schema" cur) with
  | Some (Json.String a), Some (Json.String b) when a = b -> ()
  | Some (Json.String a), Some (Json.String b) ->
    fail "schema mismatch: baseline %S vs fresh %S (regenerate the baseline)" a b
  | _ -> fail "missing schema field");
  let problems = ref [] in
  let problem fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let compared = ref 0 in
  (* Instrument-set drift is collected separately and printed as one
     grouped, readable diff instead of a mismatch line per instrument. *)
  let removed = ref [] and added = ref [] in
  let diff_section name fields =
    let b = section name base and c = section name cur in
    List.iter
      (fun (k, bo) ->
        match List.assoc_opt k c with
        | None -> removed := (name, k) :: !removed
        | Some co ->
          incr compared;
          List.iter (fun check -> check k bo co) fields)
      b;
    List.iter
      (fun (k, _) ->
        if not (List.mem_assoc k b) then added := (name, k) :: !added)
      c
  in
  (* Allocation-budget section: [alloc_*] counters are exact minor-word
     budgets per hot-path op (the [alloc] experiment).  They obey the
     same exact-integer rule as every counter, but drift is reported as
     an allocation regression in words — and under its own heading — so
     a hot path that starts allocating reads as such, not as generic
     counter noise.  Budgets are toolchain-sensitive: regenerate the
     baseline on a compiler upgrade, never to paper over a regression. *)
  let alloc_compared = ref 0 in
  let is_alloc k =
    String.length k >= 6 && String.sub k 0 6 = "alloc_"
  in
  (* Which experiment registered the instrument: its ("experiment", ...)
     label when present, else the [alloc] experiment (whose counters are
     registered label-free) — so a budget regression names the experiment
     to rerun without opening the JSON. *)
  let experiment_of obj =
    match Json.member "labels" obj with
    | Some labels ->
      (match Json.member "experiment" labels with
      | Some (Json.String e) -> e
      | _ -> "alloc")
    | None -> "alloc"
  in
  let exact_int section_name field k bo co =
    let bv = int_field field bo and cv = int_field field co in
    if section_name = "counter" && is_alloc k then begin
      incr alloc_compared;
      if bv <> cv then
        problem
          "allocation budget [%s] %s: %d -> %d minor words/op (exact match required; rerun \
           with --only %s; see EXPERIMENTS.md)"
          (experiment_of bo) k bv cv (experiment_of bo)
    end
    else if bv <> cv then
      problem "%s %s: %s %d -> %d (exact match required)" section_name k field bv cv
  in
  let close_float section_name field k bo co =
    let bv = float_field field bo and cv = float_field field co in
    if not (close ~tol:!tol bv cv) then
      problem "%s %s: %s %.6g -> %.6g (tolerance %.1f%%)" section_name k field bv cv
        (100.0 *. !tol)
  in
  diff_section "counters" [ exact_int "counter" "value" ];
  diff_section "gauges" [ close_float "gauge" "value" ];
  diff_section "histograms"
    (exact_int "histogram" "count"
    :: List.map
         (fun f -> close_float "histogram" f)
         [ "mean"; "min"; "max"; "p50"; "p90"; "p95"; "p99" ]);
  if !removed <> [] || !added <> [] then begin
    Printf.eprintf "bench-compare: instrument set changed vs %s:\n" base_path;
    let dump sign what entries =
      match List.sort compare entries with
      | [] -> ()
      | es ->
        Printf.eprintf "  %s %s (%d):\n" sign what (List.length es);
        List.iter (fun (sect, k) -> Printf.eprintf "      %s %s\n" sect k) es
    in
    dump "-" "removed (in baseline, missing from fresh run)" !removed;
    dump "+" "added (in fresh run, not in baseline)" !added;
    prerr_endline
      "  deliberate change? regenerate with:\n\
      \      dune exec bench/main.exe -- --no-micro --scale 8 --json BENCH_BASELINE.json\n\
      \  (single-experiment baselines — BENCH_JOIN / _REPAIR / _CACHE / _MCAST / _DEGREE /\n\
      \   _DOMAINS / _BIGSCALE / _ALLOC — regenerate with the matching --only <name> flags\n\
      \   from .github/workflows/ci.yml)";
    problem "instrument set drift: %d removed, %d added" (List.length !removed)
      (List.length !added)
  end;
  match !problems with
  | [] ->
    Printf.printf "bench-compare: OK — %d instruments match %s (tolerance %.1f%%)\n" !compared
      base_path (100.0 *. !tol);
    if !alloc_compared > 0 then
      Printf.printf "bench-compare: allocation budgets held — %d exact minor-word counters\n"
        !alloc_compared;
    exit 0
  | ps ->
    List.iter prerr_endline (List.rev ps);
    Printf.eprintf "bench-compare: %d regression(s) against %s\n" (List.length ps) base_path;
    exit 1
