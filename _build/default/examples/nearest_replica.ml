(* Nearest-replica selection: the paper's motivating use of global
   soft-state outside routing.

   A content service runs replicas on a few overlay nodes.  Each replica
   publishes its landmark vector into the root region's coordinate map.
   A client then finds a nearby replica with ONE map lookup plus a
   handful of RTT probes — no flooding, no central directory.

   Run with:  dune exec examples/nearest_replica.exe *)

module Ts = Topology.Transit_stub
module Oracle = Topology.Oracle
module Can_overlay = Can.Overlay
module Store = Softstate.Store
module Landmarks = Landmark.Landmarks
module Number = Landmark.Number
module Point = Geometry.Point
module Stats = Prelude.Stats
module Rng = Prelude.Rng

let replica_count = 20
let client_count = 200
let probe_budget = 4

let () =
  let rng = Rng.create 7 in
  let topo = Ts.generate rng (Ts.tsk_small ~latency:Ts.Gtitm_random ~scale:8 ()) in
  let oracle = Oracle.build topo in
  let n = Oracle.node_count oracle in
  Format.printf "network: %d nodes; %d replicas; %d clients@." n replica_count client_count;

  (* Overlay of every node; the coordinate map lives on the overlay. *)
  let can = Can_overlay.create ~dims:2 0 in
  for id = 1 to n - 1 do
    ignore (Can_overlay.join can id (Point.random rng 2))
  done;
  let lms = Landmarks.choose rng oracle 12 in
  let scheme =
    Number.default_scheme ~max_latency:(Number.calibrate_max_latency oracle (Landmarks.nodes lms)) ()
  in
  let store = Store.create ~scheme can in
  let vectors = Array.init n (fun node -> Landmarks.vector lms node) in

  (* Replicas publish themselves into the root map. *)
  let all = Array.init n (fun i -> i) in
  let replicas = Rng.sample rng replica_count all in
  Array.iter (fun r -> Store.publish store ~region:[||] ~node:r ~vector:vectors.(r)) replicas;

  (* Clients pick replicas three ways: random, soft-state lookup + RTT
     probes, and the true nearest (omniscient). *)
  let stretch_random = ref [] and stretch_lookup = ref [] and probes_used = ref 0 in
  for _ = 1 to client_count do
    let client = Rng.int rng n in
    let best_possible =
      match Oracle.nearest oracle client replicas with
      | Some (_, d) -> d
      | None -> assert false
    in
    if best_possible > 0.0 then begin
      (* random choice *)
      let r = Rng.pick rng replicas in
      stretch_random := (Oracle.dist oracle client r /. best_possible) :: !stretch_random;
      (* soft-state: one lookup, then probe the top candidates *)
      let entries =
        Store.lookup store ~region:[||] ~vector:vectors.(client) ~max_results:probe_budget
          ~ttl:6 ()
      in
      let chosen =
        List.fold_left
          (fun best (e : Store.Entry.t) ->
            incr probes_used;
            let d = Oracle.measure oracle client e.Store.Entry.node in
            match best with Some (bd, _) when bd <= d -> best | _ -> Some (d, e.Store.Entry.node))
          None entries
      in
      match chosen with
      | Some (d, _) -> stretch_lookup := (d /. best_possible) :: !stretch_lookup
      | None -> ()
    end
  done;
  let summary l = Stats.summarize (Array.of_list l) in
  Format.printf "random replica:     stretch %a@." Stats.pp_summary (summary !stretch_random);
  Format.printf "soft-state lookup:  stretch %a@." Stats.pp_summary (summary !stretch_lookup);
  Format.printf "probes per client:  %.1f (budget %d)@."
    (float_of_int !probes_used /. float_of_int client_count)
    probe_budget
