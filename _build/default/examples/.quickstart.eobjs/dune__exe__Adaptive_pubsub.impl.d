examples/adaptive_pubsub.ml: Array Can Core Ecan Engine Format List Prelude Pubsub Softstate Topology
