examples/quickstart.mli:
