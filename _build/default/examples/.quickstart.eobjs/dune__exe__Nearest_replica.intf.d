examples/nearest_replica.mli:
