examples/overlay_compare.ml: Core Format Prelude Topology Workload
