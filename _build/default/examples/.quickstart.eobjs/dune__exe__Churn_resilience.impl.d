examples/churn_resilience.ml: Array Can Core Ecan Engine Format Hashtbl List Prelude Topology
