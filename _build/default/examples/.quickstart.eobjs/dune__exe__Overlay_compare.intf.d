examples/overlay_compare.mli:
