examples/churn_resilience.mli:
