examples/quickstart.ml: Core Format Prelude Topology
