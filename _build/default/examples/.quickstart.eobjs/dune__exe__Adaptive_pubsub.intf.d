examples/adaptive_pubsub.mli:
