examples/nearest_replica.ml: Array Can Format Geometry Landmark List Prelude Softstate Topology
