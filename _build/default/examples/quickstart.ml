(* Quickstart: build a topology-aware eCAN over a simulated transit-stub
   network and see what proximity-aware neighbor selection buys.

   Run with:  dune exec examples/quickstart.exe *)

module Ts = Topology.Transit_stub
module Oracle = Topology.Oracle
module Builder = Core.Builder
module Strategy = Core.Strategy
module Measure = Core.Measure
module Rng = Prelude.Rng

let () =
  (* 1. A physical network: ~620 nodes of transit-stub hierarchy with the
     paper's manual latencies (20/5/2/1 ms by link class). *)
  let params = Ts.tsk_large ~latency:Ts.Manual ~scale:16 () in
  let topo = Ts.generate (Rng.create 1) params in
  let oracle = Oracle.build topo in
  Format.printf "physical network: %a@." Ts.pp_params params;

  (* 2. An overlay of 300 of those nodes, with landmark+RTT hybrid
     neighbor selection fed by the global soft-state maps. *)
  let config =
    {
      Builder.default_config with
      Builder.overlay_size = 300;
      landmark_count = 12;
      strategy = Strategy.hybrid ~rtts:10 ();
    }
  in
  let overlay = Builder.build oracle config in

  (* 3. Route between random members and compare the accumulated latency
     with the direct shortest path (the "stretch" metric). *)
  let report = Measure.route_stretch ~pairs:600 overlay in
  Format.printf "hybrid selection:   stretch %a@." Prelude.Stats.pp_summary
    report.Measure.stretch;

  (* 4. The same overlay under random neighbor selection, for contrast. *)
  Builder.rebuild_tables overlay Strategy.Random_pick;
  let random = Measure.route_stretch ~pairs:600 overlay in
  Format.printf "random selection:   stretch %a@." Prelude.Stats.pp_summary
    random.Measure.stretch;

  (* 5. And the unreachable ideal: always the physically closest
     representative for every routing-table slot. *)
  Builder.rebuild_tables overlay Strategy.Optimal;
  let optimal = Measure.route_stretch ~pairs:600 overlay in
  Format.printf "optimal selection:  stretch %a@." Prelude.Stats.pp_summary
    optimal.Measure.stretch;

  let cut =
    100.0
    *. (random.Measure.stretch.Prelude.Stats.mean -. report.Measure.stretch.Prelude.Stats.mean)
    /. random.Measure.stretch.Prelude.Stats.mean
  in
  Format.printf "@.The hybrid cuts %.0f%% of the random-selection latency penalty;@." cut;
  Format.printf "the rest of the gap to optimal is the landmark technique's imprecision.@."
