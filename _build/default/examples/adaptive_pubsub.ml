(* Adaptive neighbor selection under load (paper §6, "other uses of
   global state"): a QoS-conscious node subscribes not only to proximity
   information but also to the load statistics of its chosen neighbor.
   When the neighbor reports load above 80% of capacity, the
   notification arrives over the overlay and the node re-selects,
   trading a little network distance for available forwarding capacity.

   Run with:  dune exec examples/adaptive_pubsub.exe *)

module Ts = Topology.Transit_stub
module Oracle = Topology.Oracle
module Builder = Core.Builder
module Strategy = Core.Strategy
module Maintenance = Core.Maintenance
module Bus = Pubsub.Bus
module Store = Softstate.Store
module Ecan_exp = Ecan.Expressway
module Sim = Engine.Sim
module Rng = Prelude.Rng

let () =
  let topo = Ts.generate (Rng.create 3) (Ts.tsk_large ~latency:Ts.Manual ~scale:16 ()) in
  let oracle = Oracle.build topo in
  let sim = Sim.create () in
  let config =
    {
      Builder.default_config with
      Builder.overlay_size = 200;
      landmark_count = 10;
      strategy = Strategy.hybrid ~rtts:8 ();
    }
  in
  let overlay = Builder.build ~clock:(fun () -> Sim.now sim) oracle config in
  let maintenance = Maintenance.start ~sim overlay in
  let bus = Maintenance.bus maintenance in

  (* Pick a watcher and the neighbor its first expressway slot points at. *)
  let ecan = overlay.Builder.ecan in
  let watcher, row, digit, neighbor =
    let found = ref None in
    Array.iter
      (fun id ->
        if !found = None then begin
          match Ecan_exp.entries ecan id with
          | (row, digit, target) :: _ -> found := Some (id, row, digit, target)
          | [] -> ()
        end)
      (Can.Overlay.node_ids (Ecan_exp.can ecan));
    match !found with Some x -> x | None -> failwith "no table entries"
  in
  let region = Ecan_exp.region_prefix ecan watcher ~row ~digit in
  Format.printf "node %d watches its representative %d for region of %d members@." watcher
    neighbor
    (Array.length (Can.Overlay.members_with_prefix (Ecan_exp.can ecan) region));

  (* QoS subscription: tell me when my neighbor runs above 80%% load. *)
  let reselected = ref None in
  let _sub =
    Bus.subscribe bus ~subscriber:watcher ~region
      ~condition:(Bus.Load_above { watched = neighbor; threshold = 0.8 })
      ~handler:(fun n ->
        (* re-select among region members the neighbor with the best
           distance/load trade-off: closest one under 50% load *)
        let candidates =
          Store.region_entries overlay.Builder.store region
          |> List.filter (fun (e : Store.Entry.t) ->
                 e.Store.Entry.load < 0.5 && e.Store.Entry.node <> watcher)
        in
        let best =
          List.fold_left
            (fun best (e : Store.Entry.t) ->
              let d = Oracle.measure oracle watcher e.Store.Entry.node in
              match best with Some (bd, _) when bd <= d -> best | _ -> Some (d, e.Store.Entry.node))
            None candidates
        in
        match best with
        | Some (_, replacement) ->
          Ecan_exp.set_entry ecan watcher ~row ~digit (Some replacement);
          reselected := Some (replacement, n.Bus.delivered_at)
        | None -> ())
  in

  (* Drive the neighbor's load up in steps; each step is published as a
     soft-state update. *)
  List.iteri
    (fun i load ->
      ignore
        (Sim.schedule sim
           ~delay:(float_of_int (i + 1) *. 1000.0)
           (fun () -> Bus.update_load bus ~region ~node:neighbor ~load ~capacity:1.0)))
    [ 0.3; 0.6; 0.85 ];
  (* bounded: maintenance keeps periodic timers alive forever *)
  Sim.run ~until:60_000.0 sim;

  (match !reselected with
  | Some (replacement, at) ->
    Format.printf "load crossed 80%%: notification delivered at t=%.1f ms@." at;
    Format.printf "node %d switched its representative %d -> %d@." watcher neighbor replacement;
    let before = Oracle.dist oracle watcher neighbor in
    let after = Oracle.dist oracle watcher replacement in
    Format.printf "distance %.1f ms -> %.1f ms (traded for spare capacity)@." before after
  | None -> Format.printf "no re-selection happened (unexpected)@.");
  Maintenance.stop maintenance
