(* Generality across overlay families (paper §5): the same landmark+RTT
   selection improves eCAN, Chord and Pastry, because all three leave
   freedom in which member of a region/arc/prefix becomes a routing
   neighbor.

   Run with:  dune exec examples/overlay_compare.exe *)

module Ts = Topology.Transit_stub
module Oracle = Topology.Oracle
module Builder = Core.Builder
module Strategy = Core.Strategy
module Measure = Core.Measure
module Rng = Prelude.Rng

let () =
  let ppf = Format.std_formatter in
  (* eCAN: full soft-state machinery, on a mid-size overlay. *)
  let topo = Ts.generate (Rng.create 5) (Ts.tsk_large ~latency:Ts.Manual ~scale:8 ()) in
  let oracle = Oracle.build topo in
  let b =
    Builder.build oracle
      {
        Builder.default_config with
        Builder.overlay_size = 512;
        landmark_count = 15;
        strategy = Strategy.Random_pick;
      }
  in
  let mean () = (Measure.route_stretch ~pairs:1024 b).Measure.stretch.Prelude.Stats.mean in
  let random = mean () in
  Builder.rebuild_tables b (Strategy.hybrid ~rtts:10 ());
  let hybrid = mean () in
  Builder.rebuild_tables b Strategy.Optimal;
  let optimal = mean () in
  Format.fprintf ppf "eCAN (512 nodes):  random %.3f   hybrid %.3f   optimal %.3f@." random
    hybrid optimal;

  (* Chord and Pastry under the same three policies (the workload module
     drives both and prints its own table). *)
  Workload.Exp_xoverlay.run ~scale:2 ppf
