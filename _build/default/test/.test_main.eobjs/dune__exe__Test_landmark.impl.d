test/test_landmark.ml: Alcotest Array Geometry Hashtbl Landmark Lazy List Prelude Printf QCheck QCheck_alcotest Topology
