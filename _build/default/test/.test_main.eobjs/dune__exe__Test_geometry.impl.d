test/test_geometry.ml: Alcotest Array Geometry Prelude Printf QCheck QCheck_alcotest
