test/test_edges.ml: Alcotest Array Can Chord Core Ecan Engine Geometry Landmark List Option Pastry Prelude Printf Pubsub Softstate String Topology
