test/test_chord.ml: Alcotest Array Chord List Prelude Printf QCheck QCheck_alcotest
