test/test_prelude.ml: Alcotest Array Float List Prelude QCheck QCheck_alcotest
