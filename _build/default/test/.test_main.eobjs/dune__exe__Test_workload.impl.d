test/test_workload.ml: Alcotest Array Buffer Format List Printf String Topology Workload
