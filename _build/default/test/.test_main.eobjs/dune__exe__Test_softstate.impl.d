test/test_softstate.ml: Alcotest Array Can Geometry Landmark List Prelude Printf QCheck QCheck_alcotest Softstate
