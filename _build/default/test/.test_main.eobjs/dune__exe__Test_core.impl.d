test/test_core.ml: Alcotest Array Can Core Ecan Engine Hashtbl Lazy List Prelude Printf Pubsub Softstate Topology
