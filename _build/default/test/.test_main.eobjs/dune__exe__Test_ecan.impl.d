test/test_ecan.ml: Alcotest Array Can Ecan Geometry List Prelude Printf QCheck QCheck_alcotest
