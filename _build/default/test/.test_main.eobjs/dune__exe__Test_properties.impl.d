test/test_properties.ml: Array Can Chord Engine Float Gen Geometry Hashtbl Landmark List Prelude QCheck QCheck_alcotest Softstate Topology
