test/test_extensions.ml: Alcotest Array Can Chord Core Geometry Landmark Lazy List Pastry Prelude Printf Proximity Softstate Topology
