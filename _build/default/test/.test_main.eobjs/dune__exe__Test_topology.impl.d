test/test_topology.ml: Alcotest Array Filename Float Fun List Prelude Printf QCheck QCheck_alcotest String Sys Topology
