test/test_pubsub.ml: Alcotest Array Can Engine Geometry Landmark List Prelude Printf Pubsub Softstate
