test/test_engine.ml: Alcotest Engine List Option
