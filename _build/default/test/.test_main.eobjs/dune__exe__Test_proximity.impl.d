test/test_proximity.ml: Alcotest Array Can Float Geometry Landmark List Prelude Printf Proximity Topology
