test/test_can.ml: Alcotest Array Can Geometry List Prelude QCheck QCheck_alcotest
