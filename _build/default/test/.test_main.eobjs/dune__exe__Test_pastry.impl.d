test/test_pastry.ml: Alcotest Array List Pastry Prelude Printf QCheck QCheck_alcotest
