(* Edge-case tests: boundary conditions across modules that the example
   tests don't reach. *)

module Rng = Prelude.Rng
module Stats = Prelude.Stats
module Heap = Prelude.Heap
module Graph = Topology.Graph
module Zone = Geometry.Zone
module Point = Geometry.Point
module Hilbert = Geometry.Hilbert
module Can_overlay = Can.Overlay
module Ecan_exp = Ecan.Expressway
module Ring = Chord.Ring
module Mesh = Pastry.Mesh
module Number = Landmark.Number
module Store = Softstate.Store
module Sim = Engine.Sim
module Measure = Core.Measure

(* ---- prelude ---- *)

let test_rng_sample_zero () =
  let rng = Rng.create 1 in
  Alcotest.(check (array int)) "k=0 is empty" [||] (Rng.sample rng 0 [| 1; 2; 3 |]);
  Alcotest.check_raises "negative k" (Invalid_argument "Rng.sample: negative k") (fun () ->
      ignore (Rng.sample rng (-1) [| 1 |]))

let test_rng_int_in_singleton () =
  let rng = Rng.create 2 in
  for _ = 1 to 20 do
    Alcotest.(check int) "degenerate range" 5 (Rng.int_in rng 5 5)
  done

let test_rng_float_in_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 200 do
    let v = Rng.float_in rng (-2.0) 3.0 in
    Alcotest.(check bool) "in range" true (v >= -2.0 && v < 3.0)
  done

let test_stats_single_sample () =
  let s = Stats.summarize [| 7.0 |] in
  Alcotest.(check (float 0.0)) "mean" 7.0 s.Stats.mean;
  Alcotest.(check (float 0.0)) "p50" 7.0 s.Stats.p50;
  Alcotest.(check (float 0.0)) "stddev" 0.0 s.Stats.stddev

let test_heap_clear () =
  let h = Heap.create () in
  Heap.push h 1.0 "a";
  Heap.push h 2.0 "b";
  Heap.clear h;
  Alcotest.(check bool) "empty after clear" true (Heap.is_empty h);
  Alcotest.(check bool) "pop on empty" true (Heap.pop h = None)

(* ---- geometry ---- *)

let test_zone_split_dim_cycles () =
  Alcotest.(check int) "depth 0 splits dim 0" 0 (Zone.split_dim_at_depth 3 0);
  Alcotest.(check int) "depth 1 splits dim 1" 1 (Zone.split_dim_at_depth 3 1);
  Alcotest.(check int) "depth 3 wraps" 0 (Zone.split_dim_at_depth 3 3)

let test_zone_1d () =
  let z = Zone.full 1 in
  let l, r = Zone.split z 0 in
  Alcotest.(check bool) "1-d halves are neighbors" true (Zone.is_neighbor l r);
  Alcotest.(check (float 1e-12)) "1-d volume" 0.5 (Zone.volume l)

let test_hilbert_single_bit_dims () =
  (* 1-dimensional Hilbert curve degenerates to the identity. *)
  for i = 0 to 15 do
    Alcotest.(check int) "1-d identity" i (Hilbert.index_of_coords ~bits:4 [| i |])
  done

let test_point_random_in_bounds () =
  let rng = Rng.create 4 in
  for _ = 1 to 100 do
    let p = Point.random rng 3 in
    Array.iter (fun c -> Alcotest.(check bool) "in [0,1)" true (c >= 0.0 && c < 1.0)) p
  done

(* ---- can ---- *)

let test_can_two_nodes_routing () =
  let t = Can_overlay.create ~dims:2 0 in
  ignore (Can_overlay.join t 1 [| 0.9; 0.9 |]);
  (match Can_overlay.route t ~src:0 [| 0.9; 0.9 |] with
  | Some [ 0; 1 ] -> ()
  | Some hops -> Alcotest.failf "unexpected hops %s" (String.concat "," (List.map string_of_int hops))
  | None -> Alcotest.fail "failed");
  match Can_overlay.route_proximity t ~dist:(fun _ _ -> 1.0) ~src:0 [| 0.9; 0.9 |] with
  | Some [ 0; 1 ] -> ()
  | _ -> Alcotest.fail "proximity route differs"

let test_can_join_route_hop_list () =
  let rng = Rng.create 5 in
  let t = Can_overlay.create ~dims:2 0 in
  for id = 1 to 30 do
    let hops = Can_overlay.join t id (Point.random rng 2) in
    Alcotest.(check bool) "join walked at least one node" true (List.length hops >= 1)
  done

let test_can_max_depth_guard () =
  (* Joining the same corner repeatedly must hit the depth guard, not
     loop forever. *)
  let t = Can_overlay.create ~dims:2 0 in
  let p1 = [| 0.0; 0.0 |] in
  let near = [| 1e-12; 1e-12 |] in
  ignore (Can_overlay.join t 1 p1);
  match
    (* split until the zone containing both points cannot split further *)
    let rec go id =
      if id > 100 then None
      else begin
        ignore (Can_overlay.join t id (if id mod 2 = 0 then p1 else near));
        go (id + 1)
      end
    in
    go 2
  with
  | None | Some _ -> Alcotest.fail "expected Failure for max depth"
  | exception Failure msg ->
    Alcotest.(check bool) "depth guard message" true
      (String.length msg > 0 && String.sub msg 0 8 = "Can.join")

(* ---- ecan ---- *)

let test_ecan_routes_deterministic () =
  let rng = Rng.create 6 in
  let t = Can_overlay.create ~dims:2 0 in
  for id = 1 to 100 do
    ignore (Can_overlay.join t id (Point.random rng 2))
  done;
  let e = Ecan_exp.create t in
  let sel = Rng.create 7 in
  Ecan_exp.build_tables e ~selector:(fun ~node:_ ~region:_ ~candidates ->
      Some (Prelude.Rng.pick sel candidates));
  let p = [| 0.123; 0.456 |] in
  Alcotest.(check bool) "same route twice" true
    (Ecan_exp.route e ~src:0 p = Ecan_exp.route e ~src:0 p)

let test_ecan_single_node () =
  let t = Can_overlay.create ~dims:2 0 in
  let e = Ecan_exp.create t in
  Alcotest.(check int) "no rows" 0 (Ecan_exp.rows e 0);
  Alcotest.(check (option (list int))) "route to self" (Some [ 0 ])
    (Ecan_exp.route e ~src:0 [| 0.5; 0.5 |])

(* ---- chord / pastry ---- *)

let test_chord_two_nodes () =
  let rng = Rng.create 8 in
  let t = Ring.create () in
  Ring.add_node t ~rng 0;
  Ring.add_node t ~rng 1;
  Ring.build_fingers t ~selector:(fun ~node:_ ~arc:_ ~candidates -> Some candidates.(0));
  let ring = 1 lsl Ring.key_bits t in
  for _ = 1 to 20 do
    let key = Rng.int rng ring in
    match Ring.route t ~src:0 ~key with
    | Some hops ->
      Alcotest.(check int) "reaches owner" (Ring.successor_node t key)
        (List.nth hops (List.length hops - 1))
    | None -> Alcotest.fail "routing failed"
  done

let test_pastry_route_to_own_id () =
  let rng = Rng.create 9 in
  let t = Mesh.create () in
  for id = 0 to 40 do
    Mesh.add_node t ~rng id
  done;
  Mesh.build_tables t ~selector:(fun ~node:_ ~prefix:_ ~candidates -> Some candidates.(0));
  Array.iter
    (fun id ->
      match Mesh.route t ~src:id ~key:(Mesh.pastry_id t id) with
      | Some [ only ] -> Alcotest.(check int) "self route is trivial" id only
      | Some _ | None -> Alcotest.fail "route to own id not trivial")
    (Mesh.node_ids t)

let test_pastry_empty_prefix_too_long () =
  let t = Mesh.create ~digit_bits:2 ~num_digits:4 () in
  Alcotest.check_raises "prefix too long"
    (Invalid_argument "Pastry.members_with_prefix: prefix too long") (fun () ->
      ignore (Mesh.members_with_prefix t (Array.make 5 0)))

(* ---- softstate ---- *)

let test_store_map_box_fraction () =
  let rng = Rng.create 10 in
  let can = Can_overlay.create ~dims:2 0 in
  for id = 1 to 15 do
    ignore (Can_overlay.join can id (Point.random rng 2))
  done;
  let scheme = Number.default_scheme ~max_latency:100.0 () in
  let check ~condense ~base expected_fraction =
    let store = Store.create ~condense ~base_fraction:base ~scheme can in
    let region = [| 0; 1 |] in
    let region_vol = Zone.volume (Can_overlay.zone_of_path ~dims:2 region) in
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "volume fraction c=%g b=%g" condense base)
      (expected_fraction *. region_vol)
      (Zone.volume (Store.map_box store region))
  in
  check ~condense:1.0 ~base:0.125 0.125;
  check ~condense:4.0 ~base:0.125 0.5;
  check ~condense:100.0 ~base:0.125 1.0

let test_store_host_of_matches_owner () =
  let rng = Rng.create 11 in
  let can = Can_overlay.create ~dims:2 0 in
  for id = 1 to 30 do
    ignore (Can_overlay.join can id (Point.random rng 2))
  done;
  let scheme = Number.default_scheme ~max_latency:100.0 () in
  let store = Store.create ~scheme can in
  for _ = 1 to 50 do
    let v = Array.init 5 (fun _ -> Rng.float rng 100.0) in
    let region = [| Rng.int rng 2; Rng.int rng 2 |] in
    Store.publish store ~region ~node:(Rng.int rng 30) ~vector:v;
    let host = Store.host_of store ~region ~vector:v in
    Alcotest.(check bool) "host is a member" true (Can_overlay.mem can host)
  done

(* ---- pubsub ---- *)

let test_pubsub_unsubscribe_inside_handler () =
  let rng = Rng.create 12 in
  let can = Can_overlay.create ~dims:2 0 in
  for id = 1 to 10 do
    ignore (Can_overlay.join can id (Point.random rng 2))
  done;
  let sim = Sim.create () in
  let scheme = Number.default_scheme ~max_latency:100.0 () in
  let store = Store.create ~clock:(fun () -> Sim.now sim) ~scheme can in
  let bus = Pubsub.Bus.create ~sim store in
  let fired = ref 0 in
  let sub = ref None in
  sub :=
    Some
      (Pubsub.Bus.subscribe bus ~subscriber:1 ~region:[||] ~condition:Pubsub.Bus.Any_new_entry
         ~handler:(fun _ ->
           incr fired;
           Option.iter (Pubsub.Bus.unsubscribe bus) !sub));
  let vec () = Array.init 5 (fun _ -> Rng.float rng 100.0) in
  Pubsub.Bus.publish bus ~region:[||] ~node:2 ~vector:(vec ());
  Sim.run sim;
  Pubsub.Bus.publish bus ~region:[||] ~node:3 ~vector:(vec ());
  Sim.run sim;
  Alcotest.(check int) "self-unsubscribe after first event" 1 !fired

(* ---- measure ---- *)

let test_path_latency_manual () =
  let topo =
    Topology.Transit_stub.generate (Rng.create 13)
      {
        Topology.Transit_stub.transit_domains = 1;
        transit_nodes_per_domain = 1;
        stubs_per_transit_node = 1;
        stub_size = 3;
        extra_domain_edges = 0;
        extra_edge_fraction = 0.0;
        latency = Topology.Transit_stub.Manual;
      }
  in
  let oracle = Topology.Oracle.build topo in
  Alcotest.(check (float 1e-9)) "empty path" 0.0 (Measure.path_latency oracle []);
  Alcotest.(check (float 1e-9)) "single hop path" 0.0 (Measure.path_latency oracle [ 0 ]);
  let d01 = Topology.Oracle.dist oracle 0 1 in
  let d12 = Topology.Oracle.dist oracle 1 2 in
  Alcotest.(check (float 1e-9)) "two hops accumulate" (d01 +. d12)
    (Measure.path_latency oracle [ 0; 1; 2 ])

(* ---- number ---- *)

let test_to_unit_monotone () =
  let scheme = Number.default_scheme ~max_latency:100.0 () in
  let prev = ref (-1.0) in
  for n = 0 to 255 do
    let u = Number.to_unit scheme n in
    Alcotest.(check bool) "monotone in the landmark number" true (u > !prev);
    prev := u
  done

let test_number_rejects_empty_vector () =
  let scheme = Number.default_scheme ~max_latency:100.0 () in
  Alcotest.check_raises "empty vector" (Invalid_argument "Number.normalize: empty vector")
    (fun () -> ignore (Number.number scheme [||]))

(* ---- serialize edge ---- *)

let test_serialize_wrong_version () =
  match Topology.Serialize.of_string "some-other-format-v9\njunk" with
  | Error m ->
    Alcotest.(check bool) "mentions version" true
      (String.length m > 0)
  | Ok _ -> Alcotest.fail "accepted wrong version"

let suite =
  [
    Alcotest.test_case "rng sample k=0" `Quick test_rng_sample_zero;
    Alcotest.test_case "rng degenerate range" `Quick test_rng_int_in_singleton;
    Alcotest.test_case "rng float_in bounds" `Quick test_rng_float_in_bounds;
    Alcotest.test_case "stats single sample" `Quick test_stats_single_sample;
    Alcotest.test_case "heap clear" `Quick test_heap_clear;
    Alcotest.test_case "zone split dim cycles" `Quick test_zone_split_dim_cycles;
    Alcotest.test_case "1-d zones" `Quick test_zone_1d;
    Alcotest.test_case "1-d hilbert is identity" `Quick test_hilbert_single_bit_dims;
    Alcotest.test_case "random points in bounds" `Quick test_point_random_in_bounds;
    Alcotest.test_case "two-node CAN routing" `Quick test_can_two_nodes_routing;
    Alcotest.test_case "join returns its walk" `Quick test_can_join_route_hop_list;
    Alcotest.test_case "max split depth guard" `Quick test_can_max_depth_guard;
    Alcotest.test_case "ecan deterministic routes" `Quick test_ecan_routes_deterministic;
    Alcotest.test_case "ecan single node" `Quick test_ecan_single_node;
    Alcotest.test_case "two-node chord" `Quick test_chord_two_nodes;
    Alcotest.test_case "pastry self-route" `Quick test_pastry_route_to_own_id;
    Alcotest.test_case "pastry prefix validation" `Quick test_pastry_empty_prefix_too_long;
    Alcotest.test_case "map box volume fraction" `Quick test_store_map_box_fraction;
    Alcotest.test_case "host_of returns members" `Quick test_store_host_of_matches_owner;
    Alcotest.test_case "unsubscribe inside handler" `Quick test_pubsub_unsubscribe_inside_handler;
    Alcotest.test_case "path latency accumulation" `Quick test_path_latency_manual;
    Alcotest.test_case "to_unit monotone" `Quick test_to_unit_monotone;
    Alcotest.test_case "number rejects empty vector" `Quick test_number_rejects_empty_vector;
    Alcotest.test_case "serialize wrong version" `Quick test_serialize_wrong_version;
  ]
