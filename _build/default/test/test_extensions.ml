(* Tests for the extension modules: GNP coordinates, the Chord ring map,
   proximity routing, hill climbing, ranked search and hosting stats. *)

module Oracle = Topology.Oracle
module Ts = Topology.Transit_stub
module Coordinates = Landmark.Coordinates
module Landmarks = Landmark.Landmarks
module Number = Landmark.Number
module Ring = Chord.Ring
module Softmap = Chord.Softmap
module Can_overlay = Can.Overlay
module Search = Proximity.Search
module Store = Softstate.Store
module Point = Geometry.Point
module Rng = Prelude.Rng

let topo_params =
  {
    Ts.transit_domains = 3;
    transit_nodes_per_domain = 2;
    stubs_per_transit_node = 2;
    stub_size = 12;
    extra_domain_edges = 2;
    extra_edge_fraction = 0.4;
    latency = Ts.Manual;
  }

let oracle = lazy (Oracle.build (Ts.generate (Rng.create 11) topo_params))

(* ---- coordinates ---- *)

let test_coords_estimate () =
  Alcotest.(check (float 1e-12)) "euclidean" 5.0 (Coordinates.estimate [| 0.0; 0.0 |] [| 3.0; 4.0 |]);
  Alcotest.(check (float 1e-12)) "relative error" 0.5
    (Coordinates.relative_error ~actual:10.0 ~estimated:15.0);
  Alcotest.(check (float 0.0)) "zero actual, zero estimate" 0.0
    (Coordinates.relative_error ~actual:0.0 ~estimated:0.0)

let test_coords_embedding_fits_landmarks () =
  let o = Lazy.force oracle in
  let rng = Rng.create 1 in
  let lms = Landmarks.choose rng o 8 in
  let t = Coordinates.embed_landmarks rng o (Landmarks.nodes lms) in
  Alcotest.(check int) "dims" 5 t.Coordinates.dims;
  (* Embedding error between landmarks should be moderate (<60% median). *)
  let nodes = t.Coordinates.landmark_nodes in
  let errors = ref [] in
  Array.iteri
    (fun i a ->
      Array.iteri
        (fun j b ->
          if i < j then begin
            let actual = Oracle.dist o a b in
            let est =
              Coordinates.estimate t.Coordinates.landmark_coords.(i)
                t.Coordinates.landmark_coords.(j)
            in
            errors := Coordinates.relative_error ~actual ~estimated:est :: !errors
          end)
        nodes)
    nodes;
  let med = Prelude.Stats.percentile (Array.of_list !errors) 50.0 in
  Alcotest.(check bool) (Printf.sprintf "median landmark error %.3f < 0.6" med) true (med < 0.6)

let test_coords_positioning_better_than_chance () =
  let o = Lazy.force oracle in
  let rng = Rng.create 2 in
  let lms = Landmarks.choose rng o 8 in
  let t = Coordinates.embed_landmarks rng o (Landmarks.nodes lms) in
  let n = Oracle.node_count o in
  let coords = Array.init n (fun node -> Coordinates.position_node t rng o node) in
  let errors =
    Array.init 300 (fun _ ->
        let a = Rng.int rng n and b = Rng.int rng n in
        let actual = Oracle.dist o a b in
        if actual > 0.0 then
          Coordinates.relative_error ~actual
            ~estimated:(Coordinates.estimate coords.(a) coords.(b))
        else 0.0)
  in
  let med = Prelude.Stats.percentile errors 50.0 in
  Alcotest.(check bool) (Printf.sprintf "median pair error %.3f < 0.8" med) true (med < 0.8)

(* ---- chord soft map ---- *)

let softmap_fixture ~seed =
  let o = Lazy.force oracle in
  let rng = Rng.create seed in
  let ring = Ring.create () in
  let n = Oracle.node_count o in
  for id = 0 to n - 1 do
    Ring.add_node ring ~rng id
  done;
  let lms = Landmarks.choose rng o 6 in
  let scheme =
    Number.default_scheme ~max_latency:(Number.calibrate_max_latency o (Landmarks.nodes lms)) ()
  in
  let map = Softmap.create ~scheme ring in
  let vectors = Array.init n (fun node -> Landmarks.vector lms node) in
  Array.iteri (fun node vector -> Softmap.publish map ~node ~vector) vectors;
  (o, ring, map, vectors)

let test_softmap_publish_hosts () =
  let _, ring, map, vectors = softmap_fixture ~seed:3 in
  (* every entry is hosted by the successor of its store key *)
  Array.iteri
    (fun node vector ->
      let key = Softmap.store_key_of map vector in
      let host = Ring.successor_node ring key in
      let hosted = Softmap.entries_at map host in
      Alcotest.(check bool)
        (Printf.sprintf "node %d hosted at successor of its landmark key" node)
        true
        (List.exists (fun (e : Softmap.entry) -> e.Softmap.node = node) hosted))
    vectors

let test_softmap_lookup_returns_closest () =
  let _, _, map, vectors = softmap_fixture ~seed:4 in
  let query = vectors.(0) in
  let results = Softmap.lookup map ~vector:query ~max_results:5 () in
  Alcotest.(check bool) "found something" true (results <> []);
  (* results sorted by vector distance *)
  let dists = List.map (fun (e : Softmap.entry) -> Landmarks.vector_dist query e.Softmap.vector) results in
  Alcotest.(check (list (float 1e-9))) "sorted" (List.sort compare dists) dists

let test_softmap_arc_filter () =
  let _, ring, map, vectors = softmap_fixture ~seed:5 in
  let ring_size = 1 lsl Ring.key_bits ring in
  let lo = 0 and span = ring_size / 4 in
  let results = Softmap.lookup map ~vector:vectors.(0) ~in_arc:(lo, span) ~max_results:20 ~ttl:200 () in
  List.iter
    (fun (e : Softmap.entry) ->
      let k = Ring.key_of ring e.Softmap.node in
      Alcotest.(check bool) "owner inside the arc" true (k >= lo && k < lo + span))
    results

let test_softmap_unpublish_and_rehome () =
  let _, ring, map, vectors = softmap_fixture ~seed:6 in
  Softmap.unpublish map 0;
  let results = Softmap.lookup map ~vector:vectors.(0) ~max_results:1000 ~ttl:1000 () in
  Alcotest.(check bool) "unpublished node gone" true
    (not (List.exists (fun (e : Softmap.entry) -> e.Softmap.node = 0) results));
  (* membership churn + rehome keeps hosting consistent *)
  Ring.remove_node ring 1;
  Softmap.rehome map;
  Array.iteri
    (fun node vector ->
      if node > 1 then begin
        let host = Ring.successor_node ring (Softmap.store_key_of map vector) in
        Alcotest.(check bool) "rehomed correctly" true
          (List.exists (fun (e : Softmap.entry) -> e.Softmap.node = node) (Softmap.entries_at map host))
      end)
    vectors

(* ---- pastry prefix map ---- *)

module Pmesh = Pastry.Mesh
module Psoftmap = Pastry.Softmap

let pastry_fixture ~seed =
  let o = Lazy.force oracle in
  let rng = Rng.create seed in
  let mesh = Pmesh.create () in
  let n = Oracle.node_count o in
  for id = 0 to n - 1 do
    Pmesh.add_node mesh ~rng id
  done;
  let lms = Landmarks.choose rng o 6 in
  let scheme =
    Number.default_scheme ~max_latency:(Number.calibrate_max_latency o (Landmarks.nodes lms)) ()
  in
  let map = Psoftmap.create ~scheme mesh in
  let vectors = Array.init n (fun node -> Landmarks.vector lms node) in
  Array.iteri (fun node vector -> Psoftmap.publish_all map ~node ~vector) vectors;
  (o, mesh, map, vectors)

let test_pastry_map_store_ids () =
  let _, mesh, map, vectors = pastry_fixture ~seed:31 in
  (* a store id under prefix P must start with P *)
  let node = 3 in
  let pid = Pmesh.pastry_id mesh node in
  let prefix = Array.init 2 (fun r -> Pmesh.digit mesh pid r) in
  let sid = Psoftmap.store_id_of map ~prefix vectors.(node) in
  for r = 0 to 1 do
    Alcotest.(check int) "store id extends the prefix" prefix.(r) (Pmesh.digit mesh sid r)
  done

let test_pastry_map_lookup_region_only () =
  let _, mesh, map, vectors = pastry_fixture ~seed:32 in
  let node = 5 in
  let pid = Pmesh.pastry_id mesh node in
  let prefix = Array.init 1 (fun r -> Pmesh.digit mesh pid r) in
  let results = Psoftmap.lookup map ~prefix ~vector:vectors.(node) ~max_results:10 ~ttl:50 () in
  Alcotest.(check bool) "found entries" true (results <> []);
  List.iter
    (fun (e : Psoftmap.entry) ->
      let epid = Pmesh.pastry_id mesh e.Psoftmap.node in
      Alcotest.(check int) "entry owner lives in the region" prefix.(0) (Pmesh.digit mesh epid 0))
    results;
  let dists =
    List.map (fun (e : Psoftmap.entry) -> Landmarks.vector_dist vectors.(node) e.Psoftmap.vector) results
  in
  Alcotest.(check (list (float 1e-9))) "sorted by vector distance" (List.sort compare dists) dists

let test_pastry_map_unpublish_rehome () =
  let _, mesh, map, vectors = pastry_fixture ~seed:33 in
  Psoftmap.unpublish map 0;
  let results = Psoftmap.lookup map ~prefix:[||] ~vector:vectors.(0) ~max_results:1000 ~ttl:500 () in
  Alcotest.(check bool) "unpublished gone" true
    (not (List.exists (fun (e : Psoftmap.entry) -> e.Psoftmap.node = 0) results));
  Pmesh.remove_node mesh 1;
  Psoftmap.rehome map;
  (* all surviving entries are hosted on live members *)
  Array.iter
    (fun host ->
      Alcotest.(check bool) "hosts are members" true (Pmesh.mem mesh host || Psoftmap.entries_at map host = []))
    (Pmesh.node_ids mesh)

(* ---- load-aware strategy ---- *)

module Builder = Core.Builder
module Strategy = Core.Strategy

let test_load_aware_strategy () =
  Alcotest.(check string) "to_string" "load-aware(rtts=5,w=2.00)"
    (Strategy.to_string (Strategy.load_aware ~rtts:5 ~load_weight:2.0 ()));
  Alcotest.check_raises "validation" (Invalid_argument "Strategy.load_aware: rtts must be >= 1")
    (fun () -> ignore (Strategy.load_aware ~rtts:0 ()));
  let o = Lazy.force oracle in
  let b =
    Builder.build o
      {
        Builder.default_config with
        Builder.overlay_size = 60;
        landmark_count = 6;
        strategy = Strategy.hybrid ~rtts:5 ();
        seed = 3;
      }
  in
  (* With zero published load, load-aware selection equals hybrid. *)
  let quality () = (Core.Measure.neighbor_quality b).Prelude.Stats.mean in
  Builder.rebuild_tables b (Strategy.hybrid ~rtts:5 ());
  let hybrid_q = quality () in
  Builder.rebuild_tables b (Strategy.load_aware ~rtts:5 ~load_weight:5.0 ());
  let la_zero_load_q = quality () in
  Alcotest.(check (float 1e-9)) "no load => identical choices" hybrid_q la_zero_load_q;
  (* Saturate every node's load except one candidate per region: choices
     shift away from loaded nodes, so neighbor quality (pure distance)
     can only get worse or stay equal. *)
  Array.iter
    (fun node ->
      List.iter
        (fun region ->
          Store.update_stats b.Builder.store ~region ~node ~load:(if node mod 2 = 0 then 1.0 else 0.0)
            ~capacity:1.0)
        (Store.regions_of b.Builder.store node))
    b.Builder.members;
  Builder.rebuild_tables b (Strategy.load_aware ~rtts:5 ~load_weight:5.0 ());
  let la_loaded_q = quality () in
  Alcotest.(check bool)
    (Printf.sprintf "load shifts selection (%.3f >= %.3f)" la_loaded_q hybrid_q)
    true (la_loaded_q >= hybrid_q -. 1e-9)

(* ---- proximity routing ---- *)

let can_fixture ~seed ~n =
  let rng = Rng.create seed in
  let can = Can_overlay.create ~dims:2 0 in
  for id = 1 to n - 1 do
    ignore (Can_overlay.join can id (Point.random rng 2))
  done;
  (can, rng)

let test_route_proximity_reaches_owner () =
  let o = Lazy.force oracle in
  let n = Oracle.node_count o in
  let can, rng = can_fixture ~seed:7 ~n in
  for _ = 1 to 100 do
    let p = Point.random rng 2 in
    let src = Rng.int rng n in
    match Can_overlay.route_proximity can ~dist:(fun a b -> Oracle.dist o a b) ~src p with
    | None -> Alcotest.fail "proximity routing failed"
    | Some hops ->
      Alcotest.(check int) "owner reached" (Can_overlay.owner_of can p)
        (List.nth hops (List.length hops - 1))
  done

let test_route_proximity_latency_no_worse () =
  let o = Lazy.force oracle in
  let n = Oracle.node_count o in
  let can, rng = can_fixture ~seed:8 ~n in
  let latency hops =
    let rec go acc = function
      | a :: (b :: _ as rest) -> go (acc +. Oracle.dist o a b) rest
      | [ _ ] | [] -> acc
    in
    go 0.0 hops
  in
  let total_greedy = ref 0.0 and total_prox = ref 0.0 in
  for _ = 1 to 200 do
    let p = Point.random rng 2 in
    let src = Rng.int rng n in
    (match Can_overlay.route can ~src p with
    | Some h -> total_greedy := !total_greedy +. latency h
    | None -> Alcotest.fail "greedy failed");
    match Can_overlay.route_proximity can ~dist:(fun a b -> Oracle.dist o a b) ~src p with
    | Some h -> total_prox := !total_prox +. latency h
    | None -> Alcotest.fail "proximity failed"
  done;
  Alcotest.(check bool)
    (Printf.sprintf "proximity %.0f <= 1.1 x greedy %.0f" !total_prox !total_greedy)
    true
    (!total_prox <= 1.1 *. !total_greedy)

(* ---- search extensions ---- *)

let test_ranked_curve_respects_order () =
  let o = Lazy.force oracle in
  (* score = true distance: the first probe must be the true nearest *)
  let n = Oracle.node_count o in
  let candidates = Array.init n (fun i -> i) in
  let query = 5 in
  let curve =
    Search.ranked_curve o ~score:(fun c -> Oracle.dist o query c) ~candidates ~query ~budget:3
  in
  let _, optimal = Search.true_nearest o ~query ~candidates in
  Alcotest.(check (float 1e-12)) "oracle score finds optimum immediately" optimal
    curve.Search.dist.(0)

let test_hill_climb_stops_at_local_minimum () =
  let o = Lazy.force oracle in
  let n = Oracle.node_count o in
  let can, _ = can_fixture ~seed:9 ~n in
  let curve = Search.hill_climb_curve o can ~query:0 ~budget:500 in
  let spent = Array.length curve.Search.dist in
  Alcotest.(check bool) "spends something" true (spent >= 1);
  (* monotone best-so-far *)
  for i = 1 to spent - 1 do
    Alcotest.(check bool) "monotone" true (curve.Search.dist.(i) <= curve.Search.dist.(i - 1))
  done

let test_hosting_stats () =
  let rng = Rng.create 10 in
  let can = Can_overlay.create ~dims:2 0 in
  for id = 1 to 29 do
    ignore (Can_overlay.join can id (Point.random rng 2))
  done;
  let scheme = Number.default_scheme ~max_latency:100.0 () in
  let store = Store.create ~scheme can in
  Alcotest.(check int) "empty store: no hosting nodes" 0
    (Store.hosting_stats store).Prelude.Stats.count;
  for node = 0 to 19 do
    Store.publish store ~region:[||] ~node
      ~vector:(Array.init 5 (fun _ -> Rng.float rng 100.0))
  done;
  let stats = Store.hosting_stats store in
  Alcotest.(check bool) "some hosting nodes" true (stats.Prelude.Stats.count > 0);
  (* total entries conserved *)
  let total =
    Array.fold_left (fun acc id -> acc + Store.entries_at_host store id) 0 (Can_overlay.node_ids can)
  in
  Alcotest.(check int) "entries conserved" 20 total

let suite =
  [
    Alcotest.test_case "coordinates arithmetic" `Quick test_coords_estimate;
    Alcotest.test_case "landmark embedding converges" `Quick test_coords_embedding_fits_landmarks;
    Alcotest.test_case "client positioning accuracy" `Quick test_coords_positioning_better_than_chance;
    Alcotest.test_case "ring map hosting" `Quick test_softmap_publish_hosts;
    Alcotest.test_case "ring map lookup sorted" `Quick test_softmap_lookup_returns_closest;
    Alcotest.test_case "ring map arc filter" `Quick test_softmap_arc_filter;
    Alcotest.test_case "ring map unpublish/rehome" `Quick test_softmap_unpublish_and_rehome;
    Alcotest.test_case "pastry map store ids" `Quick test_pastry_map_store_ids;
    Alcotest.test_case "pastry map region lookup" `Quick test_pastry_map_lookup_region_only;
    Alcotest.test_case "pastry map unpublish/rehome" `Quick test_pastry_map_unpublish_rehome;
    Alcotest.test_case "load-aware strategy" `Quick test_load_aware_strategy;
    Alcotest.test_case "proximity routing reaches owner" `Quick test_route_proximity_reaches_owner;
    Alcotest.test_case "proximity routing latency" `Quick test_route_proximity_latency_no_worse;
    Alcotest.test_case "ranked curve ordering" `Quick test_ranked_curve_respects_order;
    Alcotest.test_case "hill climbing local minima" `Quick test_hill_climb_stops_at_local_minimum;
    Alcotest.test_case "hosting statistics" `Quick test_hosting_stats;
  ]
