(* Tests for points, zones and space-filling curves. *)

module Point = Geometry.Point
module Zone = Geometry.Zone
module Hilbert = Geometry.Hilbert
module Zcurve = Geometry.Zcurve
module Rng = Prelude.Rng

let test_point_create_validates () =
  Alcotest.check_raises "coordinate 1.0 rejected"
    (Invalid_argument "Point.create: coordinate out of [0,1)") (fun () ->
      ignore (Point.create [| 0.5; 1.0 |]));
  let p = Point.create [| 0.25; 0.75 |] in
  Alcotest.(check int) "dims" 2 (Point.dims p)

let test_torus_axis_dist () =
  Alcotest.(check (float 1e-12)) "plain" 0.2 (Point.torus_axis_dist 0.1 0.3);
  Alcotest.(check (float 1e-12)) "wrap" 0.2 (Point.torus_axis_dist 0.9 0.1);
  Alcotest.(check (float 1e-12)) "max is half" 0.5 (Point.torus_axis_dist 0.0 0.5)

let test_torus_dist () =
  let a = [| 0.95; 0.95 |] and b = [| 0.05; 0.05 |] in
  Alcotest.(check (float 1e-12)) "wraps both axes" (sqrt 0.02) (Point.torus_dist a b);
  Alcotest.(check (float 1e-12)) "self" 0.0 (Point.torus_dist a a)

let test_zone_split_volumes () =
  let z = Zone.full 2 in
  Alcotest.(check (float 1e-12)) "full volume" 1.0 (Zone.volume z);
  let lower, upper = Zone.split z 0 in
  Alcotest.(check (float 1e-12)) "half" 0.5 (Zone.volume lower);
  Alcotest.(check (float 1e-12)) "half" 0.5 (Zone.volume upper);
  Alcotest.(check bool) "lower contains 0.25" true (Zone.contains lower [| 0.25; 0.5 |]);
  Alcotest.(check bool) "upper contains 0.75" true (Zone.contains upper [| 0.75; 0.5 |]);
  Alcotest.(check bool) "boundary goes upper" true (Zone.contains upper [| 0.5; 0.0 |])

let test_zone_neighbor_basic () =
  let z = Zone.full 2 in
  let left, right = Zone.split z 0 in
  Alcotest.(check bool) "halves are neighbors" true (Zone.is_neighbor left right);
  Alcotest.(check bool) "not self-neighbor" false (Zone.is_neighbor left left);
  let ll, lu = Zone.split left 1 in
  let rl, ru = Zone.split right 1 in
  Alcotest.(check bool) "ll-rl abut" true (Zone.is_neighbor ll rl);
  Alcotest.(check bool) "ll-ru corner only" false (Zone.is_neighbor ll ru);
  Alcotest.(check bool) "lu-ru abut" true (Zone.is_neighbor lu ru);
  Alcotest.(check bool) "ll-lu abut" true (Zone.is_neighbor ll lu)

let test_zone_neighbor_wraps () =
  (* [0,0.25) and [0.75,1) in dim 0 are adjacent through the wrap. *)
  let z = Zone.full 2 in
  let left, right = Zone.split z 0 in
  let leftmost, _ = Zone.split left 0 in
  let _, rightmost = Zone.split right 0 in
  Alcotest.(check bool) "wrap adjacency" true (Zone.is_neighbor leftmost rightmost)

let test_zone_min_torus_dist () =
  let z = { Zone.lo = [| 0.0; 0.0 |]; hi = [| 0.25; 0.25 |] } in
  Alcotest.(check (float 1e-12)) "inside" 0.0 (Zone.min_torus_dist z [| 0.1; 0.1 |]);
  Alcotest.(check (float 1e-12)) "straight out" 0.25 (Zone.min_torus_dist z [| 0.5; 0.1 |]);
  Alcotest.(check (float 1e-12)) "wrap is closer" 0.05 (Zone.min_torus_dist z [| 0.95; 0.1 |])

let test_zone_shrink () =
  let z = Zone.full 2 in
  let s = Zone.shrink z 0.25 in
  Alcotest.(check (float 1e-12)) "volume scaled" 0.25 (Zone.volume s);
  Alcotest.(check bool) "anchored at lo" true (s.Zone.lo = z.Zone.lo);
  let id = Zone.shrink z 1.0 in
  Alcotest.(check bool) "factor 1 is identity" true (Zone.equal id z)

let test_zone_subzone () =
  let z = { Zone.lo = [| 0.5; 0.0 |]; hi = [| 1.0; 0.5 |] } in
  let p = Zone.subzone z [| 0.5; 0.5 |] in
  Alcotest.(check (float 1e-12)) "x" 0.75 p.(0);
  Alcotest.(check (float 1e-12)) "y" 0.25 p.(1)

let test_hilbert_2d_order1 () =
  (* The order-1 2-d Hilbert curve visits (0,0) (0,1) (1,1) (1,0). *)
  let expected = [| [| 0; 0 |]; [| 0; 1 |]; [| 1; 1 |]; [| 1; 0 |] |] in
  Array.iteri
    (fun idx coords ->
      Alcotest.(check (array int))
        (Printf.sprintf "coords of %d" idx)
        coords
        (Hilbert.coords_of_index ~bits:1 ~dims:2 idx);
      Alcotest.(check int)
        (Printf.sprintf "index of cell %d" idx)
        idx
        (Hilbert.index_of_coords ~bits:1 coords))
    expected

let check_curve_roundtrip name index_of coords_of ~bits ~dims =
  let total = 1 lsl (bits * dims) in
  for idx = 0 to total - 1 do
    let coords = coords_of ~bits ~dims idx in
    Alcotest.(check int) (name ^ " roundtrip") idx (index_of ~bits coords)
  done

let check_curve_adjacency name coords_of ~bits ~dims =
  (* Consecutive curve indices must be adjacent grid cells (the locality
     property that makes landmark numbers meaningful). *)
  let total = 1 lsl (bits * dims) in
  let prev = ref (coords_of ~bits ~dims 0) in
  for idx = 1 to total - 1 do
    let cur = coords_of ~bits ~dims idx in
    let dist = ref 0 in
    for i = 0 to dims - 1 do
      dist := !dist + abs (cur.(i) - !prev.(i))
    done;
    Alcotest.(check int) (name ^ " steps by one cell") 1 !dist;
    prev := cur
  done

let test_hilbert_roundtrip_2d () =
  check_curve_roundtrip "hilbert 2d" Hilbert.index_of_coords Hilbert.coords_of_index ~bits:4 ~dims:2

let test_hilbert_roundtrip_3d () =
  check_curve_roundtrip "hilbert 3d" Hilbert.index_of_coords Hilbert.coords_of_index ~bits:3 ~dims:3

let test_hilbert_adjacency_2d () = check_curve_adjacency "hilbert 2d" Hilbert.coords_of_index ~bits:4 ~dims:2
let test_hilbert_adjacency_3d () = check_curve_adjacency "hilbert 3d" Hilbert.coords_of_index ~bits:3 ~dims:3
let test_hilbert_adjacency_4d () = check_curve_adjacency "hilbert 4d" Hilbert.coords_of_index ~bits:2 ~dims:4

let test_zcurve_roundtrip () =
  check_curve_roundtrip "zcurve 2d" Zcurve.index_of_coords Zcurve.coords_of_index ~bits:4 ~dims:2;
  check_curve_roundtrip "zcurve 3d" Zcurve.index_of_coords Zcurve.coords_of_index ~bits:3 ~dims:3

let test_zcurve_known_values () =
  (* Morton interleave of (x=1, y=1) with 1 bit is 0b11. *)
  Alcotest.(check int) "1,1" 3 (Zcurve.index_of_coords ~bits:1 [| 1; 1 |]);
  Alcotest.(check int) "0,1" 1 (Zcurve.index_of_coords ~bits:1 [| 0; 1 |])

let test_curve_rejects_bad_args () =
  Alcotest.check_raises "oversized" (Invalid_argument "Hilbert: dims * bits exceeds 62")
    (fun () -> ignore (Hilbert.index_of_coords ~bits:32 [| 0; 0 |]));
  Alcotest.check_raises "coordinate range" (Invalid_argument "Hilbert: coordinate out of range")
    (fun () -> ignore (Hilbert.index_of_coords ~bits:2 [| 4; 0 |]))

let test_index_of_point_clamps () =
  let idx = Hilbert.index_of_point ~bits:3 [| 0.999999; 0.0 |] in
  Alcotest.(check bool) "in range" true (idx >= 0 && idx < 64)

let qcheck_hilbert_roundtrip =
  QCheck.Test.make ~name:"hilbert index->coords->index identity (random geometry)" ~count:500
    QCheck.(triple (int_range 1 4) (int_range 1 4) (int_range 0 1_000_000))
    (fun (bits, dims, raw) ->
      let total = 1 lsl (bits * dims) in
      let idx = raw mod total in
      Hilbert.index_of_coords ~bits (Hilbert.coords_of_index ~bits ~dims idx) = idx)

let qcheck_zcurve_roundtrip =
  QCheck.Test.make ~name:"zcurve index->coords->index identity (random geometry)" ~count:500
    QCheck.(triple (int_range 1 4) (int_range 1 4) (int_range 0 1_000_000))
    (fun (bits, dims, raw) ->
      let total = 1 lsl (bits * dims) in
      let idx = raw mod total in
      Zcurve.index_of_coords ~bits (Zcurve.coords_of_index ~bits ~dims idx) = idx)

let qcheck_zone_split_partition =
  QCheck.Test.make ~name:"zone split partitions points between halves" ~count:300
    QCheck.(pair (int_range 0 1) (pair (float_range 0.0 0.999) (float_range 0.0 0.999)))
    (fun (dim, (x, y)) ->
      let z = Geometry.Zone.full 2 in
      let lower, upper = Geometry.Zone.split z dim in
      let p = [| x; y |] in
      Geometry.Zone.contains lower p <> Geometry.Zone.contains upper p)

let suite =
  [
    Alcotest.test_case "point validation" `Quick test_point_create_validates;
    Alcotest.test_case "torus axis distance" `Quick test_torus_axis_dist;
    Alcotest.test_case "torus distance" `Quick test_torus_dist;
    Alcotest.test_case "zone split volumes" `Quick test_zone_split_volumes;
    Alcotest.test_case "zone adjacency" `Quick test_zone_neighbor_basic;
    Alcotest.test_case "zone adjacency wraps" `Quick test_zone_neighbor_wraps;
    Alcotest.test_case "zone point distance" `Quick test_zone_min_torus_dist;
    Alcotest.test_case "zone shrink (condensed maps)" `Quick test_zone_shrink;
    Alcotest.test_case "zone subzone mapping" `Quick test_zone_subzone;
    Alcotest.test_case "hilbert order-1 shape" `Quick test_hilbert_2d_order1;
    Alcotest.test_case "hilbert roundtrip 2d" `Quick test_hilbert_roundtrip_2d;
    Alcotest.test_case "hilbert roundtrip 3d" `Quick test_hilbert_roundtrip_3d;
    Alcotest.test_case "hilbert adjacency 2d" `Quick test_hilbert_adjacency_2d;
    Alcotest.test_case "hilbert adjacency 3d" `Quick test_hilbert_adjacency_3d;
    Alcotest.test_case "hilbert adjacency 4d" `Quick test_hilbert_adjacency_4d;
    Alcotest.test_case "zcurve roundtrip" `Quick test_zcurve_roundtrip;
    Alcotest.test_case "zcurve known values" `Quick test_zcurve_known_values;
    Alcotest.test_case "curve argument validation" `Quick test_curve_rejects_bad_args;
    Alcotest.test_case "point gridding clamps" `Quick test_index_of_point_clamps;
    QCheck_alcotest.to_alcotest qcheck_hilbert_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_zcurve_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_zone_split_partition;
  ]
