(* Cross-module property tests (qcheck): structural invariants that must
   hold for arbitrary inputs, beyond the per-module example tests. *)

module Rng = Prelude.Rng
module Stats = Prelude.Stats
module Graph = Topology.Graph
module Dijkstra = Topology.Dijkstra
module Zone = Geometry.Zone
module Point = Geometry.Point
module Hilbert = Geometry.Hilbert
module Zcurve = Geometry.Zcurve
module Can_overlay = Can.Overlay
module Ring = Chord.Ring
module Sim = Engine.Sim

(* Random connected weighted graph for Dijkstra properties. *)
let random_graph seed n extra =
  let rng = Rng.create seed in
  let edges = ref [] in
  for i = 1 to n - 1 do
    edges := (Rng.int rng i, i, Rng.float_in rng 1.0 20.0) :: !edges
  done;
  let seen = Hashtbl.create 16 in
  List.iter (fun (u, v, _) -> Hashtbl.replace seen (min u v, max u v) ()) !edges;
  let added = ref 0 in
  let attempts = ref 0 in
  while !added < extra && !attempts < extra * 10 do
    incr attempts;
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v && not (Hashtbl.mem seen (min u v, max u v)) then begin
      Hashtbl.replace seen (min u v, max u v) ();
      edges := (u, v, Rng.float_in rng 1.0 20.0) :: !edges;
      incr added
    end
  done;
  Graph.make n !edges

let qcheck_degree_sum =
  QCheck.Test.make ~name:"sum of degrees = 2 * edges" ~count:100
    QCheck.(pair (int_range 0 10_000) (int_range 2 40))
    (fun (seed, n) ->
      let g = random_graph seed n n in
      let sum = ref 0 in
      for u = 0 to n - 1 do
        sum := !sum + Graph.degree g u
      done;
      !sum = 2 * Graph.edge_count g)

let qcheck_dijkstra_triangle =
  QCheck.Test.make ~name:"shortest paths satisfy the triangle inequality" ~count:40
    QCheck.(pair (int_range 0 10_000) (int_range 3 25))
    (fun (seed, n) ->
      let g = random_graph seed n n in
      let d = Array.init n (fun src -> Dijkstra.distances g src) in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          for w = 0 to n - 1 do
            if d.(u).(w) > d.(u).(v) +. d.(v).(w) +. 1e-9 then ok := false
          done
        done
      done;
      !ok)

let qcheck_dijkstra_symmetric =
  QCheck.Test.make ~name:"undirected shortest paths are symmetric" ~count:40
    QCheck.(pair (int_range 0 10_000) (int_range 2 30))
    (fun (seed, n) ->
      let g = random_graph seed n (n / 2) in
      let ok = ref true in
      for u = 0 to n - 1 do
        let du = Dijkstra.distances g u in
        for v = 0 to n - 1 do
          if Float.abs (du.(v) -. Dijkstra.distance g v u) > 1e-9 then ok := false
        done
      done;
      !ok)

(* Zones arising from random split paths. *)
let zone_of_random_path rng depth =
  let bits = Array.init depth (fun _ -> Rng.int rng 2) in
  Can_overlay.zone_of_path ~dims:2 bits

let qcheck_zone_neighbor_symmetric =
  QCheck.Test.make ~name:"zone adjacency is symmetric" ~count:200
    QCheck.(triple (int_range 0 10_000) (int_range 0 6) (int_range 0 6))
    (fun (seed, d1, d2) ->
      let rng = Rng.create seed in
      let a = zone_of_random_path rng d1 and b = zone_of_random_path rng d2 in
      Zone.is_neighbor a b = Zone.is_neighbor b a)

let qcheck_zone_shrink_volume =
  QCheck.Test.make ~name:"shrink scales volume by exactly f" ~count:200
    QCheck.(pair (int_range 0 10_000) (float_range 0.01 1.0))
    (fun (seed, f) ->
      let rng = Rng.create seed in
      let z = zone_of_random_path rng (Rng.int rng 8) in
      Float.abs (Zone.volume (Zone.shrink z f) -. (f *. Zone.volume z)) < 1e-9)

let qcheck_zone_subzone_containment =
  QCheck.Test.make ~name:"subzone maps unit points into the zone" ~count:200
    QCheck.(triple (int_range 0 10_000) (float_range 0.0 0.999) (float_range 0.0 0.999))
    (fun (seed, x, y) ->
      let rng = Rng.create seed in
      let z = zone_of_random_path rng (Rng.int rng 8) in
      Zone.contains z (Zone.subzone z [| x; y |]))

let qcheck_hilbert_beats_zcurve_locality =
  (* The reason Hilbert is the default: consecutive indices are always
     adjacent cells, while Morton jumps.  Quantified over random runs. *)
  QCheck.Test.make ~name:"hilbert locality strictly better than z-order on index runs" ~count:20
    QCheck.(int_range 0 1000)
    (fun start ->
      let bits = 4 and dims = 2 in
      let total = 1 lsl (bits * dims) in
      let start = start mod (total - 32) in
      let jump coords_of =
        let acc = ref 0 in
        for idx = start to start + 30 do
          let a = coords_of ~bits ~dims idx and b = coords_of ~bits ~dims (idx + 1) in
          let d = ref 0 in
          for i = 0 to dims - 1 do
            d := !d + abs (a.(i) - b.(i))
          done;
          acc := !acc + !d
        done;
        !acc
      in
      jump Hilbert.coords_of_index <= jump Zcurve.coords_of_index)

let qcheck_rng_chance_extremes =
  QCheck.Test.make ~name:"chance 0 never fires, chance 1 always fires" ~count:50
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let ok = ref true in
      for _ = 1 to 50 do
        if Rng.chance rng 0.0 then ok := false;
        if not (Rng.chance rng 1.0) then ok := false
      done;
      !ok)

let qcheck_rng_split_deterministic =
  QCheck.Test.make ~name:"split derives the same child from the same state" ~count:100
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let a = Rng.create seed and b = Rng.create seed in
      let ca = Rng.split a and cb = Rng.split b in
      Rng.bits64 ca = Rng.bits64 cb && Rng.bits64 a = Rng.bits64 b)

let qcheck_stats_percentile_bounds =
  QCheck.Test.make ~name:"percentiles lie within sample bounds and are monotone" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      let arr = Array.of_list xs in
      let lo = Array.fold_left Float.min arr.(0) arr in
      let hi = Array.fold_left Float.max arr.(0) arr in
      let p25 = Stats.percentile arr 25.0
      and p50 = Stats.percentile arr 50.0
      and p75 = Stats.percentile arr 75.0 in
      lo <= p25 && p25 <= p50 && p50 <= p75 && p75 <= hi)

let qcheck_sim_fires_sorted =
  QCheck.Test.make ~name:"events fire in nondecreasing time order" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 40) (float_bound_exclusive 1000.0))
    (fun delays ->
      let sim = Sim.create () in
      let fired = ref [] in
      List.iter (fun d -> ignore (Sim.schedule sim ~delay:d (fun () -> fired := Sim.now sim :: !fired))) delays;
      Sim.run sim;
      let times = List.rev !fired in
      List.length times = List.length delays
      && fst
           (List.fold_left
              (fun (ok, prev) t -> (ok && t >= prev, t))
              (true, neg_infinity) times))

let qcheck_can_owner_total =
  QCheck.Test.make ~name:"every point has exactly one owner" ~count:25
    QCheck.(pair (int_range 0 10_000) (int_range 1 50))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let t = Can_overlay.create ~dims:2 0 in
      for id = 1 to n - 1 do
        ignore (Can_overlay.join t id (Point.random rng 2))
      done;
      let ok = ref true in
      for _ = 1 to 30 do
        let p = Point.random rng 2 in
        let owner = Can_overlay.owner_of t p in
        (* the owner's zone contains p, and no other member's zone does *)
        if not (Zone.contains (Can_overlay.node t owner).Can_overlay.zone p) then ok := false;
        Array.iter
          (fun id ->
            if id <> owner && Zone.contains (Can_overlay.node t id).Can_overlay.zone p then
              ok := false)
          (Can_overlay.node_ids t)
      done;
      !ok)

let qcheck_can_prefix_membership_bruteforce =
  QCheck.Test.make ~name:"members_with_prefix = brute-force path-prefix scan" ~count:25
    QCheck.(triple (int_range 0 10_000) (int_range 2 60) (int_range 0 6))
    (fun (seed, n, plen) ->
      let rng = Rng.create seed in
      let t = Can_overlay.create ~dims:2 0 in
      for id = 1 to n - 1 do
        ignore (Can_overlay.join t id (Point.random rng 2))
      done;
      let prefix = Array.init plen (fun _ -> Rng.int rng 2) in
      let fast = List.sort compare (Array.to_list (Can_overlay.members_with_prefix t prefix)) in
      let brute =
        List.sort compare
          (List.filter
             (fun id ->
               let path = (Can_overlay.node t id).Can_overlay.path in
               Array.length path >= plen
               && Array.for_all2 ( = ) prefix (Array.sub path 0 plen))
             (Array.to_list (Can_overlay.node_ids t)))
      in
      fast = brute)

let qcheck_chord_arc_bruteforce =
  QCheck.Test.make ~name:"arc_members = brute-force key scan" ~count:30
    QCheck.(triple (int_range 0 10_000) (int_range 1 50) (pair (int_range 0 1_000_000) (int_range 1 1_000_000)))
    (fun (seed, n, (lo_raw, span_raw)) ->
      let rng = Rng.create seed in
      let t = Ring.create () in
      for id = 0 to n - 1 do
        Ring.add_node t ~rng id
      done;
      let ring = 1 lsl Ring.key_bits t in
      let lo = lo_raw mod ring and span = 1 + (span_raw mod (ring - 1)) in
      let fast = List.sort compare (Array.to_list (Ring.arc_members t ~lo ~span)) in
      let brute =
        List.sort compare
          (List.filter
             (fun id ->
               let k = Ring.key_of t id in
               let d = ((k - lo) mod ring + ring) mod ring in
               d < span)
             (Array.to_list (Ring.node_ids t)))
      in
      fast = brute)

let qcheck_chord_successor_bruteforce =
  QCheck.Test.make ~name:"successor_node = brute-force clockwise minimum" ~count:30
    QCheck.(triple (int_range 0 10_000) (int_range 1 40) (int_range 0 1_000_000))
    (fun (seed, n, key_raw) ->
      let rng = Rng.create seed in
      let t = Ring.create () in
      for id = 0 to n - 1 do
        Ring.add_node t ~rng id
      done;
      let ring = 1 lsl Ring.key_bits t in
      let key = key_raw mod ring in
      let clockwise from target = ((target - from) mod ring + ring) mod ring in
      let brute =
        Array.fold_left
          (fun best id ->
            let d = clockwise key (Ring.key_of t id) in
            match best with
            | Some (bd, _) when bd <= d -> best
            | _ -> Some (d, id))
          None (Ring.node_ids t)
      in
      match brute with
      | Some (_, expect) -> Ring.successor_node t key = expect
      | None -> false)

let qcheck_store_lookup_subset =
  QCheck.Test.make ~name:"store lookup returns a subset of the region's live entries" ~count:20
    QCheck.(pair (int_range 0 10_000) (int_range 5 40))
    (fun (seed, n) ->
      let module Store = Softstate.Store in
      let rng = Rng.create seed in
      let can = Can_overlay.create ~dims:2 0 in
      for id = 1 to n - 1 do
        ignore (Can_overlay.join can id (Point.random rng 2))
      done;
      let scheme = Landmark.Number.default_scheme ~max_latency:100.0 () in
      let store = Store.create ~scheme can in
      for node = 0 to n - 1 do
        Store.publish store ~region:[||] ~node
          ~vector:(Array.init 5 (fun _ -> Rng.float rng 100.0))
      done;
      let all =
        List.sort_uniq compare
          (List.map (fun (e : Store.Entry.t) -> e.Store.Entry.node) (Store.region_entries store [||]))
      in
      let got =
        Store.lookup store ~region:[||]
          ~vector:(Array.init 5 (fun _ -> Rng.float rng 100.0))
          ~max_results:8 ~ttl:4 ()
      in
      List.for_all (fun (e : Store.Entry.t) -> List.mem e.Store.Entry.node all) got
      && List.length got <= 8)

let qcheck_serialize_roundtrip =
  QCheck.Test.make ~name:"serialize/parse roundtrips random topologies" ~count:20
    QCheck.(
      pair (int_range 0 10_000)
        (quad (int_range 1 3) (int_range 1 3) (int_range 1 3) (int_range 1 6)))
    (fun (seed, (domains, per_domain, stubs_per, stub_size)) ->
      let module Ts = Topology.Transit_stub in
      let p =
        {
          Ts.transit_domains = domains;
          transit_nodes_per_domain = per_domain;
          stubs_per_transit_node = stubs_per;
          stub_size;
          extra_domain_edges = domains;
          extra_edge_fraction = 0.3;
          latency = Ts.Gtitm_random;
        }
      in
      let t = Ts.generate (Rng.create seed) p in
      match Topology.Serialize.of_string (Topology.Serialize.to_string t) with
      | Ok t' ->
        List.sort compare (Graph.edges t.Ts.graph) = List.sort compare (Graph.edges t'.Ts.graph)
        && t.Ts.stub_members = t'.Ts.stub_members
      | Error _ -> false)

let qcheck_hilbert_point_roundtrip_cell =
  QCheck.Test.make ~name:"point -> index -> cell center stays within a cell" ~count:200
    QCheck.(pair (float_range 0.0 0.999) (float_range 0.0 0.999))
    (fun (x, y) ->
      let bits = 5 in
      let idx = Hilbert.index_of_point ~bits [| x; y |] in
      let back = Hilbert.point_of_index ~bits ~dims:2 idx in
      let cell = 1.0 /. float_of_int (1 lsl bits) in
      Float.abs (back.(0) -. x) <= cell && Float.abs (back.(1) -. y) <= cell)

let qcheck_coordinates_estimate_metric =
  QCheck.Test.make ~name:"coordinate estimates are symmetric and triangle-consistent" ~count:100
    QCheck.(list_of_size (Gen.return 9) (float_range (-100.0) 100.0))
    (fun raw ->
      match raw with
      | [ a1; a2; a3; b1; b2; b3; c1; c2; c3 ] ->
        let module C = Landmark.Coordinates in
        let a = [| a1; a2; a3 |] and b = [| b1; b2; b3 |] and c = [| c1; c2; c3 |] in
        Float.abs (C.estimate a b -. C.estimate b a) < 1e-9
        && C.estimate a c <= C.estimate a b +. C.estimate b c +. 1e-9
      | _ -> false)

let qcheck_heap_length_tracks =
  QCheck.Test.make ~name:"heap length tracks pushes and pops" ~count:100
    QCheck.(list (float_bound_exclusive 100.0))
    (fun xs ->
      let module Heap = Prelude.Heap in
      let h = Heap.create () in
      List.iteri (fun i x -> Heap.push h x i) xs;
      let n = List.length xs in
      let ok = ref (Heap.length h = n) in
      for expect = n - 1 downto 0 do
        ignore (Heap.pop h);
        if Heap.length h <> expect then ok := false
      done;
      !ok)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      qcheck_serialize_roundtrip;
      qcheck_hilbert_point_roundtrip_cell;
      qcheck_coordinates_estimate_metric;
      qcheck_heap_length_tracks;
      qcheck_degree_sum;
      qcheck_dijkstra_triangle;
      qcheck_dijkstra_symmetric;
      qcheck_zone_neighbor_symmetric;
      qcheck_zone_shrink_volume;
      qcheck_zone_subzone_containment;
      qcheck_hilbert_beats_zcurve_locality;
      qcheck_rng_chance_extremes;
      qcheck_rng_split_deterministic;
      qcheck_stats_percentile_bounds;
      qcheck_sim_fires_sorted;
      qcheck_can_owner_total;
      qcheck_can_prefix_membership_bruteforce;
      qcheck_chord_arc_bruteforce;
      qcheck_chord_successor_bruteforce;
      qcheck_store_lookup_subset;
    ]
