(* Tests for landmark vectors, orderings, landmark numbers and the
   dimension-reduction hash. *)

module Landmarks = Landmark.Landmarks
module Number = Landmark.Number
module Oracle = Topology.Oracle
module Ts = Topology.Transit_stub
module Zone = Geometry.Zone
module Rng = Prelude.Rng

let topo_params =
  {
    Ts.transit_domains = 2;
    transit_nodes_per_domain = 3;
    stubs_per_transit_node = 2;
    stub_size = 10;
    extra_domain_edges = 1;
    extra_edge_fraction = 0.4;
    latency = Ts.Manual;
  }

let oracle = lazy (Oracle.build (Ts.generate (Rng.create 3) topo_params))

let test_choose_landmarks () =
  let o = Lazy.force oracle in
  let lms = Landmarks.choose (Rng.create 1) o 8 in
  Alcotest.(check int) "count" 8 (Landmarks.count lms);
  let nodes = Landmarks.nodes lms in
  let sorted = Array.copy nodes in
  Array.sort compare sorted;
  for i = 1 to 7 do
    Alcotest.(check bool) "distinct landmarks" true (sorted.(i) <> sorted.(i - 1))
  done;
  Alcotest.check_raises "zero rejected" (Invalid_argument "Landmarks.choose: bad landmark count")
    (fun () -> ignore (Landmarks.choose (Rng.create 1) o 0))

let test_vector_semantics () =
  let o = Lazy.force oracle in
  let lms = Landmarks.choose (Rng.create 2) o 6 in
  let nodes = Landmarks.nodes lms in
  let v = Landmarks.vector lms 5 in
  Alcotest.(check int) "vector length" 6 (Array.length v);
  Array.iteri
    (fun i lm ->
      Alcotest.(check (float 1e-9)) "component is RTT to landmark" (Oracle.dist o 5 lm) v.(i))
    nodes;
  (* a landmark's own vector has a zero at its own position *)
  let self = Landmarks.vector lms nodes.(0) in
  Alcotest.(check (float 0.0)) "self distance" 0.0 self.(0)

let test_vector_counts_measurements () =
  let o = Lazy.force oracle in
  let lms = Landmarks.choose (Rng.create 3) o 7 in
  Oracle.reset_measurements o;
  ignore (Landmarks.vector lms 4);
  Alcotest.(check int) "one RTT per landmark" 7 (Oracle.measurements o);
  Oracle.reset_measurements o

let test_ordering () =
  let ord = Landmarks.ordering [| 30.0; 10.0; 20.0 |] in
  Alcotest.(check (array int)) "sorted by increasing RTT" [| 1; 2; 0 |] ord;
  (* ties broken by index, deterministically *)
  let tie = Landmarks.ordering [| 5.0; 5.0 |] in
  Alcotest.(check (array int)) "tie break" [| 0; 1 |] tie

let test_ordering_bin () =
  (* identical orderings share a bin *)
  Alcotest.(check int) "same ordering, same bin"
    (Landmarks.ordering_bin [| 1.0; 2.0; 3.0; 4.0 |])
    (Landmarks.ordering_bin [| 10.0; 20.0; 30.0; 40.0 |]);
  (* different orderings get different bins *)
  Alcotest.(check bool) "different orderings differ" true
    (Landmarks.ordering_bin [| 1.0; 2.0; 3.0; 4.0 |]
    <> Landmarks.ordering_bin [| 4.0; 3.0; 2.0; 1.0 |]);
  Alcotest.(check int) "4! bins" 24 (Landmarks.ordering_bin_count ());
  (* all 24 permutations of 4 values map to 24 distinct bins in range *)
  let values = [| 1.0; 2.0; 3.0; 4.0 |] in
  let seen = Hashtbl.create 24 in
  let rec permutations acc = function
    | [] -> [ List.rev acc ]
    | rest -> List.concat_map (fun x -> permutations (x :: acc) (List.filter (( <> ) x) rest)) rest
  in
  List.iter
    (fun perm ->
      let vec = Array.of_list (List.map (fun i -> values.(i)) perm) in
      let bin = Landmarks.ordering_bin vec in
      Alcotest.(check bool) "bin in range" true (bin >= 0 && bin < 24);
      Hashtbl.replace seen bin ())
    (permutations [] [ 0; 1; 2; 3 ]);
  Alcotest.(check int) "bijective over permutations" 24 (Hashtbl.length seen);
  Alcotest.check_raises "short vector"
    (Invalid_argument "Landmarks.ordering_bin: vector shorter than k") (fun () ->
      ignore (Landmarks.ordering_bin [| 1.0 |]))

let test_vector_dist () =
  Alcotest.(check (float 1e-12)) "euclidean" 5.0
    (Landmarks.vector_dist [| 0.0; 0.0 |] [| 3.0; 4.0 |]);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Landmarks.vector_dist: length mismatch") (fun () ->
      ignore (Landmarks.vector_dist [| 1.0 |] [| 1.0; 2.0 |]))

let scheme = Number.default_scheme ~max_latency:100.0 ()

let test_number_range () =
  let rng = Rng.create 4 in
  for _ = 1 to 200 do
    let v = Array.init 8 (fun _ -> Rng.float rng 150.0) in
    let n = Number.number scheme v in
    Alcotest.(check bool) "in range" true (n >= 0 && n < Number.cell_count scheme)
  done

let test_number_locality () =
  (* Identical vectors share a landmark number; nearby vectors get nearby
     positions when mapped into a zone. *)
  let a = [| 10.0; 20.0; 30.0; 40.0 |] in
  let b = [| 10.0; 20.0; 30.0; 99.0 |] in
  (* only the first index_dims=3 components matter for the number *)
  Alcotest.(check int) "vector index uses leading components" (Number.number scheme a)
    (Number.number scheme b);
  let zone = Zone.full 2 in
  let pa = Number.position_in_zone scheme zone a in
  let c = [| 10.1; 20.1; 30.1; 0.0 |] in
  let pc = Number.position_in_zone scheme zone c in
  let d = Geometry.Point.euclidean_dist pa pc in
  Alcotest.(check bool) (Printf.sprintf "close vectors near in zone (%.4f)" d) true (d < 0.2)

let test_number_separation () =
  (* Vectors far apart in landmark space should rarely share a number. *)
  let a = [| 5.0; 5.0; 5.0 |] and b = [| 95.0; 95.0; 95.0 |] in
  Alcotest.(check bool) "far vectors differ" true
    (Number.number scheme a <> Number.number scheme b)

let test_position_in_zone_containment () =
  let rng = Rng.create 5 in
  let zone = { Zone.lo = [| 0.25; 0.5 |]; hi = [| 0.5; 0.75 |] } in
  for _ = 1 to 200 do
    let v = Array.init 5 (fun _ -> Rng.float rng 150.0) in
    let p = Number.position_in_zone scheme zone v in
    Alcotest.(check bool) "hash lands inside the region" true (Zone.contains zone p)
  done

let test_to_unit () =
  Alcotest.(check (float 0.0)) "zero" 0.0 (Number.to_unit scheme 0);
  let top = Number.cell_count scheme - 1 in
  Alcotest.(check bool) "below one" true (Number.to_unit scheme top < 1.0);
  Alcotest.check_raises "range check"
    (Invalid_argument "Number.to_unit: landmark number out of range") (fun () ->
      ignore (Number.to_unit scheme (-1)))

let test_calibrate_max_latency () =
  let o = Lazy.force oracle in
  let lms = Landmarks.choose (Rng.create 6) o 6 in
  let bound = Number.calibrate_max_latency o (Landmarks.nodes lms) in
  Alcotest.(check bool) "positive" true (bound > 0.0);
  (* the bound covers every landmark-landmark distance with margin *)
  let nodes = Landmarks.nodes lms in
  Array.iter
    (fun a ->
      Array.iter
        (fun b ->
          Alcotest.(check bool) "covers pairwise distances" true
            (Oracle.dist o a b <= bound))
        nodes)
    nodes

let test_zcurve_scheme () =
  let zscheme = Number.default_scheme ~curve:Number.Z_curve ~max_latency:100.0 () in
  let rng = Rng.create 7 in
  for _ = 1 to 100 do
    let v = Array.init 4 (fun _ -> Rng.float rng 120.0) in
    let n = Number.number zscheme v in
    Alcotest.(check bool) "z-curve numbers in range" true
      (n >= 0 && n < Number.cell_count zscheme)
  done

let qcheck_physically_close_nodes_have_close_vectors =
  (* The foundational landmark-clustering assumption, validated on our
     topology generator: same-stub pairs have smaller vector distance than
     cross-domain pairs on average. *)
  QCheck.Test.make ~name:"landmark vectors separate stubs from far domains" ~count:5
    QCheck.(int_range 0 1000)
    (fun seed ->
      let topo = Ts.generate (Rng.create seed) topo_params in
      let o = Oracle.build topo in
      let lms = Landmarks.choose (Rng.create (seed + 1)) o 8 in
      let stub0 = topo.Ts.stub_members.(0) in
      let stub_last = topo.Ts.stub_members.(Array.length topo.Ts.stub_members - 1) in
      let v a = Landmarks.vector lms a in
      let same = Landmarks.vector_dist (v stub0.(0)) (v stub0.(1)) in
      let cross = Landmarks.vector_dist (v stub0.(0)) (v stub_last.(0)) in
      same <= cross +. 1e-9)

let suite =
  [
    Alcotest.test_case "choose landmarks" `Quick test_choose_landmarks;
    Alcotest.test_case "vector = RTTs to landmarks" `Quick test_vector_semantics;
    Alcotest.test_case "vector measurement accounting" `Quick test_vector_counts_measurements;
    Alcotest.test_case "landmark ordering" `Quick test_ordering;
    Alcotest.test_case "ordering bins (TA-CAN)" `Quick test_ordering_bin;
    Alcotest.test_case "vector distance" `Quick test_vector_dist;
    Alcotest.test_case "landmark number range" `Quick test_number_range;
    Alcotest.test_case "landmark number locality" `Quick test_number_locality;
    Alcotest.test_case "landmark number separation" `Quick test_number_separation;
    Alcotest.test_case "hash lands inside the region" `Quick test_position_in_zone_containment;
    Alcotest.test_case "scalar key mapping" `Quick test_to_unit;
    Alcotest.test_case "latency bound calibration" `Quick test_calibrate_max_latency;
    Alcotest.test_case "z-curve scheme" `Quick test_zcurve_scheme;
    QCheck_alcotest.to_alcotest qcheck_physically_close_nodes_have_close_vectors;
  ]
