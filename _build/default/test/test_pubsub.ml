(* Tests for the publish/subscribe bus. *)

module Bus = Pubsub.Bus
module Store = Softstate.Store
module Can_overlay = Can.Overlay
module Number = Landmark.Number
module Point = Geometry.Point
module Sim = Engine.Sim
module Rng = Prelude.Rng

let scheme = Number.default_scheme ~max_latency:100.0 ()

let setup ?(n = 30) ~seed () =
  let rng = Rng.create seed in
  let can = Can_overlay.create ~dims:2 0 in
  for id = 1 to n - 1 do
    ignore (Can_overlay.join can id (Point.random rng 2))
  done;
  let sim = Sim.create () in
  let store = Store.create ~clock:(fun () -> Sim.now sim) ~scheme can in
  let bus = Bus.create ~sim store in
  (bus, sim, rng)

let vec rng = Array.init 5 (fun _ -> Rng.float rng 100.0)

let test_any_new_entry () =
  let bus, sim, rng = setup ~seed:1 () in
  let events = ref [] in
  let _sub =
    Bus.subscribe bus ~subscriber:7 ~region:[||] ~condition:Bus.Any_new_entry
      ~handler:(fun n -> events := n :: !events)
  in
  Bus.publish bus ~region:[||] ~node:3 ~vector:(vec rng);
  Sim.run sim;
  Alcotest.(check int) "one notification" 1 (List.length !events);
  (match !events with
  | [ { Bus.subscriber; event = Bus.Entry_published { entry_node; _ }; _ } ] ->
    Alcotest.(check int) "subscriber" 7 subscriber;
    Alcotest.(check int) "entry node" 3 entry_node
  | _ -> Alcotest.fail "unexpected event shape");
  (* refresh of the same node must NOT re-notify *)
  Bus.publish bus ~region:[||] ~node:3 ~vector:(vec rng);
  Sim.run sim;
  Alcotest.(check int) "no notification on refresh" 1 (List.length !events)

let test_region_isolation () =
  let bus, sim, rng = setup ~seed:2 () in
  let fired = ref 0 in
  let _sub =
    Bus.subscribe bus ~subscriber:1 ~region:[| 0; 0 |] ~condition:Bus.Any_new_entry
      ~handler:(fun _ -> incr fired)
  in
  Bus.publish bus ~region:[| 1; 1 |] ~node:3 ~vector:(vec rng);
  Sim.run sim;
  Alcotest.(check int) "other region does not fire" 0 !fired;
  Bus.publish bus ~region:[| 0; 0 |] ~node:3 ~vector:(vec rng);
  Sim.run sim;
  Alcotest.(check int) "right region fires" 1 !fired

let test_closer_than () =
  let bus, sim, _ = setup ~seed:3 () in
  let mine = [| 10.0; 10.0; 10.0; 10.0; 10.0 |] in
  let fired = ref 0 in
  let _sub =
    Bus.subscribe bus ~subscriber:1 ~region:[||]
      ~condition:(Bus.Closer_than (mine, 5.0))
      ~handler:(fun _ -> incr fired)
  in
  (* far entry: no fire *)
  Bus.publish bus ~region:[||] ~node:2 ~vector:[| 90.0; 90.0; 90.0; 90.0; 90.0 |];
  Sim.run sim;
  Alcotest.(check int) "far newcomer ignored" 0 !fired;
  (* close entry: fire *)
  Bus.publish bus ~region:[||] ~node:3 ~vector:[| 11.0; 10.0; 10.0; 10.0; 10.0 |];
  Sim.run sim;
  Alcotest.(check int) "close newcomer fires" 1 !fired

let test_load_above () =
  let bus, sim, rng = setup ~seed:4 () in
  let fired = ref [] in
  let _sub =
    Bus.subscribe bus ~subscriber:1 ~region:[||]
      ~condition:(Bus.Load_above { watched = 5; threshold = 0.8 })
      ~handler:(fun n -> fired := n :: !fired)
  in
  Bus.publish bus ~region:[||] ~node:5 ~vector:(vec rng);
  Bus.update_load bus ~region:[||] ~node:5 ~load:0.5 ~capacity:1.0;
  Sim.run sim;
  Alcotest.(check int) "below threshold silent" 0 (List.length !fired);
  Bus.update_load bus ~region:[||] ~node:5 ~load:0.9 ~capacity:1.0;
  Sim.run sim;
  Alcotest.(check int) "above threshold fires" 1 (List.length !fired);
  (match !fired with
  | [ { Bus.event = Bus.Load_changed { load; _ }; _ } ] ->
    Alcotest.(check (float 0.0)) "load carried" 0.9 load
  | _ -> Alcotest.fail "unexpected event");
  (* a different node's load does not fire *)
  Bus.publish bus ~region:[||] ~node:6 ~vector:(vec rng);
  Bus.update_load bus ~region:[||] ~node:6 ~load:0.99 ~capacity:1.0;
  Sim.run sim;
  Alcotest.(check int) "other node silent" 1 (List.length !fired)

let test_departure () =
  let bus, sim, rng = setup ~seed:5 () in
  let fired = ref 0 in
  Bus.publish_all bus ~span_bits:2 ~node:9 ~vector:(vec rng);
  let _sub =
    Bus.subscribe bus ~subscriber:1 ~region:[||] ~condition:(Bus.Departure_of 9)
      ~handler:(fun _ -> incr fired)
  in
  Bus.depart bus ~node:9;
  Sim.run sim;
  Alcotest.(check int) "departure fires" 1 !fired;
  Alcotest.(check bool) "state retracted" true
    (Store.find (Bus.store bus) ~region:[||] ~node:9 = None)

let test_unsubscribe () =
  let bus, sim, rng = setup ~seed:6 () in
  let fired = ref 0 in
  let sub =
    Bus.subscribe bus ~subscriber:1 ~region:[||] ~condition:Bus.Any_new_entry
      ~handler:(fun _ -> incr fired)
  in
  Alcotest.(check int) "counted" 1 (Bus.subscription_count bus ~region:[||]);
  Bus.unsubscribe bus sub;
  Alcotest.(check int) "removed" 0 (Bus.subscription_count bus ~region:[||]);
  Bus.publish bus ~region:[||] ~node:2 ~vector:(vec rng);
  Sim.run sim;
  Alcotest.(check int) "no fire after unsubscribe" 0 !fired

let test_delivery_latency () =
  let rng = Rng.create 7 in
  let can = Can_overlay.create ~dims:2 0 in
  for id = 1 to 19 do
    ignore (Can_overlay.join can id (Point.random rng 2))
  done;
  let sim = Sim.create () in
  let store = Store.create ~clock:(fun () -> Sim.now sim) ~scheme can in
  let bus = Bus.create ~sim ~latency:(fun ~host:_ ~subscriber:_ -> 25.0) store in
  let delivered_at = ref (-1.0) in
  let _sub =
    Bus.subscribe bus ~subscriber:1 ~region:[||] ~condition:Bus.Any_new_entry
      ~handler:(fun n -> delivered_at := n.Bus.delivered_at)
  in
  Bus.publish bus ~region:[||] ~node:2 ~vector:(vec rng);
  Sim.run sim;
  Alcotest.(check (float 1e-9)) "delivered after the modeled latency" 25.0 !delivered_at

let test_multiple_subscribers () =
  let bus, sim, rng = setup ~seed:8 () in
  let fired = Array.make 3 0 in
  for i = 0 to 2 do
    ignore
      (Bus.subscribe bus ~subscriber:i ~region:[||] ~condition:Bus.Any_new_entry
         ~handler:(fun _ -> fired.(i) <- fired.(i) + 1))
  done;
  Bus.publish bus ~region:[||] ~node:9 ~vector:(vec rng);
  Sim.run sim;
  Array.iteri (fun i c -> Alcotest.(check int) (Printf.sprintf "sub %d fired" i) 1 c) fired

let suite =
  [
    Alcotest.test_case "any-new-entry condition" `Quick test_any_new_entry;
    Alcotest.test_case "region isolation" `Quick test_region_isolation;
    Alcotest.test_case "closer-than condition" `Quick test_closer_than;
    Alcotest.test_case "load-above condition" `Quick test_load_above;
    Alcotest.test_case "departure condition" `Quick test_departure;
    Alcotest.test_case "unsubscribe" `Quick test_unsubscribe;
    Alcotest.test_case "delivery latency" `Quick test_delivery_latency;
    Alcotest.test_case "multiple subscribers" `Quick test_multiple_subscribers;
  ]
