lib/proximity/search.mli: Can Topology
