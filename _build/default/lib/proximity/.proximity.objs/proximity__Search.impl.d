lib/proximity/search.ml: Array Can Hashtbl Landmark List Topology
