lib/ecan/expressway.mli: Can Geometry
