lib/ecan/expressway.ml: Array Can Geometry Hashtbl List
