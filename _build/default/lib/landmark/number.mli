(** Landmark numbers: space-filling-curve reduction of landmark vectors.

    The landmark space is gridded into [2^(bits * index_dims)] cells; a
    node's {e landmark number} is its cell's index along a space-filling
    curve.  Closeness in landmark number then indicates physical
    closeness.  Following the appendix's {e landmark vector index}
    optimisation, only the first [index_dims] components of the vector are
    used to compute the number (the full vector is still used for final
    candidate ranking), which keeps the curve dimensionality low and the
    clustering tight.

    The module also provides the paper's §4.1 dimension-mismatch hash
    [p' = h(p, dp, dz, z)]: the landmark number is re-expanded through a
    space-filling curve of the {e region's} dimensionality, so that nodes
    with close landmark numbers are stored at close positions inside the
    region. *)

type curve = Hilbert_curve | Z_curve

type scheme = {
  max_latency : float;  (** normalisation bound for vector components, ms *)
  bits : int;  (** grid bits per landmark-space dimension *)
  index_dims : int;  (** leading vector components used for the number *)
  zone_bits : int;  (** grid bits per overlay dimension when positioning *)
  curve : curve;
}

val default_scheme : ?curve:curve -> max_latency:float -> unit -> scheme
(** bits = 8, index_dims = 3, zone_bits = 8, Hilbert. *)

val calibrate_max_latency : Topology.Oracle.t -> int array -> float
(** A global normalisation bound every node can agree on: 1.5 x the
    landmark-set diameter (max pairwise landmark RTT).  Vector entries
    above the bound are clamped. *)

val cell_count : scheme -> int
(** Number of grid cells, [2^(bits * index_dims)]. *)

val normalize : scheme -> float array -> Geometry.Point.t
(** Landmark vector -> point of the unit box (clamped). *)

val number : scheme -> float array -> int
(** Landmark number of a vector, in [0, cell_count). *)

val to_unit : scheme -> int -> float
(** Landmark number -> scalar in [0,1); the DHT key used by Chord/Pastry
    placements. *)

val position_in_zone : scheme -> Geometry.Zone.t -> float array -> Geometry.Point.t
(** [position_in_zone scheme z vec] is the paper's [h(p, dp, dz, z)]:
    where in region [z] the soft-state entry for a node with landmark
    vector [vec] is stored.  Vectors close in landmark space map to close
    positions in [z]. *)
