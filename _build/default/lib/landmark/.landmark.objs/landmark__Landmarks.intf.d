lib/landmark/landmarks.mli: Prelude Topology
