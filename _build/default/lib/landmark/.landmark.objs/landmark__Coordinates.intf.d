lib/landmark/coordinates.mli: Prelude Topology
