lib/landmark/number.mli: Geometry Topology
