lib/landmark/landmarks.ml: Array Prelude Topology
