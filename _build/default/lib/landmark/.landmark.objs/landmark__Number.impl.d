lib/landmark/number.ml: Array Float Geometry Topology
