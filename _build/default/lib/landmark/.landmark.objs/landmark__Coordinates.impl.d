lib/landmark/coordinates.ml: Array Float Prelude Topology
