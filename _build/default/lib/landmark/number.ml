type curve = Hilbert_curve | Z_curve

type scheme = {
  max_latency : float;
  bits : int;
  index_dims : int;
  zone_bits : int;
  curve : curve;
}

let default_scheme ?(curve = Hilbert_curve) ~max_latency () =
  if max_latency <= 0.0 then invalid_arg "Number.default_scheme: max_latency must be positive";
  { max_latency; bits = 8; index_dims = 3; zone_bits = 8; curve }

let calibrate_max_latency oracle landmark_nodes =
  let worst = ref 0.0 in
  Array.iter
    (fun a ->
      Array.iter
        (fun b -> if a <> b then worst := Float.max !worst (Topology.Oracle.dist oracle a b))
        landmark_nodes)
    landmark_nodes;
  if !worst <= 0.0 then 1.0 else 1.5 *. !worst

let cell_count s = 1 lsl (s.bits * s.index_dims)

let clamp01 v = if v < 0.0 then 0.0 else if v >= 1.0 then Float.pred 1.0 else v

let normalize s vec =
  let d = min s.index_dims (Array.length vec) in
  if d < 1 then invalid_arg "Number.normalize: empty vector";
  Array.init d (fun i -> clamp01 (vec.(i) /. s.max_latency))

let index_of_point s ~bits p =
  match s.curve with
  | Hilbert_curve -> Geometry.Hilbert.index_of_point ~bits p
  | Z_curve -> Geometry.Zcurve.index_of_point ~bits p

let point_of_index s ~bits ~dims idx =
  match s.curve with
  | Hilbert_curve -> Geometry.Hilbert.point_of_index ~bits ~dims idx
  | Z_curve -> Geometry.Zcurve.point_of_index ~bits ~dims idx

let number s vec = index_of_point s ~bits:s.bits (normalize s vec)

let to_unit s n =
  if n < 0 || n >= cell_count s then invalid_arg "Number.to_unit: landmark number out of range";
  float_of_int n /. float_of_int (cell_count s)

let position_in_zone s zone vec =
  let dz = Geometry.Zone.dims zone in
  (* Landmark number -> scalar in [0,1) -> cell along the curve of the
     region's dimensionality -> affine position inside the region. *)
  let u = to_unit s (number s vec) in
  let zone_cells = 1 lsl (dz * s.zone_bits) in
  let cell = int_of_float (u *. float_of_int zone_cells) in
  let cell = if cell >= zone_cells then zone_cells - 1 else cell in
  let unit_pos = point_of_index s ~bits:s.zone_bits ~dims:dz cell in
  Geometry.Zone.subzone zone unit_pos
