lib/chord/ring.mli: Prelude
