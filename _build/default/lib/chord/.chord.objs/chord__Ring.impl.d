lib/chord/ring.ml: Array Format Hashtbl List Prelude Result Seq
