lib/chord/softmap.mli: Landmark Ring
