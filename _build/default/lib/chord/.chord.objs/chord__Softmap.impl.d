lib/chord/softmap.ml: Array Hashtbl Landmark List Ring
