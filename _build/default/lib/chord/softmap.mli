(** Soft-state coordinate map on a Chord ring (paper appendix: "in the
    case of Chord, we can simply use the landmark number as the key to
    store the information of a node on a node whose ID is equal to or
    greater than the landmark number").

    Every member publishes one entry under the ring key derived from its
    landmark number, so physically-close nodes (close landmark numbers)
    are stored on the same or succeeding ring hosts.  A lookup routes to
    the querying node's own landmark key and walks the successor chain
    collecting candidates. *)

type entry = {
  node : int;
  vector : float array;
  number : int;
  store_key : int;  (** ring position the entry is stored under *)
}

type t

val create : scheme:Landmark.Number.scheme -> Ring.t -> t

val ring : t -> Ring.t

val store_key_of : t -> float array -> int
(** Ring key a vector's entry is stored under (landmark number scaled to
    the ring size). *)

val publish : t -> node:int -> vector:float array -> unit
(** Insert or refresh the entry describing [node].  Raises
    [Invalid_argument] if the ring is empty. *)

val unpublish : t -> int -> unit

val rehome : t -> unit
(** Recompute entry->host assignment after ring membership changed. *)

val entries_at : t -> int -> entry list
(** Entries hosted by a ring member. *)

val lookup :
  t ->
  vector:float array ->
  ?in_arc:int * int ->
  ?max_results:int ->
  ?ttl:int ->
  unit ->
  entry list
(** Route to the host of [vector]'s landmark key and walk up to [ttl]
    (default 32) successor hosts, collecting entries — optionally only
    those whose {e owner's} ring key lies in [in_arc = (lo, span)] (the
    finger-arc constraint).  Results sorted by landmark-vector distance,
    truncated to [max_results] (default 16). *)
