lib/geometry/point.ml: Array Float Format Prelude String
