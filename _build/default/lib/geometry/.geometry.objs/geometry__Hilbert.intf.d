lib/geometry/hilbert.mli: Point
