lib/geometry/zone.ml: Array Float Format List Point String
