lib/geometry/hilbert.ml: Array
