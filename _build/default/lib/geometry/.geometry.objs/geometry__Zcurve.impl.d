lib/geometry/zcurve.ml: Array Hilbert
