lib/geometry/zone.mli: Format Point
