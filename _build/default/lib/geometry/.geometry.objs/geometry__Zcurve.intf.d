lib/geometry/zcurve.mli: Point
