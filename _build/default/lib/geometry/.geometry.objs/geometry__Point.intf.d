lib/geometry/point.mli: Format Prelude
