(** Z-order (Morton) space-filling curve.

    Same interface as {!Hilbert} but with plain bit interleaving: cheaper,
    with weaker locality (jumps at power-of-two boundaries).  Used as the
    ablation alternative for landmark-number generation. *)

val index_of_coords : bits:int -> int array -> int
(** Morton index of a grid cell; same domain checks as
    {!Hilbert.index_of_coords}. *)

val coords_of_index : bits:int -> dims:int -> int -> int array
(** Inverse of {!index_of_coords}. *)

val index_of_point : bits:int -> Point.t -> int
(** Grid a unit-box point and take its Morton index. *)

val point_of_index : bits:int -> dims:int -> int -> Point.t
(** Center of the grid cell at the given index. *)
