(* Skilling's compact Hilbert transform ("Programming the Hilbert curve",
   AIP Conf. Proc. 707, 2004).  The "transposed" form of an index is an
   array X of [dims] words where bit b of the index (counting from the
   most significant of the dims*bits total) lives at X.(b mod dims), bit
   (b / dims counted from the top of each word). *)

let max_total_bits = 62

let check_geometry ~bits ~dims =
  if bits < 1 then invalid_arg "Hilbert: bits must be >= 1";
  if dims < 1 then invalid_arg "Hilbert: dims must be >= 1";
  if dims * bits > max_total_bits then invalid_arg "Hilbert: dims * bits exceeds 62"

(* Transposed Hilbert -> axes, in place. *)
let transpose_to_axes x ~bits =
  let n = Array.length x in
  (* Gray decode. *)
  let t = ref (x.(n - 1) lsr 1) in
  for i = n - 1 downto 1 do
    x.(i) <- x.(i) lxor x.(i - 1)
  done;
  x.(0) <- x.(0) lxor !t;
  (* Undo excess work. *)
  let q = ref 2 in
  let top = 1 lsl bits in
  while !q <> top do
    let p = !q - 1 in
    for i = n - 1 downto 0 do
      if x.(i) land !q <> 0 then x.(0) <- x.(0) lxor p
      else begin
        let t = (x.(0) lxor x.(i)) land p in
        x.(0) <- x.(0) lxor t;
        x.(i) <- x.(i) lxor t
      end
    done;
    q := !q lsl 1
  done

(* Axes -> transposed Hilbert, in place. *)
let axes_to_transpose x ~bits =
  let n = Array.length x in
  let m = 1 lsl (bits - 1) in
  (* Inverse undo. *)
  let q = ref m in
  while !q > 1 do
    let p = !q - 1 in
    for i = 0 to n - 1 do
      if x.(i) land !q <> 0 then x.(0) <- x.(0) lxor p
      else begin
        let t = (x.(0) lxor x.(i)) land p in
        x.(0) <- x.(0) lxor t;
        x.(i) <- x.(i) lxor t
      end
    done;
    q := !q lsr 1
  done;
  (* Gray encode. *)
  for i = 1 to n - 1 do
    x.(i) <- x.(i) lxor x.(i - 1)
  done;
  let t = ref 0 in
  let q = ref m in
  while !q > 1 do
    if x.(n - 1) land !q <> 0 then t := !t lxor (!q - 1);
    q := !q lsr 1
  done;
  for i = 0 to n - 1 do
    x.(i) <- x.(i) lxor !t
  done

(* Pack the transposed form into a single int: bit (bits-1-b) of x.(i)
   becomes index bit (total-1) - (b*dims + i). *)
let pack x ~bits =
  let dims = Array.length x in
  let idx = ref 0 in
  for b = bits - 1 downto 0 do
    for i = 0 to dims - 1 do
      idx := (!idx lsl 1) lor ((x.(i) lsr b) land 1)
    done
  done;
  !idx

let unpack idx ~bits ~dims =
  let x = Array.make dims 0 in
  let pos = ref (dims * bits) in
  for b = bits - 1 downto 0 do
    for i = 0 to dims - 1 do
      decr pos;
      x.(i) <- x.(i) lor (((idx lsr !pos) land 1) lsl b)
    done
  done;
  (* [pos] counts down from dims*bits to 0; its final value is 0. *)
  x

let index_of_coords ~bits coords =
  let dims = Array.length coords in
  check_geometry ~bits ~dims;
  let limit = 1 lsl bits in
  Array.iter
    (fun c -> if c < 0 || c >= limit then invalid_arg "Hilbert: coordinate out of range")
    coords;
  let x = Array.copy coords in
  axes_to_transpose x ~bits;
  pack x ~bits

let coords_of_index ~bits ~dims idx =
  check_geometry ~bits ~dims;
  if idx < 0 || idx >= 1 lsl (dims * bits) then invalid_arg "Hilbert: index out of range";
  let x = unpack idx ~bits ~dims in
  transpose_to_axes x ~bits;
  x

let grid_coord ~bits v =
  let cells = 1 lsl bits in
  let c = int_of_float (v *. float_of_int cells) in
  if c < 0 then 0 else if c >= cells then cells - 1 else c

let index_of_point ~bits p =
  index_of_coords ~bits (Array.map (grid_coord ~bits) p)

let point_of_index ~bits ~dims idx =
  let coords = coords_of_index ~bits ~dims idx in
  let cells = float_of_int (1 lsl bits) in
  Array.map (fun c -> (float_of_int c +. 0.5) /. cells) coords
