(** Points in a d-dimensional unit space.

    The CAN key space is the unit torus [0,1)^d; the landmark space is a
    plain Euclidean box.  Both use this representation; torus-ness is a
    property of the distance function used, not of the point. *)

type t = float array
(** Coordinates.  Owned by the caller; functions never mutate their
    arguments. *)

val create : float array -> t
(** Validate that every coordinate is in [0,1) and return the point
    (a defensive copy).  Raises [Invalid_argument] otherwise. *)

val dims : t -> int

val random : Prelude.Rng.t -> int -> t
(** Uniform point of the given dimensionality. *)

val torus_axis_dist : float -> float -> float
(** Wrap-around distance between two coordinates on the unit circle. *)

val torus_dist : t -> t -> float
(** Euclidean distance on the unit torus. *)

val euclidean_dist : t -> t -> float
(** Plain Euclidean distance (no wrap-around); also accepts points outside
    the unit box, as used for landmark vectors. *)

val pp : Format.formatter -> t -> unit
