let check_geometry ~bits ~dims =
  if bits < 1 then invalid_arg "Zcurve: bits must be >= 1";
  if dims < 1 then invalid_arg "Zcurve: dims must be >= 1";
  if dims * bits > Hilbert.max_total_bits then invalid_arg "Zcurve: dims * bits exceeds 62"

let index_of_coords ~bits coords =
  let dims = Array.length coords in
  check_geometry ~bits ~dims;
  let limit = 1 lsl bits in
  Array.iter
    (fun c -> if c < 0 || c >= limit then invalid_arg "Zcurve: coordinate out of range")
    coords;
  let idx = ref 0 in
  for b = bits - 1 downto 0 do
    for i = 0 to dims - 1 do
      idx := (!idx lsl 1) lor ((coords.(i) lsr b) land 1)
    done
  done;
  !idx

let coords_of_index ~bits ~dims idx =
  check_geometry ~bits ~dims;
  if idx < 0 || idx >= 1 lsl (dims * bits) then invalid_arg "Zcurve: index out of range";
  let coords = Array.make dims 0 in
  let pos = ref (dims * bits) in
  for b = bits - 1 downto 0 do
    for i = 0 to dims - 1 do
      decr pos;
      coords.(i) <- coords.(i) lor (((idx lsr !pos) land 1) lsl b)
    done
  done;
  coords

let grid_coord ~bits v =
  let cells = 1 lsl bits in
  let c = int_of_float (v *. float_of_int cells) in
  if c < 0 then 0 else if c >= cells then cells - 1 else c

let index_of_point ~bits p = index_of_coords ~bits (Array.map (grid_coord ~bits) p)

let point_of_index ~bits ~dims idx =
  let coords = coords_of_index ~bits ~dims idx in
  let cells = float_of_int (1 lsl bits) in
  Array.map (fun c -> (float_of_int c +. 0.5) /. cells) coords
