(** n-dimensional Hilbert space-filling curve (Skilling's algorithm).

    Maps between grid coordinates (each in [0, 2^bits)) and a scalar index
    in [0, 2^(dims*bits)) such that consecutive indices are adjacent grid
    cells — points close on the curve are close in space.  This is the
    dimension-reduction device of the paper's appendix: a landmark vector
    gridded into cells gets its cell's curve index as the node's
    {e landmark number}.

    [dims * bits] must be <= 62 so indices fit a native int. *)

val max_total_bits : int
(** 62: indices are non-negative OCaml ints. *)

val index_of_coords : bits:int -> int array -> int
(** [index_of_coords ~bits coords] is the Hilbert index of a grid cell.
    Raises [Invalid_argument] if a coordinate is outside [0, 2^bits), if
    [bits < 1], or if [dims * bits > 62]. *)

val coords_of_index : bits:int -> dims:int -> int -> int array
(** Inverse of {!index_of_coords}.  Raises [Invalid_argument] on an index
    outside [0, 2^(dims*bits)). *)

val index_of_point : bits:int -> Point.t -> int
(** Grid a point of the unit box ([coord * 2^bits], clamped) and take its
    Hilbert index. *)

val point_of_index : bits:int -> dims:int -> int -> Point.t
(** Center of the grid cell at the given index. *)
