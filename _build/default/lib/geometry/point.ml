type t = float array

let create coords =
  Array.iter
    (fun c ->
      if not (c >= 0.0 && c < 1.0) then invalid_arg "Point.create: coordinate out of [0,1)")
    coords;
  Array.copy coords

let dims = Array.length

let random rng d = Array.init d (fun _ -> Prelude.Rng.float rng 1.0)

let torus_axis_dist a b =
  let d = Float.abs (a -. b) in
  Float.min d (1.0 -. d)

let torus_dist a b =
  if Array.length a <> Array.length b then invalid_arg "Point.torus_dist: dimension mismatch";
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let d = torus_axis_dist a.(i) b.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc

let euclidean_dist a b =
  if Array.length a <> Array.length b then invalid_arg "Point.euclidean_dist: dimension mismatch";
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc

let pp ppf p =
  Format.fprintf ppf "(%s)"
    (String.concat ", " (Array.to_list (Array.map (Format.sprintf "%.4f") p)))
