(** Soft-state upkeep and demand-driven neighbor re-selection (§5.2).

    Ties the overlay to the discrete-event engine: members periodically
    refresh their published soft state (which otherwise expires), expired
    entries are swept, and members subscribe to the map regions behind
    their expressway table slots so that the appearance of a closer
    candidate — or the departure of the current one — triggers a
    re-selection instead of a periodic blind poll. *)

type t

val start :
  sim:Engine.Sim.t ->
  ?refresh_period:float ->
  ?sweep_period:float ->
  Builder.t ->
  t
(** Begin periodic refresh (default every 200,000 ms, well inside the
    default 600,000 ms TTL) and expiry sweeps (default every 100,000 ms).
    The builder must have been constructed with [~clock] reading this
    simulation's time for expiry to be meaningful. *)

val bus : t -> Pubsub.Bus.t
(** The pub/sub bus wired to the overlay's store.  Notification delivery
    latency models dissemination over the overlay (the physical latency
    of the eCAN route from the map host to the subscriber). *)

val stop : t -> unit
(** Cancel the periodic timers and deactivate the subscriptions. *)

val enable_liveness_polling : t -> ?period:float -> is_alive:(int -> bool) -> unit -> unit
(** §5.2's middle maintenance policy: map hosts periodically poll the
    liveliness of the nodes whose entries they store and retract (with
    departure notifications) the entries of dead ones.  [is_alive]
    defaults the polling to overlay membership when you pass
    [Can.Overlay.mem]; any predicate works (e.g. a failure injector).
    [period] defaults to 300,000 ms.  Stopped by {!stop}. *)

val subscribe_all_slots : t -> unit
(** Every member subscribes, for each filled table slot, to the slot's
    region with a [Closer_than] condition at its current representative
    distance, plus a [Departure_of] watch on the representative.  Matching
    notifications re-run selection for just that slot. *)

val node_departs : t -> int -> unit
(** Proactive departure of a member: retract its soft state (notifying
    watchers), remove it from the overlay, rehost entries. *)

val node_joins : t -> int -> unit
(** Dynamic join through the pub/sub plane: the newcomer enters the CAN,
    publishes its soft state via the bus (so [Closer_than] /
    [Any_new_entry] watchers fire), builds and watches its own table, and
    the node whose zone was split refreshes its (now deeper) table. *)

val reselections : t -> int
(** Number of slot re-selections performed so far (observability). *)

val refreshes : t -> int
(** Number of entry refreshes performed so far. *)
