(** Neighbor-selection strategies for proximity-neighbor selection.

    When an overlay node must pick its representative for a high-order
    zone (eCAN), a finger arc (Chord) or a prefix region (Pastry), the
    strategy decides which member of the region it takes:

    - [Random_pick] — ignore topology (the paper's baseline);
    - [Hybrid] — the paper's contribution: one soft-state map lookup for
      candidates near the node's own landmark number, then at most [rtts]
      real RTT probes to pick the closest;
    - [Optimal] — the physically closest member, as if infinitely many
      RTTs were allowed (the paper's "optimal" curve isolating the
      overlay's structural penalty). *)

type t =
  | Random_pick
  | Hybrid of { rtts : int; lookup_results : int; lookup_ttl : int }
  | Load_aware of { rtts : int; lookup_results : int; lookup_ttl : int; load_weight : float }
      (** §6 QoS variant: probe candidates like [Hybrid], but rank them by
          [rtt * (1 + load_weight * load)] using the load statistics
          piggybacked on the soft-state entries — trading a little
          network distance for spare forwarding capacity. *)
  | Optimal

val hybrid : ?lookup_results:int -> ?lookup_ttl:int -> rtts:int -> unit -> t
(** [Hybrid] with defaults [lookup_results = max 16 rtts], [lookup_ttl = 2]. *)

val load_aware :
  ?lookup_results:int -> ?lookup_ttl:int -> ?load_weight:float -> rtts:int -> unit -> t
(** [Load_aware] with the same lookup defaults and [load_weight = 1.0]. *)

val to_string : t -> string
