type t =
  | Random_pick
  | Hybrid of { rtts : int; lookup_results : int; lookup_ttl : int }
  | Load_aware of { rtts : int; lookup_results : int; lookup_ttl : int; load_weight : float }
  | Optimal

let hybrid ?lookup_results ?(lookup_ttl = 2) ~rtts () =
  if rtts < 1 then invalid_arg "Strategy.hybrid: rtts must be >= 1";
  let lookup_results = match lookup_results with Some r -> r | None -> max 16 rtts in
  Hybrid { rtts; lookup_results; lookup_ttl }

let load_aware ?lookup_results ?(lookup_ttl = 2) ?(load_weight = 1.0) ~rtts () =
  if rtts < 1 then invalid_arg "Strategy.load_aware: rtts must be >= 1";
  if load_weight < 0.0 then invalid_arg "Strategy.load_aware: negative load weight";
  let lookup_results = match lookup_results with Some r -> r | None -> max 16 rtts in
  Load_aware { rtts; lookup_results; lookup_ttl; load_weight }

let to_string = function
  | Random_pick -> "random"
  | Hybrid { rtts; _ } -> Printf.sprintf "hybrid(rtts=%d)" rtts
  | Load_aware { rtts; load_weight; _ } ->
    Printf.sprintf "load-aware(rtts=%d,w=%.2f)" rtts load_weight
  | Optimal -> "optimal"
