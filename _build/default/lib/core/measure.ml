module Rng = Prelude.Rng
module Stats = Prelude.Stats
module Oracle = Topology.Oracle
module Can_overlay = Can.Overlay
module Ecan_exp = Ecan.Expressway
module Zone = Geometry.Zone

type sample = {
  src : int;
  dst : int;
  hops : int;
  latency : float;
  shortest : float;
}

type report = {
  samples : sample list;
  stretch : Stats.summary;
  hops : Stats.summary;
}

let path_latency oracle hops =
  let rec go acc = function
    | a :: (b :: _ as rest) -> go (acc +. Oracle.dist oracle a b) rest
    | [ _ ] | [] -> acc
  in
  go 0.0 hops

let sample_of_route oracle ~src ~dst hops =
  {
    src;
    dst;
    hops = List.length hops - 1;
    latency = path_latency oracle hops;
    shortest = Oracle.dist oracle src dst;
  }

let dst_point builder dst =
  Zone.center (Can_overlay.node (Ecan_exp.can builder.Builder.ecan) dst).Can_overlay.zone

let route_sample builder ~src ~dst =
  let oracle = builder.Builder.oracle in
  match Ecan_exp.route builder.Builder.ecan ~src (dst_point builder dst) with
  | Some hops -> Some (sample_of_route oracle ~src ~dst hops)
  | None -> None

let report_of_samples samples =
  let stretches =
    List.filter_map
      (fun s -> if s.shortest > 0.0 then Some (s.latency /. s.shortest) else None)
      samples
  in
  {
    samples;
    stretch = Stats.summarize (Array.of_list stretches);
    hops =
      Stats.summarize
        (Array.of_list (List.map (fun (s : sample) -> float_of_int s.hops) samples));
  }

let sampled_routes ?pairs builder route =
  let can = Ecan_exp.can builder.Builder.ecan in
  let ids = Can_overlay.node_ids can in
  let n = Array.length ids in
  if n < 2 then invalid_arg "Measure: need at least two members";
  let pairs = match pairs with Some p -> p | None -> 2 * n in
  let rng = Rng.copy builder.Builder.rng in
  let samples = ref [] in
  for _ = 1 to pairs do
    let src = Rng.pick rng ids in
    let rec draw_dst () =
      let d = Rng.pick rng ids in
      if d = src then draw_dst () else d
    in
    let dst = draw_dst () in
    match route ~src ~dst with
    | Some s -> samples := s :: !samples
    | None -> failwith "Measure: routing failed"
  done;
  report_of_samples !samples

let route_stretch ?pairs builder = sampled_routes ?pairs builder (fun ~src ~dst -> route_sample builder ~src ~dst)

let can_route_report ?pairs builder =
  let can = Ecan_exp.can builder.Builder.ecan in
  let oracle = builder.Builder.oracle in
  sampled_routes ?pairs builder (fun ~src ~dst ->
      match Can_overlay.route can ~src (dst_point builder dst) with
      | Some hops -> Some (sample_of_route oracle ~src ~dst hops)
      | None -> None)

let neighbor_quality builder =
  let ecan = builder.Builder.ecan in
  let can = Ecan_exp.can ecan in
  let oracle = builder.Builder.oracle in
  let ratios = ref [] in
  Array.iter
    (fun id ->
      List.iter
        (fun (row, digit, target) ->
          let region = Ecan_exp.region_prefix ecan id ~row ~digit in
          let candidates = Can_overlay.members_with_prefix can region in
          match Oracle.nearest oracle id candidates with
          | Some (_, best) when best > 0.0 ->
            ratios := Oracle.dist oracle id target /. best :: !ratios
          | Some _ | None -> ())
        (Ecan_exp.entries ecan id))
    (Can_overlay.node_ids can);
  Stats.summarize (Array.of_list !ratios)
