(** Measurement of overlay routing quality.

    The metric throughout the paper is {e stretch}: accumulated physical
    latency of the route the overlay actually takes, divided by the
    shortest-path latency between the endpoints.  Logical hop counts are
    collected alongside (Fig. 2). *)

type sample = {
  src : int;
  dst : int;
  hops : int;  (** logical overlay hops *)
  latency : float;  (** accumulated physical latency of the route, ms *)
  shortest : float;  (** direct shortest-path latency, ms *)
}

type report = {
  samples : sample list;
  stretch : Prelude.Stats.summary;
  hops : Prelude.Stats.summary;
}

val path_latency : Topology.Oracle.t -> int list -> float
(** Physical latency accumulated along consecutive hop pairs. *)

val route_sample : Builder.t -> src:int -> dst:int -> sample option
(** Route from [src] to a point owned by [dst] over the eCAN; [None] if
    routing fails (does not happen on consistent overlays). *)

val route_stretch : ?pairs:int -> Builder.t -> report
(** Sample [pairs] (default: twice the overlay size, as in the paper)
    random source/destination pairs among current members and measure
    their routes.  Pairs with [src = dst] are redrawn. *)

val can_route_report : ?pairs:int -> Builder.t -> report
(** Same measurement over plain greedy CAN routing (no expressways), for
    the eCAN-vs-CAN comparison of Fig. 2. *)

val neighbor_quality : Builder.t -> Prelude.Stats.summary
(** Over every filled expressway table slot: ratio of the distance to the
    chosen representative over the distance to the best possible member of
    that region (1.0 = optimal selection everywhere). *)
