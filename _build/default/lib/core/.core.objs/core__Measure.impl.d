lib/core/measure.ml: Array Builder Can Ecan Geometry List Prelude Topology
