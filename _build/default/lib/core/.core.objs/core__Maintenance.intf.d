lib/core/maintenance.mli: Builder Engine Pubsub
