lib/core/maintenance.ml: Array Builder Can Ecan Engine Geometry Hashtbl Landmark List Logs Measure Option Pubsub Softstate Topology
