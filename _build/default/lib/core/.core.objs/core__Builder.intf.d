lib/core/builder.mli: Ecan Hashtbl Landmark Prelude Softstate Strategy Topology
