lib/core/measure.mli: Builder Prelude Topology
