lib/core/builder.ml: Array Can Ecan Geometry Hashtbl Landmark List Logs Option Prelude Softstate Strategy Topology
