lib/core/strategy.mli:
