lib/core/strategy.ml: Printf
