lib/softstate/store.mli: Can Geometry Landmark Prelude
