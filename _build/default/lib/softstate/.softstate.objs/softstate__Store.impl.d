lib/softstate/store.ml: Array Can Float Format Geometry Hashtbl Landmark List Prelude Result
