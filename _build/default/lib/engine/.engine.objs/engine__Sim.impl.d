lib/engine/sim.ml: Array
