lib/engine/sim.mli:
