(** The paper's cost argument quantified: to find a nearby neighbor at a
    given accuracy, how many probe messages does each technique spend, and
    what does maintaining the global soft-state cost instead?

    Probes-to-reach-target come from the Figures 3/4 curves; the
    soft-state side counts the actual messages of a node's join
    (landmark measurements, per-region publishes, one map lookup and the
    RTT probes). *)

val run : ?scale:int -> Format.formatter -> unit
