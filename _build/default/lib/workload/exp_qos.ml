module Oracle = Topology.Oracle
module Builder = Core.Builder
module Strategy = Core.Strategy
module Store = Softstate.Store
module Can_overlay = Can.Overlay
module Ecan_exp = Ecan.Expressway
module Zone = Geometry.Zone
module Stats = Prelude.Stats
module Rng = Prelude.Rng

let overlay_size = 2048
let route_count = 4096
let high_capacity = 10.0
let high_capacity_fraction = 0.1

(* Route a fixed workload and account the forwarding work done by each
   intermediate node. *)
let run_traffic builder =
  let ecan = builder.Builder.ecan in
  let can = Ecan_exp.can ecan in
  let oracle = builder.Builder.oracle in
  let ids = Can_overlay.node_ids can in
  let transits = Hashtbl.create (Array.length ids) in
  let bump id = Hashtbl.replace transits id (1 + Option.value ~default:0 (Hashtbl.find_opt transits id)) in
  let rng = Rng.create 616 in
  let stretches = ref [] in
  for _ = 1 to route_count do
    let src = Rng.pick rng ids in
    let rec draw () =
      let d = Rng.pick rng ids in
      if d = src then draw () else d
    in
    let dst = draw () in
    let target = Zone.center (Can_overlay.node can dst).Can_overlay.zone in
    match Ecan_exp.route ecan ~src target with
    | None -> failwith "Exp_qos: routing failed"
    | Some hops ->
      let rec latency acc = function
        | a :: (b :: _ as rest) -> latency (acc +. Oracle.dist oracle a b) rest
        | [ _ ] | [] -> acc
      in
      List.iteri (fun i h -> if i > 0 && i < List.length hops - 1 then bump h) hops;
      let shortest = Oracle.dist oracle src dst in
      if shortest > 0.0 then stretches := latency 0.0 hops /. shortest :: !stretches
  done;
  (Stats.summarize (Array.of_list !stretches), transits)

let load_summary builder capacities transits =
  let can = Ecan_exp.can builder.Builder.ecan in
  let norm =
    Array.map
      (fun id ->
        float_of_int (Option.value ~default:0 (Hashtbl.find_opt transits id))
        /. Hashtbl.find capacities id)
      (Can_overlay.node_ids can)
  in
  Stats.summarize norm

let publish_loads builder capacities transits =
  let store = builder.Builder.store in
  let can = Ecan_exp.can builder.Builder.ecan in
  let ids = Can_overlay.node_ids can in
  let max_norm =
    Array.fold_left
      (fun acc id ->
        Float.max acc
          (float_of_int (Option.value ~default:0 (Hashtbl.find_opt transits id))
          /. Hashtbl.find capacities id))
      1e-9 ids
  in
  Array.iter
    (fun id ->
      let capacity = Hashtbl.find capacities id in
      let load =
        float_of_int (Option.value ~default:0 (Hashtbl.find_opt transits id))
        /. capacity /. max_norm
      in
      List.iter
        (fun region -> Store.update_stats store ~region ~node:id ~load ~capacity)
        (Store.regions_of store id))
    ids

let run ?(scale = 1) ppf =
  let oracle = Ctx.oracle ~scale Ctx.Tsk_large Topology.Transit_stub.Manual in
  let size = max 128 (overlay_size / scale) in
  let builder =
    Builder.build oracle
      {
        Builder.default_config with
        Builder.overlay_size = size;
        strategy = Strategy.hybrid ~rtts:10 ();
        seed = 42;
      }
  in
  (* heterogeneous capacities: a few well-provisioned nodes *)
  let cap_rng = Rng.create 717 in
  let capacities = Hashtbl.create size in
  Array.iter
    (fun id ->
      Hashtbl.replace capacities id
        (if Rng.chance cap_rng high_capacity_fraction then high_capacity else 1.0))
    builder.Builder.members;
  (* round 1: proximity-only selection *)
  let stretch1, transits1 = run_traffic builder in
  let load1 = load_summary builder capacities transits1 in
  (* publish observed loads, re-select load-aware, run the same traffic *)
  publish_loads builder capacities transits1;
  Builder.rebuild_tables builder (Strategy.load_aware ~rtts:10 ~load_weight:2.0 ());
  let stretch2, transits2 = run_traffic builder in
  let load2 = load_summary builder capacities transits2 in
  let table =
    Tableout.create
      ~title:
        (Printf.sprintf
           "Section 6: load-aware neighbor selection (%d nodes, %d routes, %d%% high-capacity)"
           size route_count
           (int_of_float (100.0 *. high_capacity_fraction)))
      ~columns:[ "selection"; "stretch"; "max load/cap"; "p99 load/cap"; "p90 load/cap" ]
  in
  let row name (stretch : Stats.summary) (load : Stats.summary) =
    Tableout.add_row table
      [
        name;
        Tableout.cell_f stretch.Stats.mean;
        Tableout.cell_f load.Stats.max;
        Tableout.cell_f load.Stats.p99;
        Tableout.cell_f load.Stats.p90;
      ]
  in
  row "proximity only (hybrid)" stretch1 load1;
  row "load-aware (w=2.0)" stretch2 load2;
  Tableout.render ppf table
