let run ?(scale = 1) ppf =
  let table =
    Tableout.create ~title:"Table 2: experiment parameters (defaults and sweep ranges)"
      ~columns:[ "parameter"; "default"; "range" ]
  in
  let scaled n = max 128 (n / scale) in
  List.iter
    (fun row -> Tableout.add_row table row)
    [
      [ "# overlay nodes"; string_of_int (scaled 4096);
        Printf.sprintf "%d - %d" (scaled 512) (scaled 8192) ];
      [ "# landmarks"; "15"; "10 - 20" ];
      [ "# RTT measurements"; "10"; "1 - 40" ];
      [ "map condense rate"; "1.0"; "0.25 - 8.0" ];
      [ "eCAN dimensionality"; "2"; "2 (CAN baseline: 2 - 5)" ];
      [ "high-order fan (k)"; "4"; "fixed" ];
      [ "physical topology"; "~10,000 nodes"; "tsk-large / tsk-small" ];
      [ "link latencies"; "GT-ITM random"; "GT-ITM random / manual 20-5-2-1 ms" ];
      [ "routes measured"; "2x overlay size"; "fixed" ];
    ];
  Tableout.render ppf table
