(** §6 "other uses of global state": heterogeneity- and load-aware
    neighbor selection.  Nodes publish load statistics alongside their
    proximity information; a load-aware selection trades a little network
    distance for spare forwarding capacity, flattening hot spots. *)

val run : ?scale:int -> Format.formatter -> unit
