module Ts = Topology.Transit_stub
module Oracle = Topology.Oracle
module Rng = Prelude.Rng

type topology_variant = Tsk_large | Tsk_small

let variant_name = function Tsk_large -> "tsk-large" | Tsk_small -> "tsk-small"

let latency_name = function Ts.Gtitm_random -> "gt-itm" | Ts.Manual -> "manual"

let params variant latency =
  match variant with
  | Tsk_large -> Ts.tsk_large ~latency ()
  | Tsk_small -> Ts.tsk_small ~latency ()

let topo_seed = 20030519
(* Fixed: every experiment runs over the same physical networks. *)

let cache : (string, Oracle.t) Hashtbl.t = Hashtbl.create 8

let oracle ?(scale = 1) variant latency =
  let key = Printf.sprintf "%s/%s/%d" (variant_name variant) (latency_name latency) scale in
  match Hashtbl.find_opt cache key with
  | Some o -> o
  | None ->
    let p =
      match variant with
      | Tsk_large -> Ts.tsk_large ~latency ~scale ()
      | Tsk_small -> Ts.tsk_small ~latency ~scale ()
    in
    let o = Oracle.build (Ts.generate (Rng.create topo_seed) p) in
    Hashtbl.replace cache key o;
    o
