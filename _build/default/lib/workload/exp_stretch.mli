(** Figures 10-13: eCAN routing stretch as a function of the RTT budget
    and the number of landmarks, with the optimal
    (proximity-selection-with-infinite-RTTs) curve for reference.

    One figure per (topology variant, latency model) combination, 4096
    overlay nodes by default. *)

val fig10 : ?scale:int -> Format.formatter -> unit
(** tsk-large, GT-ITM random latencies. *)

val fig11 : ?scale:int -> Format.formatter -> unit
(** tsk-large, manual latencies. *)

val fig12 : ?scale:int -> Format.formatter -> unit
(** tsk-small, GT-ITM random latencies. *)

val fig13 : ?scale:int -> Format.formatter -> unit
(** tsk-small, manual latencies. *)
