module Oracle = Topology.Oracle
module Can_overlay = Can.Overlay
module Zone = Geometry.Zone
module Landmarks = Landmark.Landmarks
module Number = Landmark.Number
module Rng = Prelude.Rng

let overlay_size = 4096
let landmark_count = 15

type layout_stats = {
  top10_volume_share : float;  (* fraction of the space owned by the largest 10% of zones *)
  max_neighbors : int;
  mean_neighbors : float;
  volume_imbalance : float;  (* max zone volume / mean zone volume *)
}

let layout_stats can =
  let ids = Can_overlay.node_ids can in
  let n = Array.length ids in
  let volumes = Array.map (fun id -> Zone.volume (Can_overlay.node can id).Can_overlay.zone) ids in
  Array.sort (fun a b -> compare b a) volumes;
  let top = max 1 (n / 10) in
  let top_sum = Array.fold_left ( +. ) 0.0 (Array.sub volumes 0 top) in
  let degree = Array.map (fun id -> List.length (Can_overlay.node can id).Can_overlay.neighbors) ids in
  {
    top10_volume_share = top_sum;
    max_neighbors = Array.fold_left max 0 degree;
    mean_neighbors =
      float_of_int (Array.fold_left ( + ) 0 degree) /. float_of_int n;
    volume_imbalance = volumes.(0) *. float_of_int n;
  }

(* The original TA-CAN binning: nodes with the same landmark *ordering*
   (of the first 4 landmarks) join the same portion of the space; bins
   are laid out on a square grid. *)
let ordering_point rng vector =
  let bins = Landmarks.ordering_bin_count () in
  let side = int_of_float (Float.ceil (sqrt (float_of_int bins))) in
  let bin = Landmarks.ordering_bin vector in
  let cx = bin mod side and cy = bin / side in
  let cell = 1.0 /. float_of_int side in
  [|
    Float.min (Float.pred 1.0) ((float_of_int cx +. Rng.float rng 1.0) *. cell);
    Float.min (Float.pred 1.0) ((float_of_int cy +. Rng.float rng 1.0) *. cell);
  |]

(* Our landmark-number variant: the vector's position in the space via the
   space-filling curve, jittered within its grid cell so points stay
   distinct. *)
let tacan_point scheme rng vector =
  let cell = Number.position_in_zone scheme (Zone.full 2) vector in
  let half = 0.5 /. float_of_int (1 lsl scheme.Number.zone_bits) in
  Array.map
    (fun c ->
      let v = c +. Rng.float_in rng (-.half) half in
      if v < 0.0 then 0.0 else if v >= 1.0 then Float.pred 1.0 else v)
    cell

let build_overlay oracle ~size ~point_of =
  let rng = Rng.create 4242 in
  let all = Array.init (Oracle.node_count oracle) (fun i -> i) in
  let members = Rng.sample rng size all in
  let can = Can_overlay.create ~dims:2 members.(0) in
  for i = 1 to size - 1 do
    ignore (Can_overlay.join can members.(i) (point_of rng members.(i)))
  done;
  can

let run ?(scale = 1) ppf =
  let oracle = Ctx.oracle ~scale Ctx.Tsk_large Topology.Transit_stub.Gtitm_random in
  let size = max 128 (overlay_size / scale) in
  let rng = Rng.create 999 in
  let lms = Landmarks.choose rng oracle landmark_count in
  let max_latency = Number.calibrate_max_latency oracle (Landmarks.nodes lms) in
  let scheme = Number.default_scheme ~max_latency () in
  let vectors = Hashtbl.create size in
  let vector_of node =
    match Hashtbl.find_opt vectors node with
    | Some v -> v
    | None ->
      let v = Landmarks.vector lms node in
      Hashtbl.replace vectors node v;
      v
  in
  let uniform = build_overlay oracle ~size ~point_of:(fun rng _ -> Geometry.Point.random rng 2) in
  let tacan =
    build_overlay oracle ~size ~point_of:(fun rng node -> tacan_point scheme rng (vector_of node))
  in
  let tacan_ordering =
    build_overlay oracle ~size ~point_of:(fun rng node -> ordering_point rng (vector_of node))
  in
  let table =
    Tableout.create
      ~title:
        (Printf.sprintf
           "Topologically-Aware CAN layout imbalance (%d nodes): geographic layout skews zones"
           size)
      ~columns:
        [ "layout"; "top-10% nodes own"; "max neighbors"; "mean neighbors"; "max/mean volume" ]
  in
  let row name s =
    Tableout.add_row table
      [
        name;
        Printf.sprintf "%.1f%% of space" (100.0 *. s.top10_volume_share);
        Tableout.cell_i s.max_neighbors;
        Tableout.cell_f s.mean_neighbors;
        Tableout.cell_f s.volume_imbalance;
      ]
  in
  row "uniform CAN" (layout_stats uniform);
  row "TA-CAN (ordering bins)" (layout_stats tacan_ordering);
  row "TA-CAN (landmark numbers)" (layout_stats tacan);
  Tableout.render ppf table
