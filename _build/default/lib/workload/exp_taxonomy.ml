module Oracle = Topology.Oracle
module Can_overlay = Can.Overlay
module Zone = Geometry.Zone
module Point = Geometry.Point
module Landmarks = Landmark.Landmarks
module Number = Landmark.Number
module Builder = Core.Builder
module Strategy = Core.Strategy
module Measure = Core.Measure
module Stats = Prelude.Stats
module Rng = Prelude.Rng

let overlay_size = 2048
let route_count = 2048
let landmark_count = 15

type outcome = { stretch : Stats.summary; hops : Stats.summary; max_neighbors : int }

let max_neighbors can =
  Array.fold_left
    (fun acc id -> max acc (List.length (Can_overlay.node can id).Can_overlay.neighbors))
    0 (Can_overlay.node_ids can)

let measure_can oracle can route =
  let ids = Can_overlay.node_ids can in
  let rng = Rng.create 808 in
  let stretches = ref [] and hops = ref [] in
  for _ = 1 to route_count do
    let src = Rng.pick rng ids in
    let rec draw () =
      let d = Rng.pick rng ids in
      if d = src then draw () else d
    in
    let dst = draw () in
    let target = Zone.center (Can_overlay.node can dst).Can_overlay.zone in
    match route ~src target with
    | None -> failwith "Exp_taxonomy: routing failed"
    | Some path ->
      let rec latency acc = function
        | a :: (b :: _ as rest) -> latency (acc +. Oracle.dist oracle a b) rest
        | [ _ ] | [] -> acc
      in
      let shortest = Oracle.dist oracle src dst in
      if shortest > 0.0 then begin
        stretches := latency 0.0 path /. shortest :: !stretches;
        hops := float_of_int (List.length path - 1) :: !hops
      end
  done;
  {
    stretch = Stats.summarize (Array.of_list !stretches);
    hops = Stats.summarize (Array.of_list !hops);
    max_neighbors = max_neighbors can;
  }

let build_can oracle members ~point_of =
  let rng = Rng.create 4243 in
  let can = Can_overlay.create ~dims:2 members.(0) in
  for i = 1 to Array.length members - 1 do
    ignore (Can_overlay.join can members.(i) (point_of rng members.(i)))
  done;
  ignore oracle;
  can

let run ?(scale = 1) ppf =
  let oracle = Ctx.oracle ~scale Ctx.Tsk_large Topology.Transit_stub.Gtitm_random in
  let size = max 128 (overlay_size / scale) in
  let rng = Rng.create 909 in
  let all = Array.init (Oracle.node_count oracle) (fun i -> i) in
  let members = Rng.sample rng size all in
  let lms = Landmarks.choose rng oracle landmark_count in
  let scheme =
    Number.default_scheme ~max_latency:(Number.calibrate_max_latency oracle (Landmarks.nodes lms)) ()
  in
  let vectors = Hashtbl.create size in
  let vector_of node =
    match Hashtbl.find_opt vectors node with
    | Some v -> v
    | None ->
      let v = Landmarks.vector lms node in
      Hashtbl.replace vectors node v;
      v
  in
  (* (1) topology-blind baseline: uniform layout + greedy routing *)
  let uniform = build_can oracle members ~point_of:(fun rng _ -> Point.random rng 2) in
  let baseline = measure_can oracle uniform (fun ~src p -> Can_overlay.route uniform ~src p) in
  (* (2) geographic layout: landmark-positioned joins, greedy routing *)
  let tacan_point rng vector =
    let cell = Number.position_in_zone scheme (Zone.full 2) vector in
    let half = 0.5 /. float_of_int (1 lsl scheme.Number.zone_bits) in
    Array.map
      (fun c ->
        let v = c +. Rng.float_in rng (-.half) half in
        if v < 0.0 then 0.0 else if v >= 1.0 then Float.pred 1.0 else v)
      cell
  in
  let geo = build_can oracle members ~point_of:(fun rng node -> tacan_point rng (vector_of node)) in
  let geographic = measure_can oracle geo (fun ~src p -> Can_overlay.route geo ~src p) in
  (* (3) proximity routing: uniform layout, latency-aware forwarding *)
  let proximity_routing =
    measure_can oracle uniform (fun ~src p ->
        Can_overlay.route_proximity uniform ~dist:(fun a b -> Oracle.dist oracle a b) ~src p)
  in
  (* (4) proximity-neighbor selection: the paper's hybrid eCAN *)
  let b =
    Builder.build oracle
      {
        Builder.default_config with
        Builder.overlay_size = size;
        landmark_count;
        strategy = Strategy.hybrid ~rtts:10 ();
        seed = 42;
      }
  in
  let report = Measure.route_stretch ~pairs:route_count b in
  let pns =
    {
      stretch = report.Measure.stretch;
      hops = report.Measure.hops;
      max_neighbors = max_neighbors (Ecan.Expressway.can b.Builder.ecan);
    }
  in
  let table =
    Tableout.create
      ~title:
        (Printf.sprintf "Taxonomy (Castro et al.): topology exploitation techniques (%d nodes)"
           size)
      ~columns:[ "technique"; "stretch"; "p90 stretch"; "hops"; "max neighbors" ]
  in
  let row name o =
    Tableout.add_row table
      [
        name;
        Tableout.cell_f o.stretch.Stats.mean;
        Tableout.cell_f o.stretch.Stats.p90;
        Tableout.cell_f o.hops.Stats.mean;
        Tableout.cell_i o.max_neighbors;
      ]
  in
  row "topology-blind CAN" baseline;
  row "geographic layout (TA-CAN)" geographic;
  row "proximity routing" proximity_routing;
  row "proximity neighbor selection" pns;
  Tableout.render ppf table
