(** §5.4 "Pushing limits of overlay performance": quantitative breakdown
    of the stretch penalty into (a) the structural cost of the overlay's
    prefix constraint (optimal vs shortest path) and (b) the inaccuracy of
    landmark+RTT proximity generation (hybrid vs optimal), against the
    random-selection baseline. *)

val run : ?scale:int -> Format.formatter -> unit
