(** §5.5 "pushing limits" optimisations and design-choice ablations:

    - landmark {e groups}: split the landmark set into groups, rank
      candidates by the best per-group match, reducing false clustering;
    - {e hierarchical} landmark spaces: coarse global pre-selection
      refined by the remaining components;
    - hill climbing (the §1 heuristic, for contrast — stuck in local
      minima);
    - space-filling-curve choice: Hilbert vs Z-order as the landmark
      number / map placement curve, measured end-to-end on eCAN routing
      stretch. *)

val run : ?scale:int -> Format.formatter -> unit
