(** §5 generality claim: the landmark+RTT selection technique applies to
    any overlay with neighbor-selection flexibility.  Runs Chord (finger
    arcs) and Pastry (prefix regions) under random / hybrid / optimal
    selection and reports routing stretch. *)

val run : ?scale:int -> Format.formatter -> unit
