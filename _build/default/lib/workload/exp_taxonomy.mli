(** The paper's §1 taxonomy of topology-exploitation techniques, run head
    to head on the same network: (1) geographic layout (Topologically-
    Aware CAN), (2) proximity routing (topology-blind overlay, latency-
    aware forwarding), (3) proximity-neighbor selection (the paper's
    approach), against a topology-blind baseline. *)

val run : ?scale:int -> Format.formatter -> unit
