lib/workload/exp_xoverlay.mli: Format
