lib/workload/tableout.mli: Format
