lib/workload/exp_taxonomy.mli: Format
