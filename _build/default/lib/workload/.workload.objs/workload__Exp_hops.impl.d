lib/workload/exp_hops.ml: Can Ecan Geometry List Prelude Tableout
