lib/workload/exp_coords.ml: Array Ctx Format Hashtbl Landmark List Prelude Proximity Tableout Topology
