lib/workload/exp_scale.mli: Format
