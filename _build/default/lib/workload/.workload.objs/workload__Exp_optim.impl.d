lib/workload/exp_optim.ml: Array Can Core Ctx Float Geometry Hashtbl Landmark List Prelude Printf Proximity Tableout Topology
