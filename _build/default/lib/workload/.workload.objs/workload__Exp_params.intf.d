lib/workload/exp_params.mli: Format
