lib/workload/exp_qos.mli: Format
