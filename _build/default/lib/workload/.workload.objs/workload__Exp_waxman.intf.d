lib/workload/exp_waxman.mli: Format
