lib/workload/registry.ml: Exp_condense Exp_coords Exp_cost Exp_gap Exp_hops Exp_nn Exp_optim Exp_params Exp_qos Exp_scale Exp_stretch Exp_tacan Exp_taxonomy Exp_waxman Exp_xoverlay Format List
