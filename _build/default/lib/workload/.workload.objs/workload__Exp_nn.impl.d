lib/workload/exp_nn.ml: Array Can Ctx Geometry Hashtbl Landmark List Prelude Printf Proximity Tableout Topology
