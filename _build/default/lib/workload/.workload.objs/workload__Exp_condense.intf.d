lib/workload/exp_condense.mli: Format
