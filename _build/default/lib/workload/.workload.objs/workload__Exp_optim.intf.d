lib/workload/exp_optim.mli: Format
