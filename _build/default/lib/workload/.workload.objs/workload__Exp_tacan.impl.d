lib/workload/exp_tacan.ml: Array Can Ctx Float Geometry Hashtbl Landmark List Prelude Printf Tableout Topology
