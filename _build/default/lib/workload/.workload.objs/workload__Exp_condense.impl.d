lib/workload/exp_condense.ml: Core Ctx List Prelude Printf Softstate Tableout Topology
