lib/workload/exp_qos.ml: Array Can Core Ctx Ecan Float Geometry Hashtbl List Option Prelude Printf Softstate Tableout Topology
