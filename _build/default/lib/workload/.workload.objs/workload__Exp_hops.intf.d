lib/workload/exp_hops.mli: Format
