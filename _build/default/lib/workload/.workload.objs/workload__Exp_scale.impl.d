lib/workload/exp_scale.ml: Core Ctx List Prelude Tableout Topology
