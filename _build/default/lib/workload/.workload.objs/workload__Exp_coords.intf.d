lib/workload/exp_coords.mli: Format
