lib/workload/registry.mli: Format
