lib/workload/exp_tacan.mli: Format
