lib/workload/exp_nn.mli: Ctx Format
