lib/workload/exp_taxonomy.ml: Array Can Core Ctx Ecan Float Geometry Hashtbl Landmark List Prelude Printf Tableout Topology
