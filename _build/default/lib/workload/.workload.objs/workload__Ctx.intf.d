lib/workload/ctx.mli: Topology
