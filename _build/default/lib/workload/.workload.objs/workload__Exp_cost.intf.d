lib/workload/exp_cost.mli: Format
