lib/workload/tableout.ml: Float Format List Printf String
