lib/workload/exp_params.ml: List Printf Tableout
