lib/workload/exp_stretch.mli: Format
