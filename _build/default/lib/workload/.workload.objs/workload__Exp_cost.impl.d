lib/workload/exp_cost.ml: Array Can Core Ctx Ecan Exp_nn Format List Printf Softstate Tableout Topology
