lib/workload/ctx.ml: Hashtbl Prelude Printf Topology
