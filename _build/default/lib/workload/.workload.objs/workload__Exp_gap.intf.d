lib/workload/exp_gap.mli: Format
