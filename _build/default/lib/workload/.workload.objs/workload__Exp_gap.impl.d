lib/workload/exp_gap.ml: Core Ctx List Prelude Printf Tableout Topology
