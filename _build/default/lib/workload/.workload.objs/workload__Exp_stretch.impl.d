lib/workload/exp_stretch.ml: Core Ctx List Prelude Printf Tableout Topology
