lib/workload/exp_xoverlay.ml: Array Chord Ctx Format Hashtbl Landmark List Pastry Prelude Printf Tableout Topology
