lib/workload/exp_waxman.ml: Array Can Core Geometry Hashtbl Landmark List Prelude Printf Proximity Tableout Topology
