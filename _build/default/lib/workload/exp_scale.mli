(** Figures 14-15: routing stretch vs overlay size, hybrid
    neighbor-selection against the random-neighbor baseline, on both
    topology variants. *)

val fig14 : ?scale:int -> Format.formatter -> unit
(** GT-ITM random latencies. *)

val fig15 : ?scale:int -> Format.formatter -> unit
(** Manual latencies. *)
