module Builder = Core.Builder
module Strategy = Core.Strategy
module Measure = Core.Measure

let overlay_size = 4096
let measure_pairs = 1024

let run ?(scale = 1) ppf =
  let size = max 128 (overlay_size / scale) in
  let table =
    Tableout.create
      ~title:
        (Printf.sprintf
           "Section 5.4: sources of stretch penalty (%d nodes, manual latencies)" size)
      ~columns:
        [
          "topology";
          "optimal";
          "hybrid";
          "random";
          "structural gap %";
          "generation gap %";
          "cut vs random %";
        ]
  in
  List.iter
    (fun variant ->
      let oracle = Ctx.oracle ~scale variant Topology.Transit_stub.Manual in
      let b =
        Builder.build oracle
          {
            Builder.default_config with
            Builder.overlay_size = size;
            strategy = Strategy.Random_pick;
            seed = 42;
          }
      in
      let mean () =
        (Measure.route_stretch ~pairs:measure_pairs b).Measure.stretch.Prelude.Stats.mean
      in
      let random = mean () in
      Builder.rebuild_tables b Strategy.Optimal;
      let optimal = mean () in
      Builder.rebuild_tables b (Strategy.hybrid ~rtts:10 ());
      let hybrid = mean () in
      let pct v = Printf.sprintf "%.1f" (100.0 *. v) in
      Tableout.add_row table
        [
          Ctx.variant_name variant;
          Tableout.cell_f optimal;
          Tableout.cell_f hybrid;
          Tableout.cell_f random;
          (* stretch of 1.0 = IP shortest path *)
          pct (optimal -. 1.0);
          pct ((hybrid -. optimal) /. optimal);
          pct ((random -. hybrid) /. random);
        ])
    [ Ctx.Tsk_large; Ctx.Tsk_small ];
  Tableout.render ppf table
