module Oracle = Topology.Oracle
module Landmarks = Landmark.Landmarks
module Number = Landmark.Number
module Search = Proximity.Search
module Can_overlay = Can.Overlay
module Builder = Core.Builder
module Strategy = Core.Strategy
module Measure = Core.Measure
module Point = Geometry.Point
module Rng = Prelude.Rng

let landmark_count = 15
let groups = 3
let population = 2000
let query_count = 60
let budgets = [ 1; 5; 10; 20 ]

let sub_dist a b lo hi =
  let acc = ref 0.0 in
  for i = lo to hi - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc

let nn_ablation ~scale oracle ppf =
  let rng = Rng.create 1618 in
  let n = Oracle.node_count oracle in
  let size = max 256 (population / scale) in
  let nodes = Rng.sample rng size (Array.init n (fun i -> i)) in
  let lms = Landmarks.choose rng oracle landmark_count in
  let vectors = Hashtbl.create size in
  Array.iter (fun node -> Hashtbl.replace vectors node (Landmarks.vector lms node)) nodes;
  let vec node = Hashtbl.find vectors node in
  (* a CAN over the population, for the link-walking heuristics *)
  let can = Can_overlay.create ~dims:2 nodes.(0) in
  for i = 1 to size - 1 do
    ignore (Can_overlay.join can nodes.(i) (Point.random rng 2))
  done;
  let queries = Rng.sample rng (min query_count size) nodes in
  let group_span = landmark_count / groups in
  let avg curve_fn =
    let per_budget = Array.make (List.length budgets) 0.0 in
    Array.iter
      (fun query ->
        let _, optimal = Search.true_nearest oracle ~query ~candidates:nodes in
        let curve : Search.curve = curve_fn query in
        let stretch = Search.stretch_curve curve ~optimal in
        let len = Array.length stretch in
        List.iteri
          (fun i b -> per_budget.(i) <- per_budget.(i) +. stretch.(min (b - 1) (len - 1)))
          budgets)
      queries;
    Array.map (fun v -> v /. float_of_int (Array.length queries)) per_budget
  in
  let max_budget = List.fold_left max 1 budgets in
  let plain =
    avg (fun query ->
        Search.hybrid_curve oracle ~vector_of:vec ~candidates:nodes ~query ~budget:max_budget)
  in
  let grouped =
    (* best per-group match: a candidate matching the query well on ANY
       landmark group ranks high, cutting false clustering caused by a
       single unlucky group *)
    avg (fun query ->
        let qv = vec query in
        Search.ranked_curve oracle
          ~score:(fun c ->
            let cv = vec c in
            let best = ref infinity in
            for g = 0 to groups - 1 do
              let lo = g * group_span in
              let hi = if g = groups - 1 then landmark_count else lo + group_span in
              best := Float.min !best (sub_dist qv cv lo hi)
            done;
            !best)
          ~candidates:nodes ~query ~budget:max_budget)
  in
  let hierarchical =
    (* coarse pre-selection on the first components, refined by the rest *)
    let coarse = 5 in
    avg (fun query ->
        let qv = vec query in
        Search.ranked_curve oracle
          ~score:(fun c ->
            let cv = vec c in
            (1000.0 *. sub_dist qv cv 0 coarse) +. sub_dist qv cv coarse landmark_count)
          ~candidates:nodes ~query ~budget:max_budget)
  in
  let hill =
    avg (fun query -> Search.hill_climb_curve oracle can ~query ~budget:max_budget)
  in
  let ers = avg (fun query -> Search.ers_curve oracle can ~query ~budget:max_budget) in
  let table =
    Tableout.create
      ~title:
        (Printf.sprintf "Section 5.5 optimisations: NN-search stretch (%d candidates)" size)
      ~columns:
        [ "RTT budget"; "hybrid (paper)"; "landmark groups"; "hierarchical"; "hill climbing"; "ERS" ]
  in
  List.iteri
    (fun i b ->
      Tableout.add_row table
        [
          Tableout.cell_i b;
          Tableout.cell_f plain.(i);
          Tableout.cell_f grouped.(i);
          Tableout.cell_f hierarchical.(i);
          Tableout.cell_f hill.(i);
          Tableout.cell_f ers.(i);
        ])
    budgets;
  Tableout.render ppf table

let curve_ablation ~scale oracle ppf =
  let size = max 128 (2048 / scale) in
  let table =
    Tableout.create
      ~title:
        (Printf.sprintf
           "Space-filling-curve choice for landmark numbers (eCAN %d nodes, hybrid rtts=10)" size)
      ~columns:[ "curve"; "stretch"; "p90 stretch" ]
  in
  List.iter
    (fun (name, curve) ->
      let b =
        Builder.build oracle
          {
            Builder.default_config with
            Builder.overlay_size = size;
            curve;
            strategy = Strategy.hybrid ~rtts:10 ();
            seed = 42;
          }
      in
      let r = Measure.route_stretch ~pairs:1024 b in
      Tableout.add_row table
        [
          name;
          Tableout.cell_f r.Measure.stretch.Prelude.Stats.mean;
          Tableout.cell_f r.Measure.stretch.Prelude.Stats.p90;
        ])
    [ ("hilbert", Number.Hilbert_curve); ("z-order", Number.Z_curve) ];
  Tableout.render ppf table

let run ?(scale = 1) ppf =
  let oracle = Ctx.oracle ~scale Ctx.Tsk_large Topology.Transit_stub.Gtitm_random in
  nn_ablation ~scale oracle ppf;
  curve_ablation ~scale oracle ppf
