(** §1 claim about Topologically-Aware CAN (geographic layout): binding
    the overlay structure to the physical topology skews the zone-volume
    distribution — a few nodes own most of the Cartesian space and
    accumulate very large neighbor sets.  Compares landmark-positioned
    joins against uniform joins. *)

val run : ?scale:int -> Format.formatter -> unit
