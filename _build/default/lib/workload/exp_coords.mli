(** Ablation: GNP-style network coordinates (§2's alternative) vs the
    paper's landmark vectors, as the pre-selection signal for
    nearest-neighbor search, plus the raw distance-estimation accuracy of
    the coordinate embedding. *)

val run : ?scale:int -> Format.formatter -> unit
