module Oracle = Topology.Oracle
module Waxman = Topology.Waxman
module Can_overlay = Can.Overlay
module Landmarks = Landmark.Landmarks
module Search = Proximity.Search
module Builder = Core.Builder
module Strategy = Core.Strategy
module Measure = Core.Measure
module Point = Geometry.Point
module Rng = Prelude.Rng

let landmark_count = 15
let query_count = 60
let budgets = [ 1; 5; 10; 20; 40 ]

let oracle_cache : (int, Oracle.t) Hashtbl.t = Hashtbl.create 2

let waxman_oracle ~scale =
  match Hashtbl.find_opt oracle_cache scale with
  | Some o -> o
  | None ->
    let params = Waxman.default ~nodes:(max 200 (2000 / scale)) () in
    let o = Oracle.of_graph (Waxman.generate (Rng.create 515) params) in
    Hashtbl.replace oracle_cache scale o;
    o

let nn_table oracle ppf =
  let rng = Rng.create 616 in
  let n = Oracle.node_count oracle in
  let can = Can_overlay.create ~dims:2 0 in
  for id = 1 to n - 1 do
    ignore (Can_overlay.join can id (Point.random rng 2))
  done;
  let lms = Landmarks.choose rng oracle landmark_count in
  let vectors = Array.init n (fun node -> Landmarks.vector lms node) in
  let all = Array.init n (fun i -> i) in
  let queries = Rng.sample rng (min query_count n) all in
  let max_budget = List.fold_left max 1 budgets in
  let ers_avg = Array.make max_budget 0.0 and hyb_avg = Array.make max_budget 0.0 in
  Array.iter
    (fun query ->
      let _, optimal = Search.true_nearest oracle ~query ~candidates:all in
      let accumulate acc (curve : Search.curve) =
        let stretch = Search.stretch_curve curve ~optimal in
        let len = Array.length stretch in
        for i = 0 to max_budget - 1 do
          acc.(i) <- acc.(i) +. stretch.(min i (len - 1))
        done
      in
      accumulate ers_avg (Search.ers_curve oracle can ~query ~budget:max_budget);
      accumulate hyb_avg
        (Search.hybrid_curve oracle ~vector_of:(fun v -> vectors.(v)) ~candidates:all ~query
           ~budget:max_budget))
    queries;
  let q = float_of_int (Array.length queries) in
  let table =
    Tableout.create
      ~title:(Printf.sprintf "Waxman flat topology (%d nodes): NN-search stretch" n)
      ~columns:[ "RTT measurements"; "ERS stretch"; "lmk+RTT stretch" ]
  in
  List.iter
    (fun b ->
      Tableout.add_row table
        [
          Tableout.cell_i b;
          Tableout.cell_f (ers_avg.(b - 1) /. q);
          Tableout.cell_f (hyb_avg.(b - 1) /. q);
        ])
    budgets;
  Tableout.render ppf table

let routing_table oracle ~scale ppf =
  let size = max 128 (1024 / scale) in
  let b =
    Builder.build oracle
      {
        Builder.default_config with
        Builder.overlay_size = size;
        landmark_count;
        strategy = Strategy.Random_pick;
        seed = 42;
      }
  in
  let mean () = (Measure.route_stretch ~pairs:1024 b).Measure.stretch.Prelude.Stats.mean in
  let random = mean () in
  Builder.rebuild_tables b (Strategy.hybrid ~rtts:10 ());
  let hybrid = mean () in
  Builder.rebuild_tables b Strategy.Optimal;
  let optimal = mean () in
  let table =
    Tableout.create
      ~title:(Printf.sprintf "Waxman flat topology: eCAN routing stretch (%d nodes)" size)
      ~columns:[ "random"; "hybrid (lmk+RTT)"; "optimal" ]
  in
  Tableout.add_row table
    [ Tableout.cell_f random; Tableout.cell_f hybrid; Tableout.cell_f optimal ];
  Tableout.render ppf table

let run ?(scale = 1) ppf =
  let oracle = waxman_oracle ~scale in
  nn_table oracle ppf;
  routing_table oracle ~scale ppf
