type t = { title : string; columns : string list; mutable rows : string list list }

let create ~title ~columns = { title; columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Tableout.add_row: cell count mismatch";
  t.rows <- row :: t.rows

let render ppf t =
  let rows = List.rev t.rows in
  let widths =
    List.fold_left
      (fun widths row -> List.map2 (fun w c -> max w (String.length c)) widths row)
      (List.map String.length t.columns)
      rows
  in
  let print_row cells =
    let padded = List.map2 (fun w c -> c ^ String.make (w - String.length c) ' ') widths cells in
    Format.fprintf ppf "  %s@." (String.concat "  " padded)
  in
  Format.fprintf ppf "@.== %s ==@." t.title;
  print_row t.columns;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let cell_f v = if Float.is_finite v then Printf.sprintf "%.3f" v else "inf"
let cell_i = string_of_int
