(** Experiment registry: every paper table/figure reproduction plus the
    extra ablations, addressable by id for the CLI and the bench runner. *)

type entry = {
  name : string;  (** experiment id, e.g. "fig10" *)
  title : string;  (** one-line description *)
  run : scale:int -> Format.formatter -> unit;
}

val all : entry list
(** Every experiment, in presentation order. *)

val find : string -> entry option

val run_all : ?scale:int -> Format.formatter -> unit
(** Run the whole suite, printing each experiment's table. *)
