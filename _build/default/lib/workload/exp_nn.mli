(** Figures 3-6: finding the nearest neighbor — expanding-ring search vs
    the landmark+RTT hybrid, on tsk-large and tsk-small.

    Stretch here is the NN-search stretch: distance to the node the
    algorithm returns over the distance to the true nearest node,
    averaged over query nodes, as a function of the RTT-measurement
    budget. *)

val fig3 : ?scale:int -> Format.formatter -> unit
(** ERS vs hybrid on tsk-large (moderate budgets). *)

val fig4 : ?scale:int -> Format.formatter -> unit
(** ERS alone on tsk-large, budgets into the thousands. *)

val fig5 : ?scale:int -> Format.formatter -> unit
(** Hybrid on tsk-small. *)

val fig6 : ?scale:int -> Format.formatter -> unit
(** ERS alone on tsk-small, budgets into the thousands. *)

val data : ?scale:int -> Ctx.topology_variant -> float array * float array
(** The averaged best-so-far stretch curves [(ers, hybrid)] behind the
    figures ([curve.(k-1)] = stretch after [k] measurements), cached per
    variant; used by the cost experiment. *)
