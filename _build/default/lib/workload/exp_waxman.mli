(** Robustness ablation: the hybrid proximity technique on a flat Waxman
    topology, where no transit-stub hierarchy exists for landmarks to
    pick up.  Reports NN-search stretch of ERS vs landmark+RTT and
    routing stretch of random vs hybrid vs optimal selection. *)

val run : ?scale:int -> Format.formatter -> unit
