(** Figure 2: logical routing hops, eCAN vs plain CAN of dimensionality
    2-5, as overlay size grows.  Purely logical (no physical topology). *)

val run : ?scale:int -> Format.formatter -> unit
(** Print the hop-count series.  [scale] divides the overlay sizes. *)
