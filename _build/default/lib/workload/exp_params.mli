(** Table 2: the experiment parameter space — defaults and the ranges the
    other experiments actually sweep. *)

val run : ?scale:int -> Format.formatter -> unit
