(** Aligned plain-text table rendering for experiment output. *)

type t

val create : title:string -> columns:string list -> t
(** Start a table with a title line and column headers. *)

val add_row : t -> string list -> unit
(** Append a row; must have as many cells as there are columns. *)

val render : Format.formatter -> t -> unit
(** Print title, header and rows with aligned columns. *)

val cell_f : float -> string
(** Format a float for a cell ("%.3f", infinity-safe). *)

val cell_i : int -> string
