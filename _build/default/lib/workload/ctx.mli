(** Shared experiment context: topologies and distance oracles, built once
    per process and cached (oracle construction is the expensive step). *)

type topology_variant = Tsk_large | Tsk_small

val variant_name : topology_variant -> string
val latency_name : Topology.Transit_stub.latency_model -> string

val params :
  topology_variant -> Topology.Transit_stub.latency_model -> Topology.Transit_stub.params
(** The paper's preset for a variant, with the requested latency model. *)

val oracle :
  ?scale:int ->
  topology_variant ->
  Topology.Transit_stub.latency_model ->
  Topology.Oracle.t
(** Cached oracle for (variant, latency, scale).  [scale] divides stub
    sizes (default 1 = the full ~10,000-node topology).  Topology seeds
    are fixed so every experiment sees the same physical network. *)
