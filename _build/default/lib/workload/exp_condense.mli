(** Figure 16: effect of the map condense/reduction rate — entries per
    node against routing stretch (tsk-large, manual latencies). *)

val fig16 : ?scale:int -> Format.formatter -> unit
