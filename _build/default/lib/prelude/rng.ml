type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* SplitMix64 step: used to expand the seed into the 256-bit Xoshiro state
   and to derive independent sub-generators. *)
let splitmix64 state =
  let z = Int64.add !state golden_gamma in
  state := z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let of_seed64 seed =
  let st = ref seed in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

let create seed = of_seed64 (Int64.of_int seed)

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tt = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tt;
  t.s3 <- rotl t.s3 45;
  result

let split t = of_seed64 (bits64 t)

(* Non-negative 62-bit value, safe to store in a native OCaml int. *)
let bits62 t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let max62 = (1 lsl 62) - 1 in
  let limit = max62 - (max62 mod bound) in
  let rec draw () =
    let v = bits62 t in
    if v >= limit then draw () else v mod bound
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits mapped to [0,1), scaled. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int v /. 9007199254740992.0 *. bound

let float_in t lo hi = lo +. float t (hi -. lo)

let bool t = Int64.logand (bits64 t) 1L = 1L

let chance t p = float t 1.0 < p

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let sample t k arr =
  let n = Array.length arr in
  if k > n then invalid_arg "Rng.sample: k exceeds population";
  if k < 0 then invalid_arg "Rng.sample: negative k";
  (* Partial Fisher-Yates on a copy of the index space. *)
  let idx = Array.init n (fun i -> i) in
  for i = 0 to k - 1 do
    let j = int_in t i (n - 1) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  Array.init k (fun i -> arr.(idx.(i)))

let exponential t rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential: rate must be positive";
  let u = 1.0 -. float t 1.0 in
  -.log u /. rate
