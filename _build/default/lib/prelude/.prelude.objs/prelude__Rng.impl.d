lib/prelude/rng.ml: Array Int64 List
