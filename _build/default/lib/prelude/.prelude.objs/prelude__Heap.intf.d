lib/prelude/heap.mli:
