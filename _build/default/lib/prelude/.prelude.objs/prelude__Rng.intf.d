lib/prelude/rng.mli:
