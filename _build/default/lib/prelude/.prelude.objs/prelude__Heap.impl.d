lib/prelude/heap.ml: Array
