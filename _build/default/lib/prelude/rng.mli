(** Deterministic, splittable pseudo-random number generator.

    All randomness in the project flows through this module so that every
    experiment is reproducible from a single integer seed.  The generator is
    Xoshiro256** seeded via SplitMix64 (Blackman & Vigna).  It is not
    cryptographic; it is fast, has 256 bits of state and passes BigCrush. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from an arbitrary integer seed. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Deriving sub-generators for sub-systems keeps experiments insensitive to
    the order in which unrelated components consume randomness. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future draws as [t]). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound).  [bound] must be > 0;
    raises [Invalid_argument] otherwise.  Unbiased (rejection sampling). *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] draws uniformly from the inclusive range [lo, hi]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val float_in : t -> float -> float -> float
(** [float_in t lo hi] draws uniformly from [lo, hi). *)

val bool : t -> bool
(** Fair coin flip. *)

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array.  Raises [Invalid_argument] on
    an empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val sample : t -> int -> 'a array -> 'a array
(** [sample t k arr] draws [k] distinct elements uniformly without
    replacement.  Raises [Invalid_argument] if [k > Array.length arr]. *)

val exponential : t -> float -> float
(** [exponential t rate] draws from Exp(rate); used for churn inter-arrival
    times.  [rate] must be positive. *)
