type t = { adj : (int * float) array array; edge_count : int }

let make n edge_list =
  if n < 0 then invalid_arg "Graph.make: negative node count";
  let buckets = Array.make n [] in
  let seen = Hashtbl.create (List.length edge_list) in
  let add (u, v, w) =
    if u < 0 || u >= n || v < 0 || v >= n then invalid_arg "Graph.make: endpoint out of range";
    if u = v then invalid_arg "Graph.make: self loop";
    if w <= 0.0 then invalid_arg "Graph.make: non-positive weight";
    let key = if u < v then (u, v) else (v, u) in
    if Hashtbl.mem seen key then invalid_arg "Graph.make: duplicate edge";
    Hashtbl.add seen key ();
    buckets.(u) <- (v, w) :: buckets.(u);
    buckets.(v) <- (u, w) :: buckets.(v)
  in
  List.iter add edge_list;
  { adj = Array.map Array.of_list buckets; edge_count = Hashtbl.length seen }

let node_count t = Array.length t.adj
let edge_count t = t.edge_count
let neighbors t u = t.adj.(u)
let degree t u = Array.length t.adj.(u)

let weight t u v =
  let rec find i arr = if i >= Array.length arr then None else begin
    let w, wt = arr.(i) in
    if w = v then Some wt else find (i + 1) arr
  end in
  find 0 t.adj.(u)

let edges t =
  let acc = ref [] in
  for u = Array.length t.adj - 1 downto 0 do
    Array.iter (fun (v, w) -> if u < v then acc := (u, v, w) :: !acc) t.adj.(u)
  done;
  !acc

let is_connected t =
  let n = node_count t in
  if n = 0 then true
  else begin
    let visited = Array.make n false in
    let stack = ref [ 0 ] in
    visited.(0) <- true;
    let count = ref 0 in
    let rec walk () =
      match !stack with
      | [] -> ()
      | u :: rest ->
        stack := rest;
        incr count;
        Array.iter
          (fun (v, _) ->
            if not visited.(v) then begin
              visited.(v) <- true;
              stack := v :: !stack
            end)
          t.adj.(u);
        walk ()
    in
    walk ();
    !count = n
  end

let subgraph t nodes =
  let k = Array.length nodes in
  let n = node_count t in
  let new_id = Array.make n (-1) in
  Array.iteri
    (fun i u ->
      if u < 0 || u >= n then invalid_arg "Graph.subgraph: node out of range";
      if new_id.(u) <> -1 then invalid_arg "Graph.subgraph: duplicate node";
      new_id.(u) <- i)
    nodes;
  let edge_list = ref [] in
  Array.iteri
    (fun i u ->
      Array.iter
        (fun (v, w) ->
          let j = new_id.(v) in
          if j >= 0 && i < j then edge_list := (i, j, w) :: !edge_list)
        t.adj.(u))
    nodes;
  (make k !edge_list, Array.copy nodes)
