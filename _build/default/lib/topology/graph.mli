(** Immutable weighted undirected graph with dense integer node ids.

    Nodes are [0 .. node_count - 1].  Edge weights are link latencies in
    milliseconds and must be positive. *)

type t

val make : int -> (int * int * float) list -> t
(** [make n edges] builds a graph over nodes [0..n-1].  Each [(u, v, w)]
    contributes an undirected edge.  Raises [Invalid_argument] on
    out-of-range endpoints, self loops, non-positive weights, or duplicate
    edges. *)

val node_count : t -> int
val edge_count : t -> int

val neighbors : t -> int -> (int * float) array
(** Adjacency of a node as [(neighbor, weight)] pairs.  The returned array
    is owned by the graph; callers must not mutate it. *)

val degree : t -> int -> int

val weight : t -> int -> int -> float option
(** Weight of the edge between two nodes, if present. *)

val edges : t -> (int * int * float) list
(** Every undirected edge once, with [u < v]. *)

val is_connected : t -> bool
(** Whether every node is reachable from node 0 (true for empty graphs). *)

val subgraph : t -> int array -> t * int array
(** [subgraph g nodes] is the induced subgraph on [nodes] (which must be
    distinct) with nodes renumbered [0..k-1] in the given order, together
    with the mapping from new ids back to original ids. *)
