(** Plain-text serialisation of transit-stub topologies.

    Line-oriented format (version-tagged) carrying the generation
    parameters, per-node kinds, stub attachment records and the weighted
    edge list — enough to reconstruct a {!Transit_stub.t} exactly, so a
    generated topology can be archived and shared between runs. *)

val to_string : Transit_stub.t -> string
(** Serialise (exact: floats are printed in round-trippable hex). *)

val of_string : string -> (Transit_stub.t, string) result
(** Parse; returns [Error reason] on malformed input. *)

val save : Transit_stub.t -> string -> unit
(** Write to a file.  Raises [Sys_error] on I/O failure. *)

val load : string -> (Transit_stub.t, string) result
(** Read from a file; I/O errors are reported as [Error]. *)
