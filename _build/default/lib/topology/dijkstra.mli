(** Single-source shortest paths (reference distance implementation).

    Used as ground truth in tests and for arbitrary graphs; the
    transit-stub {!Oracle} answers the same queries in O(1) after
    precomputation. *)

val distances : Graph.t -> int -> float array
(** [distances g src] is the array of shortest-path latencies from [src] to
    every node; [infinity] for unreachable nodes. *)

val distance : Graph.t -> int -> int -> float
(** Shortest-path latency between two nodes ([infinity] if disconnected).
    Runs a full single-source computation; prefer {!Oracle} in hot paths. *)

val path : Graph.t -> int -> int -> int list option
(** A shortest path from source to destination inclusive, or [None] if
    unreachable. *)
