module Rng = Prelude.Rng

type latency_model = Gtitm_random | Manual

type link_class = Inter_transit | Intra_transit | Transit_stub_link | Intra_stub

type params = {
  transit_domains : int;
  transit_nodes_per_domain : int;
  stubs_per_transit_node : int;
  stub_size : int;
  extra_domain_edges : int;
  extra_edge_fraction : float;
  latency : latency_model;
}

type node_kind = Transit of { domain : int } | Stub_node of { stub : int }

type t = {
  graph : Graph.t;
  params : params;
  kind : node_kind array;
  transit_nodes : int array;
  stub_members : int array array;
  stub_of : int array;
  stub_attach_stub_node : int array;
  stub_attach_transit : int array;
  stub_attach_weight : float array;
}

let total_nodes p =
  let transit = p.transit_domains * p.transit_nodes_per_domain in
  transit + (transit * p.stubs_per_transit_node * p.stub_size)

let link_latency rng model cls =
  match (model, cls) with
  | Manual, Inter_transit -> 20.0
  | Manual, Intra_transit -> 5.0
  | Manual, Transit_stub_link -> 2.0
  | Manual, Intra_stub -> 1.0
  | Gtitm_random, Inter_transit -> Rng.float_in rng 10.0 50.0
  | Gtitm_random, Intra_transit -> Rng.float_in rng 5.0 30.0
  | Gtitm_random, Transit_stub_link -> Rng.float_in rng 2.0 20.0
  | Gtitm_random, Intra_stub -> Rng.float_in rng 1.0 10.0

let validate p =
  if p.transit_domains < 1 then invalid_arg "Transit_stub: need >= 1 transit domain";
  if p.transit_nodes_per_domain < 1 then invalid_arg "Transit_stub: need >= 1 transit node per domain";
  if p.stubs_per_transit_node < 0 then invalid_arg "Transit_stub: negative stub count";
  if p.stub_size < 1 then invalid_arg "Transit_stub: need >= 1 node per stub";
  if p.extra_domain_edges < 0 then invalid_arg "Transit_stub: negative extra domain edges";
  if p.extra_edge_fraction < 0.0 then invalid_arg "Transit_stub: negative extra edge fraction"

(* Random connected graph on [members]: a random recursive spanning tree
   (node i attaches to a uniform earlier node, giving O(log n) diameter)
   plus [extra_edge_fraction * n] random chords.  Emits edges via [emit]. *)
let connect_randomly rng members extra_fraction cls emit =
  let n = Array.length members in
  for i = 1 to n - 1 do
    let j = Rng.int rng i in
    emit members.(j) members.(i) cls
  done;
  if n >= 3 then begin
    let extras = int_of_float (Float.round (extra_fraction *. float_of_int n)) in
    let attempts = ref 0 in
    let added = ref 0 in
    (* Bounded retry loop: duplicate and self edges are skipped by the
       caller's dedup, so a few wasted attempts are harmless. *)
    while !added < extras && !attempts < extras * 10 do
      incr attempts;
      let a = Rng.int rng n and b = Rng.int rng n in
      if a <> b then begin
        emit members.(a) members.(b) cls;
        incr added
      end
    done
  end

let generate rng p =
  validate p;
  let n_transit = p.transit_domains * p.transit_nodes_per_domain in
  let stubs_total = n_transit * p.stubs_per_transit_node in
  let n = total_nodes p in
  let kind = Array.make n (Transit { domain = 0 }) in
  let stub_of = Array.make n (-1) in
  let transit_nodes = Array.init n_transit (fun i -> i) in
  Array.iteri
    (fun i _ -> kind.(i) <- Transit { domain = i / p.transit_nodes_per_domain })
    transit_nodes;
  let stub_members = Array.make stubs_total [||] in
  let next = ref n_transit in
  for s = 0 to stubs_total - 1 do
    let members = Array.init p.stub_size (fun _ ->
      let id = !next in
      incr next;
      kind.(id) <- Stub_node { stub = s };
      stub_of.(id) <- s;
      id)
    in
    stub_members.(s) <- members
  done;
  (* Edge accumulation with dedup: random chord generation may propose an
     edge twice; keep the first weight. *)
  let seen = Hashtbl.create (4 * n) in
  let edge_list = ref [] in
  let emit u v cls =
    let key = if u < v then (u, v) else (v, u) in
    if u <> v && not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      edge_list := (u, v, link_latency rng p.latency cls) :: !edge_list
    end
  in
  (* Intra-domain transit connectivity. *)
  for d = 0 to p.transit_domains - 1 do
    let members =
      Array.init p.transit_nodes_per_domain (fun i -> (d * p.transit_nodes_per_domain) + i)
    in
    connect_randomly rng members p.extra_edge_fraction Intra_transit emit
  done;
  (* Inter-domain connectivity: random spanning tree over domains plus
     extra random domain pairs; each realised between random transit nodes
     of the two domains. *)
  let random_member d = (d * p.transit_nodes_per_domain) + Rng.int rng p.transit_nodes_per_domain in
  for d = 1 to p.transit_domains - 1 do
    let other = Rng.int rng d in
    emit (random_member other) (random_member d) Inter_transit
  done;
  if p.transit_domains >= 2 then
    for _ = 1 to p.extra_domain_edges do
      let a = Rng.int rng p.transit_domains and b = Rng.int rng p.transit_domains in
      if a <> b then emit (random_member a) (random_member b) Inter_transit
    done;
  (* Stub domains: internal connectivity plus one access link. *)
  let stub_attach_stub_node = Array.make stubs_total (-1) in
  let stub_attach_transit = Array.make stubs_total (-1) in
  let stub_attach_weight = Array.make stubs_total 0.0 in
  for s = 0 to stubs_total - 1 do
    let members = stub_members.(s) in
    connect_randomly rng members p.extra_edge_fraction Intra_stub emit;
    let transit = s / p.stubs_per_transit_node in
    let gateway = Rng.pick rng members in
    let w = link_latency rng p.latency Transit_stub_link in
    let key = (min gateway transit, max gateway transit) in
    Hashtbl.add seen key ();
    edge_list := (gateway, transit, w) :: !edge_list;
    stub_attach_stub_node.(s) <- gateway;
    stub_attach_transit.(s) <- transit;
    stub_attach_weight.(s) <- w
  done;
  let graph = Graph.make n !edge_list in
  {
    graph;
    params = p;
    kind;
    transit_nodes;
    stub_members;
    stub_of;
    stub_attach_stub_node;
    stub_attach_transit;
    stub_attach_weight;
  }

let tsk_large ?(latency = Gtitm_random) ?(scale = 1) () =
  if scale < 1 then invalid_arg "tsk_large: scale must be >= 1";
  {
    transit_domains = 8;
    transit_nodes_per_domain = 6;
    stubs_per_transit_node = 8;
    stub_size = max 1 (26 / scale);
    extra_domain_edges = 8;
    extra_edge_fraction = 0.35;
    latency;
  }

let tsk_small ?(latency = Gtitm_random) ?(scale = 1) () =
  if scale < 1 then invalid_arg "tsk_small: scale must be >= 1";
  {
    transit_domains = 2;
    transit_nodes_per_domain = 4;
    stubs_per_transit_node = 4;
    stub_size = max 1 (312 / scale);
    extra_domain_edges = 2;
    extra_edge_fraction = 0.35;
    latency;
  }

let classify_link t u v =
  if Graph.weight t.graph u v = None then invalid_arg "classify_link: nodes not adjacent";
  match (t.kind.(u), t.kind.(v)) with
  | Transit { domain = a }, Transit { domain = b } ->
    if a = b then Intra_transit else Inter_transit
  | Stub_node _, Transit _ | Transit _, Stub_node _ -> Transit_stub_link
  | Stub_node _, Stub_node _ -> Intra_stub

let pp_params ppf p =
  Format.fprintf ppf
    "{domains=%d; transit/domain=%d; stubs/transit=%d; stub_size=%d; nodes=%d; latency=%s}"
    p.transit_domains p.transit_nodes_per_domain p.stubs_per_transit_node p.stub_size
    (total_nodes p)
    (match p.latency with Gtitm_random -> "gtitm-random" | Manual -> "manual")
