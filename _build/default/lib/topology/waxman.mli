(** Waxman random-graph topology (BRITE's flat router-level model).

    Nodes are placed uniformly in the unit square; each pair is linked
    with probability [beta * exp (-d / (alpha * L))] where [d] is their
    Euclidean distance and [L] the plane's diameter.  Link latency is
    proportional to distance.  A random spanning tree guarantees
    connectivity.

    Used by the robustness ablation: the paper's technique should not
    depend on the transit-stub hierarchy, and this model has none. *)

type params = {
  nodes : int;
  alpha : float;  (** distance decay (larger = longer links likelier) *)
  beta : float;  (** overall edge density *)
  latency_per_unit : float;  (** ms per unit of plane distance *)
  min_latency : float;  (** floor added to every link, ms *)
}

val default : ?nodes:int -> unit -> params
(** 2000 nodes, alpha 0.15, beta 0.05, 100 ms across the plane, 0.5 ms
    floor — average degree around 6. *)

val generate : Prelude.Rng.t -> params -> Graph.t
(** Always connected.  Raises [Invalid_argument] on non-positive sizes or
    out-of-range probabilities. *)
