let run g src =
  let n = Graph.node_count g in
  if src < 0 || src >= n then invalid_arg "Dijkstra: source out of range";
  let dist = Array.make n infinity in
  let prev = Array.make n (-1) in
  let settled = Array.make n false in
  let heap = Prelude.Heap.create () in
  dist.(src) <- 0.0;
  Prelude.Heap.push heap 0.0 src;
  let rec loop () =
    match Prelude.Heap.pop heap with
    | None -> ()
    | Some (d, u) ->
      if not settled.(u) then begin
        settled.(u) <- true;
        Array.iter
          (fun (v, w) ->
            let nd = d +. w in
            if nd < dist.(v) then begin
              dist.(v) <- nd;
              prev.(v) <- u;
              Prelude.Heap.push heap nd v
            end)
          (Graph.neighbors g u)
      end;
      loop ()
  in
  loop ();
  (dist, prev)

let distances g src = fst (run g src)

let distance g src dst =
  let dist = distances g src in
  dist.(dst)

let path g src dst =
  let dist, prev = run g src in
  if dist.(dst) = infinity then None
  else begin
    let rec build acc u = if u = src then src :: acc else build (u :: acc) prev.(u) in
    Some (build [] dst)
  end
