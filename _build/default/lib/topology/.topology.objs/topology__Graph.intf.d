lib/topology/graph.mli:
