lib/topology/serialize.mli: Transit_stub
