lib/topology/oracle.mli: Graph Transit_stub
