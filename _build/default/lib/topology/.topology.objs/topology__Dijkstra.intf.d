lib/topology/dijkstra.mli: Graph
