lib/topology/graph.ml: Array Hashtbl List
