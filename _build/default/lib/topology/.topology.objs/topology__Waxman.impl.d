lib/topology/waxman.ml: Array Graph Hashtbl Prelude
