lib/topology/transit_stub.mli: Format Graph Prelude
