lib/topology/transit_stub.ml: Array Float Format Graph Hashtbl Prelude
