lib/topology/serialize.ml: Array Buffer Format Fun Graph List Printf Result String Transit_stub
