lib/topology/dijkstra.ml: Array Graph Prelude
