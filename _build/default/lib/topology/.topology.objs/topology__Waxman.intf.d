lib/topology/waxman.mli: Graph Prelude
