lib/topology/oracle.ml: Array Dijkstra Graph Transit_stub
