module Rng = Prelude.Rng

type params = {
  nodes : int;
  alpha : float;
  beta : float;
  latency_per_unit : float;
  min_latency : float;
}

let default ?(nodes = 2000) () =
  { nodes; alpha = 0.15; beta = 0.05; latency_per_unit = 100.0; min_latency = 0.5 }

let generate rng p =
  if p.nodes < 1 then invalid_arg "Waxman.generate: need at least one node";
  if p.alpha <= 0.0 then invalid_arg "Waxman.generate: alpha must be positive";
  if not (p.beta >= 0.0 && p.beta <= 1.0) then invalid_arg "Waxman.generate: beta out of [0,1]";
  if p.latency_per_unit <= 0.0 then invalid_arg "Waxman.generate: latency scale must be positive";
  let xs = Array.init p.nodes (fun _ -> Rng.float rng 1.0) in
  let ys = Array.init p.nodes (fun _ -> Rng.float rng 1.0) in
  let plane_dist u v =
    let dx = xs.(u) -. xs.(v) and dy = ys.(u) -. ys.(v) in
    sqrt ((dx *. dx) +. (dy *. dy))
  in
  let latency u v = p.min_latency +. (plane_dist u v *. p.latency_per_unit) in
  let seen = Hashtbl.create (4 * p.nodes) in
  let edges = ref [] in
  let add u v =
    let key = if u < v then (u, v) else (v, u) in
    if u <> v && not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      edges := (u, v, latency u v) :: !edges
    end
  in
  (* Connectivity backbone: random recursive tree. *)
  for i = 1 to p.nodes - 1 do
    add (Rng.int rng i) i
  done;
  (* Waxman edges. *)
  let diameter = sqrt 2.0 in
  for u = 0 to p.nodes - 1 do
    for v = u + 1 to p.nodes - 1 do
      let prob = p.beta *. exp (-.plane_dist u v /. (p.alpha *. diameter)) in
      if Rng.chance rng prob then add u v
    done
  done;
  Graph.make p.nodes !edges
