(** GT-ITM-style transit-stub topology generator.

    A topology is a two-level hierarchy: a core of transit domains (each a
    small random connected graph of transit nodes, domains interconnected by
    random inter-domain links) with stub domains hanging off transit nodes.
    Each stub domain is a random connected graph attached to its transit
    node by a single access link, and there are no stub-stub or extra
    stub-transit links — the hierarchy is strict, which is what enables the
    exact O(1) {!Oracle}. *)

type latency_model =
  | Gtitm_random
      (** Random per-link latencies drawn uniformly from a range that
          depends on the link class, mimicking GT-ITM's random weights:
          inter-transit 10–50 ms, intra-transit 5–30 ms, transit-stub
          2–20 ms, intra-stub 1–10 ms. *)
  | Manual
      (** The paper's manually-set latencies: 20 ms inter-transit, 5 ms
          intra-transit, 2 ms transit-stub, 1 ms intra-stub. *)

type link_class = Inter_transit | Intra_transit | Transit_stub_link | Intra_stub

type params = {
  transit_domains : int;  (** number of transit domains (>= 1) *)
  transit_nodes_per_domain : int;  (** transit nodes per domain (>= 1) *)
  stubs_per_transit_node : int;  (** stub domains attached to each transit node *)
  stub_size : int;  (** nodes per stub domain (>= 1) *)
  extra_domain_edges : int;  (** inter-domain links beyond the spanning tree *)
  extra_edge_fraction : float;
      (** extra random intra-domain/intra-stub edges, as a fraction of the
          member count, on top of the random spanning tree *)
  latency : latency_model;
}

type node_kind = Transit of { domain : int } | Stub_node of { stub : int }

type t = {
  graph : Graph.t;
  params : params;
  kind : node_kind array;  (** per node *)
  transit_nodes : int array;  (** ids of all transit nodes *)
  stub_members : int array array;  (** stub id -> member node ids *)
  stub_of : int array;  (** node -> stub id, or -1 for transit nodes *)
  stub_attach_stub_node : int array;  (** stub -> stub-side end of the access link *)
  stub_attach_transit : int array;  (** stub -> transit-side end of the access link *)
  stub_attach_weight : float array;  (** stub -> access-link latency *)
}

val total_nodes : params -> int
(** Number of nodes the parameters will produce. *)

val generate : Prelude.Rng.t -> params -> t
(** Generate a topology.  The result is always connected.  Raises
    [Invalid_argument] on nonsensical parameters. *)

val tsk_large : ?latency:latency_model -> ?scale:int -> unit -> params
(** The paper's [tsk-large]: a large backbone (8 transit domains, 6 transit
    nodes each) with sparse edges (8 stubs per transit node, 26 nodes per
    stub) — about 10,000 nodes at [scale = 1].  [scale] divides the stub
    size to produce smaller variants for tests. *)

val tsk_small : ?latency:latency_model -> ?scale:int -> unit -> params
(** The paper's [tsk-small]: a small backbone (2 transit domains, 4 transit
    nodes each) with dense stubs (4 stubs per transit node, 312 nodes per
    stub) — about 10,000 nodes at [scale = 1]. *)

val classify_link : t -> int -> int -> link_class
(** Class of an existing link given its two endpoints.  Raises
    [Invalid_argument] if the nodes are not adjacent. *)

val pp_params : Format.formatter -> params -> unit
