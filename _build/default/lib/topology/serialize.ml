module Ts = Transit_stub

let version = "topo-overlay-topology-v1"

let latency_tag = function Ts.Gtitm_random -> "gtitm" | Ts.Manual -> "manual"

let latency_of_tag = function
  | "gtitm" -> Ok Ts.Gtitm_random
  | "manual" -> Ok Ts.Manual
  | other -> Error (Printf.sprintf "unknown latency model %S" other)

let to_string (t : Ts.t) =
  let buf = Buffer.create (64 * Graph.node_count t.Ts.graph) in
  let p = t.Ts.params in
  Buffer.add_string buf (version ^ "\n");
  Buffer.add_string buf
    (Printf.sprintf "params %d %d %d %d %d %h %s\n" p.Ts.transit_domains
       p.Ts.transit_nodes_per_domain p.Ts.stubs_per_transit_node p.Ts.stub_size
       p.Ts.extra_domain_edges p.Ts.extra_edge_fraction (latency_tag p.Ts.latency));
  let stubs = Array.length t.Ts.stub_members in
  Buffer.add_string buf (Printf.sprintf "stubs %d\n" stubs);
  for s = 0 to stubs - 1 do
    Buffer.add_string buf
      (Printf.sprintf "stub %d %d %d %h %s\n" s t.Ts.stub_attach_stub_node.(s)
         t.Ts.stub_attach_transit.(s) t.Ts.stub_attach_weight.(s)
         (String.concat "," (List.map string_of_int (Array.to_list t.Ts.stub_members.(s)))));
  done;
  let edges = Graph.edges t.Ts.graph in
  Buffer.add_string buf
    (Printf.sprintf "graph %d %d\n" (Graph.node_count t.Ts.graph) (List.length edges));
  List.iter
    (fun (u, v, w) -> Buffer.add_string buf (Printf.sprintf "edge %d %d %h\n" u v w))
    edges;
  Buffer.contents buf

let of_string s =
  let ( let* ) r f = Result.bind r f in
  let lines = String.split_on_char '\n' s in
  let lines = List.filter (fun l -> String.trim l <> "") lines in
  let fail fmt = Format.kasprintf (fun m -> Error m) fmt in
  match lines with
  | v :: rest when String.trim v = version -> begin
    let* params, rest =
      match rest with
      | line :: rest -> (
        match String.split_on_char ' ' line with
        | [ "params"; d; tn; st; ss; ex; frac; lat ] -> (
          try
            let* latency = latency_of_tag lat in
            Ok
              ( {
                  Ts.transit_domains = int_of_string d;
                  transit_nodes_per_domain = int_of_string tn;
                  stubs_per_transit_node = int_of_string st;
                  stub_size = int_of_string ss;
                  extra_domain_edges = int_of_string ex;
                  extra_edge_fraction = float_of_string frac;
                  latency;
                },
                rest )
          with Failure _ -> fail "malformed params line")
        | _ -> fail "expected params line")
      | [] -> fail "truncated input (params)"
    in
    let* stub_count, rest =
      match rest with
      | line :: rest -> (
        match String.split_on_char ' ' line with
        | [ "stubs"; n ] -> (
          try Ok (int_of_string n, rest) with Failure _ -> fail "malformed stubs line")
        | _ -> fail "expected stubs line")
      | [] -> fail "truncated input (stubs)"
    in
    let stub_members = Array.make stub_count [||] in
    let attach_stub = Array.make stub_count (-1) in
    let attach_transit = Array.make stub_count (-1) in
    let attach_weight = Array.make stub_count 0.0 in
    let rec read_stubs i rest =
      if i >= stub_count then Ok rest
      else begin
        match rest with
        | line :: rest -> (
          match String.split_on_char ' ' line with
          | [ "stub"; idx; gw; tr; w; members ] -> (
            try
              let idx = int_of_string idx in
              if idx <> i then fail "stub records out of order"
              else begin
                attach_stub.(i) <- int_of_string gw;
                attach_transit.(i) <- int_of_string tr;
                attach_weight.(i) <- float_of_string w;
                stub_members.(i) <-
                  Array.of_list (List.map int_of_string (String.split_on_char ',' members));
                read_stubs (i + 1) rest
              end
            with Failure _ -> fail "malformed stub line %d" i)
          | _ -> fail "expected stub line %d" i)
        | [] -> fail "truncated input (stub %d)" i
      end
    in
    let* rest = read_stubs 0 rest in
    let* (n, edge_count), rest =
      match rest with
      | line :: rest -> (
        match String.split_on_char ' ' line with
        | [ "graph"; n; e ] -> (
          try Ok ((int_of_string n, int_of_string e), rest)
          with Failure _ -> fail "malformed graph line")
        | _ -> fail "expected graph line")
      | [] -> fail "truncated input (graph)"
    in
    let rec read_edges k acc rest =
      if k >= edge_count then Ok (acc, rest)
      else begin
        match rest with
        | line :: rest -> (
          match String.split_on_char ' ' line with
          | [ "edge"; u; v; w ] -> (
            try
              read_edges (k + 1)
                ((int_of_string u, int_of_string v, float_of_string w) :: acc)
                rest
            with Failure _ -> fail "malformed edge line %d" k)
          | _ -> fail "expected edge line %d" k)
        | [] -> fail "truncated input (edge %d)" k
      end
    in
    let* edges, rest = read_edges 0 [] rest in
    let* () = if rest = [] then Ok () else fail "trailing garbage" in
    let* graph =
      try Ok (Graph.make n edges) with Invalid_argument m -> fail "bad graph: %s" m
    in
    (* Rebuild the derived per-node tables from the stub records. *)
    let kind = Array.make n (Ts.Transit { domain = 0 }) in
    let stub_of = Array.make n (-1) in
    let n_transit = params.Ts.transit_domains * params.Ts.transit_nodes_per_domain in
    let* () =
      if n_transit > n then fail "params disagree with node count" else Ok ()
    in
    for i = 0 to n_transit - 1 do
      kind.(i) <- Ts.Transit { domain = i / params.Ts.transit_nodes_per_domain }
    done;
    Array.iteri
      (fun s members ->
        Array.iter
          (fun id ->
            kind.(id) <- Ts.Stub_node { stub = s };
            stub_of.(id) <- s)
          members)
      stub_members;
    Ok
      {
        Ts.graph;
        params;
        kind;
        transit_nodes = Array.init n_transit (fun i -> i);
        stub_members;
        stub_of;
        stub_attach_stub_node = attach_stub;
        stub_attach_transit = attach_transit;
        stub_attach_weight = attach_weight;
      }
  end
  | _ -> fail "missing or unknown version header"

let save t path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string t))

let load path =
  try
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> of_string (really_input_string ic (in_channel_length ic)))
  with Sys_error m -> Error m
