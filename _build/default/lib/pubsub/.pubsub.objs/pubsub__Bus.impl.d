lib/pubsub/bus.ml: Array Can Engine Float Hashtbl Landmark List Softstate
