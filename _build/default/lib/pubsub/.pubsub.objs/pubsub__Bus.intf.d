lib/pubsub/bus.mli: Engine Softstate
