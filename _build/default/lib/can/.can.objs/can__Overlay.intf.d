lib/can/overlay.mli: Geometry
