lib/can/overlay.ml: Array Float Format Geometry Hashtbl List Result
