lib/pastry/mesh.ml: Array Format Hashtbl List Prelude Result Seq
