lib/pastry/mesh.mli: Prelude
