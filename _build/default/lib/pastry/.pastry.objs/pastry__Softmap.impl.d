lib/pastry/softmap.ml: Array Hashtbl Landmark List Mesh
