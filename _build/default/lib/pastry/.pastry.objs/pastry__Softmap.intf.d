lib/pastry/softmap.mli: Landmark Mesh
