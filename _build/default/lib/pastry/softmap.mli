(** Soft-state coordinate maps on a Pastry mesh (paper appendix: "in the
    case of Pastry, we can use a prefix of the nodeIds to partition the
    logical space into grids").

    For each id prefix (the Pastry notion of a region) there is a map of
    the region's members.  An entry is stored under the id obtained by
    appending the node's landmark-number digits to the region prefix, so
    entries of physically-close nodes live under numerically-close ids and
    a single route reaches the right host. *)

type entry = {
  node : int;
  vector : float array;
  number : int;
  store_id : int;  (** full Pastry id the entry is keyed under *)
}

type t

val create : scheme:Landmark.Number.scheme -> Mesh.t -> t

val mesh : t -> Mesh.t

val store_id_of : t -> prefix:int array -> float array -> int
(** The id an entry with this vector is stored under within a region:
    the region prefix digits followed by the landmark number's digits
    (truncated/padded to the id length). *)

val publish : t -> prefix:int array -> node:int -> vector:float array -> unit
(** Insert or refresh the entry for [node] in the region [prefix]'s map.
    Raises [Invalid_argument] on an empty mesh or overlong prefix. *)

val publish_all : t -> node:int -> vector:float array -> unit
(** Publish into every region enclosing the node (all prefixes of its own
    id, root included). *)

val unpublish : t -> int -> unit
(** Remove the node's entries from every region. *)

val rehome : t -> unit
(** Recompute hosting after mesh membership changed. *)

val entries_at : t -> int -> entry list
(** Entries hosted by a mesh member (across all regions). *)

val lookup :
  t ->
  prefix:int array ->
  vector:float array ->
  ?max_results:int ->
  ?ttl:int ->
  unit ->
  entry list
(** Find candidates in region [prefix] near [vector]: go to the host of
    the query's store id, then widen across the host's leaf-set
    neighborhood up to [ttl] (default 8) numerically-adjacent hosts.
    Sorted by landmark-vector distance, truncated to [max_results]
    (default 16). *)
