module Number = Landmark.Number
module Landmarks = Landmark.Landmarks

type entry = {
  node : int;
  vector : float array;
  number : int;
  store_id : int;
}

type region_map = { prefix : int array; entries : (int, entry) Hashtbl.t }

type t = {
  mesh : Mesh.t;
  scheme : Number.scheme;
  maps : (int, region_map) Hashtbl.t;  (* region key *)
  by_host : (int, entry list ref) Hashtbl.t;
}

let region_key t prefix =
  let value = Array.fold_left (fun acc d -> (acc lsl Mesh.digit_bits t.mesh) lor d) 0 prefix in
  (Array.length prefix lsl 52) lor value

let create ~scheme mesh = { mesh; scheme; maps = Hashtbl.create 64; by_host = Hashtbl.create 64 }

let mesh t = t.mesh

let store_id_of t ~prefix vector =
  let digit_bits = Mesh.digit_bits t.mesh in
  let num_digits = Mesh.num_digits t.mesh in
  let len = Array.length prefix in
  if len > num_digits then invalid_arg "Pastry.Softmap.store_id_of: prefix too long";
  let tail_bits = (num_digits - len) * digit_bits in
  let u = Number.to_unit t.scheme (Number.number t.scheme vector) in
  let tail =
    if tail_bits = 0 then 0
    else begin
      let cells = 1 lsl tail_bits in
      let c = int_of_float (u *. float_of_int cells) in
      if c >= cells then cells - 1 else c
    end
  in
  let head = Array.fold_left (fun acc d -> (acc lsl digit_bits) lor d) 0 prefix in
  (head lsl tail_bits) lor tail

let host_of t store_id = Mesh.owner_of t.mesh store_id

let host_add t host entry =
  match Hashtbl.find_opt t.by_host host with
  | Some l -> l := entry :: !l
  | None -> Hashtbl.replace t.by_host host (ref [ entry ])

let host_remove t host (entry : entry) =
  match Hashtbl.find_opt t.by_host host with
  | Some l ->
    l := List.filter (fun e -> e != entry) !l;
    if !l = [] then Hashtbl.remove t.by_host host
  | None -> ()

let map_for t prefix =
  let key = region_key t prefix in
  match Hashtbl.find_opt t.maps key with
  | Some m -> m
  | None ->
    let m = { prefix = Array.copy prefix; entries = Hashtbl.create 8 } in
    Hashtbl.replace t.maps key m;
    m

let publish t ~prefix ~node ~vector =
  if Mesh.size t.mesh = 0 then invalid_arg "Pastry.Softmap.publish: empty mesh";
  let m = map_for t prefix in
  (match Hashtbl.find_opt m.entries node with
  | Some old ->
    Hashtbl.remove m.entries node;
    host_remove t (host_of t old.store_id) old
  | None -> ());
  let store_id = store_id_of t ~prefix vector in
  let e = { node; vector = Array.copy vector; number = Number.number t.scheme vector; store_id } in
  Hashtbl.replace m.entries node e;
  host_add t (host_of t store_id) e

let publish_all t ~node ~vector =
  let pid = Mesh.pastry_id t.mesh node in
  for len = 0 to Mesh.num_digits t.mesh do
    let prefix = Array.init len (fun r -> Mesh.digit t.mesh pid r) in
    publish t ~prefix ~node ~vector
  done

let unpublish t node =
  Hashtbl.iter
    (fun _ m ->
      match Hashtbl.find_opt m.entries node with
      | Some e ->
        Hashtbl.remove m.entries node;
        host_remove t (host_of t e.store_id) e
      | None -> ())
    t.maps

let rehome t =
  Hashtbl.reset t.by_host;
  Hashtbl.iter
    (fun _ m -> Hashtbl.iter (fun _ e -> host_add t (host_of t e.store_id) e) m.entries)
    t.maps

let entries_at t host =
  match Hashtbl.find_opt t.by_host host with Some l -> !l | None -> []

let lookup t ~prefix ~vector ?(max_results = 16) ?(ttl = 8) () =
  if Mesh.size t.mesh = 0 then []
  else begin
    let key = region_key t prefix in
    match Hashtbl.find_opt t.maps key with
    | None -> []
    | Some m ->
      let collected = ref [] in
      let count = ref 0 in
      let seen = Hashtbl.create 16 in
      let visit host =
        if not (Hashtbl.mem seen host) then begin
          Hashtbl.replace seen host ();
          List.iter
            (fun e ->
              (* only entries of THIS region's map *)
              match Hashtbl.find_opt m.entries e.node with
              | Some e' when e' == e ->
                collected := e :: !collected;
                incr count
              | Some _ | None -> ())
            (entries_at t host)
        end
      in
      let start = host_of t (store_id_of t ~prefix vector) in
      visit start;
      (* widen across numerically adjacent hosts via leaf sets *)
      let frontier = ref [ start ] in
      let hosts_visited = ref 1 in
      while !count < max_results && !hosts_visited < ttl && !frontier <> [] do
        let next =
          List.concat_map
            (fun h ->
              if Mesh.mem t.mesh h then
                List.filter (fun l -> not (Hashtbl.mem seen l)) (Array.to_list (Mesh.leaves t.mesh h))
              else [])
            !frontier
          |> List.sort_uniq compare
        in
        List.iter
          (fun h ->
            if !hosts_visited < ttl then begin
              visit h;
              incr hosts_visited
            end)
          next;
        frontier := next
      done;
      !collected
      |> List.map (fun e -> (Landmarks.vector_dist vector e.vector, e.node, e))
      |> List.sort compare
      |> List.filteri (fun i _ -> i < max_results)
      |> List.map (fun (_, _, e) -> e)
  end
