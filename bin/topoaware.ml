(* topoaware: command-line driver for the topology-aware-overlay library.

   Subcommands:
     list                      show the available experiments
     experiment <id> [...]     run one paper experiment (or "all")
     gen-topology [...]        generate a transit-stub topology and print stats
     nn-search [...]           one nearest-neighbor search, all three algorithms
     build [...]               build an overlay and report stretch under a strategy
     trace [...]               replay a seeded maintenance run and dump spans as
                               Chrome-trace JSONL *)

module Ts = Topology.Transit_stub
module Oracle = Topology.Oracle
module Graph = Topology.Graph
module Builder = Core.Builder
module Strategy = Core.Strategy
module Measure = Core.Measure
module Search = Proximity.Search
module Landmarks = Landmark.Landmarks
module Can_overlay = Can.Overlay
module Rng = Prelude.Rng
open Cmdliner

let ppf = Format.std_formatter

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

(* ---- shared argument definitions ---- *)

let verbose_arg =
  let doc = "Enable debug logging of overlay construction and maintenance." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let scale_arg =
  let doc = "Divide workload sizes by $(docv) for quicker runs." in
  let positive =
    let parse s =
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok n
      | _ -> Error (`Msg (Printf.sprintf "expected a positive integer, got %S" s))
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(value & opt positive 1 & info [ "scale" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Random seed (experiments are deterministic given the seed)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let variant_arg =
  let doc = "Topology preset: tsk-large or tsk-small." in
  let preset =
    Arg.enum [ ("tsk-large", Workload.Ctx.Tsk_large); ("tsk-small", Workload.Ctx.Tsk_small) ]
  in
  Arg.(value & opt preset Workload.Ctx.Tsk_large & info [ "topology" ] ~docv:"PRESET" ~doc)

let latency_arg =
  let doc = "Link latency model: gtitm (random per class) or manual (20/5/2/1 ms)." in
  let model = Arg.enum [ ("gtitm", Ts.Gtitm_random); ("manual", Ts.Manual) ] in
  Arg.(value & opt model Ts.Gtitm_random & info [ "latency" ] ~docv:"MODEL" ~doc)

let probe_window_arg =
  let doc =
    "Probe-plane concurrency: how many RTT probes fly at once (1 = sequential).      Changes modelled probe wall-clock only, never which probes are sent."
  in
  Arg.(value & opt int 1 & info [ "probe-window" ] ~docv:"W" ~doc)

let domains_arg =
  let doc =
    "Domain pool hosting the store's shard-parallel phases and the probe plane's      batch prefetch: 0 (the default) reads the TOPOAWARE_DOMAINS environment      variable (else 1); N >= 1 pins an N-domain pool. Changes real wall-clock      only — results and metrics are byte-identical across values (DESIGN.md §12)."
  in
  let nonneg =
    let parse s =
      match int_of_string_opt s with
      | Some n when n >= 0 -> Ok n
      | Some _ -> Error (`Msg "--domains must be >= 0")
      | None -> Error (`Msg (Printf.sprintf "invalid --domains value %S" s))
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(value & opt nonneg 0 & info [ "domains" ] ~docv:"N" ~doc)

(* ---- list ---- *)

let list_cmd =
  let run () =
    List.iter
      (fun e -> Format.fprintf ppf "%-8s %s@." e.Workload.Registry.name e.Workload.Registry.title)
      Workload.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List available experiments") Term.(const run $ const ())

(* ---- experiment ---- *)

let experiment_cmd =
  let id =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc:"Experiment id, or 'all'.")
  in
  let run id scale =
    if id = "all" then begin
      Workload.Registry.run_all ~scale ppf;
      `Ok ()
    end
    else begin
      match Workload.Registry.find id with
      | Some e ->
        e.Workload.Registry.run ~scale ppf;
        `Ok ()
      | None -> `Error (false, Printf.sprintf "unknown experiment %S (try 'list')" id)
    end
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Run a paper experiment by id")
    Term.(ret (const run $ id $ scale_arg))

(* ---- gen-topology ---- *)

let gen_topology_cmd =
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE" ~doc:"Save the generated topology to $(docv).")
  in
  let run variant latency seed scale out =
    let params =
      match variant with
      | Workload.Ctx.Tsk_large -> Ts.tsk_large ~latency ~scale ()
      | Workload.Ctx.Tsk_small -> Ts.tsk_small ~latency ~scale ()
    in
    let topo = Ts.generate (Rng.create seed) params in
    let g = topo.Ts.graph in
    Format.fprintf ppf "params: %a@." Ts.pp_params params;
    Format.fprintf ppf "nodes: %d  edges: %d  connected: %b@." (Graph.node_count g)
      (Graph.edge_count g) (Graph.is_connected g);
    Format.fprintf ppf "transit nodes: %d  stub domains: %d@."
      (Array.length topo.Ts.transit_nodes)
      (Array.length topo.Ts.stub_members);
    let oracle = Oracle.build topo in
    let rng = Rng.create (seed + 1) in
    let samples = Array.init 1000 (fun _ ->
        Oracle.dist oracle (Rng.int rng (Graph.node_count g)) (Rng.int rng (Graph.node_count g)))
    in
    Format.fprintf ppf "pairwise latency: %a@." Prelude.Stats.pp_summary
      (Prelude.Stats.summarize samples);
    match out with
    | Some path ->
      Topology.Serialize.save topo path;
      Format.fprintf ppf "saved to %s@." path
    | None -> ()
  in
  Cmd.v
    (Cmd.info "gen-topology" ~doc:"Generate a transit-stub topology and print statistics")
    Term.(const run $ variant_arg $ latency_arg $ seed_arg $ scale_arg $ out_arg)

(* ---- topo-info ---- *)

let topo_info_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Saved topology file.")
  in
  let run file =
    match Topology.Serialize.load file with
    | Error m -> `Error (false, m)
    | Ok topo ->
      let g = topo.Ts.graph in
      Format.fprintf ppf "params: %a@." Ts.pp_params topo.Ts.params;
      Format.fprintf ppf "nodes: %d  edges: %d  connected: %b@." (Graph.node_count g)
        (Graph.edge_count g) (Graph.is_connected g);
      `Ok ()
  in
  Cmd.v
    (Cmd.info "topo-info" ~doc:"Inspect a saved topology file")
    Term.(ret (const run $ file_arg))

(* ---- nn-search ---- *)

let nn_search_cmd =
  let budget_arg =
    Arg.(value & opt int 10 & info [ "budget" ] ~docv:"N" ~doc:"RTT measurement budget.")
  in
  let run variant latency seed scale budget probe_window =
    let oracle = Workload.Ctx.oracle ~scale variant latency in
    let n = Oracle.node_count oracle in
    let rng = Rng.create seed in
    let can = Can_overlay.create ~dims:2 0 in
    for id = 1 to n - 1 do
      ignore (Can_overlay.join can id (Geometry.Point.random rng 2))
    done;
    let lms = Landmarks.choose rng oracle 15 in
    let vectors = Array.init n (fun node -> Landmarks.vector lms node) in
    let all = Array.init n (fun i -> i) in
    let query = Rng.int rng n in
    let nearest, optimal = Search.true_nearest oracle ~query ~candidates:all in
    Format.fprintf ppf "query node %d; true nearest %d at %.2f ms@." query nearest optimal;
    let prober =
      Engine.Probe.create
        ~config:{ Engine.Probe.default_config with Engine.Probe.window = probe_window }
        ~measure:(Oracle.measure oracle) ()
    in
    let last name (c : Search.curve) =
      let k = Array.length c.Search.dist - 1 in
      Format.fprintf ppf
        "%-10s found %d at %.2f ms (stretch %.3f) with %d probes in %.1f ms wall-clock@." name
        c.Search.found.(k) c.Search.dist.(k)
        (c.Search.dist.(k) /. optimal)
        (k + 1) c.Search.elapsed
    in
    last "ers" (Search.ers_curve ~prober oracle can ~query ~budget);
    last "landmark"
      (Search.hybrid_curve ~prober oracle ~vector_of:(fun v -> vectors.(v)) ~candidates:all
         ~query ~budget:1);
    last "hybrid"
      (Search.hybrid_curve ~prober oracle ~vector_of:(fun v -> vectors.(v)) ~candidates:all
         ~query ~budget)
  in
  Cmd.v
    (Cmd.info "nn-search" ~doc:"Run one nearest-neighbor search with all three algorithms")
    Term.(
      const run $ variant_arg $ latency_arg $ seed_arg $ scale_arg $ budget_arg
      $ probe_window_arg)

(* ---- build ---- *)

let build_cmd =
  let strategy_arg =
    let doc = "Neighbor selection: random, hybrid or optimal." in
    let strat =
      Arg.enum
        [
          ("random", Strategy.Random_pick);
          ("hybrid", Strategy.hybrid ~rtts:10 ());
          ("optimal", Strategy.Optimal);
        ]
    in
    Arg.(value & opt strat (Strategy.hybrid ~rtts:10 ()) & info [ "strategy" ] ~docv:"S" ~doc)
  in
  let size_arg =
    Arg.(value & opt int 1024 & info [ "nodes" ] ~docv:"N" ~doc:"Overlay size.")
  in
  let run verbose variant latency seed scale strategy size probe_window domains =
    setup_logs verbose;
    let oracle = Workload.Ctx.oracle ~scale variant latency in
    let b =
      Builder.build oracle
        {
          Builder.default_config with
          Builder.overlay_size = size / scale;
          strategy;
          probe = { Engine.Probe.default_config with Engine.Probe.window = probe_window };
          domains;
          seed;
        }
    in
    let r = Measure.route_stretch b in
    Format.fprintf ppf "overlay: %d nodes, strategy %s@." (size / scale)
      (Strategy.to_string strategy);
    Format.fprintf ppf "stretch: %a@." Prelude.Stats.pp_summary r.Measure.stretch;
    Format.fprintf ppf "hops:    %a@." Prelude.Stats.pp_summary r.Measure.hops;
    Format.fprintf ppf "neighbor quality: %a@." Prelude.Stats.pp_summary
      (Measure.neighbor_quality b);
    Format.fprintf ppf "probe plane: %d probes, %.0f ms modelled wall-clock at window %d@."
      (Engine.Probe.probes b.Builder.prober)
      (Engine.Probe.total_elapsed b.Builder.prober)
      probe_window
  in
  Cmd.v
    (Cmd.info "build" ~doc:"Build a topology-aware overlay and measure routing stretch")
    Term.(
      const run $ verbose_arg $ variant_arg $ latency_arg $ seed_arg $ scale_arg $ strategy_arg
      $ size_arg $ probe_window_arg $ domains_arg)

(* ---- churn ---- *)

let churn_cmd =
  let crashes_arg =
    Arg.(value & opt int 8 & info [ "crashes" ] ~docv:"N" ~doc:"Fail-stop crashes in the storm.")
  in
  let leaves_arg =
    Arg.(value & opt int 8 & info [ "leaves" ] ~docv:"N" ~doc:"Graceful departures in the storm.")
  in
  let joins_arg =
    Arg.(value & opt int 16 & info [ "joins" ] ~docv:"N" ~doc:"Joins in the storm.")
  in
  let loss_arg =
    Arg.(value & opt float 0.05
         & info [ "loss" ] ~docv:"P" ~doc:"Notification loss probability in [0,1].")
  in
  let stale_arg =
    Arg.(value & opt float 0.10
         & info [ "staleness" ] ~docv:"F"
             ~doc:"Fraction of soft-state entries aged to expiry per staleness burst.")
  in
  let shards_arg =
    Arg.(value & opt int 1
         & info [ "shards" ] ~docv:"N"
             ~doc:"Soft-state expiry shards (independently swept store partitions).")
  in
  let digest_arg =
    Arg.(value & opt float 0.0
         & info [ "digest-window" ] ~docv:"MS"
             ~doc:"Notification digest window in virtual ms (0 disables batching).")
  in
  let run verbose seed scale crashes leaves joins loss staleness shards digest_window
      probe_window domains =
    if loss < 0.0 || loss > 1.0 then `Error (false, "--loss must be in [0,1]")
    else if staleness < 0.0 || staleness > 1.0 then `Error (false, "--staleness must be in [0,1]")
    else if shards < 1 then `Error (false, "--shards must be >= 1")
    else if digest_window < 0.0 then `Error (false, "--digest-window must be >= 0")
    else if probe_window < 1 then `Error (false, "--probe-window must be >= 1")
    else if domains < 0 then `Error (false, "--domains must be >= 0")
    else begin
      setup_logs verbose;
      let storm =
        {
          Engine.Faults.default_storm with
          Engine.Faults.crashes;
          leaves;
          joins;
          expire_fraction = staleness;
        }
      in
      let channel = { Engine.Faults.loss; delay_min = 5.0; delay_max = 50.0 } in
      Workload.Exp_churn.run_custom ~scale ~seed ~shards ~digest_window ~probe_window ~domains
        ~storm ~channel ppf;
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "churn"
       ~doc:
         "Drive every overlay through a seeded fault storm (crashes, leaves, joins, stale \
          soft-state, lossy notifications) and report repair latency and stretch")
    Term.(
      ret
        (const run $ verbose_arg $ seed_arg $ scale_arg $ crashes_arg $ leaves_arg $ joins_arg
        $ loss_arg $ stale_arg $ shards_arg $ digest_arg $ probe_window_arg $ domains_arg))

(* ---- domains ---- *)

let domains_cmd =
  let run verbose scale =
    setup_logs verbose;
    Workload.Exp_domains.run ~scale ppf
  in
  Cmd.v
    (Cmd.info "domains"
       ~doc:
         "Run the domain-parallel hosting workload at pool sizes 1, 2 and 4, verify the \
          metrics JSON is byte-identical across them (the DESIGN.md §12 determinism \
          contract) and print the wall-clock speedup table")
    Term.(const run $ verbose_arg $ scale_arg)

(* ---- repair ---- *)

let repair_cmd =
  let run verbose seed scale =
    setup_logs verbose;
    Workload.Exp_repair.run ~scale ~seed ppf
  in
  Cmd.v
    (Cmd.info "repair"
       ~doc:
         "Sweep maintenance configurations (refresh x sweep x digest window, plus one \
          adaptive run) under a seeded churn storm and report the trace-derived repair \
          latency tail (p50/p95/p99) per configuration")
    Term.(const run $ verbose_arg $ seed_arg $ scale_arg)

(* ---- cache ---- *)

let cache_cmd =
  let zipf_arg =
    Arg.(value & opt float 0.9
         & info [ "zipf-s" ] ~docv:"S"
             ~doc:"Zipf popularity exponent, >= 0 (0 = uniform requests).")
  in
  let clients_arg =
    Arg.(value & opt (some int) None
         & info [ "clients" ] ~docv:"N"
             ~doc:"Client population size (default: scales with the workload).")
  in
  let replicas_arg =
    Arg.(value & opt int 3
         & info [ "replicas" ] ~docv:"R"
             ~doc:"Max copies per key, >= 1 (1 disables hotspot replication).")
  in
  let run verbose seed scale zipf_s clients replicas =
    if (not (Float.is_finite zipf_s)) || zipf_s < 0.0 then
      `Error (false, "--zipf-s must be finite and >= 0")
    else if (match clients with Some c -> c < 1 | None -> false) then
      `Error (false, "--clients must be >= 1")
    else if replicas < 1 then `Error (false, "--replicas must be >= 1")
    else begin
      setup_logs verbose;
      Workload.Exp_cache.run_custom ~scale ~seed ~zipf_s ?clients ~replicas ppf;
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "cache"
       ~doc:
         "Serve a seeded Zipf request workload through a content cache over every overlay \
          (eCAN aware/random, CAN, Chord, Pastry, Koorde) and report delivered latency percentiles, \
          hit rate, hotspot replications and per-node load")
    Term.(
      ret
        (const run $ verbose_arg $ seed_arg $ scale_arg $ zipf_arg $ clients_arg
        $ replicas_arg))

(* ---- degree ---- *)

let degree_cmd =
  let run verbose seed scale =
    setup_logs verbose;
    Workload.Exp_degree.run_custom ~scale ~seed ppf;
    `Ok ()
  in
  Cmd.v
    (Cmd.info "degree"
       ~doc:
         "Sweep the per-hop choice budget k over every overlay (eCAN, CAN, Chord, Pastry, \
          Koorde — where k is also the de Bruijn fanout) and report topology-aware vs \
          random stretch, RTT probes spent and churn-repair latency per (backend, k) cell")
    Term.(ret (const run $ verbose_arg $ seed_arg $ scale_arg))

(* ---- mcast ---- *)

let mcast_cmd =
  let group_arg =
    Arg.(value & opt (some int) None
         & info [ "group-size" ] ~docv:"N"
             ~doc:"Subscriber group size, >= 4 (default: scales with the workload).")
  in
  let degree_arg =
    Arg.(value & opt int 3
         & info [ "degree" ] ~docv:"D" ~doc:"Max children per tree node, >= 1.")
  in
  let policy_arg =
    Arg.(value & opt (enum [ ("both", None); ("aware", Some Engine.Mcast.Aware);
                             ("random", Some Engine.Mcast.Random) ]) None
         & info [ "policy" ] ~docv:"POLICY"
             ~doc:
               "Placement arm for the eCAN rows: $(b,aware), $(b,random), or $(b,both) \
                (the default; headline aware-vs-random gauges need both).")
  in
  let run verbose seed scale group_size degree policy =
    if (match group_size with Some g -> g < 4 | None -> false) then
      `Error (false, "--group-size must be >= 4")
    else if degree < 1 then `Error (false, "--degree must be >= 1")
    else begin
      setup_logs verbose;
      Workload.Exp_mcast.run_custom ~scale ~seed ?group_size ~degree ?policy ppf;
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "mcast"
       ~doc:
         "Disseminate a seeded publish schedule through bounded-degree multicast trees over \
          every overlay (eCAN aware/random placement, CAN, Chord, Pastry, Koorde), with parent loss \
          detected through soft-state Departure_of watches, and report delivered latency, \
          stretch, link stress and regraft latency per backend")
    Term.(
      ret (const run $ verbose_arg $ seed_arg $ scale_arg $ group_arg $ degree_arg $ policy_arg))

(* ---- trace ---- *)

let trace_cmd =
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE" ~doc:"Write the JSONL spans to $(docv) instead of stdout.")
  in
  let size_arg =
    Arg.(value & opt int 128 & info [ "nodes" ] ~docv:"N" ~doc:"Overlay size.")
  in
  let until_arg =
    Arg.(value & opt float 120_000.0
         & info [ "until" ] ~docv:"MS" ~doc:"Simulated horizon in milliseconds.")
  in
  let lookups_arg =
    Arg.(value & opt int 32
         & info [ "lookups" ] ~docv:"N" ~doc:"Routed lookups issued after the run (route spans).")
  in
  let run verbose variant latency seed scale size until lookups out =
    if until <= 0.0 then `Error (false, "--until must be positive")
    else begin
      setup_logs verbose;
      let oracle = Workload.Ctx.oracle ~scale variant latency in
      let sim = Engine.Sim.create () in
      let tracer = Engine.Trace.create ~clock:(fun () -> Engine.Sim.now sim) () in
      let faults = Engine.Faults.create ~trace:tracer ~seed:(seed + 1) () in
      (* Spans ride on the instrumented paths, so the run needs a registry
         even though only the tracer's output is dumped. *)
      let metrics = Engine.Metrics.create () in
      let size = max 16 (size / scale) in
      let b =
        Builder.build ~metrics ~trace:tracer
          ~clock:(fun () -> Engine.Sim.now sim)
          oracle
          { Builder.default_config with Builder.overlay_size = size; ttl = 60_000.0; seed }
      in
      let can = Ecan.Expressway.can b.Builder.ecan in
      let m =
        Core.Maintenance.start ~sim ~metrics ~trace:tracer ~refresh_period:20_000.0
          ~sweep_period:5_000.0 ~channel:(Engine.Faults.perturb faults) b
      in
      Core.Maintenance.subscribe_all_slots m;
      (* A small storm inside the horizon so the dump shows fault, sweep
         and notification spans, not just refresh traffic. *)
      let storm =
        {
          Engine.Faults.default_storm with
          Engine.Faults.crashes = 2;
          leaves = 2;
          joins = 4;
          expire_bursts = 1;
          start = until /. 4.0;
          spread = until /. 2.0;
        }
      in
      let joiners =
        Array.of_seq
          (Seq.filter
             (fun i -> not (Can_overlay.mem can i))
             (Seq.init (Oracle.node_count oracle) (fun i -> i)))
      in
      let next_join = ref 0 in
      let drv = Rng.create (seed + 2) in
      let handler (ev : Engine.Faults.event) =
        match ev.Engine.Faults.action with
        | Engine.Faults.Crash ->
          let ids = Can_overlay.node_ids can in
          if Array.length ids > 8 then Core.Maintenance.node_crashes m (Rng.pick drv ids)
        | Engine.Faults.Leave ->
          let ids = Can_overlay.node_ids can in
          if Array.length ids > 8 then Core.Maintenance.node_departs m (Rng.pick drv ids)
        | Engine.Faults.Join ->
          if !next_join < Array.length joiners then begin
            Core.Maintenance.node_joins m joiners.(!next_join);
            incr next_join
          end
        | Engine.Faults.Expire fraction ->
          ignore (Softstate.Store.inject_staleness b.Builder.store ~rng:drv ~fraction)
      in
      Engine.Faults.install faults ~sim ~plan:(Engine.Faults.plan faults storm) ~handler;
      Engine.Sim.run ~until sim;
      let ids = Can_overlay.node_ids can in
      for _ = 1 to lookups do
        ignore
          (Ecan.Expressway.route b.Builder.ecan ~src:(Rng.pick drv ids)
             (Geometry.Point.random drv b.Builder.config.Builder.dims))
      done;
      Core.Maintenance.stop m;
      (match out with
      | Some path ->
        let oc = open_out path in
        output_string oc (Engine.Trace.to_jsonl tracer);
        close_out oc
      | None -> print_string (Engine.Trace.to_jsonl tracer));
      Logs.info (fun f ->
          f "traced %d spans (%d dropped by ring wraparound)" (Engine.Trace.length tracer)
            (Engine.Trace.dropped tracer));
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Replay a seeded maintenance run (refresh, sweeps, a small fault storm, routed \
          lookups) and dump the event spans as Chrome-trace JSONL (load in chrome://tracing \
          or Perfetto)")
    Term.(
      ret
        (const run $ verbose_arg $ variant_arg $ latency_arg $ seed_arg $ scale_arg $ size_arg
        $ until_arg $ lookups_arg $ out_arg))

let () =
  let doc = "Topology-aware overlay construction using global soft-state (ICDCS 2003)" in
  let info = Cmd.info "topoaware" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; experiment_cmd; gen_topology_cmd; topo_info_cmd; nn_search_cmd; build_cmd; churn_cmd; repair_cmd; cache_cmd; mcast_cmd; degree_cmd; domains_cmd; trace_cmd ]))
