(* Churn resilience: the paper's motivation for pub/sub maintenance —
   "without timely fixes, the structure of the overlay digresses from
   optimal as inefficient routes gradually accumulate in routing tables".

   We subject two identical overlays to the same churn (nodes leave,
   fresh nodes join).  One repairs its routing-table entries on pub/sub
   notifications; the other only clears dangling pointers.  We then
   compare how far each drifts from the freshly-built stretch.

   Run with:  dune exec examples/churn_resilience.exe *)

module Ts = Topology.Transit_stub
module Oracle = Topology.Oracle
module Builder = Core.Builder
module Strategy = Core.Strategy
module Measure = Core.Measure
module Maintenance = Core.Maintenance
module Can_overlay = Can.Overlay
module Ecan_exp = Ecan.Expressway
module Sim = Engine.Sim
module Rng = Prelude.Rng

let overlay_size = 250
let churn_events = 120

let build oracle ~clock =
  Builder.build ~clock oracle
    {
      Builder.default_config with
      Builder.overlay_size = overlay_size;
      landmark_count = 12;
      strategy = Strategy.hybrid ~rtts:8 ();
      seed = 7;
    }

let stretch b = (Measure.route_stretch ~pairs:800 b).Measure.stretch.Prelude.Stats.mean

(* Apply the same churn schedule to an overlay; [repair] decides whether
   pub/sub-driven re-selection is active. *)
let churn oracle ~repair =
  let sim = Sim.create () in
  let b = build oracle ~clock:(fun () -> Sim.now sim) in
  let before = stretch b in
  let maintenance = Maintenance.start ~sim b in
  if repair then Maintenance.subscribe_all_slots maintenance;
  let rng = Rng.create 99 in
  let member_set = Hashtbl.create 512 in
  Array.iter (fun m -> Hashtbl.replace member_set m ()) b.Builder.members;
  let fresh = ref [] in
  let i = ref 0 in
  let n = Oracle.node_count oracle in
  while List.length !fresh < churn_events && !i < n do
    if not (Hashtbl.mem member_set !i) then fresh := !i :: !fresh;
    incr i
  done;
  let joiners = Array.of_list !fresh in
  let can = Ecan_exp.can b.Builder.ecan in
  Array.iteri
    (fun k newcomer ->
      ignore
        (Sim.schedule sim
           ~delay:(float_of_int (k + 1) *. 500.0)
           (fun () ->
             (* one leave + one join per event keeps the size stable *)
             let members = Can_overlay.node_ids can in
             let victim = Prelude.Rng.pick rng members in
             if repair then begin
               Maintenance.node_departs maintenance victim;
               Maintenance.node_joins maintenance newcomer
             end
             else begin
               Builder.leave_node b victim;
               ignore (Builder.join_node b newcomer)
             end)))
    joiners;
  Sim.run ~until:(float_of_int (churn_events + 4) *. 500.0) sim;
  Maintenance.stop maintenance;
  let after = stretch b in
  (before, after)

let () =
  let topo = Ts.generate (Rng.create 2) (Ts.tsk_large ~latency:Ts.Manual ~scale:16 ()) in
  let oracle = Oracle.build topo in
  Format.printf "overlay of %d nodes; churn: %d leave+join events@.@." overlay_size churn_events;
  let before, after_repair = churn oracle ~repair:true in
  Format.printf "with pub/sub repair:    stretch %.3f -> %.3f (drift %+.1f%%)@." before
    after_repair
    (100.0 *. (after_repair -. before) /. before);
  let before, after_decay = churn oracle ~repair:false in
  Format.printf "without repair:         stretch %.3f -> %.3f (drift %+.1f%%)@." before
    after_decay
    (100.0 *. (after_decay -. before) /. before);
  Format.printf
    "@.Demand-driven notifications keep proximity quality close to the freshly-built overlay.@."
