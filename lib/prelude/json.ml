type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---- printing ---- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* 12 significant digits: short, stable, and round-trippable (a decimal of
   <= 15 significant digits survives decimal -> double -> decimal). *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    (* JSON has no NaN/infinity literals. *)
    if Float.is_finite f then Buffer.add_string buf (float_repr f)
    else Buffer.add_string buf "null"
  | String s -> escape_string buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_string buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* ---- parsing ---- *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' ->
        (if !pos >= n then fail "unterminated escape";
         let e = s.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'u' ->
           if !pos + 4 > n then fail "truncated \\u escape";
           let code = int_of_string ("0x" ^ String.sub s !pos 4) in
           pos := !pos + 4;
           (* ASCII escapes decode to bytes; non-ASCII code points are
              preserved as UTF-8. *)
           if code < 0x80 then Buffer.add_char buf (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
           else begin
             Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
             Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
         | _ -> fail "bad escape");
        go ()
      | c ->
        Buffer.add_char buf c;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if String.contains tok '.' || String.contains tok 'e' || String.contains tok 'E' then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
    else begin
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt tok with Some f -> Float f | None -> fail "bad number")
    end
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing characters";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ---- accessors ---- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
let to_list_opt = function List l -> Some l | _ -> None
