(** Summary statistics over float samples. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}
(** Descriptive summary of a sample.  For an empty sample every field is 0
    (and [count = 0]). *)

val mean : float array -> float
(** Arithmetic mean; 0 for an empty array. *)

val variance : float array -> float
(** Population variance; 0 for arrays shorter than 2. *)

val stddev : float array -> float
(** Population standard deviation. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0,100], linear interpolation between
    order statistics.  Total over the sample: 0 for an empty array (the
    same convention as {!summarize}), the sole element for a singleton.
    Raises [Invalid_argument] only when [p] is outside [0,100] (including
    NaN).  Does not mutate its argument. *)

val summarize : float array -> summary
(** Full summary of a sample. *)

val pp_summary : Format.formatter -> summary -> unit
(** Render as ["mean=… sd=… p50=… p90=… p99=… min=… max=… n=…"]. *)

(** Online (streaming) mean/variance accumulation, Welford's algorithm. *)
module Online : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val stddev : t -> float
end
