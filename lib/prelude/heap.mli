(** Imperative binary min-heap parameterised by an explicit priority.

    Used by Dijkstra (priority = tentative distance).  Entries are not
    stable: equal priorities pop in a deterministic but unspecified
    order. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Fresh empty heap.  [capacity] (default 0) sizes the first backing
    array allocation so heaps with a known steady-state population skip
    the grow-copy doublings; it never limits growth. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push h prio x] inserts [x] with priority [prio].  O(log n). *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority entry.  O(log n). *)

val peek : 'a t -> (float * 'a) option
(** Minimum-priority entry without removing it.  O(1). *)

val iter : (float -> 'a -> unit) -> 'a t -> unit
(** Visit every entry in unspecified (array) order.  O(n); for audits and
    invariant checks, not for ordered traversal. *)

val clear : 'a t -> unit
(** Drop all entries. *)
