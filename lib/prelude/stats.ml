type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    acc /. float_of_int n
  end

let stddev xs = sqrt (variance xs)

let percentile xs p =
  (* [not (p >= 0.0 && ...)] instead of [p < 0.0 || ...]: a NaN [p] fails
     every comparison and would otherwise slip through the guard into an
     undefined [int_of_float nan] index below. *)
  if not (p >= 0.0 && p <= 100.0) then invalid_arg "Stats.percentile: p out of [0,100]";
  let n = Array.length xs in
  if n = 0 then 0.0
  else if n = 1 then xs.(0)
  else begin
    let sorted = Array.copy xs in
    Array.sort compare sorted;
    let clamp i = if i < 0 then 0 else if i > n - 1 then n - 1 else i in
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = clamp (int_of_float (Float.floor rank)) in
    let hi = clamp (int_of_float (Float.ceil rank)) in
    if lo = hi then sorted.(lo)
    else begin
      let frac = rank -. float_of_int lo in
      (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
    end
  end

let summarize xs =
  let n = Array.length xs in
  if n = 0 then
    { count = 0; mean = 0.0; stddev = 0.0; min = 0.0; max = 0.0; p50 = 0.0; p90 = 0.0; p99 = 0.0 }
  else
    {
      count = n;
      mean = mean xs;
      stddev = stddev xs;
      min = Array.fold_left Float.min xs.(0) xs;
      max = Array.fold_left Float.max xs.(0) xs;
      p50 = percentile xs 50.0;
      p90 = percentile xs 90.0;
      p99 = percentile xs 99.0;
    }

let pp_summary ppf s =
  Format.fprintf ppf "mean=%.3f sd=%.3f p50=%.3f p90=%.3f p99=%.3f min=%.3f max=%.3f n=%d"
    s.mean s.stddev s.p50 s.p90 s.p99 s.min s.max s.count

module Online = struct
  type t = { mutable n : int; mutable mu : float; mutable m2 : float }

  let create () = { n = 0; mu = 0.0; m2 = 0.0 }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mu in
    t.mu <- t.mu +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mu))

  let count t = t.n
  let mean t = t.mu
  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int t.n
  let stddev t = sqrt (variance t)
end
