(** Minimal zero-dependency JSON: a value type, a deterministic compact
    printer, and a strict parser.

    The printer is the repo's machine-readable output format (metrics
    snapshots, trace spans): field order is exactly the order of the
    [Obj] list, floats print with 12 significant digits (integral floats
    as ["x.0"]), so equal values always print to equal bytes — the
    property the byte-identical-benchmark contract relies on.  Non-finite
    floats print as [null] (JSON has no NaN/infinity). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no whitespace), deterministic. *)

val to_buffer : Buffer.t -> t -> unit
(** Append the compact rendering to a buffer. *)

val of_string : string -> (t, string) result
(** Strict parse of one JSON value (trailing garbage is an error).
    Numbers without [.]/[e] parse as [Int], others as [Float]. *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on missing field or non-object. *)

val to_float_opt : t -> float option
(** [Float] or [Int] payload as a float. *)

val to_int_opt : t -> int option
val to_string_opt : t -> string option
val to_list_opt : t -> t list option
