type t = { n : int; s : float; cum : float array }
(* [cum.(i)] is the unnormalized cumulative weight of ranks [0..i]; the
   total mass is [cum.(n-1)].  Keeping the raw partial sums (instead of
   dividing through) costs nothing at sample time — the uniform draw is
   scaled up by the total instead — and keeps [pmf]/[cdf] exact
   differences of the same array the sampler searches. *)

let create ?(s = 1.0) n =
  if n <= 0 then invalid_arg "Zipf.create: size must be positive";
  if (not (Float.is_finite s)) || s < 0.0 then
    invalid_arg "Zipf.create: exponent must be finite and non-negative";
  let cum = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (1.0 /. Float.pow (float_of_int (i + 1)) s);
    cum.(i) <- !acc
  done;
  { n; s; cum }

let size t = t.n
let exponent t = t.s

let check_rank t i name = if i < 0 || i >= t.n then invalid_arg ("Zipf." ^ name ^ ": rank out of range")

let total t = t.cum.(t.n - 1)

let pmf t i =
  check_rank t i "pmf";
  (if i = 0 then t.cum.(0) else t.cum.(i) -. t.cum.(i - 1)) /. total t

let cdf t i =
  check_rank t i "cdf";
  t.cum.(i) /. total t

let sample t rng =
  let u = Rng.float rng (total t) in
  (* Smallest rank whose cumulative weight exceeds the draw.  [u] lies in
     [0, total), so the search always lands in range. *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cum.(mid) > u then hi := mid else lo := mid + 1
  done;
  !lo
