type 'a entry = { prio : float; value : 'a }

type 'a t = { mutable data : 'a entry array; mutable size : int; hint : int }

(* The entry array cannot be preallocated without a value to fill it
   with, so a [capacity] hint takes effect on the first push: [grow]
   jumps straight to the hint instead of walking the doubling ladder
   (and its grow-copies) up from 16. *)
let create ?(capacity = 0) () = { data = [||]; size = 0; hint = capacity }

let length h = h.size
let is_empty h = h.size = 0

let grow h entry =
  let cap = Array.length h.data in
  if h.size = cap then begin
    let ncap = if cap = 0 then max 16 h.hint else cap * 2 in
    let ndata = Array.make ncap entry in
    Array.blit h.data 0 ndata 0 h.size;
    h.data <- ndata
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.data.(i).prio < h.data.(parent).prio then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && h.data.(l).prio < h.data.(!smallest).prio then smallest := l;
  if r < h.size && h.data.(r).prio < h.data.(!smallest).prio then smallest := r;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h prio value =
  let entry = { prio; value } in
  grow h entry;
  h.data.(h.size) <- entry;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    Some (top.prio, top.value)
  end

let peek h = if h.size = 0 then None else Some (h.data.(0).prio, h.data.(0).value)

let iter f h =
  for i = 0 to h.size - 1 do
    f h.data.(i).prio h.data.(i).value
  done

let clear h =
  h.data <- [||];
  h.size <- 0
