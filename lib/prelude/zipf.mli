(** Seeded Zipf(s) sampler over ranks [0, n).

    Content-popularity workloads (web caches, DHT request traces) are
    classically Zipf-distributed: the i-th most popular item (1-based
    rank) is requested with probability proportional to [1 / i^s].  This
    module precomputes the normalized CDF once and samples by binary
    search, so drawing is O(log n) and fully deterministic given the
    {!Rng.t} it is handed — two samplers over the same generator state
    produce byte-identical rank streams.

    [s = 0] degenerates to the uniform distribution over the [n] ranks;
    larger [s] concentrates mass on the low ranks (the web's classical
    fit is [s] around 0.7–1.0). *)

type t

val create : ?s:float -> int -> t
(** [create ~s n] builds a sampler over ranks [0 .. n-1] with exponent
    [s] (default 1.0).  Rank 0 is the most popular item.  Raises
    [Invalid_argument] if [n <= 0], or if [s] is negative or not
    finite. *)

val size : t -> int
(** Number of ranks. *)

val exponent : t -> float
(** The skew exponent [s]. *)

val pmf : t -> int -> float
(** [pmf t i] is the probability of rank [i]; strictly positive and
    nonincreasing in [i].  Raises [Invalid_argument] out of range. *)

val cdf : t -> int -> float
(** [cdf t i] is the probability of drawing a rank [<= i]
    ([cdf t (n-1) = 1.0]).  Raises [Invalid_argument] out of range. *)

val sample : t -> Rng.t -> int
(** Draw one rank, consuming exactly one uniform float from the
    generator (inverse-CDF via binary search). *)
