module Rng = Prelude.Rng

type node_state = {
  id : int;
  pid : int;
  mutable table : int option array array;  (* row -> digit -> node id *)
  mutable leaves : int array;
}

type obs = {
  requests : Engine.Metrics.counter;
  failures : Engine.Metrics.counter;
  hops : Engine.Metrics.histogram;
  tracer : Engine.Trace.t option;
}

type t = {
  digit_bits : int;
  num_digits : int;
  leaf_radius : int;
  id_bits : int;
  id_space : int;
  nodes : (int, node_state) Hashtbl.t;
  by_pid : (int, int) Hashtbl.t;
  prefix_members : (int, int list ref) Hashtbl.t;  (* (len, prefix) key -> ids *)
  mutable sorted : (int * int) array;  (* (pid, id) *)
  mutable dirty : bool;
  obs : obs option;
}

type selector = node:int -> prefix:int array -> candidates:int array -> int option

let create ?metrics ?(labels = []) ?trace ?(digit_bits = 2) ?(num_digits = 15) ?(leaf_radius = 4)
    () =
  if digit_bits < 1 || digit_bits > 4 then invalid_arg "Pastry.create: digit_bits out of [1,4]";
  if num_digits < 2 then invalid_arg "Pastry.create: num_digits must be >= 2";
  if digit_bits * num_digits > 50 then invalid_arg "Pastry.create: id space too large";
  if leaf_radius < 1 then invalid_arg "Pastry.create: leaf_radius must be >= 1";
  let id_bits = digit_bits * num_digits in
  let obs =
    Option.map
      (fun m ->
        let labels = ("overlay", "pastry") :: labels in
        {
          requests = Engine.Metrics.counter m ~labels "route_requests";
          failures = Engine.Metrics.counter m ~labels "route_failures";
          hops = Engine.Metrics.histogram m ~labels "route_hops";
          tracer = trace;
        })
      metrics
  in
  {
    digit_bits;
    num_digits;
    leaf_radius;
    id_bits;
    id_space = 1 lsl id_bits;
    nodes = Hashtbl.create 64;
    by_pid = Hashtbl.create 64;
    prefix_members = Hashtbl.create 64;
    sorted = [||];
    dirty = false;
    obs;
  }

let digit_bits t = t.digit_bits
let num_digits t = t.num_digits
let size t = Hashtbl.length t.nodes
let mem t id = Hashtbl.mem t.nodes id
let fan t = 1 lsl t.digit_bits

let node t id =
  match Hashtbl.find_opt t.nodes id with
  | Some n -> n
  | None -> invalid_arg "Pastry: not a member"

let pastry_id t id = (node t id).pid

let node_ids t =
  let arr = Array.make (size t) 0 in
  let i = ref 0 in
  Hashtbl.iter
    (fun id _ ->
      arr.(!i) <- id;
      incr i)
    t.nodes;
  arr

let digit t pid r = (pid lsr ((t.num_digits - 1 - r) * t.digit_bits)) land (fan t - 1)

let shared_prefix_len t a b =
  let rec go r = if r >= t.num_digits then r else if digit t a r = digit t b r then go (r + 1) else r in
  go 0

let prefix_key len value = (len lsl 52) lor value

let prefix_value t pid len = if len = 0 then 0 else pid lsr ((t.num_digits - len) * t.digit_bits)

let index_add t n =
  for len = 0 to t.num_digits do
    let key = prefix_key len (prefix_value t n.pid len) in
    match Hashtbl.find_opt t.prefix_members key with
    | Some l -> l := n.id :: !l
    | None -> Hashtbl.replace t.prefix_members key (ref [ n.id ])
  done

let index_remove t n =
  for len = 0 to t.num_digits do
    let key = prefix_key len (prefix_value t n.pid len) in
    match Hashtbl.find_opt t.prefix_members key with
    | Some l ->
      l := List.filter (fun id -> id <> n.id) !l;
      if !l = [] then Hashtbl.remove t.prefix_members key
    | None -> ()
  done

let add_node t ~rng id =
  if mem t id then invalid_arg "Pastry.add_node: already a member";
  let rec fresh () =
    let pid = Rng.int rng t.id_space in
    if Hashtbl.mem t.by_pid pid then fresh () else pid
  in
  let pid = fresh () in
  let n = { id; pid; table = [||]; leaves = [||] } in
  Hashtbl.replace t.nodes id n;
  Hashtbl.replace t.by_pid pid id;
  index_add t n;
  t.dirty <- true

let remove_node t id =
  let n = node t id in
  Hashtbl.remove t.nodes id;
  Hashtbl.remove t.by_pid n.pid;
  index_remove t n;
  t.dirty <- true;
  Hashtbl.iter
    (fun _ other ->
      Array.iter
        (fun row ->
          Array.iteri (fun i -> function Some v when v = id -> row.(i) <- None | _ -> ()) row)
        other.table;
      other.leaves <- Array.of_seq (Seq.filter (fun l -> l <> id) (Array.to_seq other.leaves)))
    t.nodes

let index t =
  if t.dirty then begin
    let arr = Array.make (size t) (0, 0) in
    let i = ref 0 in
    Hashtbl.iter
      (fun id n ->
        arr.(!i) <- (n.pid, id);
        incr i)
      t.nodes;
    Array.sort compare arr;
    t.sorted <- arr;
    t.dirty <- false
  end;
  t.sorted

let circular_dist t a b =
  let d = abs (a - b) in
  min d (t.id_space - d)

let owner_of t key =
  let arr = index t in
  if Array.length arr = 0 then failwith "Pastry.owner_of: empty mesh";
  let key = ((key mod t.id_space) + t.id_space) mod t.id_space in
  let best = ref None in
  Array.iter
    (fun (pid, id) ->
      let d = circular_dist t pid key in
      match !best with
      | Some (bd, bpid, _) when (bd, bpid) <= (d, pid) -> ()
      | _ -> best := Some (d, pid, id))
    arr;
  match !best with Some (_, _, id) -> id | None -> assert false

let members_with_prefix t digits =
  let len = Array.length digits in
  if len > t.num_digits then invalid_arg "Pastry.members_with_prefix: prefix too long";
  let value = Array.fold_left (fun acc d -> (acc lsl t.digit_bits) lor d) 0 digits in
  match Hashtbl.find_opt t.prefix_members (prefix_key len value) with
  | Some l -> Array.of_list !l
  | None -> [||]

let rebuild_leaves t =
  let arr = index t in
  let n = Array.length arr in
  Array.iteri
    (fun i (_, id) ->
      let node = node t id in
      let radius = min t.leaf_radius ((n - 1) / 2) in
      let acc = ref [] in
      for k = 1 to radius do
        acc := snd arr.((i + k) mod n) :: snd arr.(((i - k) mod n + n) mod n) :: !acc
      done;
      node.leaves <- Array.of_list (List.sort_uniq compare (List.filter (fun l -> l <> id) !acc)))
    arr

let digits_of_prefix t pid len = Array.init len (fun r -> digit t pid r)

let build_tables t ~selector =
  rebuild_leaves t;
  Hashtbl.iter
    (fun id n ->
      n.table <- Array.init t.num_digits (fun _ -> Array.make (fan t) None);
      (try
         for row = 0 to t.num_digits - 1 do
           let own = digit t n.pid row in
           let base = digits_of_prefix t n.pid row in
           let row_has_candidates = ref false in
           for c = 0 to fan t - 1 do
             if c <> own then begin
               let prefix = Array.append base [| c |] in
               let candidates = members_with_prefix t prefix in
               if Array.length candidates > 0 then begin
                 row_has_candidates := true;
                 n.table.(row).(c) <- selector ~node:id ~prefix ~candidates
               end
             end
           done;
           (* Beyond the row where this node is alone in its prefix there
              are no candidates anywhere; stop early. *)
           if (not !row_has_candidates) && Array.length (members_with_prefix t base) <= 1 then
             raise Exit
         done
       with Exit -> ()))
    t.nodes

let table_entries t id =
  let n = node t id in
  let acc = ref [] in
  Array.iteri
    (fun row slots ->
      Array.iteri (fun c -> function Some v -> acc := (row, c, v) :: !acc | None -> ()) slots)
    n.table;
  List.rev !acc

let leaves t id = Array.copy (node t id).leaves

let route t ~src ~key =
  if not (mem t src) then invalid_arg "Pastry.route: source not a member";
  let key = ((key mod t.id_space) + t.id_space) mod t.id_space in
  let owner = owner_of t key in
  let visited = Hashtbl.create 16 in
  let rec go u acc guard =
    if u.id = owner then Some (List.rev (u.id :: acc))
    else if guard <= 0 then None
    else begin
      Hashtbl.replace visited u.id ();
      let r = shared_prefix_len t u.pid key in
      let next =
        if Array.exists (fun l -> l = owner) u.leaves then
          (* The numerically closest node is already in the leaf set.  It
             may share a *shorter* prefix with the key than we do (the key
             sits just across a digit boundary), so this check must come
             before prefix routing. *)
          Some owner
        else begin
          (* Routing-table entry extending the shared prefix. *)
          let c = digit t key r in
          match if r < t.num_digits then u.table.(r).(c) else None with
          | Some v when not (Hashtbl.mem visited v) -> Some v
          | _ ->
            (* Rare case: any known node strictly closer numerically. *)
            let best = ref None in
            let du = circular_dist t u.pid key in
            let consider v =
              if (not (Hashtbl.mem visited v)) && mem t v then begin
                let d = circular_dist t (pastry_id t v) key in
                if d < du then begin
                  match !best with
                  | Some (bd, _) when bd <= d -> ()
                  | _ -> best := Some (d, v)
                end
              end
            in
            Array.iter consider u.leaves;
            Array.iter
              (fun row -> Array.iter (function Some v -> consider v | None -> ()) row)
              u.table;
            (match !best with Some (_, v) -> Some v | None -> None)
        end
      in
      match next with
      | Some v -> go (node t v) (u.id :: acc) (guard - 1)
      | None -> None
    end
  in
  let result = go (node t src) [] (4 * size t) in
  (match t.obs with
  | None -> ()
  | Some o ->
    Engine.Metrics.incr o.requests;
    (match result with
    | Some hops ->
      Engine.Metrics.observe o.hops (float_of_int (List.length hops - 1));
      Option.iter
        (fun tr ->
          let rec spans = function
            | a :: (b :: _ as rest) ->
              Engine.Trace.emit tr ~peer:b Engine.Trace.Route_hop ~node:a;
              spans rest
            | [ _ ] | [] -> ()
          in
          spans hops)
        o.tracer
    | None -> Engine.Metrics.incr o.failures));
  result

let check_invariants t =
  let ( let* ) r f = Result.bind r f in
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let ids = node_ids t in
  Array.fold_left
    (fun acc id ->
      let* () = acc in
      let n = node t id in
      let* () =
        List.fold_left
          (fun acc (row, c, target) ->
            let* () = acc in
            if not (mem t target) then err "node %d row %d points at dead node" id row
            else begin
              let tp = pastry_id t target in
              if shared_prefix_len t tp n.pid >= row && digit t tp row = c then Ok ()
              else err "node %d row %d digit %d entry does not match its region" id row c
            end)
          (Ok ()) (table_entries t id)
      in
      Array.fold_left
        (fun acc l ->
          let* () = acc in
          if mem t l then Ok () else err "node %d has dead leaf" id)
        (Ok ()) n.leaves)
    (Ok ()) ids
