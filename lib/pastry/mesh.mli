(** Pastry overlay with proximity-neighbor selection.

    Node ids are strings of [num_digits] digits, each of [digit_bits]
    bits.  A node's routing table has one row per digit: row [r] holds,
    for every digit value [c] other than the node's own, a member sharing
    the first [r] digits and having digit [c] at position [r] — any such
    member qualifies, which is the selection freedom the soft-state maps
    exploit (one map per id prefix, the paper's "region" for Pastry).  A
    small leaf set of numerically adjacent ids completes routing. *)

type t

type selector = node:int -> prefix:int array -> candidates:int array -> int option
(** [selector ~node ~prefix ~candidates] picks the entry for the region
    identified by [prefix] (digit string).  [candidates] is never
    empty. *)

val create :
  ?metrics:Engine.Metrics.t ->
  ?labels:Engine.Metrics.labels ->
  ?trace:Engine.Trace.t ->
  ?digit_bits:int ->
  ?num_digits:int ->
  ?leaf_radius:int ->
  unit ->
  t
(** Defaults: 2-bit digits (base 4), 15 digits (30-bit ids), leaf radius 4
    (8 leaves).

    With [metrics], {!route} maintains [route_requests] /
    [route_failures] counters and a [route_hops] histogram labeled
    [overlay=pastry] plus any extra [labels].  With [trace], successful
    routes emit one [Route_hop] span per forwarding step. *)

val digit_bits : t -> int
val num_digits : t -> int
val size : t -> int
val mem : t -> int -> bool
val node_ids : t -> int array

val add_node : t -> rng:Prelude.Rng.t -> int -> unit
(** Add a member under a fresh random Pastry id. *)

val remove_node : t -> int -> unit
(** Remove a member; dangling table entries are cleared and leaf sets
    rebuilt. *)

val pastry_id : t -> int -> int
val digit : t -> int -> int -> int
(** [digit t pid r] is digit [r] (most significant first) of a Pastry
    id. *)

val shared_prefix_len : t -> int -> int -> int
(** Length (in digits) of the common prefix of two Pastry ids. *)

val members_with_prefix : t -> int array -> int array
(** Members whose id starts with the given digit string. *)

val owner_of : t -> int -> int
(** Member whose Pastry id is numerically closest (circularly) to the
    key; ties go to the lower id.  Raises [Failure] on an empty mesh. *)

val build_tables : t -> selector:selector -> unit
(** (Re)build all routing tables and leaf sets. *)

val table_entries : t -> int -> (int * int * int) list
(** Filled routing entries of a node as [(row, digit, target)]. *)

val leaves : t -> int -> int array
(** Current leaf set of a node. *)

val route : t -> src:int -> key:int -> int list option
(** Prefix routing to [owner_of t key]; hop list includes both
    endpoints. *)

val check_invariants : t -> (unit, string) result
