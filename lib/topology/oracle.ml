(* Flat stride-indexed layouts: the seed's [float array array] core
   all-pairs and [float array array array] per-stub tables become single
   [float array]s ([core_dist] with row stride [n_transit]; [stub_dist]
   as concatenated per-stub all-pairs blocks at [stub_off.(s)], row
   stride [stub_sz.(s)]), so a distance query is a couple of int
   multiplies and flat loads instead of chasing three boxed rows.

   [hierarchical_dist] branches on precomputed per-node arrays ([gw] /
   [aw] / [tr] are 0.0 / 0.0 / the node itself for transit nodes).  The
   float-add groupings of the seed's four-way branch are preserved
   exactly — [(0.0 +. 0.0) +. x = x] is exact, so the unified
   stub/transit formula reproduces the seed's bytes in every case that
   shares its shape, and the one case with a different seed grouping
   (u in a stub, v transit) keeps its own branch. *)

type hierarchical = {
  topo : Transit_stub.t;
  n_transit : int;
  core_dist : float array;  (* n_transit^2, row stride n_transit *)
  stub_off : int array;  (* stub -> offset of its all-pairs block *)
  stub_sz : int array;  (* stub -> member count (= block row stride) *)
  stub_dist : float array;  (* concatenated per-stub all-pairs blocks *)
  local_idx : int array;  (* node -> index within its stub; -1 for transit *)
  stub_of : int array;  (* node -> stub id; -1 for transit *)
  gw : float array;  (* node -> latency to its stub's gateway; 0 for transit *)
  aw : float array;  (* node -> its stub's access-link weight; 0 for transit *)
  tr : int array;  (* node -> its stub's attach transit node; itself for transit *)
}

type backend =
  | Hierarchical of hierarchical
  | Dense of { nodes : int; all_pairs : float array }  (* nodes^2, row stride nodes *)

(* The measurement budget is an atomic so [measure] is domain-safe: the
   probe plane's prefetch phase (Engine.Dpool) measures from worker
   domains, and an atomic sum is independent of execution order — which
   keeps the counter byte-identical across pool sizes. *)
type t = { backend : backend; count : int Atomic.t }

let build (topo : Transit_stub.t) =
  let n = Graph.node_count topo.graph in
  let n_transit = Array.length topo.transit_nodes in
  let ws = Dijkstra.Workspace.create n_transit in
  (* Core all-pairs over the transit-only subgraph (ids 0..n_transit-1). *)
  let core_graph, _ = Graph.subgraph topo.graph topo.transit_nodes in
  let core_dist = Array.make (n_transit * n_transit) infinity in
  let row = Array.make n_transit infinity in
  for src = 0 to n_transit - 1 do
    Dijkstra.distances_into ws core_graph src row;
    Array.blit row 0 core_dist (src * n_transit) n_transit
  done;
  let stub_count = Array.length topo.stub_members in
  let local_idx = Array.make n (-1) in
  Array.iter
    (fun members -> Array.iteri (fun i id -> local_idx.(id) <- i) members)
    topo.stub_members;
  let stub_sz = Array.map Array.length topo.stub_members in
  let stub_off = Array.make stub_count 0 in
  let total = ref 0 in
  for s = 0 to stub_count - 1 do
    stub_off.(s) <- !total;
    total := !total + (stub_sz.(s) * stub_sz.(s))
  done;
  let stub_dist = Array.make (max 1 !total) infinity in
  let max_stub = Array.fold_left max 1 stub_sz in
  let srow = Array.make max_stub infinity in
  for s = 0 to stub_count - 1 do
    let sub, _ = Graph.subgraph topo.graph topo.stub_members.(s) in
    let sz = stub_sz.(s) in
    for src = 0 to sz - 1 do
      Dijkstra.distances_into ws sub src srow;
      Array.blit srow 0 stub_dist (stub_off.(s) + (src * sz)) sz
    done
  done;
  let gw = Array.make n 0.0 in
  let aw = Array.make n 0.0 in
  let tr = Array.init n (fun i -> i) in
  Array.iteri
    (fun s members ->
      let gw_local = local_idx.(topo.stub_attach_stub_node.(s)) in
      let w = topo.stub_attach_weight.(s) in
      let t = topo.stub_attach_transit.(s) in
      Array.iter
        (fun id ->
          gw.(id) <- stub_dist.(stub_off.(s) + (local_idx.(id) * stub_sz.(s)) + gw_local);
          aw.(id) <- w;
          tr.(id) <- t)
        members)
    topo.stub_members;
  {
    backend =
      Hierarchical
        {
          topo;
          n_transit;
          core_dist;
          stub_off;
          stub_sz;
          stub_dist;
          local_idx;
          stub_of = topo.stub_of;
          gw;
          aw;
          tr;
        };
    count = Atomic.make 0;
  }

let of_graph graph =
  let n = Graph.node_count graph in
  let ws = Dijkstra.Workspace.create n in
  let all_pairs = Array.make (max 1 (n * n)) infinity in
  let row = Array.make (max 1 n) infinity in
  for src = 0 to n - 1 do
    Dijkstra.distances_into ws graph src row;
    Array.blit row 0 all_pairs (src * n) n
  done;
  { backend = Dense { nodes = n; all_pairs }; count = Atomic.make 0 }

let topology t =
  match t.backend with Hierarchical h -> Some h.topo | Dense _ -> None

let node_count t =
  match t.backend with
  | Hierarchical h -> Graph.node_count h.topo.Transit_stub.graph
  | Dense d -> d.nodes

let hierarchical_dist h u v =
  let su = h.stub_of.(u) and sv = h.stub_of.(v) in
  if su = sv then
    if su < 0 then h.core_dist.((u * h.n_transit) + v)
    else h.stub_dist.(h.stub_off.(su) + (h.local_idx.(u) * h.stub_sz.(su)) + h.local_idx.(v))
  else if sv < 0 then
    (* u in a stub, v transit: the seed's grouping for this case puts the
       core leg first. *)
    h.core_dist.((v * h.n_transit) + h.tr.(u)) +. h.aw.(u) +. h.gw.(u)
  else
    (* Both in (different) stubs, or u transit (gw/aw collapse to exact
       +. 0.0 and tr.(u) = u). *)
    h.gw.(u) +. h.aw.(u)
    +. h.core_dist.((h.tr.(u) * h.n_transit) + h.tr.(v))
    +. h.aw.(v) +. h.gw.(v)

let dist t u v =
  if u = v then 0.0
  else begin
    match t.backend with
    | Hierarchical h -> hierarchical_dist h u v
    | Dense d -> d.all_pairs.((u * d.nodes) + v)
  end

let measure t u v =
  Atomic.incr t.count;
  dist t u v

let measurements t = Atomic.get t.count
let reset_measurements t = Atomic.set t.count 0

let nearest t u candidates =
  let best = ref None in
  Array.iter
    (fun c ->
      if c <> u then begin
        let d = dist t u c in
        match !best with
        | Some (bc, bd) when bd < d || (bd = d && bc <= c) -> ()
        | _ -> best := Some (c, d)
      end)
    candidates;
  !best
