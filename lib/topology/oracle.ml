type hierarchical = {
  topo : Transit_stub.t;
  core_dist : float array array;  (* transit-node index (= id) pairwise latencies *)
  stub_dist : float array array array;  (* stub -> local all-pairs latencies *)
  local_idx : int array;  (* node -> index within its stub; -1 for transit *)
  to_gateway : float array;  (* node -> latency to its stub's gateway node; 0 for transit *)
}

type backend =
  | Hierarchical of hierarchical
  | Dense of { nodes : int; all_pairs : float array array }

(* The measurement budget is an atomic so [measure] is domain-safe: the
   probe plane's prefetch phase (Engine.Dpool) measures from worker
   domains, and an atomic sum is independent of execution order — which
   keeps the counter byte-identical across pool sizes. *)
type t = { backend : backend; count : int Atomic.t }

let build (topo : Transit_stub.t) =
  let n = Graph.node_count topo.graph in
  let n_transit = Array.length topo.transit_nodes in
  (* Core all-pairs over the transit-only subgraph (ids 0..n_transit-1). *)
  let core_graph, _ = Graph.subgraph topo.graph topo.transit_nodes in
  let core_dist =
    Array.init n_transit (fun src -> Dijkstra.distances core_graph src)
  in
  let stub_count = Array.length topo.stub_members in
  let local_idx = Array.make n (-1) in
  Array.iter
    (fun members -> Array.iteri (fun i id -> local_idx.(id) <- i) members)
    topo.stub_members;
  let stub_dist =
    Array.init stub_count (fun s ->
      let sub, _ = Graph.subgraph topo.graph topo.stub_members.(s) in
      Array.init (Graph.node_count sub) (fun src -> Dijkstra.distances sub src))
  in
  let to_gateway = Array.make n 0.0 in
  Array.iteri
    (fun s members ->
      let gw_local = local_idx.(topo.stub_attach_stub_node.(s)) in
      Array.iter (fun id -> to_gateway.(id) <- stub_dist.(s).(local_idx.(id)).(gw_local)) members)
    topo.stub_members;
  { backend = Hierarchical { topo; core_dist; stub_dist; local_idx; to_gateway }; count = Atomic.make 0 }

let of_graph graph =
  let n = Graph.node_count graph in
  let all_pairs = Array.init n (fun src -> Dijkstra.distances graph src) in
  { backend = Dense { nodes = n; all_pairs }; count = Atomic.make 0 }

let topology t =
  match t.backend with Hierarchical h -> Some h.topo | Dense _ -> None

let node_count t =
  match t.backend with
  | Hierarchical h -> Graph.node_count h.topo.Transit_stub.graph
  | Dense d -> d.nodes

let hierarchical_dist h u v =
  let core a b = h.core_dist.(a).(b) in
  let su = h.topo.Transit_stub.stub_of.(u) and sv = h.topo.Transit_stub.stub_of.(v) in
  if su = -1 && sv = -1 then core u v
  else if su = -1 then
    (* u transit, v in a stub *)
    core u h.topo.Transit_stub.stub_attach_transit.(sv)
    +. h.topo.Transit_stub.stub_attach_weight.(sv)
    +. h.to_gateway.(v)
  else if sv = -1 then
    core v h.topo.Transit_stub.stub_attach_transit.(su)
    +. h.topo.Transit_stub.stub_attach_weight.(su)
    +. h.to_gateway.(u)
  else if su = sv then h.stub_dist.(su).(h.local_idx.(u)).(h.local_idx.(v))
  else
    h.to_gateway.(u)
    +. h.topo.Transit_stub.stub_attach_weight.(su)
    +. core h.topo.Transit_stub.stub_attach_transit.(su) h.topo.Transit_stub.stub_attach_transit.(sv)
    +. h.topo.Transit_stub.stub_attach_weight.(sv)
    +. h.to_gateway.(v)

let dist t u v =
  if u = v then 0.0
  else begin
    match t.backend with
    | Hierarchical h -> hierarchical_dist h u v
    | Dense d -> d.all_pairs.(u).(v)
  end

let measure t u v =
  Atomic.incr t.count;
  dist t u v

let measurements t = Atomic.get t.count
let reset_measurements t = Atomic.set t.count 0

let nearest t u candidates =
  let best = ref None in
  Array.iter
    (fun c ->
      if c <> u then begin
        let d = dist t u c in
        match !best with
        | Some (bc, bd) when bd < d || (bd = d && bc <= c) -> ()
        | _ -> best := Some (c, d)
      end)
    candidates;
  !best
