(* Dijkstra over the CSR arrays with a structure-of-arrays binary heap:
   parallel [float array] priorities and [int array] nodes, no per-entry
   records, no option boxing on pop.  All scratch state lives in a
   reusable {!Workspace} so a precompute loop (Oracle.build runs one SSSP
   per stub member) allocates nothing once the workspace has grown to the
   largest graph it serves.  The heap sift loops are written inline in
   the main loop: a float crossing a function boundary is boxed without
   flambda, and the whole point of this path is a zero-allocation steady
   state.

   Settling order among equal tentative distances differs from the seed's
   polymorphic heap, but every final distance is the minimum over the
   same relaxation candidates, so the produced distance arrays are
   bit-identical to the seed implementation. *)

module Workspace = struct
  type t = {
    mutable prev : int array;
    mutable settled : bool array;
    mutable hprio : float array;  (* SoA heap: priorities *)
    mutable hnode : int array;  (* SoA heap: node ids *)
    mutable hsize : int;
  }

  let create n =
    let n = max n 1 in
    {
      prev = Array.make n (-1);
      settled = Array.make n false;
      hprio = Array.make (max n 16) 0.0;
      hnode = Array.make (max n 16) 0;
      hsize = 0;
    }

  let ensure ws n =
    if Array.length ws.settled < n then begin
      ws.prev <- Array.make n (-1);
      ws.settled <- Array.make n false
    end;
    if Array.length ws.hprio < n then begin
      ws.hprio <- Array.make n 0.0;
      ws.hnode <- Array.make n 0
    end
end

let run_into (ws : Workspace.t) g src dist =
  let n = Graph.node_count g in
  if src < 0 || src >= n then invalid_arg "Dijkstra: source out of range";
  if Array.length dist < n then invalid_arg "Dijkstra: distance buffer too short";
  Workspace.ensure ws n;
  Array.fill dist 0 n infinity;
  let settled = ws.settled and prev = ws.prev in
  Array.fill settled 0 n false;
  Array.fill prev 0 n (-1);
  let off = Graph.csr_offsets g in
  let nbr = Graph.csr_targets g in
  let wts = Graph.csr_weights g in
  let hprio = ref ws.hprio and hnode = ref ws.hnode in
  let hsize = ref 0 in
  dist.(src) <- 0.0;
  !hprio.(0) <- 0.0;
  !hnode.(0) <- src;
  hsize := 1;
  while !hsize > 0 do
    (* Pop the root. *)
    let hp = !hprio and hn = !hnode in
    let d = hp.(0) and u = hn.(0) in
    decr hsize;
    let size = !hsize in
    if size > 0 then begin
      hp.(0) <- hp.(size);
      hn.(0) <- hn.(size);
      let i = ref 0 in
      let sifting = ref true in
      while !sifting do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < size && hp.(l) < hp.(!smallest) then smallest := l;
        if r < size && hp.(r) < hp.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let p = hp.(!i) and v = hn.(!i) in
          hp.(!i) <- hp.(!smallest);
          hn.(!i) <- hn.(!smallest);
          hp.(!smallest) <- p;
          hn.(!smallest) <- v;
          i := !smallest
        end
        else sifting := false
      done
    end;
    if not settled.(u) then begin
      settled.(u) <- true;
      for k = off.(u) to off.(u + 1) - 1 do
        let v = nbr.(k) in
        let nd = d +. wts.(k) in
        if nd < dist.(v) then begin
          dist.(v) <- nd;
          prev.(v) <- u;
          (* Push (nd, v), growing the SoA arrays if full. *)
          (if !hsize = Array.length !hprio then begin
             let cap = Array.length !hprio in
             let nprio = Array.make (2 * cap) 0.0 and nnode = Array.make (2 * cap) 0 in
             Array.blit !hprio 0 nprio 0 cap;
             Array.blit !hnode 0 nnode 0 cap;
             hprio := nprio;
             hnode := nnode
           end);
          let hp = !hprio and hn = !hnode in
          let i = ref !hsize in
          incr hsize;
          hp.(!i) <- nd;
          hn.(!i) <- v;
          let sifting = ref true in
          while !sifting && !i > 0 do
            let parent = (!i - 1) / 2 in
            if hp.(!i) < hp.(parent) then begin
              let p = hp.(!i) and w = hn.(!i) in
              hp.(!i) <- hp.(parent);
              hn.(!i) <- hn.(parent);
              hp.(parent) <- p;
              hn.(parent) <- w;
              i := parent
            end
            else sifting := false
          done
        end
      done
    end
  done;
  (* Publish possibly-grown heap arrays back for reuse. *)
  ws.hprio <- !hprio;
  ws.hnode <- !hnode;
  ws.hsize <- 0

let distances_into ws g src dist = run_into ws g src dist

let distances g src =
  let n = Graph.node_count g in
  let ws = Workspace.create n in
  let dist = Array.make (max n 1) infinity in
  run_into ws g src dist;
  dist

let distance g src dst =
  let dist = distances g src in
  dist.(dst)

let path g src dst =
  let n = Graph.node_count g in
  let ws = Workspace.create n in
  let dist = Array.make (max n 1) infinity in
  run_into ws g src dist;
  if dist.(dst) = infinity then None
  else begin
    let prev = ws.Workspace.prev in
    let rec build acc u = if u = src then src :: acc else build (u :: acc) prev.(u) in
    Some (build [] dst)
  end
