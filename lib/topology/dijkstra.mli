(** Single-source shortest paths (reference distance implementation).

    Used as ground truth in tests and for arbitrary graphs; the
    transit-stub {!Oracle} answers the same queries in O(1) after
    precomputation.

    Runs over the graph's CSR arrays with a structure-of-arrays binary
    heap.  All scratch state (heap, settled marks, predecessors) lives in
    a {!Workspace}; {!distances_into} reuses it across runs so a
    precompute loop allocates nothing in steady state. *)

module Workspace : sig
  type t
  (** Reusable scratch buffers for one in-flight computation.  Grows on
      demand to the largest graph it has served; never shrinks. *)

  val create : int -> t
  (** [create n] sizes the buffers for graphs of up to [n] nodes. *)
end

val distances_into : Workspace.t -> Graph.t -> int -> float array -> unit
(** [distances_into ws g src dist] fills [dist.(v)] with the shortest-path
    latency from [src] to [v] for every [v < node_count g] ([infinity]
    when unreachable).  [dist] must have at least [node_count g] slots
    (raises [Invalid_argument] otherwise; slots beyond the node count are
    untouched).  Allocation-free once [ws] has grown to this graph's
    size — the zero-allocation path [Oracle.build]'s precompute loops
    use. *)

val distances : Graph.t -> int -> float array
(** [distances g src] is the array of shortest-path latencies from [src] to
    every node; [infinity] for unreachable nodes. *)

val distance : Graph.t -> int -> int -> float
(** Shortest-path latency between two nodes ([infinity] if disconnected).
    Runs a full single-source computation; prefer {!Oracle} in hot paths. *)

val path : Graph.t -> int -> int -> int list option
(** A shortest path from source to destination inclusive, or [None] if
    unreachable. *)
