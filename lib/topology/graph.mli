(** Immutable weighted undirected graph with dense integer node ids.

    Nodes are [0 .. node_count - 1].  Edge weights are link latencies in
    milliseconds and must be positive.

    Storage is CSR (compressed-sparse-row): one offsets array indexing
    one flat neighbor-id [int array] and one parallel weight
    [float array].  {b Sortedness invariant}: within every node's CSR
    segment the neighbor ids are strictly ascending — established by
    {!make}, relied on by {!weight}'s binary search, and part of the
    contract of the [csr_*] accessors. *)

type t

val make : int -> (int * int * float) list -> t
(** [make n edges] builds a graph over nodes [0..n-1].  Each [(u, v, w)]
    contributes an undirected edge.  Raises [Invalid_argument] on
    out-of-range endpoints, self loops, non-positive weights, or duplicate
    edges. *)

val node_count : t -> int
val edge_count : t -> int

val neighbors : t -> int -> (int * float) array
(** Adjacency of a node as [(neighbor, weight)] pairs, ascending by
    neighbor id.  The array is freshly allocated on every call
    (compatibility view over the CSR segment); hot paths should read the
    [csr_*] arrays directly. *)

val degree : t -> int -> int

val csr_offsets : t -> int array
(** The CSR offsets array, length [node_count + 1]: node [u]'s neighbors
    occupy slots [offsets.(u) .. offsets.(u+1) - 1] of {!csr_targets} /
    {!csr_weights}.  Owned by the graph — callers must not mutate. *)

val csr_targets : t -> int array
(** Flat neighbor-id array (see {!csr_offsets}); each per-node segment is
    sorted ascending.  Owned by the graph — callers must not mutate. *)

val csr_weights : t -> float array
(** Flat weight array parallel to {!csr_targets}.  Owned by the graph —
    callers must not mutate. *)

val weight : t -> int -> int -> float option
(** Weight of the edge between two nodes, if present.  Binary search over
    the sorted CSR segment: O(log degree). *)

val edges : t -> (int * int * float) list
(** Every undirected edge once, with [u < v], ascending by [(u, v)]. *)

val is_connected : t -> bool
(** Whether every node is reachable from node 0 (true for empty graphs). *)

val subgraph : t -> int array -> t * int array
(** [subgraph g nodes] is the induced subgraph on [nodes] (which must be
    distinct) with nodes renumbered [0..k-1] in the given order, together
    with the mapping from new ids back to original ids. *)
