(* CSR (compressed-sparse-row) adjacency: [off] indexes [dst]/[wt] per
   node, segments sorted by neighbor id.  One flat int array and one flat
   float array replace the seed's boxed (int * float) tuple arrays; the
   sorted segments give binary-search [weight] and cache-linear neighbor
   scans for Dijkstra (which reads the arrays directly via the csr_*
   accessors). *)
type t = {
  n : int;
  off : int array;  (* n + 1 *)
  dst : int array;  (* 2 * edge_count, per-node segment sorted ascending *)
  wt : float array;  (* parallel to dst *)
  edge_count : int;
}

(* Sort a CSR segment (both arrays in lockstep) by neighbor id.  Segments
   are small (node degrees), so insertion sort; build-time only. *)
let sort_segment dst wt lo hi =
  for i = lo + 1 to hi - 1 do
    let d = dst.(i) and w = wt.(i) in
    let j = ref (i - 1) in
    while !j >= lo && dst.(!j) > d do
      dst.(!j + 1) <- dst.(!j);
      wt.(!j + 1) <- wt.(!j);
      decr j
    done;
    dst.(!j + 1) <- d;
    wt.(!j + 1) <- w
  done

let make n edge_list =
  if n < 0 then invalid_arg "Graph.make: negative node count";
  let deg = Array.make n 0 in
  let seen = Hashtbl.create (List.length edge_list) in
  (* Validation in list order, so callers see the same error for the
     same first-offending edge as always. *)
  let validate (u, v, w) =
    if u < 0 || u >= n || v < 0 || v >= n then invalid_arg "Graph.make: endpoint out of range";
    if u = v then invalid_arg "Graph.make: self loop";
    if w <= 0.0 then invalid_arg "Graph.make: non-positive weight";
    let key = if u < v then (u, v) else (v, u) in
    if Hashtbl.mem seen key then invalid_arg "Graph.make: duplicate edge";
    Hashtbl.add seen key ();
    deg.(u) <- deg.(u) + 1;
    deg.(v) <- deg.(v) + 1
  in
  List.iter validate edge_list;
  let edge_count = Hashtbl.length seen in
  let off = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    off.(u + 1) <- off.(u) + deg.(u)
  done;
  let slots = 2 * edge_count in
  let dst = Array.make slots 0 in
  let wt = Array.make slots 0.0 in
  let cursor = Array.sub off 0 n in
  List.iter
    (fun (u, v, w) ->
      dst.(cursor.(u)) <- v;
      wt.(cursor.(u)) <- w;
      cursor.(u) <- cursor.(u) + 1;
      dst.(cursor.(v)) <- u;
      wt.(cursor.(v)) <- w;
      cursor.(v) <- cursor.(v) + 1)
    edge_list;
  for u = 0 to n - 1 do
    sort_segment dst wt off.(u) off.(u + 1)
  done;
  { n; off; dst; wt; edge_count }

let node_count t = t.n
let edge_count t = t.edge_count

let neighbors t u =
  let lo = t.off.(u) in
  Array.init (t.off.(u + 1) - lo) (fun i -> (t.dst.(lo + i), t.wt.(lo + i)))

let degree t u = t.off.(u + 1) - t.off.(u)

let csr_offsets t = t.off
let csr_targets t = t.dst
let csr_weights t = t.wt

(* Binary search over the sorted segment; O(log degree). *)
let weight t u v =
  let lo = ref t.off.(u) and hi = ref (t.off.(u + 1) - 1) in
  let found = ref None in
  while !found = None && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let d = t.dst.(mid) in
    if d = v then found := Some t.wt.(mid)
    else if d < v then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let edges t =
  let acc = ref [] in
  for u = t.n - 1 downto 0 do
    for k = t.off.(u + 1) - 1 downto t.off.(u) do
      if u < t.dst.(k) then acc := (u, t.dst.(k), t.wt.(k)) :: !acc
    done
  done;
  !acc

let is_connected t =
  if t.n = 0 then true
  else begin
    let visited = Array.make t.n false in
    let stack = Array.make t.n 0 in
    let top = ref 1 in
    visited.(0) <- true;
    let count = ref 0 in
    while !top > 0 do
      decr top;
      let u = stack.(!top) in
      incr count;
      for k = t.off.(u) to t.off.(u + 1) - 1 do
        let v = t.dst.(k) in
        if not visited.(v) then begin
          visited.(v) <- true;
          stack.(!top) <- v;
          incr top
        end
      done
    done;
    !count = t.n
  end

let subgraph t nodes =
  let k = Array.length nodes in
  let new_id = Array.make t.n (-1) in
  Array.iteri
    (fun i u ->
      if u < 0 || u >= t.n then invalid_arg "Graph.subgraph: node out of range";
      if new_id.(u) <> -1 then invalid_arg "Graph.subgraph: duplicate node";
      new_id.(u) <- i)
    nodes;
  let edge_list = ref [] in
  Array.iteri
    (fun i u ->
      for s = t.off.(u) to t.off.(u + 1) - 1 do
        let j = new_id.(t.dst.(s)) in
        if j >= 0 && i < j then edge_list := (i, j, t.wt.(s)) :: !edge_list
      done)
    nodes;
  (make k !edge_list, Array.copy nodes)
