(** Exact constant-time distance oracle for strict transit-stub topologies.

    Exploits the hierarchy: any path between nodes in different stubs must
    traverse both access links, so
    [d(u,v) = d_stub(u,gw_u) + w_u + d_core(t_u,t_v) + w_v + d_stub(gw_v,v)].
    Per-stub all-pairs and the transit-core all-pairs are precomputed; a
    query then costs O(1).  A property test checks agreement with
    {!Dijkstra} on random pairs.

    The oracle doubles as the simulated measurement infrastructure: [dist]
    is free "ground truth" (used for optimal baselines and stretch
    denominators) while [measure] answers the same query but counts it as a
    real RTT probe, so experiments can account for measurement budgets the
    way the paper does. *)

type t

val build : Transit_stub.t -> t
(** Precompute the oracle (runs Dijkstra within each stub and the core). *)

val of_graph : Graph.t -> t
(** Dense oracle over an arbitrary connected graph: all-pairs distances by
    one Dijkstra per source.  O(n^2) memory — intended for flat topologies
    of a few thousand nodes (the Waxman robustness ablation). *)

val topology : t -> Transit_stub.t option
(** The transit-stub structure behind a [build] oracle; [None] for
    [of_graph] oracles. *)

val node_count : t -> int

val dist : t -> int -> int -> float
(** Exact shortest-path latency between two nodes; not counted as a
    measurement. *)

val measure : t -> int -> int -> float
(** Same as [dist] but increments the RTT-measurement counter.  The
    counter is atomic and [dist] is a pure lookup, so [measure] is safe
    to call from worker domains (the probe plane's parallel prefetch);
    the count stays independent of execution order. *)

val measurements : t -> int
(** Number of [measure] calls since creation or the last reset. *)

val reset_measurements : t -> unit

val nearest : t -> int -> int array -> (int * float) option
(** [nearest o u candidates] is the candidate (with its distance) closest
    to [u], excluding [u] itself; [None] when no other candidate exists.
    Not counted as measurements (ground truth).

    Deterministic tie-breaking guarantee: among equally-near candidates
    the one with the {e smallest node id} wins, independent of the order
    of the [candidates] array — so optimal-baseline selections are stable
    across candidate enumeration orders (ties are common under the manual
    latency model's small integer link weights). *)
