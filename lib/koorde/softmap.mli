(** Soft-state coordinate map on the Koorde ring.

    Identical scheme to the Chord softmap (the de Bruijn overlay keeps a
    Chord identifier ring underneath, so the appendix construction
    carries over verbatim): every member publishes one entry under the
    ring key derived from its landmark number, physically-close nodes
    land on the same or succeeding hosts, and a lookup walks the
    successor chain from the querying node's own landmark key.  The
    [in_arc] filter restricts results to owners inside a de Bruijn image
    arc, which is how proximity selection shops among a node's ~k cover
    candidates. *)

type entry = {
  node : int;
  vector : float array;
  number : int;
  store_key : int;  (** ring position the entry is stored under *)
}

type t

val create : scheme:Landmark.Number.scheme -> Debruijn.t -> t

val overlay : t -> Debruijn.t

val store_key_of : t -> float array -> int
(** Ring key a vector's entry is stored under (landmark number scaled to
    the ring size). *)

val publish : t -> node:int -> vector:float array -> unit
(** Insert or refresh the entry describing [node].  Raises
    [Invalid_argument] if the overlay is empty. *)

val unpublish : t -> int -> unit

val rehome : t -> unit
(** Recompute entry->host assignment after membership changed. *)

val entries_at : t -> int -> entry list
(** Entries hosted by a member. *)

val lookup :
  t ->
  vector:float array ->
  ?in_arc:int * int ->
  ?max_results:int ->
  ?ttl:int ->
  unit ->
  entry list
(** Route to the host of [vector]'s landmark key and walk up to [ttl]
    (default 32) successor hosts, collecting entries — optionally only
    those whose {e owner's} ring key lies in [in_arc = (lo, span)] (the
    image-arc constraint).  Results sorted by landmark-vector distance,
    truncated to [max_results] (default 16). *)
