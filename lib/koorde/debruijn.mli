(** Koorde-style constant-degree de Bruijn overlay on a Chord identifier
    ring.

    Keys live on a ring of [2^key_bits] identifiers; [degree] (k, a power
    of two) fixes the de Bruijn fanout, so a key is a string of
    [key_bits / log2 k] base-k digits.  Routing follows Kaashoek &
    Karger's imaginary-node walk: a node picks the imaginary position
    inside its own domain [(key, successor key]] that already agrees with
    the longest prefix of the target (fewest digits left to feed), then
    each hop shifts one more digit of the target into the register —
    position [i] becomes [k*i + digit] — and forwards to the member in
    charge of the new position, with successor hops correcting whenever
    the register leaves the current node's domain.  Routes therefore take
    about [log_k N] digit hops plus O(1) corrections.

    Each node's de Bruijn state is its {e cover}: the charge of its image
    arc's start plus every member whose key lands in the image arc
    [(k*(key+1), k*(successor key) + k - 1]] — about k entries.  Like the
    Chord fingers, {e which} cover entry a hop enters through is free:
    {!build_fingers} lets a selector pick one preferred entry (the
    proximity-neighbor-selection hook), and routing uses it whenever it
    does not overshoot the wanted position, paying successor corrections
    to reach the exact charge.  With only ~k candidates per node, this is
    the constant-degree frontier of the paper's generality claim. *)

type t

type selector = node:int -> arc:int * int -> candidates:int array -> int option
(** [selector ~node ~arc:(lo, span) ~candidates] picks the preferred de
    Bruijn entry of [node] for its image arc (ring positions
    [lo, lo + span)).  [candidates] is never empty and excludes [node]
    itself. *)

val create :
  ?metrics:Engine.Metrics.t ->
  ?labels:Engine.Metrics.labels ->
  ?trace:Engine.Trace.t ->
  ?key_bits:int ->
  ?degree:int ->
  unit ->
  t
(** Empty overlay; [key_bits] defaults to 24 and [degree] to 2.  [degree]
    must be a power of two in [[2, 64]] dividing [key_bits] by its log —
    the default key width supports k ∈ {{2, 4, 8, 16}}.

    With [metrics], {!route} maintains [route_requests] /
    [route_failures] counters and a [route_hops] histogram labeled
    [overlay=koorde] plus any extra [labels].  With [trace], successful
    routes emit one [Route_hop] span per forwarding step. *)

val key_bits : t -> int
val degree : t -> int
val size : t -> int

val add_node : t -> rng:Prelude.Rng.t -> int -> unit
(** Add a member under a fresh random ring key.  Raises
    [Invalid_argument] if the node is already a member. *)

val add_node_at : t -> int -> key:int -> unit
(** Add a member at an explicit ring key (hand-built test rings).  Raises
    [Invalid_argument] on duplicates or out-of-range keys. *)

val remove_node : t -> int -> unit
(** Remove a member.  Other members' cover entries and preferred picks
    that pointed at it are cleared (to be repaired by
    {!build_fingers}). *)

val mem : t -> int -> bool
val node_ids : t -> int array

val key_of : t -> int -> int
(** Ring key of a member. *)

val successor_node : t -> int -> int
(** [successor_node t key] is the member owning ring position [key] (the
    first member clockwise from [key]).  Raises [Failure] on an empty
    overlay. *)

val charge_node : t -> int -> int
(** [charge_node t pos] is the member whose domain
    [(own key, successor key]] contains [pos] — the node a de Bruijn hop
    for imaginary position [pos] lands on.  Raises [Failure] on an empty
    overlay. *)

val arc_members : t -> lo:int -> span:int -> int array
(** Members whose ring keys fall in [[lo, lo+span)] (mod ring size). *)

val image_arc : t -> int -> int * int
(** [(lo, span)] of a member's de Bruijn image arc: the ring positions
    its domain maps onto under one digit shift. *)

val build_fingers : t -> selector:selector -> unit
(** (Re)build every member's cover and preferred entry with the given
    selection policy. *)

val cover : t -> int -> int array
(** A member's cover list, anchor (charge of the image-arc start)
    first. *)

val preferred : t -> int -> int option
(** The policy-chosen preferred entry, if any. *)

val route : t -> src:int -> key:int -> int list option
(** Imaginary-node de Bruijn routing; ends at [successor_node t key].
    Returns the hop list including both endpoints. *)

val check_invariants : t -> (unit, string) result
(** Successors consistent with the key order; cover entries live and
    inside their image arcs; preferred entries live and inside the
    cover.  Valid after {!build_fingers}; membership changes in between
    may legitimately shift arc geometry. *)
