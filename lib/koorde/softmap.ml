module Number = Landmark.Number
module Landmarks = Landmark.Landmarks

type entry = {
  node : int;
  vector : float array;
  number : int;
  store_key : int;
}

type t = {
  dbj : Debruijn.t;
  scheme : Number.scheme;
  by_host : (int, entry list ref) Hashtbl.t;
  by_node : (int, entry) Hashtbl.t;
}

let create ~scheme dbj = { dbj; scheme; by_host = Hashtbl.create 64; by_node = Hashtbl.create 64 }

let overlay t = t.dbj

let store_key_of t vector =
  let u = Number.to_unit t.scheme (Number.number t.scheme vector) in
  let ring_size = 1 lsl Debruijn.key_bits t.dbj in
  let k = int_of_float (u *. float_of_int ring_size) in
  if k >= ring_size then ring_size - 1 else k

let host_of t key = Debruijn.successor_node t.dbj key

let host_add t host entry =
  match Hashtbl.find_opt t.by_host host with
  | Some l -> l := entry :: !l
  | None -> Hashtbl.replace t.by_host host (ref [ entry ])

let host_remove t host entry =
  match Hashtbl.find_opt t.by_host host with
  | Some l ->
    l := List.filter (fun e -> e.node <> entry.node) !l;
    if !l = [] then Hashtbl.remove t.by_host host
  | None -> ()

let unpublish t node =
  match Hashtbl.find_opt t.by_node node with
  | Some e ->
    Hashtbl.remove t.by_node node;
    host_remove t (host_of t e.store_key) e
  | None -> ()

let publish t ~node ~vector =
  if Debruijn.size t.dbj = 0 then invalid_arg "Koorde.Softmap.publish: empty overlay";
  unpublish t node;
  let store_key = store_key_of t vector in
  let e = { node; vector = Array.copy vector; number = Number.number t.scheme vector; store_key } in
  Hashtbl.replace t.by_node node e;
  host_add t (host_of t store_key) e

let rehome t =
  Hashtbl.reset t.by_host;
  Hashtbl.iter (fun _ e -> host_add t (host_of t e.store_key) e) t.by_node

let entries_at t host =
  match Hashtbl.find_opt t.by_host host with Some l -> !l | None -> []

let in_arc t ~lo ~span key =
  let ring_size = 1 lsl Debruijn.key_bits t.dbj in
  let d = ((key - lo) mod ring_size + ring_size) mod ring_size in
  d < span

let lookup t ~vector ?in_arc:arc ?(max_results = 16) ?(ttl = 32) () =
  if Debruijn.size t.dbj = 0 then []
  else begin
    let accepts e =
      match arc with
      | None -> true
      | Some (lo, span) -> in_arc t ~lo ~span (Debruijn.key_of t.dbj e.node)
    in
    let collected = ref [] in
    let count = ref 0 in
    let start = host_of t (store_key_of t vector) in
    let host = ref start in
    let hops = ref 0 in
    let continue = ref true in
    while !continue && !count < max_results && !hops < ttl do
      List.iter
        (fun e ->
          if accepts e then begin
            collected := e :: !collected;
            incr count
          end)
        (entries_at t !host);
      incr hops;
      let next = Debruijn.successor_node t.dbj (Debruijn.key_of t.dbj !host + 1) in
      if next = start then continue := false else host := next
    done;
    !collected
    |> List.map (fun e -> (Landmarks.vector_dist vector e.vector, e.node, e))
    |> List.sort compare
    |> List.filteri (fun i _ -> i < max_results)
    |> List.map (fun (_, _, e) -> e)
  end
