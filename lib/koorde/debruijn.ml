module Rng = Prelude.Rng

type node_state = {
  id : int;
  key : int;
  mutable cover : int array;
      (* de Bruijn entry fingers: charge of the image-arc start first,
         then the members whose keys fall inside the image arc *)
  mutable preferred : int option;  (* policy-chosen entry among [cover] *)
}

type obs = {
  requests : Engine.Metrics.counter;
  failures : Engine.Metrics.counter;
  hops : Engine.Metrics.histogram;
  tracer : Engine.Trace.t option;
}

type t = {
  key_bits : int;
  degree : int;
  digit_bits : int;  (* log2 degree *)
  digits : int;  (* key_bits / digit_bits *)
  ring : int;  (* 2^key_bits *)
  nodes : (int, node_state) Hashtbl.t;
  keys : (int, int) Hashtbl.t;  (* ring key -> node id *)
  mutable sorted : (int * int) array;  (* (key, id), sorted by key *)
  mutable dirty : bool;
  obs : obs option;
}

type selector = node:int -> arc:int * int -> candidates:int array -> int option

let is_pow2 v = v > 0 && v land (v - 1) = 0

let log2i v =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v lsr 1) in
  go 0 v

let create ?metrics ?(labels = []) ?trace ?(key_bits = 24) ?(degree = 2) () =
  if key_bits < 3 || key_bits > 48 then invalid_arg "Koorde.create: key_bits out of [3,48]";
  if degree < 2 || degree > 64 || not (is_pow2 degree) then
    invalid_arg "Koorde.create: degree must be a power of two in [2,64]";
  let digit_bits = log2i degree in
  if key_bits mod digit_bits <> 0 then
    invalid_arg "Koorde.create: key_bits must be a multiple of log2 degree";
  let obs =
    Option.map
      (fun m ->
        let labels = ("overlay", "koorde") :: labels in
        {
          requests = Engine.Metrics.counter m ~labels "route_requests";
          failures = Engine.Metrics.counter m ~labels "route_failures";
          hops = Engine.Metrics.histogram m ~labels "route_hops";
          tracer = trace;
        })
      metrics
  in
  {
    key_bits;
    degree;
    digit_bits;
    digits = key_bits / digit_bits;
    ring = 1 lsl key_bits;
    nodes = Hashtbl.create 64;
    keys = Hashtbl.create 64;
    sorted = [||];
    dirty = false;
    obs;
  }

let key_bits t = t.key_bits
let degree t = t.degree
let size t = Hashtbl.length t.nodes
let mem t id = Hashtbl.mem t.nodes id

let node t id =
  match Hashtbl.find_opt t.nodes id with
  | Some n -> n
  | None -> invalid_arg "Koorde: not a member"

let key_of t id = (node t id).key

let node_ids t =
  let arr = Array.make (size t) 0 in
  let i = ref 0 in
  Hashtbl.iter
    (fun id _ ->
      arr.(!i) <- id;
      incr i)
    t.nodes;
  arr

let index t =
  if t.dirty then begin
    let arr = Array.make (size t) (0, 0) in
    let i = ref 0 in
    Hashtbl.iter
      (fun id n ->
        arr.(!i) <- (n.key, id);
        incr i)
      t.nodes;
    Array.sort compare arr;
    t.sorted <- arr;
    t.dirty <- false
  end;
  t.sorted

let add_node_at t id ~key =
  if mem t id then invalid_arg "Koorde.add_node_at: already a member";
  if key < 0 || key >= t.ring then invalid_arg "Koorde.add_node_at: key out of range";
  if Hashtbl.mem t.keys key then invalid_arg "Koorde.add_node_at: key taken";
  Hashtbl.replace t.nodes id { id; key; cover = [||]; preferred = None };
  Hashtbl.replace t.keys key id;
  t.dirty <- true

let add_node t ~rng id =
  if mem t id then invalid_arg "Koorde.add_node: already a member";
  let rec fresh_key () =
    let k = Rng.int rng t.ring in
    if Hashtbl.mem t.keys k then fresh_key () else k
  in
  add_node_at t id ~key:(fresh_key ())

let remove_node t id =
  let n = node t id in
  Hashtbl.remove t.nodes id;
  Hashtbl.remove t.keys n.key;
  t.dirty <- true;
  Hashtbl.iter
    (fun _ other ->
      if Array.exists (fun c -> c = id) other.cover then
        other.cover <- Array.of_seq (Seq.filter (fun c -> c <> id) (Array.to_seq other.cover));
      match other.preferred with Some p when p = id -> other.preferred <- None | _ -> ())
    t.nodes

let first_geq arr key =
  let n = Array.length arr in
  let a = ref 0 and b = ref n in
  while !a < !b do
    let mid = (!a + !b) / 2 in
    if fst arr.(mid) >= key then b := mid else a := mid + 1
  done;
  !a

(* First member at ring position >= key (clockwise), wrapping. *)
let successor_node t key =
  let arr = index t in
  let n = Array.length arr in
  if n = 0 then failwith "Koorde.successor_node: empty ring";
  let key = ((key mod t.ring) + t.ring) mod t.ring in
  let i = first_geq arr key in
  snd arr.(if i = n then 0 else i)

(* Member whose domain (own key, successor key] contains [pos] — the node
   responsible for hosting imaginary position [pos] on its way to the
   owner.  This is the predecessor of [successor_node pos]. *)
let charge_node t pos =
  let arr = index t in
  let n = Array.length arr in
  if n = 0 then failwith "Koorde.charge_node: empty ring";
  let pos = ((pos mod t.ring) + t.ring) mod t.ring in
  let i = first_geq arr pos in
  snd arr.((i - 1 + n) mod n)

let arc_members t ~lo ~span =
  if span <= 0 then [||]
  else begin
    let arr = index t in
    let n = Array.length arr in
    if n = 0 then [||]
    else begin
      let lo = ((lo mod t.ring) + t.ring) mod t.ring in
      let collect lo hi =
        (* members with key in [lo, hi) where lo <= hi, no wrap *)
        let start = first_geq arr lo and stop = first_geq arr hi in
        Array.to_list (Array.sub arr start (stop - start))
      in
      let members =
        if lo + span <= t.ring then collect lo (lo + span)
        else collect lo t.ring @ collect 0 (lo + span - t.ring)
      in
      Array.of_list (List.map snd members)
    end
  end

(* x in (a, b] on the ring; the whole ring when a = b. *)
let between_oc t a b x =
  let norm v = ((v mod t.ring) + t.ring) mod t.ring in
  let a = norm a and b = norm b and x = norm x in
  if a = b then true else if a < b then a < x && x <= b else x > a || x <= b

let clockwise t from target = ((target - from) mod t.ring + t.ring) mod t.ring

(* Length of [id]'s domain (own key, successor key]; the whole ring for a
   singleton. *)
let domain_span t n =
  if size t = 1 then t.ring
  else begin
    let succ = successor_node t (n.key + 1) in
    let l = clockwise t n.key (key_of t succ) in
    if l = 0 then t.ring else l
  end

let image_arc t id =
  let n = node t id in
  let lo = t.degree * ((n.key + 1) mod t.ring) mod t.ring in
  let span = min t.ring (t.degree * domain_span t n) in
  (lo, span)

let build_fingers t ~selector =
  Hashtbl.iter
    (fun id n ->
      if size t = 1 then begin
        n.cover <- [||];
        n.preferred <- None
      end
      else begin
        let lo, span = image_arc t id in
        let anchor = charge_node t lo in
        let members = arc_members t ~lo ~span in
        let cover =
          if Array.exists (fun m -> m = anchor) members then begin
            (* keep the anchor first: routing treats cover.(0) as the
               entry that may legitimately sit before the arc start *)
            let rest = Seq.filter (fun m -> m <> anchor) (Array.to_seq members) in
            Array.append [| anchor |] (Array.of_seq rest)
          end
          else Array.append [| anchor |] members
        in
        n.cover <- cover;
        let candidates =
          Array.of_seq (Seq.filter (fun c -> c <> id) (Array.to_seq cover))
        in
        n.preferred <-
          (if Array.length candidates > 0 then selector ~node:id ~arc:(lo, span) ~candidates
           else None)
      end)
    t.nodes

let cover t id = Array.copy (node t id).cover
let preferred t id = (node t id).preferred

(* The node to contact for imaginary position [pos]: the policy-chosen
   preferred entry when it does not overshoot [pos] along the image arc,
   the exact charge node otherwise. *)
let entry_for t n pos =
  let exact = charge_node t pos in
  if exact = n.id then exact
  else
    match n.preferred with
    | Some p when p <> n.id && mem t p ->
      if p = exact then p
      else if Array.length n.cover > 0 && n.cover.(0) = p then p
      else begin
        let lo = t.degree * ((n.key + 1) mod t.ring) mod t.ring in
        if clockwise t lo (key_of t p) < clockwise t lo pos then p else exact
      end
    | _ -> exact

let route t ~src ~key =
  if not (mem t src) then invalid_arg "Koorde.route: source not a member";
  let key = ((key mod t.ring) + t.ring) mod t.ring in
  let owner = successor_node t key in
  let g = t.digit_bits in
  (* Best imaginary start: the fewest digits j such that some position in
     the source's domain agrees with the key's top (digits - j) digits,
     i.e. i0 = key >> (j*g)  (mod degree^(digits-j)) for an i0 we own. *)
  let start_state m =
    let l = domain_span t m in
    let a = (m.key + 1) mod t.ring in
    let rec find j =
      let s = 1 lsl ((t.digits - j) * g) in
      let r = key lsr (j * g) in
      let offset = ((r - a) mod s + s) mod s in
      if offset < l then ((a + offset) mod t.ring, j) else find (j + 1)
    in
    find 0
  in
  let rec go m i rem acc guard =
    if m.id = owner then Some (List.rev (m.id :: acc))
    else if guard <= 0 then None
    else begin
      let succ = successor_node t (m.key + 1) in
      if between_oc t m.key (key_of t succ) key then
        go (node t succ) i rem (m.id :: acc) (guard - 1)
      else if rem > 0 && between_oc t m.key (key_of t succ) i then begin
        (* consume the next digit of the key, top-first *)
        let digit = (key lsr ((rem - 1) * g)) land (t.degree - 1) in
        let i' = ((i * t.degree) land (t.ring - 1)) lor digit in
        let next = entry_for t m i' in
        if next = m.id then go m i' (rem - 1) acc guard
        else go (node t next) i' (rem - 1) (m.id :: acc) (guard - 1)
      end
      else go (node t succ) i rem (m.id :: acc) (guard - 1)
    end
  in
  let result =
    let m = node t src in
    if size t = 1 then Some [ src ]
    else begin
      let i0, j = start_state m in
      go m i0 j [] ((4 * size t) + (2 * t.digits))
    end
  in
  (match t.obs with
  | None -> ()
  | Some o ->
    Engine.Metrics.incr o.requests;
    (match result with
    | Some hops ->
      Engine.Metrics.observe o.hops (float_of_int (List.length hops - 1));
      Option.iter
        (fun tr ->
          let rec spans = function
            | a :: (b :: _ as rest) ->
              Engine.Trace.emit tr ~peer:b Engine.Trace.Route_hop ~node:a;
              spans rest
            | [ _ ] | [] -> ()
          in
          spans hops)
        o.tracer
    | None -> Engine.Metrics.incr o.failures));
  result

let check_invariants t =
  let ( let* ) r f = Result.bind r f in
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let ids = node_ids t in
  Array.fold_left
    (fun acc id ->
      let* () = acc in
      let n = node t id in
      let* () =
        if successor_node t n.key = id then Ok ()
        else err "node %d is not the successor of its own key" id
      in
      let* () =
        match n.preferred with
        | None -> Ok ()
        | Some p ->
          if not (mem t p) then err "node %d prefers dead node %d" id p
          else if not (Array.exists (fun c -> c = p) n.cover) then
            err "node %d prefers %d outside its cover" id p
          else Ok ()
      in
      let lo, span = image_arc t id in
      let rec check_cover i =
        if i >= Array.length n.cover then Ok ()
        else begin
          let c = n.cover.(i) in
          if not (mem t c) then err "node %d cover entry %d is dead" id c
          else if i > 0 && clockwise t lo (key_of t c) >= span then
            err "node %d cover entry %d outside its image arc" id c
          else check_cover (i + 1)
        end
      in
      check_cover 0)
    (Ok ()) ids
