(** GNP-style network coordinates (the "coordinate-based approach" the
    paper contrasts with in §2).

    Landmark nodes measure RTTs among themselves and solve for positions
    in a low-dimensional Euclidean space; any other node then measures its
    RTTs to the landmarks and solves for its own position.  The Euclidean
    distance between two nodes' coordinates estimates their network
    distance.  Both solves minimise squared {e relative} error by
    deterministic gradient descent.

    Used by the [coords] ablation bench to compare coordinate-based
    pre-selection against the paper's landmark-vector pre-selection. *)

type t = {
  dims : int;
  landmark_nodes : int array;
  landmark_coords : float array array;
}

val embed_landmarks :
  ?dims:int ->
  ?iterations:int ->
  Prelude.Rng.t ->
  Topology.Oracle.t ->
  int array ->
  t
(** [embed_landmarks rng oracle landmark_nodes] measures all landmark
    pairs ([measure], counted) and fits coordinates ([dims] defaults to 5,
    [iterations] to 2000). *)

val position : ?iterations:int -> t -> Prelude.Rng.t -> measured:float array -> float array
(** Fit a coordinate for a node given its measured RTTs to the landmarks
    (in landmark order). *)

val position_node : ?iterations:int -> t -> Prelude.Rng.t -> Topology.Oracle.t -> int -> float array
(** Measure the node's landmark RTTs (counted) and fit its coordinate. *)

val position_via : ?iterations:int -> t -> Prelude.Rng.t -> Engine.Probe.t -> int -> float array
(** Like {!position_node}, but the landmark probes are issued as one
    concurrent batch through the probe plane (the prober must wrap the
    same oracle).  A probe that exhausts its retries contributes a 0
    measurement, which the fit skips — the node is positioned against the
    landmarks that answered. *)

val estimate : float array -> float array -> float
(** Estimated network distance between two coordinates. *)

val relative_error : actual:float -> estimated:float -> float
(** |est - actual| / actual (infinite if actual is 0 and est is not). *)
