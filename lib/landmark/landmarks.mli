(** Landmark nodes and landmark vectors.

    A set of landmark nodes is scattered in the network; every node
    measures its RTT to each landmark, yielding its {e landmark vector} —
    its coordinates in the {e landmark space}.  Nodes with nearby vectors
    are likely physically close (with false-clustering risk that shrinks
    as the number of landmarks grows). *)

type t

val choose : Prelude.Rng.t -> Topology.Oracle.t -> int -> t
(** [choose rng oracle l] picks [l] distinct random nodes of the topology
    as landmarks.  Raises [Invalid_argument] if [l] exceeds the node count
    or is < 1. *)

val of_nodes : Topology.Oracle.t -> int array -> t
(** Use an explicit set of landmark nodes. *)

val count : t -> int
val nodes : t -> int array
val oracle : t -> Topology.Oracle.t

val vector : t -> int -> float array
(** [vector t node] is the node's landmark vector (RTT to each landmark,
    in landmark order).  Each call performs [count t] RTT measurements
    (counted by the oracle's measurement counter), issued sequentially. *)

val vector_via : t -> Engine.Probe.t -> int -> float array
(** Same vector, but the [count t] probes go through the probe plane as
    one batch, so their wall-clock cost is modelled under the prober's
    concurrency window (completion = max RTT when the window covers the
    landmark set).  The prober must wrap this landmark set's oracle
    ([Engine.Probe.create ~measure:(Topology.Oracle.measure (oracle t))]).
    A probe that exhausts its retries yields [infinity] in that component
    (the landmark looks unreachable, i.e. maximally far).  With the
    default prober configuration (window 1, no cache, reliable channel)
    the result, measurement count and measurement order are identical to
    {!vector}. *)

val ordering : float array -> int array
(** [ordering vec] is the landmark-ordering representation used by
    Topologically-Aware CAN: landmark indices sorted by increasing RTT. *)

val ordering_bin : ?k:int -> float array -> int
(** Topologically-Aware CAN's space binning: the Lehmer index (in
    [0, k!)) of the ordering of the first [k] (default 4) landmarks.
    Nodes with the same bin have the same landmark ordering and are
    placed in the same portion of the Cartesian space.  Raises
    [Invalid_argument] if the vector has fewer than [k] components. *)

val ordering_bin_count : ?k:int -> unit -> int
(** Number of bins, [k!]. *)

val vector_dist : float array -> float array -> float
(** Euclidean distance between two landmark vectors (the landmark-space
    proximity estimate). *)
