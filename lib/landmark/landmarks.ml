type t = { nodes : int array; oracle : Topology.Oracle.t }

let of_nodes oracle nodes =
  if Array.length nodes < 1 then invalid_arg "Landmarks.of_nodes: need at least one landmark";
  { nodes = Array.copy nodes; oracle }

let choose rng oracle l =
  let n = Topology.Oracle.node_count oracle in
  if l < 1 || l > n then invalid_arg "Landmarks.choose: bad landmark count";
  let all = Array.init n (fun i -> i) in
  of_nodes oracle (Prelude.Rng.sample rng l all)

let count t = Array.length t.nodes
let nodes t = Array.copy t.nodes
let oracle t = t.oracle

let vector t node = Array.map (fun lm -> Topology.Oracle.measure t.oracle node lm) t.nodes

let vector_via t prober node =
  let batch = Engine.Probe.run_batch prober ~src:node ~dsts:t.nodes in
  Array.map
    (function Ok rtt -> rtt | Error _ -> Float.infinity)
    batch.Engine.Probe.results

let ordering vec =
  let idx = Array.init (Array.length vec) (fun i -> i) in
  Array.sort (fun a b -> compare (vec.(a), a) (vec.(b), b)) idx;
  idx

let factorial k =
  let rec go acc k = if k <= 1 then acc else go (acc * k) (k - 1) in
  go 1 k

let ordering_bin ?(k = 4) vec =
  if k < 1 then invalid_arg "Landmarks.ordering_bin: k must be >= 1";
  if Array.length vec < k then invalid_arg "Landmarks.ordering_bin: vector shorter than k";
  let order = ordering (Array.sub vec 0 k) in
  (* Lehmer code: for each position, count later entries smaller than it. *)
  let code = ref 0 in
  for i = 0 to k - 1 do
    let smaller_after = ref 0 in
    for j = i + 1 to k - 1 do
      if order.(j) < order.(i) then incr smaller_after
    done;
    code := (!code * (k - i)) + !smaller_after
  done;
  !code

let ordering_bin_count ?(k = 4) () = factorial k

let vector_dist a b =
  if Array.length a <> Array.length b then invalid_arg "Landmarks.vector_dist: length mismatch";
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc
