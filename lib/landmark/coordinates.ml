module Rng = Prelude.Rng
module Oracle = Topology.Oracle

type t = {
  dims : int;
  landmark_nodes : int array;
  landmark_coords : float array array;
}

let estimate a b =
  if Array.length a <> Array.length b then invalid_arg "Coordinates.estimate: dimension mismatch";
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc

let relative_error ~actual ~estimated =
  if actual > 0.0 then Float.abs (estimated -. actual) /. actual
  else if estimated = 0.0 then 0.0
  else infinity

(* One gradient step of the squared-relative-error objective
     E(x) = sum_j ((|x - y_j| - m_j) / m_j)^2
   for a single movable point [x] against fixed anchors [y_j] with
   measurements [m_j].  The step length is clamped to [max_step] so short
   measured distances (large 1/m^2 factors) cannot make the fit
   diverge. *)
let descend ~rate ~max_step x anchors measured =
  let dims = Array.length x in
  let grad = Array.make dims 0.0 in
  Array.iteri
    (fun j y ->
      let m = measured.(j) in
      if m > 0.0 then begin
        let est = estimate x y in
        if est > 1e-9 then begin
          let coeff = 2.0 *. (est -. m) /. (m *. m) /. est in
          for i = 0 to dims - 1 do
            grad.(i) <- grad.(i) +. (coeff *. (x.(i) -. y.(i)))
          done
        end
      end)
    anchors;
  let norm = sqrt (Array.fold_left (fun acc g -> acc +. (g *. g)) 0.0 grad) in
  let step = rate *. norm in
  let scale = if step > max_step && norm > 0.0 then max_step /. norm else rate in
  for i = 0 to dims - 1 do
    x.(i) <- x.(i) -. (scale *. grad.(i))
  done

let embed_landmarks ?(dims = 5) ?(iterations = 2000) rng oracle landmark_nodes =
  let l = Array.length landmark_nodes in
  if l < 2 then invalid_arg "Coordinates.embed_landmarks: need at least two landmarks";
  if dims < 1 then invalid_arg "Coordinates.embed_landmarks: dims must be >= 1";
  let measured =
    Array.map
      (fun a -> Array.map (fun b -> if a = b then 0.0 else Oracle.measure oracle a b) landmark_nodes)
      landmark_nodes
  in
  (* Initialise randomly at the scale of the measured distances. *)
  let scale =
    Array.fold_left (fun acc row -> Array.fold_left Float.max acc row) 1.0 measured
  in
  let coords =
    Array.init l (fun _ -> Array.init dims (fun _ -> Rng.float rng scale))
  in
  (* Coordinate descent: move each landmark against the others in turn. *)
  let rate = 0.05 *. scale in
  let max_step = 0.1 *. scale in
  for it = 1 to iterations do
    let rate = rate /. (1.0 +. (float_of_int it /. 200.0)) in
    for i = 0 to l - 1 do
      let anchors = Array.init (l - 1) (fun j -> coords.(if j < i then j else j + 1)) in
      let m = Array.init (l - 1) (fun j -> measured.(i).(if j < i then j else j + 1)) in
      descend ~rate ~max_step coords.(i) anchors m
    done
  done;
  { dims; landmark_nodes = Array.copy landmark_nodes; landmark_coords = coords }

let position ?(iterations = 500) t rng ~measured =
  if Array.length measured <> Array.length t.landmark_nodes then
    invalid_arg "Coordinates.position: wrong measurement count";
  let scale = Array.fold_left Float.max 1.0 measured in
  let x = Array.init t.dims (fun _ -> Rng.float rng scale) in
  let rate = 0.05 *. scale in
  let max_step = 0.1 *. scale in
  for it = 1 to iterations do
    let rate = rate /. (1.0 +. (float_of_int it /. 100.0)) in
    descend ~rate ~max_step x t.landmark_coords measured
  done;
  x

let position_node ?iterations t rng oracle node =
  let measured = Array.map (fun lm -> Oracle.measure oracle node lm) t.landmark_nodes in
  position ?iterations t rng ~measured

let position_via ?iterations t rng prober node =
  let batch = Engine.Probe.run_batch prober ~src:node ~dsts:t.landmark_nodes in
  (* A failed probe becomes a 0 measurement, which [descend] skips: the
     fit simply uses one fewer anchor. *)
  let measured =
    Array.map (function Ok rtt -> rtt | Error _ -> 0.0) batch.Engine.Probe.results
  in
  position ?iterations t rng ~measured
