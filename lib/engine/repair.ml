module Stats = Prelude.Stats

type fault_kind = Crash | Leave

type fault = { victim : int; kind : fault_kind; injected_at : float }

type record = {
  fault : fault;
  regions : string list;
  detected_at : float;
  first_notify : float;
  last_notify : float;
  notifies : int;
  sweeps : int;
  republishes : int;
  regraft_ms : float list;
}

let repaired r = r.notifies > 0
let detection_ms r = if repaired r then r.detected_at -. r.fault.injected_at else Float.nan
let first_notify_ms r = if repaired r then r.first_notify -. r.fault.injected_at else Float.nan
let repair_ms r = if repaired r then r.last_notify -. r.fault.injected_at else Float.nan

type dist = { n : int; p50 : float; p95 : float; p99 : float; max : float }

let dist_of samples =
  if Array.length samples = 0 then { n = 0; p50 = 0.0; p95 = 0.0; p99 = 0.0; max = 0.0 }
  else
    {
      n = Array.length samples;
      p50 = Stats.percentile samples 50.0;
      p95 = Stats.percentile samples 95.0;
      p99 = Stats.percentile samples 99.0;
      max = Array.fold_left Float.max neg_infinity samples;
    }

type report = {
  records : record list;
  repair : dist;
  detection : dist;
  regraft : dist;
  unrepaired : int;
}

(* "<tag>:<entry>@<region>" — the Bus note convention. *)
let parse_notify note =
  match (String.index_opt note ':', String.index_opt note '@') with
  | Some i, Some j when j > i + 1 ->
    (match int_of_string_opt (String.sub note (i + 1) (j - i - 1)) with
    | Some entry ->
      Some (String.sub note 0 i, entry, String.sub note (j + 1) (String.length note - j - 1))
    | None -> None)
  | _ -> None

let fault_of_span (s : Trace.span) =
  if s.Trace.kind <> Trace.Fault_inject || s.Trace.node < 0 then None
  else
    match s.Trace.note with
    | "crash" -> Some { victim = s.Trace.node; kind = Crash; injected_at = s.Trace.at }
    | "leave" -> Some { victim = s.Trace.node; kind = Leave; injected_at = s.Trace.at }
    | _ -> None

(* Mutable accumulator per fault, frozen into a record at the end. *)
type acc = {
  a_fault : fault;
  mutable a_detected : float;
  mutable a_first : float;
  mutable a_last : float;
  mutable a_notifies : int;
  mutable a_sweeps : int;
  mutable a_republishes : int;
  mutable a_regrafts : float list;  (* reversed *)
}

let analyze spans =
  let spans =
    List.stable_sort
      (fun (a : Trace.span) (b : Trace.span) -> compare (a.Trace.at, a.Trace.seq) (b.Trace.at, b.Trace.seq))
      spans
  in
  (* Pass 1: resolved faults (in order) and each victim's region set. *)
  let accs = ref [] (* reversed *) in
  let by_victim : (int, acc list) Hashtbl.t = Hashtbl.create 16 in
  let regions_of : (int, (string, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (s : Trace.span) ->
      (match fault_of_span s with
      | Some f ->
        let a =
          {
            a_fault = f;
            a_detected = Float.nan;
            a_first = Float.nan;
            a_last = Float.nan;
            a_notifies = 0;
            a_sweeps = 0;
            a_republishes = 0;
            a_regrafts = [];
          }
        in
        accs := a :: !accs;
        Hashtbl.replace by_victim f.victim
          (a :: Option.value ~default:[] (Hashtbl.find_opt by_victim f.victim))
      | None -> ());
      if s.Trace.kind = Trace.Map_publish && s.Trace.peer >= 0 then begin
        let set =
          match Hashtbl.find_opt regions_of s.Trace.peer with
          | Some set -> set
          | None ->
            let set = Hashtbl.create 8 in
            Hashtbl.replace regions_of s.Trace.peer set;
            set
        in
        Hashtbl.replace set s.Trace.note ()
      end)
    spans;
  let accs = List.rev !accs in
  let victim_regions v =
    match Hashtbl.find_opt regions_of v with Some set -> set | None -> Hashtbl.create 0
  in
  (* Attribute a span at time [at] about victim [v] to the latest fault of
     [v] injected at or before [at] (by_victim lists are newest-first). *)
  let owner_of ~victim ~at =
    match Hashtbl.find_opt by_victim victim with
    | None -> None
    | Some l -> List.find_opt (fun a -> a.a_fault.injected_at <= at) l
  in
  (* Pass 2: departure notifications about a victim are its repair
     traffic; a tree regraft tagged [dead:<victim>] is the victim's
     structural repair (Mcast emits the span when the orphaned subtree
     re-attaches; [dur] is the orphanhood duration). *)
  List.iter
    (fun (s : Trace.span) ->
      if s.Trace.kind = Trace.Mcast_regraft then begin
        match
          if String.length s.Trace.note > 5 && String.sub s.Trace.note 0 5 = "dead:" then
            int_of_string_opt
              (String.sub s.Trace.note 5 (String.length s.Trace.note - 5))
          else None
        with
        | Some victim ->
          (match owner_of ~victim ~at:s.Trace.at with
          | Some a -> a.a_regrafts <- s.Trace.dur :: a.a_regrafts
          | None -> ())
        | None -> ()
      end;
      if s.Trace.kind = Trace.Notify then
        match parse_notify s.Trace.note with
        | Some ("dep", entry, region) ->
          (match owner_of ~victim:entry ~at:s.Trace.at with
          | Some a ->
            let set = victim_regions entry in
            if Hashtbl.length set = 0 || Hashtbl.mem set region then begin
              let sent = s.Trace.at and delivered = s.Trace.at +. s.Trace.dur in
              a.a_notifies <- a.a_notifies + 1;
              if Float.is_nan a.a_detected || sent < a.a_detected then a.a_detected <- sent;
              if Float.is_nan a.a_first || delivered < a.a_first then a.a_first <- delivered;
              if Float.is_nan a.a_last || delivered > a.a_last then a.a_last <- delivered
            end
          | None -> ())
        | Some _ | None -> ())
    spans;
  (* Pass 3: sweeps waited on (injection .. detection] and republishes
     into the victim's regions up to full repair. *)
  List.iter
    (fun (s : Trace.span) ->
      match s.Trace.kind with
      | Trace.Ttl_sweep ->
        List.iter
          (fun a ->
            if
              a.a_notifies > 0
              && s.Trace.at > a.a_fault.injected_at
              && s.Trace.at <= a.a_detected
            then a.a_sweeps <- a.a_sweeps + 1)
          accs
      | Trace.Map_publish when s.Trace.peer >= 0 ->
        List.iter
          (fun a ->
            if
              a.a_notifies > 0
              && s.Trace.peer <> a.a_fault.victim
              && s.Trace.at > a.a_fault.injected_at
              && s.Trace.at <= a.a_last
              && Hashtbl.mem (victim_regions a.a_fault.victim) s.Trace.note
            then a.a_republishes <- a.a_republishes + 1)
          accs
      | _ -> ())
    spans;
  let records =
    List.map
      (fun a ->
        {
          fault = a.a_fault;
          regions =
            List.sort compare
              (Hashtbl.fold (fun r () l -> r :: l) (victim_regions a.a_fault.victim) []);
          detected_at = a.a_detected;
          first_notify = a.a_first;
          last_notify = a.a_last;
          notifies = a.a_notifies;
          sweeps = a.a_sweeps;
          republishes = a.a_republishes;
          regraft_ms = List.rev a.a_regrafts;
        })
      accs
  in
  let done_ = List.filter repaired records in
  {
    records;
    repair = dist_of (Array.of_list (List.map repair_ms done_));
    detection = dist_of (Array.of_list (List.map detection_ms done_));
    regraft = dist_of (Array.of_list (List.concat_map (fun r -> r.regraft_ms) records));
    unrepaired = List.length records - List.length done_;
  }

let record_metrics ?(labels = []) m report =
  let h name = Metrics.histogram m ~labels name in
  let h_repair = h "repair_latency_ms"
  and h_detect = h "repair_detection_ms"
  and h_first = h "repair_first_notify_ms" in
  List.iter
    (fun r ->
      if repaired r then begin
        Metrics.observe h_repair (repair_ms r);
        Metrics.observe h_detect (detection_ms r);
        Metrics.observe h_first (first_notify_ms r)
      end)
    report.records;
  let c name v = Metrics.add (Metrics.counter m ~labels name) v in
  c "repair_faults" (List.length report.records);
  c "repair_repaired" (List.length report.records - report.unrepaired);
  c "repair_unrepaired" report.unrepaired;
  (* Tree-regraft instruments only when the span stream had any: a run
     without a dissemination tree keeps its instrument set unchanged. *)
  if report.regraft.n > 0 then begin
    let h_regraft = h "repair_regraft_ms" in
    List.iter (fun r -> List.iter (Metrics.observe h_regraft) r.regraft_ms) report.records;
    c "repair_regrafts" report.regraft.n
  end

(* ------------------------------------------------------------------ *)
(* Adaptive policy                                                     *)
(* ------------------------------------------------------------------ *)

type policy = {
  target_ms : float;
  headroom : float;
  window : int;
  sample_pct : float;
  step : float;
  min_refresh : float;
  max_refresh : float;
  min_sweep : float;
  max_sweep : float;
  min_digest : float;
  max_digest : float;
}

let default_policy =
  {
    target_ms = 25_000.0;
    headroom = 0.5;
    window = 3;
    sample_pct = 100.0;
    step = 2.0;
    min_refresh = 2_500.0;
    max_refresh = 120_000.0;
    min_sweep = 500.0;
    max_sweep = 60_000.0;
    min_digest = 0.0;
    max_digest = 0.0;
  }

let tunes_digest p = p.max_digest > 0.0

type controller = {
  policy : policy;
  mutable refresh : float;
  mutable sweep : float;
  mutable digest : float;
  mutable pending : float list;  (* current window, newest first *)
  mutable adjustments : int;
  mutable observed : int;
}

let clamp ~lo ~hi v = Float.min hi (Float.max lo v)

let controller ?(refresh = 200_000.0) ?(sweep = 100_000.0) ?(digest = 0.0) policy =
  if not (policy.target_ms > 0.0) then invalid_arg "Repair.controller: target_ms must be > 0";
  if not (policy.headroom > 0.0 && policy.headroom <= 1.0) then
    invalid_arg "Repair.controller: headroom must be in (0,1]";
  if policy.window < 1 then invalid_arg "Repair.controller: window must be >= 1";
  if not (policy.sample_pct > 0.0 && policy.sample_pct <= 100.0) then
    invalid_arg "Repair.controller: sample_pct must be in (0,100]";
  if not (policy.step > 1.0) then invalid_arg "Repair.controller: step must be > 1";
  if not (0.0 < policy.min_refresh && policy.min_refresh <= policy.max_refresh) then
    invalid_arg "Repair.controller: need 0 < min_refresh <= max_refresh";
  if not (0.0 < policy.min_sweep && policy.min_sweep <= policy.max_sweep) then
    invalid_arg "Repair.controller: need 0 < min_sweep <= max_sweep";
  if tunes_digest policy && not (0.0 < policy.min_digest && policy.min_digest <= policy.max_digest)
  then invalid_arg "Repair.controller: need 0 < min_digest <= max_digest (or max_digest = 0)";
  {
    policy;
    refresh = clamp ~lo:policy.min_refresh ~hi:policy.max_refresh refresh;
    sweep = clamp ~lo:policy.min_sweep ~hi:policy.max_sweep sweep;
    digest =
      (if tunes_digest policy then clamp ~lo:policy.min_digest ~hi:policy.max_digest digest
       else digest);
    pending = [];
    adjustments = 0;
    observed = 0;
  }

let refresh_period c = c.refresh
let sweep_period c = c.sweep
let digest_window c = if tunes_digest c.policy then Some c.digest else None
let adjustments c = c.adjustments
let observed c = c.observed

let observe c sample =
  c.observed <- c.observed + 1;
  c.pending <- sample :: c.pending;
  if List.length c.pending < c.policy.window then false
  else begin
    let p = c.policy in
    (* The decision statistic: the window's [sample_pct] percentile.  At
       the default 100 this is the window max — computed as the max so
       the arithmetic (and hence every downstream metric byte) is
       identical to the pre-percentile controller. *)
    let level =
      if p.sample_pct >= 100.0 then List.fold_left Float.max neg_infinity c.pending
      else Stats.percentile (Array.of_list c.pending) p.sample_pct
    in
    c.pending <- [];
    (* Over target: refresh less often (a crash victim's entries are then
       staler and expire sooner), sweep more often (expiry is noticed
       sooner) and shrink the digest window (notifications coalesce for
       less long).  Under the headroom: step back toward the cheap end. *)
    let refresh', sweep', digest' =
      if level > p.target_ms then (c.refresh *. p.step, c.sweep /. p.step, c.digest /. p.step)
      else if level < p.headroom *. p.target_ms then
        (c.refresh /. p.step, c.sweep *. p.step, c.digest *. p.step)
      else (c.refresh, c.sweep, c.digest)
    in
    let refresh' = clamp ~lo:p.min_refresh ~hi:p.max_refresh refresh'
    and sweep' = clamp ~lo:p.min_sweep ~hi:p.max_sweep sweep'
    and digest' =
      if tunes_digest p then clamp ~lo:p.min_digest ~hi:p.max_digest digest' else c.digest
    in
    let changed = refresh' <> c.refresh || sweep' <> c.sweep || digest' <> c.digest in
    if changed then begin
      c.refresh <- refresh';
      c.sweep <- sweep';
      c.digest <- digest';
      c.adjustments <- c.adjustments + 1
    end;
    changed
  end
