type event = {
  time : float;
  seq : int;
  run : unit -> unit;
  mutable active : bool;
}

type timer = { mutable ev : event; mutable alive : bool }
(* [alive] is the user-visible cancellation flag (periodic timers stay
   alive across firings); [ev] is the currently queued event. *)

(* Specialised binary min-heap ordered by (time, seq): FIFO among events
   scheduled for the same instant. *)
module Queue = struct
  type t = { mutable data : event array; mutable size : int }

  let dummy = { time = 0.0; seq = 0; run = ignore; active = false }
  let create () = { data = [||]; size = 0 }

  let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

  let push q e =
    if q.size = Array.length q.data then begin
      let ncap = max 16 (2 * q.size) in
      let ndata = Array.make ncap dummy in
      Array.blit q.data 0 ndata 0 q.size;
      q.data <- ndata
    end;
    q.data.(q.size) <- e;
    q.size <- q.size + 1;
    let i = ref (q.size - 1) in
    while !i > 0 && before q.data.(!i) q.data.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = q.data.(!i) in
      q.data.(!i) <- q.data.(p);
      q.data.(p) <- tmp;
      i := p
    done

  let pop q =
    if q.size = 0 then None
    else begin
      let top = q.data.(0) in
      q.size <- q.size - 1;
      if q.size > 0 then begin
        q.data.(0) <- q.data.(q.size);
        let i = ref 0 in
        let continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let m = ref !i in
          if l < q.size && before q.data.(l) q.data.(!m) then m := l;
          if r < q.size && before q.data.(r) q.data.(!m) then m := r;
          if !m = !i then continue := false
          else begin
            let tmp = q.data.(!i) in
            q.data.(!i) <- q.data.(!m);
            q.data.(!m) <- tmp;
            i := !m
          end
        done
      end;
      Some top
    end

  let peek q = if q.size = 0 then None else Some q.data.(0)
end

type counters = { run : Metrics.counter; cancelled : Metrics.counter }

type t = {
  mutable clock : float;
  mutable next_seq : int;
  queue : Queue.t;
  counters : counters option;
}

let create ?metrics () =
  let counters =
    Option.map
      (fun m ->
        { run = Metrics.counter m "sim_events_run"; cancelled = Metrics.counter m "sim_events_cancelled" })
      metrics
  in
  { clock = 0.0; next_seq = 0; queue = Queue.create (); counters }

let now t = t.clock

let enqueue t time run =
  let e = { time; seq = t.next_seq; run; active = true } in
  t.next_seq <- t.next_seq + 1;
  Queue.push t.queue e;
  e

let schedule_at t time run =
  if time < t.clock then invalid_arg "Sim.schedule_at: time in the past";
  { ev = enqueue t time run; alive = true }

let schedule t ~delay run =
  if delay < 0.0 then invalid_arg "Sim.schedule: negative delay";
  schedule_at t (t.clock +. delay) run

let every t ~period run =
  if period <= 0.0 then invalid_arg "Sim.every: period must be positive";
  let timer = { ev = Queue.dummy; alive = true } in
  let rec fire () =
    if timer.alive then begin
      (* Re-arm BEFORE running the callback.  A [cancel] issued from inside
         the callback then deactivates the already-queued next occurrence
         through [timer.ev]; deciding to re-enqueue after the callback
         returned would capture the alive/cancelled decision at the wrong
         point and could re-arm a timer its own callback just cancelled. *)
      timer.ev <- enqueue t (t.clock +. period) fire;
      run ()
    end
  in
  timer.ev <- enqueue t (t.clock +. period) fire;
  timer

let cancel timer =
  timer.alive <- false;
  timer.ev.active <- false

let pending t = t.queue.Queue.size

let next_time t = Option.map (fun e -> e.time) (Queue.peek t.queue)

let step t =
  match Queue.pop t.queue with
  | None -> false
  | Some e ->
    t.clock <- e.time;
    if e.active then begin
      e.active <- false;
      Option.iter (fun c -> Metrics.incr c.run) t.counters;
      e.run ()
    end
    else Option.iter (fun c -> Metrics.incr c.cancelled) t.counters;
    true

let run ?until t =
  let continue () =
    match (Queue.peek t.queue, until) with
    | None, _ -> false
    | Some e, Some limit when e.time > limit -> false
    | Some _, _ -> true
  in
  while continue () do
    ignore (step t)
  done;
  match until with
  | Some limit when t.clock < limit -> t.clock <- limit
  | _ -> ()
