type backend = {
  name : string;
  member : int -> bool;
  home_of : int -> int;
  route_to : src:int -> dst:int -> int list option;
  near : node:int -> exclude:int list -> int option;
  publish_load : node:int -> load:float -> unit;
}

type config = {
  replicas : int;
  load_threshold : int;
  window : float;
  origin_ms : float;
  hot_keys : int;
}

let default_config =
  { replicas = 1; load_threshold = 64; window = infinity; origin_ms = 150.0; hot_keys = 4 }

type outcome = {
  key : int;
  client : int;
  served_by : int;
  hit : bool;
  shed : bool;
  hops : int;
  latency : float;
}

type observer = {
  o_requests : Metrics.counter;
  o_hits : Metrics.counter;
  o_misses : Metrics.counter;
  o_sheds : Metrics.counter;
  o_failovers : Metrics.counter;
  o_replications : Metrics.counter;
  o_latency : Metrics.histogram;
  o_load_max : Metrics.gauge;
}

type t = {
  backend : backend;
  config : config;
  link : int -> int -> float;
  rtt : src:int -> dst:int -> float option;
  clock : unit -> float;
  obs : observer option;
  trace : Trace.t option;
  copies : (int, int list) Hashtbl.t;  (* key -> holders, placement order *)
  window_load : (int, int) Hashtbl.t;  (* node -> served this window *)
  hot : (int, (int, int) Hashtbl.t) Hashtbl.t;  (* node -> key -> window count *)
  mutable window_start : float;
  mutable max_load : int;
  mutable requests : int;
  mutable hits : int;
  mutable misses : int;
  mutable sheds : int;
  mutable failovers : int;
  mutable replications : int;
}

let create ?metrics ?(labels = []) ?trace ?(clock = fun () -> 0.0) ?rtt
    ?(config = default_config) ~link backend =
  if config.replicas < 1 then invalid_arg "Cache.create: replicas must be >= 1";
  if config.load_threshold < 1 then invalid_arg "Cache.create: load_threshold must be >= 1";
  if config.window <= 0.0 then invalid_arg "Cache.create: window must be positive";
  if config.origin_ms < 0.0 then invalid_arg "Cache.create: origin_ms must be >= 0";
  if config.hot_keys < 1 then invalid_arg "Cache.create: hot_keys must be >= 1";
  let obs =
    Option.map
      (fun m ->
        {
          o_requests = Metrics.counter m ~labels "cache_requests";
          o_hits = Metrics.counter m ~labels "cache_hits";
          o_misses = Metrics.counter m ~labels "cache_misses";
          o_sheds = Metrics.counter m ~labels "cache_sheds";
          o_failovers = Metrics.counter m ~labels "cache_failovers";
          o_replications = Metrics.counter m ~labels "cache_replications";
          o_latency = Metrics.histogram m ~labels "cache_request_ms";
          o_load_max = Metrics.gauge m ~labels "cache_load_max";
        })
      metrics
  in
  let rtt = match rtt with Some f -> f | None -> fun ~src ~dst -> Some (link src dst) in
  {
    backend;
    config;
    link;
    rtt;
    clock;
    obs;
    trace;
    copies = Hashtbl.create 1024;
    window_load = Hashtbl.create 256;
    hot = Hashtbl.create 256;
    window_start = clock ();
    max_load = 0;
    requests = 0;
    hits = 0;
    misses = 0;
    sheds = 0;
    failovers = 0;
    replications = 0;
  }

let config t = t.config
let backend_name t = t.backend.name
let requests t = t.requests
let hits t = t.hits
let misses t = t.misses
let sheds t = t.sheds
let failovers t = t.failovers
let replications t = t.replications
let max_load t = t.max_load

let replicas_of t key = Option.value ~default:[] (Hashtbl.find_opt t.copies key)

let stored_keys t =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.copies [])

let load_of t node = Option.value ~default:0 (Hashtbl.find_opt t.window_load node)

let path_ms t = function
  | [] | [ _ ] -> 0.0
  | hops ->
    let rec go acc = function
      | a :: (b :: _ as rest) -> go (acc +. t.link a b) rest
      | [ _ ] | [] -> acc
    in
    go 0.0 hops

let roll_window t =
  if Float.is_finite t.config.window then begin
    let now = t.clock () in
    if now -. t.window_start >= t.config.window then begin
      t.window_start <- now;
      Hashtbl.reset t.window_load;
      Hashtbl.reset t.hot
    end
  end

let bump_load t node key =
  let served = 1 + load_of t node in
  Hashtbl.replace t.window_load node served;
  let per_key =
    match Hashtbl.find_opt t.hot node with
    | Some h -> h
    | None ->
      let h = Hashtbl.create 64 in
      Hashtbl.replace t.hot node h;
      h
  in
  Hashtbl.replace per_key key (1 + Option.value ~default:0 (Hashtbl.find_opt per_key key));
  if served > t.max_load then begin
    t.max_load <- served;
    Option.iter (fun o -> Metrics.set o.o_load_max (float_of_int served)) t.obs
  end;
  served

(* Hottest keys of a node this window: count descending, key ascending —
   a total order, so the scan is deterministic. *)
let hottest_keys t node limit =
  match Hashtbl.find_opt t.hot node with
  | None -> []
  | Some per_key ->
    Hashtbl.fold (fun k c acc -> (-c, k) :: acc) per_key []
    |> List.sort compare
    |> List.filteri (fun i _ -> i < limit)
    |> List.map snd

(* Copy the node's hottest under-replicated keys to a near host.  The
   node's fresh load goes to the backend first so a soft-state-backed
   [near] ranks against current load/capacity fields. *)
let replicate_hot t node served =
  t.backend.publish_load ~node
    ~load:(float_of_int served /. float_of_int t.config.load_threshold);
  List.iter
    (fun key ->
      let holders = replicas_of t key in
      if List.length holders < t.config.replicas && List.mem node holders then
        match t.backend.near ~node ~exclude:holders with
        | Some target when t.backend.member target && not (List.mem target holders) ->
          Hashtbl.replace t.copies key (holders @ [ target ]);
          t.replications <- t.replications + 1;
          Option.iter (fun o -> Metrics.incr o.o_replications) t.obs;
          Option.iter
            (fun tr ->
              Trace.emit tr ~peer:target ~note:(string_of_int key) Trace.Cache_replicate
                ~node)
            t.trace
        | Some _ | None -> ())
    (hottest_keys t node t.config.hot_keys)

(* Rank the key's copies for a client: cool (below-threshold) copies
   before hot ones, then by client->copy RTT (unknown RTT last), ties to
   the lower id.  The first reachable copy in this order serves. *)
let rank_copies t ~client holders =
  let score node =
    let r = match t.rtt ~src:client ~dst:node with Some r -> r | None -> infinity in
    let hot = if load_of t node >= t.config.load_threshold then 1 else 0 in
    (hot, r, node)
  in
  let scored = List.map (fun n -> (score n, n)) holders in
  let by_pref = List.sort compare scored in
  let by_rtt = List.sort (fun ((_, ra, ia), _) ((_, rb, ib), _) -> compare (ra, ia) (rb, ib)) scored in
  let order = List.map snd by_pref in
  let shed =
    match (order, by_rtt) with
    | first :: _, (_, nearest) :: _ -> first <> nearest
    | _ -> false
  in
  (order, shed)

let emit_request t ~client ~served_by ~latency note key =
  Option.iter
    (fun tr ->
      Printf.bprintf (Trace.note_buffer tr) "%s:%d" note key;
      Trace.emit_noted tr ~dur:latency ~peer:served_by Trace.Cache_request ~node:client)
    t.trace

let finish t ~client ~key ~served_by ~hit ~shed ~hops ~latency =
  t.requests <- t.requests + 1;
  if hit then t.hits <- t.hits + 1 else t.misses <- t.misses + 1;
  if shed then t.sheds <- t.sheds + 1;
  Option.iter
    (fun o ->
      Metrics.incr o.o_requests;
      Metrics.incr (if hit then o.o_hits else o.o_misses);
      if shed then Metrics.incr o.o_sheds;
      Metrics.observe o.o_latency latency)
    t.obs;
  emit_request t ~client ~served_by ~latency (if not hit then "miss" else if shed then "shed" else "hit") key;
  let served = bump_load t served_by key in
  if t.config.replicas > 1 && served mod t.config.load_threshold = 0 then
    replicate_hot t served_by served;
  { key; client; served_by; hit; shed; hops; latency }

let miss t ~client ~key =
  let home = t.backend.home_of key in
  match t.backend.route_to ~src:client ~dst:home with
  | None -> failwith "Cache.request: key home unroutable"
  | Some hops_list ->
    let latency = path_ms t hops_list +. t.config.origin_ms in
    Hashtbl.replace t.copies key [ home ];
    finish t ~client ~key ~served_by:home ~hit:false ~shed:false
      ~hops:(List.length hops_list - 1) ~latency

let request t ~client ~key =
  if not (t.backend.member client) then invalid_arg "Cache.request: client is not a member";
  roll_window t;
  let holders = List.filter t.backend.member (replicas_of t key) in
  if holders <> replicas_of t key && holders <> [] then Hashtbl.replace t.copies key holders;
  match holders with
  | [] -> miss t ~client ~key
  | holders ->
    let order, shed = rank_copies t ~client holders in
    let rec serve failed = function
      | [] ->
        (* every copy unroutable: drop them all and refetch from origin *)
        Hashtbl.remove t.copies key;
        if failed then begin
          t.failovers <- t.failovers + 1;
          Option.iter (fun o -> Metrics.incr o.o_failovers) t.obs
        end;
        miss t ~client ~key
      | copy :: rest -> (
        match t.backend.route_to ~src:client ~dst:copy with
        | Some hops_list ->
          if failed then begin
            t.failovers <- t.failovers + 1;
            Option.iter (fun o -> Metrics.incr o.o_failovers) t.obs
          end;
          finish t ~client ~key ~served_by:copy ~hit:true ~shed
            ~hops:(List.length hops_list - 1)
            ~latency:(path_ms t hops_list)
        | None ->
          (* unreachable copy: prune it and fail over to the next *)
          Hashtbl.replace t.copies key
            (List.filter (fun n -> n <> copy) (replicas_of t key));
          serve true rest)
    in
    serve false order

let check_invariants t =
  let result = ref (Ok ()) in
  List.iter
    (fun key ->
      match !result with
      | Error _ -> ()
      | Ok () ->
        let holders = replicas_of t key in
        if List.length holders > t.config.replicas then
          result :=
            Error
              (Printf.sprintf "key %d has %d copies, max %d" key (List.length holders)
                 t.config.replicas)
        else if List.length (List.sort_uniq compare holders) <> List.length holders then
          result := Error (Printf.sprintf "key %d has duplicate copy holders" key))
    (stored_keys t);
  !result
