(** Topology-aware content-cache service over an overlay.

    The overlay libraries route {e keys}; this module puts a service on
    top: a distributed content cache in which every key has a {e home}
    node (the overlay member owning the key's position in the key space)
    and, once it gets hot, up to [replicas - 1] additional copies on
    topologically-near hosts.  The module is overlay-agnostic — a
    {!backend} record supplies membership, the key → home mapping, the
    overlay route to a member and the replica-placement policy, so the
    same request path runs over eCAN, plain CAN, Chord or Pastry.

    A request from a client node proceeds as:

    + the key's live copies are looked up (copies on departed members are
      dropped — the lazy repair a soft-state service relies on);
    + if there are none, the request is a {e miss}: it routes to the
      key's home, pays the modelled origin-fetch penalty on top of the
      delivered path latency, and installs the first copy there;
    + otherwise the copies are ranked — non-overloaded replicas first,
      then by client→replica RTT (the probe plane's cache makes this
      cheap), ties to the lower node id — and the request routes to the
      best one that is still reachable.  Skipping the RTT-nearest copy
      because it is overloaded is {e load shedding} and is counted.

    Delivered latency is the physical latency accumulated along the
    overlay route ([link] over consecutive hops) plus the origin penalty
    on a miss — the service-level number the paper's stretch metric never
    shows.

    Load is accounted per serving node over a (virtual-time) window.
    When a node's window count crosses [load_threshold] (and again at
    every further multiple), its hottest keys are copied to a near host
    chosen by the backend ([near]), bounded by [replicas] copies per key;
    the node's load is pushed through [publish_load] first, so a backend
    wired to the soft-state maps keeps the entries' load/capacity fields
    fresh and its placement lookups can skip overloaded hosts.  With
    [replicas = 1] the whole replication plane is inert: no placement
    lookups, no load publishes, no [Cache_replicate] spans.

    Everything is deterministic: ranking ties break on node ids, table
    iterations are sorted, and all timing comes from the injected clock. *)

type backend = {
  name : string;  (** label for metrics/tables, e.g. ["ecan"] *)
  member : int -> bool;  (** is the node currently an overlay member? *)
  home_of : int -> int;  (** key → the member owning it *)
  route_to : src:int -> dst:int -> int list option;
      (** overlay route from a member to a member (both endpoints
          included); [None] when routing fails, e.g. to a departed node *)
  near : node:int -> exclude:int list -> int option;
      (** replica placement: a member topologically near [node], not in
          [exclude]; [None] when no host qualifies *)
  publish_load : node:int -> load:float -> unit;
      (** feed a node's normalized window load (1.0 = at threshold) to
          the backend's load store; called before placement lookups *)
}

type config = {
  replicas : int;  (** max copies per key, >= 1; 1 disables replication *)
  load_threshold : int;
      (** window requests that mark a serving node hot, >= 1 *)
  window : float;
      (** load-accounting window, ms; [infinity] = never reset *)
  origin_ms : float;  (** modelled origin-fetch penalty on a miss, >= 0 *)
  hot_keys : int;
      (** hottest keys considered for copying per overload event, >= 1 *)
}

val default_config : config
(** [replicas = 1], [load_threshold = 64], [window = infinity],
    [origin_ms = 150.0], [hot_keys = 4]. *)

type outcome = {
  key : int;
  client : int;
  served_by : int;
  hit : bool;
  shed : bool;  (** served by a farther copy because the nearest was hot *)
  hops : int;  (** overlay hops of the delivered route *)
  latency : float;  (** delivered latency, ms (origin penalty included) *)
}

type t

val create :
  ?metrics:Metrics.t ->
  ?labels:Metrics.labels ->
  ?trace:Trace.t ->
  ?clock:(unit -> float) ->
  ?rtt:(src:int -> dst:int -> float option) ->
  ?config:config ->
  link:(int -> int -> float) ->
  backend ->
  t
(** [create ~link backend] builds an empty cache.  [link u v] is the
    physical latency between route-adjacent nodes (pass
    [Topology.Oracle.dist]); [rtt] ranks replicas from the client's side
    ([None] = currently unreachable/unknown, ranked last; defaults to
    [link] wrapped in [Some]) — pass the probe plane's cached
    measurement here.  [clock] (default frozen at 0) drives the load
    window.

    With [metrics], the cache maintains [cache_requests] / [cache_hits] /
    [cache_misses] / [cache_sheds] / [cache_failovers] /
    [cache_replications] counters, a [cache_request_ms] histogram of
    delivered latencies and a [cache_load_max] gauge (plus any [labels]).
    With [trace], every request emits a [Cache_request] span and every
    copy a [Cache_replicate] span.

    Raises [Invalid_argument] on out-of-range config fields. *)

val config : t -> config
val backend_name : t -> string

val request : t -> client:int -> key:int -> outcome
(** Serve one request.  Raises [Invalid_argument] if [client] is not a
    member.  Raises [Failure] if even the key's home is unroutable (does
    not happen on consistent overlays). *)

val replicas_of : t -> int -> int list
(** Current copy holders of a key, placement order (home first); [[]] if
    never requested.  Departed members are pruned lazily by requests, so
    a copy on a just-crashed node may still be listed. *)

val stored_keys : t -> int list
(** Keys with at least one copy, ascending. *)

val load_of : t -> int -> int
(** Requests served by a node in the current window. *)

val max_load : t -> int
(** Highest per-node window load seen over the cache's lifetime. *)

val requests : t -> int
val hits : t -> int
val misses : t -> int
val sheds : t -> int

val failovers : t -> int
(** Requests that skipped at least one unreachable copy. *)

val replications : t -> int

val check_invariants : t -> (unit, string) result
(** Copy lists are duplicate-free, never exceed [config.replicas], and
    every listed holder was a member when listed (holders are only
    checked live on the request path). *)
