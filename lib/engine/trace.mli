(** Ring-buffer event tracer with a typed span taxonomy.

    A tracer records {e spans} — timestamped, typed events with a subject
    node, an optional peer and a free-form note — into a fixed-capacity
    ring buffer.  Recording is O(1) and allocation-light, so hot paths
    (per-hop routing, per-probe measurement) can trace unconditionally;
    when the buffer wraps, the oldest spans are overwritten and counted in
    {!dropped}.

    Timestamps come from the injected [clock] (pass
    [fun () -> Sim.now sim] to trace virtual time) unless the caller
    supplies [?at] explicitly.  Spans can be dumped as JSONL in the Chrome
    trace-event format ([chrome://tracing] / Perfetto load it directly);
    see the [topoaware trace] subcommand. *)

type kind =
  | Route_hop  (** one overlay forwarding step; [node] -> [peer] *)
  | Rtt_probe  (** one RTT measurement; [dur] is the measured RTT *)
  | Map_publish  (** a soft-state entry was (re)published; [note] is the region *)
  | Notify  (** a pub/sub notification; [dur] is the delivery delay *)
  | Ttl_sweep  (** a TTL sweep ran; [note] is the purge count *)
  | Fault_inject  (** a fault-plan event fired or a message was perturbed *)
  | Cache_request
      (** one cache request served; [node] = client, [peer] = serving
          replica, [dur] = delivered latency, [note] = [hit:<key>] /
          [miss:<key>] / [shed:<key>] *)
  | Cache_replicate
      (** a hot entry was copied; [node] = overloaded source, [peer] =
          new replica host, [note] = the key *)
  | Mcast_deliver
      (** one dissemination-tree delivery; [node] = subscriber, [peer] =
          its tree parent, [dur] = root-to-subscriber delivery latency,
          [note] = [pub:<publish index>] *)
  | Mcast_regraft
      (** an orphaned subtree re-attached; [node] = the orphan's root,
          [peer] = its new parent, [dur] = orphanhood duration (parent
          loss to re-graft), [note] = [dead:<lost parent>] — the victim
          tag {!Engine.Repair.analyze} correlates against *)

val kind_name : kind -> string
(** ["route_hop"], ["rtt_probe"], ["map_publish"], ["notify"],
    ["ttl_sweep"], ["fault_inject"], ["cache_request"],
    ["cache_replicate"], ["mcast_deliver"], ["mcast_regraft"]. *)

type span = {
  seq : int;  (** global emission index, 0-based, never reused *)
  at : float;  (** virtual time (ms) the span started *)
  dur : float;  (** duration (ms); 0 for instant events *)
  kind : kind;
  node : int;  (** subject overlay node; -1 for system-wide events *)
  peer : int;  (** counterpart node; -1 when not applicable *)
  note : string;  (** free-form detail; [""] when not applicable *)
}

type t

val default_capacity : int
(** 65,536 spans. *)

val create : ?capacity:int -> ?clock:(unit -> float) -> unit -> t
(** Fresh tracer.  [capacity] (default {!default_capacity}) must be >= 1;
    [clock] (default: frozen at 0) supplies [at] when {!emit} is not given
    one. *)

val emit : t -> ?at:float -> ?dur:float -> ?peer:int -> ?note:string -> kind -> node:int -> unit
(** Record one span.  [at] defaults to [clock ()], [dur] to 0, [peer] to
    -1, [note] to [""]. *)

val note_buffer : t -> Buffer.t
(** The tracer's reusable note-construction buffer, cleared.  Hot
    emitters build the note here (e.g. with [Printf.bprintf], which
    writes directly into the buffer) and then call {!emit_noted} — one
    exactly-sized string allocation per span instead of [sprintf]'s
    intermediate buffer plus string.  The buffer is private to the
    tracer: fill it and emit before anything else can touch the
    tracer. *)

val emit_noted : t -> ?at:float -> ?dur:float -> ?peer:int -> kind -> node:int -> unit
(** {!emit} with [note] taken from the current contents of
    {!note_buffer}.  The produced span is byte-identical to passing the
    equivalent [sprintf] string to {!emit}. *)

val spans : t -> span list
(** Retained spans, oldest first (at most [capacity]; earlier spans may
    have been overwritten — see {!dropped}). *)

val emitted : t -> int
(** Spans ever recorded. *)

val length : t -> int
(** Spans currently retained, [min emitted capacity]. *)

val dropped : t -> int
(** Spans lost to ring wraparound, [emitted - length]. *)

val capacity : t -> int

val span_json : span -> Prelude.Json.t
(** One Chrome trace event (["ph": "X"], [ts]/[dur] in microseconds,
    [tid] = node, [args] holds [seq]/[peer]/[note]). *)

val to_jsonl : t -> string
(** All retained spans as JSON Lines, one {!span_json} object per line. *)

val pp_jsonl : Format.formatter -> t -> unit
(** Print {!to_jsonl} to a formatter. *)
