module Rng = Prelude.Rng

type action = Crash | Leave | Join | Expire of float

type event = { at : float; action : action }

type storm = {
  crashes : int;
  leaves : int;
  joins : int;
  expire_bursts : int;
  expire_fraction : float;
  start : float;
  spread : float;
}

let default_storm =
  {
    crashes = 8;
    leaves = 8;
    joins = 16;
    expire_bursts = 2;
    expire_fraction = 0.10;
    start = 10_000.0;
    spread = 30_000.0;
  }

type channel = { loss : float; delay_min : float; delay_max : float }

let reliable = { loss = 0.0; delay_min = 0.0; delay_max = 0.0 }

type t = {
  seed : int;
  channel : channel;
  plan_rng : Rng.t;
  chan_rng : Rng.t;
  buf : Buffer.t;
  tracer : Trace.t option;
  mutable lines : string list;  (* reversed *)
  mutable messages : int;
  mutable dropped : int;
}

let create ?(channel = reliable) ?trace ~seed () =
  if channel.loss < 0.0 || channel.loss > 1.0 then
    invalid_arg "Faults.create: loss must be in [0,1]";
  if channel.delay_min < 0.0 || channel.delay_max < channel.delay_min then
    invalid_arg "Faults.create: need 0 <= delay_min <= delay_max";
  let root = Rng.create seed in
  {
    seed;
    channel;
    plan_rng = Rng.split root;
    chan_rng = Rng.split root;
    buf = Buffer.create 1024;
    tracer = trace;
    lines = [];
    messages = 0;
    dropped = 0;
  }

let seed t = t.seed

let note t line =
  t.lines <- line :: t.lines;
  Buffer.add_string t.buf line;
  Buffer.add_char t.buf '\n'

let trace t = List.rev t.lines
let trace_digest t = Buffer.contents t.buf

let action_name = function
  | Crash -> "crash"
  | Leave -> "leave"
  | Join -> "join"
  | Expire f -> Printf.sprintf "expire %.3f" f

let plan t storm =
  if storm.spread < 0.0 then invalid_arg "Faults.plan: negative spread";
  let at () = storm.start +. (if storm.spread > 0.0 then Rng.float t.plan_rng storm.spread else 0.0) in
  let events = ref [] in
  let emit n action = for _ = 1 to n do events := { at = at (); action } :: !events done in
  emit storm.crashes Crash;
  emit storm.leaves Leave;
  emit storm.joins Join;
  emit storm.expire_bursts (Expire storm.expire_fraction);
  let sorted = List.stable_sort (fun a b -> compare a.at b.at) (List.rev !events) in
  List.iter (fun e -> note t (Printf.sprintf "plan t=%.6f %s" e.at (action_name e.action))) sorted;
  sorted

let install t ~sim ~plan ~handler =
  List.iter
    (fun e ->
      ignore
        (Sim.schedule_at sim e.at (fun () ->
             note t (Printf.sprintf "fire t=%.6f %s" (Sim.now sim) (action_name e.action));
             Option.iter
               (fun tr ->
                 Trace.emit tr ~at:(Sim.now sim) ~note:(action_name e.action) Trace.Fault_inject
                   ~node:(-1))
               t.tracer;
             handler e)))
    plan

let perturb t base =
  t.messages <- t.messages + 1;
  let n = t.messages in
  if t.channel.loss > 0.0 && Rng.chance t.chan_rng t.channel.loss then begin
    t.dropped <- t.dropped + 1;
    note t (Printf.sprintf "msg %d drop" n);
    Option.iter (fun tr -> Trace.emit tr ~note:"channel drop" Trace.Fault_inject ~node:(-1)) t.tracer;
    None
  end
  else begin
    let extra =
      if t.channel.delay_max > t.channel.delay_min then
        Rng.float_in t.chan_rng t.channel.delay_min t.channel.delay_max
      else t.channel.delay_min
    in
    if extra > 0.0 then note t (Printf.sprintf "msg %d +%.6f" n extra);
    Some (base +. extra)
  end

let messages t = t.messages
let dropped t = t.dropped
