type config = {
  window : int;
  timeout : float;
  retries : int;
  backoff : float;
  cache_ttl : float;
}

let default_config =
  { window = 1; timeout = infinity; retries = 0; backoff = 50.0; cache_ttl = 0.0 }

type failure = { src : int; dst : int; attempts : int }

type batch = {
  results : (float, failure) result array;
  started : float;
  finished : float;
}

let elapsed b = b.finished -. b.started

type instruments = {
  i_submitted : Metrics.counter;
  i_measured : Metrics.counter;
  i_retries : Metrics.counter;
  i_timeouts : Metrics.counter;
  i_losses : Metrics.counter;
  i_failures : Metrics.counter;
  i_cache_hits : Metrics.counter;
  i_cache_misses : Metrics.counter;
  i_cache_stale : Metrics.counter;
  i_queue_wait : Metrics.histogram;
  i_batch_ms : Metrics.histogram;
}

type cache_entry = { rtt : float; expires : float }

type t = {
  config : config;
  measure : int -> int -> float;
  sim : Sim.t option;
  clock : unit -> float;
  faults : Faults.t option;
  pool : Dpool.t option;
      (* when present, batch measurements are prefetched in parallel and
         the classic sequential schedule replayed against the memo *)
  cache : (int * int, cache_entry) Hashtbl.t;
  obs : instruments option;
  dobs : (Metrics.counter * Metrics.counter) option;
      (* (domain_batches, domain_tasks) dispatch accounting; registered
         only when both metrics and a pool are present *)
  tracer : Trace.t option;
  mutable probes : int;
  mutable failures : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_stale : int;
  mutable total_elapsed : float;
}

let create ?metrics ?(labels = []) ?trace ?faults ?sim ?clock ?pool
    ?(config = default_config) ~measure () =
  if config.window < 1 then invalid_arg "Probe.create: window must be >= 1";
  if not (config.timeout > 0.0) then invalid_arg "Probe.create: timeout must be positive";
  if config.retries < 0 then invalid_arg "Probe.create: retries must be >= 0";
  if config.backoff < 0.0 then invalid_arg "Probe.create: backoff must be >= 0";
  if config.cache_ttl < 0.0 then invalid_arg "Probe.create: cache_ttl must be >= 0";
  let clock =
    match (clock, sim) with
    | Some c, _ -> c
    | None, Some sim -> fun () -> Sim.now sim
    | None, None -> fun () -> 0.0
  in
  let obs =
    Option.map
      (fun m ->
        {
          i_submitted = Metrics.counter m ~labels "probe_submitted";
          i_measured = Metrics.counter m ~labels "probe_measured";
          i_retries = Metrics.counter m ~labels "probe_retries";
          i_timeouts = Metrics.counter m ~labels "probe_timeouts";
          i_losses = Metrics.counter m ~labels "probe_losses";
          i_failures = Metrics.counter m ~labels "probe_failures";
          i_cache_hits = Metrics.counter m ~labels "probe_cache_hits";
          i_cache_misses = Metrics.counter m ~labels "probe_cache_misses";
          i_cache_stale = Metrics.counter m ~labels "probe_cache_stale";
          i_queue_wait = Metrics.histogram m ~labels "probe_queue_wait";
          i_batch_ms = Metrics.histogram m ~labels "probe_batch_ms";
        })
      metrics
  in
  let dobs =
    match (metrics, pool) with
    | Some m, Some _ ->
      Some (Metrics.counter m ~labels "domain_batches", Metrics.counter m ~labels "domain_tasks")
    | _ -> None
  in
  {
    config;
    measure;
    sim;
    clock;
    faults;
    pool;
    cache = Hashtbl.create 256;
    obs;
    dobs;
    tracer = trace;
    probes = 0;
    failures = 0;
    cache_hits = 0;
    cache_misses = 0;
    cache_stale = 0;
    total_elapsed = 0.0;
  }

let config t = t.config

let obs_incr t f = match t.obs with Some o -> Metrics.incr (f o) | None -> ()
let obs_observe t f v = match t.obs with Some o -> Metrics.observe (f o) v | None -> ()

(* The cache is keyed directionally: re-probing the same destination from
   the same source is the reuse pattern (selection and maintenance re-rank
   the same candidates), and a directional key never assumes the
   measurement function is symmetric. *)
let cache_find t ~src ~dst ~now =
  if t.config.cache_ttl <= 0.0 then None
  else begin
    match Hashtbl.find_opt t.cache (src, dst) with
    | Some e when e.expires > now ->
      t.cache_hits <- t.cache_hits + 1;
      obs_incr t (fun o -> o.i_cache_hits);
      Some e.rtt
    | Some _ ->
      t.cache_stale <- t.cache_stale + 1;
      t.cache_misses <- t.cache_misses + 1;
      obs_incr t (fun o -> o.i_cache_stale);
      obs_incr t (fun o -> o.i_cache_misses);
      None
    | None ->
      t.cache_misses <- t.cache_misses + 1;
      obs_incr t (fun o -> o.i_cache_misses);
      None
  end

(* Counter-free peek used by the prefetch planner: hit/miss/stale
   accounting must happen exactly once per probe, during the replay's
   [cache_find], never here. *)
let cached_fresh t ~src ~dst ~now =
  t.config.cache_ttl > 0.0
  &&
  match Hashtbl.find_opt t.cache (src, dst) with
  | Some e -> e.expires > now
  | None -> false

let cache_store t ~src ~dst ~at rtt =
  if t.config.cache_ttl > 0.0 then
    Hashtbl.replace t.cache (src, dst) { rtt; expires = at +. t.config.cache_ttl }

let invalidate t node =
  let doomed =
    Hashtbl.fold
      (fun ((a, b) as k) _ acc -> if a = node || b = node then k :: acc else acc)
      t.cache []
  in
  List.iter (Hashtbl.remove t.cache) doomed

(* One probe's attempt schedule starting when its window slot frees at
   [at]: measure, let the channel decide the attempt's fate, and either
   complete or burn the timeout + backoff and try again.  Returns the
   outcome together with the slot's release time and the attempts spent. *)
let run_attempts t ~measure ~src ~dst ~at =
  let cfg = t.config in
  (* A lost probe with an infinite timeout would never be detected; model
     detection as instant so the schedule stays finite. *)
  let detect = if Float.is_finite cfg.timeout then cfg.timeout else 0.0 in
  let rec go k at =
    let rtt = measure src dst in
    obs_incr t (fun o -> o.i_measured);
    let fate =
      match t.faults with None -> Some rtt | Some f -> Faults.perturb f rtt
    in
    match fate with
    | Some d when d <= cfg.timeout -> (Ok d, at +. d, k)
    | fate ->
      (match fate with
      | None -> obs_incr t (fun o -> o.i_losses)
      | Some _ -> obs_incr t (fun o -> o.i_timeouts));
      let at = at +. detect in
      if k > cfg.retries then (Error { src; dst; attempts = k }, at, k)
      else begin
        obs_incr t (fun o -> o.i_retries);
        go (k + 1) (at +. (cfg.backoff *. (2.0 ** float_of_int (k - 1))))
      end
  in
  go 1 at

(* Phase 1 of a pool-backed batch: measure every {e unique, uncached}
   destination in parallel and memoise the RTTs.  The replay (phase 2)
   consumes each memo entry on that destination's {e first} measurement
   and calls [t.measure] directly for any further attempt or duplicate —
   so as long as the measurement function is deterministic per pair (and
   domain-safe), the RTT values, the total call count against the
   underlying oracle, and every downstream decision are byte-identical to
   the sequential path; only which domain performed a call changes.

   Chunking is fixed at [prefetch_chunk] destinations per task, so the
   dispatch structure (and the [domain_*] counters) depends only on the
   batch contents, never on the pool size. *)
let prefetch_chunk = 8

let prefetch t ~src ~dsts ~now =
  match t.pool with
  | None -> None
  | Some pool ->
    let seen = Hashtbl.create 16 in
    let uniq = ref [] in
    Array.iter
      (fun dst ->
        if (not (Hashtbl.mem seen dst)) && not (cached_fresh t ~src ~dst ~now) then begin
          Hashtbl.replace seen dst ();
          uniq := dst :: !uniq
        end)
      dsts;
    let uniq = Array.of_list (List.rev !uniq) in
    let n = Array.length uniq in
    if n < 2 then None
    else begin
      let tasks = (n + prefetch_chunk - 1) / prefetch_chunk in
      (match t.dobs with
      | Some (batches, task_count) ->
        Metrics.incr batches;
        Metrics.add task_count tasks
      | None -> ());
      let slices =
        Dpool.run pool tasks (fun j ->
            let lo = j * prefetch_chunk in
            let hi = min n (lo + prefetch_chunk) in
            Array.init (hi - lo) (fun k -> t.measure src uniq.(lo + k)))
      in
      let memo = Hashtbl.create n in
      Array.iteri
        (fun j slice ->
          Array.iteri
            (fun k rtt -> Hashtbl.replace memo uniq.((j * prefetch_chunk) + k) rtt)
            slice)
        slices;
      Some memo
    end

let run_batch t ~src ~dsts =
  let start = t.clock () in
  let n = Array.length dsts in
  let results = Array.make n (Error { src; dst = -1; attempts = 0 }) in
  let w = max 1 (min t.config.window (max n 1)) in
  let slots = Array.make w start in
  let finished = ref start in
  let memo = prefetch t ~src ~dsts ~now:start in
  (* First measurement of a destination consumes its memo entry; retries
     and duplicates fall through to the real measurement function, so the
     oracle sees the sequential path's call count exactly. *)
  let measure =
    match memo with
    | None -> t.measure
    | Some memo ->
      fun s d ->
        (match Hashtbl.find_opt memo d with
        | Some rtt ->
          Hashtbl.remove memo d;
          rtt
        | None -> t.measure s d)
  in
  Array.iteri
    (fun j dst ->
      t.probes <- t.probes + 1;
      obs_incr t (fun o -> o.i_submitted);
      match cache_find t ~src ~dst ~now:start with
      | Some rtt ->
        (* Served from memory: no slot, no time, no measurement. *)
        results.(j) <- Ok rtt
      | None ->
        let si = ref 0 in
        for i = 1 to w - 1 do
          if slots.(i) < slots.(!si) then si := i
        done;
        let slot_start = slots.(!si) in
        obs_observe t (fun o -> o.i_queue_wait) (slot_start -. start);
        let outcome, slot_end, attempts = run_attempts t ~measure ~src ~dst ~at:slot_start in
        (match outcome with
        | Ok rtt ->
          cache_store t ~src ~dst ~at:slot_end rtt;
          Option.iter
            (fun tr ->
              Printf.bprintf (Trace.note_buffer tr) "q=%g;try=%d" (slot_start -. start)
                attempts;
              Trace.emit_noted tr ~at:slot_start ~dur:rtt ~peer:dst Trace.Rtt_probe ~node:src)
            t.tracer
        | Error _ ->
          t.failures <- t.failures + 1;
          obs_incr t (fun o -> o.i_failures));
        results.(j) <- outcome;
        slots.(!si) <- slot_end;
        if slot_end > !finished then finished := slot_end)
    dsts;
  obs_observe t (fun o -> o.i_batch_ms) (!finished -. start);
  t.total_elapsed <- t.total_elapsed +. (!finished -. start);
  { results; started = start; finished = !finished }

let rtt t ~src ~dst = (run_batch t ~src ~dsts:[| dst |]).results.(0)

let the_sim t =
  match t.sim with
  | Some sim -> sim
  | None -> invalid_arg "Probe.submit: prober has no simulation"

let submit_batch t ~src ~dsts k =
  let sim = the_sim t in
  let b = run_batch t ~src ~dsts in
  ignore (Sim.schedule sim ~delay:(elapsed b) (fun () -> k b))

let submit t ~src ~dst k =
  let sim = the_sim t in
  let b = run_batch t ~src ~dsts:[| dst |] in
  ignore (Sim.schedule sim ~delay:(elapsed b) (fun () -> k b.results.(0)))

let probes t = t.probes
let failures t = t.failures
let cache_hits t = t.cache_hits
let cache_misses t = t.cache_misses
let cache_stale t = t.cache_stale
let total_elapsed t = t.total_elapsed
