(* Worker domains block on per-mailbox condition variables; the
   coordinator dispatches closures and waits on a per-batch latch.  All
   cross-domain publication happens through the mailbox and latch
   mutexes, so task results written by a worker are visible to the
   coordinator once the latch opens (no data races: each result slot is
   written by exactly one domain and read only after the latch). *)

type mailbox = {
  mu : Mutex.t;
  cond : Condition.t;
  jobs : (unit -> unit) Queue.t;
  mutable stop : bool;
}

type t = {
  domains : int;
  boxes : mailbox array;  (* length domains - 1; slot w > 0 -> boxes.(w - 1) *)
  handles : unit Domain.t array;
  shut_mu : Mutex.t;
  mutable shut : bool;
}

(* Re-entrancy guard: a task calling back into the pool would wait on a
   mailbox that can only drain after the task itself returns.  Degrade
   nested dispatch to inline execution instead. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let worker_loop box =
  Domain.DLS.set in_worker true;
  let rec loop () =
    Mutex.lock box.mu;
    while Queue.is_empty box.jobs && not box.stop do
      Condition.wait box.cond box.mu
    done;
    if Queue.is_empty box.jobs then Mutex.unlock box.mu (* stop and drained *)
    else begin
      let job = Queue.pop box.jobs in
      Mutex.unlock box.mu;
      job ();
      loop ()
    end
  in
  loop ()

let max_domains = 128

let create ~domains () =
  if domains < 1 || domains > max_domains then
    invalid_arg "Dpool.create: domains out of [1,128]";
  let boxes =
    Array.init (domains - 1) (fun _ ->
        { mu = Mutex.create (); cond = Condition.create (); jobs = Queue.create (); stop = false })
  in
  let handles = Array.map (fun b -> Domain.spawn (fun () -> worker_loop b)) boxes in
  { domains; boxes; handles; shut_mu = Mutex.create (); shut = false }

let size t = t.domains

let post box job =
  Mutex.lock box.mu;
  Queue.push job box.jobs;
  Condition.signal box.cond;
  Mutex.unlock box.mu

(* One batch's completion latch. *)
type latch = { lmu : Mutex.t; lcond : Condition.t; mutable left : int }

let latch_done l =
  Mutex.lock l.lmu;
  l.left <- l.left - 1;
  if l.left = 0 then Condition.signal l.lcond;
  Mutex.unlock l.lmu

let latch_wait l =
  Mutex.lock l.lmu;
  while l.left > 0 do
    Condition.wait l.lcond l.lmu
  done;
  Mutex.unlock l.lmu

let run_inline n f =
  if n = 0 then [||]
  else begin
    let out = Array.make n (f 0) in
    for i = 1 to n - 1 do
      out.(i) <- f i
    done;
    out
  end

let run t n f =
  if n < 0 then invalid_arg "Dpool.run: negative task count";
  if n = 0 then [||]
  else if t.domains = 1 || n = 1 || Domain.DLS.get in_worker then run_inline n f
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let remote = ref 0 in
    for i = 0 to n - 1 do
      if i mod t.domains <> 0 then incr remote
    done;
    let latch = { lmu = Mutex.create (); lcond = Condition.create (); left = !remote } in
    let exec i =
      (match f i with
      | v -> results.(i) <- Some v
      | exception e -> errors.(i) <- Some e)
    in
    for i = 0 to n - 1 do
      let w = i mod t.domains in
      if w <> 0 then
        post t.boxes.(w - 1) (fun () ->
            exec i;
            latch_done latch)
    done;
    (* The coordinator's own share (slot 0) runs while workers drain. *)
    for i = 0 to n - 1 do
      if i mod t.domains = 0 then exec i
    done;
    latch_wait latch;
    Array.iter (function Some e -> raise e | None -> ()) errors;
    Array.map
      (function Some v -> v | None -> assert false (* every slot ran or raised *))
      results
  end

let run_on t ~slot f =
  if t.domains = 1 || slot mod t.domains = 0 || Domain.DLS.get in_worker then f ()
  else begin
    let box = t.boxes.((slot mod t.domains) - 1) in
    let result = ref None in
    let error = ref None in
    let latch = { lmu = Mutex.create (); lcond = Condition.create (); left = 1 } in
    post box (fun () ->
        (match f () with v -> result := Some v | exception e -> error := Some e);
        latch_done latch);
    latch_wait latch;
    match !error with
    | Some e -> raise e
    | None -> ( match !result with Some v -> v | None -> assert false)
  end

let shutdown t =
  Mutex.lock t.shut_mu;
  let was = t.shut in
  t.shut <- true;
  Mutex.unlock t.shut_mu;
  if not was then begin
    Array.iter
      (fun box ->
        Mutex.lock box.mu;
        box.stop <- true;
        Condition.broadcast box.cond;
        Mutex.unlock box.mu)
      t.boxes;
    Array.iter Domain.join t.handles
  end

(* ---- interned pools & the ambient default ---- *)

let interned : (int, t) Hashtbl.t = Hashtbl.create 4
let interned_mu = Mutex.create ()

let get ~domains =
  Mutex.lock interned_mu;
  let pool =
    match Hashtbl.find_opt interned domains with
    | Some p -> p
    | None ->
      let p = try create ~domains () with e -> Mutex.unlock interned_mu; raise e in
      Hashtbl.replace interned domains p;
      p
  in
  Mutex.unlock interned_mu;
  pool

let env_domains () =
  match Sys.getenv_opt "TOPOAWARE_DOMAINS" with
  | None -> 1
  | Some s ->
    (match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 && n <= max_domains -> n
    | Some _ | None -> 1)

let default_override : t option ref = ref None

let set_default o = default_override := o

let default () =
  match !default_override with Some p -> p | None -> get ~domains:(env_domains ())
