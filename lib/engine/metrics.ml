module Json = Prelude.Json
module Stats = Prelude.Stats

type labels = (string * string) list

let canonical labels = List.sort_uniq (fun (a, _) (b, _) -> compare a b) labels

type counter = { mutable c_value : int }
type gauge = { mutable g_value : float }

type histogram = {
  mutable samples : float array;
  mutable h_len : int;
}

type instrument = Counter of counter | Gauge of gauge | Histogram of histogram

type t = { instruments : (string * labels, instrument) Hashtbl.t }

let create () = { instruments = Hashtbl.create 64 }

let global = create ()

let reset t = Hashtbl.reset t.instruments

let size t = Hashtbl.length t.instruments

let validate_name name =
  if name = "" then invalid_arg "Metrics: empty instrument name";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' -> ()
      | _ -> invalid_arg (Printf.sprintf "Metrics: invalid instrument name %S" name))
    name

let counter t ?(labels = []) name =
  validate_name name;
  let key = (name, canonical labels) in
  match Hashtbl.find_opt t.instruments key with
  | Some (Counter c) -> c
  | Some _ -> invalid_arg (Printf.sprintf "Metrics.counter: %S registered as another kind" name)
  | None ->
    let c = { c_value = 0 } in
    Hashtbl.replace t.instruments key (Counter c);
    c

let gauge t ?(labels = []) name =
  validate_name name;
  let key = (name, canonical labels) in
  match Hashtbl.find_opt t.instruments key with
  | Some (Gauge g) -> g
  | Some _ -> invalid_arg (Printf.sprintf "Metrics.gauge: %S registered as another kind" name)
  | None ->
    let g = { g_value = 0.0 } in
    Hashtbl.replace t.instruments key (Gauge g);
    g

let histogram t ?(labels = []) name =
  validate_name name;
  let key = (name, canonical labels) in
  match Hashtbl.find_opt t.instruments key with
  | Some (Histogram h) -> h
  | Some _ -> invalid_arg (Printf.sprintf "Metrics.histogram: %S registered as another kind" name)
  | None ->
    let h = { samples = [||]; h_len = 0 } in
    Hashtbl.replace t.instruments key (Histogram h);
    h

let incr c = c.c_value <- c.c_value + 1
let add c n = c.c_value <- c.c_value + n
let count c = c.c_value

let set g v = g.g_value <- v
let value g = g.g_value

let observe h x =
  if h.h_len = Array.length h.samples then begin
    let ncap = max 64 (2 * h.h_len) in
    let ndata = Array.make ncap 0.0 in
    Array.blit h.samples 0 ndata 0 h.h_len;
    h.samples <- ndata
  end;
  h.samples.(h.h_len) <- x;
  h.h_len <- h.h_len + 1

let observations h = h.h_len

let samples h = Array.sub h.samples 0 h.h_len

let hmean h = Stats.mean (samples h)

let quantile h p = Stats.percentile (samples h) p

(* ---- snapshots ---- *)

type hist_summary = {
  n : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
}

let summarize_histogram h =
  let xs = samples h in
  let n = Array.length xs in
  if n = 0 then
    { n = 0; mean = 0.0; min = 0.0; max = 0.0; p50 = 0.0; p90 = 0.0; p95 = 0.0; p99 = 0.0 }
  else
    {
      n;
      mean = Stats.mean xs;
      min = Array.fold_left Float.min xs.(0) xs;
      max = Array.fold_left Float.max xs.(0) xs;
      p50 = Stats.percentile xs 50.0;
      p90 = Stats.percentile xs 90.0;
      p95 = Stats.percentile xs 95.0;
      p99 = Stats.percentile xs 99.0;
    }

type snapshot_value = Counter_v of int | Gauge_v of float | Histogram_v of hist_summary

type snapshot_entry = { name : string; labels : labels; v : snapshot_value }

let snapshot t =
  let entries =
    Hashtbl.fold
      (fun (name, labels) inst acc ->
        let v =
          match inst with
          | Counter c -> Counter_v c.c_value
          | Gauge g -> Gauge_v g.g_value
          | Histogram h -> Histogram_v (summarize_histogram h)
        in
        { name; labels; v } :: acc)
      t.instruments []
  in
  (* Sorted by (name, labels): output order never depends on hash-table
     iteration or registration order. *)
  List.sort (fun a b -> compare (a.name, a.labels) (b.name, b.labels)) entries

let labels_json labels = Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) labels)

let schema_version = "topo-overlay/metrics-v1"

let to_json t =
  let entries = snapshot t in
  let pick f = List.filter_map f entries in
  let counters =
    pick (fun e ->
        match e.v with
        | Counter_v v ->
          Some
            (Json.Obj
               [ ("name", Json.String e.name); ("labels", labels_json e.labels); ("value", Json.Int v) ])
        | _ -> None)
  in
  let gauges =
    pick (fun e ->
        match e.v with
        | Gauge_v v ->
          Some
            (Json.Obj
               [ ("name", Json.String e.name); ("labels", labels_json e.labels); ("value", Json.Float v) ])
        | _ -> None)
  in
  let histograms =
    pick (fun e ->
        match e.v with
        | Histogram_v s ->
          Some
            (Json.Obj
               [
                 ("name", Json.String e.name);
                 ("labels", labels_json e.labels);
                 ("count", Json.Int s.n);
                 ("mean", Json.Float s.mean);
                 ("min", Json.Float s.min);
                 ("max", Json.Float s.max);
                 ("p50", Json.Float s.p50);
                 ("p90", Json.Float s.p90);
                 ("p95", Json.Float s.p95);
                 ("p99", Json.Float s.p99);
               ])
        | _ -> None)
  in
  Json.Obj
    [
      ("schema", Json.String schema_version);
      ("counters", Json.List counters);
      ("gauges", Json.List gauges);
      ("histograms", Json.List histograms);
    ]

let pp_labels ppf labels =
  if labels <> [] then begin
    Format.fprintf ppf "{";
    List.iteri
      (fun i (k, v) -> Format.fprintf ppf "%s%s=%s" (if i > 0 then "," else "") k v)
      labels;
    Format.fprintf ppf "}"
  end

let pp ppf t =
  List.iter
    (fun e ->
      match e.v with
      | Counter_v v -> Format.fprintf ppf "%s%a %d@." e.name pp_labels e.labels v
      | Gauge_v v -> Format.fprintf ppf "%s%a %.6g@." e.name pp_labels e.labels v
      | Histogram_v s ->
        Format.fprintf ppf "%s%a n=%d mean=%.3f p50=%.3f p95=%.3f p99=%.3f@." e.name pp_labels
          e.labels s.n s.mean s.p50 s.p95 s.p99)
    (snapshot t)
