module Rng = Prelude.Rng

type policy = Aware | Random

let policy_name = function Aware -> "aware" | Random -> "random"

type backend = {
  name : string;
  member : int -> bool;
  route_to : src:int -> dst:int -> int list option;
  candidates : node:int -> exclude:int list -> int list;
  publish_load : node:int -> load:float -> unit;
}

type config = { degree : int; policy : policy; seed : int }

let default_config = { degree = 4; policy = Aware; seed = 42 }

type delivery = {
  publish_seq : int;
  delivered : (int * float * float) list;
  missed : int list;
  max_stress : int;
  link_count : int;
  traversals : int;
  cost_ms : float;
}

type observer = {
  o_subscribes : Metrics.counter;
  o_relays : Metrics.counter;
  o_publishes : Metrics.counter;
  o_delivered : Metrics.counter;
  o_missed : Metrics.counter;
  o_orphaned : Metrics.counter;
  o_regrafts : Metrics.counter;
  o_delivery : Metrics.histogram;
  o_stretch : Metrics.histogram;
  o_stress : Metrics.histogram;
  o_regraft_ms : Metrics.histogram;
  o_depth : Metrics.histogram;
}

type vertex = {
  mutable parent : int;  (* -1 for the root and for orphans *)
  mutable children : int list;  (* attach order *)
  mutable subscriber : bool;  (* false for the root and pure relays *)
  mutable orphaned_at : float;  (* nan while attached *)
  mutable lost_parent : int;  (* parent that died, -1 while attached *)
}

type t = {
  backend : backend;
  config : config;
  link : int -> int -> float;
  rtt : src:int -> dst:int -> float option;
  clock : unit -> float;
  obs : observer option;
  trace : Trace.t option;
  rng : Rng.t;
  root : int;
  nodes : (int, vertex) Hashtbl.t;
  stress : (int * int, int) Hashtbl.t;  (* per-publish scratch *)
  mutable publish_seq : int;
  mutable regraft_count : int;
  mutable relay_count : int;
}

let create ?metrics ?(labels = []) ?trace ?(clock = fun () -> 0.0) ?rtt
    ?(config = default_config) ~link ~root backend =
  if config.degree < 1 then invalid_arg "Mcast.create: degree must be >= 1";
  if not (backend.member root) then invalid_arg "Mcast.create: root is not a member";
  let obs =
    Option.map
      (fun m ->
        {
          o_subscribes = Metrics.counter m ~labels "mcast_subscribes";
          o_relays = Metrics.counter m ~labels "mcast_relays";
          o_publishes = Metrics.counter m ~labels "mcast_publishes";
          o_delivered = Metrics.counter m ~labels "mcast_delivered";
          o_missed = Metrics.counter m ~labels "mcast_missed";
          o_orphaned = Metrics.counter m ~labels "mcast_orphaned";
          o_regrafts = Metrics.counter m ~labels "mcast_regrafts";
          o_delivery = Metrics.histogram m ~labels "mcast_delivery_ms";
          o_stretch = Metrics.histogram m ~labels "mcast_stretch";
          o_stress = Metrics.histogram m ~labels "mcast_link_stress";
          o_regraft_ms = Metrics.histogram m ~labels "mcast_regraft_ms";
          o_depth = Metrics.histogram m ~labels "mcast_tree_depth";
        })
      metrics
  in
  let rtt = match rtt with Some f -> f | None -> fun ~src ~dst -> Some (link src dst) in
  let t =
    {
      backend;
      config;
      link;
      rtt;
      clock;
      obs;
      trace;
      rng = Rng.create config.seed;
      root;
      nodes = Hashtbl.create 256;
      stress = Hashtbl.create 256;
      publish_seq = 0;
      regraft_count = 0;
      relay_count = 0;
    }
  in
  Hashtbl.replace t.nodes root
    { parent = -1; children = []; subscriber = false; orphaned_at = Float.nan; lost_parent = -1 };
  t

let config t = t.config
let backend_name t = t.backend.name
let root t = t.root
let size t = Hashtbl.length t.nodes
let publishes t = t.publish_seq
let regrafts t = t.regraft_count
let relays_recruited t = t.relay_count

let vertex t node = Hashtbl.find_opt t.nodes node
let in_tree t node = Hashtbl.mem t.nodes node
let is_orphan v = not (Float.is_nan v.orphaned_at)

let sorted_members t pred =
  Hashtbl.fold (fun n v acc -> if pred n v then n :: acc else acc) t.nodes []
  |> List.sort compare

let members t = sorted_members t (fun _ _ -> true)
let subscribers t = sorted_members t (fun _ v -> v.subscriber)
let relays t = sorted_members t (fun n v -> (not v.subscriber) && n <> t.root)
let orphans t = sorted_members t (fun _ v -> is_orphan v)

let parent_of t node =
  match vertex t node with Some v when v.parent >= 0 -> Some v.parent | _ -> None

let children t node = match vertex t node with Some v -> v.children | None -> []

let depth_of t node =
  let rec go node steps =
    if steps > Hashtbl.length t.nodes then -1 (* corrupted: cycle *)
    else if node = t.root then steps
    else
      match vertex t node with
      | Some v when v.parent >= 0 -> go v.parent (steps + 1)
      | _ -> -1
  in
  if in_tree t node then go node 0 else -1

(* The nodes of the subtree rooted at [node] (node included). *)
let subtree t node =
  let seen = Hashtbl.create 16 in
  let rec go n =
    if not (Hashtbl.mem seen n) then begin
      Hashtbl.replace seen n ();
      List.iter go (children t n)
    end
  in
  go node;
  seen

let rtt_to t ~parent ~child =
  match t.rtt ~src:parent ~dst:child with Some r -> r | None -> infinity

(* In-tree nodes that can take one more child, excluding [forbidden]
   (the orphan's own subtree during a regraft) and every current orphan
   subtree (an orphan is disconnected — attaching under it would leave
   the newcomer unreachable).  Ascending node order: the scan, and hence
   every ranking tie-break, is deterministic. *)
let spare_parents t ~forbidden =
  let disconnected = Hashtbl.create 16 in
  Hashtbl.iter
    (fun n v ->
      if is_orphan v then
        Hashtbl.iter (fun m () -> Hashtbl.replace disconnected m ()) (subtree t n))
    t.nodes;
  sorted_members t (fun n v ->
      List.length v.children < t.config.degree
      && (not (Hashtbl.mem forbidden n))
      && not (Hashtbl.mem disconnected n))

let fresh_vertex ~parent ~subscriber =
  { parent; children = []; subscriber; orphaned_at = Float.nan; lost_parent = -1 }

let observe_depth t node =
  Option.iter
    (fun o ->
      let d = depth_of t node in
      if d >= 0 then Metrics.observe o.o_depth (float_of_int d))
    t.obs

(* Put [child] under [parent] (vertex created if absent, re-linked if
   present — the regraft path) and refresh the parent's fanout load in
   the backend's maps. *)
let link_under t ~parent ~child ~subscriber =
  let pv = Hashtbl.find t.nodes parent in
  pv.children <- pv.children @ [ child ];
  (match vertex t child with
  | Some cv ->
    cv.parent <- parent;
    cv.orphaned_at <- Float.nan;
    cv.lost_parent <- -1
  | None -> Hashtbl.replace t.nodes child (fresh_vertex ~parent ~subscriber));
  t.backend.publish_load ~node:parent
    ~load:(float_of_int (List.length pv.children) /. float_of_int t.config.degree)

(* Best spare by (RTT to the child, node id).  The spare set is never
   empty: the tree always has root capacity or a freed slot (a dropped
   node's parent just lost a child). *)
let best_spare t ~child spares =
  List.fold_left
    (fun best p ->
      let score = (rtt_to t ~parent:p ~child, p) in
      match best with Some (bs, _) when bs <= score -> best | _ -> Some (score, p))
    None spares
  |> Option.map snd

(* Policy placement of [child] (not currently attached).  Aware: best
   in-tree spare by RTT — upgraded to a freshly recruited map-proposed
   relay when one is strictly closer.  Random: seeded uniform spare. *)
let place t ~forbidden ~child ~subscriber =
  let spares = spare_parents t ~forbidden in
  match spares with
  | [] -> invalid_arg "Mcast: no spare tree capacity (degree too small?)"
  | _ -> (
    match t.config.policy with
    | Random ->
      let parent = Rng.pick t.rng (Array.of_list spares) in
      link_under t ~parent ~child ~subscriber
    | Aware -> (
      let parent = Option.get (best_spare t ~child spares) in
      let best_rtt = rtt_to t ~parent ~child in
      let proposal =
        t.backend.candidates ~node:child ~exclude:(members t)
        |> List.find_opt (fun c ->
               c <> child && (not (in_tree t c)) && t.backend.member c
               && rtt_to t ~parent:c ~child < best_rtt)
      in
      match proposal with
      | Some relay ->
        (* The relay itself lands under its own best spare; the child
           then attaches beneath it. *)
        let relay_parent = Option.get (best_spare t ~child:relay spares) in
        link_under t ~parent:relay_parent ~child:relay ~subscriber:false;
        t.relay_count <- t.relay_count + 1;
        Option.iter (fun o -> Metrics.incr o.o_relays) t.obs;
        observe_depth t relay;
        link_under t ~parent:relay ~child ~subscriber
      | None -> link_under t ~parent ~child ~subscriber))

let no_forbidden = Hashtbl.create 1

let subscribe t node =
  if not (t.backend.member node) then invalid_arg "Mcast.subscribe: not a member";
  (match vertex t node with
  | Some v when v.subscriber -> invalid_arg "Mcast.subscribe: already subscribed"
  | Some v ->
    (* a previously recruited relay joins the group: promote in place *)
    v.subscriber <- true
  | None -> place t ~forbidden:no_forbidden ~child:node ~subscriber:true);
  Option.iter (fun o -> Metrics.incr o.o_subscribes) t.obs;
  observe_depth t node

let drop_member t node =
  if node = t.root then invalid_arg "Mcast.drop_member: cannot drop the root";
  match vertex t node with
  | None -> false
  | Some v ->
    let now = t.clock () in
    (* detach from the (live) parent *)
    (if v.parent >= 0 then
       match vertex t v.parent with
       | Some pv -> pv.children <- List.filter (fun c -> c <> node) pv.children
       | None -> ());
    (* children become orphans, stamped at the fault instant *)
    List.iter
      (fun c ->
        match vertex t c with
        | Some cv ->
          cv.parent <- -1;
          cv.orphaned_at <- now;
          cv.lost_parent <- node;
          Option.iter (fun o -> Metrics.incr o.o_orphaned) t.obs
        | None -> ())
      v.children;
    Hashtbl.remove t.nodes node;
    true

let regraft t node =
  match vertex t node with
  | Some v when is_orphan v ->
    let lost = v.lost_parent and since = v.orphaned_at in
    (* the orphan's own subtree must not adopt it: that is a cycle *)
    place t ~forbidden:(subtree t node) ~child:node ~subscriber:v.subscriber;
    t.regraft_count <- t.regraft_count + 1;
    let latency = t.clock () -. since in
    Option.iter
      (fun o ->
        Metrics.incr o.o_regrafts;
        Metrics.observe o.o_regraft_ms latency)
      t.obs;
    Option.iter
      (fun tr ->
        Printf.bprintf (Trace.note_buffer tr) "dead:%d" lost;
        Trace.emit_noted tr ~dur:latency ~peer:v.parent Trace.Mcast_regraft ~node)
      t.trace;
    observe_depth t node
  | Some _ | None -> invalid_arg "Mcast.regraft: not an orphan"

let path_ms t = function
  | [] | [ _ ] -> 0.0
  | hops ->
    let rec go acc = function
      | a :: (b :: _ as rest) -> go (acc +. t.link a b) rest
      | [ _ ] | [] -> acc
    in
    go 0.0 hops

let count_stress t hops =
  let rec go = function
    | a :: (b :: _ as rest) ->
      let key = (min a b, max a b) in
      Hashtbl.replace t.stress key (1 + Option.value ~default:0 (Hashtbl.find_opt t.stress key));
      go rest
    | [ _ ] | [] -> ()
  in
  go hops

let publish t =
  let seq = t.publish_seq in
  t.publish_seq <- t.publish_seq + 1;
  Hashtbl.reset t.stress;
  Option.iter (fun o -> Metrics.incr o.o_publishes) t.obs;
  let delivered = ref [] and missed = ref [] in
  (* A node below a failed edge (or inside an orphaned subtree) is
     missed along with every subscriber beneath it. *)
  let rec miss_subtree node =
    (match vertex t node with
    | Some v when v.subscriber -> missed := node :: !missed
    | _ -> ());
    List.iter miss_subtree (children t node)
  in
  let rec walk node latency =
    (match vertex t node with
    | Some v when v.subscriber ->
      let uni =
        match t.backend.route_to ~src:t.root ~dst:node with
        | Some hops -> path_ms t hops
        | None -> 0.0
      in
      let stretch = if uni > 0.0 then latency /. uni else 1.0 in
      delivered := (node, latency, stretch) :: !delivered;
      Option.iter
        (fun o ->
          Metrics.incr o.o_delivered;
          Metrics.observe o.o_delivery latency;
          Metrics.observe o.o_stretch stretch)
        t.obs;
      Option.iter
        (fun tr ->
          Printf.bprintf (Trace.note_buffer tr) "pub:%d" seq;
          Trace.emit_noted tr ~dur:latency ~peer:v.parent Trace.Mcast_deliver ~node)
        t.trace
    | _ -> ());
    List.iter
      (fun child ->
        match t.backend.route_to ~src:node ~dst:child with
        | Some hops ->
          count_stress t hops;
          walk child (latency +. path_ms t hops)
        | None -> miss_subtree child)
      (children t node)
  in
  walk t.root 0.0;
  List.iter (fun o -> miss_subtree o) (orphans t);
  let missed = List.sort compare !missed in
  Option.iter (fun o -> Metrics.add o.o_missed (List.length missed)) t.obs;
  (* stress samples in sorted link order: deterministic histogram fill *)
  let links =
    Hashtbl.fold (fun k c acc -> (k, c) :: acc) t.stress [] |> List.sort compare
  in
  let max_stress = List.fold_left (fun m (_, c) -> max m c) 0 links in
  let traversals = List.fold_left (fun s (_, c) -> s + c) 0 links in
  (* resource usage a la end-system multicast: stress-weighted physical
     latency over every link the publish traversed *)
  let cost_ms =
    List.fold_left (fun s ((a, b), c) -> s +. (float_of_int c *. t.link a b)) 0.0 links
  in
  Option.iter
    (fun o -> List.iter (fun (_, c) -> Metrics.observe o.o_stress (float_of_int c)) links)
    t.obs;
  {
    publish_seq = seq;
    delivered = List.sort compare !delivered;
    missed;
    max_stress;
    link_count = List.length links;
    traversals;
    cost_ms;
  }

let check_invariants t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let check_node node v acc =
    match acc with
    | Error _ -> acc
    | Ok () ->
      if List.length v.children > t.config.degree then
        err "node %d has %d children, degree %d" node (List.length v.children) t.config.degree
      else if List.length (List.sort_uniq compare v.children) <> List.length v.children then
        err "node %d has duplicate children" node
      else if
        List.exists
          (fun c -> match vertex t c with Some cv -> cv.parent <> node | None -> true)
          v.children
      then err "node %d has a child whose parent link disagrees" node
      else if node = t.root && (v.parent >= 0 || is_orphan v) then
        err "root %d has a parent or is orphaned" node
      else if node <> t.root && v.parent < 0 && not (is_orphan v) then
        err "node %d is detached but not orphaned" node
      else if
        v.parent >= 0
        && (match vertex t v.parent with
           | Some pv -> not (List.mem node pv.children)
           | None -> true)
      then err "node %d's parent %d does not list it" node v.parent
      else Ok ()
  in
  match Hashtbl.fold check_node t.nodes (Ok ()) with
  | Error _ as e -> e
  | Ok () ->
    (* Root + orphan roots must cover every vertex exactly once:
       connected (up to orphanhood) and acyclic. *)
    let seen = Hashtbl.create 64 in
    let dup = ref None in
    let rec visit n =
      if Hashtbl.mem seen n then dup := Some n
      else begin
        Hashtbl.replace seen n ();
        List.iter visit (children t n)
      end
    in
    visit t.root;
    List.iter visit (orphans t);
    (match !dup with
    | Some n -> err "node %d reached twice (cycle or shared child)" n
    | None ->
      if Hashtbl.length seen <> Hashtbl.length t.nodes then
        err "forest covers %d of %d nodes (disconnected)" (Hashtbl.length seen)
          (Hashtbl.length t.nodes)
      else Ok ())
