(** Zero-dependency metrics registry.

    A registry interns {e instruments} — counters, gauges and
    sample-retaining histograms — keyed by a name plus a canonical
    (sorted, deduplicated) label set, e.g.
    [histogram m ~labels:[("overlay", "ecan")] "route_hops"].  Asking for
    the same (name, labels) pair again returns the {e same} instrument, so
    library code can re-resolve its instruments cheaply instead of
    threading handles around; asking for it as a different kind raises
    [Invalid_argument].

    Everything is deterministic: snapshots and JSON output are sorted by
    (name, labels), histograms retain the exact sample sequence, and the
    JSON printer ({!Prelude.Json}) formats floats reproducibly — two runs
    of the same seeded experiment serialize to identical bytes, which is
    what lets [BENCH_*.json] files act as regression baselines.

    Instruments are named with [a-zA-Z0-9_.] only.  The registry is not
    thread-safe; the whole engine is single-threaded by design. *)

type labels = (string * string) list
(** Label sets are canonicalized (sorted by key, duplicate keys collapse)
    before lookup, so order does not matter at the call site. *)

type t
(** A registry. *)

type counter
(** Monotonically increasing integer. *)

type gauge
(** Last-write-wins float. *)

type histogram
(** Retains every observed sample (exact quantiles, deterministic JSON). *)

val create : unit -> t
(** Fresh empty registry. *)

val global : t
(** The process-wide default registry.  Experiments record here unless
    handed an explicit registry; [bench --json] serializes it. *)

val reset : t -> unit
(** Drop every instrument (tests, or isolating bench sections). *)

val size : t -> int
(** Number of registered instruments. *)

val counter : t -> ?labels:labels -> string -> counter
(** Intern a counter (starts at 0). *)

val gauge : t -> ?labels:labels -> string -> gauge
(** Intern a gauge (starts at 0). *)

val histogram : t -> ?labels:labels -> string -> histogram
(** Intern a histogram (starts empty). *)

val incr : counter -> unit
val add : counter -> int -> unit
val count : counter -> int

val set : gauge -> float -> unit
val value : gauge -> float

val observe : histogram -> float -> unit
(** Record one sample. *)

val observations : histogram -> int
(** Number of samples recorded. *)

val samples : histogram -> float array
(** Copy of the recorded samples, in observation order. *)

val hmean : histogram -> float
(** Mean of the samples; 0 when empty. *)

val quantile : histogram -> float -> float
(** [quantile h p] with [p] in [0,100] ({!Prelude.Stats.percentile}
    semantics: interpolated, 0 when empty). *)

type hist_summary = {
  n : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
}
(** All-zero when the histogram is empty. *)

val summarize_histogram : histogram -> hist_summary

type snapshot_value = Counter_v of int | Gauge_v of float | Histogram_v of hist_summary

type snapshot_entry = { name : string; labels : labels; v : snapshot_value }

val snapshot : t -> snapshot_entry list
(** Point-in-time view of every instrument, sorted by (name, labels). *)

val schema_version : string
(** The ["schema"] field value of {!to_json} output,
    ["topo-overlay/metrics-v1"].  Bump when the JSON shape changes. *)

val to_json : t -> Prelude.Json.t
(** The stable snapshot schema (see DESIGN.md "Observability"):
    [{"schema": ..., "counters": [{"name","labels","value"}...],
    "gauges": [...], "histograms": [{"name","labels","count","mean","min",
    "max","p50","p90","p95","p99"}...]}], each section sorted by
    (name, labels). *)

val pp : Format.formatter -> t -> unit
(** Human-readable one-instrument-per-line dump, same ordering as
    {!to_json}. *)
