(** Asynchronous RTT probe plane.

    Every RTT measurement a node spends — landmark-vector probing at join,
    per-slot candidate selection, nearest-neighbor search — goes through a
    {e prober}: a simulated-time subsystem that owns the measurement
    function and models what issuing those probes over a real network
    costs in wall-clock time.

    A prober admits probes through a configurable {e concurrency window}
    of [window] in-flight probes per submitted operation; probes beyond
    the window queue FIFO and start as slots free up.  Each attempt is
    subject to an optional per-probe [timeout] and an optional lossy/slow
    channel ({!Faults.perturb}); failed attempts are retried up to
    [retries] times with deterministic exponential backoff, and retry
    exhaustion surfaces as a typed [Error].  Successful measurements can
    be remembered in a TTL'd per-[(src, dst)] RTT cache with hit/miss/
    stale accounting.

    Timing is modelled, not executed: a batch submitted at virtual time
    [t] deterministically computes each member's completion time from the
    measured RTTs, the window occupancy, and the timeout/backoff schedule.
    With [window >= n] a batch of [n] probes completes at [t + max rtt];
    with [window = 1] it degenerates to the sequential path ([t + sum]) —
    byte-identical results, measurement count and order to calling the
    measurement function in a loop, which is the seed behaviour every
    default-configured consumer preserves.

    Determinism rules: measurement order is the submission (FIFO) order,
    slot assignment ties resolve to the lowest slot index, and all
    channel randomness comes from the injector's seeded stream — the same
    seed replays the same batch timings byte for byte.

    With a domain [pool], a batch runs as {e prefetch + ordered replay}
    (DESIGN.md §12): unique uncached destinations are measured in
    parallel into a memo, then the classic sequential schedule replays
    verbatim, consuming each memo entry on that destination's first
    measurement.  Every result, counter, trace span and the underlying
    oracle's call count stay byte-identical to the pool-less path;
    parallelism only changes which domain performs a measurement.  This
    requires the measurement function to be deterministic per [(src,
    dst)] pair and safe to call from worker domains (e.g.
    [Topology.Oracle.measure], whose budget counter is atomic). *)

type config = {
  window : int;  (** concurrent in-flight probes per operation, >= 1 *)
  timeout : float;
      (** per-attempt timeout (ms, > 0); [infinity] = wait forever *)
  retries : int;  (** extra attempts after the first, >= 0 *)
  backoff : float;
      (** backoff before retry [k] (1-based) is [backoff *. 2. ** (k - 1)] ms *)
  cache_ttl : float;  (** RTT cache entry lifetime (ms); 0 disables the cache *)
}

val default_config : config
(** [window = 1], [timeout = infinity], [retries = 0], [backoff = 50.0],
    [cache_ttl = 0.0] — the seed's sequential, uncached, reliable path. *)

type failure = {
  src : int;
  dst : int;
  attempts : int;  (** attempts spent, [retries + 1] on exhaustion *)
}
(** Retry exhaustion: every attempt was lost or timed out. *)

type batch = {
  results : (float, failure) result array;
      (** per-destination outcome, in submission order; [Ok rtt] is the
          measured (possibly channel-delayed) round-trip time *)
  started : float;  (** virtual time the batch was submitted *)
  finished : float;
      (** virtual time the last member completed; [max] over members, so a
          batch that fits the window finishes at [started + max rtt] *)
}

val elapsed : batch -> float
(** [finished -. started]. *)

type t

val create :
  ?metrics:Metrics.t ->
  ?labels:Metrics.labels ->
  ?trace:Trace.t ->
  ?faults:Faults.t ->
  ?sim:Sim.t ->
  ?clock:(unit -> float) ->
  ?pool:Dpool.t ->
  ?config:config ->
  measure:(int -> int -> float) -> unit -> t
(** Fresh prober around a measurement function (typically
    [Topology.Oracle.measure oracle], so probes keep feeding the oracle's
    measurement-budget counter).

    [faults] perturbs each attempt through {!Faults.perturb} (loss and
    extra delay).  [sim] enables {!submit}/{!submit_batch} and provides
    the default clock; [clock] overrides it (default: frozen at 0).

    [pool] turns {!run_batch} into prefetch + ordered replay (see the
    module header); omitted, every measurement runs inline on the calling
    domain.  With a pool, [measure] must be deterministic per pair and
    domain-safe.

    With [metrics], the prober maintains [probe_*] counters and the
    [probe_queue_wait]/[probe_batch_ms] histograms; with both [metrics]
    and [pool] it also maintains [domain_batches]/[domain_tasks] —
    prefetch dispatches and tasks, a function of batch contents alone and
    hence identical across pool sizes.  With [trace], each fresh
    measurement emits an [rtt_probe] span whose note carries the queue
    wait and attempt count ([q=<ms>;try=<n>]).

    Raises [Invalid_argument] on out-of-range config fields. *)

val config : t -> config

val run_batch : t -> src:int -> dsts:int array -> batch
(** Synchronously measure [src]'s RTT to every destination, modelling the
    batch's wall-clock cost under the window/timeout/retry schedule.  The
    measurements happen now (in submission order, cache hits excepted);
    the returned {!batch} carries the modelled completion time.  Cache
    hits resolve instantly without occupying a window slot. *)

val rtt : t -> src:int -> dst:int -> (float, failure) result
(** One-probe {!run_batch}. *)

val submit : t -> src:int -> dst:int -> ((float, failure) result -> unit) -> unit
(** Asynchronous probe: the callback fires on the prober's simulation at
    the probe's modelled completion time.  Raises [Invalid_argument] if
    the prober has no [sim]. *)

val submit_batch : t -> src:int -> dsts:int array -> (batch -> unit) -> unit
(** Asynchronous {!run_batch}: the callback fires at [batch.finished]. *)

val probes : t -> int
(** Probes submitted so far (cache hits included). *)

val failures : t -> int
(** Probes that exhausted their retries. *)

val cache_hits : t -> int
val cache_misses : t -> int

val cache_stale : t -> int
(** Cache lookups that found only an expired entry (counted on top of the
    miss that re-measures). *)

val invalidate : t -> int -> unit
(** Drop every cached RTT touching the given node (either endpoint) —
    call when a node leaves or crashes so its RTTs cannot be served
    stale-fresh. *)

val total_elapsed : t -> float
(** Sum of modelled batch wall-clock times over every synchronous
    {!run_batch}/{!rtt} so far.  Consumers bracket an operation with two
    reads to attribute modelled latency to it (e.g. a node join). *)
