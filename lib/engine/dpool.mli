(** Domain worker pool with per-shard mailboxes.

    Hosts shard-parallel phases of the engine — soft-state sweep scans,
    entry rehosting, probe-batch prefetching — on OCaml 5 [Domain]s while
    keeping the discrete-event engine deterministic.  The contract
    (DESIGN.md §12 "Domain-parallel hosting") is:

    - {b Stable placement.}  Task [i] of an [n]-task batch always runs in
      slot [i mod size]: slot 0 is the coordinator (the caller's domain),
      slot [w > 0] is worker domain [w]'s mailbox.  A shard therefore has
      one home domain for the pool's lifetime and its mutable state
      (expiry heap, host index) is only ever touched from that domain or
      from the coordinator between batches.
    - {b Deterministic merge.}  {!run} returns results indexed by task,
      never by completion order; callers apply cross-shard effects
      sequentially on the coordinator, in task order, so observable state
      is independent of scheduling.  Effects destined for the simulation
      go through {!Sim} and keep its [(time, seq)] order.
    - {b Pool-size transparency.}  A pool of size 1 dispatches nothing and
      runs every task inline, in task order, on the caller — the seed
      path.  Callers must only submit tasks whose combined side effects
      are independent of execution order (disjoint mutable state; shared
      state read-only or atomic), which is what makes size-[n] output
      byte-identical to size-1 output.

    Tasks must not block on the pool they run in: a {!run} issued from
    inside a pool task degrades to inline execution rather than
    deadlocking on its own mailbox. *)

type t

val create : domains:int -> unit -> t
(** Pool of [domains] execution slots: the coordinator plus
    [domains - 1] spawned worker domains, each owning one mailbox.
    [domains = 1] spawns nothing.  Raises [Invalid_argument] outside
    [1..128] (OCaml caps live domains well below structural shard
    counts).  Private pools should be {!shutdown} when done; prefer
    {!get} for long-lived shared pools. *)

val get : domains:int -> t
(** The process-wide interned pool of the given size — created on first
    request, reused afterwards, never shut down.  Use this from
    configuration knobs (e.g. the builder's [domains] field) so repeated
    builds do not spawn domains past the runtime's limit. *)

val default : unit -> t
(** The ambient pool: the {!set_default} override if one is active,
    otherwise [get ~domains:n] with [n] read from the [TOPOAWARE_DOMAINS]
    environment variable (unset, unparsable or out-of-range values mean
    1).  Store and probe constructors fall back to this, which is how a
    CI matrix leg exercises the whole test suite under multi-domain
    hosting without touching call sites. *)

val set_default : t option -> unit
(** Override (or, with [None], restore) what {!default} returns —
    the hook the CLI's [--domains] flag and the determinism property
    tests use. *)

val size : t -> int
(** Number of execution slots (the [domains] the pool was created with). *)

val run : t -> int -> (int -> 'a) -> 'a array
(** [run t n f] evaluates [f i] for every [i] in [0..n-1] — task [i] in
    slot [i mod size t] — and returns the results in task order.  Blocks
    until every task finished.  If any task raised, re-raises the
    exception of the lowest-indexed failed task after the batch drains
    (other tasks may or may not have run — tasks must tolerate that).
    [run t 0 f] is [[||]].  Raises [Invalid_argument] on negative [n]. *)

val run_on : t -> slot:int -> (unit -> 'a) -> 'a
(** [run_on t ~slot f] evaluates [f ()] in slot [slot mod size t] and
    waits for the result — the single-shard dispatch used when a
    maintenance timer sweeps one shard: the work still runs on the
    shard's home domain.  Slot 0 (and any slot on a size-1 pool) runs
    inline. *)

val shutdown : t -> unit
(** Stop and join the pool's worker domains.  Idempotent.  Only for
    pools made with {!create}; interned pools live for the process. *)
