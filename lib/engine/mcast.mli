(** Topology-aware dissemination trees over an overlay.

    The overlay libraries route point-to-point; this module puts a
    one-to-many {e service} on top: a group of subscriber nodes organized
    into a bounded-degree tree rooted at a publisher, every tree edge
    realized as an overlay route.  The module is overlay-agnostic — a
    {!backend} record supplies membership, the overlay route between two
    members, and the candidate relays the soft-state maps propose, so
    the same tree logic runs over eCAN, plain CAN, Chord or Pastry.

    {2 Placement policies}

    Under the {!Aware} policy a joining subscriber is placed under the
    in-tree node with spare degree whose RTT to it is smallest (unknown
    RTT ranks last, ties to the lower node id) — and, when the backend's
    map lookup proposes an out-of-tree member {e strictly} closer than
    every in-tree spare, that member is recruited as an interior
    {e relay}: it attaches under its own best in-tree spare and the
    subscriber attaches under it.  The candidate list is where the
    maps' coordinate/load/capacity fields do the work — a backend wired
    to {!Softstate.Store.lookup} with [?max_load] proposes
    landmark-near, non-overloaded members, and every attach pushes the
    parent's fresh fanout load back through [publish_load] so the maps
    keep skipping saturated relays.  Under {!Random} the parent is a
    seeded uniform draw over the in-tree spares — the control arm: same
    group, same degree bound, no topology knowledge.

    {2 Churn}

    {!drop_member} removes a dead or departed member; its children
    become {e orphans} (timestamped at the drop — the fault instant).
    An orphaned subtree stays internally intact but is skipped by
    publishes until {!regraft} re-attaches its root, excluding its own
    descendants so no cycle can form.  Regraft latency (drop to regraft,
    the injected clock's time) is the tree-repair number this subsystem
    exists to measure; drive {!regraft} from a {!Pubsub.Bus}
    [Departure_of] watch and it includes the soft-state plane's real
    detection delay.

    Everything is deterministic: spare scans iterate in ascending node
    order, the random policy draws from a seeded generator, and all
    timing comes from the injected clock. *)

type policy = Aware | Random

val policy_name : policy -> string
(** ["aware"] / ["random"]. *)

type backend = {
  name : string;  (** label for metrics/tables, e.g. ["ecan"] *)
  member : int -> bool;  (** is the node currently an overlay member? *)
  route_to : src:int -> dst:int -> int list option;
      (** overlay route from a member to a member (both endpoints
          included); [None] when routing fails, e.g. to a departed node *)
  candidates : node:int -> exclude:int list -> int list;
      (** relay proposals for a joining subscriber: members near [node],
          best first, none in [exclude] — wire a soft-state
          [Store.lookup ?max_load] here so overloaded hosts are skipped *)
  publish_load : node:int -> load:float -> unit;
      (** feed a tree node's normalized fanout ([children /. degree]) to
          the backend's load store after every attach *)
}

type config = {
  degree : int;  (** max children per tree node, >= 1 *)
  policy : policy;
  seed : int;  (** drives the {!Random} policy's parent draws *)
}

val default_config : config
(** [degree = 4], [policy = Aware], [seed = 42]. *)

type delivery = {
  publish_seq : int;  (** 0-based publish index *)
  delivered : (int * float * float) list;
      (** (subscriber, delivery latency ms, stretch vs the direct
          overlay route), subscriber-ascending *)
  missed : int list;  (** subscribers skipped (orphaned / unroutable), ascending *)
  max_stress : int;  (** most traversals of one physical link this publish *)
  link_count : int;  (** distinct physical links used *)
  traversals : int;  (** total link traversals (sum over links of stress) *)
  cost_ms : float;
      (** resource usage a la end-system multicast: sum over traversed
          links of stress x physical link latency — the aggregate
          network cost of this publish *)
}

type t

val create :
  ?metrics:Metrics.t ->
  ?labels:Metrics.labels ->
  ?trace:Trace.t ->
  ?clock:(unit -> float) ->
  ?rtt:(src:int -> dst:int -> float option) ->
  ?config:config ->
  link:(int -> int -> float) ->
  root:int ->
  backend ->
  t
(** [create ~link ~root backend] builds a tree holding only the
    publisher [root].  [link u v] is the physical latency between
    route-adjacent nodes (pass [Topology.Oracle.dist]); [rtt] ranks
    parent candidates from the child's side ([None] = currently
    unknown/unreachable, ranked last; defaults to [link] wrapped in
    [Some]) — pass the probe plane's cached measurement here.  [clock]
    (default frozen at 0) timestamps orphanhood.

    With [metrics], the tree maintains [mcast_subscribes] /
    [mcast_relays] / [mcast_publishes] / [mcast_delivered] /
    [mcast_missed] / [mcast_orphaned] / [mcast_regrafts] counters and
    [mcast_delivery_ms] / [mcast_stretch] / [mcast_link_stress] /
    [mcast_regraft_ms] / [mcast_tree_depth] histograms (plus any
    [labels]).  With [trace], every delivery emits an [Mcast_deliver]
    span and every regraft an [Mcast_regraft] span (note
    [dead:<lost parent>] — the victim tag the repair analyzer keys on).

    Raises [Invalid_argument] if [degree < 1] or [root] is not a
    member. *)

val config : t -> config
val backend_name : t -> string
val root : t -> int

val subscribe : t -> int -> unit
(** Join the group: attach the node under a parent chosen by the
    placement policy (recruiting a relay first under {!Aware} when the
    maps propose a strictly closer one).  A node already in the tree as
    a recruited relay is promoted to subscriber in place.  Raises
    [Invalid_argument] if the node is not a member or is already
    subscribed. *)

val drop_member : t -> int -> bool
(** The member died or departed: detach it (its children become orphans,
    timestamped now) and forget it.  Returns [false] (and does nothing)
    if the node is not in the tree.  Raises [Invalid_argument] on the
    root — the publisher cannot be dropped. *)

val regraft : t -> int -> unit
(** Re-attach an orphaned subtree's root under a freshly chosen parent
    (policy placement, the orphan's own descendants excluded), recording
    the orphanhood duration.  Raises [Invalid_argument] if the node is
    not currently an orphan. *)

val publish : t -> delivery
(** Disseminate one message from the root: walk the tree breadth-first,
    realize each edge as an overlay route, accumulate physical latency
    along the path, and deliver to every reachable subscriber.  A child
    whose edge fails to route — and every node below it — is missed, as
    is every orphaned subtree.  Stretch compares against the direct
    overlay route root → subscriber. *)

val members : t -> int list
(** Everything in the tree (root, subscribers, relays, orphans),
    ascending. *)

val subscribers : t -> int list
val relays : t -> int list
(** Recruited interior nodes that never subscribed, ascending. *)

val orphans : t -> int list
(** Current orphaned subtree roots, ascending. *)

val parent_of : t -> int -> int option
(** [None] for the root, for orphans and for nodes not in the tree. *)

val children : t -> int -> int list
(** A node's children in attach order; [[]] if absent. *)

val depth_of : t -> int -> int
(** Edges from the root ([0] for the root itself); [-1] for orphaned
    subtrees and absent nodes. *)

val size : t -> int
val publishes : t -> int
val regrafts : t -> int
val relays_recruited : t -> int

val check_invariants : t -> (unit, string) result
(** Parent/child links are mutually consistent, no node exceeds the
    degree bound, child lists are duplicate-free, and walking down from
    the root plus every orphan root reaches each tree node exactly once
    (connected, acyclic). *)
