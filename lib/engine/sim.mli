(** Deterministic discrete-event simulation core.

    A simulation owns a virtual clock (milliseconds, matching link
    latencies) and an event queue.  Callbacks may schedule further events.
    Execution is single-threaded and fully deterministic: events fire in
    nondecreasing time order, and events scheduled for the same instant
    fire in the order they were scheduled — the total order is the pair
    [(time, seq)] where [seq] is the global scheduling sequence number.

    This ordering is the spine of the {e determinism contract} for
    domain-parallel hosting (DESIGN.md §12): shard work may fan out to
    worker domains between events, but every cross-shard {e effect} is
    applied on the coordinator — either sequentially in task order inside
    the current event, or by scheduling a new event here.  Each timestamp
    runs to completion before the clock advances, and same-instant events
    merge by [(time, seq)], so multi-domain runs replay the single-domain
    event order byte for byte. *)

type t

type timer
(** Handle for a scheduled (possibly periodic) event. *)

val create : ?metrics:Metrics.t -> unit -> t
(** Fresh simulation with the clock at 0.  With [metrics], the engine
    maintains the [sim_events_run] and [sim_events_cancelled] counters
    (cancelled events are counted when they are reaped from the queue). *)

val now : t -> float
(** Current virtual time. *)

val schedule : t -> delay:float -> (unit -> unit) -> timer
(** [schedule sim ~delay f] fires [f] once at [now + delay].  [delay] must
    be >= 0; raises [Invalid_argument] otherwise. *)

val schedule_at : t -> float -> (unit -> unit) -> timer
(** Fire once at an absolute time (>= [now]). *)

val every : t -> period:float -> (unit -> unit) -> timer
(** [every sim ~period f] fires [f] at [now + period], then every [period]
    until cancelled.  [period] must be > 0. *)

val cancel : timer -> unit
(** Cancel a timer; cancelling an already-fired or cancelled timer is a
    no-op.  Cancelling a periodic timer from inside its own callback is
    safe: the occurrence already queued for the next period is deactivated
    and the timer never fires again. *)

val pending : t -> int
(** Number of events still queued (cancelled events may be counted until
    they are reaped). *)

val next_time : t -> float option
(** Timestamp of the earliest queued event, or [None] on an empty queue.
    [next_time t > Some (now t)] exactly when the current instant has run
    to completion — the boundary at which domain-parallel phases are
    allowed to observe state (cancelled events still count until
    reaped). *)

val step : t -> bool
(** Run the next event, advancing the clock.  Returns [false] when the
    queue is empty. *)

val run : ?until:float -> t -> unit
(** Run events until the queue empties or the clock would pass [until]
    (events strictly after [until] remain queued and the clock is advanced
    to [until]). *)
