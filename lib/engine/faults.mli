(** Deterministic fault injection for the discrete-event engine.

    A fault injector owns a seeded RNG from which it derives (a) a {e fault
    plan} — a schedule of membership faults (fail-stop crashes, graceful
    departures, join storms) and soft-state staleness bursts — and (b) a
    {e lossy channel} that perturbs individual message deliveries with
    extra delay or outright loss.

    The injector is engine-level and overlay-agnostic: plan events carry
    {e kinds} of faults, not victims.  The driver that installs the plan
    resolves each event against live overlay state (pick a victim, pick a
    joiner) using its own seeded randomness, and can {!note} the
    resolution into the injector's trace.

    Everything the injector decides is appended to an in-order textual
    trace, so two runs from the same seed can be compared byte for byte —
    the determinism contract the replay tests rely on. *)

type action =
  | Crash  (** fail-stop removal of one member: no retraction, state rots *)
  | Leave  (** graceful departure of one member (proactive retraction) *)
  | Join  (** arrival of one fresh member *)
  | Expire of float
      (** force this fraction of live soft-state entries to expire
          immediately (stale-state injection) *)

type event = { at : float; action : action }

type storm = {
  crashes : int;
  leaves : int;
  joins : int;
  expire_bursts : int;
  expire_fraction : float;
  start : float;  (** first possible fault time (ms) *)
  spread : float;  (** faults fall uniformly in [start, start + spread) *)
}

val default_storm : storm
(** 8 crashes, 8 leaves, 16 joins, 2 staleness bursts of 10%, spread over
    [10 s, 40 s). *)

type channel = {
  loss : float;  (** per-message drop probability *)
  delay_min : float;  (** extra delivery delay, uniform in [min, max) ms *)
  delay_max : float;
}

val reliable : channel
(** No loss, no extra delay. *)

type t

val create : ?channel:channel -> ?trace:Trace.t -> seed:int -> unit -> t
(** Fresh injector.  [channel] defaults to {!reliable}.  With [trace],
    every fired plan event and every channel drop additionally emits a
    [Fault_inject] span (the textual trace of {!trace_digest} is
    unaffected). *)

val seed : t -> int

val plan : t -> storm -> event list
(** Draw a fault plan for the storm, sorted by time (ties keep generation
    order).  Deterministic: the same injector seed and storm always yield
    the same plan.  The plan is recorded in the trace. *)

val install : t -> sim:Sim.t -> plan:event list -> handler:(event -> unit) -> unit
(** Schedule every plan event on the simulation.  When an event fires, it
    is appended to the trace and handed to [handler] for resolution
    against live overlay state. *)

val perturb : t -> float -> float option
(** [perturb t base] decides one message's fate under the channel: [None]
    if it is lost, [Some total_delay] (base + drawn extra) otherwise.
    Consumes the injector's RNG stream and records the decision, so the
    sequence of fates is deterministic from the seed. *)

val messages : t -> int
(** Messages put through {!perturb} so far. *)

val dropped : t -> int
(** Messages {!perturb} decided to drop. *)

val note : t -> string -> unit
(** Append a driver-side resolution (e.g. ["crash 17"]) to the trace. *)

val trace : t -> string list
(** The decision trace so far, in chronological order. *)

val trace_digest : t -> string
(** The whole trace as one string — byte-identical across replays of the
    same seed, the property the determinism tests check. *)
