module Json = Prelude.Json

type kind =
  | Route_hop
  | Rtt_probe
  | Map_publish
  | Notify
  | Ttl_sweep
  | Fault_inject
  | Cache_request
  | Cache_replicate
  | Mcast_deliver
  | Mcast_regraft

let kind_name = function
  | Route_hop -> "route_hop"
  | Rtt_probe -> "rtt_probe"
  | Map_publish -> "map_publish"
  | Notify -> "notify"
  | Ttl_sweep -> "ttl_sweep"
  | Fault_inject -> "fault_inject"
  | Cache_request -> "cache_request"
  | Cache_replicate -> "cache_replicate"
  | Mcast_deliver -> "mcast_deliver"
  | Mcast_regraft -> "mcast_regraft"

type span = {
  seq : int;
  at : float;
  dur : float;
  kind : kind;
  node : int;
  peer : int;
  note : string;
}

let dummy = { seq = -1; at = 0.0; dur = 0.0; kind = Route_hop; node = -1; peer = -1; note = "" }

type t = {
  ring : span array;
  capacity : int;
  clock : unit -> float;
  mutable emitted : int;
  scratch : Buffer.t;  (* arena for note construction; see note_buffer *)
}

let default_capacity = 65_536

let create ?(capacity = default_capacity) ?(clock = fun () -> 0.0) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be >= 1";
  { ring = Array.make capacity dummy; capacity; clock; emitted = 0; scratch = Buffer.create 64 }

let emit t ?at ?(dur = 0.0) ?(peer = -1) ?(note = "") kind ~node =
  let at = match at with Some a -> a | None -> t.clock () in
  let seq = t.emitted in
  t.ring.(seq mod t.capacity) <- { seq; at; dur; kind; node; peer; note };
  t.emitted <- seq + 1

(* Arena-style note path: hot emitters format into the tracer's reused
   scratch buffer ([Printf.bprintf] allocates no intermediate buffer or
   string) and {!emit_noted} materialises exactly one string, sized to
   the note.  The produced bytes are identical to the [sprintf]
   equivalent, so trace-parsing analyses are unaffected. *)
let note_buffer t =
  Buffer.clear t.scratch;
  t.scratch

let emit_noted t ?at ?dur ?peer kind ~node =
  emit t ?at ?dur ?peer ~note:(Buffer.contents t.scratch) kind ~node

let emitted t = t.emitted
let capacity t = t.capacity
let length t = min t.emitted t.capacity
let dropped t = t.emitted - length t

let spans t =
  (* Oldest retained span first.  When the ring has wrapped, the oldest
     retained span is the one the next emit would overwrite. *)
  let len = length t in
  let first = t.emitted - len in
  List.init len (fun i -> t.ring.((first + i) mod t.capacity))

(* Chrome trace event format (complete events, "ph":"X"), one JSON object
   per line.  Chrome expects microseconds; the virtual clock is in
   milliseconds, so scale by 1000. *)
let span_json s =
  Json.Obj
    [
      ("name", Json.String (kind_name s.kind));
      ("cat", Json.String "topo");
      ("ph", Json.String "X");
      ("ts", Json.Float (s.at *. 1000.0));
      ("dur", Json.Float (s.dur *. 1000.0));
      ("pid", Json.Int 0);
      ("tid", Json.Int s.node);
      ( "args",
        Json.Obj
          (("seq", Json.Int s.seq)
           :: ((if s.peer >= 0 then [ ("peer", Json.Int s.peer) ] else [])
              @ if s.note <> "" then [ ("note", Json.String s.note) ] else [])) );
    ]

let pp_jsonl ppf t =
  List.iter (fun s -> Format.fprintf ppf "%s@\n" (Json.to_string (span_json s))) (spans t);
  Format.pp_print_flush ppf ()

let to_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun s ->
      Json.to_buffer buf (span_json s);
      Buffer.add_char buf '\n')
    (spans t);
  Buffer.contents buf
