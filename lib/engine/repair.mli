(** Trace-driven repair-latency analysis and adaptive maintenance tuning.

    The maintenance plane (soft-state maps + pub/sub notifications) earns
    its keep only if stale routing state is repaired {e quickly} after
    churn.  This module measures that claim from {!Trace} span streams
    instead of trusting hand-picked refresh/sweep constants: it correlates
    each injected fault with the notification traffic that repairs it and
    reports the repair-latency distribution, and it packages the inverse —
    a bounded multiplicative controller that {e tunes} the refresh and
    sweep periods from observed repair latencies
    ({!Core.Maintenance.start}'s [?adapt]).

    {2 Correlation rules}

    The analyzer consumes a span list (usually [Trace.spans tracer]) and
    keys on the note conventions the engine's emitters follow:

    - a [Fault_inject] span with [node >= 0] and note ["crash"] or
      ["leave"] is a {e resolved fault}: the subject node is the victim
      and [at] is the injection time ({!Core.Maintenance.node_crashes} /
      [node_departs] emit these);
    - a [Map_publish] span names the published member in [peer] and the
      region in [note]; the set of regions a victim ever published into is
      its {e region set};
    - a [Notify] span's note is ["<tag>:<entry>@<region>"] with [tag] one
      of [pub]/[dep]/[load] ({!Pubsub.Bus}); a [dep] notification about
      the victim, sent at or after the injection (and, when the victim's
      region set is known, in one of its regions), is {e repair traffic}:
      its [at] is the send time (the instant the system {e detected} the
      fault) and [at +. dur] the delivery time;
    - [Ttl_sweep] spans between injection and detection are the sweep
      passes the detection had to wait for.

    Per fault the analyzer reports detection time (first correlated
    notification sent), first-notify and last-notify delivery times (last
    delivery = full repair: every watcher has been told), the count of
    correlated notifications, and the number of republishes into the
    victim's regions up to full repair.  Faults with no correlated
    notification are {e unrepaired}; repaired + unrepaired always equals
    the number of resolved fault spans.  Notifications are attributed to
    the {e latest} fault of that victim at or before their send time, so
    re-injected victims do not cross-talk. *)

type fault_kind = Crash | Leave

type fault = {
  victim : int;
  kind : fault_kind;
  injected_at : float;  (** virtual ms of the resolved [Fault_inject] span *)
}

type record = {
  fault : fault;
  regions : string list;  (** victim's region set, sorted (may be empty) *)
  detected_at : float;  (** send time of the first correlated notification; nan if unrepaired *)
  first_notify : float;  (** earliest delivery completion; nan if unrepaired *)
  last_notify : float;  (** latest delivery completion = full repair; nan if unrepaired *)
  notifies : int;  (** correlated departure notifications *)
  sweeps : int;  (** [Ttl_sweep] spans in (injection, detection] *)
  republishes : int;  (** [Map_publish] spans into the victim's regions in (injection, last_notify] *)
  regraft_ms : float list;
      (** orphanhood durations of [Mcast_regraft] spans whose
          [dead:<victim>] note names this fault's victim (attributed to
          the latest fault at or before the span, like notifications) —
          the {e structural} repair latency when the victim was a
          dissemination-tree interior node; [[]] when no tree was
          traced *)
}

val repaired : record -> bool
(** At least one correlated notification was sent. *)

val detection_ms : record -> float
(** [detected_at -. injected_at]; nan if unrepaired. *)

val first_notify_ms : record -> float
(** [first_notify -. injected_at]; nan if unrepaired. *)

val repair_ms : record -> float
(** [last_notify -. injected_at] — the full repair latency; nan if
    unrepaired. *)

type dist = { n : int; p50 : float; p95 : float; p99 : float; max : float }
(** Quantiles over a latency sample set ({!Prelude.Stats.percentile}
    semantics); all-zero when empty. *)

val dist_of : float array -> dist

type report = {
  records : record list;  (** one per resolved fault, in injection order *)
  repair : dist;  (** full-repair latencies of the repaired faults *)
  detection : dist;  (** detection latencies of the repaired faults *)
  regraft : dist;  (** tree-regraft latencies attributed to any fault *)
  unrepaired : int;
}

val analyze : Trace.span list -> report
(** Correlate one span stream.  Spans may arrive in any order; the
    analyzer sorts by [(at, seq)] internally.  Deterministic: the same
    span list always yields the same report. *)

val record_metrics : ?labels:Metrics.labels -> Metrics.t -> report -> unit
(** Publish a report: [repair_latency_ms] / [repair_detection_ms] /
    [repair_first_notify_ms] histograms (one sample per repaired fault, in
    injection order) and [repair_faults] / [repair_repaired] /
    [repair_unrepaired] counters.  When the report has correlated tree
    regrafts, additionally a [repair_regraft_ms] histogram and a
    [repair_regrafts] counter — registered only then, so a span stream
    without a dissemination tree keeps its instrument set unchanged. *)

(** {2 Adaptive maintenance policy}

    A {!controller} turns observed repair latencies into bounded
    multiplicative adjustments of the two maintenance periods.  The
    control direction follows the soft-state arithmetic: a crashed node's
    entries expire at [last_refresh +. ttl] and are detected by the next
    sweep after that, so when the observed tail is {e over} target the
    controller {e lengthens} the refresh period (staler entries expire
    sooner after a crash) and {e shortens} the sweep period (expiry is
    noticed sooner); comfortably {e under} target it steps both back
    toward the cheap configuration.  Every step multiplies or divides by
    [step] and clamps into the per-period bounds, so the periods can never
    run away — the property the qcheck suite pins down. *)

type policy = {
  target_ms : float;  (** repair-latency ceiling the controller chases; > 0 *)
  headroom : float;
      (** in (0, 1]: relax only when the decision statistic
          < [headroom *. target_ms] *)
  window : int;  (** observed samples per adjustment decision; >= 1 *)
  sample_pct : float;
      (** the decision statistic: the window's [sample_pct] percentile,
          in (0, 100].  100 (the default) is the window max — the
          original worst-sample rule, byte-identical arithmetic.  Lower
          it (e.g. 90) to tune on the delivered-latency {e tail} while
          ignoring the stray worst sample a lossy channel produces. *)
  step : float;  (** multiplicative step per adjustment; > 1 *)
  min_refresh : float;  (** refresh-period clamp, 0 < min <= max *)
  max_refresh : float;
  min_sweep : float;  (** sweep-period clamp, 0 < min <= max *)
  max_sweep : float;
  min_digest : float;
      (** digest-window clamp.  [max_digest = 0] (the default) disables
          digest tuning entirely: the controller never moves the digest
          window and {!digest_window} is [None].  Enabled
          ([max_digest > 0]) requires [0 < min_digest <= max_digest]. *)
  max_digest : float;
}

val default_policy : policy
(** target 25,000 ms, headroom 0.5, window 3, sample_pct 100, step 2.0,
    refresh in [2,500, 120,000] ms, sweep in [500, 60,000] ms, digest
    tuning off. *)

val tunes_digest : policy -> bool
(** [max_digest > 0]. *)

type controller

val controller : ?refresh:float -> ?sweep:float -> ?digest:float -> policy -> controller
(** Fresh controller starting from the given periods (defaults: the
    maintenance defaults, 200,000 / 100,000 ms, digest window 0), clamped
    into the policy bounds (the digest only when tuning is enabled).
    Raises [Invalid_argument] on out-of-range policy fields. *)

val observe : controller -> float -> bool
(** Feed one observed repair latency (ms).  Every [window]-th sample the
    controller decides on the window's [sample_pct] percentile: over
    target tightens (refresh up, sweep down, digest down), under
    [headroom *. target] relaxes, otherwise hold.  Returns [true] iff
    any period changed (the caller should re-arm its timers and, when
    digest tuning is on, push the new window into the bus). *)

val refresh_period : controller -> float
val sweep_period : controller -> float

val digest_window : controller -> float option
(** The controller's current digest window; [None] when the policy does
    not tune it ([max_digest = 0]). *)

val adjustments : controller -> int
(** Decisions that actually moved a period. *)

val observed : controller -> int
(** Samples fed so far. *)
