module Sim = Engine.Sim
module Bus = Pubsub.Bus
module Store = Softstate.Store
module Oracle = Topology.Oracle
module Can_overlay = Can.Overlay
module Ecan_exp = Ecan.Expressway
module Zone = Geometry.Zone

let log_src = Logs.Src.create "topo.maintenance" ~doc:"Soft-state upkeep and pub/sub repair"

module Log = (val Logs.src_log log_src)

type counters = {
  c_reselections : Engine.Metrics.counter;
  c_refreshes : Engine.Metrics.counter;
  c_crashes : Engine.Metrics.counter;
}

(* Extra instruments registered only in adaptive mode, so a non-adaptive
   run's instrument set (and hence its metrics JSON) is unchanged. *)
type adapt_obs = {
  g_refresh : Engine.Metrics.gauge;
  g_sweep : Engine.Metrics.gauge;
  g_digest : Engine.Metrics.gauge option;  (* only when the policy tunes the digest *)
  c_adaptations : Engine.Metrics.counter;
  h_sample : Engine.Metrics.histogram;
}

type t = {
  builder : Builder.t;
  sim : Sim.t;
  bus : Bus.t;
  mutable refresh_period : float;
  mutable sweep_period : float;
  mutable refresh_timer : Sim.timer option;
  mutable sweep_timers : Sim.timer list;
  mutable timers : Sim.timer list;  (* liveness polling, table audit *)
  slot_subs : (int * int * int, Bus.subscription list) Hashtbl.t;
  crash_at : (int, float) Hashtbl.t;  (* victim -> injection time *)
  adapt : Engine.Repair.controller option;
  tracer : Engine.Trace.t option;
  mutable reselections : int;
  mutable refreshes : int;
  mutable crashes : int;
  mutable stopped : bool;
  counters : counters option;
  adapt_obs : adapt_obs option;
}

let overlay_latency builder ~host ~subscriber =
  let ecan = builder.Builder.ecan in
  let can = Ecan_exp.can ecan in
  if host < 0 || (not (Can_overlay.mem can host)) || not (Can_overlay.mem can subscriber) then 0.0
  else begin
    let target = Zone.center (Can_overlay.node can subscriber).Can_overlay.zone in
    match Ecan_exp.route ecan ~src:host target with
    | Some hops -> Measure.path_latency builder.Builder.oracle hops
    | None -> Oracle.dist builder.Builder.oracle host subscriber
  end

(* A refresh cycle is a re-publication: live entries get their TTL bumped
   in place (stats preserved), and entries that expired (or were injected
   stale and swept) are re-published through the bus, so watchers re-learn
   of the still-alive member. *)
let refresh_all t =
  let builder = t.builder in
  let store = builder.Builder.store in
  let can = Ecan_exp.can builder.Builder.ecan in
  let span_bits = builder.Builder.config.Builder.span_bits in
  Array.iter
    (fun node ->
      let path = (Can_overlay.node can node).Can_overlay.path in
      let len = Array.length path / span_bits * span_bits in
      let rec go l =
        if l >= 0 then begin
          let region = Array.sub path 0 l in
          (match Store.find store ~region ~node with
          | Some _ -> Store.refresh store ~region ~node
          | None -> Bus.publish t.bus ~region ~node ~vector:(Builder.vector_of builder node));
          t.refreshes <- t.refreshes + 1;
          (match t.counters with
          | Some c -> Engine.Metrics.incr c.c_refreshes
          | None -> ());
          go (l - span_bits)
        end
      in
      go len)
    (Can_overlay.node_ids can)

let arm_refresh t =
  t.refresh_timer <- Some (Sim.every t.sim ~period:t.refresh_period (fun () -> refresh_all t))

(* Sweeping through the bus turns TTL expiry into departure
   notifications, so watchers of a crashed (never-retracted) node's
   entries eventually learn of its demise even without liveness
   polling.  Each store shard gets its own periodic sweep, staggered
   across the period so no single event touches the whole store; with
   one shard this degenerates to the single sweep-every-period timer. *)
let arm_sweeps t =
  let nshards = Store.shard_count t.builder.Builder.store in
  let period = t.sweep_period in
  t.sweep_timers <-
    List.init nshards (fun i ->
        let offset = period *. float_of_int (i + 1) /. float_of_int nshards in
        Sim.schedule t.sim ~delay:offset (fun () ->
            ignore (Bus.expire_sweep_shard t.bus i);
            let tm =
              Sim.every t.sim ~period (fun () -> ignore (Bus.expire_sweep_shard t.bus i))
            in
            t.sweep_timers <- tm :: t.sweep_timers))

(* Adaptive re-tune: drop the old timers and restart them at the
   controller's periods (each shard's first re-armed sweep lands at its
   stagger offset from now).  [digest] is [Some w] only when the policy
   tunes the digest window; the bus picks the new window up for digests
   opened after this instant. *)
let retune t ~refresh ~sweep ~digest =
  t.refresh_period <- refresh;
  t.sweep_period <- sweep;
  Option.iter (fun w -> Bus.set_digest_window t.bus w) digest;
  Option.iter Sim.cancel t.refresh_timer;
  List.iter Sim.cancel t.sweep_timers;
  t.sweep_timers <- [];
  arm_refresh t;
  arm_sweeps t;
  match t.adapt_obs with
  | Some o ->
    Engine.Metrics.set o.g_refresh refresh;
    Engine.Metrics.set o.g_sweep sweep;
    (match (o.g_digest, digest) with
    | Some g, Some w -> Engine.Metrics.set g w
    | _ -> ());
    Engine.Metrics.incr o.c_adaptations
  | None -> ()

(* The adaptive observation point: a delivered departure notification
   about a node we know crashed is one sample of the repair latency the
   pub/sub plane just achieved for that victim. *)
let observe_notification t (n : Bus.notification) =
  match t.adapt with
  | None -> ()
  | Some ctl ->
    (match n.Bus.event with
    | Bus.Entry_departed { entry_node; _ } ->
      (match Hashtbl.find_opt t.crash_at entry_node with
      | Some t0 ->
        let sample = n.Bus.delivered_at -. t0 in
        (match t.adapt_obs with
        | Some o -> Engine.Metrics.observe o.h_sample sample
        | None -> ());
        if Engine.Repair.observe ctl sample then
          retune t ~refresh:(Engine.Repair.refresh_period ctl)
            ~sweep:(Engine.Repair.sweep_period ctl)
            ~digest:(Engine.Repair.digest_window ctl)
      | None -> ())
    | Bus.Entry_published _ | Bus.Load_changed _ -> ())

let start ~sim ?metrics ?labels ?trace ?(refresh_period = 200_000.0)
    ?(sweep_period = 100_000.0) ?channel ?digest_window ?adapt builder =
  let bus =
    Bus.create ?metrics ?labels ?trace ~sim
      ~latency:(fun ~host ~subscriber -> overlay_latency builder ~host ~subscriber)
      ?channel ?digest_window builder.Builder.store
  in
  let counters =
    Option.map
      (fun m ->
        let labels = Option.value labels ~default:[] in
        {
          c_reselections = Engine.Metrics.counter m ~labels "maintenance_reselections";
          c_refreshes = Engine.Metrics.counter m ~labels "maintenance_refreshes";
          c_crashes = Engine.Metrics.counter m ~labels "maintenance_crashes";
        })
      metrics
  in
  let controller =
    Option.map
      (fun policy ->
        Engine.Repair.controller ~refresh:refresh_period ~sweep:sweep_period
          ~digest:(Option.value digest_window ~default:0.0)
          policy)
      adapt
  in
  let adapt_obs =
    match (controller, metrics) with
    | Some _, Some m ->
      let labels = Option.value labels ~default:[] in
      Some
        {
          g_refresh = Engine.Metrics.gauge m ~labels "maintenance_refresh_period_ms";
          g_sweep = Engine.Metrics.gauge m ~labels "maintenance_sweep_period_ms";
          (* Registered only when the policy tunes the digest: a
             refresh/sweep-only adaptive run keeps its instrument set. *)
          g_digest =
            (if (match adapt with Some p -> Engine.Repair.tunes_digest p | None -> false)
             then Some (Engine.Metrics.gauge m ~labels "maintenance_digest_window_ms")
             else None);
          c_adaptations = Engine.Metrics.counter m ~labels "maintenance_adaptations";
          h_sample = Engine.Metrics.histogram m ~labels "maintenance_repair_sample_ms";
        }
    | _ -> None
  in
  (* A digest-tuning controller clamps the starting window into its
     bounds; keep the bus in agreement from the first digest on. *)
  (match controller with
  | Some c ->
    Option.iter
      (fun w -> if w <> Bus.digest_window bus then Bus.set_digest_window bus w)
      (Engine.Repair.digest_window c)
  | None -> ());
  let t =
    {
      builder;
      sim;
      bus;
      (* The controller may have clamped the starting periods into the
         policy bounds. *)
      refresh_period =
        (match controller with
        | Some c -> Engine.Repair.refresh_period c
        | None -> refresh_period);
      sweep_period =
        (match controller with Some c -> Engine.Repair.sweep_period c | None -> sweep_period);
      refresh_timer = None;
      sweep_timers = [];
      timers = [];
      slot_subs = Hashtbl.create 256;
      crash_at = Hashtbl.create 16;
      adapt = controller;
      tracer = trace;
      reselections = 0;
      refreshes = 0;
      crashes = 0;
      stopped = false;
      counters;
      adapt_obs;
    }
  in
  arm_refresh t;
  arm_sweeps t;
  (match t.adapt_obs with
  | Some o ->
    Engine.Metrics.set o.g_refresh t.refresh_period;
    Engine.Metrics.set o.g_sweep t.sweep_period;
    (match (o.g_digest, controller) with
    | Some g, Some c ->
      Option.iter (fun w -> Engine.Metrics.set g w) (Engine.Repair.digest_window c)
    | _ -> ())
  | None -> ());
  t

let bus t = t.bus

let reselections t = t.reselections
let refreshes t = t.refreshes
let crashes t = t.crashes
let refresh_period t = t.refresh_period
let sweep_period t = t.sweep_period
let controller t = t.adapt

let drop_slot_subs t key =
  match Hashtbl.find_opt t.slot_subs key with
  | Some subs ->
    List.iter (Bus.unsubscribe t.bus) subs;
    Hashtbl.remove t.slot_subs key
  | None -> ()

let stop t =
  t.stopped <- true;
  Option.iter Sim.cancel t.refresh_timer;
  t.refresh_timer <- None;
  List.iter Sim.cancel t.sweep_timers;
  t.sweep_timers <- [];
  List.iter Sim.cancel t.timers;
  t.timers <- [];
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.slot_subs [] in
  List.iter (drop_slot_subs t) keys

(* Re-run selection for one slot and renew its subscriptions. *)
let rec reselect_slot t ~node ~row ~digit =
  if not t.stopped then begin
    let ecan = t.builder.Builder.ecan in
    let can = Ecan_exp.can ecan in
    if Can_overlay.mem can node && row < Ecan_exp.rows ecan node
       && digit <> Ecan_exp.own_digit ecan node ~row
    then begin
      let region = Ecan_exp.region_prefix ecan node ~row ~digit in
      let candidates = Can_overlay.members_with_prefix can region in
      let choice =
        if Array.length candidates = 0 then None
        else
          (Builder.selector t.builder t.builder.Builder.config.Builder.strategy)
            ~node ~region ~candidates
      in
      Ecan_exp.set_entry ecan node ~row ~digit choice;
      t.reselections <- t.reselections + 1;
      (match t.counters with
      | Some c -> Engine.Metrics.incr c.c_reselections
      | None -> ());
      Log.debug (fun m ->
          m "reselected slot (%d,%d,%d) -> %s" node row digit
            (match choice with Some c -> string_of_int c | None -> "-"));
      watch_slot t ~node ~row ~digit
    end
  end

(* Subscribe the slot's owner to its region: a strictly closer newcomer in
   landmark space, or the departure of the current representative, both
   trigger re-selection. *)
and watch_slot t ~node ~row ~digit =
  let key = (node, row, digit) in
  drop_slot_subs t key;
  let ecan = t.builder.Builder.ecan in
  if row < Ecan_exp.rows ecan node && digit <> Ecan_exp.own_digit ecan node ~row then begin
    let region = Ecan_exp.region_prefix ecan node ~row ~digit in
    let vector = Builder.vector_of t.builder node in
    let handler n =
      observe_notification t n;
      reselect_slot t ~node ~row ~digit
    in
    let subs =
      match Ecan_exp.entry ecan node ~row ~digit with
      | Some target ->
        let current = Oracle.dist t.builder.Builder.oracle node target in
        (* Landmark-space proxy for "closer than my current neighbor":
           entries whose vector sits within the current physical distance
           of mine.  Conservative (may over-notify), never misses. *)
        [
          Bus.subscribe t.bus ~subscriber:node ~region
            ~condition:(Bus.Closer_than (vector, current)) ~handler;
          Bus.subscribe t.bus ~subscriber:node ~region ~condition:(Bus.Departure_of target)
            ~handler;
        ]
      | None ->
        [ Bus.subscribe t.bus ~subscriber:node ~region ~condition:Bus.Any_new_entry ~handler ]
    in
    Hashtbl.replace t.slot_subs key subs
  end

let enable_liveness_polling t ?(period = 300_000.0) ~is_alive () =
  let poll () =
    (* Owners poll the liveliness of the nodes their entries describe;
       dead ones are retracted through the bus so departure watchers
       fire (the paper's middle maintenance policy). *)
    List.iter
      (fun node -> if not (is_alive node) then Bus.depart t.bus ~node)
      (Store.described_nodes t.builder.Builder.store)
  in
  let timer = Sim.every t.sim ~period poll in
  t.timers <- timer :: t.timers

let subscribe_all_slots t =
  let ecan = t.builder.Builder.ecan in
  let can = Ecan_exp.can ecan in
  Array.iter
    (fun node ->
      for row = 0 to Ecan_exp.rows ecan node - 1 do
        let own = Ecan_exp.own_digit ecan node ~row in
        for digit = 0 to (1 lsl Ecan_exp.span_bits ecan) - 1 do
          if digit <> own then watch_slot t ~node ~row ~digit
        done
      done)
    (Can_overlay.node_ids can)

let watch_all_slots_of t node =
  let ecan = t.builder.Builder.ecan in
  for row = 0 to Ecan_exp.rows ecan node - 1 do
    let own = Ecan_exp.own_digit ecan node ~row in
    for digit = 0 to (1 lsl Ecan_exp.span_bits ecan) - 1 do
      if digit <> own then watch_slot t ~node ~row ~digit
    done
  done

let node_joins t node =
  let builder = t.builder in
  let can = Ecan_exp.can builder.Builder.ecan in
  (* Through the shared probe plane: joins under maintenance get the same
     concurrency window (and RTT cache) as build-time joins. *)
  let vector =
    Landmark.Landmarks.vector_via builder.Builder.landmarks builder.Builder.prober node
  in
  Hashtbl.replace builder.Builder.vectors node vector;
  ignore
    (Can_overlay.join can node
       (Geometry.Point.random builder.Builder.rng builder.Builder.config.Builder.dims));
  Store.rehost builder.Builder.store;
  (* Publishing through the bus is what lets Closer_than watchers adopt
     the newcomer. *)
  Bus.publish_all t.bus ~span_bits:builder.Builder.config.Builder.span_bits ~node ~vector;
  let selector = Builder.selector builder builder.Builder.config.Builder.strategy in
  Ecan_exp.build_table_for builder.Builder.ecan ~selector node;
  watch_all_slots_of t node;
  (* The node that split its zone for the newcomer sits behind the
     flipped last path bit; its table just gained a row. *)
  let path = (Can_overlay.node can node).Can_overlay.path in
  let len = Array.length path in
  if len > 0 then begin
    let sibling = Array.copy path in
    sibling.(len - 1) <- 1 - sibling.(len - 1);
    let partners = Can_overlay.members_with_prefix can sibling in
    Array.iter
      (fun partner ->
        if Array.length (Can_overlay.node can partner).Can_overlay.path = len then begin
          Ecan_exp.build_table_for builder.Builder.ecan ~selector partner;
          watch_all_slots_of t partner
        end)
      partners
  end

(* Shared removal path: [node_departs] retracts soft state first (the
   proactive policy, watchers notified); [node_crashes] is fail-stop — the
   node vanishes without retraction, its entries rot until the TTL sweep
   or liveness polling turns them into departure notifications. *)
let remove_member t node ~retract =
  let builder = t.builder in
  let can = Ecan_exp.can builder.Builder.ecan in
  (* Dead or departed: its cached RTTs must not answer future probes. *)
  Engine.Probe.invalidate builder.Builder.prober node;
  if retract then Bus.depart t.bus ~node;
  let effect = Can_overlay.leave can node in
  Hashtbl.remove builder.Builder.vectors node;
  Store.rehost builder.Builder.store;
  (* The merge survivor and the backfilled node both changed zones:
     refresh their published regions, tables and watches. *)
  let selector = Builder.selector builder builder.Builder.config.Builder.strategy in
  let refresh_relocated id =
    if id <> node && Can_overlay.mem can id then begin
      Store.unpublish_everywhere builder.Builder.store id;
      Bus.publish_all t.bus ~span_bits:builder.Builder.config.Builder.span_bits ~node:id
        ~vector:(Builder.vector_of builder id);
      Ecan_exp.build_table_for builder.Builder.ecan ~selector id;
      watch_all_slots_of t id
    end
  in
  refresh_relocated effect.Can_overlay.survivor;
  Option.iter refresh_relocated effect.Can_overlay.backfilled;
  (* slots elsewhere whose entries now reference the wrong region get
     re-selected immediately (their watchers are renewed by the reselect) *)
  List.iter
    (fun (id, row, digit) -> reselect_slot t ~node:id ~row ~digit)
    (Builder.stale_slots builder
       (effect.Can_overlay.survivor :: Option.to_list effect.Can_overlay.backfilled));
  (* The departed node's own subscriptions die with it. *)
  let own_keys =
    Hashtbl.fold (fun ((n, _, _) as k) _ acc -> if n = node then k :: acc else acc) t.slot_subs []
  in
  List.iter (drop_slot_subs t) own_keys

(* The victim-tagged fault span [Engine.Repair.analyze] resolves: node =
   victim, note = the fault kind, at = the injection instant.  (The plan
   spans [Engine.Faults] emits carry node = -1 — victims are picked
   driver-side, so only here is the victim known.) *)
let emit_fault_span t node ~note =
  match t.tracer with
  | Some tr -> Engine.Trace.emit tr ~at:(Sim.now t.sim) ~note Engine.Trace.Fault_inject ~node
  | None -> ()

let node_departs t node =
  emit_fault_span t node ~note:"leave";
  remove_member t node ~retract:true

let node_crashes t node =
  t.crashes <- t.crashes + 1;
  (match t.counters with Some c -> Engine.Metrics.incr c.c_crashes | None -> ());
  emit_fault_span t node ~note:"crash";
  Hashtbl.replace t.crash_at node (Sim.now t.sim);
  remove_member t node ~retract:false

let audit_tables t =
  let repaired = ref 0 in
  let ecan = t.builder.Builder.ecan in
  let can = Ecan_exp.can ecan in
  Array.iter
    (fun node ->
      for row = 0 to Ecan_exp.rows ecan node - 1 do
        let own = Ecan_exp.own_digit ecan node ~row in
        for digit = 0 to (1 lsl Ecan_exp.span_bits ecan) - 1 do
          if digit <> own then begin
            let region = Ecan_exp.region_prefix ecan node ~row ~digit in
            let wants_repair =
              match Ecan_exp.entry ecan node ~row ~digit with
              | Some target ->
                (* Dead or relocated-out-of-region representative. *)
                (not (Can_overlay.mem can target))
                ||
                let path = (Can_overlay.node can target).Can_overlay.path in
                Array.length path < Array.length region
                || not (Array.for_all2 ( = ) region (Array.sub path 0 (Array.length region)))
              | None ->
                (* Unfilled slot whose region has members: a publish
                   notification was lost. *)
                Array.length (Can_overlay.members_with_prefix can region) > 0
            in
            if wants_repair then begin
              incr repaired;
              reselect_slot t ~node ~row ~digit
            end
          end
        done
      done)
    (Can_overlay.node_ids can);
  !repaired

let enable_table_audit t ?(period = 400_000.0) () =
  let timer = Sim.every t.sim ~period (fun () -> ignore (audit_tables t)) in
  t.timers <- timer :: t.timers
