module Rng = Prelude.Rng
module Oracle = Topology.Oracle
module Can_overlay = Can.Overlay
module Ecan_exp = Ecan.Expressway
module Store = Softstate.Store
module Landmarks = Landmark.Landmarks
module Number = Landmark.Number
module Point = Geometry.Point

let log_src = Logs.Src.create "topo.builder" ~doc:"Topology-aware overlay construction"

module Log = (val Logs.src_log log_src)

type config = {
  dims : int;
  span_bits : int;
  overlay_size : int;
  landmark_count : int;
  strategy : Strategy.t;
  condense : float;
  ttl : float;
  shards : int;
  curve : Landmark.Number.curve;
  index_dims : int;
  probe : Engine.Probe.config;
  domains : int;
  seed : int;
}

let default_config =
  {
    dims = 2;
    span_bits = 2;
    overlay_size = 4096;
    landmark_count = 15;
    strategy = Strategy.hybrid ~rtts:10 ();
    condense = 1.0;
    ttl = 600_000.0;
    shards = 1;
    curve = Number.Hilbert_curve;
    index_dims = 3;
    probe = Engine.Probe.default_config;
    domains = 0;
    seed = 42;
  }

type join_cost = { vector_ms : float; selection_ms : float }

type t = {
  config : config;
  oracle : Oracle.t;
  ecan : Ecan_exp.t;
  store : Store.t;
  landmarks : Landmarks.t;
  scheme : Number.scheme;
  members : int array;
  vectors : (int, float array) Hashtbl.t;
  prober : Engine.Probe.t;
  rng : Rng.t;
}

let vector_of t node = Hashtbl.find t.vectors node

(* Common shape of the soft-state strategies: one map lookup, then at most
   [rtts] RTT probes, choosing the candidate minimising [score]. *)
let lookup_probe_selector t ~rtts ~lookup_results ~lookup_ttl ~score : Ecan_exp.selector =
 fun ~node ~region ~candidates ->
  let vector = vector_of t node in
  let entries =
    Store.lookup t.store ~region ~vector ~max_results:lookup_results ~ttl:lookup_ttl ()
  in
  let probes =
    List.filteri (fun i _ -> i < rtts)
      (List.filter (fun (e : Store.Entry.t) -> e.Store.Entry.node <> node) entries)
  in
  match probes with
  | [] ->
    (* An empty map (nothing published yet, or over-condensed past the
       lookup's TTL reach): degrade to a blind pick. *)
    Some (Rng.pick t.rng candidates)
  | probes ->
    (* The candidate probes form one batch through the probe plane: at
       window 1 this is the seed's sequential measurement loop, at wider
       windows the slot's selection cost collapses toward the max RTT. *)
    let dsts = Array.of_list (List.map (fun (e : Store.Entry.t) -> e.Store.Entry.node) probes) in
    let batch = Engine.Probe.run_batch t.prober ~src:node ~dsts in
    let best = ref None in
    List.iteri
      (fun i (e : Store.Entry.t) ->
        match batch.Engine.Probe.results.(i) with
        | Error _ -> ()
        | Ok rtt ->
          let s = score ~rtt ~entry:e in
          (match !best with
          | Some (bs, _) when bs <= s -> ()
          | _ -> best := Some (s, e.Store.Entry.node)))
      probes;
    (match !best with Some (_, n) -> Some n | None -> None)

let selector t strategy : Ecan_exp.selector =
  match strategy with
  | Strategy.Random_pick ->
    fun ~node:_ ~region:_ ~candidates -> Some (Rng.pick t.rng candidates)
  | Strategy.Optimal ->
    fun ~node ~region:_ ~candidates ->
      (match Oracle.nearest t.oracle node candidates with
      | Some (best, _) -> Some best
      | None -> None)
  | Strategy.Hybrid { rtts; lookup_results; lookup_ttl } ->
    lookup_probe_selector t ~rtts ~lookup_results ~lookup_ttl ~score:(fun ~rtt ~entry:_ -> rtt)
  | Strategy.Load_aware { rtts; lookup_results; lookup_ttl; load_weight } ->
    lookup_probe_selector t ~rtts ~lookup_results ~lookup_ttl ~score:(fun ~rtt ~entry ->
        rtt *. (1.0 +. (load_weight *. entry.Store.Entry.load)))

let build ?metrics ?labels ?trace ?(clock = fun () -> 0.0) oracle config =
  if config.overlay_size < 1 then invalid_arg "Builder.build: overlay_size must be >= 1";
  if config.overlay_size > Oracle.node_count oracle then
    invalid_arg "Builder.build: overlay larger than the topology";
  if config.landmark_count < config.index_dims then
    invalid_arg "Builder.build: need at least index_dims landmarks";
  let rng = Rng.create config.seed in
  let member_rng = Rng.split rng in
  let join_rng = Rng.split rng in
  let landmark_rng = Rng.split rng in
  let all = Array.init (Oracle.node_count oracle) (fun i -> i) in
  let members = Rng.sample member_rng config.overlay_size all in
  let can = Can_overlay.create ?metrics ?labels ?trace ~dims:config.dims members.(0) in
  for i = 1 to Array.length members - 1 do
    ignore (Can_overlay.join can members.(i) (Point.random join_rng config.dims))
  done;
  let ecan = Ecan_exp.create ?metrics ?labels ?trace ~span_bits:config.span_bits can in
  let landmarks = Landmarks.choose landmark_rng oracle config.landmark_count in
  let max_latency = Number.calibrate_max_latency oracle (Landmarks.nodes landmarks) in
  let scheme =
    { (Number.default_scheme ~curve:config.curve ~max_latency ()) with
      Number.index_dims = min config.index_dims config.landmark_count }
  in
  if config.domains < 0 then invalid_arg "Builder.build: domains must be >= 0";
  (* domains = 0 defers to the ambient pool (TOPOAWARE_DOMAINS or a
     Dpool.set_default override); n >= 1 pins an interned n-domain pool.
     Either way the store and prober share one pool, and by the DESIGN.md
     §12 contract the choice never changes any result or metric. *)
  let pool =
    if config.domains = 0 then Engine.Dpool.default ()
    else Engine.Dpool.get ~domains:config.domains
  in
  let store =
    Store.create ?metrics ?labels ?trace ~pool ~shards:config.shards ~condense:config.condense
      ~default_ttl:config.ttl ~clock ~scheme can
  in
  let prober =
    Engine.Probe.create ?metrics ?labels ?trace ~clock ~pool ~config:config.probe
      ~measure:(Oracle.measure oracle) ()
  in
  let vectors = Hashtbl.create (Array.length members) in
  Array.iter
    (fun node ->
      let vector = Landmarks.vector_via landmarks prober node in
      Hashtbl.replace vectors node vector;
      Store.publish_all store ~span_bits:config.span_bits ~node ~vector)
    members;
  let t = { config; oracle; ecan; store; landmarks; scheme; members; vectors; prober; rng } in
  Ecan_exp.build_tables ecan ~selector:(selector t config.strategy);
  Log.info (fun m ->
      m "built overlay: %d members, %d landmarks, strategy %s" (Array.length members)
        config.landmark_count
        (Strategy.to_string config.strategy));
  t

let rebuild_tables t strategy =
  Ecan_exp.build_tables t.ecan ~selector:(selector t strategy)

let join_node t node =
  let can = Ecan_exp.can t.ecan in
  let e0 = Engine.Probe.total_elapsed t.prober in
  let vector = Landmarks.vector_via t.landmarks t.prober node in
  let e1 = Engine.Probe.total_elapsed t.prober in
  Hashtbl.replace t.vectors node vector;
  ignore (Can_overlay.join can node (Point.random t.rng t.config.dims));
  Store.rehost t.store;
  Store.publish_all t.store ~span_bits:t.config.span_bits ~node ~vector;
  Ecan_exp.build_table_for t.ecan ~selector:(selector t t.config.strategy) node;
  let e2 = Engine.Probe.total_elapsed t.prober in
  Log.debug (fun m -> m "node %d joined" node);
  { vector_ms = e1 -. e0; selection_ms = e2 -. e1 }

(* Table slots whose entry targets one of the relocated nodes but whose
   region no longer contains that target (zone takeover moves nodes). *)
let stale_slots t relocated =
  let can = Ecan_exp.can t.ecan in
  let in_region region target =
    let path = (Can_overlay.node can target).Can_overlay.path in
    Array.length path >= Array.length region
    && Array.for_all2 ( = ) region (Array.sub path 0 (Array.length region))
  in
  Array.fold_left
    (fun acc id ->
      List.fold_left
        (fun acc (row, digit, target) ->
          if List.mem target relocated then begin
            let region = Ecan_exp.region_prefix t.ecan id ~row ~digit in
            if in_region region target then acc else (id, row, digit) :: acc
          end
          else acc)
        acc (Ecan_exp.entries t.ecan id))
    [] (Can_overlay.node_ids can)

let clear_stale_entries t relocated =
  List.iter
    (fun (id, row, digit) -> Ecan_exp.set_entry t.ecan id ~row ~digit None)
    (stale_slots t relocated)

let leave_node t node =
  let can = Ecan_exp.can t.ecan in
  (* A departed node's cached RTTs must not satisfy future probes. *)
  Engine.Probe.invalidate t.prober node;
  Store.unpublish_everywhere t.store node;
  let effect = Can_overlay.leave can node in
  Hashtbl.remove t.vectors node;
  Store.rehost t.store;
  (* Clear dangling expressway entries that pointed at the departed node;
     re-selection is pub/sub's job. *)
  Array.iter
    (fun id ->
      List.iter
        (fun (row, digit, target) ->
          if target = node then Ecan_exp.set_entry t.ecan id ~row ~digit None)
        (Ecan_exp.entries t.ecan id))
    (Can_overlay.node_ids can);
  (* The takeover changed two nodes' zones; their tables must follow. *)
  let selector = selector t t.config.strategy in
  let rebuild id =
    if id <> node && Can_overlay.mem can id then begin
      Store.unpublish_everywhere t.store id;
      Store.publish_all t.store ~span_bits:t.config.span_bits ~node:id
        ~vector:(vector_of t id);
      Ecan_exp.build_table_for t.ecan ~selector id
    end
  in
  rebuild effect.Can_overlay.survivor;
  Option.iter rebuild effect.Can_overlay.backfilled;
  (* Entries elsewhere that pointed at the relocated nodes may now
     reference the wrong region; clear them (pub/sub re-selects). *)
  clear_stale_entries t
    (effect.Can_overlay.survivor :: Option.to_list effect.Can_overlay.backfilled);
  Log.debug (fun m ->
      m "node %d left (survivor %d, backfilled %s)" node effect.Can_overlay.survivor
        (match effect.Can_overlay.backfilled with Some b -> string_of_int b | None -> "-"))
