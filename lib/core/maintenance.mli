(** Soft-state upkeep and demand-driven neighbor re-selection (§5.2).

    Ties the overlay to the discrete-event engine: members periodically
    refresh their published soft state (which otherwise expires), expired
    entries are swept, and members subscribe to the map regions behind
    their expressway table slots so that the appearance of a closer
    candidate — or the departure of the current one — triggers a
    re-selection instead of a periodic blind poll. *)

type t

val start :
  sim:Engine.Sim.t ->
  ?metrics:Engine.Metrics.t ->
  ?labels:Engine.Metrics.labels ->
  ?trace:Engine.Trace.t ->
  ?refresh_period:float ->
  ?sweep_period:float ->
  ?channel:(float -> float option) ->
  ?digest_window:float ->
  ?adapt:Engine.Repair.policy ->
  Builder.t ->
  t
(** Begin periodic refresh (default every 200,000 ms, well inside the
    default 600,000 ms TTL) and expiry sweeps (default every 100,000 ms).
    Sweeps run through the bus, so TTL expiry of a never-retracted entry
    (a crashed node) notifies its [Departure_of] watchers.  When the
    builder's store is sharded ([config.shards] > 1), each shard gets its
    own sweep timer, staggered evenly across the sweep period, so one
    sweep event never walks the whole store.  (Staggering composes with
    domain-parallel hosting: each per-shard sweep event scans its shard's
    heap on the shard's home pool slot and applies the purges on the
    coordinator, per the DESIGN.md §12 contract — timers decide {e when}
    a shard is swept, the pool decides {e where} the scan runs, and
    neither choice affects results.)  [channel] and
    [digest_window] are passed to {!Pubsub.Bus.create} — wire
    {!Engine.Faults.perturb} into [channel] to subject notification
    delivery to loss and extra delay; a positive [digest_window] batches
    per-(subscriber, region) notifications into digests.  The builder
    must have been constructed with [~clock] reading this simulation's
    time for expiry to be meaningful.

    [metrics] / [labels] / [trace] are handed to the bus (notification
    counters and [Notify] spans) and additionally maintain
    [maintenance_reselections] / [maintenance_refreshes] /
    [maintenance_crashes] counters mirroring {!reselections} /
    {!refreshes} / {!crashes}.  With [trace], every {!node_crashes} /
    {!node_departs} call also emits a victim-tagged [Fault_inject] span
    (node = victim, note = ["crash"] / ["leave"]) — the anchor
    {!Engine.Repair.analyze} correlates repair traffic against.

    [adapt] (default off) turns on adaptive maintenance: an
    {!Engine.Repair.controller} seeded with the starting periods (clamped
    into the policy bounds) observes the repair latency of every delivered
    departure notification about a node previously passed to
    {!node_crashes}, deciding on the window's [sample_pct] percentile of
    those delivered latencies, and whenever the controller moves, the
    refresh and sweep timers are cancelled and re-armed at the new
    periods.  A policy with [max_digest > 0] additionally tunes the bus's
    digest window ({!Pubsub.Bus.set_digest_window} — digests already open
    keep their schedule), starting from [digest_window] clamped into the
    digest bounds.  Without [adapt] nothing is observed, no extra
    instruments are registered, and scheduling is byte-identical to
    earlier releases.  With both [adapt] and [metrics], the run
    additionally maintains [maintenance_refresh_period_ms] /
    [maintenance_sweep_period_ms] gauges, a [maintenance_adaptations]
    counter and a [maintenance_repair_sample_ms] histogram — plus a
    [maintenance_digest_window_ms] gauge when the policy tunes the
    digest. *)

val bus : t -> Pubsub.Bus.t
(** The pub/sub bus wired to the overlay's store.  Notification delivery
    latency models dissemination over the overlay (the physical latency
    of the eCAN route from the map host to the subscriber). *)

val stop : t -> unit
(** Cancel the periodic timers and deactivate the subscriptions. *)

val enable_liveness_polling : t -> ?period:float -> is_alive:(int -> bool) -> unit -> unit
(** §5.2's middle maintenance policy: map hosts periodically poll the
    liveliness of the nodes whose entries they store and retract (with
    departure notifications) the entries of dead ones.  [is_alive]
    defaults the polling to overlay membership when you pass
    [Can.Overlay.mem]; any predicate works (e.g. a failure injector).
    [period] defaults to 300,000 ms.  Stopped by {!stop}. *)

val subscribe_all_slots : t -> unit
(** Every member subscribes, for each filled table slot, to the slot's
    region with a [Closer_than] condition at its current representative
    distance, plus a [Departure_of] watch on the representative.  Matching
    notifications re-run selection for just that slot. *)

val node_departs : t -> int -> unit
(** Proactive departure of a member: retract its soft state (notifying
    watchers), remove it from the overlay, rehost entries. *)

val node_crashes : t -> int -> unit
(** Fail-stop failure: the member vanishes from the overlay (the
    simulator's global view stands in for CAN's zone-takeover protocol,
    run by the surviving nodes) but its soft-state entries are NOT
    retracted — they linger, unrefreshed, until the TTL sweep or liveness
    polling turns them into departure notifications.  Routing-table slots
    pointing at the dead node dangle until that detection triggers
    re-selection. *)

val enable_table_audit : t -> ?period:float -> unit -> unit
(** Periodic local self-check (default every 400,000 ms): each member
    walks its own expressway slots and re-runs selection for any slot
    whose representative is dead or no longer inside the slot's region,
    and for any unfilled slot whose region has members — the safety net
    that re-converges tables when a notification was lost by a faulty
    channel.  Stopped by {!stop}. *)

val audit_tables : t -> int
(** One immediate audit pass; returns the number of slots repaired. *)

val node_joins : t -> int -> unit
(** Dynamic join through the pub/sub plane: the newcomer enters the CAN,
    publishes its soft state via the bus (so [Closer_than] /
    [Any_new_entry] watchers fire), builds and watches its own table, and
    the node whose zone was split refreshes its (now deeper) table. *)

val reselections : t -> int
(** Number of slot re-selections performed so far (observability). *)

val refreshes : t -> int
(** Number of entry refreshes performed so far. *)

val crashes : t -> int
(** Number of fail-stop failures injected so far. *)

val refresh_period : t -> float
(** The refresh period currently armed (changes only under [?adapt]). *)

val sweep_period : t -> float
(** The sweep period currently armed (changes only under [?adapt]). *)

val controller : t -> Engine.Repair.controller option
(** The adaptive controller, when [?adapt] was given. *)
