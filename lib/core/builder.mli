(** Construction of a topology-aware overlay over a physical topology.

    [build] performs the paper's whole pipeline: sample the overlay
    membership, grow the CAN/eCAN by successive joins, pick landmarks,
    measure every member's landmark vector, publish all members into the
    global soft-state maps, and fill the expressway routing tables with
    the configured neighbor-selection strategy. *)

type config = {
  dims : int;  (** CAN dimensionality (paper default 2) *)
  span_bits : int;  (** eCAN digit width, k = 2^span_bits zones per higher order *)
  overlay_size : int;  (** number of overlay members *)
  landmark_count : int;
  strategy : Strategy.t;
  condense : float;  (** map condense/reduction rate *)
  ttl : float;  (** soft-state entry lifetime, ms *)
  shards : int;  (** soft-state expiry shards (see {!Softstate.Store.create}) *)
  curve : Landmark.Number.curve;  (** space-filling curve for landmark numbers *)
  index_dims : int;  (** landmark-vector-index components *)
  probe : Engine.Probe.config;
      (** probe-plane configuration shared by every RTT measurement the
          overlay spends (landmark vectors, per-slot selection) *)
  domains : int;
      (** domain pool hosting the store's shard-parallel phases and the
          prober's batch prefetch: [0] (the default) uses the ambient
          {!Engine.Dpool.default} pool (the [TOPOAWARE_DOMAINS]
          environment variable, or 1); [n >= 1] pins the interned
          [n]-domain pool.  By the determinism contract (DESIGN.md §12)
          the value never changes results or metrics — only wall-clock. *)
  seed : int;
}

val default_config : config
(** Table 2 defaults: 2-d eCAN, span 2, 4096 members, 15 landmarks,
    [Hybrid {rtts = 10}], condense 1.0, ttl 600,000 ms, 1 shard, Hilbert,
    index_dims 3, probe {!Engine.Probe.default_config} (sequential,
    uncached — the seed path), domains 0 (ambient pool), seed 42. *)

type join_cost = {
  vector_ms : float;  (** modelled wall-clock of the landmark-vector batch *)
  selection_ms : float;  (** modelled wall-clock of per-slot candidate probing *)
}
(** Modelled latency breakdown of one {!join_node} (the RTT-probe phases;
    map lookups and publishes are accounted separately by the bus). *)

type t = {
  config : config;
  oracle : Topology.Oracle.t;
  ecan : Ecan.Expressway.t;
  store : Softstate.Store.t;
  landmarks : Landmark.Landmarks.t;
  scheme : Landmark.Number.scheme;
  members : int array;  (** overlay member node ids (physical ids) *)
  vectors : (int, float array) Hashtbl.t;  (** member -> landmark vector *)
  prober : Engine.Probe.t;
      (** the shared probe plane ([config.probe]) every measurement —
          build, join, re-selection — drains through *)
  rng : Prelude.Rng.t;  (** generator for post-build sampling *)
}

val build :
  ?metrics:Engine.Metrics.t ->
  ?labels:Engine.Metrics.labels ->
  ?trace:Engine.Trace.t ->
  ?clock:(unit -> float) ->
  Topology.Oracle.t ->
  config ->
  t
(** Build the overlay.  Raises [Invalid_argument] if [overlay_size]
    exceeds the topology size or parameters are out of range.  [clock]
    feeds the soft-state store (defaults to a frozen clock).

    [metrics] / [labels] / [trace] are threaded into the CAN overlay, the
    eCAN expressway, and the soft-state store, so one registry observes
    the whole stack (see {!Engine.Metrics} for the instrument names each
    layer registers). *)

val vector_of : t -> int -> float array
(** Landmark vector of a member.  Raises [Not_found] for non-members. *)

val selector : t -> Strategy.t -> Ecan.Expressway.selector
(** The eCAN selector implementing a strategy against this overlay's
    soft-state and oracle (exposed so tables can be rebuilt under a
    different strategy without reconstructing the overlay). *)

val rebuild_tables : t -> Strategy.t -> unit
(** Re-run neighbor selection for every member under a new strategy. *)

val join_node : t -> int -> join_cost
(** Dynamic join of a fresh physical node: measures its landmark vector
    (one concurrent batch through the prober), inserts it into the CAN at
    a random point, publishes its soft state and builds its routing table
    under [t.config.strategy].  Existing entries are rehosted to reflect
    the new zone map.  Returns the modelled probe-latency breakdown: with
    probe window >= landmark count the vector phase costs the {e max}
    landmark RTT instead of the sum. *)

val stale_slots : t -> int list -> (int * int * int) list
(** Table slots [(node, row, digit)] whose entry targets one of the given
    relocated members but whose region no longer contains that target —
    the residue a zone takeover leaves in other nodes' tables. *)

val leave_node : t -> int -> unit
(** Dynamic departure (proactive policy): retract soft state, remove from
    the CAN, rehost the remaining entries and clear dangling table
    entries. *)
