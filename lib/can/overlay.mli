(** CAN: content-addressable network over the unit torus.

    Every member node owns exactly one zone; the zones tile the space.
    Zones form a binary split tree (split dimension cycles with depth), so
    every zone is identified by its {e path} — the bit string of split
    decisions from the full space down to the zone.  Paths double as the
    prefix scheme eCAN builds its high-order zones on.

    The structure is a simulator-global view: node ids are the underlying
    physical node ids, and operations mutate shared state directly, but
    [join] and [route] walk the overlay hop by hop so logical path lengths
    are faithful. *)

type node = private {
  id : int;
  mutable zone : Geometry.Zone.t;
  mutable path : int array;  (** split bits, root to leaf *)
  mutable neighbors : int list;  (** ids of CAN neighbors, unordered *)
}

type t

val max_depth : int
(** Zone paths are capped at 60 bits; a join that would split deeper
    raises. *)

val create :
  ?metrics:Engine.Metrics.t ->
  ?labels:Engine.Metrics.labels ->
  ?trace:Engine.Trace.t ->
  dims:int ->
  int ->
  t
(** [create ~dims first] starts an overlay whose sole member [first] owns
    the entire space.

    With [metrics], the overlay maintains [route_requests] /
    [route_failures] counters and [route_hops] / [join_hops] histograms,
    labeled [overlay=can] plus any extra [labels].  With [trace], every
    successful {!route} additionally emits one [Route_hop] span per
    forwarding step. *)

val dims : t -> int
val size : t -> int

val mem : t -> int -> bool
val node : t -> int -> node
(** Raises [Not_found] for non-members. *)

val node_ids : t -> int array
(** Current members, in unspecified order. *)

val owner_of : t -> Geometry.Point.t -> int
(** The member whose zone contains the point (O(depth), via the split
    tree — no routing). *)

val join : t -> ?start:int -> int -> Geometry.Point.t -> int list
(** [join t ~start id p]: new member [id] picks point [p], the overlay
    routes from [start] (default: the first member) to the owner of [p],
    whose zone splits; the newcomer takes the half containing [p].
    Returns the logical route walked (node ids, start to old owner).
    Raises [Invalid_argument] if [id] is already a member. *)

type leave_effect = {
  survivor : int;  (** node whose zone grew by the merge *)
  backfilled : int option;
      (** node relocated into the vacated zone ([None] when the leaver's
          own sibling absorbed it directly) *)
}

val leave : t -> int -> leave_effect
(** Remove a member.  The vacated zone is taken over CAN-style: the
    deepest leaf pair of the tree merges and the freed node backfills the
    vacated zone (one-zone-per-node is preserved).  O(size).  The returned
    effect names the nodes whose zones (and hence routing state) changed,
    so higher layers can rebuild their tables. *)

val route : t -> src:int -> Geometry.Point.t -> int list option
(** Greedy routing from [src] to the owner of a point.  Returns the hop
    list including both endpoints ([None] only if greedy forwarding fails,
    which does not happen on consistent state).  Each hop goes to the
    neighbor whose zone is closest to the target on the torus. *)

val route_proximity :
  t -> dist:(int -> int -> float) -> src:int -> Geometry.Point.t -> int list option
(** {e Proximity routing} (Castro et al.'s second category, evaluated in
    the taxonomy ablation): the overlay is built topology-blind, but each
    hop picks the {e physically closest} neighbor among those that make
    geometric progress toward the target ([dist u v] is the physical
    latency between nodes).  Falls back to plain greedy when no
    progressing neighbor exists. *)

val path_of_point : t -> depth:int -> Geometry.Point.t -> int array
(** First [depth] split bits of the point's location — the target "digit
    string" used by eCAN expressway routing. *)

val zone_of_path : dims:int -> int array -> Geometry.Zone.t
(** The dyadic box a path denotes. *)

val members_with_prefix : t -> int array -> int array
(** Members whose path starts with the given bits (the population of a
    high-order zone).  O(result). *)

val check_invariants : t -> (unit, string) result
(** Testing hook: zones tile the space (volumes sum to 1, paths form an
    exact prefix-free tree cover), every node's zone matches its path,
    neighbor lists are symmetric and geometrically correct. *)
