module Zone = Geometry.Zone
module Point = Geometry.Point

type node = {
  id : int;
  mutable zone : Zone.t;
  mutable path : int array;
  mutable neighbors : int list;
}

type obs = {
  requests : Engine.Metrics.counter;
  failures : Engine.Metrics.counter;
  hops : Engine.Metrics.histogram;
  join_hops : Engine.Metrics.histogram;
  tracer : Engine.Trace.t option;
}

type t = {
  dims : int;
  nodes : (int, node) Hashtbl.t;
  by_path : (int, int) Hashtbl.t;  (* exact path key -> owner id *)
  prefix_members : (int, int list ref) Hashtbl.t;  (* prefix key -> member ids *)
  mutable rep : int;  (* arbitrary live member, default routing start *)
  obs : obs option;
}

let max_depth = 60

(* A path (bit string, MSB first) encoded as an int with a leading
   sentinel bit, so different lengths never collide. *)
let path_key bits len =
  let acc = ref 1 in
  for i = 0 to len - 1 do
    acc := (!acc lsl 1) lor bits.(i)
  done;
  !acc

let zone_of_path ~dims bits =
  let z = ref (Zone.full dims) in
  Array.iteri
    (fun depth b ->
      let lower, upper = Zone.split !z (Zone.split_dim_at_depth dims depth) in
      z := if b = 0 then lower else upper)
    bits;
  !z

let index_add t n =
  Hashtbl.replace t.by_path (path_key n.path (Array.length n.path)) n.id;
  for len = 0 to Array.length n.path do
    let key = path_key n.path len in
    match Hashtbl.find_opt t.prefix_members key with
    | Some l -> l := n.id :: !l
    | None -> Hashtbl.replace t.prefix_members key (ref [ n.id ])
  done

let index_remove t n =
  Hashtbl.remove t.by_path (path_key n.path (Array.length n.path));
  for len = 0 to Array.length n.path do
    let key = path_key n.path len in
    match Hashtbl.find_opt t.prefix_members key with
    | Some l ->
      l := List.filter (fun id -> id <> n.id) !l;
      if !l = [] then Hashtbl.remove t.prefix_members key
    | None -> ()
  done

let make_obs ?metrics ?(labels = []) ?trace ~overlay () =
  Option.map
    (fun m ->
      let labels = ("overlay", overlay) :: labels in
      {
        requests = Engine.Metrics.counter m ~labels "route_requests";
        failures = Engine.Metrics.counter m ~labels "route_failures";
        hops = Engine.Metrics.histogram m ~labels "route_hops";
        join_hops = Engine.Metrics.histogram m ~labels "join_hops";
        tracer = trace;
      })
    metrics

(* Account one finished [route] call: hop histogram + per-hop spans on
   success, a failure counter otherwise.  Identity on the result. *)
let observe_route t result =
  (match t.obs with
  | None -> ()
  | Some o ->
    Engine.Metrics.incr o.requests;
    (match result with
    | Some hops ->
      Engine.Metrics.observe o.hops (float_of_int (List.length hops - 1));
      Option.iter
        (fun tr ->
          let rec go = function
            | a :: (b :: _ as rest) ->
              Engine.Trace.emit tr ~peer:b Engine.Trace.Route_hop ~node:a;
              go rest
            | [ _ ] | [] -> ()
          in
          go hops)
        o.tracer
    | None -> Engine.Metrics.incr o.failures));
  result

let create ?metrics ?labels ?trace ~dims first =
  if dims < 1 then invalid_arg "Can.create: dims must be >= 1";
  let t =
    {
      dims;
      nodes = Hashtbl.create 64;
      by_path = Hashtbl.create 64;
      prefix_members = Hashtbl.create 64;
      rep = first;
      obs = make_obs ?metrics ?labels ?trace ~overlay:"can" ();
    }
  in
  let n = { id = first; zone = Zone.full dims; path = [||]; neighbors = [] } in
  Hashtbl.replace t.nodes first n;
  index_add t n;
  t

let dims t = t.dims
let size t = Hashtbl.length t.nodes
let mem t id = Hashtbl.mem t.nodes id
let node t id = Hashtbl.find t.nodes id

let node_ids t =
  let arr = Array.make (size t) 0 in
  let i = ref 0 in
  Hashtbl.iter
    (fun id _ ->
      arr.(!i) <- id;
      incr i)
    t.nodes;
  arr

let path_bit ~dims zone depth point =
  let dim = Zone.split_dim_at_depth dims depth in
  let mid = (zone.Zone.lo.(dim) +. zone.Zone.hi.(dim)) /. 2.0 in
  if point.(dim) >= mid then 1 else 0

(* The split walk only ever narrows one dimension per level and only the
   bounds of that dimension are consulted, so both descents below track
   per-dimension lo/hi in two flat arrays instead of allocating two zone
   records per split (Zone.split copies both bound arrays twice).  The
   produced bits are identical: the midpoint and the chosen half are
   computed from the same float values Zone.split would have stored. *)

let path_of_point t ~depth point =
  if Array.length point <> t.dims then invalid_arg "Can.path_of_point: dimension mismatch";
  let lo = Array.make t.dims 0.0 and hi = Array.make t.dims 1.0 in
  Array.init depth (fun d ->
      let dim = Zone.split_dim_at_depth t.dims d in
      let mid = (lo.(dim) +. hi.(dim)) /. 2.0 in
      if point.(dim) >= mid then begin
        lo.(dim) <- mid;
        1
      end
      else begin
        hi.(dim) <- mid;
        0
      end)

let owner_of t point =
  if Array.length point <> t.dims then invalid_arg "Can.owner_of: dimension mismatch";
  let lo = Array.make t.dims 0.0 and hi = Array.make t.dims 1.0 in
  let bits = Array.make max_depth 0 in
  let rec descend depth =
    if depth > max_depth then failwith "Can.owner_of: tree deeper than max_depth"
    else begin
      match Hashtbl.find_opt t.by_path (path_key bits depth) with
      | Some id -> id
      | None ->
        let dim = Zone.split_dim_at_depth t.dims depth in
        let mid = (lo.(dim) +. hi.(dim)) /. 2.0 in
        if point.(dim) >= mid then begin
          lo.(dim) <- mid;
          bits.(depth) <- 1
        end
        else begin
          hi.(dim) <- mid;
          bits.(depth) <- 0
        end;
        descend (depth + 1)
    end
  in
  descend 0

let route_uninstrumented t ~src point =
  let visited = Hashtbl.create 32 in
  let rec go u acc =
    if Zone.contains u.zone point then Some (List.rev (u.id :: acc))
    else begin
      Hashtbl.replace visited u.id ();
      let best = ref None in
      let consider id =
        if not (Hashtbl.mem visited id) then begin
          let v = node t id in
          let d = Zone.min_torus_dist v.zone point in
          match !best with
          | Some (bd, bid, _) when (bd, bid) <= (d, id) -> ()
          | _ -> best := Some (d, id, v)
        end
      in
      List.iter consider u.neighbors;
      match !best with
      | None -> None
      | Some (_, _, v) -> go v (u.id :: acc)
    end
  in
  go (node t src) []

let route t ~src point =
  if Array.length point <> t.dims then invalid_arg "Can.route: dimension mismatch";
  observe_route t (route_uninstrumented t ~src point)

let route_proximity t ~dist ~src point =
  if Array.length point <> t.dims then invalid_arg "Can.route_proximity: dimension mismatch";
  let visited = Hashtbl.create 32 in
  let rec go u acc =
    if Zone.contains u.zone point then Some (List.rev (u.id :: acc))
    else begin
      Hashtbl.replace visited u.id ();
      let here = Zone.min_torus_dist u.zone point in
      (* Among neighbors strictly closer to the target, maximise geometric
         progress per unit of physical latency (the classic CAN
         proximity-forwarding metric); otherwise fall back to the
         geometrically closest unvisited neighbor. *)
      let best_proximal = ref None and best_greedy = ref None in
      List.iter
        (fun id ->
          if not (Hashtbl.mem visited id) then begin
            let v = node t id in
            let zd = Zone.min_torus_dist v.zone point in
            (if zd < here then begin
               let pd = Float.max 1e-9 (dist u.id id) in
               let ratio = (here -. zd) /. pd in
               match !best_proximal with
               | Some (br, bid, _) when (br, -bid) >= (ratio, -id) -> ()
               | _ -> best_proximal := Some (ratio, id, v)
             end);
            match !best_greedy with
            | Some (bd, bid, _) when (bd, bid) <= (zd, id) -> ()
            | _ -> best_greedy := Some (zd, id, v)
          end)
        u.neighbors;
      match (!best_proximal, !best_greedy) with
      | Some (_, _, v), _ -> go v (u.id :: acc)
      | None, Some (_, _, v) -> go v (u.id :: acc)
      | None, None -> None
    end
  in
  go (node t src) []

let unlink t a b =
  let na = node t a and nb = node t b in
  na.neighbors <- List.filter (fun id -> id <> b) na.neighbors;
  nb.neighbors <- List.filter (fun id -> id <> a) nb.neighbors

let link a b =
  a.neighbors <- b.id :: a.neighbors;
  b.neighbors <- a.id :: b.neighbors

let join t ?start id point =
  if mem t id then invalid_arg "Can.join: node already a member";
  if Array.length point <> t.dims then invalid_arg "Can.join: dimension mismatch";
  let start = match start with Some s -> s | None -> t.rep in
  (* Joins route internally but are accounted separately ([join_hops]) so
     the [route_hops] histogram only reflects explicit lookups. *)
  let hops =
    match route_uninstrumented t ~src:start point with
    | Some hops -> hops
    | None -> failwith "Can.join: routing failed"
  in
  Option.iter
    (fun o -> Engine.Metrics.observe o.join_hops (float_of_int (List.length hops - 1)))
    t.obs;
  let owner = node t (List.nth hops (List.length hops - 1)) in
  let depth = Array.length owner.path in
  if depth >= max_depth then failwith "Can.join: max split depth exceeded";
  let lower, upper = Zone.split owner.zone (Zone.split_dim_at_depth t.dims depth) in
  let bit = path_bit ~dims:t.dims owner.zone depth point in
  let new_zone, old_zone = if bit = 1 then (upper, lower) else (lower, upper) in
  index_remove t owner;
  let old_neighbor_ids = owner.neighbors in
  List.iter (fun c -> unlink t owner.id c) old_neighbor_ids;
  owner.zone <- old_zone;
  owner.path <- Array.append owner.path [| 1 - bit |];
  index_add t owner;
  let newcomer = { id; zone = new_zone; path = Array.append (Array.sub owner.path 0 depth) [| bit |]; neighbors = [] } in
  Hashtbl.replace t.nodes id newcomer;
  index_add t newcomer;
  List.iter
    (fun cid ->
      let c = node t cid in
      if Zone.is_neighbor c.zone owner.zone then link c owner;
      if Zone.is_neighbor c.zone newcomer.zone then link c newcomer)
    old_neighbor_ids;
  link owner newcomer;
  hops

(* Merge leaf [child] into its sibling leaf [sibling]: the sibling absorbs
   the parent zone. *)
let merge_siblings t sibling child =
  let parent_path = Array.sub sibling.path 0 (Array.length sibling.path - 1) in
  let parent_zone = zone_of_path ~dims:t.dims parent_path in
  let candidates =
    List.filter
      (fun cid -> cid <> sibling.id && cid <> child.id)
      (List.sort_uniq compare (sibling.neighbors @ child.neighbors))
  in
  List.iter (fun cid -> unlink t sibling.id cid) sibling.neighbors;
  List.iter (fun cid -> unlink t child.id cid) (node t child.id).neighbors;
  sibling.neighbors <- [];
  child.neighbors <- [];
  index_remove t sibling;
  sibling.zone <- parent_zone;
  sibling.path <- parent_path;
  index_add t sibling;
  List.iter
    (fun cid ->
      let c = node t cid in
      if Zone.is_neighbor c.zone sibling.zone then link c sibling)
    candidates

let deepest_node t ~excluding =
  let best = ref None in
  Hashtbl.iter
    (fun id n ->
      if id <> excluding then begin
        let d = Array.length n.path in
        match !best with
        | Some (bd, bid) when (bd, -bid) >= (d, -id) -> ()
        | _ -> best := Some (d, id)
      end)
    t.nodes;
  match !best with Some (_, id) -> Some (node t id) | None -> None

let sibling_of t n =
  let len = Array.length n.path in
  if len = 0 then None
  else begin
    let bits = Array.copy n.path in
    bits.(len - 1) <- 1 - bits.(len - 1);
    match Hashtbl.find_opt t.by_path (path_key bits len) with
    | Some id -> Some (node t id)
    | None -> None
  end

type leave_effect = { survivor : int; backfilled : int option }

let leave t id =
  let x = node t id in
  let finish_removal () =
    Hashtbl.remove t.nodes id;
    if t.rep = id then
      Hashtbl.iter (fun nid _ -> t.rep <- nid) t.nodes
  in
  if size t = 1 then begin
    index_remove t x;
    finish_removal ();
    { survivor = id; backfilled = None }
  end
  else begin
    (* Find the deepest member other than x; its sibling zone is
       necessarily a single leaf (or is x itself). *)
    let m =
      match deepest_node t ~excluding:id with
      | Some m -> m
      | None -> assert false
    in
    if Array.length m.path <= Array.length x.path then begin
      (* x is (one of) the deepest: merge x into its own sibling leaf. *)
      match sibling_of t x with
      | Some s ->
        merge_siblings t s x;
        index_remove t x;
        finish_removal ();
        { survivor = s.id; backfilled = None }
      | None -> failwith "Can.leave: inconsistent tree (deepest leaf has no sibling)"
    end
    else begin
      match sibling_of t m with
      | Some s when s.id = id ->
        (* x happens to be the deepest pair's sibling: merge m over x. *)
        merge_siblings t m x;
        index_remove t x;
        finish_removal ();
        { survivor = m.id; backfilled = None }
      | Some s ->
        (* Free m by merging it into its sibling, then m backfills x.  The
           merge also fixes x's own neighbor list (the x-m link dies, an
           x-s link may appear), so snapshot x's neighbors only after. *)
        merge_siblings t s m;
        let x_neighbors = x.neighbors in
        List.iter (fun cid -> unlink t x.id cid) x_neighbors;
        index_remove t x;
        index_remove t m;
        m.zone <- x.zone;
        m.path <- x.path;
        index_add t m;
        List.iter
          (fun cid ->
            let c = node t cid in
            link c m)
          (List.filter (fun cid -> cid <> m.id) x_neighbors);
        x.neighbors <- [];
        finish_removal ();
        { survivor = s.id; backfilled = Some m.id }
      | None -> failwith "Can.leave: inconsistent tree (deepest node has no sibling)"
    end
  end

let members_with_prefix t bits =
  match Hashtbl.find_opt t.prefix_members (path_key bits (Array.length bits)) with
  | Some l -> Array.of_list !l
  | None -> [||]

let check_invariants t =
  let ( let* ) r f = Result.bind r f in
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let all = node_ids t in
  let* () =
    (* Zones match paths and tile the space. *)
    Array.fold_left
      (fun acc id ->
        let* () = acc in
        let n = node t id in
        if Zone.equal n.zone (zone_of_path ~dims:t.dims n.path) then Ok ()
        else err "node %d: zone does not match path" id)
      (Ok ()) all
  in
  let total = Array.fold_left (fun acc id -> acc +. Zone.volume (node t id).zone) 0.0 all in
  let* () =
    if Float.abs (total -. 1.0) < 1e-9 then Ok ()
    else err "zone volumes sum to %.12f, not 1" total
  in
  let* () =
    (* Neighbor lists: symmetric, geometrically right, and complete. *)
    Array.fold_left
      (fun acc id ->
        let* () = acc in
        let n = node t id in
        let* () =
          List.fold_left
            (fun acc cid ->
              let* () = acc in
              let c = node t cid in
              if not (List.mem id c.neighbors) then err "asymmetric neighbors %d/%d" id cid
              else if not (Zone.is_neighbor n.zone c.zone) then
                err "nodes %d/%d listed but not adjacent" id cid
              else Ok ())
            (Ok ()) n.neighbors
        in
        Array.fold_left
          (fun acc other ->
            let* () = acc in
            if other <> id && Zone.is_neighbor n.zone (node t other).zone
               && not (List.mem other n.neighbors)
            then err "nodes %d/%d adjacent but not listed" id other
            else Ok ())
          (Ok ()) all)
      (Ok ()) all
  in
  let* () =
    (* Prefix index agrees with the node set. *)
    Array.fold_left
      (fun acc id ->
        let* () = acc in
        let n = node t id in
        let members = members_with_prefix t n.path in
        if Array.exists (fun m -> m = id) members then Ok ()
        else err "node %d missing from its own prefix set" id)
      (Ok ()) all
  in
  Ok ()
