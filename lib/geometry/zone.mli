(** Axis-aligned half-open boxes in the unit torus [0,1)^d.

    CAN zones are produced by repeated binary splits of the full space, so
    every zone is a dyadic box.  Split dimensions cycle with depth
    (dimension [depth mod d]), the CAN convention that keeps zones as
    square as possible. *)

type t = { lo : float array; hi : float array }
(** Invariant: [0 <= lo.(i) < hi.(i) <= 1] for every dimension. *)

val full : int -> t
(** The whole space of a given dimensionality. *)

val dims : t -> int

val volume : t -> float

val center : t -> Point.t

val contains : t -> Point.t -> bool
(** Membership in the half-open box. *)

val split : t -> int -> t * t
(** [split z dim] halves the zone along a dimension; returns (lower,
    upper). *)

val split_dim_at_depth : int -> int -> int
(** [split_dim_at_depth d depth] is the dimension CAN splits next,
    [depth mod d]. *)

val subzone : t -> Point.t -> Point.t
(** [subzone z p] maps a point of the unit space affinely into [z].  Used
    to position soft-state entries inside (a condensed fraction of) a
    region. *)

val shrink : t -> float -> t
(** [shrink z f] is the sub-box anchored at [z.lo] whose side lengths are
    scaled by [f] in every dimension, [0 < f <= 1].  Implements condensed
    maps: the map for a region is stored in a fraction of the region. *)

val is_neighbor : t -> t -> bool
(** CAN adjacency on the torus: the zones abut along exactly one dimension
    and their projections overlap (with positive length, or are both
    degenerate-equal) in every other dimension. *)

val intersects : t -> t -> bool
(** Positive-volume overlap of two boxes (half-open semantics: zones that
    merely abut do not intersect).  Both zones are dyadic sub-boxes of the
    unit space, so no torus wrap-around is involved. *)

val min_torus_dist : t -> Point.t -> float
(** Distance from a point to the closest point of the zone on the torus
    (0 when inside).  Used by greedy CAN routing. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
