type t = { lo : float array; hi : float array }

let full d =
  if d < 1 then invalid_arg "Zone.full: dimensionality must be >= 1";
  { lo = Array.make d 0.0; hi = Array.make d 1.0 }

let dims z = Array.length z.lo

let volume z =
  let acc = ref 1.0 in
  for i = 0 to dims z - 1 do
    acc := !acc *. (z.hi.(i) -. z.lo.(i))
  done;
  !acc

let center z = Array.init (dims z) (fun i -> (z.lo.(i) +. z.hi.(i)) /. 2.0)

let contains z p =
  if Array.length p <> dims z then invalid_arg "Zone.contains: dimension mismatch";
  let ok = ref true in
  for i = 0 to dims z - 1 do
    if not (p.(i) >= z.lo.(i) && p.(i) < z.hi.(i)) then ok := false
  done;
  !ok

let split z dim =
  if dim < 0 || dim >= dims z then invalid_arg "Zone.split: dimension out of range";
  let mid = (z.lo.(dim) +. z.hi.(dim)) /. 2.0 in
  let lower = { lo = Array.copy z.lo; hi = Array.copy z.hi } in
  let upper = { lo = Array.copy z.lo; hi = Array.copy z.hi } in
  lower.hi.(dim) <- mid;
  upper.lo.(dim) <- mid;
  (lower, upper)

let split_dim_at_depth d depth = depth mod d

let subzone z p =
  if Array.length p <> dims z then invalid_arg "Zone.subzone: dimension mismatch";
  Array.init (dims z) (fun i -> z.lo.(i) +. (p.(i) *. (z.hi.(i) -. z.lo.(i))))

let shrink z f =
  if not (f > 0.0 && f <= 1.0) then invalid_arg "Zone.shrink: factor out of (0,1]";
  (* Scale each side by f^(1/d) so the volume ratio is exactly f. *)
  let per_dim = Float.pow f (1.0 /. float_of_int (dims z)) in
  {
    lo = Array.copy z.lo;
    hi = Array.init (dims z) (fun i -> z.lo.(i) +. ((z.hi.(i) -. z.lo.(i)) *. per_dim));
  }

(* Per-dimension relation between two (non-wrapping, dyadic) intervals on
   the unit circle. *)
type axis_relation = Overlap | Abut | Apart

let axis_relation a_lo a_hi b_lo b_hi =
  if a_lo < b_hi && b_lo < a_hi then Overlap
  else if
    a_hi = b_lo || b_hi = a_lo || (a_hi = 1.0 && b_lo = 0.0) || (b_hi = 1.0 && a_lo = 0.0)
  then Abut
  else Apart

let is_neighbor a b =
  if dims a <> dims b then invalid_arg "Zone.is_neighbor: dimension mismatch";
  let abuts = ref 0 and overlaps = ref 0 in
  for i = 0 to dims a - 1 do
    match axis_relation a.lo.(i) a.hi.(i) b.lo.(i) b.hi.(i) with
    | Overlap -> incr overlaps
    | Abut -> incr abuts
    | Apart -> ()
  done;
  !abuts = 1 && !overlaps = dims a - 1

let intersects a b =
  if dims a <> dims b then invalid_arg "Zone.intersects: dimension mismatch";
  let ok = ref true in
  for i = 0 to dims a - 1 do
    if not (a.lo.(i) < b.hi.(i) && b.lo.(i) < a.hi.(i)) then ok := false
  done;
  !ok

let min_torus_dist z p =
  if Array.length p <> dims z then invalid_arg "Zone.min_torus_dist: dimension mismatch";
  let acc = ref 0.0 in
  for i = 0 to dims z - 1 do
    let d =
      if p.(i) >= z.lo.(i) && p.(i) <= z.hi.(i) then 0.0
      else
        Float.min (Point.torus_axis_dist p.(i) z.lo.(i)) (Point.torus_axis_dist p.(i) z.hi.(i))
    in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc

let equal a b = a.lo = b.lo && a.hi = b.hi

let pp ppf z =
  Format.fprintf ppf "[%s]"
    (String.concat "; "
       (List.init (dims z) (fun i -> Format.sprintf "%.4g,%.4g" z.lo.(i) z.hi.(i))))
