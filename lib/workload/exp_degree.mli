(** Constant-degree frontier: sweep the per-hop choice budget k.

    For k in 2, 4, 8, 16 every backend builds its tables with at most k
    RTT probes per slot (for Koorde, k is additionally the de Bruijn
    fanout, so its candidate set and probe budget shrink together) and
    reports topology-aware vs random-selection stretch, the RTT probes /
    repair work spent, and churn-repair latency under the standard
    seeded storm — all through the churn experiment's drivers, so rows
    are directly comparable with the churn table.  Plain greedy CAN is
    the zero-flexibility control (aware = random, ratio pinned at 1.0). *)

type row = {
  backend : string;  (** ["ecan"], ["can"], ["chord"], ["pastry"], ["koorde"] *)
  k : int;
  aware : float;  (** mean pre-storm stretch, landmark+RTT selection, budget k *)
  random : float;  (** mean pre-storm stretch, random selection, same overlay *)
  probes : int;  (** RTT probes spent by the aware run; [-1] = not applicable *)
  repair_ms : float;  (** convergence time after storm end; nan if never *)
  work : int;  (** slot re-selections (eCAN) / stabilisation selector calls *)
  converged : bool;
}

val data : ?scale:int -> ?seed:int -> unit -> row list
(** One {!row} per (backend, k) cell, eCAN/CAN/Chord/Pastry/Koorde at
    each k in ascending-k order.  The eCAN cells drive the full
    soft-state stack, which reports into {!Engine.Metrics.global} under
    [experiment=degree] / [k=<k>] labels (never colliding with the churn
    experiment's instruments). *)

val run_custom : ?scale:int -> ?seed:int -> Format.formatter -> unit
(** {!data} into a rendered table, per-cell [degree_*] gauges (labelled
    [backend] / [k]) and the headline [degree_random_over_aware_k<k>]
    gauges for the Koorde rows in {!Engine.Metrics.global}. *)

val run : ?scale:int -> ?seed:int -> Format.formatter -> unit
(** The registry entry. *)
