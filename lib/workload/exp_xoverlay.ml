module Oracle = Topology.Oracle
module Ring = Chord.Ring
module Mesh = Pastry.Mesh
module Dbj = Koorde.Debruijn
module Landmarks = Landmark.Landmarks
module Number = Landmark.Number
module Stats = Prelude.Stats
module Rng = Prelude.Rng

let overlay_size = 1024
let landmark_count = 15
let rtt_budget = 10
let route_count = 2048

type pick = node:int -> candidates:int array -> int option

let random_pick rng : pick = fun ~node:_ ~candidates -> Some (Rng.pick rng candidates)

let optimal_pick oracle : pick =
 fun ~node ~candidates ->
  match Oracle.nearest oracle node candidates with
  | Some (best, _) -> Some best
  | None -> None

(* The soft-state hybrid, idealised to its information content: the map of
   a region, keyed by landmark numbers, returns the entries closest to the
   querying node in landmark space; the node then probes the top few by
   RTT.  (The storage mechanics are exercised by the eCAN experiments;
   Chord/Pastry maps would hold the same entries keyed by landmark number
   on the ring / under the prefix.) *)
let hybrid_pick oracle vector_of : pick =
 fun ~node ~candidates ->
  let qvec = vector_of node in
  let ranked =
    candidates
    |> Array.to_list
    |> List.filter (fun c -> c <> node)
    |> List.map (fun c -> (Landmarks.vector_dist qvec (vector_of c), c))
    |> List.sort compare
    |> List.map snd
  in
  let rec probe best = function
    | [] -> best
    | c :: rest ->
      let d = Oracle.measure oracle node c in
      let best = match best with Some (bd, _) when bd <= d -> best | _ -> Some (d, c) in
      probe best rest
  in
  match probe None (List.filteri (fun i _ -> i < rtt_budget) ranked) with
  | Some (_, c) -> Some c
  | None -> None

let stretch_summary oracle routes =
  let stretches =
    List.filter_map
      (fun (hops, shortest) ->
        if shortest <= 0.0 then None
        else begin
          let rec latency acc = function
            | a :: (b :: _ as rest) -> latency (acc +. Oracle.dist oracle a b) rest
            | [ _ ] | [] -> acc
          in
          Some (latency 0.0 hops /. shortest)
        end)
      routes
  in
  Stats.summarize (Array.of_list stretches)

let chord_stretch oracle members pick_name pick =
  let rng = Rng.create 31337 in
  let ring = Ring.create () in
  Array.iter (fun id -> Ring.add_node ring ~rng id) members;
  Ring.build_fingers ring ~selector:(fun ~node ~arc:_ ~candidates -> pick ~node ~candidates);
  let route_rng = Rng.create 555 in
  let routes = ref [] in
  for _ = 1 to route_count do
    let src = Rng.pick route_rng members in
    let key = Rng.int route_rng (1 lsl Ring.key_bits ring) in
    match Ring.route ring ~src ~key with
    | Some hops ->
      let owner = Ring.successor_node ring key in
      routes := (hops, Oracle.dist oracle src owner) :: !routes
    | None -> failwith ("chord routing failed under " ^ pick_name)
  done;
  stretch_summary oracle !routes

(* Chord with the soft-state map actually *stored on the ring* (appendix
   placement: entry key = landmark number scaled into the id space): finger
   selection does a real map lookup constrained to the finger arc, then
   probes the returned candidates by RTT. *)
let chord_ringmap_stretch oracle members scheme vector_of =
  let rng = Rng.create 31339 in
  let ring = Ring.create () in
  Array.iter (fun id -> Ring.add_node ring ~rng id) members;
  let map = Chord.Softmap.create ~scheme ring in
  Array.iter (fun id -> Chord.Softmap.publish map ~node:id ~vector:(vector_of id)) members;
  let fallback_rng = Rng.create 31340 in
  Ring.build_fingers ring ~selector:(fun ~node ~arc ~candidates ->
      let entries =
        Chord.Softmap.lookup map ~vector:(vector_of node) ~in_arc:arc
          ~max_results:rtt_budget ~ttl:64 ()
      in
      let entries = List.filter (fun e -> e.Chord.Softmap.node <> node) entries in
      match entries with
      | [] -> Some (Rng.pick fallback_rng candidates)
      | entries ->
        let best = ref None in
        List.iter
          (fun (e : Chord.Softmap.entry) ->
            let d = Oracle.measure oracle node e.Chord.Softmap.node in
            match !best with
            | Some (bd, _) when bd <= d -> ()
            | _ -> best := Some (d, e.Chord.Softmap.node))
          entries;
        (match !best with Some (_, c) -> Some c | None -> None));
  let route_rng = Rng.create 555 in
  let routes = ref [] in
  for _ = 1 to route_count do
    let src = Rng.pick route_rng members in
    let key = Rng.int route_rng (1 lsl Ring.key_bits ring) in
    match Ring.route ring ~src ~key with
    | Some hops ->
      let owner = Ring.successor_node ring key in
      routes := (hops, Oracle.dist oracle src owner) :: !routes
    | None -> failwith "chord routing failed under ring-map hybrid"
  done;
  stretch_summary oracle !routes

(* Pastry with prefix-region maps actually stored on the mesh (appendix
   placement: entry id = region prefix ++ landmark-number digits). *)
let pastry_prefixmap_stretch oracle members scheme vector_of =
  let rng = Rng.create 31341 in
  let mesh = Mesh.create () in
  Array.iter (fun id -> Mesh.add_node mesh ~rng id) members;
  let map = Pastry.Softmap.create ~scheme mesh in
  Array.iter (fun id -> Pastry.Softmap.publish_all map ~node:id ~vector:(vector_of id)) members;
  let fallback_rng = Rng.create 31342 in
  Mesh.build_tables mesh ~selector:(fun ~node ~prefix ~candidates ->
      let entries =
        Pastry.Softmap.lookup map ~prefix ~vector:(vector_of node) ~max_results:rtt_budget
          ~ttl:16 ()
      in
      let entries =
        List.filter (fun (e : Pastry.Softmap.entry) -> e.Pastry.Softmap.node <> node) entries
      in
      match entries with
      | [] -> Some (Rng.pick fallback_rng candidates)
      | entries ->
        let best = ref None in
        List.iter
          (fun (e : Pastry.Softmap.entry) ->
            let d = Oracle.measure oracle node e.Pastry.Softmap.node in
            match !best with
            | Some (bd, _) when bd <= d -> ()
            | _ -> best := Some (d, e.Pastry.Softmap.node))
          entries;
        (match !best with Some (_, c) -> Some c | None -> None));
  let route_rng = Rng.create 556 in
  let space = 1 lsl (Mesh.digit_bits mesh * Mesh.num_digits mesh) in
  let routes = ref [] in
  for _ = 1 to route_count do
    let src = Rng.pick route_rng members in
    let key = Rng.int route_rng space in
    match Mesh.route mesh ~src ~key with
    | Some hops ->
      let owner = Mesh.owner_of mesh key in
      routes := (hops, Oracle.dist oracle src owner) :: !routes
    | None -> failwith "pastry routing failed under prefix-map hybrid"
  done;
  stretch_summary oracle !routes

let pastry_stretch oracle members pick_name pick =
  let rng = Rng.create 31338 in
  let mesh = Mesh.create () in
  Array.iter (fun id -> Mesh.add_node mesh ~rng id) members;
  Mesh.build_tables mesh ~selector:(fun ~node ~prefix:_ ~candidates -> pick ~node ~candidates);
  let route_rng = Rng.create 556 in
  let space = 1 lsl (Mesh.digit_bits mesh * Mesh.num_digits mesh) in
  let routes = ref [] in
  for _ = 1 to route_count do
    let src = Rng.pick route_rng members in
    let key = Rng.int route_rng space in
    match Mesh.route mesh ~src ~key with
    | Some hops ->
      let owner = Mesh.owner_of mesh key in
      routes := (hops, Oracle.dist oracle src owner) :: !routes
    | None -> failwith ("pastry routing failed under " ^ pick_name)
  done;
  stretch_summary oracle !routes

let koorde_stretch oracle members pick_name pick =
  let rng = Rng.create 31343 in
  let dbj = Dbj.create ~degree:4 () in
  Array.iter (fun id -> Dbj.add_node dbj ~rng id) members;
  Dbj.build_fingers dbj ~selector:(fun ~node ~arc:_ ~candidates -> pick ~node ~candidates);
  let route_rng = Rng.create 557 in
  let routes = ref [] in
  for _ = 1 to route_count do
    let src = Rng.pick route_rng members in
    let key = Rng.int route_rng (1 lsl Dbj.key_bits dbj) in
    match Dbj.route dbj ~src ~key with
    | Some hops ->
      let owner = Dbj.successor_node dbj key in
      routes := (hops, Oracle.dist oracle src owner) :: !routes
    | None -> failwith ("koorde routing failed under " ^ pick_name)
  done;
  stretch_summary oracle !routes

(* Koorde with the soft-state map stored on its own ring (same appendix
   placement as Chord — the identifier ring is the same structure): the
   preferred de Bruijn entry is selected through a real map lookup
   constrained to the image arc, then RTT probes. *)
let koorde_ringmap_stretch oracle members scheme vector_of =
  let rng = Rng.create 31344 in
  let dbj = Dbj.create ~degree:4 () in
  Array.iter (fun id -> Dbj.add_node dbj ~rng id) members;
  let map = Koorde.Softmap.create ~scheme dbj in
  Array.iter (fun id -> Koorde.Softmap.publish map ~node:id ~vector:(vector_of id)) members;
  let fallback_rng = Rng.create 31345 in
  Dbj.build_fingers dbj ~selector:(fun ~node ~arc ~candidates ->
      let entries =
        Koorde.Softmap.lookup map ~vector:(vector_of node) ~in_arc:arc
          ~max_results:rtt_budget ~ttl:64 ()
      in
      let entries = List.filter (fun e -> e.Koorde.Softmap.node <> node) entries in
      match entries with
      | [] -> Some (Rng.pick fallback_rng candidates)
      | entries ->
        let best = ref None in
        List.iter
          (fun (e : Koorde.Softmap.entry) ->
            let d = Oracle.measure oracle node e.Koorde.Softmap.node in
            match !best with
            | Some (bd, _) when bd <= d -> ()
            | _ -> best := Some (d, e.Koorde.Softmap.node))
          entries;
        (match !best with Some (_, c) -> Some c | None -> None));
  let route_rng = Rng.create 557 in
  let routes = ref [] in
  for _ = 1 to route_count do
    let src = Rng.pick route_rng members in
    let key = Rng.int route_rng (1 lsl Dbj.key_bits dbj) in
    match Dbj.route dbj ~src ~key with
    | Some hops ->
      let owner = Dbj.successor_node dbj key in
      routes := (hops, Oracle.dist oracle src owner) :: !routes
    | None -> failwith "koorde routing failed under ring-map hybrid"
  done;
  stretch_summary oracle !routes

let run ?(scale = 1) ppf =
  let oracle = Ctx.oracle ~scale Ctx.Tsk_large Topology.Transit_stub.Manual in
  let size = max 128 (overlay_size / scale) in
  let rng = Rng.create 777 in
  let all = Array.init (Oracle.node_count oracle) (fun i -> i) in
  let members = Rng.sample rng size all in
  let lms = Landmarks.choose rng oracle landmark_count in
  let vectors = Hashtbl.create size in
  Array.iter (fun m -> Hashtbl.replace vectors m (Landmarks.vector lms m)) members;
  let vector_of node = Hashtbl.find vectors node in
  let table =
    Tableout.create
      ~title:
        (Printf.sprintf
           "Generality: proximity selection on Chord, Pastry and Koorde (%d nodes, tsk-large manual)"
           size)
      ~columns:[ "overlay"; "random"; "hybrid (lmk+RTT)"; "optimal" ]
  in
  let strategies oracle =
    [
      ("random", random_pick (Rng.create 1));
      ("hybrid", hybrid_pick oracle vector_of);
      ("optimal", optimal_pick oracle);
    ]
  in
  let row name runner =
    let cells =
      List.map
        (fun (pick_name, pick) ->
          Tableout.cell_f (runner oracle members pick_name pick).Stats.mean)
        (strategies oracle)
    in
    Tableout.add_row table (name :: cells)
  in
  row "Chord" chord_stretch;
  row "Pastry" pastry_stretch;
  row "Koorde" koorde_stretch;
  Tableout.render ppf table;
  (* The ring-map variant exercises the actual on-ring storage path. *)
  let scheme =
    Number.default_scheme
      ~max_latency:(Number.calibrate_max_latency oracle (Landmarks.nodes lms))
      ()
  in
  let ringmap = chord_ringmap_stretch oracle members scheme vector_of in
  Format.fprintf ppf
    "  Chord with the map stored on the ring itself: stretch %.3f (vs idealised hybrid above)@."
    ringmap.Stats.mean;
  let prefixmap = pastry_prefixmap_stretch oracle members scheme vector_of in
  Format.fprintf ppf
    "  Pastry with maps stored under the prefixes:   stretch %.3f (vs idealised hybrid above)@."
    prefixmap.Stats.mean;
  let koordemap = koorde_ringmap_stretch oracle members scheme vector_of in
  Format.fprintf ppf
    "  Koorde with the map stored on its ring:       stretch %.3f (vs idealised hybrid above)@."
    koordemap.Stats.mean
