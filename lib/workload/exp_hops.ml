module Can_overlay = Can.Overlay
module Ecan_exp = Ecan.Expressway
module Metrics = Engine.Metrics
module Point = Geometry.Point
module Rng = Prelude.Rng

let lookups = 1000

let build_can ?metrics ?labels ~dims ~n ~seed () =
  let rng = Rng.create seed in
  let t = Can_overlay.create ?metrics ?labels ~dims 0 in
  for id = 1 to n - 1 do
    ignore (Can_overlay.join t id (Point.random rng dims))
  done;
  t

let run_lookups route ~dims ~seed =
  let rng = Rng.create (seed + 1) in
  for _ = 1 to lookups do
    match route (Point.random rng dims) with
    | Some _ -> ()
    | None -> failwith "Exp_hops: routing failed"
  done

(* Both variants record into the process-global registry: per-overlay
   [route_hops] histograms keyed by size and fan-out, which is what
   [bench --json] serializes.  The rendered table reads its means back
   from the same histograms. *)
let can_hops ~dims ~n ~seed =
  let labels = [ ("dims", string_of_int dims); ("nodes", string_of_int n) ] in
  let t = build_can ~metrics:Metrics.global ~labels ~dims ~n ~seed () in
  let ids = Can_overlay.node_ids t in
  let rng = Rng.create (seed + 2) in
  run_lookups (fun p -> Can_overlay.route t ~src:(Rng.pick rng ids) p) ~dims ~seed;
  let hist =
    Metrics.histogram Metrics.global ~labels:(("overlay", "can") :: labels) "route_hops"
  in
  Metrics.hmean hist

let ecan_hops ?(span_bits = 2) ~n ~seed () =
  let labels =
    [ ("fan", string_of_int (1 lsl span_bits)); ("nodes", string_of_int n) ]
  in
  let t = build_can ~dims:2 ~n ~seed () in
  let e = Ecan_exp.create ~metrics:Metrics.global ~labels ~span_bits t in
  let sel_rng = Rng.create (seed + 3) in
  Ecan_exp.build_tables e ~selector:(fun ~node:_ ~region:_ ~candidates ->
      Some (Rng.pick sel_rng candidates));
  let ids = Can_overlay.node_ids t in
  let rng = Rng.create (seed + 2) in
  run_lookups (fun p -> Ecan_exp.route e ~src:(Rng.pick rng ids) p) ~dims:2 ~seed;
  let hist =
    Metrics.histogram Metrics.global ~labels:(("overlay", "ecan") :: labels) "route_hops"
  in
  Metrics.hmean hist

let run ?(scale = 1) ppf =
  let sizes =
    List.sort_uniq compare
      (List.map (fun n -> max 64 (n / scale)) [ 256; 512; 1024; 2048; 4096; 8192 ])
  in
  let table =
    Tableout.create
      ~title:"Figure 2: average logical hops, CAN (d=2..5) vs eCAN (d=2; fan k=4 and k=8)"
      ~columns:[ "nodes"; "CAN d=2"; "CAN d=3"; "CAN d=4"; "CAN d=5"; "eCAN k=4"; "eCAN k=8" ]
  in
  List.iter
    (fun n ->
      let seed = 1000 + n in
      let cells =
        List.map (fun dims -> Tableout.cell_f (can_hops ~dims ~n ~seed)) [ 2; 3; 4; 5 ]
      in
      Tableout.add_row table
        ((Tableout.cell_i n :: cells)
        @ [
            Tableout.cell_f (ecan_hops ~n ~seed ());
            Tableout.cell_f (ecan_hops ~span_bits:3 ~n ~seed ());
          ]))
    sizes;
  Tableout.render ppf table
