(** Maintenance-plane storm benchmark: burst publishes from N publishers
    fan out to M [Any_new_entry] subscribers, run once with the seed
    configuration (flat store, one engine event per notification) and
    once with a sharded store plus a nonzero digest window.  Reports the
    scheduled-event collapse from digest batching and the sweep cost of
    the expiry heap (records visited by a sweep when only a fraction of
    the population has expired), and records both into the global metrics
    registry under [experiment=storm]. *)

val run : ?scale:int -> Format.formatter -> unit
(** Registry entry; [scale] divides the publisher/subscriber counts. *)
