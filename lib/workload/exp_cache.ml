(* Topology-aware content cache: a *service* workload on the overlay.

   The protocol-level experiments measure stretch; this one measures what
   a user of the overlay would see.  A population of clients (each
   attached to an overlay member, cycling online/offline) issues seeded
   Zipf-distributed requests for keys mapped onto the overlay key space.
   Every backend serves the identical request schedule through
   [Engine.Cache]: a miss routes to the key's home node and pays the
   origin-fetch penalty, a hit routes to the RTT-nearest live copy, and a
   node whose served-request load crosses the threshold gets its hottest
   keys replicated to a topologically-near host — placement chosen
   through the soft-state maps, whose entries' load/capacity fields the
   cache keeps fresh ([Store.lookup ~max_load] skips overloaded hosts).

   Two comparisons close the loop on the paper's own TA-CAN imbalance
   observation:

   - topology-aware vs random expressway tables over the *same* CAN
     membership: hit rates are identical by construction (same homes,
     same schedule), so any delivered-latency difference is pure neighbor
     selection;
   - hotspot replication on vs off ([--replicas 1]): same hit rate again
     (replication copies from the hot node, it never refetches), but the
     max per-node load drops as hot keys spread to near replicas. *)

module Oracle = Topology.Oracle
module Builder = Core.Builder
module Strategy = Core.Strategy
module Store = Softstate.Store
module Cache = Engine.Cache
module Probe = Engine.Probe
module Metrics = Engine.Metrics
module Can_overlay = Can.Overlay
module Ecan_exp = Ecan.Expressway
module Ring = Chord.Ring
module Mesh = Pastry.Mesh
module Dbj = Koorde.Debruijn
module Landmarks = Landmark.Landmarks
module Zone = Geometry.Zone
module Point = Geometry.Point
module Stats = Prelude.Stats
module Rng = Prelude.Rng
module Zipf = Prelude.Zipf

(* ------------------------------------------------------------------ *)
(* Request schedule: shared verbatim by every backend                  *)
(* ------------------------------------------------------------------ *)

(* SplitMix64 finalizer: spreads consecutive key ids over the key space
   so home nodes are uniform regardless of the Zipf rank order. *)
let mix62 k =
  let z = Int64.add (Int64.of_int k) 0x9E3779B97F4A7C15L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.shift_right_logical z 2)

type request = { round : int; client : int; key : int }

let cycle_rounds = 16
let online_rounds = 8 (* of every [cycle_rounds]: a 50% duty cycle *)
let round_ms = 100.0

(* Each client gets a seeded phase in the on/off cycle, then every online
   (client, round) slot issues one Zipf draw — in (round, client) order,
   so the schedule is a pure function of its parameters. *)
let schedule ~seed ~clients ~rounds ~universe ~zipf_s =
  let zipf = Zipf.create ~s:zipf_s universe in
  let rng = Rng.create ((seed * 7919) + 5) in
  let phase = Array.init clients (fun _ -> Rng.int rng cycle_rounds) in
  let reqs = ref [] in
  for round = 0 to rounds - 1 do
    for client = 0 to clients - 1 do
      if (round + phase.(client)) mod cycle_rounds < online_rounds then
        reqs := { round; client; key = Zipf.sample zipf rng } :: !reqs
    done
  done;
  Array.of_list (List.rev !reqs)

(* Order-independent multiset digest of the requested keys: a wrapping
   sum of mixed key ids is invariant under any interleaving. *)
let digest_add acc key = acc + mix62 key

(* ------------------------------------------------------------------ *)
(* Backends                                                            *)
(* ------------------------------------------------------------------ *)

let builder_load_reset b =
  let store = b.Builder.store in
  Array.iter
    (fun node ->
      List.iter
        (fun region -> Store.update_stats store ~region ~node ~load:0.0 ~capacity:1.0)
        (Store.regions_of store node))
    b.Builder.members

(* eCAN / plain-CAN backends share the builder's substrate: homes come
   from CAN zone ownership of the key's hashed point, replica placement
   from a root-region soft-state lookup around the hot node's landmark
   vector that skips entries whose (freshly published) load crossed the
   threshold — the §6 load/capacity fields doing service-layer work. *)
let builder_backend ~name ~route b =
  let can = Ecan_exp.can b.Builder.ecan in
  let store = b.Builder.store in
  let point_of_key key =
    let h = mix62 key in
    let x = float_of_int (h land 0x3FFFFFFF) /. 1073741824.0 in
    let y = float_of_int ((h lsr 30) land 0x3FFFFFFF) /. 1073741824.0 in
    [| x; y |]
  in
  {
    Cache.name;
    member = (fun node -> Can_overlay.mem can node);
    home_of = (fun key -> Can_overlay.owner_of can (point_of_key key));
    route_to =
      (fun ~src ~dst -> route ~src (Zone.center (Can_overlay.node can dst).Can_overlay.zone));
    near =
      (fun ~node ~exclude ->
        let vector = Builder.vector_of b node in
        Store.lookup store ~region:[||] ~vector ~max_results:12 ~ttl:2 ~max_load:0.99 ()
        |> List.find_map (fun (e : Store.Entry.t) ->
               let c = e.Store.Entry.node in
               if c <> node && (not (List.mem c exclude)) && Can_overlay.mem can c then Some c
               else None));
    publish_load =
      (fun ~node ~load ->
        List.iter
          (fun region -> Store.update_stats store ~region ~node ~load ~capacity:1.0)
          (Store.regions_of store node));
  }

let ecan_backend ~name b =
  builder_backend ~name ~route:(fun ~src p -> Ecan_exp.route b.Builder.ecan ~src p) b

let can_backend ~name b =
  let can = Ecan_exp.can b.Builder.ecan in
  builder_backend ~name ~route:(fun ~src p -> Can_overlay.route can ~src p) b

(* Chord / Pastry get the same member population and the same
   vector-then-probe neighbor selection the xover experiment uses; with
   no soft-state plane of their own, replica placement is the physically
   nearest member (the service-level optimum a map lookup approximates). *)
let hybrid_pick oracle vector_of ~rtts ~node ~candidates =
  let qvec = vector_of node in
  let ranked =
    candidates
    |> Array.to_list
    |> List.filter (fun c -> c <> node)
    |> List.map (fun c -> (Landmarks.vector_dist qvec (vector_of c), c))
    |> List.sort compare
    |> List.map snd
  in
  let rec go best = function
    | [] -> Option.map snd best
    | c :: rest ->
      let d = Oracle.measure oracle node c in
      go (match best with Some (bd, _) when bd <= d -> best | _ -> Some (d, c)) rest
  in
  go None (List.filteri (fun i _ -> i < rtts) ranked)

let oracle_near oracle members ~node ~exclude =
  Array.fold_left
    (fun best c ->
      if c = node || List.mem c exclude then best
      else
        let d = Oracle.dist oracle node c in
        match best with Some (bd, bc) when (bd, bc) <= (d, c) -> best | _ -> Some (d, c))
    None members
  |> Option.map snd

let chord_backend ~seed oracle b =
  let ring = Ring.create () in
  let rng = Rng.create ((seed * 6007) + 1) in
  Array.iter (fun id -> Ring.add_node ring ~rng id) b.Builder.members;
  Ring.build_fingers ring ~selector:(fun ~node ~arc:_ ~candidates ->
      hybrid_pick oracle (Builder.vector_of b) ~rtts:5 ~node ~candidates);
  {
    Cache.name = "chord";
    member = (fun node -> Ring.mem ring node);
    home_of = (fun key -> Ring.successor_node ring (mix62 key land ((1 lsl Ring.key_bits ring) - 1)));
    route_to = (fun ~src ~dst -> Ring.route ring ~src ~key:(Ring.key_of ring dst));
    near = oracle_near oracle b.Builder.members;
    publish_load = (fun ~node:_ ~load:_ -> ());
  }

let pastry_backend ~seed oracle b =
  let mesh = Mesh.create () in
  let rng = Rng.create ((seed * 6007) + 2) in
  Array.iter (fun id -> Mesh.add_node mesh ~rng id) b.Builder.members;
  Mesh.build_tables mesh ~selector:(fun ~node ~prefix:_ ~candidates ->
      hybrid_pick oracle (Builder.vector_of b) ~rtts:5 ~node ~candidates);
  let space = 1 lsl (Mesh.digit_bits mesh * Mesh.num_digits mesh) in
  {
    Cache.name = "pastry";
    member = (fun node -> Mesh.mem mesh node);
    home_of = (fun key -> Mesh.owner_of mesh (mix62 key mod space));
    route_to = (fun ~src ~dst -> Mesh.route mesh ~src ~key:(Mesh.pastry_id mesh dst));
    near = oracle_near oracle b.Builder.members;
    publish_load = (fun ~node:_ ~load:_ -> ());
  }

(* Koorde joins the service comparison as the constant-degree row: the
   same hybrid vector-then-probe selection, but applied to image-arc
   cover sets of only ~k candidates per node. *)
let koorde_backend ~seed oracle b =
  let dbj = Dbj.create ~degree:4 () in
  let rng = Rng.create ((seed * 6007) + 3) in
  Array.iter (fun id -> Dbj.add_node dbj ~rng id) b.Builder.members;
  Dbj.build_fingers dbj ~selector:(fun ~node ~arc:_ ~candidates ->
      hybrid_pick oracle (Builder.vector_of b) ~rtts:5 ~node ~candidates);
  {
    Cache.name = "koorde";
    member = (fun node -> Dbj.mem dbj node);
    home_of =
      (fun key -> Dbj.successor_node dbj (mix62 key land ((1 lsl Dbj.key_bits dbj) - 1)));
    route_to = (fun ~src ~dst -> Dbj.route dbj ~src ~key:(Dbj.key_of dbj dst));
    near = oracle_near oracle b.Builder.members;
    publish_load = (fun ~node:_ ~load:_ -> ());
  }

(* ------------------------------------------------------------------ *)
(* Driving one backend through the shared schedule                     *)
(* ------------------------------------------------------------------ *)

type stats = {
  label : string;
  requests : int;
  hits : int;
  misses : int;
  replications : int;
  sheds : int;
  failovers : int;
  mean_ms : float;
  p50_ms : float;
  p99_ms : float;
  hit_rate : float;
  max_load : int;
  key_digest : int;
}

let probe_cache_ttl = 600_000.0

let run_backend ?metrics ?trace ~label ~replicas ~threshold ~oracle ~attach ~reqs backend =
  let now = ref 0.0 in
  let clock () = !now in
  let labels = [ ("experiment", "cache"); ("backend", label) ] in
  let prober =
    Probe.create ?metrics ~labels ~clock
      ~config:{ Probe.default_config with Probe.cache_ttl = probe_cache_ttl }
      ~measure:(Oracle.measure oracle) ()
  in
  let rtt ~src ~dst =
    match Probe.rtt prober ~src ~dst with Ok r -> Some r | Error _ -> None
  in
  let cache =
    Cache.create ?metrics ~labels ?trace ~clock ~rtt
      ~config:
        {
          Cache.default_config with
          Cache.replicas;
          load_threshold = threshold;
          hot_keys = 4;
        }
      ~link:(Oracle.dist oracle) backend
  in
  let latencies = Array.make (Array.length reqs) 0.0 in
  let digest = ref 0 in
  Array.iteri
    (fun i r ->
      now := float_of_int r.round *. round_ms;
      let o = Cache.request cache ~client:attach.(r.client) ~key:r.key in
      latencies.(i) <- o.Cache.latency;
      digest := digest_add !digest r.key)
    reqs;
  (match Cache.check_invariants cache with
  | Ok () -> ()
  | Error m -> failwith ("Exp_cache: cache invariant broken: " ^ m));
  let n = Array.length reqs in
  {
    label;
    requests = Cache.requests cache;
    hits = Cache.hits cache;
    misses = Cache.misses cache;
    replications = Cache.replications cache;
    sheds = Cache.sheds cache;
    failovers = Cache.failovers cache;
    mean_ms = Stats.mean latencies;
    p50_ms = Stats.percentile latencies 50.0;
    p99_ms = Stats.percentile latencies 99.0;
    hit_rate = (if n = 0 then 0.0 else float_of_int (Cache.hits cache) /. float_of_int n);
    max_load = Cache.max_load cache;
    key_digest = !digest;
  }

(* ------------------------------------------------------------------ *)
(* The experiment                                                      *)
(* ------------------------------------------------------------------ *)

let sizes ~scale =
  let scale = max 1 scale in
  let size = max 64 (512 / scale) in
  let clients = max 16 (512 / scale) in
  let universe = max 64 (4096 / scale) in
  let rounds = max 24 (1024 / scale) in
  let threshold = max 8 (clients * rounds / 256) in
  (size, min clients size, universe, rounds, threshold)

let data ?(scale = 1) ?(seed = 42) ?(zipf_s = 0.9) ?clients ?(replicas = 3) ?metrics ?trace ()
    =
  let oracle = Ctx.oracle ~scale Ctx.Tsk_large Topology.Transit_stub.Manual in
  let size, default_clients, universe, rounds, threshold = sizes ~scale in
  let clients = match clients with Some c -> max 1 c | None -> default_clients in
  let b =
    Builder.build oracle
      {
        Builder.default_config with
        Builder.overlay_size = size;
        strategy = Strategy.hybrid ~rtts:10 ();
        ttl = 3_600_000.0;
        seed;
      }
  in
  let reqs = schedule ~seed ~clients ~rounds ~universe ~zipf_s in
  let attach = Array.init clients (fun c -> b.Builder.members.(c mod size)) in
  let go ~label ~replicas backend =
    builder_load_reset b;
    run_backend ?metrics ?trace ~label ~replicas ~threshold ~oracle ~attach ~reqs backend
  in
  let aware = go ~label:"ecan aware" ~replicas (ecan_backend ~name:"ecan aware" b) in
  let aware_norepl =
    go ~label:"ecan aware r1" ~replicas:1 (ecan_backend ~name:"ecan aware r1" b)
  in
  let can_row = go ~label:"can greedy" ~replicas (can_backend ~name:"can greedy" b) in
  let chord_row = go ~label:"chord" ~replicas (chord_backend ~seed oracle b) in
  let pastry_row = go ~label:"pastry" ~replicas (pastry_backend ~seed oracle b) in
  let koorde_row = go ~label:"koorde" ~replicas (koorde_backend ~seed oracle b) in
  (* Same membership, same homes, same schedule — only the expressway
     tables change, so the latency delta is pure neighbor selection. *)
  Builder.rebuild_tables b Strategy.Random_pick;
  let random = go ~label:"ecan random" ~replicas (ecan_backend ~name:"ecan random" b) in
  Builder.rebuild_tables b b.Builder.config.Builder.strategy;
  [ aware; random; can_row; chord_row; pastry_row; koorde_row; aware_norepl ]

let record_stats metrics s =
  let labels = [ ("backend", s.label) ] in
  let g name v = Metrics.set (Metrics.gauge metrics ~labels name) v in
  g "cache_p50_ms" s.p50_ms;
  g "cache_p99_ms" s.p99_ms;
  g "cache_mean_ms" s.mean_ms;
  g "cache_hit_rate" s.hit_rate;
  g "cache_max_node_load" (float_of_int s.max_load)

let run_custom ?(scale = 1) ?(seed = 42) ?(zipf_s = 0.9) ?clients ?(replicas = 3) ppf =
  let metrics = Metrics.global in
  let stats = data ~scale ~seed ~zipf_s ?clients ~replicas ~metrics () in
  let size, default_clients, universe, rounds, threshold = sizes ~scale in
  let clients = match clients with Some c -> max 1 c | None -> default_clients in
  let table =
    Tableout.create
      ~title:
        (Printf.sprintf
           "Content cache: %d reqs (zipf s=%.2f over %d keys), %d clients on %d nodes, %d \
            rounds, threshold %d, replicas %d, seed %d"
           (match stats with s :: _ -> s.requests | [] -> 0)
           zipf_s universe clients size rounds threshold replicas seed)
      ~columns:
        [ "backend"; "repl"; "p50 ms"; "p99 ms"; "mean"; "hit %"; "max load"; "copies"; "sheds" ]
  in
  List.iter
    (fun s ->
      record_stats metrics s;
      Tableout.add_row table
        [
          s.label;
          (if s.label = "ecan aware r1" then "1" else string_of_int replicas);
          Tableout.cell_f s.p50_ms;
          Tableout.cell_f s.p99_ms;
          Tableout.cell_f s.mean_ms;
          Printf.sprintf "%.1f" (100.0 *. s.hit_rate);
          Tableout.cell_i s.max_load;
          Tableout.cell_i s.replications;
          Tableout.cell_i s.sheds;
        ])
    stats;
  (* Headline gauges the CI gate holds: topology-aware beats random on
     the delivered tail at equal hit rate; replication flattens load. *)
  (match stats with
  | [ aware; random; _; _; _; _; norepl ] ->
    let g name v = Metrics.set (Metrics.gauge metrics name) v in
    g "cache_random_over_aware_p50" (random.p50_ms /. aware.p50_ms);
    g "cache_random_over_aware_p99" (random.p99_ms /. aware.p99_ms);
    g "cache_hit_rates_equal" (if random.hit_rate = aware.hit_rate then 1.0 else 0.0);
    g "cache_repl_load_ratio"
      (float_of_int norepl.max_load /. float_of_int (max 1 aware.max_load))
  | _ -> ());
  Tableout.render ppf table;
  Format.fprintf ppf
    "  homes and schedule are identical for the ecan/can rows, so hit rates match and the \
     latency gap is neighbor selection.@.";
  Format.fprintf ppf
    "  copies: hot-key replications triggered at %d served requests/node; max load: most \
     requests served by one node.@."
    threshold

let run ?scale ?seed ppf = run_custom ?scale ?seed ppf
