(** Domain-parallel hosting: byte-identity across pool sizes, plus a
    wall-clock speedup table.

    Runs one seeded maintenance-heavy workload (sharded soft-state
    publishes/refreshes/sweeps, pool-backed probe batches over a lossy
    channel, a membership change with rehosting) at domain-pool sizes 1,
    2 and 4, each into a private metrics registry, and compares the
    rendered registries byte for byte — the executable form of the
    DESIGN.md §12 determinism contract.  Records [domains_identical]
    (1.0 on byte-identity) and the workload's deterministic totals to
    the global registry; prints, but never records, per-run wall-clock
    and speedup.  Fails loudly if any pool size diverges. *)

val run : ?scale:int -> Format.formatter -> unit
(** The registry entry.  [scale] divides the workload size (default
    1). *)
