(* Allocation microbench: exact [Gc.minor_words] budgets for the
   simulation hot paths.

   Each op is warmed up once (fixture laziness, first-call memoization)
   and then run a fixed number of times with the minor-allocation
   counter read immediately around the measured calls only — fixture
   rebuilding between measured windows is excluded.  Minor-word counts
   are a pure function of the allocations the measured code performs, so
   for a seeded, single-domain workload they are exactly reproducible
   and [bench/compare.exe] holds them to exact integer equality (its
   allocation-budget section).  The store runs on an explicit 1-domain
   pool so the budget is independent of the TOPOAWARE_DOMAINS matrix
   leg, per the DESIGN.md §12 pool-size-transparency contract.

   The budgets are words per op, truncated: [alloc_minor_words_per_route]
   (one eCAN expressway route), [alloc_minor_words_per_sweep] (one TTL
   sweep purging a 64-entry burst) and [alloc_minor_words_per_sssp] (one
   single-source shortest-path run of the kind [Oracle.build] issues in
   a loop).  Counts are toolchain-sensitive: regenerate the baselines
   after a compiler upgrade (see EXPERIMENTS.md). *)

module Ts = Topology.Transit_stub
module Graph = Topology.Graph
module Dijkstra = Topology.Dijkstra
module Can_overlay = Can.Overlay
module Ecan_exp = Ecan.Expressway
module Store = Softstate.Store
module Number = Landmark.Number
module Point = Geometry.Point
module Rng = Prelude.Rng
module Metrics = Engine.Metrics

let substrate = 256 (* CAN members for the route / sweep fixtures *)
let route_samples = 64 (* distinct seeded (src, point) route queries *)
let route_runs = 256
let sweep_rounds = 16
let sweep_burst = 64 (* entries expiring per measured sweep *)
let sweep_ttl = 1_000.0
let sssp_runs = 64

let vector_of node = Array.init 5 (fun i -> float_of_int ((node * ((7 * i) + 3)) mod 400))

(* Words allocated per call, truncated.  [f] must be side-effect-stable
   across repetitions (same allocation profile every call). *)
let words_per_op ~runs f =
  f ();
  let before = Gc.minor_words () in
  for _ = 1 to runs do
    f ()
  done;
  int_of_float (Gc.minor_words () -. before) / runs

let route_op () =
  let rng = Rng.create 31 in
  let can = Can_overlay.create ~dims:2 0 in
  for id = 1 to substrate - 1 do
    ignore (Can_overlay.join can id (Point.random rng 2))
  done;
  let e = Ecan_exp.create ~span_bits:2 can in
  let sel = Rng.create 32 in
  Ecan_exp.build_tables e ~selector:(fun ~node:_ ~region:_ ~candidates ->
      Some (Rng.pick sel candidates));
  let members = Can_overlay.node_ids can in
  let qrng = Rng.create 33 in
  let queries =
    Array.init route_samples (fun _ -> (Rng.pick qrng members, Point.random qrng 2))
  in
  let cursor = ref 0 in
  words_per_op ~runs:route_runs (fun () ->
      let src, point = queries.(!cursor mod route_samples) in
      incr cursor;
      ignore (Ecan_exp.route e ~src point))

let sweep_op () =
  let rng = Rng.create 41 in
  let can = Can_overlay.create ~dims:2 0 in
  for id = 1 to substrate - 1 do
    ignore (Can_overlay.join can id (Point.random rng 2))
  done;
  let clock = ref 0.0 in
  let store =
    Store.create ~shards:4 ~default_ttl:sweep_ttl
      ~pool:(Engine.Dpool.get ~domains:1)
      ~clock:(fun () -> !clock)
      ~scheme:(Number.default_scheme ~max_latency:400.0 ())
      can
  in
  (* Warm-up burst: first sweep pays one-time map/heap growth. *)
  let publish_burst base =
    for p = 0 to sweep_burst - 1 do
      Store.publish store ~region:[||] ~node:(base + p) ~vector:(vector_of (base + p))
    done
  in
  publish_burst 10_000;
  clock := 2.0 *. sweep_ttl;
  ignore (Store.sweep_expired store);
  let total = ref 0.0 in
  for round = 1 to sweep_rounds do
    publish_burst (10_000 + (round * sweep_burst));
    clock := !clock +. (2.0 *. sweep_ttl);
    let before = Gc.minor_words () in
    ignore (Store.sweep_expired store);
    total := !total +. (Gc.minor_words () -. before)
  done;
  int_of_float !total / sweep_rounds

let sssp_op () =
  let topo = Ts.generate (Rng.create 7) (Ts.tsk_large ~latency:Ts.Manual ~scale:16 ()) in
  let g = topo.Ts.graph in
  let n = Graph.node_count g in
  let ws = Dijkstra.Workspace.create n in
  let out = Array.make n infinity in
  let src = ref 0 in
  words_per_op ~runs:sssp_runs (fun () ->
      Dijkstra.distances_into ws g (!src mod n) out;
      incr src)

let run ?(scale = 1) ppf =
  ignore scale;
  let route_words = route_op () in
  let sweep_words = sweep_op () in
  let sssp_words = sssp_op () in
  let metrics = Metrics.global in
  let c name v = Metrics.add (Metrics.counter metrics name) v in
  c "alloc_minor_words_per_route" route_words;
  c "alloc_minor_words_per_sweep" sweep_words;
  c "alloc_minor_words_per_sssp" sssp_words;
  Metrics.set
    (Metrics.gauge metrics "alloc_sweep_words_per_entry")
    (float_of_int sweep_words /. float_of_int sweep_burst);
  let table =
    Tableout.create
      ~title:
        (Printf.sprintf
           "Allocation budget: minor words per hot-path op (%d routes, %d sweeps x %d entries, %d SSSP)"
           route_runs sweep_rounds sweep_burst sssp_runs)
      ~columns:[ "op"; "minor words/op" ]
  in
  Tableout.add_row table [ "ecan route (1 message)"; Tableout.cell_i route_words ];
  Tableout.add_row table
    [ Printf.sprintf "ttl sweep (%d expired)" sweep_burst; Tableout.cell_i sweep_words ];
  Tableout.add_row table [ "dijkstra sssp (reused workspace)"; Tableout.cell_i sssp_words ];
  Tableout.render ppf table;
  Format.fprintf ppf
    "  exact budgets: gated by bench/compare.exe's allocation-budget section (integer equality).@."
