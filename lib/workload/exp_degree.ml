(* Constant-degree frontier: what does a per-hop choice budget of k buy?

   Every overlay here exposes some neighbor-selection flexibility, but
   the width differs wildly: eCAN expressway slots and Chord finger arcs
   offer large candidate regions, while a degree-k de Bruijn node only
   ever chooses among the ~k members of its image arc.  This experiment
   makes the budget explicit and sweeps it: for k in {2,4,8,16}, every
   backend's table build may spend at most k RTT probes per slot (for
   Koorde, k additionally {e is} the de Bruijn fanout — its candidate set
   and its probe budget shrink together), and we measure

   - routing stretch with topology-aware selection under that budget,
     against the same overlay built with random selection (the ratio is
     what the budget bought);
   - maintenance traffic: RTT probes spent across build + stabilisation
     (Chord / Pastry / Koorde) and repair work / notifications (eCAN);
   - churn-repair latency under the standard seeded storm, reusing the
     churn experiment's drivers verbatim so rows are comparable with the
     churn table.

   Plain greedy CAN rides along as the zero-flexibility control: it has
   no selection to make, so aware = random and the ratio pins 1.0.

   Determinism: one seed fixes the storm, the membership and the probe
   schedule for every (backend, k) cell; the same storm replays against
   every cell, so the k axis is the only thing moving. *)

module Oracle = Topology.Oracle
module Builder = Core.Builder
module Strategy = Core.Strategy
module Measure = Core.Measure
module Metrics = Engine.Metrics
module Faults = Engine.Faults
module Landmarks = Landmark.Landmarks
module Rng = Prelude.Rng

let ks = [ 2; 4; 8; 16 ]
let stretch_pairs = 256
let size_of ~scale = max 32 (256 / max 1 scale)

type row = {
  backend : string;
  k : int;
  aware : float;  (* mean stretch, landmark+RTT selection under budget k *)
  random : float;  (* mean stretch, random selection on the same overlay *)
  probes : int;  (* RTT probes spent by the aware run; -1 = not applicable *)
  repair_ms : float;
  work : int;
  converged : bool;
}

(* Landmark vectors shared by the ring-like rows: same landmark choice
   as [Exp_churn.ring_like_outcome] (seed * 2003 + 2), so the rtts = k
   policy injected below agrees with the churn driver's own hybrid. *)
let vector_cache oracle ~seed =
  let lms = Landmarks.choose (Rng.create ((seed * 2003) + 2)) oracle 15 in
  let tbl = Hashtbl.create 512 in
  fun node ->
    match Hashtbl.find_opt tbl node with
    | Some v -> v
    | None ->
      let v = Landmarks.vector lms node in
      Hashtbl.replace tbl node v;
      v

(* The xover/cache experiments' vector-then-probe selection, with the
   probe budget as a parameter and every RTT measurement counted. *)
let counted_hybrid oracle vector_of ~rtts probes ~node ~candidates =
  let qvec = vector_of node in
  let ranked =
    candidates
    |> Array.to_list
    |> List.filter (fun c -> c <> node)
    |> List.map (fun c -> (Landmarks.vector_dist qvec (vector_of c), c))
    |> List.sort compare
    |> List.map snd
  in
  let rec go best = function
    | [] -> Option.map snd best
    | c :: rest ->
      incr probes;
      let d = Oracle.measure oracle node c in
      go (match best with Some (bd, _) when bd <= d -> best | _ -> Some (d, c)) rest
  in
  go None (List.filteri (fun i _ -> i < rtts) ranked)

let random_pick rng ~node:_ ~candidates =
  if Array.length candidates = 0 then None else Some (Rng.pick rng candidates)

(* One ring-like cell: run the churn driver twice on identical storms —
   once with the counted budget-k hybrid (stretch, probes, repair), once
   with random selection (its pre-storm stretch is the control). *)
let ring_like_row ~name ~k ~seed outcome_of oracle =
  let vector_of = vector_cache oracle ~seed in
  let probes = ref 0 in
  let aware_o =
    outcome_of ~pick:(counted_hybrid oracle vector_of ~rtts:k probes)
  in
  let rng = Rng.create ((seed * 31) + k) in
  let random_o = outcome_of ~pick:(random_pick rng) in
  {
    backend = name;
    k;
    aware = aware_o.Exp_churn.stretch_before;
    random = random_o.Exp_churn.stretch_before;
    probes = !probes;
    repair_ms = aware_o.Exp_churn.repair_ms;
    work = aware_o.Exp_churn.repair_work;
    converged = aware_o.Exp_churn.converged;
  }

let data ?(scale = 1) ?(seed = 11) () =
  let oracle = Ctx.oracle ~scale Ctx.Tsk_large Topology.Transit_stub.Manual in
  let size = size_of ~scale in
  let storm = Faults.default_storm in
  (* Random-tables eCAN control: same membership (same builder seed as
     the storm build below), tables rebuilt blind — k-independent, so it
     is measured once and shared by every eCAN cell. *)
  let random_b =
    Builder.build oracle
      {
        Builder.default_config with
        Builder.overlay_size = size;
        strategy = Strategy.Random_pick;
        seed = (seed * 1009) + 2;
      }
  in
  let ecan_random =
    (Measure.route_stretch ~pairs:stretch_pairs random_b).Measure.stretch
      .Prelude.Stats.mean
  in
  List.concat_map
    (fun k ->
      (* The eCAN stack reports under experiment=degree / k=<k> labels so
         its instruments never collide with the churn experiment's. *)
      let labels = [ ("experiment", "degree"); ("k", string_of_int k) ] in
      let ecan_o, can_o =
        Exp_churn.ecan_outcomes ~size ~seed ~storm ~labels
          ~strategy:(Strategy.hybrid ~rtts:k ()) oracle
      in
      let ecan_row =
        {
          backend = "ecan";
          k;
          aware = ecan_o.Exp_churn.stretch_before;
          random = ecan_random;
          probes = -1;
          repair_ms = ecan_o.Exp_churn.repair_ms;
          work = ecan_o.Exp_churn.repair_work;
          converged = ecan_o.Exp_churn.converged;
        }
      in
      let can_row =
        (* zero-flexibility control: no selection, aware = random *)
        {
          backend = "can";
          k;
          aware = can_o.Exp_churn.stretch_before;
          random = can_o.Exp_churn.stretch_before;
          probes = -1;
          repair_ms = can_o.Exp_churn.repair_ms;
          work = can_o.Exp_churn.repair_work;
          converged = can_o.Exp_churn.converged;
        }
      in
      let chord_row =
        ring_like_row ~name:"chord" ~k ~seed
          (fun ~pick -> Exp_churn.chord_outcome ~size ~seed ~storm ~pick oracle)
          oracle
      in
      let pastry_row =
        ring_like_row ~name:"pastry" ~k ~seed
          (fun ~pick -> Exp_churn.pastry_outcome ~size ~seed ~storm ~pick oracle)
          oracle
      in
      let koorde_row =
        (* k is both the probe budget and the de Bruijn fanout: the
           candidate set and the budget shrink together. *)
        ring_like_row ~name:"koorde" ~k ~seed
          (fun ~pick ->
            Exp_churn.koorde_outcome ~size ~seed ~storm ~degree:k ~pick oracle)
          oracle
      in
      [ ecan_row; can_row; chord_row; pastry_row; koorde_row ])
    ks

let record_row metrics r =
  let labels = [ ("backend", r.backend); ("k", string_of_int r.k) ] in
  let g name v = Metrics.set (Metrics.gauge metrics ~labels name) v in
  g "degree_stretch_aware" r.aware;
  g "degree_stretch_random" r.random;
  g "degree_stretch_ratio" (r.random /. r.aware);
  g "degree_repair_ms" r.repair_ms;
  g "degree_work" (float_of_int r.work);
  g "degree_converged" (if r.converged then 1.0 else 0.0);
  if r.probes >= 0 then g "degree_probes" (float_of_int r.probes)

let run_custom ?(scale = 1) ?(seed = 11) ppf =
  let metrics = Metrics.global in
  let rows = data ~scale ~seed () in
  let size = size_of ~scale in
  let table =
    Tableout.create
      ~title:
        (Printf.sprintf
           "Degree sweep: probe budget k per table slot over %d nodes (Koorde fanout = k), \
            standard storm, seed %d"
           size seed)
      ~columns:
        [ "backend"; "k"; "aware"; "random"; "ratio"; "probes"; "repair ms"; "work"; "ok" ]
  in
  List.iter
    (fun r ->
      record_row metrics r;
      Tableout.add_row table
        [
          r.backend;
          string_of_int r.k;
          Tableout.cell_f r.aware;
          Tableout.cell_f r.random;
          Printf.sprintf "%.2f" (r.random /. r.aware);
          (if r.probes >= 0 then string_of_int r.probes else "-");
          (if Float.is_nan r.repair_ms then "-" else Printf.sprintf "%.0f" r.repair_ms);
          Tableout.cell_i r.work;
          (if r.converged then "yes" else "NO");
        ])
    rows;
  (* Headline gauges the CI gate holds: what topology-aware selection
     buys at the constant-degree frontier, per fanout.  (At small node
     counts the largest fanout's arcs cover half the ring and the ratio
     legitimately approaches 1.0 — the gate pins the trajectory, not a
     ">1 everywhere" claim.) *)
  List.iter
    (fun r ->
      if r.backend = "koorde" then
        Metrics.set
          (Metrics.gauge metrics (Printf.sprintf "degree_random_over_aware_k%d" r.k))
          (r.random /. r.aware))
    rows;
  Tableout.render ppf table;
  Format.fprintf ppf
    "  aware/random: mean pre-storm stretch with landmark+RTT vs random selection under \
     the same k-probe budget; can is the zero-flexibility control (ratio 1.0).@.";
  Format.fprintf ppf
    "  probes: RTT measurements across build + stabilisation (Chord/Pastry/Koorde); \
     repair ms / work as in the churn table.@."

let run ?scale ?seed ppf = run_custom ?scale ?seed ppf
