(** Trace-driven repair-latency sweep and adaptive-maintenance comparison.

    Runs the eCAN + pub/sub stack under a seeded churn storm once per
    maintenance configuration — a grid over refresh period x sweep period
    x digest window, plus one adaptive run ({!Core.Maintenance.start}'s
    [?adapt]) — and, instead of a convergence oracle, measures repair from
    the {!Engine.Trace} span stream itself: {!Engine.Repair.analyze}
    correlates every injected fault with the departure notifications that
    repaired it and reports the latency tail (p50/p95/p99/max) per
    configuration.  The printed table is the experiment's product; the
    same numbers land in the metrics registry (histograms
    [repair_latency_ms] / [repair_detection_ms] / [repair_first_notify_ms]
    and counters [repair_faults] / [repair_repaired] /
    [repair_unrepaired], labelled [experiment=repair] and
    [config=<label>]) so [bench --json] can gate the tail against a
    baseline. *)

type config = {
  label : string;  (** metrics label and table row name *)
  refresh : float;  (** refresh period, ms *)
  sweep : float;  (** sweep period, ms *)
  digest_window : float;  (** notification digest window, ms *)
  adapt : Engine.Repair.policy option;  (** adaptive controller, or fixed periods *)
}

type result = {
  config : config;
  report : Engine.Repair.report;
  final_refresh : float;  (** period armed when the run ended *)
  final_sweep : float;
  adaptations : int;  (** controller decisions that moved a period (0 when fixed) *)
  notifications : int;
  drops : int;
}

val grid : config list
(** The fixed-period sweep: refresh {20 s, 40 s} x sweep {2.5 s, 5 s,
    10 s} x digest {0, 50 ms}, twelve configurations including the
    hand-picked churn-experiment constants (20 s / 5 s / no digests,
    labelled ["r20/s5/d0"]). *)

val adaptive : config
(** The adaptive run: starts from the hand-picked constants and lets a
    bounded controller retune them from observed repair latencies
    (refresh clamped below the soft-state TTL so live entries never
    flap). *)

val adaptive_p90 : config
(** Like {!adaptive}, but the controller decides on the delivered
    window's 90th percentile ([sample_pct = 90] — the lossy channel's
    stray worst sample no longer whipsaws the periods) and additionally
    tunes the bus digest window inside [10, 100] ms. *)

val run_one : ?scale:int -> ?seed:int -> ?metrics:Engine.Metrics.t -> config -> result
(** One storm under one configuration.  Deterministic: the same (scale,
    seed, config) always yields the same report and — with a fresh
    [metrics] registry — byte-identical metrics JSON.  [metrics] defaults
    to {!Engine.Metrics.global}. *)

val run : ?scale:int -> ?seed:int -> Format.formatter -> unit
(** The whole sweep ({!grid} plus {!adaptive} and {!adaptive_p90}) into
    one table, with the adaptive row's p99 compared against the
    hand-picked constants'. *)
