type entry = {
  name : string;
  title : string;
  run : scale:int -> Format.formatter -> unit;
}

let entry name title run = { name; title; run = (fun ~scale ppf -> run ?scale:(Some scale) ppf) }

let all =
  [
    entry "table2" "Table 2: experiment parameters" Exp_params.run;
    entry "fig2" "Figure 2: eCAN vs CAN logical hops" Exp_hops.run;
    entry "fig3" "Figure 3: NN search, ERS vs hybrid (tsk-large)" Exp_nn.fig3;
    entry "fig4" "Figure 4: ERS deep budgets (tsk-large)" Exp_nn.fig4;
    entry "fig5" "Figure 5: NN search, ERS vs hybrid (tsk-small)" Exp_nn.fig5;
    entry "fig6" "Figure 6: ERS deep budgets (tsk-small)" Exp_nn.fig6;
    entry "fig10" "Figure 10: stretch vs RTTs (tsk-large, GT-ITM)" Exp_stretch.fig10;
    entry "fig11" "Figure 11: stretch vs RTTs (tsk-large, manual)" Exp_stretch.fig11;
    entry "fig12" "Figure 12: stretch vs RTTs (tsk-small, GT-ITM)" Exp_stretch.fig12;
    entry "fig13" "Figure 13: stretch vs RTTs (tsk-small, manual)" Exp_stretch.fig13;
    entry "fig14" "Figure 14: stretch vs overlay size (GT-ITM)" Exp_scale.fig14;
    entry "fig15" "Figure 15: stretch vs overlay size (manual)" Exp_scale.fig15;
    entry "fig16" "Figure 16: map condense rate" Exp_condense.fig16;
    entry "gap" "Section 5.4: stretch penalty breakdown" Exp_gap.run;
    entry "tacan" "Section 1: Topologically-Aware CAN imbalance" Exp_tacan.run;
    entry "taxonomy" "Section 1: topology-exploitation taxonomy head-to-head" Exp_taxonomy.run;
    entry "xover" "Section 5: Chord/Pastry/Koorde generality" Exp_xoverlay.run;
    entry "coords" "Section 2: GNP coordinates vs landmark vectors" Exp_coords.run;
    entry "optim" "Section 5.5: optimisations and curve ablations" Exp_optim.run;
    entry "qos" "Section 6: load-aware neighbor selection" Exp_qos.run;
    entry "cost" "Messaging cost: probes to target stretch vs soft-state join" Exp_cost.run;
    entry "join" "Join latency: concurrent landmark probing through the probe plane" Exp_join.run;
    entry "waxman" "Robustness: flat Waxman topology (no hierarchy)" Exp_waxman.run;
    entry "churn" "Robustness: churn & fault storms, soft-state repair (all overlays)"
      (fun ?scale ppf -> Exp_churn.run ?scale ppf);
    entry "storm" "Maintenance plane: digest batching & heap-swept TTL under burst load"
      Exp_storm.run;
    entry "repair" "Repair latency: trace-driven tail analysis & adaptive maintenance tuning"
      (fun ?scale ppf -> Exp_repair.run ?scale ppf);
    entry "cache" "Service layer: topology-aware Zipf content cache (all overlays)"
      (fun ?scale ppf -> Exp_cache.run ?scale ppf);
    entry "mcast" "Dissemination trees: map-placed vs random relays under churn (all overlays)"
      (fun ?scale ppf -> Exp_mcast.run ?scale ppf);
    entry "degree" "Constant-degree frontier: choice budget k vs stretch / maintenance / repair"
      (fun ?scale ppf -> Exp_degree.run ?scale ppf);
    entry "domains" "Domain-parallel hosting: byte-identical metrics across pool sizes"
      (fun ?scale ppf -> Exp_domains.run ?scale ppf);
    entry "alloc" "Allocation budget: exact minor words per hot-path op"
      (fun ?scale ppf -> Exp_alloc.run ?scale ppf);
    entry "bigscale" "Raw speed: churn rows on 2^14..2^17-node transit-stub topologies"
      (fun ?scale ppf -> Exp_bigscale.run ?scale ppf);
  ]

let find name = List.find_opt (fun e -> e.name = name) all

let run_all ?(scale = 1) ppf =
  List.iter
    (fun e ->
      Format.fprintf ppf "@.>>> %s — %s@." e.name e.title;
      e.run ~scale ppf;
      (* keep the output flowing for long runs under tee *)
      Format.pp_print_flush ppf ())
    all
