module Oracle = Topology.Oracle
module Builder = Core.Builder
module Maintenance = Core.Maintenance
module Sim = Engine.Sim
module Faults = Engine.Faults
module Repair = Engine.Repair
module Store = Softstate.Store
module Bus = Pubsub.Bus
module Can_overlay = Can.Overlay
module Ecan_exp = Ecan.Expressway
module Rng = Prelude.Rng

type config = {
  label : string;
  refresh : float;
  sweep : float;
  digest_window : float;
  adapt : Repair.policy option;
}

type result = {
  config : config;
  report : Repair.report;
  final_refresh : float;
  final_sweep : float;
  adaptations : int;
  notifications : int;
  drops : int;
}

(* A deliberately short soft-state timeline: with a 30 s TTL the refresh
   and sweep knobs dominate how fast a crash is detected, which is exactly
   the sensitivity this sweep measures.  No liveness polling and no table
   audit — detection is pure soft-state expiry, nothing else to hide
   behind.  The store is sharded so the per-shard sweeps run staggered
   across the sweep period: a victim's entries then wait a sweep-dependent
   fraction of the period between expiring and being noticed, which is
   what gives the sweep knob its leverage on the tail (with one shard
   every sweep lands exactly on the synchronized-refresh expiry grid and
   the knob is inert). *)
let ttl = 30_000.0
let settle = 60_000.0
let min_membership = 8
let shards = 4

let storm =
  {
    Faults.crashes = 14;
    leaves = 4;
    joins = 12;
    expire_bursts = 1;
    expire_fraction = 0.1;
    start = 10_000.0;
    spread = 180_000.0;
  }

let channel = { Faults.loss = 0.05; delay_min = 5.0; delay_max = 50.0 }

let fixed ~refresh ~sweep ~digest_window =
  {
    label =
      Printf.sprintf "r%g/s%g/d%g" (refresh /. 1000.0) (sweep /. 1000.0) digest_window;
    refresh;
    sweep;
    digest_window;
    adapt = None;
  }

let hand_picked = fixed ~refresh:20_000.0 ~sweep:5_000.0 ~digest_window:0.0

let grid =
  List.concat_map
    (fun refresh ->
      List.concat_map
        (fun sweep ->
          List.map (fun dw -> fixed ~refresh ~sweep ~digest_window:dw) [ 0.0; 50.0 ])
        [ 2_500.0; 5_000.0; 10_000.0 ])
    [ 20_000.0; 40_000.0 ]

(* A crashed node's entries expire at last_refresh + ttl and are noticed
   by the next sweep, so the controller's useful range is: refresh pushed
   up toward (but kept under) the TTL — any higher and live entries expire
   between refreshes — and sweep pushed down. *)
let adaptive =
  {
    label = "adaptive";
    refresh = hand_picked.refresh;
    sweep = hand_picked.sweep;
    digest_window = 0.0;
    adapt =
      Some
        {
          Repair.target_ms = 15_000.0;
          headroom = 0.5;
          window = 8;
          sample_pct = 100.0;
          step = 1.5;
          min_refresh = 10_000.0;
          max_refresh = 25_000.0;
          min_sweep = 1_000.0;
          max_sweep = 10_000.0;
          min_digest = 0.0;
          max_digest = 0.0;
        };
  }

(* Same storm, but the controller decides on the window's 90th percentile
   of delivered repair latencies (the lossy channel's stray worst sample
   no longer whipsaws the periods) and additionally tunes the digest
   window inside [10, 100] ms. *)
let adaptive_p90 =
  {
    label = "adaptive p90";
    refresh = hand_picked.refresh;
    sweep = hand_picked.sweep;
    digest_window = 50.0;
    adapt =
      (match adaptive.adapt with
      | Some p -> Some { p with Repair.sample_pct = 90.0; min_digest = 10.0; max_digest = 100.0 }
      | None -> None);
  }

let run_one ?(scale = 1) ?(seed = 11) ?(metrics = Engine.Metrics.global) cfg =
  let oracle = Ctx.oracle ~scale Ctx.Tsk_large Topology.Transit_stub.Manual in
  let size = max 24 (96 / scale) in
  let sim = Sim.create () in
  let tracer = Engine.Trace.create ~capacity:(1 lsl 17) ~clock:(fun () -> Sim.now sim) () in
  let faults = Faults.create ~channel ~seed:(seed * 3001 + 1) () in
  let bconfig =
    {
      Builder.default_config with
      Builder.overlay_size = size;
      ttl;
      shards;
      seed = (seed * 3001) + 2;
    }
  in
  let labels = [ ("config", cfg.label); ("experiment", "repair") ] in
  let b =
    Builder.build ~metrics ~labels ~trace:tracer ~clock:(fun () -> Sim.now sim) oracle bconfig
  in
  let can = Ecan_exp.can b.Builder.ecan in
  let m =
    Maintenance.start ~sim ~metrics ~labels ~trace:tracer ~refresh_period:cfg.refresh
      ~sweep_period:cfg.sweep ~channel:(Faults.perturb faults) ~digest_window:cfg.digest_window
      ?adapt:cfg.adapt b
  in
  Maintenance.subscribe_all_slots m;
  let joiners =
    Array.of_seq
      (Seq.filter
         (fun i -> not (Can_overlay.mem can i))
         (Seq.init (Oracle.node_count oracle) (fun i -> i)))
  in
  let next_join = ref 0 in
  let drv = Rng.create ((seed * 3001) + 3) in
  let handler (ev : Faults.event) =
    match ev.Faults.action with
    | Faults.Crash ->
      let ids = Can_overlay.node_ids can in
      if Array.length ids > min_membership then begin
        let victim = Rng.pick drv ids in
        Faults.note faults (Printf.sprintf "crash node %d" victim);
        Maintenance.node_crashes m victim
      end
    | Faults.Leave ->
      let ids = Can_overlay.node_ids can in
      if Array.length ids > min_membership then begin
        let victim = Rng.pick drv ids in
        Faults.note faults (Printf.sprintf "leave node %d" victim);
        Maintenance.node_departs m victim
      end
    | Faults.Join ->
      if !next_join < Array.length joiners then begin
        let newcomer = joiners.(!next_join) in
        incr next_join;
        Faults.note faults (Printf.sprintf "join node %d" newcomer);
        Maintenance.node_joins m newcomer
      end
    | Faults.Expire fraction ->
      let aged = Store.inject_staleness b.Builder.store ~rng:drv ~fraction in
      Faults.note faults (Printf.sprintf "staleness injected into %d entries" aged)
  in
  Faults.install faults ~sim ~plan:(Faults.plan faults storm) ~handler;
  Sim.run ~until:(storm.Faults.start +. storm.Faults.spread +. settle) sim;
  let bus = Maintenance.bus m in
  let notifications = Bus.sent_count bus and drops = Bus.dropped_count bus in
  let final_refresh = Maintenance.refresh_period m and final_sweep = Maintenance.sweep_period m in
  let adaptations =
    match Maintenance.controller m with Some c -> Repair.adjustments c | None -> 0
  in
  Maintenance.stop m;
  let report = Repair.analyze (Engine.Trace.spans tracer) in
  Repair.record_metrics ~labels metrics report;
  { config = cfg; report; final_refresh; final_sweep; adaptations; notifications; drops }

let run ?(scale = 1) ?(seed = 11) ppf =
  let results = List.map (run_one ~scale ~seed) (grid @ [ adaptive; adaptive_p90 ]) in
  let size = max 24 (96 / scale) in
  let table =
    Tableout.create
      ~title:
        (Printf.sprintf
           "Repair latency over %d nodes (ttl %.0f s): %d crashes, %d leaves, %d joins, loss %.0f%%, seed %d"
           size (ttl /. 1000.0) storm.Faults.crashes storm.Faults.leaves storm.Faults.joins
           (100.0 *. channel.Faults.loss) seed)
      ~columns:
        [
          "config"; "faults"; "repaired"; "det p50"; "p50"; "p95"; "p99"; "max"; "adapts";
          "final r/s";
        ]
  in
  List.iter
    (fun r ->
      let d = r.report.Repair.repair in
      Tableout.add_row table
        [
          r.config.label;
          Tableout.cell_i (List.length r.report.Repair.records);
          Tableout.cell_i (List.length r.report.Repair.records - r.report.Repair.unrepaired);
          Printf.sprintf "%.0f" r.report.Repair.detection.Repair.p50;
          Printf.sprintf "%.0f" d.Repair.p50;
          Printf.sprintf "%.0f" d.Repair.p95;
          Printf.sprintf "%.0f" d.Repair.p99;
          Printf.sprintf "%.0f" d.Repair.max;
          Tableout.cell_i r.adaptations;
          Printf.sprintf "%.1f/%.1f" (r.final_refresh /. 1000.0) (r.final_sweep /. 1000.0);
        ])
    results;
  Tableout.render ppf table;
  Format.fprintf ppf
    "  latencies in ms from fault injection; det = first notification sent, p50..max = last delivery (full repair).@.";
  let find label = List.find (fun r -> r.config.label = label) results in
  let hand = find hand_picked.label and ad = find adaptive.label in
  Format.fprintf ppf
    "  adaptive p99 %.0f ms vs hand-picked (%s) %.0f ms after %d adjustments (final refresh/sweep %.1f/%.1f s).@."
    ad.report.Repair.repair.Repair.p99 hand_picked.label hand.report.Repair.repair.Repair.p99
    ad.adaptations
    (ad.final_refresh /. 1000.0)
    (ad.final_sweep /. 1000.0)
