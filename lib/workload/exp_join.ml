(* Join latency: the probe plane prices the RTT work a soft-state join
   performs.  At probe window 1 the landmark vector is measured
   sequentially — modelled wall-clock = the *sum* of the L landmark RTTs,
   exactly the seed behaviour.  At window L all L probes fly concurrently
   and the vector phase collapses to the single slowest landmark RTT: the
   ~L x join-latency improvement the paper's "a node measures its
   landmark vector" step implies once probes are issued in parallel.
   Probe *counts* are identical at every window — the plane reschedules
   probes in time, it never adds or removes measurements. *)

module Oracle = Topology.Oracle
module Builder = Core.Builder
module Strategy = Core.Strategy
module Landmarks = Landmark.Landmarks
module Can_overlay = Can.Overlay
module Ecan_exp = Ecan.Expressway
module Probe = Engine.Probe
module Metrics = Engine.Metrics

let joins_per_window = 16

type sample = {
  vector_ms : float;  (* modelled wall-clock of the landmark-vector batch *)
  selection_ms : float;  (* modelled wall-clock of per-slot candidate probing *)
  max_lmk : float;  (* ground truth: slowest landmark RTT *)
  sum_lmk : float;  (* ground truth: sum of landmark RTTs *)
  probes : int;  (* RTT measurements this join spent *)
}

let mean f xs = List.fold_left (fun a x -> a +. f x) 0.0 xs /. float_of_int (List.length xs)

(* Build a fresh overlay whose probe plane runs [window] concurrent
   probes, then join the same fresh nodes one by one, recording the
   modelled join cost against the ground-truth landmark RTTs. *)
let run_window ~scale ~window oracle =
  let size = max 128 (1024 / scale) in
  let labels = [ ("experiment", "join"); ("window", string_of_int window) ] in
  let config =
    {
      Builder.default_config with
      Builder.overlay_size = size;
      strategy = Strategy.hybrid ~rtts:10 ();
      probe = { Probe.default_config with Probe.window };
      seed = 42;
    }
  in
  let b = Builder.build ~metrics:Metrics.global ~labels oracle config in
  let can = Ecan_exp.can b.Builder.ecan in
  let joiners = ref [] in
  let i = ref 0 in
  while List.length !joiners < joins_per_window do
    if not (Can_overlay.mem can !i) then joiners := !i :: !joiners;
    incr i
  done;
  let joiners = List.rev !joiners in
  let lms = Landmarks.nodes b.Builder.landmarks in
  let vec_hist = Metrics.histogram Metrics.global ~labels "join_vector_ms" in
  let sel_hist = Metrics.histogram Metrics.global ~labels "join_selection_ms" in
  List.map
    (fun node ->
      let max_lmk = Array.fold_left (fun a l -> Float.max a (Oracle.dist oracle node l)) 0.0 lms in
      let sum_lmk = Array.fold_left (fun a l -> a +. Oracle.dist oracle node l) 0.0 lms in
      Oracle.reset_measurements oracle;
      let cost = Builder.join_node b node in
      let probes = Oracle.measurements oracle in
      Metrics.observe vec_hist cost.Builder.vector_ms;
      Metrics.observe sel_hist cost.Builder.selection_ms;
      {
        vector_ms = cost.Builder.vector_ms;
        selection_ms = cost.Builder.selection_ms;
        max_lmk;
        sum_lmk;
        probes;
      })
    joiners

let run ?(scale = 1) ppf =
  let oracle = Ctx.oracle ~scale Ctx.Tsk_large Topology.Transit_stub.Gtitm_random in
  let lcount = Builder.default_config.Builder.landmark_count in
  let windows = [ 1; lcount ] in
  let per_window = List.map (fun w -> (w, run_window ~scale ~window:w oracle)) windows in
  let table =
    Tableout.create
      ~title:
        (Printf.sprintf
           "Join latency vs probe window (tsk-large, %d joins, %d landmarks, means)"
           joins_per_window lcount)
      ~columns:
        [ "window"; "vector ms"; "max lmk RTT"; "sum lmk RTT"; "selection ms"; "probes/join" ]
  in
  List.iter
    (fun (w, samples) ->
      Tableout.add_row table
        [
          string_of_int w;
          Printf.sprintf "%.1f" (mean (fun s -> s.vector_ms) samples);
          Printf.sprintf "%.1f" (mean (fun s -> s.max_lmk) samples);
          Printf.sprintf "%.1f" (mean (fun s -> s.sum_lmk) samples);
          Printf.sprintf "%.1f" (mean (fun s -> s.selection_ms) samples);
          Printf.sprintf "%.1f" (mean (fun s -> float_of_int s.probes) samples);
        ])
    per_window;
  Tableout.render ppf table;
  let seq = List.assoc 1 per_window and con = List.assoc lcount per_window in
  let seq_vec = mean (fun s -> s.vector_ms) seq and con_vec = mean (fun s -> s.vector_ms) con in
  let speedup = if con_vec > 0.0 then seq_vec /. con_vec else 0.0 in
  let counts_equal = List.for_all2 (fun a b -> a.probes = b.probes) seq con in
  let within_2x =
    List.for_all (fun s -> s.max_lmk > 0.0 && s.vector_ms <= 2.0 *. s.max_lmk) con
  in
  Metrics.set (Metrics.gauge Metrics.global ~labels:[ ("experiment", "join") ] "join_vector_speedup")
    speedup;
  Metrics.set
    (Metrics.gauge Metrics.global ~labels:[ ("experiment", "join") ] "join_probe_counts_equal")
    (if counts_equal then 1.0 else 0.0);
  Format.fprintf ppf
    "  Vector phase collapses %.1f ms -> %.1f ms (%.1fx) when the %d landmark probes@.\
    \  fly concurrently; probe counts identical across windows: %b; window-%d vector@.\
    \  phase within 2x of the slowest landmark RTT on every join: %b.@."
    seq_vec con_vec speedup lcount counts_equal lcount within_2x
