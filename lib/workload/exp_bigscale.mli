(** Big-scale churn rows: the eCAN + soft-state + pub/sub stack under
    the default fault storm on transit-stub topologies of 2^14 and 2^17
    physical nodes (small 2^11/2^12 rows at test scales), exercising the
    CSR graph, flat oracle layout and allocation-disciplined hot paths
    at a scale the boxed seed representations could not reach in CI.

    Records [bigscale_*] gauges labelled [nodes=N] into the global
    registry (deterministic, pool-size-invariant); wall-clock build/run
    seconds are printed only. *)

val run : ?scale:int -> Format.formatter -> unit
(** Registry entry.  [scale <= 8] runs the 2^14 and 2^17 rows with a
    [max 48 (768 / scale)]-member overlay; larger (test) scales run
    2^11/2^12 rows so smoke suites stay fast. *)
