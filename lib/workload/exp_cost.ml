module Oracle = Topology.Oracle
module Builder = Core.Builder
module Strategy = Core.Strategy
module Can_overlay = Can.Overlay
module Ecan_exp = Ecan.Expressway

let targets = [ 16.0; 8.0; 4.0; 2.0; 1.5 ]

let probes_to_reach curve target =
  let rec scan k =
    if k >= Array.length curve then None
    else if curve.(k) <= target then Some (k + 1)
    else scan (k + 1)
  in
  scan 0

let cell = function Some k -> string_of_int k | None -> "> budget"

let run ?(scale = 1) ppf =
  let ers, hybrid = Exp_nn.data ~scale Ctx.Tsk_large in
  let table =
    Tableout.create
      ~title:"Messaging cost: probes needed to find a neighbor within a stretch target (tsk-large)"
      ~columns:[ "target stretch"; "ERS probes"; "lmk+RTT probes" ]
  in
  List.iter
    (fun target ->
      Tableout.add_row table
        [
          Printf.sprintf "%.1f" target;
          cell (probes_to_reach ers target);
          cell (probes_to_reach hybrid target);
        ])
    targets;
  Tableout.render ppf table;
  (* Measured cost of a soft-state join: landmark probes + per-region
     publishes + one lookup and a few RTT probes per table slot. *)
  let oracle = Ctx.oracle ~scale Ctx.Tsk_large Topology.Transit_stub.Gtitm_random in
  let size = max 128 (1024 / scale) in
  let b =
    Builder.build oracle
      {
        Builder.default_config with
        Builder.overlay_size = size;
        strategy = Strategy.hybrid ~rtts:10 ();
        seed = 42;
      }
  in
  (* pick a fresh physical node *)
  let can = Ecan_exp.can b.Builder.ecan in
  let joiner =
    let rec find i = if Can_overlay.mem can i then find (i + 1) else i in
    find 0
  in
  Oracle.reset_measurements oracle;
  let join_cost = Builder.join_node b joiner in
  let rtt_messages = Oracle.measurements oracle in
  let regions = List.length (Softstate.Store.regions_of b.Builder.store joiner) in
  let slots = Ecan_exp.table_size b.Builder.ecan joiner in
  (* overlay hop cost of the lookups the join performed *)
  let store = b.Builder.store in
  let vector = Builder.vector_of b joiner in
  let lookup_hops = ref 0 and lookups = ref 0 in
  for row = 0 to Ecan_exp.rows b.Builder.ecan joiner - 1 do
    let own = Ecan_exp.own_digit b.Builder.ecan joiner ~row in
    for digit = 0 to 3 do
      if digit <> own then begin
        let region = Ecan_exp.region_prefix b.Builder.ecan joiner ~row ~digit in
        match Softstate.Store.lookup_route store ~from:joiner ~region ~vector with
        | Some hops ->
          incr lookups;
          lookup_hops := !lookup_hops + List.length hops - 1
        | None -> ()
      end
    done
  done;
  Format.fprintf ppf
    "  Soft-state join cost (measured, %d-node overlay): %d RTT probes (landmarks +@.\
    \  per-slot selection), %d map publishes, %d expressway slots filled via@.\
    \  %d map lookups averaging %.1f overlay hops each.@."
    size rtt_messages regions slots !lookups
    (if !lookups = 0 then 0.0 else float_of_int !lookup_hops /. float_of_int !lookups);
  (* Probe-plane pricing of the same join: at the default window of 1 the
     probes are sequential, so the wall-clock is the sum of their RTTs —
     the `join` experiment shows the concurrent-window collapse. *)
  Format.fprintf ppf
    "  Modelled join wall-clock at probe window 1: %.1f ms landmark vector +@.\
    \  %.1f ms slot selection (see the `join` experiment for wider windows).@."
    join_cost.Builder.vector_ms join_cost.Builder.selection_ms
