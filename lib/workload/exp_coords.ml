module Oracle = Topology.Oracle
module Landmarks = Landmark.Landmarks
module Coordinates = Landmark.Coordinates
module Search = Proximity.Search
module Stats = Prelude.Stats
module Rng = Prelude.Rng

let landmark_count = 15
let population = 2000
let query_count = 60
let estimate_pairs = 2000
let budgets = [ 1; 5; 10; 20 ]

let run ?(scale = 1) ppf =
  let oracle = Ctx.oracle ~scale Ctx.Tsk_large Topology.Transit_stub.Gtitm_random in
  let rng = Rng.create 2718 in
  let n = Oracle.node_count oracle in
  let size = max 256 (population / scale) in
  let all = Array.init n (fun i -> i) in
  let nodes = Rng.sample rng size all in
  let lms = Landmarks.choose rng oracle landmark_count in
  let embedding = Coordinates.embed_landmarks rng oracle (Landmarks.nodes lms) in
  (* Drain the landmark probes through a full-width probe plane: the
     vectors are identical to the sequential path, the plane just prices
     each batch at the slowest member RTT instead of the sum. *)
  let prober =
    Engine.Probe.create
      ~config:{ Engine.Probe.default_config with Engine.Probe.window = landmark_count }
      ~measure:(Oracle.measure oracle) ()
  in
  let vectors = Hashtbl.create size and coords = Hashtbl.create size in
  Array.iter
    (fun node ->
      let v = Landmarks.vector_via lms prober node in
      Hashtbl.replace vectors node v;
      Hashtbl.replace coords node (Coordinates.position ~iterations:200 embedding rng ~measured:v))
    nodes;
  Format.fprintf ppf
    "@.  %d landmark vectors measured concurrently: %.0f ms modelled wall-clock (sequential would sum every RTT)@."
    size (Engine.Probe.total_elapsed prober);
  (* 1. raw estimation accuracy over random pairs *)
  let errors =
    Array.init estimate_pairs (fun _ ->
        let a = Rng.pick rng nodes and b = Rng.pick rng nodes in
        let actual = Oracle.dist oracle a b in
        if actual > 0.0 then
          Coordinates.relative_error ~actual
            ~estimated:(Coordinates.estimate (Hashtbl.find coords a) (Hashtbl.find coords b))
        else 0.0)
  in
  let err = Stats.summarize errors in
  Format.fprintf ppf
    "@.== Ablation: GNP coordinates (%d-d, %d landmarks) ==@.  distance estimation relative error: mean %.3f  p50 %.3f  p90 %.3f@."
    embedding.Coordinates.dims landmark_count err.Stats.mean err.Stats.p50 err.Stats.p90;
  (* 2. NN pre-selection quality: rank candidates by landmark-vector
     distance vs by coordinate distance, probe top-k by RTT *)
  let queries = Rng.sample rng (min query_count size) nodes in
  let avg signal =
    let per_budget = Array.make (List.length budgets) 0.0 in
    Array.iter
      (fun query ->
        let _, optimal = Search.true_nearest oracle ~query ~candidates:nodes in
        let curve =
          Search.hybrid_curve oracle ~vector_of:signal ~candidates:nodes ~query
            ~budget:(List.fold_left max 1 budgets)
        in
        let stretch = Search.stretch_curve curve ~optimal in
        List.iteri
          (fun i b ->
            per_budget.(i) <-
              per_budget.(i) +. stretch.(min (b - 1) (Array.length stretch - 1)))
          budgets)
      queries;
    Array.map (fun v -> v /. float_of_int (Array.length queries)) per_budget
  in
  let by_vector = avg (fun node -> Hashtbl.find vectors node) in
  let by_coords = avg (fun node -> Hashtbl.find coords node) in
  let table =
    Tableout.create ~title:"NN-search stretch by pre-selection signal"
      ~columns:[ "RTT budget"; "landmark vectors (paper)"; "GNP coordinates" ]
  in
  List.iteri
    (fun i b ->
      Tableout.add_row table
        [ Tableout.cell_i b; Tableout.cell_f by_vector.(i); Tableout.cell_f by_coords.(i) ])
    budgets;
  Tableout.render ppf table
