(** Join-latency experiment: prices a soft-state join's RTT work through
    {!Engine.Probe} at probe window 1 (sequential, the seed behaviour)
    and window L (all landmark probes concurrent).  The landmark-vector
    phase collapses from the {e sum} of the L landmark RTTs to the single
    slowest one — roughly an L-fold join-latency improvement — while the
    number of RTT measurements per join stays byte-identical across
    windows.  Records [join_vector_ms]/[join_selection_ms] histograms per
    window plus [join_vector_speedup] into {!Engine.Metrics.global}. *)

val run : ?scale:int -> Format.formatter -> unit
