module Builder = Core.Builder
module Strategy = Core.Strategy
module Measure = Core.Measure
module Store = Softstate.Store

let rates = [ 0.0625; 0.25; 1.0; 2.0; 4.0; 8.0 ]
let overlay_size = 4096
let measure_pairs = 1024

let fig16 ?(scale = 1) ppf =
  let oracle = Ctx.oracle ~scale Ctx.Tsk_large Topology.Transit_stub.Manual in
  let size = max 128 (overlay_size / scale) in
  let table =
    Tableout.create
      ~title:
        (Printf.sprintf
           "Figure 16: map reduction rate vs entries/node and stretch (tsk-large, manual, %d nodes)"
           size)
      ~columns:[ "reduction rate"; "entries / hosting node"; "p90 entries"; "hosting nodes"; "stretch" ]
  in
  List.iter
    (fun condense ->
      let b =
        Builder.build oracle
          {
            Builder.default_config with
            Builder.overlay_size = size;
            condense;
            strategy = Strategy.hybrid ~rtts:10 ();
            seed = 42;
          }
      in
      let hosting = Store.hosting_stats b.Builder.store in
      let stretch =
        (Measure.route_stretch ~pairs:measure_pairs b).Measure.stretch.Prelude.Stats.mean
      in
      (* Headline numbers per reduction rate go to the global registry. *)
      let labels = [ ("condense", Printf.sprintf "%.4f" condense) ] in
      let g name v =
        Engine.Metrics.set (Engine.Metrics.gauge Engine.Metrics.global ~labels name) v
      in
      g "condense_entries_per_host" hosting.Prelude.Stats.mean;
      g "condense_hosting_nodes" (float_of_int hosting.Prelude.Stats.count);
      g "condense_stretch" stretch;
      Tableout.add_row table
        [
          Printf.sprintf "%.2f" condense;
          Tableout.cell_f hosting.Prelude.Stats.mean;
          Tableout.cell_f hosting.Prelude.Stats.p90;
          Tableout.cell_i hosting.Prelude.Stats.count;
          Tableout.cell_f stretch;
        ])
    rates;
  Tableout.render ppf table
