(* Maintenance-plane storm: a burst workload aimed squarely at the two
   hot paths this plane optimises — TTL expiry sweeps and notification
   delivery.  N publishers push fresh soft-state entries into a watched
   region in bursts while M subscribers hold [Any_new_entry] watches, so
   every burst is an (N x M) notification storm.  The scenario runs
   twice on identical input: once with the seed configuration (flat
   store, one scheduled engine event per notification) and once with a
   sharded store and a nonzero digest window, demonstrating that

   - a sweep's cost tracks the number of *expired* entries (heap pops),
     not the store's total population: the first sweep arrives when only
     the first burst has aged out and visits just that burst;
   - digest batching collapses the per-(subscriber, region) delivery
     events by the burst fan-in (one digest per subscriber per burst
     instead of one event per notification) without changing what is
     delivered. *)

module Sim = Engine.Sim
module Metrics = Engine.Metrics
module Store = Softstate.Store
module Bus = Pubsub.Bus
module Can_overlay = Can.Overlay
module Number = Landmark.Number
module Point = Geometry.Point
module Rng = Prelude.Rng

let substrate = 256 (* CAN members hosting the maps *)
let ttl = 10_000.0
let burst_gap = 500.0
let window = 50.0 (* digest window, well under the gap *)
let vector_dims = 5
let max_latency = 400.0

(* Deterministic synthetic landmark vector for a published id. *)
let vector_of node =
  Array.init vector_dims (fun i -> float_of_int ((node * ((7 * i) + 3)) mod 400))

type run_stats = {
  mode : string;
  entries : int;  (** soft-state entries published over the run *)
  sent : int;
  delivered : int;
  scheduled : int;  (** engine delivery events the bus scheduled *)
  digests : int;
  first_visited : int;  (** heap records popped by the first sweep *)
  first_expired : int;  (** entries that had actually expired by then *)
  total_expired : int;
}

let run_one ~mode ~shards ~digest_window ~publishers ~subscribers ~bursts =
  let rng = Rng.create 21 in
  let can = Can_overlay.create ~dims:2 0 in
  for id = 1 to substrate - 1 do
    ignore (Can_overlay.join can id (Point.random rng 2))
  done;
  let sim = Sim.create () in
  let metrics = Metrics.global in
  let labels = [ ("experiment", "storm"); ("mode", mode) ] in
  let scheme = Number.default_scheme ~max_latency () in
  let store =
    Store.create ~metrics ~labels ~shards ~default_ttl:ttl
      ~clock:(fun () -> Sim.now sim)
      ~scheme can
  in
  let bus = Bus.create ~metrics ~labels ~sim ~digest_window store in
  let delivered = ref 0 in
  for s = 0 to subscribers - 1 do
    ignore
      (Bus.subscribe bus ~subscriber:s ~region:[||] ~condition:Bus.Any_new_entry
         ~handler:(fun _ -> incr delivered))
  done;
  (* Publish bursts: every burst is [publishers] fresh ids, all at the
     same virtual instant, [burst_gap] apart. *)
  for b = 0 to bursts - 1 do
    Sim.run ~until:(float_of_int b *. burst_gap) sim;
    for p = 0 to publishers - 1 do
      let node = 1_000 + (b * publishers) + p in
      Bus.publish bus ~region:[||] ~node ~vector:(vector_of node)
    done
  done;
  let visited () = Metrics.count (Metrics.counter metrics ~labels "store_sweep_visited") in
  (* First sweep lands when only the first burst has aged out: a scan
     would walk all [bursts * publishers] entries, the heap pops only the
     expired ones. *)
  Sim.run ~until:(ttl +. (burst_gap /. 2.0)) sim;
  let first_expired = Bus.expire_sweep bus in
  let first_visited = visited () in
  (* Then run past every expiry and drain the rest. *)
  Sim.run ~until:(ttl +. (float_of_int bursts *. burst_gap)) sim;
  let rest_expired = Bus.expire_sweep bus in
  assert (Store.check_invariants store = Ok ());
  let scheduled =
    if digest_window > 0.0 then Bus.batched_count bus
    else Bus.sent_count bus - Bus.dropped_count bus
  in
  {
    mode;
    entries = bursts * publishers;
    sent = Bus.sent_count bus;
    delivered = !delivered;
    scheduled;
    digests = Bus.batched_count bus;
    first_visited;
    first_expired;
    total_expired = first_expired + rest_expired;
  }

let run ?(scale = 1) ppf =
  let scale = max 1 scale in
  let publishers = max 8 (64 / scale) in
  let subscribers = max 4 (48 / scale) in
  let bursts = 8 in
  let seed_stats =
    run_one ~mode:"seed" ~shards:1 ~digest_window:0.0 ~publishers ~subscribers ~bursts
  in
  let digest_stats =
    run_one ~mode:"digest" ~shards:4 ~digest_window:window ~publishers ~subscribers ~bursts
  in
  let table =
    Tableout.create
      ~title:
        (Printf.sprintf
           "Maintenance storm: %d publishers x %d subscribers x %d bursts (ttl %.0fs, digest window %.0f ms)"
           publishers subscribers bursts (ttl /. 1000.0) window)
      ~columns:
        [
          "mode";
          "entries";
          "notifs sent";
          "delivered";
          "sched events";
          "digests";
          "sweep1 visited";
          "sweep1 expired";
        ]
  in
  let row s =
    Tableout.add_row table
      [
        s.mode;
        Tableout.cell_i s.entries;
        Tableout.cell_i s.sent;
        Tableout.cell_i s.delivered;
        Tableout.cell_i s.scheduled;
        Tableout.cell_i s.digests;
        Tableout.cell_i s.first_visited;
        Tableout.cell_i s.first_expired;
      ]
  in
  let record s =
    let labels = [ ("mode", s.mode) ] in
    let g name v = Metrics.set (Metrics.gauge Metrics.global ~labels name) v in
    g "storm_entries" (float_of_int s.entries);
    g "storm_sched_events" (float_of_int s.scheduled);
    g "storm_sweep1_visited" (float_of_int s.first_visited);
    g "storm_sweep1_expired" (float_of_int s.first_expired);
    g "storm_total_expired" (float_of_int s.total_expired)
  in
  record seed_stats;
  record digest_stats;
  row seed_stats;
  row digest_stats;
  let ratio = float_of_int seed_stats.scheduled /. float_of_int (max 1 digest_stats.scheduled) in
  Metrics.set (Metrics.gauge Metrics.global "storm_sched_ratio") ratio;
  Tableout.render ppf table;
  Format.fprintf ppf
    "  sched events: engine delivery events (digest mode batches per subscriber+region) — %.1fx fewer.@."
    ratio;
  Format.fprintf ppf
    "  sweep1: runs when only the first burst (%d of %d entries) has expired; the heap visits only those.@."
    seed_stats.first_expired seed_stats.entries
