(* Domain-parallel hosting: the determinism contract, exercised.

   One seeded maintenance-heavy workload — bursts of soft-state
   publishes across a sharded store, refreshes, TTL sweeps, probe
   batches through a lossy channel, a membership change with rehosting —
   runs three times, identical in everything except the size of the
   domain pool hosting the store's shard phases and the prober's
   prefetch (1, 2 and 4 domains).  Each run reports into its own fresh
   metrics registry; the experiment then compares the rendered JSON of
   the three registries byte for byte.  DESIGN.md §12 promises they
   cannot differ; the [domains_identical] gauge (and the bench gate over
   it) holds the implementation to that promise.

   Wall-clock per run is printed for the speedup table but never
   recorded as a metric — real time is the one thing the contract does
   NOT pin down. *)

module Sim = Engine.Sim
module Metrics = Engine.Metrics
module Dpool = Engine.Dpool
module Probe = Engine.Probe
module Faults = Engine.Faults
module Store = Softstate.Store
module Can_overlay = Can.Overlay
module Number = Landmark.Number
module Point = Geometry.Point
module Rng = Prelude.Rng
module Json = Prelude.Json

let ttl = 3_000.0
let burst_gap = 1_000.0
let vector_dims = 5
let shards = 8

(* Deterministic synthetic landmark vector for a published id. *)
let vector_of node =
  Array.init vector_dims (fun i -> float_of_int ((node * ((7 * i) + 3)) mod 400))

(* Deterministic per-pair RTT: what the contract requires of a
   pool-backed measurement function (Probe's prefetch may evaluate it
   from any worker domain). *)
let measure src dst = 1.0 +. float_of_int (((src * 31) + (dst * 17)) mod 400)

(* 3-bit region path for a publisher index, spreading regions over the
   store's shards. *)
let region_of p = [| p land 1; (p lsr 1) land 1; (p lsr 2) land 1 |]

type one = {
  domains : int;
  json : string;  (* full metrics JSON of the run's private registry *)
  entries : int;
  purged : int;
  probes : int;
  wall_s : float;
}

let run_once ~scale ~domains =
  let t0 = Unix.gettimeofday () in
  let metrics = Metrics.create () in
  let labels = [ ("experiment", "domains") ] in
  let pool = Dpool.get ~domains in
  let rng = Rng.create 77 in
  let can = Can_overlay.create ~dims:2 0 in
  let substrate = max 32 (192 / scale) in
  for id = 1 to substrate - 1 do
    ignore (Can_overlay.join can id (Point.random rng 2))
  done;
  let clock = ref 0.0 in
  let scheme = Number.default_scheme ~max_latency:400.0 () in
  let store =
    Store.create ~metrics ~labels ~pool ~shards ~default_ttl:ttl
      ~clock:(fun () -> !clock)
      ~scheme can
  in
  let faults =
    Faults.create ~channel:{ Faults.loss = 0.02; delay_min = 1.0; delay_max = 9.0 } ~seed:5 ()
  in
  let prober =
    Probe.create ~metrics ~labels ~pool ~faults
      ~clock:(fun () -> !clock)
      ~config:
        { Probe.default_config with
          Probe.window = 4;
          timeout = 600.0;
          retries = 1;
          cache_ttl = 2_500.0 }
      ~measure ()
  in
  let bursts = max 6 (24 / scale) in
  let publishers = max 8 (64 / scale) in
  let entries = ref 0 in
  let purged = ref 0 in
  for b = 0 to bursts - 1 do
    clock := float_of_int b *. burst_gap;
    for p = 0 to publishers - 1 do
      let node = 1_000 + (b * publishers) + p in
      Store.publish store ~region:(region_of p) ~node ~vector:(vector_of node);
      incr entries
    done;
    (* Keep a rotating slice of the previous burst alive past its TTL. *)
    if b > 0 then
      for p = 0 to (publishers / 4) - 1 do
        let node = 1_000 + ((b - 1) * publishers) + p in
        Store.refresh store ~region:(region_of p) ~node
      done;
    (* One probe batch per burst: duplicate and repeat destinations mix
       cache hits, prefetched fresh pairs and lossy retries. *)
    let dsts = Array.init 12 (fun i -> ((b * 7) + (i * 13)) mod (2 * substrate)) in
    ignore (Probe.run_batch prober ~src:(b mod substrate) ~dsts);
    purged := !purged + List.length (Store.sweep_expired store)
  done;
  (* Membership change: zones move, every entry is rehosted. *)
  ignore (Can_overlay.join can substrate (Point.random rng 2));
  Store.rehost store;
  let stats = Store.hosting_stats store in
  Metrics.set (Metrics.gauge metrics ~labels "domains_hosting_mean") stats.Prelude.Stats.mean;
  Metrics.set
    (Metrics.gauge metrics ~labels "domains_avg_entries")
    (Store.avg_entries_per_node store);
  (match Store.check_invariants store with
  | Ok () -> ()
  | Error e -> failwith ("domains experiment: store invariants broken: " ^ e));
  {
    domains;
    json = Json.to_string (Metrics.to_json metrics);
    entries = !entries;
    purged = !purged;
    probes = Probe.probes prober;
    wall_s = Unix.gettimeofday () -. t0;
  }

let run ?(scale = 1) ppf =
  let runs = List.map (fun d -> run_once ~scale ~domains:d) [ 1; 2; 4 ] in
  let base = List.hd runs in
  let identical = List.for_all (fun r -> String.equal r.json base.json) runs in
  (* Deterministic facts go to the global registry (and hence the bench
     gate); wall-clock stays in the table below. *)
  let labels = [ ("experiment", "domains") ] in
  let g name v = Metrics.set (Metrics.gauge Metrics.global ~labels name) v in
  g "domains_identical" (if identical then 1.0 else 0.0);
  g "domains_entries" (float_of_int base.entries);
  g "domains_purged" (float_of_int base.purged);
  g "domains_probes" (float_of_int base.probes);
  let table =
    Tableout.create
      ~title:
        (Printf.sprintf
           "Domain-parallel hosting: %d entries, %d purged, %d probes, %d shards — metrics JSON compared byte-for-byte across pool sizes"
           base.entries base.purged base.probes shards)
      ~columns:[ "domains"; "wall s"; "speedup"; "metrics JSON" ]
  in
  List.iter
    (fun r ->
      Tableout.add_row table
        [
          string_of_int r.domains;
          Printf.sprintf "%.3f" r.wall_s;
          Printf.sprintf "%.2fx" (base.wall_s /. Float.max 1e-9 r.wall_s);
          (if String.equal r.json base.json then "identical" else "DIVERGED");
        ])
    runs;
  Tableout.render ppf table;
  Format.fprintf ppf
    "  wall-clock is host-dependent (real speedup needs >= 2 cores) and is never recorded@.";
  Format.fprintf ppf
    "  as a metric; the [domains_identical] gauge asserts the DESIGN.md §12 contract.@.";
  if not identical then failwith "domains experiment: metrics diverged across pool sizes"
