(** Allocation microbench: exact [Gc.minor_words] budgets for the
    simulation hot paths — one eCAN expressway route, one TTL sweep over
    a 64-entry expired burst, and one Dijkstra single-source run of the
    kind [Oracle.build] issues in a loop.

    Records [alloc_minor_words_per_route] / [alloc_minor_words_per_sweep]
    / [alloc_minor_words_per_sssp] as counters, which
    [bench/compare.exe]'s allocation-budget section holds to {e exact}
    integer equality: any allocation regression on a hot path fails the
    gate.  Single-domain by construction (explicit 1-domain pool), so
    the numbers are identical across TOPOAWARE_DOMAINS legs. *)

val run : ?scale:int -> Format.formatter -> unit
(** Registry entry; [scale] is accepted for registry uniformity but the
    op fixtures are fixed-size (budgets must be exact, not
    scale-dependent). *)
