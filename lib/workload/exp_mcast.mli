(** Dissemination-tree comparison over the soft-state maps.

    Runs one {!Engine.Mcast} group — same subscribers, same seeded
    publish schedule, same churn storm — over six backend rows: eCAN trees
    with soft-state-aware placement, the same eCAN overlay with random
    placement (the control arm), plain greedy CAN, Chord, Pastry and
    Koorde (the constant-degree de Bruijn frontier).
    The static phase (before the storm) delivers to an identical group
    on the aware and random rows, so the stretch / link-stress /
    delivered-latency gaps are pure placement; the churn phase crashes,
    departs and joins group members, with parent loss detected through
    real [Departure_of] watches on the pub/sub bus (a crashed parent's
    entries must TTL-expire and be swept first), so the reported regraft
    latency includes the soft-state plane's genuine detection delay.

    Per-row metrics land under [experiment=mcast] / [backend=<label>]
    (the [mcast_*] counters and histograms from {!Engine.Mcast.create}
    plus gauges recorded by {!record_stats}); {!run_custom} additionally
    records the headline gauges the CI gate holds —
    [mcast_random_over_aware_p50] / [_p99] / [_stretch_p50] / [_stress]
    (all > 1 when placement pays) and [mcast_delivered_equal]. *)

type stats = {
  label : string;  (** backend row name, e.g. ["ecan aware"] *)
  static_lat : float array;  (** per-delivery latency, ms, static phase *)
  static_stretch : float array;  (** per-delivery stretch vs direct route *)
  static_delivered : int;
  static_missed : int;
  static_stress_max : int;  (** most traversals of one link in one publish *)
  static_stress_mean : float;  (** traversals per distinct physical link *)
  static_traversals : int;  (** total physical link traversals *)
  static_cost_ms : float;
      (** resource usage over the static phase (sum of per-publish
          {!Engine.Mcast.delivery}[.cost_ms]) — the aggregate network
          cost the aware/random stress gauge compares *)
  churn_lat : float array;  (** per-delivery latency during the storm *)
  churn_delivered : int;
  churn_missed : int;  (** orphaned / unroutable subscriber misses *)
  regrafts : int;  (** orphaned subtrees re-attached *)
  relays : int;  (** out-of-tree members recruited as interiors *)
  regraft : Engine.Repair.dist;
      (** orphanhood durations (fault to regraft), correlated from the
          [Mcast_regraft] trace spans by {!Engine.Repair.analyze} *)
}

val data :
  ?scale:int ->
  ?seed:int ->
  ?group_size:int ->
  ?degree:int ->
  ?policy:Engine.Mcast.policy ->
  ?domains:int ->
  ?metrics:Engine.Metrics.t ->
  unit ->
  stats list
(** Run the comparison and return one {!stats} per backend row, in table
    order.  [policy] restricts the eCAN pair to one placement arm
    (default: both, first [Aware] then [Random]).  [degree] is the tree
    fanout bound (default 3), [group_size] the subscriber count (default
    scales with [scale], clamped to the overlay).  [domains] pins the
    store's domain pool as {!Core.Builder.config}[.domains] — the
    determinism contract (DESIGN §12) holds: with a fresh [metrics]
    registry the metrics JSON is byte-identical across [domains] values
    and across repeated same-seed runs. *)

val record_stats : Engine.Metrics.t -> stats -> unit
(** Record one row's summary gauges ([mcast_delivery_p50_ms] /
    [mcast_delivery_p99_ms], [mcast_stretch_p50] / [_p99],
    [mcast_stress_mean] / [_max], [mcast_churn_delivery_p50_ms] /
    [_p99_ms], and — only when the row re-grafted anything —
    [mcast_regraft_p50_ms] / [_p99_ms]) labelled [backend=<label>]. *)

val run_custom :
  ?scale:int ->
  ?seed:int ->
  ?group_size:int ->
  ?degree:int ->
  ?policy:Engine.Mcast.policy ->
  Format.formatter ->
  unit
(** {!data} into a table on the global metrics registry, plus the
    headline aware-vs-random gauges (recorded only when both eCAN rows
    ran). *)

val run : ?scale:int -> ?seed:int -> Format.formatter -> unit
(** {!run_custom} with defaults — the registry entry point. *)
