(** Topology-aware Zipf content cache: a service workload on the overlay.

    Clients attached to overlay members (cycling online/offline on a
    seeded duty cycle) issue Zipf-distributed requests for keys mapped
    onto the overlay key space; every backend — eCAN with topology-aware
    tables, the same eCAN rebuilt with random tables, plain greedy CAN,
    Chord, Pastry, Koorde — serves the {e identical} request schedule through
    {!Engine.Cache} and reports delivered-latency percentiles, hit rate,
    hotspot replications, load sheds and the max per-node load.  See the
    module comment in the implementation for the two controlled
    comparisons (aware vs random at equal hit rate; replication on vs
    off at equal hit rate). *)

type stats = {
  label : string;
  requests : int;
  hits : int;
  misses : int;
  replications : int;
  sheds : int;
  failovers : int;
  mean_ms : float;
  p50_ms : float;
  p99_ms : float;
  hit_rate : float;
  max_load : int;  (** most requests served by a single node *)
  key_digest : int;  (** order-independent multiset digest of requested keys *)
}

val data :
  ?scale:int ->
  ?seed:int ->
  ?zipf_s:float ->
  ?clients:int ->
  ?replicas:int ->
  ?metrics:Engine.Metrics.t ->
  ?trace:Engine.Trace.t ->
  unit ->
  stats list
(** Run every backend over the shared schedule and return the rows in
    order: eCAN aware, eCAN random-tables, plain CAN, Chord, Pastry,
    Koorde, eCAN aware with [replicas = 1] (replication disabled).  The first
    three and the last share the same CAN substrate and key homes, so
    their hit rates are equal by construction. *)

val run_custom :
  ?scale:int -> ?seed:int -> ?zipf_s:float -> ?clients:int -> ?replicas:int ->
  Format.formatter -> unit
(** {!data} into a rendered table, per-backend [cache_*] gauges and the
    headline comparison gauges in {!Engine.Metrics.global}. *)

val run : ?scale:int -> ?seed:int -> Format.formatter -> unit
