(* Topology-aware dissemination trees: the mcast experiment.

   A group of subscriber nodes receives an identical publish schedule
   through [Engine.Mcast] trees over every backend: two trees on the
   same eCAN overlay differing only in placement policy (soft-state
   [Aware] vs seeded [Random] — the headline pair), plus trees routed
   over plain CAN, Chord, Pastry and Koorde.  During a static phase the
   group is
   stable, so the aware and random rows deliver exactly the same count
   and the stretch/stress/latency gaps are pure placement.  A churn
   storm then crashes, departs and joins group members: parent loss is
   detected through the *real* soft-state plane — every tree node holds
   a [Departure_of parent] watch on the pub/sub bus, and a crashed
   parent's entries must TTL-expire and be swept before the watch fires
   and the orphaned subtree re-grafts through the maps.  The orphanhood
   duration (crash to regraft) lands in [Mcast_regraft] spans, which
   [Engine.Repair.analyze] attributes back to the lost parent like any
   other repair traffic.

   Determinism: the churn schedule (event times, victims, newcomers) is
   derived once from the seed over the shared member population and
   replayed verbatim against every row, so group evolution — and hence
   each publish's delivery opportunity — is identical across backends. *)

module Oracle = Topology.Oracle
module Builder = Core.Builder
module Maintenance = Core.Maintenance
module Sim = Engine.Sim
module Mcast = Engine.Mcast
module Probe = Engine.Probe
module Repair = Engine.Repair
module Metrics = Engine.Metrics
module Trace = Engine.Trace
module Store = Softstate.Store
module Bus = Pubsub.Bus
module Can_overlay = Can.Overlay
module Ecan_exp = Ecan.Expressway
module Ring = Chord.Ring
module Mesh = Pastry.Mesh
module Dbj = Koorde.Debruijn
module Landmarks = Landmark.Landmarks
module Zone = Geometry.Zone
module Stats = Prelude.Stats
module Rng = Prelude.Rng

(* ------------------------------------------------------------------ *)
(* Timeline                                                            *)
(* ------------------------------------------------------------------ *)

(* Short soft-state timeline (the repair sweep's): with a 30 s TTL and
   no liveness polling, crash detection is pure expiry + sweep, so a
   crashed interior node's subtree stays orphaned for a refresh/sweep-
   dependent window that the churn-phase publishes sample. *)
let ttl = 30_000.0
let refresh = 20_000.0
let sweep = 5_000.0
let shards = 4
let static_start = 4_000.0
let storm_start = 30_000.0
let storm_end = 100_000.0
let pubs_end = 135_000.0
let horizon = 150_000.0

let sizes ~scale =
  let scale = max 1 scale in
  let size = max 24 (96 / scale) in
  let group = max 8 (min (size - 1) (64 / scale)) in
  let static_pubs = max 6 (16 / scale) in
  let churn_pubs = max 12 (48 / scale) in
  let crashes = max 3 (12 / scale) in
  let leaves = max 1 (4 / scale) in
  let joins = max 2 (8 / scale) in
  (size, group, static_pubs, churn_pubs, crashes, leaves, joins)

(* ------------------------------------------------------------------ *)
(* Churn schedule: shared verbatim by every row                        *)
(* ------------------------------------------------------------------ *)

type action =
  | Publish of bool  (* true = churn phase *)
  | Crash of int
  | Leave of int
  | Join of int

type event = { at : float; action : action }

let min_group = 4

(* Victims and newcomers are resolved here, once, by walking the merged
   event grid in time order against a simulated group roster — so every
   row sees the same faults hit the same node ids at the same instants. *)
let schedule ~seed ~subscribers ~joiners ~static_pubs ~churn_pubs ~crashes ~leaves ~joins =
  let rng = Rng.create ((seed * 9173) + 7) in
  let group = ref subscribers in
  let pool = ref (Array.to_list joiners) in
  let slot start count i =
    start +. (float_of_int i *. (storm_end -. start) /. float_of_int count)
  in
  let grid =
    List.concat
      [
        List.init static_pubs (fun i ->
            ( static_start
              +. float_of_int i
                 *. (storm_start -. static_start -. 1_000.0)
                 /. float_of_int static_pubs,
              `Pub false ));
        List.init churn_pubs (fun i ->
            ( storm_start
              +. (float_of_int i *. (pubs_end -. storm_start) /. float_of_int churn_pubs),
              `Pub true ));
        List.init crashes (fun i -> (slot 32_000.0 crashes i, `Crash));
        List.init leaves (fun i -> (slot 38_500.0 leaves i, `Leave));
        List.init joins (fun i -> (slot 35_250.0 joins i, `Join));
      ]
  in
  let grid = List.stable_sort (fun (a, _) (b, _) -> compare a b) grid in
  let pick_victim () =
    if List.length !group <= min_group then None
    else begin
      let v = Rng.pick rng (Array.of_list !group) in
      group := List.filter (fun n -> n <> v) !group;
      Some v
    end
  in
  List.filter_map
    (fun (at, k) ->
      match k with
      | `Pub churn -> Some { at; action = Publish churn }
      | `Crash -> Option.map (fun v -> { at; action = Crash v }) (pick_victim ())
      | `Leave -> Option.map (fun v -> { at; action = Leave v }) (pick_victim ())
      | `Join -> (
        match !pool with
        | n :: rest ->
          pool := rest;
          group := n :: !group;
          Some { at; action = Join n }
        | [] -> None))
    grid

(* ------------------------------------------------------------------ *)
(* Backend arms                                                        *)
(* ------------------------------------------------------------------ *)

(* One row = an Mcast backend plus the row-specific structure upkeep the
   maintenance plane does not cover (Chord/Pastry keep their own
   tables). *)
type arm = {
  backend : Mcast.backend;
  on_remove : int -> unit;
  on_join : int -> unit;
}

let no_upkeep (_ : int) = ()

(* eCAN / plain CAN: routes from the builder's substrate, relay
   proposals from a root-region soft-state lookup around the subscriber's
   landmark vector that skips overloaded hosts, fanout load published
   back into the maps — [Store.lookup ~max_load] doing the §6 placement
   work for trees. *)
let builder_arm ~name ~route b =
  let can = Ecan_exp.can b.Builder.ecan in
  let store = b.Builder.store in
  {
    backend =
      {
        Mcast.name;
        member = (fun node -> Can_overlay.mem can node);
        route_to =
          (fun ~src ~dst ->
            if not (Can_overlay.mem can dst) then None
            else route ~src (Zone.center (Can_overlay.node can dst).Can_overlay.zone));
        candidates =
          (fun ~node ~exclude ->
            let vector = Builder.vector_of b node in
            Store.lookup store ~region:[||] ~vector ~max_results:12 ~ttl:2 ~max_load:0.99 ()
            |> List.filter_map (fun (e : Store.Entry.t) ->
                   let c = e.Store.Entry.node in
                   if c <> node && (not (List.mem c exclude)) && Can_overlay.mem can c then
                     Some c
                   else None));
        publish_load =
          (fun ~node ~load ->
            List.iter
              (fun region -> Store.update_stats store ~region ~node ~load ~capacity:1.0)
              (Store.regions_of store node));
      };
    on_remove = no_upkeep;
    on_join = no_upkeep;
  }

let ecan_arm ~name b =
  builder_arm ~name ~route:(fun ~src p -> Ecan_exp.route b.Builder.ecan ~src p) b

let can_arm ~name b =
  let can = Ecan_exp.can b.Builder.ecan in
  builder_arm ~name ~route:(fun ~src p -> Can_overlay.route can ~src p) b

(* Chord / Pastry: same member population, the xover/cache experiments'
   vector-then-probe neighbor selection for their tables; with no
   soft-state plane of their own, relay proposals are the physically
   nearest members — the optimum a map lookup approximates. *)
let hybrid_pick oracle vector_of ~rtts ~node ~candidates =
  let qvec = vector_of node in
  let ranked =
    candidates
    |> Array.to_list
    |> List.filter (fun c -> c <> node)
    |> List.map (fun c -> (Landmarks.vector_dist qvec (vector_of c), c))
    |> List.sort compare
    |> List.map snd
  in
  let rec go best = function
    | [] -> Option.map snd best
    | c :: rest ->
      let d = Oracle.measure oracle node c in
      go (match best with Some (bd, _) when bd <= d -> best | _ -> Some (d, c)) rest
  in
  go None (List.filteri (fun i _ -> i < rtts) ranked)

let oracle_candidates oracle ids ~node ~exclude =
  Array.to_list (ids ())
  |> List.filter (fun c -> c <> node && not (List.mem c exclude))
  |> List.map (fun c -> (Oracle.dist oracle node c, c))
  |> List.sort compare
  |> List.filteri (fun i _ -> i < 12)
  |> List.map snd

let chord_arm ~seed oracle b =
  let ring = Ring.create () in
  let rng = Rng.create ((seed * 6007) + 1) in
  Array.iter (fun id -> Ring.add_node ring ~rng id) b.Builder.members;
  let selector ~node ~arc:_ ~candidates =
    hybrid_pick oracle (Builder.vector_of b) ~rtts:5 ~node ~candidates
  in
  Ring.build_fingers ring ~selector;
  {
    backend =
      {
        Mcast.name = "chord";
        member = (fun node -> Ring.mem ring node);
        route_to =
          (fun ~src ~dst ->
            if not (Ring.mem ring dst) then None
            else Ring.route ring ~src ~key:(Ring.key_of ring dst));
        candidates = oracle_candidates oracle (fun () -> Ring.node_ids ring);
        publish_load = (fun ~node:_ ~load:_ -> ());
      };
    on_remove =
      (fun v ->
        Ring.remove_node ring v;
        Ring.build_fingers ring ~selector);
    on_join =
      (fun n ->
        Ring.add_node ring ~rng n;
        Ring.build_fingers ring ~selector);
  }

let pastry_arm ~seed oracle b =
  let mesh = Mesh.create () in
  let rng = Rng.create ((seed * 6007) + 2) in
  Array.iter (fun id -> Mesh.add_node mesh ~rng id) b.Builder.members;
  let selector ~node ~prefix:_ ~candidates =
    hybrid_pick oracle (Builder.vector_of b) ~rtts:5 ~node ~candidates
  in
  Mesh.build_tables mesh ~selector;
  {
    backend =
      {
        Mcast.name = "pastry";
        member = (fun node -> Mesh.mem mesh node);
        route_to =
          (fun ~src ~dst ->
            if not (Mesh.mem mesh dst) then None
            else Mesh.route mesh ~src ~key:(Mesh.pastry_id mesh dst));
        candidates = oracle_candidates oracle (fun () -> Mesh.node_ids mesh);
        publish_load = (fun ~node:_ ~load:_ -> ());
      };
    on_remove =
      (fun v ->
        Mesh.remove_node mesh v;
        Mesh.build_tables mesh ~selector);
    on_join =
      (fun n ->
        Mesh.add_node mesh ~rng n;
        Mesh.build_tables mesh ~selector);
  }

(* Koorde: constant-degree row.  Same hybrid selection over the ~k-wide
   image-arc cover sets; like Chord/Pastry it keeps its own structure, so
   churn events rebuild the de Bruijn entries. *)
let koorde_arm ~seed oracle b =
  let dbj = Dbj.create ~degree:4 () in
  let rng = Rng.create ((seed * 6007) + 3) in
  Array.iter (fun id -> Dbj.add_node dbj ~rng id) b.Builder.members;
  let selector ~node ~arc:_ ~candidates =
    hybrid_pick oracle (Builder.vector_of b) ~rtts:5 ~node ~candidates
  in
  Dbj.build_fingers dbj ~selector;
  {
    backend =
      {
        Mcast.name = "koorde";
        member = (fun node -> Dbj.mem dbj node);
        route_to =
          (fun ~src ~dst ->
            if not (Dbj.mem dbj dst) then None
            else Dbj.route dbj ~src ~key:(Dbj.key_of dbj dst));
        candidates = oracle_candidates oracle (fun () -> Dbj.node_ids dbj);
        publish_load = (fun ~node:_ ~load:_ -> ());
      };
    on_remove =
      (fun v ->
        Dbj.remove_node dbj v;
        Dbj.build_fingers dbj ~selector);
    on_join =
      (fun n ->
        Dbj.add_node dbj ~rng n;
        Dbj.build_fingers dbj ~selector);
  }

(* ------------------------------------------------------------------ *)
(* Driving one row through the shared schedule                         *)
(* ------------------------------------------------------------------ *)

type stats = {
  label : string;
  static_lat : float array;  (* per static-phase delivery, ms *)
  static_stretch : float array;
  static_delivered : int;
  static_missed : int;
  static_stress_max : int;
  static_stress_mean : float;  (* traversals per distinct physical link *)
  static_traversals : int;  (* total physical link traversals *)
  static_cost_ms : float;  (* stress-weighted link latency (network cost) *)
  churn_lat : float array;
  churn_delivered : int;
  churn_missed : int;
  regrafts : int;
  relays : int;
  regraft : Repair.dist;  (* orphanhood durations via the trace analyzer *)
}

let probe_cache_ttl = 600_000.0

type kind = Ecan_aware | Ecan_random | Can_greedy | Chord_row | Pastry_row | Koorde_row

let run_row ?metrics ~domains ~scale ~seed ~degree ~subscribers ~events ~label kind =
  let oracle = Ctx.oracle ~scale Ctx.Tsk_large Topology.Transit_stub.Manual in
  let size, _, _, _, _, _, _ = sizes ~scale in
  let sim = Sim.create () in
  let tracer = Trace.create ~capacity:(1 lsl 17) ~clock:(fun () -> Sim.now sim) () in
  let labels = [ ("experiment", "mcast"); ("backend", label) ] in
  let bconfig =
    {
      Builder.default_config with
      Builder.overlay_size = size;
      ttl;
      shards;
      domains;
      seed = (seed * 3307) + 2;
    }
  in
  let b =
    Builder.build ?metrics ~labels ~trace:tracer ~clock:(fun () -> Sim.now sim) oracle bconfig
  in
  let m =
    Maintenance.start ~sim ?metrics ~labels ~trace:tracer ~refresh_period:refresh
      ~sweep_period:sweep b
  in
  Maintenance.subscribe_all_slots m;
  let bus = Maintenance.bus m in
  let prober =
    Probe.create ?metrics ~labels
      ~clock:(fun () -> Sim.now sim)
      ~config:{ Probe.default_config with Probe.cache_ttl = probe_cache_ttl }
      ~measure:(Oracle.measure oracle) ()
  in
  let rtt ~src ~dst =
    match Probe.rtt prober ~src ~dst with Ok r -> Some r | Error _ -> None
  in
  let arm =
    match kind with
    | Ecan_aware | Ecan_random -> ecan_arm ~name:label b
    | Can_greedy -> can_arm ~name:label b
    | Chord_row -> chord_arm ~seed oracle b
    | Pastry_row -> pastry_arm ~seed oracle b
    | Koorde_row -> koorde_arm ~seed oracle b
  in
  let policy = match kind with Ecan_random -> Mcast.Random | _ -> Mcast.Aware in
  let tree =
    Mcast.create ?metrics ~labels ~trace:tracer
      ~clock:(fun () -> Sim.now sim)
      ~rtt
      ~config:{ Mcast.degree; policy; seed = (seed * 3307) + 5 }
      ~link:(Oracle.dist oracle) ~root:b.Builder.members.(0) arm.backend
  in
  (* Detection wiring: every tree node watches its parent's root-region
     entry on the bus.  The watch firing is the instant the soft-state
     plane learned of the loss — for a leave that's one notification
     delivery, for a crash it's TTL expiry plus the sweep — and the
     orphan re-grafts right there, so regraft latency includes the real
     detection delay. *)
  let watches : (int, int * Bus.subscription) Hashtbl.t = Hashtbl.create 128 in
  let rec sync_watches () =
    (* An orphan's watch on its lost parent must survive until the
       departure notification arrives — that firing is the detection. *)
    let stale =
      Hashtbl.fold
        (fun n (p, sub) acc ->
          match Mcast.parent_of tree n with
          | Some p' when p' = p -> acc
          | None when List.mem n (Mcast.members tree) -> acc
          | _ -> (n, sub) :: acc)
        watches []
    in
    List.iter
      (fun (n, sub) ->
        Bus.unsubscribe bus sub;
        Hashtbl.remove watches n)
      stale;
    List.iter
      (fun n ->
        match Mcast.parent_of tree n with
        | Some p when not (Hashtbl.mem watches n) ->
          let sub =
            Bus.subscribe bus ~subscriber:n ~region:[||] ~condition:(Bus.Departure_of p)
              ~handler:(fun _ -> parent_lost n)
          in
          Hashtbl.replace watches n (p, sub)
        | _ -> ())
      (Mcast.members tree)
  and parent_lost n =
    if List.mem n (Mcast.orphans tree) then begin
      Mcast.regraft tree n;
      sync_watches ()
    end
  in
  List.iter (fun g -> Mcast.subscribe tree g) subscribers;
  sync_watches ();
  let static_lat = ref [] and static_stretch = ref [] in
  let churn_lat = ref [] in
  let static_delivered = ref 0 and static_missed = ref 0 in
  let churn_delivered = ref 0 and churn_missed = ref 0 in
  let static_stress_max = ref 0 and static_links = ref 0 and static_traversals = ref 0 in
  let static_cost = ref 0.0 in
  let fire ev =
    match ev.action with
    | Publish churn ->
      let d = Mcast.publish tree in
      List.iter
        (fun (_, lat, stretch) ->
          if churn then churn_lat := lat :: !churn_lat
          else begin
            static_lat := lat :: !static_lat;
            static_stretch := stretch :: !static_stretch
          end)
        d.Mcast.delivered;
      let nd = List.length d.Mcast.delivered and nm = List.length d.Mcast.missed in
      if churn then begin
        churn_delivered := !churn_delivered + nd;
        churn_missed := !churn_missed + nm
      end
      else begin
        static_delivered := !static_delivered + nd;
        static_missed := !static_missed + nm;
        static_stress_max := max !static_stress_max d.Mcast.max_stress;
        static_links := !static_links + d.Mcast.link_count;
        static_traversals := !static_traversals + d.Mcast.traversals;
        static_cost := !static_cost +. d.Mcast.cost_ms
      end
    | Crash v ->
      Maintenance.node_crashes m v;
      arm.on_remove v;
      ignore (Mcast.drop_member tree v);
      sync_watches ()
    | Leave v ->
      Maintenance.node_departs m v;
      arm.on_remove v;
      ignore (Mcast.drop_member tree v);
      sync_watches ()
    | Join n ->
      Maintenance.node_joins m n;
      arm.on_join n;
      Mcast.subscribe tree n;
      sync_watches ()
  in
  List.iter (fun ev -> ignore (Sim.schedule_at sim ev.at (fun () -> fire ev))) events;
  Sim.run ~until:horizon sim;
  (match Mcast.check_invariants tree with
  | Ok () -> ()
  | Error e -> failwith ("Exp_mcast: tree invariant broken: " ^ e));
  Maintenance.stop m;
  let report = Repair.analyze (Trace.spans tracer) in
  Option.iter (fun mreg -> Repair.record_metrics ~labels mreg report) metrics;
  {
    label;
    static_lat = Array.of_list (List.rev !static_lat);
    static_stretch = Array.of_list (List.rev !static_stretch);
    static_delivered = !static_delivered;
    static_missed = !static_missed;
    static_stress_max = !static_stress_max;
    static_stress_mean =
      (if !static_links = 0 then 0.0
       else float_of_int !static_traversals /. float_of_int !static_links);
    static_traversals = !static_traversals;
    static_cost_ms = !static_cost;
    churn_lat = Array.of_list (List.rev !churn_lat);
    churn_delivered = !churn_delivered;
    churn_missed = !churn_missed;
    regrafts = Mcast.regrafts tree;
    relays = Mcast.relays_recruited tree;
    regraft = report.Repair.regraft;
  }

(* ------------------------------------------------------------------ *)
(* The experiment                                                      *)
(* ------------------------------------------------------------------ *)

let data ?(scale = 1) ?(seed = 42) ?group_size ?(degree = 3) ?policy ?(domains = 0) ?metrics
    () =
  if degree < 1 then invalid_arg "Exp_mcast: degree must be >= 1";
  let oracle = Ctx.oracle ~scale Ctx.Tsk_large Topology.Transit_stub.Manual in
  let size, default_group, static_pubs, churn_pubs, crashes, leaves, joins = sizes ~scale in
  let group_size =
    match group_size with
    | Some g -> max min_group (min g (size - 1))
    | None -> default_group
  in
  (* One throwaway build resolves the shared member population (a pure
     function of oracle + config + seed) so the churn schedule can be
     derived before — and identically for — every row. *)
  let b0 =
    Builder.build oracle
      {
        Builder.default_config with
        Builder.overlay_size = size;
        ttl;
        shards;
        seed = (seed * 3307) + 2;
      }
  in
  let members = b0.Builder.members in
  let member_set = Hashtbl.create size in
  Array.iter (fun n -> Hashtbl.replace member_set n ()) members;
  let joiners =
    Array.of_seq
      (Seq.filter
         (fun i -> not (Hashtbl.mem member_set i))
         (Seq.init (Oracle.node_count oracle) (fun i -> i)))
  in
  let subscribers = Array.to_list (Array.sub members 1 group_size) in
  let events =
    schedule ~seed ~subscribers ~joiners ~static_pubs ~churn_pubs ~crashes ~leaves ~joins
  in
  let rows =
    (match policy with
    | Some Mcast.Aware -> [ (Ecan_aware, "ecan aware") ]
    | Some Mcast.Random -> [ (Ecan_random, "ecan random") ]
    | None -> [ (Ecan_aware, "ecan aware"); (Ecan_random, "ecan random") ])
    @ [
        (Can_greedy, "can greedy");
        (Chord_row, "chord");
        (Pastry_row, "pastry");
        (Koorde_row, "koorde");
      ]
  in
  List.map
    (fun (kind, label) ->
      run_row ?metrics ~domains ~scale ~seed ~degree ~subscribers ~events ~label kind)
    rows

let pct arr p = if Array.length arr = 0 then Float.nan else Stats.percentile arr p

let record_stats metrics s =
  let labels = [ ("backend", s.label) ] in
  let g name v = Metrics.set (Metrics.gauge metrics ~labels name) v in
  g "mcast_delivery_p50_ms" (pct s.static_lat 50.0);
  g "mcast_delivery_p99_ms" (pct s.static_lat 99.0);
  g "mcast_stretch_p50" (pct s.static_stretch 50.0);
  g "mcast_stretch_p99" (pct s.static_stretch 99.0);
  g "mcast_stress_mean" s.static_stress_mean;
  g "mcast_stress_max" (float_of_int s.static_stress_max);
  g "mcast_traversals" (float_of_int s.static_traversals);
  g "mcast_cost_ms" s.static_cost_ms;
  g "mcast_churn_delivery_p50_ms" (pct s.churn_lat 50.0);
  g "mcast_churn_delivery_p99_ms" (pct s.churn_lat 99.0);
  if s.regraft.Repair.n > 0 then begin
    g "mcast_regraft_p50_ms" s.regraft.Repair.p50;
    g "mcast_regraft_p99_ms" s.regraft.Repair.p99
  end

let run_custom ?(scale = 1) ?(seed = 42) ?group_size ?(degree = 3) ?policy ppf =
  let metrics = Metrics.global in
  let stats = data ~scale ~seed ?group_size ~degree ?policy ~metrics () in
  let size, default_group, static_pubs, churn_pubs, crashes, leaves, joins = sizes ~scale in
  let group_size =
    match group_size with
    | Some g -> max min_group (min g (size - 1))
    | None -> default_group
  in
  let table =
    Tableout.create
      ~title:
        (Printf.sprintf
           "Mcast: group %d on %d nodes, degree %d, %d static + %d churn publishes, %d \
            crashes / %d leaves / %d joins, seed %d"
           group_size size degree static_pubs churn_pubs crashes leaves joins seed)
      ~columns:
        [
          "backend"; "p50 ms"; "p99 ms"; "stretch"; "cost ms"; "stress"; "deliv"; "miss";
          "regrafts"; "rg p50";
        ]
  in
  List.iter
    (fun s ->
      record_stats metrics s;
      Tableout.add_row table
        [
          s.label;
          Tableout.cell_f (pct s.static_lat 50.0);
          Tableout.cell_f (pct s.static_lat 99.0);
          Printf.sprintf "%.2f" (pct s.static_stretch 50.0);
          Printf.sprintf "%.0f" s.static_cost_ms;
          Printf.sprintf "%.2f" s.static_stress_mean;
          Tableout.cell_i (s.static_delivered + s.churn_delivered);
          Tableout.cell_i (s.static_missed + s.churn_missed);
          Tableout.cell_i s.regrafts;
          (if s.regraft.Repair.n > 0 then Printf.sprintf "%.0f" s.regraft.Repair.p50
           else "-");
        ])
    stats;
  (* Headline gauges the CI gate holds: map-placed trees beat random
     placement on delivered latency, stretch and link stress at equal
     static delivery counts. *)
  (match stats with
  | aware :: random :: _ when aware.label = "ecan aware" && random.label = "ecan random" ->
    let g name v = Metrics.set (Metrics.gauge metrics name) v in
    g "mcast_random_over_aware_p50" (pct random.static_lat 50.0 /. pct aware.static_lat 50.0);
    g "mcast_random_over_aware_p99" (pct random.static_lat 99.0 /. pct aware.static_lat 99.0);
    g "mcast_random_over_aware_stretch_p50"
      (pct random.static_stretch 50.0 /. pct aware.static_stretch 50.0);
    (* aggregate link stress: stress-weighted physical latency (resource
       usage) over the static phase *)
    g "mcast_random_over_aware_stress" (random.static_cost_ms /. aware.static_cost_ms);
    g "mcast_delivered_equal"
      (if random.static_delivered = aware.static_delivered then 1.0 else 0.0)
  | _ -> ());
  Tableout.render ppf table;
  Format.fprintf ppf
    "  p50/p99/stretch/stress from the static phase (identical group, so the aware/random \
     gap is pure placement); deliv/miss include the churn phase.@.";
  Format.fprintf ppf
    "  regrafts re-attach orphaned subtrees after Departure_of watches fire; rg p50 is \
     orphanhood in ms (crash: TTL expiry + sweep, leave: one notification).@."

let run ?scale ?seed ppf = run_custom ?scale ?seed ppf
