(* Raw-speed rows: the full churn/repair stack on transit-stub
   topologies far beyond the paper's ~10^4 nodes, up to 2^17 nodes.

   Each row generates a strict-hierarchy topology with 2^e stub nodes
   (stub size fixed at 64; the backbone grows with the exponent),
   precomputes the exact oracle, and drives the eCAN + soft-state +
   pub/sub stack through the default fault storm via
   [Exp_churn.ecan_outcomes].  The overlay membership is kept modest —
   the point of these rows is the cost of the {e physical} scale: oracle
   precomputation (one Dijkstra per stub member plus the core all-pairs)
   and distance queries against the flat layouts.

   Wall-clock build/run times are printed but never recorded (they are
   not deterministic); every recorded metric is labelled with the node
   count and is byte-identical across runs and domain-pool sizes. *)

module Ts = Topology.Transit_stub
module Oracle = Topology.Oracle
module Graph = Topology.Graph
module Rng = Prelude.Rng
module Metrics = Engine.Metrics

(* Same fixed seed as Ctx: the rows are physical networks, grown rather
   than shared (the cache would pin ~100 MB of oracle per row). *)
let topo_seed = 20030519

(* Strict-hierarchy params with 2^e stub nodes (64 per stub); the
   backbone widens with the exponent so the core all-pairs stays a small
   fraction of the precompute. *)
let topo_params exponent =
  let domains, per_domain, stubs_per =
    match exponent with
    | 11 -> (1, 2, 16)
    | 12 -> (1, 4, 16)
    | 14 -> (4, 4, 16)
    | 17 -> (8, 8, 32)
    | _ -> invalid_arg "Exp_bigscale: unsupported exponent"
  in
  {
    Ts.transit_domains = domains;
    transit_nodes_per_domain = per_domain;
    stubs_per_transit_node = stubs_per;
    stub_size = 64;
    extra_domain_edges = domains;
    extra_edge_fraction = 0.3;
    latency = Ts.Manual;
  }

type row = {
  exponent : int;
  nodes : int;
  build_s : float;  (** wall-clock: generate + oracle precompute *)
  run_s : float;  (** wall-clock: the churn storm + settle window *)
  outcome : Exp_churn.outcome;
}

let run_row ~size exponent =
  let t0 = Unix.gettimeofday () in
  let topo = Ts.generate (Rng.create topo_seed) (topo_params exponent) in
  let oracle = Oracle.build topo in
  let t1 = Unix.gettimeofday () in
  let nodes = Graph.node_count topo.Ts.graph in
  let labels = [ ("experiment", "bigscale"); ("nodes", string_of_int nodes) ] in
  let outcome, _can = Exp_churn.ecan_outcomes ~size ~seed:11 ~labels oracle in
  let t2 = Unix.gettimeofday () in
  { exponent; nodes; build_s = t1 -. t0; run_s = t2 -. t1; outcome }

let run ?(scale = 1) ppf =
  let scale = max 1 scale in
  (* Big rows only at bench scales; the registry smoke test (scale 32)
     exercises the same code on topologies it can build in milliseconds. *)
  let exponents = if scale <= 8 then [ 14; 17 ] else [ 11; 12 ] in
  let size = max 48 (768 / scale) in
  let rows = List.map (run_row ~size) exponents in
  let table =
    Tableout.create
      ~title:
        (Printf.sprintf
           "Big-scale churn: default storm over a %d-member eCAN on 2^e-node physical networks"
           size)
      ~columns:
        [ "2^e nodes"; "build s"; "storm s"; "stretch pre"; "storm"; "repaired"; "repair ms"; "ok" ]
  in
  List.iter
    (fun r ->
      let o = r.outcome in
      let labels = [ ("nodes", string_of_int r.nodes) ] in
      let g name v = Metrics.set (Metrics.gauge Metrics.global ~labels name) v in
      g "bigscale_stretch_before" o.Exp_churn.stretch_before;
      g "bigscale_stretch_storm" o.Exp_churn.stretch_storm;
      g "bigscale_stretch_repaired" o.Exp_churn.stretch_repaired;
      g "bigscale_repair_ms" o.Exp_churn.repair_ms;
      g "bigscale_notifications" (float_of_int o.Exp_churn.notifications);
      g "bigscale_converged" (if o.Exp_churn.converged then 1.0 else 0.0);
      Tableout.add_row table
        [
          Printf.sprintf "2^%d = %d" r.exponent r.nodes;
          Printf.sprintf "%.2f" r.build_s;
          Printf.sprintf "%.2f" r.run_s;
          Tableout.cell_f o.Exp_churn.stretch_before;
          Tableout.cell_f o.Exp_churn.stretch_storm;
          Tableout.cell_f o.Exp_churn.stretch_repaired;
          (if Float.is_nan o.Exp_churn.repair_ms then "-"
           else Printf.sprintf "%.0f" o.Exp_churn.repair_ms);
          (if o.Exp_churn.converged then "yes" else "NO");
        ])
    rows;
  Tableout.render ppf table;
  Format.fprintf ppf
    "  build: topology generation + oracle precompute (one SSSP per stub member + core all-pairs).@.";
  Format.fprintf ppf
    "  wall-clock columns are printed only; recorded metrics are deterministic and labelled nodes=N.@."
