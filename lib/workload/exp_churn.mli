(** Churn & fault-injection experiment: failure storms over every overlay.

    The paper's central claim (§3.3–3.4, §5.2) is that global soft-state
    plus publish/subscribe maintenance keeps topology-aware overlays
    accurate {e under change}.  This workload drives all five overlays —
    eCAN with the full soft-state/pub-sub machinery, plain CAN on the same
    substrate, and Chord / Pastry / Koorde under periodic stabilisation —
    through
    the {e same} seeded fault storm (fail-stop crashes, graceful leaves,
    join bursts, stale-state injection, lossy/delayed notification
    delivery) and reports, per overlay:

    - routing stretch before the storm, right after it, and once repaired;
    - {e repair latency}: time from the end of the storm until the
      convergence oracle first passes;
    - {e repair work}: slot re-selections (eCAN) or stabilisation
      selector invocations (Chord/Pastry/Koorde);
    - notification overhead and channel drops (eCAN's pub/sub plane).

    Everything is deterministic from the seed: re-running with the same
    seed reproduces the metrics bit for bit. *)

type outcome = {
  overlay : string;
  stretch_before : float;
  stretch_storm : float;  (** measured at the end of the storm, pre-repair *)
  stretch_repaired : float;  (** measured at the settle horizon *)
  repair_ms : float;  (** convergence time after storm end; nan if never *)
  repair_work : int;
  notifications : int;  (** pub/sub notifications sent (eCAN only) *)
  drops : int;  (** notifications lost to the faulty channel *)
  converged : bool;
}

val ecan_convergence : ?tolerance:float -> Core.Builder.t -> (unit, string) result
(** Convergence oracle for the eCAN: snapshot the (post-churn) expressway
    tables, rebuild them from scratch under the builder's strategy,
    compare, and restore the snapshot.  Passes when the churned tables
    match the clean rebuild within [tolerance] (default 0.02): at most
    that fraction of slots may hold a dead / out-of-region representative,
    be unfilled where the rebuild fills them, or be filled where the
    rebuild cannot. *)

val chord_convergence : ?samples:int -> seed:int -> Chord.Ring.t -> (unit, string) result
(** Convergence oracle for Chord: structural invariants hold, every arc
    that has members other than the owner carries a finger (matching what
    a clean [build_fingers] would produce), and [samples] (default 64)
    seeded random routes all terminate at the key's successor. *)

val pastry_convergence : ?samples:int -> seed:int -> Pastry.Mesh.t -> (unit, string) result
(** Convergence oracle for Pastry: structural invariants hold, every
    routing slot whose prefix region is inhabited is filled, and seeded
    random routes all terminate at the key's owner. *)

val koorde_convergence :
  ?samples:int -> seed:int -> Koorde.Debruijn.t -> (unit, string) result
(** Convergence oracle for Koorde: structural invariants hold, every
    member's cover list matches a clean rebuild from the current
    membership (arc charge plus image-arc members), and seeded random
    routes all terminate at the key's successor. *)

val ecan_outcomes :
  ?size:int ->
  ?seed:int ->
  ?storm:Engine.Faults.storm ->
  ?channel:Engine.Faults.channel ->
  ?shards:int ->
  ?digest_window:float ->
  ?probe_window:int ->
  ?domains:int ->
  ?labels:(string * string) list ->
  ?strategy:Core.Strategy.t ->
  Topology.Oracle.t ->
  outcome * outcome
(** Drive an eCAN (with pub/sub repair, liveness polling, TTL sweeps and
    periodic table audit) through the storm; the second outcome is the
    plain-CAN greedy-routing baseline measured on the same substrate at
    the same instants.  [size] defaults to 256 members.  [shards]
    (default 1) shards the soft-state store's TTL machinery
    ({!Softstate.Store.create}); [digest_window] (default 0, i.e. off)
    batches notifications into per-(subscriber, region) digests
    ({!Pubsub.Bus.create}); [probe_window] (default 1, i.e. sequential)
    sets the probe plane's concurrency ({!Engine.Probe}) — it changes
    modelled probe wall-clock only, never which probes are sent;
    [domains] (default 0 = ambient) sets the domain pool hosting the
    store and prober ({!Core.Builder} [config.domains]) — it changes real
    wall-clock only, never any result or metric (DESIGN.md §12).
    [labels] (default [[("experiment", "churn")]]) is the label set the
    whole eCAN stack reports under in the global registry, so other
    experiments (e.g. the big-scale rows) can reuse this driver without
    colliding with the churn experiment's instruments.  [strategy]
    (default: the builder's default hybrid selection) overrides the
    neighbor-selection strategy — the degree experiment sweeps RTT
    budgets through it. *)

val chord_outcome :
  ?size:int ->
  ?seed:int ->
  ?storm:Engine.Faults.storm ->
  ?pick:(node:int -> candidates:int array -> int option) ->
  Topology.Oracle.t ->
  outcome
(** Chord under the same storm, repaired by periodic stabilisation (full
    finger rebuild with landmark+RTT hybrid selection; [pick] overrides
    the selection policy). *)

val pastry_outcome :
  ?size:int ->
  ?seed:int ->
  ?storm:Engine.Faults.storm ->
  ?pick:(node:int -> candidates:int array -> int option) ->
  Topology.Oracle.t ->
  outcome
(** Pastry under the same storm, repaired by periodic table rebuild. *)

val koorde_outcome :
  ?size:int ->
  ?seed:int ->
  ?storm:Engine.Faults.storm ->
  ?degree:int ->
  ?pick:(node:int -> candidates:int array -> int option) ->
  Topology.Oracle.t ->
  outcome
(** Koorde under the same storm, repaired by periodic cover rebuild.
    [degree] (default 4) is the de Bruijn fanout k. *)

val run : ?scale:int -> ?seed:int -> Format.formatter -> unit
(** The registry entry: default storm and channel, tsk-large/manual
    topology, overlay size scaled by [scale]. *)

val run_custom :
  ?scale:int ->
  ?seed:int ->
  ?shards:int ->
  ?digest_window:float ->
  ?probe_window:int ->
  ?domains:int ->
  storm:Engine.Faults.storm ->
  channel:Engine.Faults.channel ->
  Format.formatter ->
  unit
(** [run] with an explicit storm, channel, store sharding, digest window
    and domain pool (the CLI hook; the maintenance-plane knobs only
    affect the eCAN row). *)
