module Oracle = Topology.Oracle
module Builder = Core.Builder
module Maintenance = Core.Maintenance
module Measure = Core.Measure
module Sim = Engine.Sim
module Faults = Engine.Faults
module Store = Softstate.Store
module Bus = Pubsub.Bus
module Can_overlay = Can.Overlay
module Ecan_exp = Ecan.Expressway
module Ring = Chord.Ring
module Mesh = Pastry.Mesh
module Dbj = Koorde.Debruijn
module Landmarks = Landmark.Landmarks
module Rng = Prelude.Rng

type outcome = {
  overlay : string;
  stretch_before : float;
  stretch_storm : float;
  stretch_repaired : float;
  repair_ms : float;
  repair_work : int;
  notifications : int;
  drops : int;
  converged : bool;
}

(* Soft-state timeline: short enough that a storm's stale entries expire
   and are repaired well inside the settle window, long enough that the
   refresh traffic stays modest. *)
let ttl = 60_000.0
let refresh_period = 20_000.0
let sweep_period = 5_000.0
let liveness_period = 15_000.0
let audit_period = 30_000.0
let probe_period = 10_000.0
let settle = 240_000.0
let stab_period = 20_000.0 (* Chord/Pastry/Koorde periodic stabilisation *)
let stretch_samples = 256
let min_membership = 8 (* never churn the overlay below this *)

let mean = function
  | [] -> Float.nan
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

(* ------------------------------------------------------------------ *)
(* Convergence oracles                                                 *)
(* ------------------------------------------------------------------ *)

let ecan_slots ecan node =
  let acc = ref [] in
  for row = Ecan_exp.rows ecan node - 1 downto 0 do
    let own = Ecan_exp.own_digit ecan node ~row in
    for digit = (1 lsl Ecan_exp.span_bits ecan) - 1 downto 0 do
      if digit <> own then acc := (row, digit) :: !acc
    done
  done;
  !acc

let ecan_convergence ?(tolerance = 0.02) (b : Builder.t) =
  let ecan = b.Builder.ecan in
  let can = Ecan_exp.can ecan in
  let ids = Can_overlay.node_ids can in
  let in_region region target =
    Can_overlay.mem can target
    &&
    let path = (Can_overlay.node can target).Can_overlay.path in
    Array.length path >= Array.length region
    && Array.for_all2 ( = ) region (Array.sub path 0 (Array.length region))
  in
  (* Snapshot the churned tables, rebuild clean, diff, restore. *)
  let snapshot =
    Array.map
      (fun id ->
        ( id,
          List.map
            (fun (row, digit) -> (row, digit, Ecan_exp.entry ecan id ~row ~digit))
            (ecan_slots ecan id) ))
      ids
  in
  Builder.rebuild_tables b b.Builder.config.Builder.strategy;
  let invalid = ref 0 and missing = ref 0 and extra = ref 0 and slots = ref 0 in
  Array.iter
    (fun (id, per_slot) ->
      List.iter
        (fun (row, digit, churned) ->
          incr slots;
          let clean = Ecan_exp.entry ecan id ~row ~digit in
          (match (churned, clean) with
          | Some tgt, _ when not (in_region (Ecan_exp.region_prefix ecan id ~row ~digit) tgt) ->
            incr invalid
          | None, Some _ -> incr missing
          | Some _, None -> incr extra
          | _ -> ());
          Ecan_exp.set_entry ecan id ~row ~digit churned)
        per_slot)
    snapshot;
  let bad = !invalid + !missing + !extra in
  if float_of_int bad <= tolerance *. float_of_int (max 1 !slots) then Ok ()
  else
    Error
      (Printf.sprintf "tables diverge from clean rebuild: %d dead/out-of-region, %d unfilled, %d spurious of %d slots"
         !invalid !missing !extra !slots)

let chord_convergence ?(samples = 64) ~seed ring =
  match Ring.check_invariants ring with
  | Error _ as e -> e
  | Ok () ->
    let ids = Ring.node_ids ring in
    if Array.length ids = 0 then Error "empty ring"
    else begin
      let bits = Ring.key_bits ring in
      let space = 1 lsl bits in
      let missing = ref 0 in
      Array.iter
        (fun id ->
          let key = Ring.key_of ring id in
          let filled = Ring.fingers ring id in
          for i = 0 to bits - 1 do
            let lo = (key + (1 lsl i)) land (space - 1) in
            let members = Ring.arc_members ring ~lo ~span:(1 lsl i) in
            if Array.exists (fun m -> m <> id) members && not (List.mem_assoc i filled) then
              incr missing
          done)
        ids;
      if !missing > 0 then
        Error (Printf.sprintf "%d fingers unset for inhabited arcs" !missing)
      else begin
        let rng = Rng.create seed in
        let bad = ref 0 in
        for _ = 1 to samples do
          let src = Rng.pick rng ids in
          let key = Rng.int rng space in
          match Ring.route ring ~src ~key with
          | Some (_ :: _ as hops) when List.nth hops (List.length hops - 1) = Ring.successor_node ring key
            -> ()
          | _ -> incr bad
        done;
        if !bad = 0 then Ok ()
        else Error (Printf.sprintf "%d of %d routes missed the key successor" !bad samples)
      end
    end

let pastry_convergence ?(samples = 64) ~seed mesh =
  match Mesh.check_invariants mesh with
  | Error _ as e -> e
  | Ok () ->
    let ids = Mesh.node_ids mesh in
    if Array.length ids = 0 then Error "empty mesh"
    else begin
      let nd = Mesh.num_digits mesh and db = Mesh.digit_bits mesh in
      (* Count members under every prefix once, so the per-slot
         inhabitation test is O(1). *)
      let counts = Hashtbl.create 4096 in
      Array.iter
        (fun id ->
          let pid = Mesh.pastry_id mesh id in
          for r = 1 to nd do
            let key = (r, pid lsr (db * (nd - r))) in
            Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
          done)
        ids;
      let missing = ref 0 in
      Array.iter
        (fun id ->
          let pid = Mesh.pastry_id mesh id in
          let filled = Mesh.table_entries mesh id in
          for r = 0 to nd - 1 do
            let own = Mesh.digit mesh pid r in
            for c = 0 to (1 lsl db) - 1 do
              if c <> own then begin
                let p = (pid lsr (db * (nd - r - 1))) land lnot ((1 lsl db) - 1) lor c in
                let inhabited = Hashtbl.mem counts (r + 1, p) in
                let have = List.exists (fun (rr, cc, _) -> rr = r && cc = c) filled in
                if inhabited && not have then incr missing
              end
            done
          done)
        ids;
      if !missing > 0 then
        Error (Printf.sprintf "%d routing slots unfilled for inhabited prefixes" !missing)
      else begin
        let rng = Rng.create seed in
        let space = 1 lsl (db * nd) in
        let bad = ref 0 in
        for _ = 1 to samples do
          let src = Rng.pick rng ids in
          let key = Rng.int rng space in
          match Mesh.route mesh ~src ~key with
          | Some (_ :: _ as hops) when List.nth hops (List.length hops - 1) = Mesh.owner_of mesh key
            -> ()
          | _ -> incr bad
        done;
        if !bad = 0 then Ok ()
        else Error (Printf.sprintf "%d of %d routes missed the key owner" !bad samples)
      end
    end

let koorde_convergence ?(samples = 64) ~seed dbj =
  match Dbj.check_invariants dbj with
  | Error _ as e -> e
  | Ok () ->
    let ids = Dbj.node_ids dbj in
    if Array.length ids = 0 then Error "empty overlay"
    else begin
      (* Every cover list must match what a clean rebuild would compute
         from the current membership: the charge of the image-arc start
         plus every member inside the arc. *)
      let stale = ref 0 in
      Array.iter
        (fun id ->
          if Dbj.size dbj > 1 then begin
            let lo, span = Dbj.image_arc dbj id in
            let expected = Hashtbl.create 8 in
            Hashtbl.replace expected (Dbj.charge_node dbj lo) ();
            Array.iter (fun m -> Hashtbl.replace expected m ()) (Dbj.arc_members dbj ~lo ~span);
            let cover = Dbj.cover dbj id in
            if
              Array.length cover <> Hashtbl.length expected
              || not (Array.for_all (fun c -> Hashtbl.mem expected c) cover)
            then incr stale
          end)
        ids;
      if !stale > 0 then
        Error (Printf.sprintf "%d cover lists diverge from the membership" !stale)
      else begin
        let rng = Rng.create seed in
        let space = 1 lsl Dbj.key_bits dbj in
        let bad = ref 0 in
        for _ = 1 to samples do
          let src = Rng.pick rng ids in
          let key = Rng.int rng space in
          match Dbj.route dbj ~src ~key with
          | Some (_ :: _ as hops)
            when List.nth hops (List.length hops - 1) = Dbj.successor_node dbj key -> ()
          | _ -> incr bad
        done;
        if !bad = 0 then Ok ()
        else Error (Printf.sprintf "%d of %d routes missed the key successor" !bad samples)
      end
    end

(* ------------------------------------------------------------------ *)
(* eCAN (and plain-CAN baseline) under the storm                       *)
(* ------------------------------------------------------------------ *)

let ecan_outcomes ?(size = 256) ?(seed = 11) ?(storm = Faults.default_storm)
    ?(channel = Faults.reliable) ?(shards = 1) ?(digest_window = 0.0) ?(probe_window = 1)
    ?(domains = 0) ?(labels = [ ("experiment", "churn") ])
    ?(strategy = Builder.default_config.Builder.strategy) oracle =
  let sim = Sim.create () in
  let faults = Faults.create ~channel ~seed:(seed * 1009 + 1) () in
  let config =
    { Builder.default_config with
      Builder.overlay_size = size;
      ttl;
      shards;
      probe = { Engine.Probe.default_config with Engine.Probe.window = probe_window };
      domains;
      strategy;
      seed = seed * 1009 + 2 }
  in
  (* The whole eCAN stack reports into the global registry under an
     [experiment=churn] label (callers driving other experiments pass
     their own label set), so [bench --json] carries the storm's
     route/publish/notify traffic alongside the table below. *)
  let metrics = Engine.Metrics.global in
  let b =
    Builder.build ~metrics ~labels ~clock:(fun () -> Sim.now sim) oracle config
  in
  let can = Ecan_exp.can b.Builder.ecan in
  let m =
    Maintenance.start ~sim ~metrics ~labels ~refresh_period ~sweep_period
      ~channel:(Faults.perturb faults) ~digest_window b
  in
  Maintenance.subscribe_all_slots m;
  Maintenance.enable_liveness_polling m ~period:liveness_period
    ~is_alive:(fun n -> Can_overlay.mem can n) ();
  Maintenance.enable_table_audit m ~period:audit_period ();
  (* Joiners come from physical nodes outside the initial membership. *)
  let joiners =
    Array.of_seq
      (Seq.filter
         (fun i -> not (Can_overlay.mem can i))
         (Seq.init (Oracle.node_count oracle) (fun i -> i)))
  in
  let next_join = ref 0 in
  let drv = Rng.create (seed * 1009 + 3) in
  let handler (ev : Faults.event) =
    match ev.Faults.action with
    | Faults.Crash ->
      let ids = Can_overlay.node_ids can in
      if Array.length ids > min_membership then begin
        let victim = Rng.pick drv ids in
        Faults.note faults (Printf.sprintf "crash node %d" victim);
        Maintenance.node_crashes m victim
      end
    | Faults.Leave ->
      let ids = Can_overlay.node_ids can in
      if Array.length ids > min_membership then begin
        let victim = Rng.pick drv ids in
        Faults.note faults (Printf.sprintf "leave node %d" victim);
        Maintenance.node_departs m victim
      end
    | Faults.Join ->
      if !next_join < Array.length joiners then begin
        let newcomer = joiners.(!next_join) in
        incr next_join;
        Faults.note faults (Printf.sprintf "join node %d" newcomer);
        Maintenance.node_joins m newcomer
      end
    | Faults.Expire fraction ->
      let aged = Store.inject_staleness b.Builder.store ~rng:drv ~fraction in
      Faults.note faults (Printf.sprintf "staleness injected into %d entries" aged)
  in
  Faults.install faults ~sim ~plan:(Faults.plan faults storm) ~handler;
  let storm_end = storm.Faults.start +. storm.Faults.spread in
  let ecan_stretch () = (Measure.route_stretch ~pairs:stretch_samples b).Measure.stretch.Prelude.Stats.mean in
  let can_stretch () = (Measure.can_route_report ~pairs:stretch_samples b).Measure.stretch.Prelude.Stats.mean in
  let before = ecan_stretch () and can_before = can_stretch () in
  Sim.run ~until:storm_end sim;
  let at_storm = ecan_stretch () and can_storm = can_stretch () in
  (* Convergence probe: a periodic check that cancels itself — from inside
     its own callback — the first time the oracle passes. *)
  let converged_at = ref Float.nan in
  let probe_timer = ref None in
  let probe () =
    match ecan_convergence b with
    | Ok () ->
      converged_at := Sim.now sim;
      Option.iter Sim.cancel !probe_timer
    | Error _ -> ()
  in
  probe_timer := Some (Sim.every sim ~period:probe_period probe);
  Sim.run ~until:(storm_end +. settle) sim;
  let repaired = ecan_stretch () and can_repaired = can_stretch () in
  let converged, repair_ms =
    if Float.is_nan !converged_at then
      (* Never during the window; accept a pass at the horizon itself. *)
      match ecan_convergence b with
      | Ok () -> (true, settle)
      | Error _ -> (false, Float.nan)
    else (true, !converged_at -. storm_end)
  in
  let bus = Maintenance.bus m in
  let ecan_outcome =
    {
      overlay = "eCAN+pub/sub";
      stretch_before = before;
      stretch_storm = at_storm;
      stretch_repaired = repaired;
      repair_ms;
      repair_work = Maintenance.reselections m;
      notifications = Bus.sent_count bus;
      drops = Bus.dropped_count bus;
      converged;
    }
  in
  (* Plain CAN on the same substrate: zone takeover is part of the leave /
     crash handling itself, so greedy routing is consistent the moment the
     storm ends — the baseline "repairs" instantly but routes without
     expressways. *)
  let can_outcome =
    {
      overlay = "CAN (greedy)";
      stretch_before = can_before;
      stretch_storm = can_storm;
      stretch_repaired = can_repaired;
      repair_ms = 0.0;
      repair_work = 0;
      notifications = 0;
      drops = 0;
      converged = Can_overlay.check_invariants can = Ok ();
    }
  in
  Maintenance.stop m;
  (ecan_outcome, can_outcome)

(* ------------------------------------------------------------------ *)
(* Chord / Pastry under the same storm                                 *)
(* ------------------------------------------------------------------ *)

let hybrid_pick oracle vector_of ~rtts ~node ~candidates =
  let qvec = vector_of node in
  let ranked =
    candidates
    |> Array.to_list
    |> List.filter (fun c -> c <> node)
    |> List.map (fun c -> (Landmarks.vector_dist qvec (vector_of c), c))
    |> List.sort compare
    |> List.map snd
  in
  let rec go best = function
    | [] -> best
    | c :: rest ->
      let d = Oracle.measure oracle node c in
      go (match best with Some (bd, _) when bd <= d -> best | _ -> Some (d, c)) rest
  in
  match go None (List.filteri (fun i _ -> i < rtts) ranked) with
  | Some (_, c) -> Some c
  | None -> None

(* The Chord, Pastry and Koorde drivers share everything but the overlay
   calls.  [pick] overrides the default hybrid selection (rtts = 5) —
   the degree experiment injects budget-constrained policies here. *)
let ring_like_outcome ~overlay ~size ~seed ~storm ~oracle ?pick:pick_override ops =
  let member_rng = Rng.create (seed * 2003 + 1) in
  let all = Array.init (Oracle.node_count oracle) (fun i -> i) in
  let members = Rng.sample member_rng size all in
  let lms = Landmarks.choose (Rng.create (seed * 2003 + 2)) oracle 15 in
  let vectors = Hashtbl.create (2 * size) in
  let vector_of node =
    match Hashtbl.find_opt vectors node with
    | Some v -> v
    | None ->
      let v = Landmarks.vector lms node in
      Hashtbl.replace vectors node v;
      v
  in
  let work = ref 0 in
  let pick ~node ~candidates =
    incr work;
    match pick_override with
    | Some f -> f ~node ~candidates
    | None -> hybrid_pick oracle vector_of ~rtts:5 ~node ~candidates
  in
  let add, remove, rebuild, node_ids, stretch_once, convergence = ops ~pick in
  Array.iter add members;
  rebuild ();
  work := 0;
  let joiner_set = Hashtbl.create 64 in
  Array.iter (fun m -> Hashtbl.replace joiner_set m ()) members;
  let joiners =
    Array.of_seq
      (Seq.filter (fun i -> not (Hashtbl.mem joiner_set i)) (Seq.init (Array.length all) (fun i -> i)))
  in
  let next_join = ref 0 in
  let sim = Sim.create () in
  let faults = Faults.create ~seed:(seed * 2003 + 3) () in
  let drv = Rng.create (seed * 2003 + 4) in
  let handler (ev : Faults.event) =
    match ev.Faults.action with
    | Faults.Crash | Faults.Leave ->
      (* Without soft state there is nothing to leave gracefully: both are
         a membership loss repaired by the next stabilisation round. *)
      let ids = node_ids () in
      if Array.length ids > min_membership then begin
        let victim = Rng.pick drv ids in
        Faults.note faults (Printf.sprintf "%s node %d"
            (match ev.Faults.action with Faults.Crash -> "crash" | _ -> "leave") victim);
        remove victim
      end
    | Faults.Join ->
      if !next_join < Array.length joiners then begin
        let newcomer = joiners.(!next_join) in
        incr next_join;
        Faults.note faults (Printf.sprintf "join node %d" newcomer);
        add newcomer
      end
    | Faults.Expire _ ->
      (* No soft-state plane in this driver; staleness has no analogue. *)
      Faults.note faults "staleness (no-op: no soft-state plane)"
  in
  Faults.install faults ~sim ~plan:(Faults.plan faults storm) ~handler;
  ignore (Sim.every sim ~period:stab_period (fun () -> rebuild ()));
  let storm_end = storm.Faults.start +. storm.Faults.spread in
  let before = stretch_once (seed * 2003 + 5) in
  Sim.run ~until:storm_end sim;
  let at_storm = stretch_once (seed * 2003 + 6) in
  let converged_at = ref Float.nan in
  let probe_timer = ref None in
  let probe () =
    match convergence ~seed:(seed * 2003 + 7) with
    | Ok () ->
      converged_at := Sim.now sim;
      Option.iter Sim.cancel !probe_timer
    | Error _ -> ()
  in
  probe_timer := Some (Sim.every sim ~period:probe_period probe);
  Sim.run ~until:(storm_end +. settle) sim;
  let repaired = stretch_once (seed * 2003 + 8) in
  let converged, repair_ms =
    if Float.is_nan !converged_at then
      match convergence ~seed:(seed * 2003 + 7) with
      | Ok () -> (true, settle)
      | Error _ -> (false, Float.nan)
    else (true, !converged_at -. storm_end)
  in
  {
    overlay;
    stretch_before = before;
    stretch_storm = at_storm;
    stretch_repaired = repaired;
    repair_ms;
    repair_work = !work;
    notifications = 0;
    drops = 0;
    converged;
  }

let chord_outcome ?(size = 256) ?(seed = 11) ?(storm = Faults.default_storm) ?pick oracle =
  let ring = Ring.create () in
  let ring_rng = Rng.create (seed * 2003 + 9) in
  ring_like_outcome ~overlay:"Chord+stab" ~size ~seed ~storm ~oracle ?pick (fun ~pick ->
      let add id = Ring.add_node ring ~rng:ring_rng id in
      let remove id = Ring.remove_node ring id in
      let rebuild () =
        Ring.build_fingers ring ~selector:(fun ~node ~arc:_ ~candidates -> pick ~node ~candidates)
      in
      let node_ids () = Ring.node_ids ring in
      let stretch_once probe_seed =
        let rng = Rng.create probe_seed in
        let ids = Ring.node_ids ring in
        let acc = ref [] in
        for _ = 1 to stretch_samples do
          let src = Rng.pick rng ids in
          let key = Rng.int rng (1 lsl Ring.key_bits ring) in
          match Ring.route ring ~src ~key with
          | Some hops ->
            let owner = Ring.successor_node ring key in
            let shortest = Oracle.dist oracle src owner in
            if shortest > 0.0 then
              acc := (Core.Measure.path_latency oracle hops /. shortest) :: !acc
          | None -> ()
        done;
        mean !acc
      in
      let convergence ~seed = chord_convergence ~seed ring in
      (add, remove, rebuild, node_ids, stretch_once, convergence))

let pastry_outcome ?(size = 256) ?(seed = 11) ?(storm = Faults.default_storm) ?pick oracle =
  let mesh = Mesh.create () in
  let mesh_rng = Rng.create (seed * 2003 + 10) in
  ring_like_outcome ~overlay:"Pastry+stab" ~size ~seed ~storm ~oracle ?pick (fun ~pick ->
      let add id = Mesh.add_node mesh ~rng:mesh_rng id in
      let remove id = Mesh.remove_node mesh id in
      let rebuild () =
        Mesh.build_tables mesh ~selector:(fun ~node ~prefix:_ ~candidates -> pick ~node ~candidates)
      in
      let node_ids () = Mesh.node_ids mesh in
      let stretch_once probe_seed =
        let rng = Rng.create probe_seed in
        let ids = Mesh.node_ids mesh in
        let space = 1 lsl (Mesh.digit_bits mesh * Mesh.num_digits mesh) in
        let acc = ref [] in
        for _ = 1 to stretch_samples do
          let src = Rng.pick rng ids in
          let key = Rng.int rng space in
          match Mesh.route mesh ~src ~key with
          | Some hops ->
            let owner = Mesh.owner_of mesh key in
            let shortest = Oracle.dist oracle src owner in
            if shortest > 0.0 then
              acc := (Core.Measure.path_latency oracle hops /. shortest) :: !acc
          | None -> ()
        done;
        mean !acc
      in
      let convergence ~seed = pastry_convergence ~seed mesh in
      (add, remove, rebuild, node_ids, stretch_once, convergence))

let koorde_outcome ?(size = 256) ?(seed = 11) ?(storm = Faults.default_storm) ?(degree = 4)
    ?pick oracle =
  let dbj = Dbj.create ~degree () in
  let dbj_rng = Rng.create (seed * 2003 + 11) in
  ring_like_outcome ~overlay:"Koorde+stab" ~size ~seed ~storm ~oracle ?pick (fun ~pick ->
      let add id = Dbj.add_node dbj ~rng:dbj_rng id in
      let remove id = Dbj.remove_node dbj id in
      let rebuild () =
        Dbj.build_fingers dbj ~selector:(fun ~node ~arc:_ ~candidates -> pick ~node ~candidates)
      in
      let node_ids () = Dbj.node_ids dbj in
      let stretch_once probe_seed =
        let rng = Rng.create probe_seed in
        let ids = Dbj.node_ids dbj in
        let acc = ref [] in
        for _ = 1 to stretch_samples do
          let src = Rng.pick rng ids in
          let key = Rng.int rng (1 lsl Dbj.key_bits dbj) in
          match Dbj.route dbj ~src ~key with
          | Some hops ->
            let owner = Dbj.successor_node dbj key in
            let shortest = Oracle.dist oracle src owner in
            if shortest > 0.0 then
              acc := (Core.Measure.path_latency oracle hops /. shortest) :: !acc
          | None -> ()
        done;
        mean !acc
      in
      let convergence ~seed = koorde_convergence ~seed dbj in
      (add, remove, rebuild, node_ids, stretch_once, convergence))

(* ------------------------------------------------------------------ *)
(* The experiment                                                      *)
(* ------------------------------------------------------------------ *)

let default_channel = { Faults.loss = 0.05; delay_min = 5.0; delay_max = 50.0 }

let run_custom ?(scale = 1) ?(seed = 11) ?(shards = 1) ?(digest_window = 0.0)
    ?(probe_window = 1) ?(domains = 0) ~storm ~channel ppf =
  let oracle = Ctx.oracle ~scale Ctx.Tsk_large Topology.Transit_stub.Manual in
  let size = max 96 (768 / scale) in
  let ecan_o, can_o =
    ecan_outcomes ~size ~seed ~storm ~channel ~shards ~digest_window ~probe_window ~domains
      oracle
  in
  let chord_o = chord_outcome ~size ~seed ~storm oracle in
  let pastry_o = pastry_outcome ~size ~seed ~storm oracle in
  let koorde_o = koorde_outcome ~size ~seed ~storm oracle in
  let table =
    Tableout.create
      ~title:
        (Printf.sprintf
           "Churn storm over %d nodes: %d crashes, %d leaves, %d joins, %.0f%% staleness x%d, loss %.0f%%, seed %d%s"
           size storm.Faults.crashes storm.Faults.leaves storm.Faults.joins
           (100.0 *. storm.Faults.expire_fraction)
           storm.Faults.expire_bursts
           (100.0 *. channel.Faults.loss)
           seed
           (if shards > 1 || digest_window > 0.0 then
              Printf.sprintf " [%d shards, %.0f ms digests]" shards digest_window
            else ""))
      ~columns:
        [ "overlay"; "stretch pre"; "storm"; "repaired"; "repair ms"; "work"; "notifs"; "drops"; "ok" ]
  in
  let row o =
    Tableout.add_row table
      [
        o.overlay;
        Tableout.cell_f o.stretch_before;
        Tableout.cell_f o.stretch_storm;
        Tableout.cell_f o.stretch_repaired;
        (if Float.is_nan o.repair_ms then "-" else Printf.sprintf "%.0f" o.repair_ms);
        Tableout.cell_i o.repair_work;
        Tableout.cell_i o.notifications;
        Tableout.cell_i o.drops;
        (if o.converged then "yes" else "NO");
      ]
  in
  let record o =
    let labels = [ ("overlay", o.overlay) ] in
    let g name v =
      Engine.Metrics.set (Engine.Metrics.gauge Engine.Metrics.global ~labels name) v
    in
    g "churn_stretch_before" o.stretch_before;
    g "churn_stretch_storm" o.stretch_storm;
    g "churn_stretch_repaired" o.stretch_repaired;
    g "churn_repair_ms" o.repair_ms;
    g "churn_repair_work" (float_of_int o.repair_work);
    g "churn_notifications" (float_of_int o.notifications);
    g "churn_drops" (float_of_int o.drops);
    g "churn_converged" (if o.converged then 1.0 else 0.0)
  in
  List.iter record [ ecan_o; can_o; chord_o; pastry_o; koorde_o ];
  List.iter row [ ecan_o; can_o; chord_o; pastry_o; koorde_o ];
  Tableout.render ppf table;
  Format.fprintf ppf
    "  repair ms: storm end to first passing convergence oracle (probe every %.0fs).@."
    (probe_period /. 1000.0);
  Format.fprintf ppf
    "  work: slot re-selections (eCAN) / stabilisation selector calls (Chord, Pastry, Koorde).@."

let run ?scale ?seed ppf = run_custom ?scale ?seed ~storm:Faults.default_storm ~channel:default_channel ppf
