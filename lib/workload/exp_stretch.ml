module Builder = Core.Builder
module Strategy = Core.Strategy
module Measure = Core.Measure

let overlay_size = 4096
let rtt_budgets = [ 1; 2; 5; 10; 20; 40 ]
let landmark_counts = [ 10; 20 ]
let measure_pairs = 2048

(* Each measured configuration also lands its per-pair stretch samples in
   the global registry ([route_stretch] histograms keyed by figure,
   landmark count and RTT budget) so [bench --json] exports the full
   distributions, not just the table's means. *)
let mean_stretch ~labels builder =
  let report = Measure.route_stretch ~pairs:measure_pairs builder in
  let hist = Engine.Metrics.histogram Engine.Metrics.global ~labels "route_stretch" in
  List.iter
    (fun (s : Measure.sample) ->
      if s.Measure.shortest > 0.0 then
        Engine.Metrics.observe hist (s.Measure.latency /. s.Measure.shortest))
    report.Measure.samples;
  report.Measure.stretch.Prelude.Stats.mean

let figure ~fig ~title ~scale variant latency ppf =
  let oracle = Ctx.oracle ~scale variant latency in
  let size = max 128 (overlay_size / scale) in
  (* One build per landmark count; strategies are swapped by rebuilding
     the routing tables over the same overlay and soft state. *)
  let builders =
    List.map
      (fun landmark_count ->
        ( landmark_count,
          Builder.build oracle
          {
            Builder.default_config with
            Builder.overlay_size = size;
            landmark_count;
            strategy = Strategy.Random_pick;
            seed = 42;
          } ))
      landmark_counts
  in
  let columns =
    ("RTTs" :: List.map (fun l -> Printf.sprintf "landmarks=%d" l) landmark_counts)
    @ [ "optimal" ]
  in
  let table = Tableout.create ~title ~columns in
  (* The optimal curve is flat in the RTT budget. *)
  let lm_ref, reference = List.hd builders in
  Builder.rebuild_tables reference Strategy.Optimal;
  let optimal =
    mean_stretch reference
      ~labels:[ ("fig", fig); ("landmarks", string_of_int lm_ref); ("rtts", "optimal") ]
  in
  List.iter
    (fun rtts ->
      let cells =
        List.map
          (fun (landmark_count, b) ->
            Builder.rebuild_tables b (Strategy.hybrid ~rtts ());
            Tableout.cell_f
              (mean_stretch b
                 ~labels:
                   [
                     ("fig", fig);
                     ("landmarks", string_of_int landmark_count);
                     ("rtts", string_of_int rtts);
                   ]))
          builders
      in
      Tableout.add_row table ((Tableout.cell_i rtts :: cells) @ [ Tableout.cell_f optimal ]))
    rtt_budgets;
  Tableout.render ppf table

let fig10 ?(scale = 1) ppf =
  figure ~fig:"fig10" ~scale Ctx.Tsk_large Topology.Transit_stub.Gtitm_random ppf
    ~title:
      (Printf.sprintf
         "Figure 10: routing stretch vs RTT budget (tsk-large, GT-ITM latencies, %d nodes)"
         (max 128 (overlay_size / scale)))

let fig11 ?(scale = 1) ppf =
  figure ~fig:"fig11" ~scale Ctx.Tsk_large Topology.Transit_stub.Manual ppf
    ~title:
      (Printf.sprintf
         "Figure 11: routing stretch vs RTT budget (tsk-large, manual latencies, %d nodes)"
         (max 128 (overlay_size / scale)))

let fig12 ?(scale = 1) ppf =
  figure ~fig:"fig12" ~scale Ctx.Tsk_small Topology.Transit_stub.Gtitm_random ppf
    ~title:
      (Printf.sprintf
         "Figure 12: routing stretch vs RTT budget (tsk-small, GT-ITM latencies, %d nodes)"
         (max 128 (overlay_size / scale)))

let fig13 ?(scale = 1) ppf =
  figure ~fig:"fig13" ~scale Ctx.Tsk_small Topology.Transit_stub.Manual ppf
    ~title:
      (Printf.sprintf
         "Figure 13: routing stretch vs RTT budget (tsk-small, manual latencies, %d nodes)"
         (max 128 (overlay_size / scale)))
