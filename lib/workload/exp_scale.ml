module Builder = Core.Builder
module Strategy = Core.Strategy
module Measure = Core.Measure

let sizes = [ 512; 1024; 2048; 4096; 8192 ]
let rtt_budget = 10
let landmark_count = 15
let measure_pairs = 1024

let mean_stretch builder =
  (Measure.route_stretch ~pairs:measure_pairs builder).Measure.stretch.Prelude.Stats.mean

let figure ~title ~scale latency ppf =
  let table =
    Tableout.create ~title
      ~columns:
        [
          "nodes";
          "large transit";
          "small transit";
          "large (random nbr)";
          "small (random nbr)";
        ]
  in
  List.iter
    (fun n ->
      let size = max 128 (n / scale) in
      let cells variant =
        let oracle = Ctx.oracle ~scale variant latency in
        let b =
          Builder.build oracle
            {
              Builder.default_config with
              Builder.overlay_size = size;
              landmark_count;
              strategy = Strategy.Random_pick;
              (* Scale the store's expiry sharding with membership, so the
                 biggest builds run the sharded maintenance plane (stretch
                 is unaffected: the clock is frozen, nothing expires). *)
              shards = max 1 (size / 1024);
              seed = 42 + n;
            }
        in
        let random = mean_stretch b in
        Builder.rebuild_tables b (Strategy.hybrid ~rtts:rtt_budget ());
        let hybrid = mean_stretch b in
        (* Per-configuration means go to the global registry. *)
        let g strategy v =
          Engine.Metrics.set
            (Engine.Metrics.gauge Engine.Metrics.global
               ~labels:
                 [
                   ("variant", Ctx.variant_name variant);
                   ("nodes", string_of_int size);
                   ("strategy", strategy);
                 ]
               "scale_stretch")
            v
        in
        g "random" random;
        g "hybrid" hybrid;
        (hybrid, random)
      in
      let large_hybrid, large_random = cells Ctx.Tsk_large in
      let small_hybrid, small_random = cells Ctx.Tsk_small in
      Tableout.add_row table
        [
          Tableout.cell_i size;
          Tableout.cell_f large_hybrid;
          Tableout.cell_f small_hybrid;
          Tableout.cell_f large_random;
          Tableout.cell_f small_random;
        ])
    sizes;
  Tableout.render ppf table

let fig14 ?(scale = 1) ppf =
  figure ~scale Topology.Transit_stub.Gtitm_random ppf
    ~title:"Figure 14: stretch vs overlay size (GT-ITM latencies, hybrid vs random neighbors)"

let fig15 ?(scale = 1) ppf =
  figure ~scale Topology.Transit_stub.Manual ppf
    ~title:"Figure 15: stretch vs overlay size (manual latencies, hybrid vs random neighbors)"
