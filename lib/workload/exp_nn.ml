module Oracle = Topology.Oracle
module Can_overlay = Can.Overlay
module Landmarks = Landmark.Landmarks
module Search = Proximity.Search
module Point = Geometry.Point
module Rng = Prelude.Rng

let landmark_count = 15
let query_count = 100
let max_ers_budget = 4000
let max_hybrid_budget = 40

(* Shared per-variant computation: average best-so-far stretch for both
   algorithms, over the same query set, cached across the four figures. *)
type curves = { ers : float array; hybrid : float array }

let cache : (string, curves) Hashtbl.t = Hashtbl.create 4

let average_curves ~budget per_query_curves =
  (* Curves may be shorter than the budget (ERS can exhaust the graph);
     extend each with its final value. *)
  let acc = Array.make budget 0.0 in
  List.iter
    (fun stretch ->
      let len = Array.length stretch in
      for i = 0 to budget - 1 do
        acc.(i) <- acc.(i) +. stretch.(min i (len - 1))
      done)
    per_query_curves;
  Array.map (fun v -> v /. float_of_int (List.length per_query_curves)) acc

let compute ?(scale = 1) variant =
  let key = Printf.sprintf "%s/%d" (Ctx.variant_name variant) scale in
  match Hashtbl.find_opt cache key with
  | Some c -> c
  | None ->
    let oracle = Ctx.oracle ~scale variant Topology.Transit_stub.Gtitm_random in
    let n = Oracle.node_count oracle in
    let rng = Rng.create 777 in
    (* The paper's §4 setting: a 2-d CAN over every node of the topology. *)
    let can = Can_overlay.create ~dims:2 0 in
    for id = 1 to n - 1 do
      ignore (Can_overlay.join can id (Point.random rng 2))
    done;
    let lms = Landmarks.choose rng oracle landmark_count in
    let vectors = Array.init n (fun node -> Landmarks.vector lms node) in
    let all = Array.init n (fun i -> i) in
    let queries = Rng.sample rng (min query_count n) all in
    let ers_budget = min max_ers_budget (n - 1) in
    (* Probe counts per algorithm go to the global registry ([rtt_probes]
       labeled algo/variant) — the measurement cost the figures trade
       against. *)
    let metrics = Engine.Metrics.global in
    let labels = [ ("variant", Ctx.variant_name variant) ] in
    let ers_curves = ref [] and hybrid_curves = ref [] in
    Array.iter
      (fun query ->
        let _, optimal = Search.true_nearest oracle ~query ~candidates:all in
        let ers = Search.ers_curve ~metrics ~labels oracle can ~query ~budget:ers_budget in
        let hybrid =
          Search.hybrid_curve ~metrics ~labels oracle
            ~vector_of:(fun v -> vectors.(v))
            ~candidates:all ~query ~budget:max_hybrid_budget
        in
        ers_curves := Search.stretch_curve ers ~optimal :: !ers_curves;
        hybrid_curves := Search.stretch_curve hybrid ~optimal :: !hybrid_curves)
      queries;
    let c =
      {
        ers = average_curves ~budget:ers_budget !ers_curves;
        hybrid = average_curves ~budget:max_hybrid_budget !hybrid_curves;
      }
    in
    Hashtbl.replace cache key c;
    c

let data ?(scale = 1) variant =
  let c = compute ~scale variant in
  (c.ers, c.hybrid)

let hybrid_checkpoints = [ 1; 2; 3; 5; 8; 10; 15; 20; 30; 40 ]
let ers_checkpoints = [ 1; 2; 5; 10; 20; 50; 100; 200; 500; 1000; 2000; 4000 ]

let at curve k = curve.(min (k - 1) (Array.length curve - 1))

let comparison_figure ~title ~scale variant ppf =
  let c = compute ~scale variant in
  let table =
    Tableout.create ~title ~columns:[ "RTT measurements"; "ERS stretch"; "lmk+RTT stretch" ]
  in
  List.iter
    (fun k ->
      Tableout.add_row table
        [ Tableout.cell_i k; Tableout.cell_f (at c.ers k); Tableout.cell_f (at c.hybrid k) ])
    hybrid_checkpoints;
  Tableout.render ppf table

let ers_figure ~title ~scale variant ppf =
  let c = compute ~scale variant in
  let table = Tableout.create ~title ~columns:[ "RTT measurements"; "ERS stretch" ] in
  List.iter
    (fun k ->
      if k <= Array.length c.ers then
        Tableout.add_row table [ Tableout.cell_i k; Tableout.cell_f (at c.ers k) ])
    ers_checkpoints;
  Tableout.render ppf table

let fig3 ?(scale = 1) ppf =
  comparison_figure ~scale Ctx.Tsk_large ppf
    ~title:"Figure 3: nearest-neighbor stretch, ERS vs landmark+RTT (tsk-large)"

let fig4 ?(scale = 1) ppf =
  ers_figure ~scale Ctx.Tsk_large ppf
    ~title:"Figure 4: expanding-ring search alone, deep budgets (tsk-large)"

let fig5 ?(scale = 1) ppf =
  comparison_figure ~scale Ctx.Tsk_small ppf
    ~title:"Figure 5: nearest-neighbor stretch, ERS vs landmark+RTT (tsk-small)"

let fig6 ?(scale = 1) ppf =
  ers_figure ~scale Ctx.Tsk_small ppf
    ~title:"Figure 6: expanding-ring search alone, deep budgets (tsk-small)"
