(** §5 generality claim: the landmark+RTT selection technique applies to
    any overlay with neighbor-selection flexibility.  Runs Chord (finger
    arcs), Pastry (prefix regions) and Koorde (de Bruijn image arcs —
    the constant-degree frontier, only ~k candidates per node) under
    random / hybrid / optimal selection and reports routing stretch. *)

val run : ?scale:int -> Format.formatter -> unit
