module Rng = Prelude.Rng

type node_state = { id : int; key : int; mutable fingers : int option array }

type obs = {
  requests : Engine.Metrics.counter;
  failures : Engine.Metrics.counter;
  hops : Engine.Metrics.histogram;
  tracer : Engine.Trace.t option;
}

type t = {
  key_bits : int;
  ring : int;  (* 2^key_bits *)
  nodes : (int, node_state) Hashtbl.t;
  keys : (int, int) Hashtbl.t;  (* ring key -> node id *)
  mutable sorted : (int * int) array;  (* (key, id), sorted by key *)
  mutable dirty : bool;
  obs : obs option;
}

type selector = node:int -> arc:int * int -> candidates:int array -> int option

let create ?metrics ?(labels = []) ?trace ?(key_bits = 30) () =
  if key_bits < 4 || key_bits > 50 then invalid_arg "Chord.create: key_bits out of [4,50]";
  let obs =
    Option.map
      (fun m ->
        let labels = ("overlay", "chord") :: labels in
        {
          requests = Engine.Metrics.counter m ~labels "route_requests";
          failures = Engine.Metrics.counter m ~labels "route_failures";
          hops = Engine.Metrics.histogram m ~labels "route_hops";
          tracer = trace;
        })
      metrics
  in
  {
    key_bits;
    ring = 1 lsl key_bits;
    nodes = Hashtbl.create 64;
    keys = Hashtbl.create 64;
    sorted = [||];
    dirty = false;
    obs;
  }

let key_bits t = t.key_bits
let size t = Hashtbl.length t.nodes
let mem t id = Hashtbl.mem t.nodes id

let node t id =
  match Hashtbl.find_opt t.nodes id with
  | Some n -> n
  | None -> invalid_arg "Chord: not a member"

let key_of t id = (node t id).key

let node_ids t =
  let arr = Array.make (size t) 0 in
  let i = ref 0 in
  Hashtbl.iter
    (fun id _ ->
      arr.(!i) <- id;
      incr i)
    t.nodes;
  arr

let index t =
  if t.dirty then begin
    let arr = Array.make (size t) (0, 0) in
    let i = ref 0 in
    Hashtbl.iter
      (fun id n ->
        arr.(!i) <- (n.key, id);
        incr i)
      t.nodes;
    Array.sort compare arr;
    t.sorted <- arr;
    t.dirty <- false
  end;
  t.sorted

let add_node t ~rng id =
  if mem t id then invalid_arg "Chord.add_node: already a member";
  let rec fresh_key () =
    let k = Rng.int rng t.ring in
    if Hashtbl.mem t.keys k then fresh_key () else k
  in
  let key = fresh_key () in
  Hashtbl.replace t.nodes id { id; key; fingers = Array.make t.key_bits None };
  Hashtbl.replace t.keys key id;
  t.dirty <- true

let remove_node t id =
  let n = node t id in
  Hashtbl.remove t.nodes id;
  Hashtbl.remove t.keys n.key;
  t.dirty <- true;
  Hashtbl.iter
    (fun _ other ->
      Array.iteri
        (fun i -> function Some f when f = id -> other.fingers.(i) <- None | _ -> ())
        other.fingers)
    t.nodes

(* First member at ring position >= key (clockwise), wrapping. *)
let successor_node t key =
  let arr = index t in
  let n = Array.length arr in
  if n = 0 then failwith "Chord.successor_node: empty ring";
  let key = ((key mod t.ring) + t.ring) mod t.ring in
  (* binary search for the first entry with fst >= key *)
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst arr.(mid) >= key then hi := mid else lo := mid + 1
  done;
  snd arr.(if !lo = n then 0 else !lo)

let arc_members t ~lo ~span =
  if span <= 0 then [||]
  else begin
    let arr = index t in
    let n = Array.length arr in
    if n = 0 then [||]
    else begin
      let lo = ((lo mod t.ring) + t.ring) mod t.ring in
      let first_geq key =
        let a = ref 0 and b = ref n in
        while !a < !b do
          let mid = (!a + !b) / 2 in
          if fst arr.(mid) >= key then b := mid else a := mid + 1
        done;
        !a
      in
      let collect lo hi =
        (* members with key in [lo, hi) where lo <= hi, no wrap *)
        let start = first_geq lo and stop = first_geq hi in
        Array.to_list (Array.sub arr start (stop - start))
      in
      let members =
        if lo + span <= t.ring then collect lo (lo + span)
        else collect lo t.ring @ collect 0 (lo + span - t.ring)
      in
      Array.of_list (List.map snd members)
    end
  end

let build_fingers t ~selector =
  Hashtbl.iter
    (fun id n ->
      n.fingers <- Array.make t.key_bits None;
      for i = 0 to t.key_bits - 1 do
        let span = 1 lsl i in
        let lo = (n.key + span) mod t.ring in
        let candidates = arc_members t ~lo ~span in
        let candidates = Array.of_seq (Seq.filter (fun c -> c <> id) (Array.to_seq candidates)) in
        if Array.length candidates > 0 then n.fingers.(i) <- selector ~node:id ~arc:(lo, span) ~candidates
      done)
    t.nodes

let fingers t id =
  let n = node t id in
  let acc = ref [] in
  Array.iteri (fun i -> function Some f -> acc := (i, f) :: !acc | None -> ()) n.fingers;
  List.rev !acc

(* x in (a, b] on the ring; the whole ring when a = b. *)
let between_oc t a b x =
  let norm v = ((v mod t.ring) + t.ring) mod t.ring in
  let a = norm a and b = norm b and x = norm x in
  if a = b then true else if a < b then a < x && x <= b else x > a || x <= b

let clockwise t from target = ((target - from) mod t.ring + t.ring) mod t.ring

let route t ~src ~key =
  if not (mem t src) then invalid_arg "Chord.route: source not a member";
  let owner = successor_node t key in
  let rec go u acc guard =
    if u.id = owner then Some (List.rev (u.id :: acc))
    else if guard <= 0 then None
    else begin
      let succ = successor_node t (u.key + 1) in
      if between_oc t u.key (key_of t succ) key then go (node t succ) (u.id :: acc) (guard - 1)
      else begin
        (* closest preceding finger: minimises remaining clockwise distance
           while staying strictly between u and the key *)
        let best = ref None in
        let consider v =
          if v <> u.id && between_oc t u.key (key - 1) (key_of t v) then begin
            let d = clockwise t (key_of t v) key in
            match !best with
            | Some (bd, _) when bd <= d -> ()
            | _ -> best := Some (d, v)
          end
        in
        Array.iter (function Some v -> consider v | None -> ()) u.fingers;
        consider succ;
        match !best with
        | Some (_, v) -> go (node t v) (u.id :: acc) (guard - 1)
        | None -> go (node t succ) (u.id :: acc) (guard - 1)
      end
    end
  in
  let result = go (node t src) [] (4 * size t) in
  (match t.obs with
  | None -> ()
  | Some o ->
    Engine.Metrics.incr o.requests;
    (match result with
    | Some hops ->
      Engine.Metrics.observe o.hops (float_of_int (List.length hops - 1));
      Option.iter
        (fun tr ->
          let rec spans = function
            | a :: (b :: _ as rest) ->
              Engine.Trace.emit tr ~peer:b Engine.Trace.Route_hop ~node:a;
              spans rest
            | [ _ ] | [] -> ()
          in
          spans hops)
        o.tracer
    | None -> Engine.Metrics.incr o.failures));
  result

let check_invariants t =
  let ( let* ) r f = Result.bind r f in
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let ids = node_ids t in
  let* () =
    Array.fold_left
      (fun acc id ->
        let* () = acc in
        let n = node t id in
        let* () =
          if successor_node t n.key = id then Ok ()
          else err "node %d is not the successor of its own key" id
        in
        let rec check_fingers i =
          if i >= t.key_bits then Ok ()
          else begin
            match n.fingers.(i) with
            | None -> check_fingers (i + 1)
            | Some f ->
              if not (mem t f) then err "node %d finger %d points at dead node %d" id i f
              else begin
                let span = 1 lsl i in
                let lo = (n.key + span) mod t.ring in
                let fk = key_of t f in
                let inside = clockwise t lo fk < span in
                if inside then check_fingers (i + 1)
                else err "node %d finger %d outside its arc" id i
              end
          end
        in
        check_fingers 0)
      (Ok ()) ids
  in
  Ok ()
