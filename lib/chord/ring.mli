(** Chord ring with proximity-aware finger selection.

    Keys live on a ring of [2^key_bits] identifiers.  Classic Chord fixes
    finger [i] of a node with key [k] to [successor (k + 2^i)]; the
    proximity-neighbor-selection variant used here may pick {e any} member
    of the arc [[k + 2^i, k + 2^(i+1))] — routing stays O(log n) while the
    choice within the arc is free, which is the hook the paper's
    soft-state hybrid selection plugs into (landmark numbers are stored as
    keys on the ring, so arc members close in landmark number are stored
    close together). *)

type t

type selector = node:int -> arc:int * int -> candidates:int array -> int option
(** [selector ~node ~arc:(lo, span) ~candidates] picks the finger entry of
    [node] for the arc starting at [lo] (ring positions [lo, lo + span)).
    [candidates] is never empty. *)

val create :
  ?metrics:Engine.Metrics.t ->
  ?labels:Engine.Metrics.labels ->
  ?trace:Engine.Trace.t ->
  ?key_bits:int ->
  unit ->
  t
(** Empty ring; [key_bits] defaults to 30.

    With [metrics], {!route} maintains [route_requests] /
    [route_failures] counters and a [route_hops] histogram labeled
    [overlay=chord] plus any extra [labels].  With [trace], successful
    routes emit one [Route_hop] span per forwarding step. *)

val key_bits : t -> int
val size : t -> int

val add_node : t -> rng:Prelude.Rng.t -> int -> unit
(** Add a member under a fresh random ring key.  Raises
    [Invalid_argument] if the node is already a member. *)

val remove_node : t -> int -> unit
(** Remove a member.  Its fingers disappear; other members' fingers that
    pointed at it are cleared (to be repaired by [build_fingers]). *)

val mem : t -> int -> bool
val node_ids : t -> int array
val key_of : t -> int -> int
(** Ring key of a member. *)

val successor_node : t -> int -> int
(** [successor_node t key] is the member owning ring position [key] (the
    first member clockwise from [key]).  Raises [Failure] on an empty
    ring. *)

val arc_members : t -> lo:int -> span:int -> int array
(** Members whose ring keys fall in [[lo, lo+span)] (mod ring size). *)

val build_fingers : t -> selector:selector -> unit
(** (Re)build every member's finger table with the given selection
    policy.  Fingers for empty arcs stay unset. *)

val fingers : t -> int -> (int * int) list
(** Filled fingers of a node as [(level, target node)]. *)

val route : t -> src:int -> key:int -> int list option
(** Greedy clockwise routing: hop to the known node (finger or successor)
    that most closely precedes the key; ends at [successor_node t key].
    Returns hop list including both endpoints. *)

val check_invariants : t -> (unit, string) result
(** Fingers live inside their arcs; successors are consistent with the key
    order. *)
