(** Nearest-neighbor search algorithms under comparison (paper §4).

    All three algorithms spend a budget of RTT measurements and return the
    closest node found; the interesting output is the whole {e curve} of
    best-so-far distance as a function of measurements spent, which is
    what Figures 3–6 plot.

    - {e Expanding-ring search} (ERS) floods outward over overlay links,
      blindly probing every visited node.
    - {e Landmark ordering} picks the single candidate whose landmark
      vector is closest (1 RTT to confirm) — the first point of the hybrid
      curve.
    - The {e hybrid} uses landmark clustering as pre-selection: probe
      candidates in order of landmark-space distance. *)

type curve = {
  found : int array;  (** [found.(i)]: best node after [i+1] measurements *)
  dist : float array;  (** physical distance to [found.(i)] *)
  elapsed : float;
      (** modelled wall-clock cost (ms) of the probes: the sum of measured
          RTTs on the direct sequential path, the probe plane's batch
          schedule when drained through [?prober] (a window-1 prober
          prices identically to the sequential path) *)
}
(** Best-so-far trajectory; both arrays have length = measurements
    actually spent (at most the budget). *)

val true_nearest : Topology.Oracle.t -> query:int -> candidates:int array -> int * float
(** Ground truth nearest candidate (excluding the query itself).  Raises
    [Invalid_argument] if there is no other candidate. *)

val ers_curve :
  ?metrics:Engine.Metrics.t ->
  ?labels:Engine.Metrics.labels ->
  ?trace:Engine.Trace.t ->
  ?prober:Engine.Probe.t ->
  Topology.Oracle.t ->
  Can.Overlay.t ->
  query:int ->
  budget:int ->
  curve
(** Expanding-ring search over the CAN neighbor graph, starting at the
    query node (which must be a member): breadth-first rings, probing
    every ring member until the budget runs out.  Deterministic (rings
    scanned in node-id order).

    All curve functions take the same observability knobs: with
    [metrics], each RTT measurement increments an [rtt_probes] counter
    labeled [algo=<algorithm>] plus any extra [labels]; with [trace],
    each measurement emits an [Rtt_probe] span (node = query, peer =
    probed node, dur = measured RTT).

    With [prober], measurements drain through the probe plane instead of
    hitting the oracle directly: each breadth-first ring (one batch for
    the pre-selection searches) is issued concurrently under the prober's
    window, and the modelled wall-clock accumulates into [curve.elapsed].
    Budget accounting, probe order and probed values are unchanged for
    any window, so the curve itself is identical — the plane only prices
    it.  The prober must wrap the same oracle. *)

val hybrid_curve :
  ?metrics:Engine.Metrics.t ->
  ?labels:Engine.Metrics.labels ->
  ?trace:Engine.Trace.t ->
  ?prober:Engine.Probe.t ->
  Topology.Oracle.t ->
  vector_of:(int -> float array) ->
  candidates:int array ->
  query:int ->
  budget:int ->
  curve
(** Landmark+RTT hybrid: rank [candidates] (minus the query) by
    landmark-vector distance to the query's vector and probe in that
    order.  [hybrid_curve ... ~budget:1] is the landmark-ordering-only
    baseline. *)

val ranked_curve :
  ?metrics:Engine.Metrics.t ->
  ?labels:Engine.Metrics.labels ->
  ?trace:Engine.Trace.t ->
  ?prober:Engine.Probe.t ->
  ?algo:string ->
  Topology.Oracle.t ->
  score:(int -> float) ->
  candidates:int array ->
  query:int ->
  budget:int ->
  curve
(** Generalised pre-selection: probe candidates in ascending [score]
    order.  {!hybrid_curve} is [ranked_curve] with the landmark-vector
    distance as score; the §5.5 optimisations (landmark groups,
    hierarchical landmark spaces) plug in their own scores.  [algo]
    (default ["ranked"]) names the algorithm in the [rtt_probes] metric
    label. *)

val hill_climb_curve :
  ?metrics:Engine.Metrics.t ->
  ?labels:Engine.Metrics.labels ->
  ?trace:Engine.Trace.t ->
  Topology.Oracle.t ->
  Can.Overlay.t ->
  query:int ->
  budget:int ->
  curve
(** Hill climbing over overlay links (the "heuristic approach" of §1):
    probe the current node's CAN neighbors and move to the closest; stop
    at a local minimum even if budget remains — exhibiting exactly the
    local-minimum pitfall the paper warns about. *)

val stretch_curve : curve -> optimal:float -> float array
(** Pointwise [dist /. optimal]; when the optimal distance is 0 the
    stretch is defined as 1 if found coincides, else infinity. *)
