module Oracle = Topology.Oracle
module Can_overlay = Can.Overlay
module Landmarks = Landmark.Landmarks
module Probe = Engine.Probe

type curve = { found : int array; dist : float array; elapsed : float }

type obs = { n_probes : Engine.Metrics.counter; tracer : Engine.Trace.t option }

let make_obs ?metrics ?(labels = []) ?trace ~algo () =
  Option.map
    (fun m ->
      {
        n_probes = Engine.Metrics.counter m ~labels:(("algo", algo) :: labels) "rtt_probes";
        tracer = trace;
      })
    metrics

let count_probe obs = match obs with None -> () | Some o -> Engine.Metrics.incr o.n_probes

let observe_probe obs ~query node d =
  match obs with
  | None -> ()
  | Some o ->
    Engine.Metrics.incr o.n_probes;
    Option.iter
      (fun tr -> Engine.Trace.emit tr ~dur:d ~peer:node Engine.Trace.Rtt_probe ~node:query)
      o.tracer

let true_nearest oracle ~query ~candidates =
  match Oracle.nearest oracle query candidates with
  | Some (node, d) -> (node, d)
  | None -> invalid_arg "Search.true_nearest: no candidate besides the query"

let rec take k = function
  | x :: rest when k > 0 -> x :: take (k - 1) rest
  | _ -> []

(* Fold a sequence of probe batches into a best-so-far curve, spending at
   most [budget] measurements.  Batches model message phases: without a
   prober they are simply flattened into the seed's sequential measurement
   loop; with one, each batch drains through the probe plane (results and
   measurement order are identical — the plane only adds the modelled
   wall-clock, accumulated into [curve.elapsed]).  A probe the plane fails
   (retry exhaustion under an injected channel) still spends budget but
   cannot improve the best-so-far. *)
let curve_of_batches ?obs ?prober oracle ~query ~budget batches =
  let found = ref [] and dist = ref [] in
  let best_node = ref (-1) and best_dist = ref infinity in
  let spent = ref 0 and wall = ref 0.0 in
  let record node = function
    | Some d ->
      if d < !best_dist then begin
        best_dist := d;
        best_node := node
      end;
      found := !best_node :: !found;
      dist := !best_dist :: !dist
    | None ->
      found := !best_node :: !found;
      dist := !best_dist :: !dist
  in
  List.iter
    (fun batch ->
      let batch = if !spent >= budget then [] else take (budget - !spent) batch in
      match (batch, prober) with
      | [], _ -> ()
      | batch, None ->
        List.iter
          (fun node ->
            incr spent;
            let d = Oracle.measure oracle query node in
            wall := !wall +. d;
            observe_probe obs ~query node d;
            record node (Some d))
          batch
      | batch, Some p ->
        let b = Probe.run_batch p ~src:query ~dsts:(Array.of_list batch) in
        wall := !wall +. Probe.elapsed b;
        List.iteri
          (fun i node ->
            incr spent;
            count_probe obs;
            match b.Probe.results.(i) with
            | Ok d -> record node (Some d)
            | Error _ -> record node None)
          batch)
    batches;
  {
    found = Array.of_list (List.rev !found);
    dist = Array.of_list (List.rev !dist);
    elapsed = !wall;
  }

let ers_curve ?metrics ?labels ?trace ?prober oracle can ~query ~budget =
  if not (Can_overlay.mem can query) then invalid_arg "Search.ers_curve: query not a member";
  if budget < 1 then invalid_arg "Search.ers_curve: budget must be >= 1";
  let obs = make_obs ?metrics ?labels ?trace ~algo:"ers" () in
  (* Breadth-first rings over the CAN neighbor graph; each ring is one
     batch (its members are known before any of them is probed). *)
  let visited = Hashtbl.create 64 in
  Hashtbl.replace visited query ();
  let batches = ref [] in
  let collected = ref 0 in
  let ring = ref (List.sort compare (Can_overlay.node can query).Can_overlay.neighbors) in
  List.iter (fun v -> Hashtbl.replace visited v ()) !ring;
  while !collected < budget && !ring <> [] do
    let take_n = min (budget - !collected) (List.length !ring) in
    batches := take take_n !ring :: !batches;
    collected := !collected + take_n;
    if !collected < budget then begin
      let next =
        List.concat_map
          (fun v ->
            List.filter (fun w -> not (Hashtbl.mem visited w)) (Can_overlay.node can v).Can_overlay.neighbors)
          !ring
      in
      let next = List.sort_uniq compare next in
      List.iter (fun v -> Hashtbl.replace visited v ()) next;
      ring := next
    end
  done;
  curve_of_batches ?obs ?prober oracle ~query ~budget (List.rev !batches)

let ranked_curve ?metrics ?labels ?trace ?prober ?(algo = "ranked") oracle ~score ~candidates
    ~query ~budget =
  if budget < 1 then invalid_arg "Search.ranked_curve: budget must be >= 1";
  let obs = make_obs ?metrics ?labels ?trace ~algo () in
  let ranked =
    candidates
    |> Array.to_list
    |> List.filter (fun c -> c <> query)
    |> List.map (fun c -> (score c, c))
    |> List.sort compare
    |> List.map snd
  in
  (* Pre-selection knows the whole ranking up front: the probes form a
     single batch. *)
  curve_of_batches ?obs ?prober oracle ~query ~budget [ take budget ranked ]

let hybrid_curve ?metrics ?labels ?trace ?prober oracle ~vector_of ~candidates ~query ~budget =
  if budget < 1 then invalid_arg "Search.hybrid_curve: budget must be >= 1";
  let qvec = vector_of query in
  ranked_curve ?metrics ?labels ?trace ?prober ~algo:"hybrid" oracle
    ~score:(fun c -> Landmarks.vector_dist qvec (vector_of c))
    ~candidates ~query ~budget

let hill_climb_curve ?metrics ?labels ?trace oracle can ~query ~budget =
  if not (Can_overlay.mem can query) then
    invalid_arg "Search.hill_climb_curve: query not a member";
  if budget < 1 then invalid_arg "Search.hill_climb_curve: budget must be >= 1";
  let obs = make_obs ?metrics ?labels ?trace ~algo:"hill_climb" () in
  (* Walk to the best neighbor while it improves; each neighbor probe
     costs one measurement.  Stops at local minima. *)
  let found = ref [] and dist = ref [] in
  let best_node = ref (-1) and best_dist = ref infinity in
  let spent = ref 0 and wall = ref 0.0 in
  let probe node =
    if !spent < budget then begin
      incr spent;
      let d = Oracle.measure oracle query node in
      wall := !wall +. d;
      observe_probe obs ~query node d;
      if d < !best_dist then begin
        best_dist := d;
        best_node := node
      end;
      found := !best_node :: !found;
      dist := !best_dist :: !dist;
      Some d
    end
    else None
  in
  let visited = Hashtbl.create 32 in
  Hashtbl.replace visited query ();
  let rec climb at current_dist =
    if !spent >= budget then ()
    else begin
      let improved = ref None in
      List.iter
        (fun v ->
          if not (Hashtbl.mem visited v) then begin
            Hashtbl.replace visited v ();
            match probe v with
            | Some d -> (
              match !improved with
              | Some (bd, _) when bd <= d -> ()
              | _ -> if d < current_dist then improved := Some (d, v))
            | None -> ()
          end)
        (List.sort compare (Can_overlay.node can at).Can_overlay.neighbors);
      match !improved with
      | Some (d, v) -> climb v d
      | None -> ()  (* local minimum: the heuristic gives up *)
    end
  in
  climb query infinity;
  {
    found = Array.of_list (List.rev !found);
    dist = Array.of_list (List.rev !dist);
    elapsed = !wall;
  }

let stretch_curve { dist; _ } ~optimal =
  Array.map
    (fun d ->
      if optimal > 0.0 then d /. optimal else if d = 0.0 then 1.0 else infinity)
    dist
