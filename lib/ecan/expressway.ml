module Can_overlay = Can.Overlay
module Zone = Geometry.Zone

type obs = {
  requests : Engine.Metrics.counter;
  failures : Engine.Metrics.counter;
  hops : Engine.Metrics.histogram;
  tracer : Engine.Trace.t option;
}

type t = {
  can : Can_overlay.t;
  span_bits : int;
  tables : (int, int option array array) Hashtbl.t;  (* node -> row -> digit -> entry *)
  scratch_visited : (int, unit) Hashtbl.t;
      (* per-route visited set, cleared at the top of every [route] call.
         Routing is a coordinator-side operation (no caller routes from a
         pool worker), so one scratch table per expressway is safe and
         saves a fresh table per routed message. *)
  obs : obs option;
}

type selector = node:int -> region:int array -> candidates:int array -> int option

let create ?metrics ?(labels = []) ?trace ?(span_bits = 2) can =
  if span_bits < 1 || span_bits > 8 then invalid_arg "Ecan.create: span_bits out of [1,8]";
  let obs =
    Option.map
      (fun m ->
        let labels = ("overlay", "ecan") :: labels in
        {
          requests = Engine.Metrics.counter m ~labels "route_requests";
          failures = Engine.Metrics.counter m ~labels "route_failures";
          hops = Engine.Metrics.histogram m ~labels "route_hops";
          tracer = trace;
        })
      metrics
  in
  { can; span_bits; tables = Hashtbl.create 256; scratch_visited = Hashtbl.create 64; obs }

let can t = t.can
let span_bits t = t.span_bits
let fan t = 1 lsl t.span_bits

let rows t id = Array.length (Can_overlay.node t.can id).Can_overlay.path / t.span_bits

let digit_of_bits t bits row =
  let acc = ref 0 in
  for i = row * t.span_bits to ((row + 1) * t.span_bits) - 1 do
    acc := (!acc lsl 1) lor bits.(i)
  done;
  !acc

let own_digit t id ~row =
  if row < 0 || row >= rows t id then invalid_arg "Ecan.own_digit: row out of range";
  digit_of_bits t (Can_overlay.node t.can id).Can_overlay.path row

let region_prefix t id ~row ~digit =
  if row < 0 || row >= rows t id then invalid_arg "Ecan.region_prefix: row out of range";
  if digit < 0 || digit >= fan t then invalid_arg "Ecan.region_prefix: digit out of range";
  let path = (Can_overlay.node t.can id).Can_overlay.path in
  let prefix = Array.make ((row + 1) * t.span_bits) 0 in
  Array.blit path 0 prefix 0 (row * t.span_bits);
  for i = 0 to t.span_bits - 1 do
    prefix.((row * t.span_bits) + i) <- (digit lsr (t.span_bits - 1 - i)) land 1
  done;
  prefix

let table t id =
  match Hashtbl.find_opt t.tables id with
  | Some tbl -> tbl
  | None ->
    let tbl = Array.init (rows t id) (fun _ -> Array.make (fan t) None) in
    Hashtbl.replace t.tables id tbl;
    tbl

let entry t id ~row ~digit =
  match Hashtbl.find_opt t.tables id with
  | None -> None
  | Some tbl -> if row < Array.length tbl then tbl.(row).(digit) else None

let set_entry t id ~row ~digit value =
  let tbl = table t id in
  if row < 0 || row >= Array.length tbl then invalid_arg "Ecan.set_entry: row out of range";
  if digit < 0 || digit >= fan t then invalid_arg "Ecan.set_entry: digit out of range";
  tbl.(row).(digit) <- value

let entries t id =
  match Hashtbl.find_opt t.tables id with
  | None -> []
  | Some tbl ->
    (* Zone merges can shorten a node's path after its table was built;
       rows beyond the current path are dead state and are not reported. *)
    let live_rows = min (Array.length tbl) (rows t id) in
    let acc = ref [] in
    for row = 0 to live_rows - 1 do
      Array.iteri
        (fun digit -> function Some v -> acc := (row, digit, v) :: !acc | None -> ())
        tbl.(row)
    done;
    !acc

let build_table_for t ~selector id =
  Hashtbl.remove t.tables id;
  let tbl = table t id in
  for row = 0 to Array.length tbl - 1 do
    let own = own_digit t id ~row in
    for digit = 0 to fan t - 1 do
      if digit <> own then begin
        let region = region_prefix t id ~row ~digit in
        let candidates = Can_overlay.members_with_prefix t.can region in
        if Array.length candidates > 0 then
          tbl.(row).(digit) <- selector ~node:id ~region ~candidates
      end
    done
  done

let build_tables t ~selector =
  Array.iter (build_table_for t ~selector) (Can_overlay.node_ids t.can)

let table_size t id =
  match Hashtbl.find_opt t.tables id with
  | None -> 0
  | Some tbl ->
    Array.fold_left
      (fun acc slots ->
        Array.fold_left (fun acc -> function Some _ -> acc + 1 | None -> acc) acc slots)
      0 tbl

let route t ~src point =
  let canvas = t.can in
  if Array.length point <> Can_overlay.dims canvas then
    invalid_arg "Ecan.route: dimension mismatch";
  let target_bits = Can_overlay.path_of_point canvas ~depth:Can_overlay.max_depth point in
  let target_digit row = digit_of_bits t target_bits row in
  let visited = t.scratch_visited in
  Hashtbl.clear visited;
  let greedy_step u =
    (* One CAN hop toward the target: nearest unvisited neighbor zone
       (ties to the lowest id); when an expressway hop has landed amid
       already-visited zones, permit revisits (the hop guard bounds the
       walk).  Written as a while-loop over the neighbor list with
       sentinel int/float locals — no closure captures the refs, so they
       compile to unboxed mutable locals and the scan allocates
       nothing. *)
    let ns = ref u.Can_overlay.neighbors in
    let best_d = ref infinity and best_id = ref (-1) in
    let any_d = ref infinity and any_id = ref (-1) in
    while !ns <> [] do
      match !ns with
      | [] -> ()
      | vid :: rest ->
        ns := rest;
        let v = Can_overlay.node canvas vid in
        let d = Zone.min_torus_dist v.Can_overlay.zone point in
        if
          (not (Hashtbl.mem visited vid))
          && (!best_id < 0 || d < !best_d || (d = !best_d && vid < !best_id))
        then begin
          best_d := d;
          best_id := vid
        end;
        if !any_id < 0 || d < !any_d || (d = !any_d && vid < !any_id) then begin
          any_d := d;
          any_id := vid
        end
    done;
    if !best_id >= 0 then !best_id else !any_id
  in
  let express_step u =
    (* First row where our digit differs from the target's: take the
       table entry into the target's sibling region if we have one.
       Returns the next node id, or -1 for none. *)
    let nrows = Array.length (Can_overlay.node canvas u.Can_overlay.id).Can_overlay.path / t.span_bits in
    let rec scan row =
      if row >= nrows then -1
      else begin
        let own = digit_of_bits t u.Can_overlay.path row in
        let tgt = target_digit row in
        if own = tgt then scan (row + 1)
        else begin
          (* Entries can dangle briefly after a departure (repair is
             asynchronous); treat dead targets as missing. *)
          match entry t u.Can_overlay.id ~row ~digit:tgt with
          | Some v
            when (not (Hashtbl.mem visited v))
                 && v <> u.Can_overlay.id
                 && Can_overlay.mem canvas v ->
            v
          | _ -> -1
        end
      end
    in
    scan 0
  in
  let rec go u acc guard =
    if Zone.contains u.Can_overlay.zone point then Some (List.rev (u.Can_overlay.id :: acc))
    else if guard <= 0 then None
    else begin
      Hashtbl.replace visited u.Can_overlay.id ();
      let next = match express_step u with -1 -> greedy_step u | v -> v in
      if next < 0 then None
      else go (Can_overlay.node canvas next) (u.Can_overlay.id :: acc) (guard - 1)
    end
  in
  let result = go (Can_overlay.node canvas src) [] (4 * Can_overlay.size canvas) in
  (match t.obs with
  | None -> ()
  | Some o ->
    Engine.Metrics.incr o.requests;
    (match result with
    | Some hops ->
      Engine.Metrics.observe o.hops (float_of_int (List.length hops - 1));
      Option.iter
        (fun tr ->
          let rec spans = function
            | a :: (b :: _ as rest) ->
              Engine.Trace.emit tr ~peer:b Engine.Trace.Route_hop ~node:a;
              spans rest
            | [ _ ] | [] -> ()
          in
          spans hops)
        o.tracer
    | None -> Engine.Metrics.incr o.failures));
  result
