(** eCAN: expressway-augmented CAN with logarithmic routing.

    High-order zones are prefix regions of the CAN split tree: grouping
    the split bits into digits of [span_bits] bits (so every [2^span_bits]
    order-i zones form one order-(i+1) zone), a node's routing table has
    one row per digit of its own path, and each row holds one
    representative node for each sibling region at that level — exactly
    Pastry's prefix-routing structure laid over the Cartesian space.

    The choice of representative is the {e proximity-neighbor selection}
    the paper is about, so it is pluggable: [build_tables] takes a
    [selector] callback (random / soft-state hybrid / optimal are wired in
    the [core] library). *)

type t

type selector = node:int -> region:int array -> candidates:int array -> int option
(** [selector ~node ~region ~candidates] picks the routing-table entry
    that [node] uses as its representative for the high-order zone
    [region] (a path prefix).  [candidates] are the current members of the
    region and is never empty.  Returning [None] leaves the entry
    unfilled. *)

val create :
  ?metrics:Engine.Metrics.t ->
  ?labels:Engine.Metrics.labels ->
  ?trace:Engine.Trace.t ->
  ?span_bits:int ->
  Can.Overlay.t ->
  t
(** Wrap a CAN overlay; [span_bits] (default 2, i.e. k = 4 zones per
    higher-order zone) is the number of path bits per routing digit.

    With [metrics], expressway routing maintains [route_requests] /
    [route_failures] counters and a [route_hops] histogram labeled
    [overlay=ecan] plus any extra [labels] (independent of the wrapped
    CAN's own instruments).  With [trace], successful routes emit one
    [Route_hop] span per forwarding step. *)

val can : t -> Can.Overlay.t
val span_bits : t -> int

val rows : t -> int -> int
(** Number of complete routing-table rows of a node ([path length /
    span_bits]). *)

val own_digit : t -> int -> row:int -> int
(** The node's own digit at a row. *)

val region_prefix : t -> int -> row:int -> digit:int -> int array
(** The path prefix of the sibling region a table slot points into. *)

val entry : t -> int -> row:int -> digit:int -> int option
(** Current table entry, [None] if unfilled or never built. *)

val set_entry : t -> int -> row:int -> digit:int -> int option -> unit
(** Overwrite one entry (used by pub/sub driven re-selection).  Raises
    [Invalid_argument] if the slot does not exist. *)

val entries : t -> int -> (int * int * int) list
(** All filled entries of a node as [(row, digit, target)]. *)

val build_table_for : t -> selector:selector -> int -> unit
(** (Re)build one node's table from the current overlay state. *)

val build_tables : t -> selector:selector -> unit
(** (Re)build every member's table. *)

val route : t -> src:int -> Geometry.Point.t -> int list option
(** Expressway routing: hop along the table entry that extends the shared
    digit prefix with the target; fall back to a greedy CAN hop when no
    table entry helps.  Returns the hop list including both endpoints. *)

val table_size : t -> int -> int
(** Number of filled entries (routing state) of a node. *)
