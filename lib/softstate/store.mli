(** Global soft-state: per-region coordinate maps stored on the overlay.

    For every high-order zone (a path prefix of the eCAN split tree) there
    is a {e map} holding one entry per member node of the region: the
    node's landmark vector, landmark number, and optional load statistics.
    The map for region [Z] is itself stored inside (a condensed fraction
    of) [Z]: each entry sits at the position [h(p, dp, dz, Z)] derived
    from the node's landmark number, and is held by the overlay node whose
    CAN zone contains that position.  Nodes that are physically close have
    close landmark numbers and therefore their entries land on the same or
    nearby hosts — so a single overlay lookup retrieves the right
    candidate set (Table 1 of the paper).

    Entries are {e soft state}: they carry an expiry time and vanish
    unless refreshed.  The clock is injected so the store can run under
    the discrete-event engine or under manual time in tests. *)

module Entry : sig
  type t = {
    node : int;  (** the described node *)
    vector : float array;  (** its landmark vector *)
    number : int;  (** its landmark number *)
    position : Geometry.Point.t;  (** where in the map's box it is stored *)
    mutable host : int;
        (** the overlay node holding this entry — the owner of [position],
            cached at publish time and refreshed by {!rehost} *)
    mutable expires : float;
    mutable load : float;  (** current load fraction, for QoS extensions *)
    mutable capacity : float;  (** forwarding capacity, for QoS extensions *)
  }
end

type t

val create :
  ?metrics:Engine.Metrics.t ->
  ?labels:Engine.Metrics.labels ->
  ?trace:Engine.Trace.t ->
  ?pool:Engine.Dpool.t ->
  ?shards:int ->
  ?condense:float ->
  ?base_fraction:float ->
  ?default_ttl:float ->
  ?clock:(unit -> float) ->
  scheme:Landmark.Number.scheme ->
  Can.Overlay.t ->
  t
(** [create ~scheme can] builds an empty store over a CAN overlay.

    [shards] (default 1) partitions the region maps by region-prefix key
    into independently-swept shards, each with its own TTL expiry heap;
    sharding never changes which entries exist, only how sweep work is
    scheduled (see {!sweep_shard}).

    [pool] (default {!Engine.Dpool.default}[ ()]) hosts the store's
    shard-parallel phases: sweep {e scans}, {!rehost} and the
    {!hosting_stats} counting pass fan out one read-only (or
    shard-disjoint) task per shard, while every mutation of shared state
    is applied on the calling domain in shard order.  The contract
    (DESIGN.md §12) guarantees results — including all metrics below —
    are byte-identical across pool sizes; shard [i]'s expiry heap is only
    ever touched from slot [i mod size] of the pool.

    [condense] (default 1.0) is the paper's map condense/reduction rate:
    the map of a region occupies the sub-box of the region with volume
    fraction [min (condense *. base_fraction) 1.0].  [base_fraction]
    (default 1/8) is the fraction at rate 1; raising [condense] above 1
    "enlarges the map" to spread entries over more hosts, lowering
    entries-per-node (Fig. 16).

    [default_ttl] (default 600,000 ms = 10 min) is the soft-state
    lifetime; [clock] defaults to a frozen clock at 0 (pass
    [fun () -> Sim.now sim] to run under the engine).

    With [metrics], the store maintains [store_publishes] /
    [store_refreshes] / [store_expired] / [store_sweep_visited] counters
    (plus any [labels]); [store_sweep_visited] counts expiry-heap records
    popped by sweeps — it scales with the number of expired entries (plus
    superseded stamps), not with the total entry population.  It also
    maintains [domain_batches] / [domain_tasks]: pool dispatches and
    tasks issued by the shard-parallel phases.  These count {e dispatch
    structure} (batches per call site, tasks per shard/chunk), which
    depends only on the data and the shard count — never on the pool
    size — so they stay byte-identical between single- and multi-domain
    runs and serve as regression gates on the parallel plumbing.  With
    [trace], every {!publish} emits a [Map_publish] span (node = map
    host, peer = described node, note = region path bits) and every
    sweep emits a [Ttl_sweep] span noting the purge count. *)

val can : t -> Can.Overlay.t
val scheme : t -> Landmark.Number.scheme
val condense : t -> float

val shard_count : t -> int
(** Number of expiry shards the store was created with. *)

val shard_of_region : t -> int array -> int
(** The shard that owns a region's map (region-prefix key mod
    {!shard_count}); stable for the store's lifetime. *)

val map_box : t -> int array -> Geometry.Zone.t
(** The (condensed) box of a region's map. *)

val publish : t -> region:int array -> node:int -> vector:float array -> unit
(** Insert or overwrite the entry describing [node] in a region's map,
    stamped with the default TTL.  Overwriting is a refresh-by-replacement:
    the replaced entry's load statistics ({!Entry.t.load} /
    {!Entry.t.capacity}) carry over to the new entry. *)

val publish_all : t -> span_bits:int -> node:int -> vector:float array -> unit
(** Publish [node] into every high-order zone enclosing its CAN zone
    (prefixes of its path in steps of [span_bits], including the root
    region) — at most [O(log n)] maps, as the paper notes. *)

val unpublish : t -> region:int array -> node:int -> unit
(** Proactive departure: drop the entry immediately. *)

val unpublish_everywhere : t -> int -> unit
(** Drop every entry describing a node, across all regions. *)

val refresh : t -> region:int array -> node:int -> unit
(** Re-stamp the entry's expiry at [now + default_ttl]; no-op if the
    entry is absent or already expired and swept. *)

val update_stats : t -> region:int array -> node:int -> load:float -> capacity:float -> unit
(** Update the load statistics piggybacked on an entry. *)

val find : t -> region:int array -> node:int -> Entry.t option
(** Direct (non-overlay) access to a live entry; expired entries are
    invisible. *)

val host_of : t -> region:int array -> vector:float array -> int
(** The overlay node a lookup with this vector lands on (owner of the
    hashed position in the map box). *)

val lookup_route : t -> from:int -> region:int array -> vector:float array -> int list option
(** The overlay route a lookup issued by [from] takes to reach the map
    host (greedy CAN routing to the hashed position) — the message cost
    of {!lookup}, for accounting. *)

val lookup :
  t ->
  region:int array ->
  vector:float array ->
  ?max_results:int ->
  ?ttl:int ->
  ?max_load:float ->
  unit ->
  Entry.t list
(** The paper's Table 1 procedure.  Route to the host designated by the
    querying node's landmark vector; collect its live entries for the
    region; if fewer than [max_results] (default 16) were found, widen the
    search to hosts up to [ttl] (default 2) CAN hops away inside the map
    box.  Results are sorted by landmark-space distance to [vector],
    closest first, truncated to [max_results].

    [max_load] consults the load statistics piggybacked on the entries
    ({!Entry.t.load}, kept fresh by {!update_stats}): entries whose load
    exceeds the bound are skipped entirely, so an overloaded node never
    enters the candidate set — the QoS/§6 hook the cache service's
    replica placement uses.  Omitted = no load filtering (the default
    lookup is unchanged). *)

val region_entries : t -> int array -> Entry.t list
(** All live entries of a region (ground truth / tests). *)

val regions_of : t -> int -> int array list
(** The regions in whose maps a node currently has a live entry. *)

val described_nodes : t -> int list
(** Every node currently described by at least one live entry, whether or
    not it is still an overlay member — the population a liveness-polling
    maintainer must check. *)

val entries_at_host : t -> int -> int
(** Number of live entries held by an overlay node across all maps
    (Fig. 16's "map entries / node"). *)

val avg_entries_per_node : t -> float
(** Mean of [entries_at_host] over current overlay members.  Invariant in
    the condense rate (the total entry count does not change); see
    {!hosting_stats} for the per-hosting-node distribution. *)

val hosting_stats : t -> Prelude.Stats.summary
(** Distribution of [entries_at_host] over the nodes that host at least
    one entry — Fig. 16's "map entries / node".  Condensing maps
    concentrates entries on fewer hosts (higher mean), enlarging them
    spreads entries thin. *)

val expire_sweep : t -> int
(** Purge expired entries; returns how many were dropped. *)

val sweep_expired : t -> (int array * Entry.t) list
(** Like {!expire_sweep} but returns the purged [(region, entry)] pairs,
    so a maintenance layer can turn TTL expiry into departure
    notifications for the region's subscribers.  Sweeps every shard; the
    cost is O(expired · log heap), independent of the live population, and
    the purge order is deterministic (ascending expiry within a shard,
    shards in index order).

    Runs as one pool batch of shard-count scan tasks: each shard's heap
    is popped and its due entries collected on the shard's home slot
    (reads only), then all purges are applied on the calling domain in
    shard order — reproducing the sequential purge order exactly. *)

val sweep_shard : t -> int -> (int array * Entry.t) list
(** Sweep a single shard (raises [Invalid_argument] out of range) — the
    unit of work a maintenance plane schedules independently per shard so
    no single sweep touches the whole store.  The scan runs on the
    shard's home pool slot, the purges apply on the calling domain. *)

val expire_node : t -> int -> int
(** Fault injection: age every live entry describing the node so it is
    expired as of now (invisible to lookups, purged by the next sweep).
    Returns how many entries were aged. *)

val inject_staleness : t -> rng:Prelude.Rng.t -> fraction:float -> int
(** Fault injection: age a random [fraction] of all live entries to
    expired-as-of-now.  Returns how many entries were aged. *)

val rehost : t -> unit
(** Recompute entry hosting after overlay membership changed (zones moved).
    Positions are stable; only the position->owner assignment is redone.
    Shard-parallel: task [i] rebuilds the host indexes of exactly the maps
    shard [i] owns, so no two tasks share a map and the result is
    independent of the pool size. *)

val check_invariants : t -> (unit, string) result
(** Entry positions lie in their map boxes; hosting matches CAN ownership;
    per-host index agrees with the maps. *)
