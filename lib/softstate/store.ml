module Zone = Geometry.Zone
module Can_overlay = Can.Overlay
module Number = Landmark.Number
module Landmarks = Landmark.Landmarks

module Entry = struct
  type t = {
    node : int;
    vector : float array;
    number : int;
    position : Geometry.Point.t;
    mutable expires : float;
    mutable load : float;
    mutable capacity : float;
  }
end

type region_map = {
  box : Zone.t;
  entries : (int, Entry.t) Hashtbl.t;  (* by described node *)
  by_host : (int, Entry.t list ref) Hashtbl.t;  (* overlay host -> entries *)
}

type obs = {
  publishes : Engine.Metrics.counter;
  refreshes : Engine.Metrics.counter;
  expired : Engine.Metrics.counter;
  tracer : Engine.Trace.t option;
}

type t = {
  can : Can_overlay.t;
  scheme : Number.scheme;
  condense : float;
  base_fraction : float;
  default_ttl : float;
  clock : unit -> float;
  maps : (int, region_map) Hashtbl.t;  (* region path key *)
  regions : (int, int array) Hashtbl.t;  (* region path key -> path bits *)
  obs : obs option;
}

(* Same encoding as Can.Overlay: sentinel bit + path bits. *)
let region_key bits =
  Array.fold_left (fun acc b -> (acc lsl 1) lor b) 1 bits

let region_name bits =
  if Array.length bits = 0 then "root"
  else String.concat "" (Array.to_list (Array.map string_of_int bits))

let create ?metrics ?(labels = []) ?trace ?(condense = 1.0) ?(base_fraction = 0.125)
    ?(default_ttl = 600_000.0) ?(clock = fun () -> 0.0) ~scheme can =
  if condense <= 0.0 then invalid_arg "Store.create: condense must be positive";
  if not (base_fraction > 0.0 && base_fraction <= 1.0) then
    invalid_arg "Store.create: base_fraction out of (0,1]";
  if default_ttl <= 0.0 then invalid_arg "Store.create: ttl must be positive";
  let obs =
    Option.map
      (fun m ->
        {
          publishes = Engine.Metrics.counter m ~labels "store_publishes";
          refreshes = Engine.Metrics.counter m ~labels "store_refreshes";
          expired = Engine.Metrics.counter m ~labels "store_expired";
          tracer = trace;
        })
      metrics
  in
  {
    can;
    scheme;
    condense;
    base_fraction;
    default_ttl;
    clock;
    maps = Hashtbl.create 256;
    regions = Hashtbl.create 256;
    obs;
  }

let can t = t.can
let scheme t = t.scheme
let condense t = t.condense

let map_fraction t = Float.min 1.0 (t.condense *. t.base_fraction)

let map_box t region =
  let zone = Can_overlay.zone_of_path ~dims:(Can_overlay.dims t.can) region in
  Zone.shrink zone (map_fraction t)

let map_for t region =
  let key = region_key region in
  match Hashtbl.find_opt t.maps key with
  | Some m -> m
  | None ->
    let m = { box = map_box t region; entries = Hashtbl.create 16; by_host = Hashtbl.create 16 } in
    Hashtbl.replace t.maps key m;
    Hashtbl.replace t.regions key (Array.copy region);
    m

let live t (e : Entry.t) = e.Entry.expires > t.clock ()

let host_add m host entry =
  match Hashtbl.find_opt m.by_host host with
  | Some l -> l := entry :: !l
  | None -> Hashtbl.replace m.by_host host (ref [ entry ])

let host_remove m host (entry : Entry.t) =
  match Hashtbl.find_opt m.by_host host with
  | Some l ->
    l := List.filter (fun (e : Entry.t) -> e.Entry.node <> entry.Entry.node) !l;
    if !l = [] then Hashtbl.remove m.by_host host
  | None -> ()

let remove_entry t m (entry : Entry.t) =
  Hashtbl.remove m.entries entry.Entry.node;
  host_remove m (Can_overlay.owner_of t.can entry.Entry.position) entry

let publish t ~region ~node ~vector =
  let m = map_for t region in
  (match Hashtbl.find_opt m.entries node with
  | Some old -> remove_entry t m old
  | None -> ());
  let position = Number.position_in_zone t.scheme m.box vector in
  let entry =
    {
      Entry.node;
      vector = Array.copy vector;
      number = Number.number t.scheme vector;
      position;
      expires = t.clock () +. t.default_ttl;
      load = 0.0;
      capacity = 1.0;
    }
  in
  Hashtbl.replace m.entries node entry;
  let host = Can_overlay.owner_of t.can position in
  host_add m host entry;
  match t.obs with
  | None -> ()
  | Some o ->
    Engine.Metrics.incr o.publishes;
    Option.iter
      (fun tr ->
        Engine.Trace.emit tr ~peer:node ~note:(region_name region) Engine.Trace.Map_publish
          ~node:host)
      o.tracer

let enclosing_regions ~span_bits path =
  let len = Array.length path in
  let rec go acc l = if l < 0 then acc else go (Array.sub path 0 l :: acc) (l - span_bits) in
  (* Regions at digit granularity, from the root down to the node's
     deepest complete high-order zone. *)
  go [] (len / span_bits * span_bits)

let publish_all t ~span_bits ~node ~vector =
  if span_bits < 1 then invalid_arg "Store.publish_all: span_bits must be >= 1";
  let path = (Can_overlay.node t.can node).Can_overlay.path in
  List.iter (fun region -> publish t ~region ~node ~vector) (enclosing_regions ~span_bits path)

let unpublish t ~region ~node =
  match Hashtbl.find_opt t.maps (region_key region) with
  | None -> ()
  | Some m ->
    (match Hashtbl.find_opt m.entries node with
    | Some e -> remove_entry t m e
    | None -> ())

let unpublish_everywhere t node =
  Hashtbl.iter
    (fun _ m ->
      match Hashtbl.find_opt m.entries node with
      | Some e -> remove_entry t m e
      | None -> ())
    t.maps

let with_live_entry t ~region ~node f =
  match Hashtbl.find_opt t.maps (region_key region) with
  | None -> ()
  | Some m ->
    (match Hashtbl.find_opt m.entries node with
    | Some e when live t e -> f e
    | Some _ | None -> ())

let refresh t ~region ~node =
  with_live_entry t ~region ~node (fun e ->
      e.Entry.expires <- t.clock () +. t.default_ttl;
      match t.obs with None -> () | Some o -> Engine.Metrics.incr o.refreshes)

let update_stats t ~region ~node ~load ~capacity =
  with_live_entry t ~region ~node (fun e ->
      e.Entry.load <- load;
      e.Entry.capacity <- capacity)

let find t ~region ~node =
  match Hashtbl.find_opt t.maps (region_key region) with
  | None -> None
  | Some m ->
    (match Hashtbl.find_opt m.entries node with
    | Some e when live t e -> Some e
    | Some _ | None -> None)

let host_of t ~region ~vector =
  let box = match Hashtbl.find_opt t.maps (region_key region) with
    | Some m -> m.box
    | None -> map_box t region
  in
  Can_overlay.owner_of t.can (Number.position_in_zone t.scheme box vector)

let lookup_route t ~from ~region ~vector =
  let box =
    match Hashtbl.find_opt t.maps (region_key region) with
    | Some m -> m.box
    | None -> map_box t region
  in
  Can_overlay.route t.can ~src:from (Number.position_in_zone t.scheme box vector)

let sort_by_vector_distance vector entries =
  let keyed =
    List.map (fun (e : Entry.t) -> (Landmarks.vector_dist vector e.Entry.vector, e.Entry.node, e)) entries
  in
  List.map (fun (_, _, e) -> e) (List.sort compare keyed)

let lookup t ~region ~vector ?(max_results = 16) ?(ttl = 2) () =
  match Hashtbl.find_opt t.maps (region_key region) with
  | None -> []
  | Some m ->
    let start = host_of t ~region ~vector in
    let collected = ref [] in
    let seen_hosts = Hashtbl.create 8 in
    let count = ref 0 in
    let visit host =
      if not (Hashtbl.mem seen_hosts host) then begin
        Hashtbl.replace seen_hosts host ();
        match Hashtbl.find_opt m.by_host host with
        | Some l ->
          List.iter
            (fun e ->
              if live t e then begin
                collected := e :: !collected;
                incr count
              end)
            !l
        | None -> ()
      end
    in
    visit start;
    (* Table 1's "define a TTL to search outside": widen ring by ring over
       CAN neighbors that still intersect the map box. *)
    let frontier = ref [ start ] in
    let hops = ref 0 in
    while !count < max_results && !hops < ttl && !frontier <> [] do
      incr hops;
      let next =
        List.concat_map
          (fun h ->
            List.filter
              (fun nid ->
                (not (Hashtbl.mem seen_hosts nid))
                && Zone.min_torus_dist m.box (Zone.center (Can_overlay.node t.can nid).Can_overlay.zone)
                   = 0.0)
              (Can_overlay.node t.can h).Can_overlay.neighbors)
          !frontier
      in
      let next = List.sort_uniq compare next in
      List.iter visit next;
      frontier := next
    done;
    let sorted = sort_by_vector_distance vector !collected in
    List.filteri (fun i _ -> i < max_results) sorted

let region_entries t region =
  match Hashtbl.find_opt t.maps (region_key region) with
  | None -> []
  | Some m -> Hashtbl.fold (fun _ e acc -> if live t e then e :: acc else acc) m.entries []

let regions_of t node =
  Hashtbl.fold
    (fun key m acc ->
      match Hashtbl.find_opt m.entries node with
      | Some e when live t e -> Hashtbl.find t.regions key :: acc
      | Some _ | None -> acc)
    t.maps []

let described_nodes t =
  let seen = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ m ->
      Hashtbl.iter (fun node e -> if live t e then Hashtbl.replace seen node ()) m.entries)
    t.maps;
  Hashtbl.fold (fun node () acc -> node :: acc) seen []

let entries_at_host t host =
  Hashtbl.fold
    (fun _ m acc ->
      match Hashtbl.find_opt m.by_host host with
      | Some l -> acc + List.length (List.filter (live t) !l)
      | None -> acc)
    t.maps 0

let avg_entries_per_node t =
  let ids = Can_overlay.node_ids t.can in
  if Array.length ids = 0 then 0.0
  else begin
    let total = Array.fold_left (fun acc id -> acc + entries_at_host t id) 0 ids in
    float_of_int total /. float_of_int (Array.length ids)
  end

let hosting_stats t =
  let counts =
    Array.to_list (Array.map (entries_at_host t) (Can_overlay.node_ids t.can))
    |> List.filter (fun c -> c > 0)
    |> List.map float_of_int
  in
  Prelude.Stats.summarize (Array.of_list counts)

let sweep_expired t =
  let dead = ref [] in
  Hashtbl.iter
    (fun key m ->
      Hashtbl.iter
        (fun _ e -> if not (live t e) then dead := (Hashtbl.find t.regions key, e, m) :: !dead)
        m.entries)
    t.maps;
  let purged =
    List.rev_map
      (fun (region, e, m) ->
        remove_entry t m e;
        (region, e))
      !dead
  in
  (match t.obs with
  | None -> ()
  | Some o ->
    Engine.Metrics.add o.expired (List.length purged);
    Option.iter
      (fun tr ->
        Engine.Trace.emit tr
          ~note:(string_of_int (List.length purged) ^ " purged")
          Engine.Trace.Ttl_sweep ~node:(-1))
      o.tracer);
  purged

let expire_sweep t = List.length (sweep_expired t)

let expire_node t node =
  let now = t.clock () in
  let aged = ref 0 in
  Hashtbl.iter
    (fun _ m ->
      match Hashtbl.find_opt m.entries node with
      | Some e when live t e ->
        e.Entry.expires <- now;
        incr aged
      | Some _ | None -> ())
    t.maps;
  !aged

let inject_staleness t ~rng ~fraction =
  if fraction < 0.0 || fraction > 1.0 then
    invalid_arg "Store.inject_staleness: fraction out of [0,1]";
  let now = t.clock () in
  let aged = ref 0 in
  Hashtbl.iter
    (fun _ m ->
      Hashtbl.iter
        (fun _ e ->
          if live t e && Prelude.Rng.chance rng fraction then begin
            e.Entry.expires <- now;
            incr aged
          end)
        m.entries)
    t.maps;
  !aged

let rehost t =
  Hashtbl.iter
    (fun _ m ->
      Hashtbl.reset m.by_host;
      Hashtbl.iter
        (fun _ e -> host_add m (Can_overlay.owner_of t.can e.Entry.position) e)
        m.entries)
    t.maps

let check_invariants t =
  let ( let* ) r f = Result.bind r f in
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  Hashtbl.fold
    (fun key m acc ->
      let* () = acc in
      let region = Hashtbl.find t.regions key in
      let* () =
        if Zone.equal m.box (map_box t region) then Ok ()
        else err "map box drifted for a region"
      in
      let* () =
        Hashtbl.fold
          (fun node e acc ->
            let* () = acc in
            if not (Zone.contains m.box e.Entry.position) then
              err "entry for node %d outside its map box" node
            else begin
              let host = Can_overlay.owner_of t.can e.Entry.position in
              match Hashtbl.find_opt m.by_host host with
              | Some l when List.exists (fun (x : Entry.t) -> x.Entry.node = node) !l -> Ok ()
              | _ -> err "entry for node %d not indexed under its host" node
            end)
          m.entries (Ok ())
      in
      (* no orphans in the host index *)
      Hashtbl.fold
        (fun _ l acc ->
          let* () = acc in
          List.fold_left
            (fun acc (e : Entry.t) ->
              let* () = acc in
              if Hashtbl.mem m.entries e.Entry.node then Ok ()
              else err "host index holds an orphan entry")
            (Ok ()) !l)
        m.by_host (Ok ()))
    t.maps (Ok ())
