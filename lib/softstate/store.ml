module Zone = Geometry.Zone
module Can_overlay = Can.Overlay
module Number = Landmark.Number
module Landmarks = Landmark.Landmarks
module Heap = Prelude.Heap

module Entry = struct
  type t = {
    node : int;
    vector : float array;
    number : int;
    position : Geometry.Point.t;
    mutable host : int;
    mutable expires : float;
    mutable load : float;
    mutable capacity : float;
  }
end

(* A host bucket: a compact growable array of entries with swap-remove.
   The seed kept [Entry.t list ref]s and rebuilt each list with
   [List.filter] on every retraction — O(bucket) allocation per
   unpublish.  Buckets have no observable order (every reader either
   counts, tests membership, or re-sorts by vector distance), so
   swap-remove is free to reorder.  A removed slot keeps its stale
   pointer until the next add overwrites it; retention is bounded by the
   bucket's high-water capacity. *)
module Bucket = struct
  type t = { mutable arr : Entry.t array; mutable len : int }

  let create () = { arr = [||]; len = 0 }

  let add b (e : Entry.t) =
    if b.len = Array.length b.arr then begin
      let narr = Array.make (max 4 (2 * b.len)) e in
      Array.blit b.arr 0 narr 0 b.len;
      b.arr <- narr
    end;
    b.arr.(b.len) <- e;
    b.len <- b.len + 1

  let remove_node b node =
    let i = ref 0 in
    while !i < b.len && b.arr.(!i).Entry.node <> node do
      incr i
    done;
    if !i < b.len then begin
      b.len <- b.len - 1;
      b.arr.(!i) <- b.arr.(b.len)
    end

  let iter f b =
    for i = 0 to b.len - 1 do
      f b.arr.(i)
    done

  let exists p b =
    let rec go i = i < b.len && (p b.arr.(i) || go (i + 1)) in
    go 0
end

type region_map = {
  box : Zone.t;
  shard : int;  (* owning shard index, fixed by the region key *)
  entries : (int, Entry.t) Hashtbl.t;  (* by described node *)
  by_host : (int, Bucket.t) Hashtbl.t;  (* overlay host -> entries *)
}

(* An expiry-heap record.  Records are never removed eagerly: a refresh,
   re-publish or retraction leaves the old record in the heap and it is
   recognised as stale when popped (the map no longer holds that exact
   entry, or the entry's current [expires] stamp moved past the record's
   priority). *)
type hrec = { hr_key : int; hr_entry : Entry.t }

type shard = { expiry : hrec Heap.t }

type obs = {
  publishes : Engine.Metrics.counter;
  refreshes : Engine.Metrics.counter;
  expired : Engine.Metrics.counter;
  sweep_visited : Engine.Metrics.counter;
  domain_batches : Engine.Metrics.counter;
  domain_tasks : Engine.Metrics.counter;
  tracer : Engine.Trace.t option;
}

type t = {
  can : Can_overlay.t;
  scheme : Number.scheme;
  condense : float;
  base_fraction : float;
  default_ttl : float;
  clock : unit -> float;
  maps : (int, region_map) Hashtbl.t;  (* region path key *)
  regions : (int, int array) Hashtbl.t;  (* region path key -> path bits *)
  shards : shard array;
  node_index : (int, (int, Entry.t) Hashtbl.t) Hashtbl.t;
      (* described node -> region key -> entry; reverse index so the
         per-node operations avoid scanning every map *)
  pool : Engine.Dpool.t;
      (* hosts shard-parallel phases (sweep scans, rehost, stats); shard
         i's heap is only ever touched from slot i of this pool *)
  obs : obs option;
}

(* Same encoding as Can.Overlay: sentinel bit + path bits. *)
let region_key bits =
  Array.fold_left (fun acc b -> (acc lsl 1) lor b) 1 bits

let region_name bits =
  if Array.length bits = 0 then "root"
  else String.concat "" (Array.to_list (Array.map string_of_int bits))

(* The key is the sentinel-prefixed region path, so taking it mod the
   shard count spreads regions by their prefix bits; sibling regions land
   on different shards and each shard's heap is swept independently. *)
let shard_of_key t key = key mod Array.length t.shards

let create ?metrics ?(labels = []) ?trace ?pool ?(shards = 1) ?(condense = 1.0)
    ?(base_fraction = 0.125) ?(default_ttl = 600_000.0) ?(clock = fun () -> 0.0) ~scheme can =
  if shards < 1 then invalid_arg "Store.create: shards must be >= 1";
  if condense <= 0.0 then invalid_arg "Store.create: condense must be positive";
  if not (base_fraction > 0.0 && base_fraction <= 1.0) then
    invalid_arg "Store.create: base_fraction out of (0,1]";
  if default_ttl <= 0.0 then invalid_arg "Store.create: ttl must be positive";
  let obs =
    Option.map
      (fun m ->
        {
          publishes = Engine.Metrics.counter m ~labels "store_publishes";
          refreshes = Engine.Metrics.counter m ~labels "store_refreshes";
          expired = Engine.Metrics.counter m ~labels "store_expired";
          sweep_visited = Engine.Metrics.counter m ~labels "store_sweep_visited";
          domain_batches = Engine.Metrics.counter m ~labels "domain_batches";
          domain_tasks = Engine.Metrics.counter m ~labels "domain_tasks";
          tracer = trace;
        })
      metrics
  in
  {
    can;
    scheme;
    condense;
    base_fraction;
    default_ttl;
    clock;
    maps = Hashtbl.create 256;
    regions = Hashtbl.create 256;
    shards = Array.init shards (fun _ -> { expiry = Heap.create ~capacity:256 () });
    node_index = Hashtbl.create 256;
    pool = (match pool with Some p -> p | None -> Engine.Dpool.default ());
    obs;
  }

(* Dispatch accounting: batch/task counts depend only on the call sites
   and shard count, never on the pool size, so they are byte-identical
   across single- and multi-domain runs. *)
let pool_run t n f =
  (match t.obs with
  | Some o ->
    Engine.Metrics.incr o.domain_batches;
    Engine.Metrics.add o.domain_tasks n
  | None -> ());
  Engine.Dpool.run t.pool n f

let pool_run_on t ~slot f =
  (match t.obs with
  | Some o ->
    Engine.Metrics.incr o.domain_batches;
    Engine.Metrics.add o.domain_tasks 1
  | None -> ());
  Engine.Dpool.run_on t.pool ~slot f

let can t = t.can
let scheme t = t.scheme
let condense t = t.condense
let shard_count t = Array.length t.shards
let shard_of_region t region = shard_of_key t (region_key region)

let map_fraction t = Float.min 1.0 (t.condense *. t.base_fraction)

let map_box t region =
  let zone = Can_overlay.zone_of_path ~dims:(Can_overlay.dims t.can) region in
  Zone.shrink zone (map_fraction t)

let map_for t region =
  let key = region_key region in
  match Hashtbl.find_opt t.maps key with
  | Some m -> m
  | None ->
    let m =
      {
        box = map_box t region;
        shard = shard_of_key t key;
        (* [entries]'s capacity is load-bearing: its iteration order feeds
           [inject_staleness]'s RNG stream and [region_entries].  [by_host]
           is never iterated in an observable order, so its capacity is a
           free hint (sized for a populated region's host set). *)
        entries = Hashtbl.create 16;
        by_host = Hashtbl.create 64;
      }
    in
    Hashtbl.replace t.maps key m;
    Hashtbl.replace t.regions key (Array.copy region);
    m

let live t (e : Entry.t) = e.Entry.expires > t.clock ()

let schedule_expiry t ~key m (e : Entry.t) =
  Heap.push t.shards.(m.shard).expiry e.Entry.expires { hr_key = key; hr_entry = e }

let host_add m host entry =
  match Hashtbl.find_opt m.by_host host with
  | Some b -> Bucket.add b entry
  | None ->
    let b = Bucket.create () in
    Bucket.add b entry;
    Hashtbl.replace m.by_host host b

(* Emptied buckets stay in the table: a host that cycles between zero and
   a few entries reuses its bucket's backing array instead of
   reallocating it on every refill. *)
let host_remove m host (entry : Entry.t) =
  match Hashtbl.find_opt m.by_host host with
  | Some b -> Bucket.remove_node b entry.Entry.node
  | None -> ()

let index_add t node ~key entry =
  match Hashtbl.find_opt t.node_index node with
  | Some inner -> Hashtbl.replace inner key entry
  | None ->
    let inner = Hashtbl.create 8 in
    Hashtbl.replace inner key entry;
    Hashtbl.replace t.node_index node inner

let index_remove t node ~key =
  match Hashtbl.find_opt t.node_index node with
  | Some inner ->
    Hashtbl.remove inner key;
    if Hashtbl.length inner = 0 then Hashtbl.remove t.node_index node
  | None -> ()

(* The owning host is cached on the entry, so a retraction never re-runs
   the overlay's point-location walk — and it removes from the exact
   bucket [host_add] used even if ownership drifted since publish
   ({!rehost} refreshes the cache when the overlay changes). *)
let remove_entry t ~key m (entry : Entry.t) =
  Hashtbl.remove m.entries entry.Entry.node;
  host_remove m entry.Entry.host entry;
  index_remove t entry.Entry.node ~key

let publish t ~region ~node ~vector =
  let key = region_key region in
  let m = map_for t region in
  (* A re-publish is a refresh-by-replacement: the piggybacked load
     statistics survive the new entry. *)
  let old_load, old_capacity =
    match Hashtbl.find_opt m.entries node with
    | Some old ->
      remove_entry t ~key m old;
      (old.Entry.load, old.Entry.capacity)
    | None -> (0.0, 1.0)
  in
  let position = Number.position_in_zone t.scheme m.box vector in
  let host = Can_overlay.owner_of t.can position in
  let entry =
    {
      Entry.node;
      vector = Array.copy vector;
      number = Number.number t.scheme vector;
      position;
      host;
      expires = t.clock () +. t.default_ttl;
      load = old_load;
      capacity = old_capacity;
    }
  in
  Hashtbl.replace m.entries node entry;
  host_add m host entry;
  index_add t node ~key entry;
  schedule_expiry t ~key m entry;
  match t.obs with
  | None -> ()
  | Some o ->
    Engine.Metrics.incr o.publishes;
    Option.iter
      (fun tr ->
        Engine.Trace.emit tr ~peer:node ~note:(region_name region) Engine.Trace.Map_publish
          ~node:host)
      o.tracer

let enclosing_regions ~span_bits path =
  let len = Array.length path in
  let rec go acc l = if l < 0 then acc else go (Array.sub path 0 l :: acc) (l - span_bits) in
  (* Regions at digit granularity, from the root down to the node's
     deepest complete high-order zone. *)
  go [] (len / span_bits * span_bits)

let publish_all t ~span_bits ~node ~vector =
  if span_bits < 1 then invalid_arg "Store.publish_all: span_bits must be >= 1";
  let path = (Can_overlay.node t.can node).Can_overlay.path in
  List.iter (fun region -> publish t ~region ~node ~vector) (enclosing_regions ~span_bits path)

let unpublish t ~region ~node =
  let key = region_key region in
  match Hashtbl.find_opt t.maps key with
  | None -> ()
  | Some m ->
    (match Hashtbl.find_opt m.entries node with
    | Some e -> remove_entry t ~key m e
    | None -> ())

let unpublish_everywhere t node =
  match Hashtbl.find_opt t.node_index node with
  | None -> ()
  | Some inner ->
    let keyed = Hashtbl.fold (fun key e acc -> (key, e) :: acc) inner [] in
    List.iter
      (fun (key, e) ->
        match Hashtbl.find_opt t.maps key with
        | Some m -> remove_entry t ~key m e
        | None -> ())
      keyed

let with_live_entry t ~region ~node f =
  match Hashtbl.find_opt t.maps (region_key region) with
  | None -> ()
  | Some m ->
    (match Hashtbl.find_opt m.entries node with
    | Some e when live t e -> f e
    | Some _ | None -> ())

let refresh t ~region ~node =
  with_live_entry t ~region ~node (fun e ->
      e.Entry.expires <- t.clock () +. t.default_ttl;
      (* Lazy heap discipline: push a record at the new stamp; the record
         from the previous stamp pops as stale. *)
      let key = region_key region in
      schedule_expiry t ~key (Hashtbl.find t.maps key) e;
      match t.obs with None -> () | Some o -> Engine.Metrics.incr o.refreshes)

let update_stats t ~region ~node ~load ~capacity =
  with_live_entry t ~region ~node (fun e ->
      e.Entry.load <- load;
      e.Entry.capacity <- capacity)

let find t ~region ~node =
  match Hashtbl.find_opt t.maps (region_key region) with
  | None -> None
  | Some m ->
    (match Hashtbl.find_opt m.entries node with
    | Some e when live t e -> Some e
    | Some _ | None -> None)

let host_of t ~region ~vector =
  let box = match Hashtbl.find_opt t.maps (region_key region) with
    | Some m -> m.box
    | None -> map_box t region
  in
  Can_overlay.owner_of t.can (Number.position_in_zone t.scheme box vector)

let lookup_route t ~from ~region ~vector =
  let box =
    match Hashtbl.find_opt t.maps (region_key region) with
    | Some m -> m.box
    | None -> map_box t region
  in
  Can_overlay.route t.can ~src:from (Number.position_in_zone t.scheme box vector)

let sort_by_vector_distance vector entries =
  let keyed =
    List.map (fun (e : Entry.t) -> (Landmarks.vector_dist vector e.Entry.vector, e.Entry.node, e)) entries
  in
  List.map (fun (_, _, e) -> e) (List.sort compare keyed)

let lookup t ~region ~vector ?(max_results = 16) ?(ttl = 2) ?max_load () =
  match Hashtbl.find_opt t.maps (region_key region) with
  | None -> []
  | Some m ->
    let start = host_of t ~region ~vector in
    let collected = ref [] in
    let seen_hosts = Hashtbl.create 32 in
    let count = ref 0 in
    (* QoS consultation: with [max_load], entries whose piggybacked load
       statistic exceeds the bound are invisible to this lookup — an
       overloaded node never enters the candidate set. *)
    let admissible (e : Entry.t) =
      match max_load with None -> true | Some bound -> e.Entry.load <= bound
    in
    let visit host =
      if not (Hashtbl.mem seen_hosts host) then begin
        Hashtbl.replace seen_hosts host ();
        match Hashtbl.find_opt m.by_host host with
        | Some b ->
          Bucket.iter
            (fun e ->
              if live t e && admissible e then begin
                collected := e :: !collected;
                incr count
              end)
            b
        | None -> ()
      end
    in
    visit start;
    (* Table 1's "define a TTL to search outside": widen ring by ring over
       CAN neighbors whose zones still intersect the map box. *)
    let frontier = ref [ start ] in
    let hops = ref 0 in
    while !count < max_results && !hops < ttl && !frontier <> [] do
      incr hops;
      let next =
        List.concat_map
          (fun h ->
            List.filter
              (fun nid ->
                (not (Hashtbl.mem seen_hosts nid))
                && Zone.intersects m.box (Can_overlay.node t.can nid).Can_overlay.zone)
              (Can_overlay.node t.can h).Can_overlay.neighbors)
          !frontier
      in
      let next = List.sort_uniq compare next in
      List.iter visit next;
      frontier := next
    done;
    let sorted = sort_by_vector_distance vector !collected in
    List.filteri (fun i _ -> i < max_results) sorted

let region_entries t region =
  match Hashtbl.find_opt t.maps (region_key region) with
  | None -> []
  | Some m -> Hashtbl.fold (fun _ e acc -> if live t e then e :: acc else acc) m.entries []

let regions_of t node =
  match Hashtbl.find_opt t.node_index node with
  | None -> []
  | Some inner ->
    Hashtbl.fold
      (fun key e acc -> if live t e then Hashtbl.find t.regions key :: acc else acc)
      inner []

let described_nodes t =
  Hashtbl.fold
    (fun node inner acc ->
      if Hashtbl.fold (fun _ e any -> any || live t e) inner false then node :: acc else acc)
    t.node_index []

let entries_at_host t host =
  Hashtbl.fold
    (fun _ m acc ->
      match Hashtbl.find_opt m.by_host host with
      | Some b ->
        let c = ref 0 in
        Bucket.iter (fun e -> if live t e then incr c) b;
        acc + !c
      | None -> acc)
    t.maps 0

(* Per-host entry counts for every overlay node, computed in shard-count
   many read-only chunks (the chunk count is tied to the shard count, not
   the pool size, so dispatch accounting stays pool-size-invariant).
   Task j counts the j-th contiguous slice of the node-id array; the
   slices concatenate back in node order, identical to a sequential
   map. *)
let host_counts t =
  let ids = Can_overlay.node_ids t.can in
  let n = Array.length ids in
  if n = 0 then [||]
  else begin
    let chunks = min n (Array.length t.shards) in
    let per = (n + chunks - 1) / chunks in
    let slices =
      pool_run t chunks (fun j ->
          let lo = j * per in
          let hi = min n (lo + per) in
          Array.init (max 0 (hi - lo)) (fun k -> entries_at_host t ids.(lo + k)))
    in
    Array.concat (Array.to_list slices)
  end

let avg_entries_per_node t =
  let counts = host_counts t in
  if Array.length counts = 0 then 0.0
  else begin
    let total = Array.fold_left ( + ) 0 counts in
    float_of_int total /. float_of_int (Array.length counts)
  end

let hosting_stats t =
  let counts =
    Array.to_list (host_counts t)
    |> List.filter (fun c -> c > 0)
    |> List.map float_of_int
  in
  Prelude.Stats.summarize (Array.of_list counts)

(* Sweeping is split into a {e scan} phase that may run on the shard's
   home domain and an {e apply} phase that always runs on the
   coordinator (DESIGN.md §12).

   Scan pops the shard's heap while the minimum stamp is due.  Each
   popped record is checked against the current map contents: only a
   record whose entry is still exactly the one in the map, and whose
   current stamp is due, is a purge candidate; everything else is a stale
   record from a superseded stamp.  The scan mutates nothing but the
   shard-private heap — map reads are concurrent-safe because nothing
   writes the maps while a scan batch is in flight — so scanning shards
   in parallel observes exactly the state a sequential sweep would.
   [claimed] replays the sequential semantics for duplicate due records
   of one entry (stamp moved, both stamps due): only the first purges.
   Cost: O((expired + stale) * log heap) — independent of the number of
   live entries. *)
let scan_shard_due t i now =
  let heap = t.shards.(i).expiry in
  let visited = ref 0 in
  let claimed = Hashtbl.create 64 in
  let due = ref [] in
  let rec loop () =
    match Heap.peek heap with
    | Some (prio, _) when prio <= now ->
      (match Heap.pop heap with
      | Some (_, r) ->
        incr visited;
        (match Hashtbl.find_opt t.maps r.hr_key with
        | Some m ->
          (match Hashtbl.find_opt m.entries r.hr_entry.Entry.node with
          | Some cur
            when cur == r.hr_entry && cur.Entry.expires <= now
                 && not (Hashtbl.mem claimed (r.hr_key, cur.Entry.node)) ->
            Hashtbl.replace claimed (r.hr_key, cur.Entry.node) ();
            due := (r.hr_key, cur) :: !due
          | Some _ | None -> ())
        | None -> ());
        loop ()
      | None -> ())
    | Some _ | None -> ()
  in
  loop ();
  (List.rev !due, !visited)

(* Apply a scan's purge candidates in scan order, on the coordinator —
   the deterministic merge point for cross-shard effects. *)
let apply_purges t due =
  List.map
    (fun (key, (cur : Entry.t)) ->
      let m = Hashtbl.find t.maps key in
      remove_entry t ~key m cur;
      (Hashtbl.find t.regions key, cur))
    due

let sweep_shard_raw t i now =
  (* Single-shard sweep: the scan still runs on the shard's home domain
     (slot i of the pool), the apply runs here. *)
  let due, visited = pool_run_on t ~slot:i (fun () -> scan_shard_due t i now) in
  (apply_purges t due, visited)

let observe_sweep t ~visited ~purged =
  match t.obs with
  | None -> ()
  | Some o ->
    Engine.Metrics.add o.sweep_visited visited;
    Engine.Metrics.add o.expired (List.length purged);
    Option.iter
      (fun tr ->
        Printf.bprintf (Engine.Trace.note_buffer tr) "%d purged" (List.length purged);
        Engine.Trace.emit_noted tr Engine.Trace.Ttl_sweep ~node:(-1))
      o.tracer

let sweep_shard t i =
  if i < 0 || i >= Array.length t.shards then invalid_arg "Store.sweep_shard: shard out of range";
  let purged, visited = sweep_shard_raw t i (t.clock ()) in
  observe_sweep t ~visited ~purged;
  purged

let sweep_expired t =
  let now = t.clock () in
  (* One batch: shard i's scan is task i (stable placement keeps each heap
     on its home slot), then the purges apply sequentially in shard order —
     the same order the sequential per-shard loop used. *)
  let scans = pool_run t (Array.length t.shards) (fun i -> scan_shard_due t i now) in
  let visited = Array.fold_left (fun acc (_, v) -> acc + v) 0 scans in
  let purged = List.concat_map (fun (due, _) -> apply_purges t due) (Array.to_list scans) in
  observe_sweep t ~visited ~purged;
  purged

let expire_sweep t = List.length (sweep_expired t)

let expire_node t node =
  let now = t.clock () in
  let aged = ref 0 in
  match Hashtbl.find_opt t.node_index node with
  | None -> 0
  | Some inner ->
    Hashtbl.iter
      (fun key e ->
        if live t e then begin
          e.Entry.expires <- now;
          (* re-stamp in the heap so the next sweep visits it *)
          schedule_expiry t ~key (Hashtbl.find t.maps key) e;
          incr aged
        end)
      inner;
    !aged

let inject_staleness t ~rng ~fraction =
  if fraction < 0.0 || fraction > 1.0 then
    invalid_arg "Store.inject_staleness: fraction out of [0,1]";
  let now = t.clock () in
  let aged = ref 0 in
  Hashtbl.iter
    (fun key m ->
      Hashtbl.iter
        (fun _ e ->
          if live t e && Prelude.Rng.chance rng fraction then begin
            e.Entry.expires <- now;
            schedule_expiry t ~key m e;
            incr aged
          end)
        m.entries)
    t.maps;
  !aged

let rehost t =
  (* Embarrassingly parallel by shard: task i rebuilds the host index of
     exactly the maps shard i owns, so no two tasks ever touch the same
     map.  [owner_of] is a pure read of the overlay, and the per-map work
     is independent of iteration order, so the rebuilt indexes are
     identical to the sequential pass regardless of pool size. *)
  ignore
    (pool_run t (Array.length t.shards) (fun i ->
         Hashtbl.iter
           (fun _ m ->
             if m.shard = i then begin
               Hashtbl.reset m.by_host;
               Hashtbl.iter
                 (fun _ (e : Entry.t) ->
                   e.Entry.host <- Can_overlay.owner_of t.can e.Entry.position;
                   host_add m e.Entry.host e)
                 m.entries
             end)
           t.maps))

let check_invariants t =
  let ( let* ) r f = Result.bind r f in
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let* () =
    Hashtbl.fold
      (fun key m acc ->
        let* () = acc in
        let region = Hashtbl.find t.regions key in
        let* () =
          if Zone.equal m.box (map_box t region) then Ok ()
          else err "map box drifted for a region"
        in
        let* () =
          if m.shard = shard_of_key t key then Ok ()
          else err "region assigned to the wrong shard"
        in
        let* () =
          Hashtbl.fold
            (fun node e acc ->
              let* () = acc in
              if not (Zone.contains m.box e.Entry.position) then
                err "entry for node %d outside its map box" node
              else begin
                let host = Can_overlay.owner_of t.can e.Entry.position in
                let* () =
                  match Hashtbl.find_opt m.by_host host with
                  | Some b when Bucket.exists (fun (x : Entry.t) -> x.Entry.node = node) b ->
                    Ok ()
                  | _ -> err "entry for node %d not indexed under its host" node
                in
                (* reverse index agrees with the map *)
                match Hashtbl.find_opt t.node_index node with
                | Some inner ->
                  (match Hashtbl.find_opt inner key with
                  | Some e' when e' == e -> Ok ()
                  | Some _ | None -> err "entry for node %d missing from the node index" node)
                | None -> err "entry for node %d missing from the node index" node
              end)
            m.entries (Ok ())
        in
        (* no orphans in the host index *)
        Hashtbl.fold
          (fun _ (b : Bucket.t) acc ->
            let* () = acc in
            let rec go i =
              if i >= b.Bucket.len then Ok ()
              else if Hashtbl.mem m.entries b.Bucket.arr.(i).Entry.node then go (i + 1)
              else err "host index holds an orphan entry"
            in
            go 0)
          m.by_host (Ok ()))
      t.maps (Ok ())
  in
  (* no orphans in the reverse index *)
  let* () =
    Hashtbl.fold
      (fun node inner acc ->
        let* () = acc in
        Hashtbl.fold
          (fun key e acc ->
            let* () = acc in
            match Hashtbl.find_opt t.maps key with
            | Some m ->
              (match Hashtbl.find_opt m.entries node with
              | Some e' when e' == e -> Ok ()
              | Some _ | None -> err "node index holds an orphan entry for node %d" node)
            | None -> err "node index holds an orphan entry for node %d" node)
          inner (Ok ()))
      t.node_index (Ok ())
  in
  (* every current entry is covered by a heap record at its current stamp,
     in the shard that owns its region (stale records are fine; a missing
     fresh record would make the entry immortal to sweeps) *)
  let covered = Hashtbl.create 256 in
  Array.iteri
    (fun si shard ->
      Heap.iter
        (fun prio r ->
          match Hashtbl.find_opt t.maps r.hr_key with
          | Some m when m.shard = si ->
            (match Hashtbl.find_opt m.entries r.hr_entry.Entry.node with
            | Some cur when cur == r.hr_entry && prio = cur.Entry.expires ->
              Hashtbl.replace covered (r.hr_key, cur.Entry.node) ()
            | Some _ | None -> ())
          | Some _ | None -> ())
        shard.expiry)
    t.shards;
  Hashtbl.fold
    (fun key m acc ->
      let* () = acc in
      Hashtbl.fold
        (fun node _ acc ->
          let* () = acc in
          if Hashtbl.mem covered (key, node) then Ok ()
          else err "entry for node %d has no live expiry-heap record" node)
        m.entries (Ok ()))
    t.maps (Ok ())
