module Store = Softstate.Store
module Sim = Engine.Sim
module Landmarks = Landmark.Landmarks

type event =
  | Entry_published of { region : int array; entry_node : int }
  | Entry_departed of { region : int array; entry_node : int }
  | Load_changed of { region : int array; entry_node : int; load : float }

type condition =
  | Any_new_entry
  | Closer_than of float array * float
  | Load_above of { watched : int; threshold : float }
  | Departure_of of int

type notification = { subscriber : int; event : event; delivered_at : float }

type subscription = {
  id : int;
  subscriber : int;
  region : int array;
  condition : condition;
  handler : notification -> unit;
  mutable active : bool;
}

(* One notification waiting inside a digest: the event, the matched
   subscription, and the channel-assigned delivery delay it would have had
   on its own (kept for the trace). *)
type item = { it_event : event; it_sub : subscription; it_delay : float }

type batch = { mutable items : item list (* newest first *) }

type obs = {
  n_sent : Engine.Metrics.counter;
  n_delivered : Engine.Metrics.counter;
  n_dropped : Engine.Metrics.counter;
  n_batched : Engine.Metrics.counter;
  digest_size : Engine.Metrics.histogram;
  tracer : Engine.Trace.t option;
}

type t = {
  store : Store.t;
  sim : Sim.t option;
  latency : host:int -> subscriber:int -> float;
  channel : float -> float option;
  mutable digest_window : float;
  subs : (int, subscription list ref) Hashtbl.t;  (* region key -> subscriptions *)
  pending : (int * int, batch) Hashtbl.t;  (* (subscriber, region key) -> open digest *)
  mutable next_id : int;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable batched : int;
  obs : obs option;
}

let region_key bits = Array.fold_left (fun acc b -> (acc lsl 1) lor b) 1 bits

(* Same naming as Softstate.Store's Map_publish spans, so trace analyses
   ([Engine.Repair]) can join notifications against publishes by region.
   The note a notification's Notify span carries is
   "<tag>:<entry>@<region>" — enough to correlate the span back to the
   subject entry.  Built in the tracer's reused scratch buffer: one
   Notify span per delivery makes this a hot formatting path under storm
   workloads. *)
let add_region_label buf bits =
  if Array.length bits = 0 then Buffer.add_string buf "root"
  else Array.iter (fun b -> Buffer.add_string buf (string_of_int b)) bits

let add_event_note buf = function
  | Entry_published { region; entry_node } ->
    Printf.bprintf buf "pub:%d@" entry_node;
    add_region_label buf region
  | Entry_departed { region; entry_node } ->
    Printf.bprintf buf "dep:%d@" entry_node;
    add_region_label buf region
  | Load_changed { region; entry_node; _ } ->
    Printf.bprintf buf "load:%d@" entry_node;
    add_region_label buf region

let create ?metrics ?(labels = []) ?trace ?sim ?(latency = fun ~host:_ ~subscriber:_ -> 0.0)
    ?(channel = fun delay -> Some delay) ?(digest_window = 0.0) store =
  if digest_window < 0.0 then invalid_arg "Bus.create: digest_window must be >= 0";
  let obs =
    Option.map
      (fun m ->
        {
          n_sent = Engine.Metrics.counter m ~labels "notify_sent";
          n_delivered = Engine.Metrics.counter m ~labels "notify_delivered";
          n_dropped = Engine.Metrics.counter m ~labels "notify_dropped";
          n_batched = Engine.Metrics.counter m ~labels "notify_batched";
          digest_size = Engine.Metrics.histogram m ~labels "notify_digest_size";
          tracer = trace;
        })
      metrics
  in
  {
    store;
    sim;
    latency;
    channel;
    digest_window;
    subs = Hashtbl.create 64;
    pending = Hashtbl.create 64;
    next_id = 0;
    sent = 0;
    delivered = 0;
    dropped = 0;
    batched = 0;
    obs;
  }

let sent_count t = t.sent
let delivered_count t = t.delivered
let dropped_count t = t.dropped
let batched_count t = t.batched
let digest_window t = t.digest_window

(* Open digests keep the delivery schedule they were created with; only
   digests opened after the change see the new window — so a mid-run
   re-tune (Maintenance's ?adapt) never reorders already-scheduled
   deliveries. *)
let set_digest_window t w =
  if w < 0.0 then invalid_arg "Bus.set_digest_window: window must be >= 0";
  t.digest_window <- w

let store t = t.store

let subscribe t ~subscriber ~region ~condition ~handler =
  let sub =
    {
      id = t.next_id;
      subscriber;
      region = Array.copy region;
      condition;
      handler;
      active = true;
    }
  in
  t.next_id <- t.next_id + 1;
  let key = region_key region in
  (match Hashtbl.find_opt t.subs key with
  | Some l -> l := sub :: !l
  | None -> Hashtbl.replace t.subs key (ref [ sub ]));
  sub

let unsubscribe t sub =
  sub.active <- false;
  let key = region_key sub.region in
  match Hashtbl.find_opt t.subs key with
  | Some l ->
    l := List.filter (fun s -> s.id <> sub.id) !l;
    if !l = [] then Hashtbl.remove t.subs key
  | None -> ()

let subscription_count t ~region =
  match Hashtbl.find_opt t.subs (region_key region) with
  | Some l -> List.length (List.filter (fun s -> s.active) !l)
  | None -> 0

let matches sub ~vector event =
  match (sub.condition, event) with
  | Any_new_entry, Entry_published _ -> true
  | Closer_than (mine, d), Entry_published _ ->
    (match vector with
    | Some v -> Landmarks.vector_dist mine v <= d
    | None -> false)
  | Load_above { watched; threshold }, Load_changed { entry_node; load; _ } ->
    watched = entry_node && load > threshold
  | Departure_of watched, Entry_departed { entry_node; _ } -> watched = entry_node
  | (Any_new_entry | Closer_than _ | Load_above _ | Departure_of _), _ -> false

(* The seed delivery path: one scheduled engine event per notification.
   Used whenever the digest window is zero (the default) or there is no
   simulation to batch within. *)
let deliver_immediate t sub ~host event =
  let fire at =
    if sub.active then begin
      t.delivered <- t.delivered + 1;
      (match t.obs with None -> () | Some o -> Engine.Metrics.incr o.n_delivered);
      sub.handler { subscriber = sub.subscriber; event; delivered_at = at }
    end
  in
  t.sent <- t.sent + 1;
  (match t.obs with None -> () | Some o -> Engine.Metrics.incr o.n_sent);
  let base = Float.max 0.0 (t.latency ~host ~subscriber:sub.subscriber) in
  match t.channel base with
  | None ->
    t.dropped <- t.dropped + 1;
    (match t.obs with None -> () | Some o -> Engine.Metrics.incr o.n_dropped)
  | Some total ->
    let total = Float.max 0.0 total in
    (match t.obs with
    | Some { tracer = Some tr; _ } ->
      add_event_note (Engine.Trace.note_buffer tr) event;
      Engine.Trace.emit_noted tr ~dur:total ~peer:sub.subscriber Engine.Trace.Notify ~node:host
    | Some { tracer = None; _ } | None -> ());
    (match t.sim with
    | None -> fire 0.0
    | Some sim -> ignore (Sim.schedule sim ~delay:total (fun () -> fire (Sim.now sim))))

let flush_digest t sim ~subscriber ~key =
  match Hashtbl.find_opt t.pending (subscriber, key) with
  | None -> ()
  | Some batch ->
    Hashtbl.remove t.pending (subscriber, key);
    let items = List.rev batch.items in
    t.batched <- t.batched + 1;
    (match t.obs with
    | None -> ()
    | Some o ->
      Engine.Metrics.incr o.n_batched;
      Engine.Metrics.observe o.digest_size (float_of_int (List.length items)));
    let now = Sim.now sim in
    List.iter
      (fun it ->
        if it.it_sub.active then begin
          t.delivered <- t.delivered + 1;
          (match t.obs with None -> () | Some o -> Engine.Metrics.incr o.n_delivered);
          it.it_sub.handler { subscriber; event = it.it_event; delivered_at = now }
        end)
      items

(* Digest path: coalesce every notification for the same (subscriber,
   region) that arrives within [digest_window] virtual milliseconds into
   ONE scheduled engine event.  The channel is still consulted per
   notification (so loss statistics are unchanged); the digest travels as
   a single message whose delivery delay is the opening notification's
   channel delay plus the window. *)
let deliver_digest t sim sub ~host event =
  t.sent <- t.sent + 1;
  (match t.obs with None -> () | Some o -> Engine.Metrics.incr o.n_sent);
  let base = Float.max 0.0 (t.latency ~host ~subscriber:sub.subscriber) in
  match t.channel base with
  | None ->
    t.dropped <- t.dropped + 1;
    (match t.obs with None -> () | Some o -> Engine.Metrics.incr o.n_dropped)
  | Some total ->
    let total = Float.max 0.0 total in
    let key = region_key sub.region in
    let bkey = (sub.subscriber, key) in
    (match Hashtbl.find_opt t.pending bkey with
    | Some batch -> batch.items <- { it_event = event; it_sub = sub; it_delay = total } :: batch.items
    | None ->
      Hashtbl.replace t.pending bkey
        { items = [ { it_event = event; it_sub = sub; it_delay = total } ] };
      let delay = total +. t.digest_window in
      (match t.obs with
      | Some { tracer = Some tr; _ } ->
        add_event_note (Engine.Trace.note_buffer tr) event;
        Engine.Trace.emit_noted tr ~dur:delay ~peer:sub.subscriber Engine.Trace.Notify ~node:host
      | Some { tracer = None; _ } | None -> ());
      ignore
        (Sim.schedule sim ~delay (fun () -> flush_digest t sim ~subscriber:sub.subscriber ~key)))

let deliver t sub ~host event =
  match t.sim with
  | Some sim when t.digest_window > 0.0 -> deliver_digest t sim sub ~host event
  | Some _ | None -> deliver_immediate t sub ~host event

let notify t ~region ~vector ~host event =
  match Hashtbl.find_opt t.subs (region_key region) with
  | None -> ()
  | Some l ->
    List.iter
      (fun sub -> if sub.active && matches sub ~vector event then deliver t sub ~host event)
      !l

let host_for t ~region ~vector =
  if Can.Overlay.size (Store.can t.store) = 0 then -1
  else Store.host_of t.store ~region ~vector

let publish t ~region ~node ~vector =
  let fresh = Store.find t.store ~region ~node = None in
  Store.publish t.store ~region ~node ~vector;
  if fresh then begin
    let host = host_for t ~region ~vector in
    notify t ~region ~vector:(Some vector) ~host (Entry_published { region; entry_node = node })
  end

let publish_all t ~span_bits ~node ~vector =
  let path = (Can.Overlay.node (Store.can t.store) node).Can.Overlay.path in
  let len = Array.length path / span_bits * span_bits in
  let rec go l =
    if l >= 0 then begin
      publish t ~region:(Array.sub path 0 l) ~node ~vector;
      go (l - span_bits)
    end
  in
  go len

let update_load t ~region ~node ~load ~capacity =
  match Store.find t.store ~region ~node with
  | None -> ()
  | Some e ->
    Store.update_stats t.store ~region ~node ~load ~capacity;
    let host = host_for t ~region ~vector:e.Store.Entry.vector in
    notify t ~region ~vector:None ~host (Load_changed { region; entry_node = node; load })

let notify_departures t dead =
  List.iter
    (fun (region, (e : Store.Entry.t)) ->
      let host = host_for t ~region ~vector:e.Store.Entry.vector in
      notify t ~region ~vector:(Some e.Store.Entry.vector) ~host
        (Entry_departed { region; entry_node = e.Store.Entry.node }))
    dead

let expire_sweep t =
  let dead = Store.sweep_expired t.store in
  notify_departures t dead;
  List.length dead

let expire_sweep_shard t i =
  let dead = Store.sweep_shard t.store i in
  notify_departures t dead;
  List.length dead

let depart t ~node =
  let regions = Store.regions_of t.store node in
  List.iter
    (fun region ->
      let vector =
        match Store.find t.store ~region ~node with
        | Some e -> Some e.Store.Entry.vector
        | None -> None
      in
      Store.unpublish t.store ~region ~node;
      let host =
        match vector with Some v -> host_for t ~region ~vector:v | None -> -1
      in
      notify t ~region ~vector ~host (Entry_departed { region; entry_node = node }))
    regions
