(** Publish/subscribe over the global soft-state (paper §5.2).

    Nodes subscribe to the map regions backing their routing-table entries
    and state the condition under which they want to be told — "a node
    joined the zone", "a node closer to me appeared", "my neighbor's load
    crossed a threshold", "my neighbor departed".  Store mutations routed
    through the bus evaluate the region's subscriptions and deliver
    matching notifications, after a delivery latency, through the
    discrete-event engine (notifications ride the overlay in the paper;
    the latency function models that dissemination cost). *)

type event =
  | Entry_published of { region : int array; entry_node : int }
  | Entry_departed of { region : int array; entry_node : int }
  | Load_changed of { region : int array; entry_node : int; load : float }

type condition =
  | Any_new_entry
      (** fire on every publish of a {e new} node in the region (refreshes
          of an existing entry do not fire) *)
  | Closer_than of float array * float
      (** [Closer_than (my_vector, d)]: a new entry whose landmark vector
          is within [d] of mine — the demand-driven trigger for neighbor
          re-selection *)
  | Load_above of { watched : int; threshold : float }
      (** the watched node reports load above the threshold (QoS, §6) *)
  | Departure_of of int  (** the watched node leaves the region *)

type notification = { subscriber : int; event : event; delivered_at : float }

type subscription

type t

val create :
  ?metrics:Engine.Metrics.t ->
  ?labels:Engine.Metrics.labels ->
  ?trace:Engine.Trace.t ->
  ?sim:Engine.Sim.t ->
  ?latency:(host:int -> subscriber:int -> float) ->
  ?channel:(float -> float option) ->
  ?digest_window:float ->
  Softstate.Store.t ->
  t
(** Wrap a store.  Without [sim], notifications are delivered
    synchronously at time 0; with it, they are scheduled [latency]
    milliseconds ahead (default latency 0).

    [channel] models the delivery medium: it receives the base delay and
    returns the total delay, or [None] to drop the notification outright
    (fault injection — see {!Engine.Faults.perturb}).  Default: deliver
    with the base delay.

    [digest_window] (default 0, must be >= 0) batches notification
    delivery: with a positive window and a [sim], every notification for
    the same (subscriber, region) arriving within the window is coalesced
    into a single scheduled engine event — a {e digest} — delivered
    [opening notification's channel delay + window] after the digest
    opens, with the digest's items handed to their handlers in arrival
    order.  The channel is still consulted per notification, so drop
    statistics are unchanged; a dropped notification simply never enters
    a digest.  At window 0 (or without a [sim]) the bus behaves exactly
    like the un-batched path: one scheduled event per notification, same
    delivery multiset and order.

    With [metrics], the bus maintains [notify_sent] / [notify_delivered]
    / [notify_dropped] counters (plus any [labels]) mirroring
    {!sent_count} / {!delivered_count} / {!dropped_count}, a
    [notify_batched] counter (digests flushed, = scheduled delivery
    events on the digest path) and a [notify_digest_size] histogram
    (notifications per digest).  With [trace], every notification (or
    digest) that survives the channel emits a [Notify] span (node = map
    host, peer = subscriber, dur = delivery delay) whose note names the
    subject entry as ["<tag>:<entry>@<region>"] with [tag] one of
    [pub]/[dep]/[load] — the convention {!Engine.Repair} keys on to
    correlate repair traffic with injected faults (a digest's span
    carries its opening notification's note). *)

val store : t -> Softstate.Store.t

val sent_count : t -> int
(** Notifications handed to the channel so far (delivered + in flight +
    dropped) — the maintenance traffic a churn experiment accounts. *)

val delivered_count : t -> int
(** Notifications actually delivered to live subscriptions. *)

val dropped_count : t -> int
(** Notifications the channel decided to drop. *)

val batched_count : t -> int
(** Digests flushed so far — the number of scheduled delivery events the
    digest path used where the un-batched path would have scheduled one
    per notification.  Always 0 at digest window 0. *)

val digest_window : t -> float
(** The virtual-time coalescing window currently in force. *)

val set_digest_window : t -> float -> unit
(** Change the coalescing window (must be >= 0; 0 reverts to per-
    notification delivery).  Takes effect for digests {e opened} after
    the call — digests already open flush at their original schedule, so
    a mid-run re-tune (the adaptive maintenance controller) never
    reorders deliveries that were already scheduled. *)

val subscribe :
  t ->
  subscriber:int ->
  region:int array ->
  condition:condition ->
  handler:(notification -> unit) ->
  subscription

val unsubscribe : t -> subscription -> unit

val subscription_count : t -> region:int array -> int
(** Active subscriptions on a region. *)

val publish : t -> region:int array -> node:int -> vector:float array -> unit
(** {!Softstate.Store.publish} + condition evaluation. *)

val publish_all : t -> span_bits:int -> node:int -> vector:float array -> unit

val update_load : t -> region:int array -> node:int -> load:float -> capacity:float -> unit

val depart : t -> node:int -> unit
(** Proactive departure: unpublish the node from every region and notify
    the matching subscribers of each. *)

val expire_sweep : t -> int
(** TTL sweep through the bus: purge expired entries
    ({!Softstate.Store.sweep_expired}) and notify each region's
    [Departure_of] watchers — how crashed nodes whose state was never
    retracted are eventually noticed.  Returns the purge count. *)

val expire_sweep_shard : t -> int -> int
(** Like {!expire_sweep} but sweeps a single store shard
    ({!Softstate.Store.sweep_shard}) — the per-shard unit of maintenance
    work, so independently-scheduled shard sweeps still turn expiry into
    departure notifications. *)
