(* Domain-parallel hosting (DESIGN.md §12): the Dpool primitive's
   ordering guarantees, the Sim (time, seq) merge order that anchors the
   determinism contract, and byte-identity of store / probe / whole
   experiments across pool sizes. *)

module Dpool = Engine.Dpool
module Sim = Engine.Sim
module Metrics = Engine.Metrics
module Probe = Engine.Probe
module Faults = Engine.Faults
module Store = Softstate.Store
module Can_overlay = Can.Overlay
module Number = Landmark.Number
module Point = Geometry.Point
module Rng = Prelude.Rng
module Json = Prelude.Json

(* ---- Dpool primitive ---- *)

let test_run_task_order () =
  let pool = Dpool.get ~domains:3 in
  let out = Dpool.run pool 20 (fun i -> i * i) in
  Alcotest.(check (array int)) "results in task order"
    (Array.init 20 (fun i -> i * i))
    out;
  Alcotest.(check (array int)) "empty batch" [||] (Dpool.run pool 0 (fun i -> i))

let test_run_exception_lowest_index () =
  let pool = Dpool.get ~domains:3 in
  let boom i = if i = 7 || i = 11 then failwith (string_of_int i) else i in
  (match Dpool.run pool 16 boom with
  | _ -> Alcotest.fail "expected an exception"
  | exception Failure msg ->
    Alcotest.(check string) "lowest failing index wins" "7" msg);
  (* The pool survives a failed batch. *)
  Alcotest.(check (array int)) "pool still serves batches"
    (Array.init 5 (fun i -> i + 1))
    (Dpool.run pool 5 (fun i -> i + 1))

let test_nested_run_inlines () =
  let pool = Dpool.get ~domains:3 in
  (* A task that dispatches again must not deadlock: nested batches run
     inline on the worker. *)
  let out =
    Dpool.run pool 6 (fun i -> Array.fold_left ( + ) 0 (Dpool.run pool 4 (fun j -> (i * 10) + j)))
  in
  Alcotest.(check (array int)) "nested dispatch degrades to inline"
    (Array.init 6 (fun i -> (i * 40) + 6))
    out

let test_run_on_slot () =
  let pool = Dpool.get ~domains:3 in
  for slot = 0 to 7 do
    Alcotest.(check int) "run_on returns the task's value" (slot * 3)
      (Dpool.run_on pool ~slot (fun () -> slot * 3))
  done;
  (match Dpool.run_on pool ~slot:1 (fun () -> failwith "on") with
  | _ -> Alcotest.fail "expected an exception"
  | exception Failure msg -> Alcotest.(check string) "run_on re-raises" "on" msg)

let test_env_default () =
  let original = Sys.getenv_opt "TOPOAWARE_DOMAINS" in
  let restore () =
    Unix.putenv "TOPOAWARE_DOMAINS" (match original with Some v -> v | None -> "")
  in
  Fun.protect ~finally:restore (fun () ->
      Unix.putenv "TOPOAWARE_DOMAINS" "4";
      Alcotest.(check int) "env selects the pool size" 4 (Dpool.size (Dpool.default ()));
      Unix.putenv "TOPOAWARE_DOMAINS" "garbage";
      Alcotest.(check int) "unparsable env falls back to 1" 1 (Dpool.size (Dpool.default ()));
      Unix.putenv "TOPOAWARE_DOMAINS" "0";
      Alcotest.(check int) "out-of-range env falls back to 1" 1 (Dpool.size (Dpool.default ()));
      Unix.putenv "TOPOAWARE_DOMAINS" "4";
      let pinned = Dpool.get ~domains:2 in
      Dpool.set_default (Some pinned);
      Fun.protect
        ~finally:(fun () -> Dpool.set_default None)
        (fun () ->
          Alcotest.(check int) "set_default overrides the env" 2
            (Dpool.size (Dpool.default ()))))

let test_interning () =
  Alcotest.(check bool) "same size interns to the same pool" true
    (Dpool.get ~domains:3 == Dpool.get ~domains:3)

(* ---- Sim (time, seq) merge order ---- *)

let test_same_instant_merge_order () =
  (* Model the coordinator merging cross-shard effects: several events
     land on the same timestamp, interleaved with later ones; firing
     order must be exactly the scheduling (seq) order within an instant,
     regardless of scheduling interleaving. *)
  let sim = Sim.create () in
  let fired = ref [] in
  let note tag () = fired := tag :: !fired in
  ignore (Sim.schedule_at sim 50.0 (note "t50/a"));
  ignore (Sim.schedule_at sim 10.0 (note "t10/a"));
  ignore (Sim.schedule_at sim 50.0 (note "t50/b"));
  ignore (Sim.schedule_at sim 10.0 (note "t10/b"));
  ignore (Sim.schedule_at sim 50.0 (note "t50/c"));
  Alcotest.(check (option (float 0.0))) "next_time sees the earliest instant" (Some 10.0)
    (Sim.next_time sim);
  Sim.run sim;
  Alcotest.(check (list string)) "(time, seq) total order"
    [ "t10/a"; "t10/b"; "t50/a"; "t50/b"; "t50/c" ]
    (List.rev !fired)

let test_merge_order_from_handlers () =
  (* Effects published from inside a same-instant handler (delay 0) are
     sequenced after every event already queued at that instant. *)
  let sim = Sim.create () in
  let fired = ref [] in
  let note tag () = fired := tag :: !fired in
  ignore
    (Sim.schedule_at sim 5.0 (fun () ->
         fired := "first" :: !fired;
         ignore (Sim.schedule sim ~delay:0.0 (note "followup"))));
  ignore (Sim.schedule_at sim 5.0 (note "second"));
  Sim.run sim;
  Alcotest.(check (list string)) "zero-delay effects merge after queued peers"
    [ "first"; "second"; "followup" ]
    (List.rev !fired);
  Alcotest.(check (option (float 0.0))) "drained" None (Sim.next_time sim)

(* ---- store byte-identity across pool sizes ---- *)

let vector_of node = Array.init 5 (fun i -> float_of_int ((node * ((7 * i) + 3)) mod 400))
let region_of p = [| p land 1; (p lsr 1) land 1; (p lsr 2) land 1 |]

(* Seeded store workload mirroring the maintenance plane's hot paths;
   returns the rendered metrics JSON plus the purge log. *)
let store_workload ~seed ~pool =
  let metrics = Metrics.create () in
  let rng = Rng.create seed in
  let can = Can_overlay.create ~dims:2 0 in
  for id = 1 to 47 do
    ignore (Can_overlay.join can id (Point.random rng 2))
  done;
  let clock = ref 0.0 in
  let store =
    Store.create ~metrics ~pool ~shards:8 ~default_ttl:2_000.0
      ~clock:(fun () -> !clock)
      ~scheme:(Number.default_scheme ~max_latency:400.0 ())
      can
  in
  let purge_log = ref [] in
  for b = 0 to 9 do
    clock := float_of_int b *. 700.0;
    for p = 0 to 15 do
      let node = 1_000 + (b * 16) + p in
      Store.publish store ~region:(region_of p) ~node ~vector:(vector_of node)
    done;
    (* Refresh a seeded random slice of the previous burst. *)
    if b > 0 then
      for p = 0 to 15 do
        if Rng.chance rng 0.3 then
          Store.refresh store ~region:(region_of p) ~node:(1_000 + ((b - 1) * 16) + p)
      done;
    let purged = Store.sweep_expired store in
    purge_log :=
      List.map (fun (region, (e : Store.Entry.t)) -> (region, e.Store.Entry.node)) purged
      :: !purge_log
  done;
  ignore (Can_overlay.join can 48 (Point.random rng 2));
  Store.rehost store;
  let g name v = Metrics.set (Metrics.gauge metrics name) v in
  g "avg_entries" (Store.avg_entries_per_node store);
  g "hosting_mean" (Store.hosting_stats store).Prelude.Stats.mean;
  (match Store.check_invariants store with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("store invariants: " ^ e));
  (Json.to_string (Metrics.to_json metrics), List.rev !purge_log)

let qcheck_store_pool_identity =
  QCheck.Test.make ~name:"store: pool of 4 is byte-identical to pool of 1" ~count:10
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let json1, purges1 = store_workload ~seed ~pool:(Dpool.get ~domains:1) in
      let json4, purges4 = store_workload ~seed ~pool:(Dpool.get ~domains:4) in
      json1 = json4 && purges1 = purges4)

(* ---- probe phased path vs classic path ---- *)

let qcheck_probe_phased_identity =
  (* Same seeded lossy channel, same batches: the pool-backed prefetch +
     replay must reproduce the pool-less path's results, failure set,
     cache accounting and measurement-call count. *)
  QCheck.Test.make ~name:"probe: prefetch + replay matches the sequential path" ~count:25
    QCheck.(pair (int_range 0 10_000) (int_range 1 24))
    (fun (seed, batchlen) ->
      let count = ref 0 in
      let measure src dst =
        incr count;
        1.0 +. float_of_int (((src * 31) + (dst * 17)) mod 97)
      in
      let config =
        { Probe.default_config with
          Probe.window = 3;
          timeout = 80.0;
          retries = 2;
          cache_ttl = 500.0 }
      in
      let run pool =
        count := 0;
        let faults =
          Faults.create ~channel:{ Faults.loss = 0.15; delay_min = 0.0; delay_max = 30.0 }
            ~seed ()
        in
        let p = Probe.create ?pool ~faults ~config ~measure () in
        let rng = Rng.create (seed + 1) in
        let batches =
          List.init 4 (fun b ->
              let dsts = Array.init batchlen (fun _ -> Rng.int rng 40) in
              (Probe.run_batch p ~src:b ~dsts).Probe.results)
        in
        (batches, Probe.probes p, Probe.failures p, Probe.cache_hits p, Probe.cache_misses p,
         Probe.cache_stale p, !count)
      in
      run None = run (Some (Dpool.get ~domains:4)))

(* ---- whole experiments across pool sizes ---- *)

let experiment_json name =
  Metrics.reset Metrics.global;
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  (match Workload.Registry.find name with
  | Some e -> e.Workload.Registry.run ~scale:16 ppf
  | None -> Alcotest.fail ("unknown experiment " ^ name));
  Format.pp_print_flush ppf ();
  let json = Json.to_string (Metrics.to_json Metrics.global) in
  Metrics.reset Metrics.global;
  json

let with_default_pool ~domains f =
  Dpool.set_default (Some (Dpool.get ~domains));
  Fun.protect ~finally:(fun () -> Dpool.set_default None) f

let qcheck_experiment_pool_identity =
  QCheck.Test.make ~name:"experiments: domains=4 metrics JSON equals domains=1" ~count:3
    QCheck.(oneofl [ "storm"; "churn"; "cache" ])
    (fun name ->
      let j1 = with_default_pool ~domains:1 (fun () -> experiment_json name) in
      let j4 = with_default_pool ~domains:4 (fun () -> experiment_json name) in
      if j1 <> j4 then QCheck.Test.fail_reportf "%s diverged across pool sizes" name;
      true)

let suite =
  [
    Alcotest.test_case "dpool run keeps task order" `Quick test_run_task_order;
    Alcotest.test_case "dpool raises the lowest-index error" `Quick
      test_run_exception_lowest_index;
    Alcotest.test_case "dpool nested run degrades inline" `Quick test_nested_run_inlines;
    Alcotest.test_case "dpool run_on targets a slot" `Quick test_run_on_slot;
    Alcotest.test_case "dpool default obeys TOPOAWARE_DOMAINS" `Quick test_env_default;
    Alcotest.test_case "dpool interns by size" `Quick test_interning;
    Alcotest.test_case "sim merges same-instant events by seq" `Quick
      test_same_instant_merge_order;
    Alcotest.test_case "sim zero-delay effects merge last" `Quick test_merge_order_from_handlers;
    QCheck_alcotest.to_alcotest qcheck_store_pool_identity;
    QCheck_alcotest.to_alcotest qcheck_probe_phased_identity;
    QCheck_alcotest.to_alcotest qcheck_experiment_pool_identity;
  ]
