(* Tests for the probe plane: window queueing arithmetic, the window-1
   sequential-equivalence contract, retries/timeouts, the TTL'd RTT cache
   and the async submission path. *)

module Probe = Engine.Probe
module Sim = Engine.Sim
module Faults = Engine.Faults
module Metrics = Engine.Metrics
module Oracle = Topology.Oracle
module Ts = Topology.Transit_stub
module Landmarks = Landmark.Landmarks
module Rng = Prelude.Rng

let cfg ?(window = 1) ?(timeout = infinity) ?(retries = 0) ?(backoff = 50.0) ?(cache_ttl = 0.0)
    () =
  { Probe.window; timeout; retries; backoff; cache_ttl }

(* Synthetic measurement function: deterministic per-pair RTT plus a log
   of every call, so tests can check order and count byte for byte. *)
let synthetic () =
  let log = ref [] in
  let measure src dst =
    log := (src, dst) :: !log;
    float_of_int (((src * 31) + (dst * 7)) mod 23 + 1)
  in
  (measure, fun () -> List.rev !log)

let ok = function Ok v -> v | Error _ -> Alcotest.fail "expected Ok"

let test_window1_matches_sequential () =
  let measure, calls = synthetic () in
  let p = Probe.create ~measure () in
  let dsts = [| 3; 1; 4; 1; 5; 9; 2; 6 |] in
  let b = Probe.run_batch p ~src:7 ~dsts in
  (* Reference: the seed behaviour — call the measurement function in a
     plain loop over the same destinations. *)
  let ref_measure, ref_calls = synthetic () in
  let expected = Array.map (fun d -> ref_measure 7 d) dsts in
  Alcotest.(check (array (float 0.0))) "same values in same order" expected
    (Array.map ok b.Probe.results);
  Alcotest.(check (list (pair int int))) "same measurement call sequence" (ref_calls ())
    (calls ());
  Alcotest.(check (float 1e-9)) "window 1 prices the sum"
    (Array.fold_left ( +. ) 0.0 expected)
    (Probe.elapsed b)

let test_wide_window_prices_max () =
  let measure _ dst = float_of_int dst in
  let p = Probe.create ~config:(cfg ~window:10 ()) ~measure () in
  let b = Probe.run_batch p ~src:0 ~dsts:[| 10; 30; 20 |] in
  Alcotest.(check (array (float 0.0))) "results unchanged" [| 10.0; 30.0; 20.0 |]
    (Array.map ok b.Probe.results);
  Alcotest.(check (float 1e-9)) "batch finishes at the max RTT" 30.0 (Probe.elapsed b)

let test_window2_queueing () =
  (* rtts 10,20,30 through 2 slots: d0 on slot a (ends 10), d1 on slot b
     (ends 20), d2 re-uses slot a at 10 and ends at 40. *)
  let measure _ dst = float_of_int dst in
  let p = Probe.create ~config:(cfg ~window:2 ()) ~measure () in
  let b = Probe.run_batch p ~src:0 ~dsts:[| 10; 20; 30 |] in
  Alcotest.(check (float 1e-9)) "exact queueing schedule" 40.0 (Probe.elapsed b)

let test_retry_exhaustion () =
  let faults =
    Faults.create ~channel:{ Faults.loss = 1.0; delay_min = 0.0; delay_max = 0.0 } ~seed:5 ()
  in
  let measure _ _ = 10.0 in
  let p =
    Probe.create ~faults
      ~config:(cfg ~timeout:100.0 ~retries:2 ~backoff:50.0 ())
      ~measure ()
  in
  (match Probe.rtt p ~src:1 ~dst:2 with
  | Ok _ -> Alcotest.fail "expected retry exhaustion"
  | Error f ->
    Alcotest.(check int) "src" 1 f.Probe.src;
    Alcotest.(check int) "dst" 2 f.Probe.dst;
    Alcotest.(check int) "attempts = retries + 1" 3 f.Probe.attempts);
  Alcotest.(check int) "failure counted" 1 (Probe.failures p);
  (* 3 timeouts of 100 ms plus backoffs 50 and 100 between attempts. *)
  Alcotest.(check (float 1e-9)) "exhaustion schedule" 450.0 (Probe.total_elapsed p)

let test_timeout_without_faults () =
  let p =
    Probe.create ~config:(cfg ~timeout:100.0 ()) ~measure:(fun _ dst -> float_of_int dst) ()
  in
  (match Probe.rtt p ~src:0 ~dst:200 with
  | Ok _ -> Alcotest.fail "expected timeout"
  | Error f -> Alcotest.(check int) "single attempt" 1 f.Probe.attempts);
  Alcotest.(check bool) "fast probe still succeeds" true (Probe.rtt p ~src:0 ~dst:50 = Ok 50.0)

let test_cache_hit_and_stale () =
  let now = ref 0.0 in
  let measure, calls = synthetic () in
  let p =
    Probe.create ~clock:(fun () -> !now) ~config:(cfg ~cache_ttl:1000.0 ()) ~measure ()
  in
  let first = ok (Probe.rtt p ~src:0 ~dst:1) in
  Alcotest.(check int) "one measurement" 1 (List.length (calls ()));
  now := 500.0;
  Alcotest.(check (float 0.0)) "hit serves the cached value" first
    (ok (Probe.rtt p ~src:0 ~dst:1));
  Alcotest.(check int) "hit does not re-measure" 1 (List.length (calls ()));
  Alcotest.(check int) "hit counted" 1 (Probe.cache_hits p);
  now := 5000.0;
  ignore (Probe.rtt p ~src:0 ~dst:1);
  Alcotest.(check int) "stale re-measures" 2 (List.length (calls ()));
  Alcotest.(check int) "stale counted" 1 (Probe.cache_stale p);
  Alcotest.(check int) "stale also counts as miss" 2 (Probe.cache_misses p);
  (* a cache hit costs no modelled time *)
  now := 5100.0;
  let before = Probe.total_elapsed p in
  ignore (Probe.rtt p ~src:0 ~dst:1);
  Alcotest.(check (float 0.0)) "hit is instant" before (Probe.total_elapsed p)

let test_cache_invalidate () =
  let measure, calls = synthetic () in
  let p = Probe.create ~config:(cfg ~cache_ttl:infinity ()) ~measure () in
  ignore (Probe.rtt p ~src:0 ~dst:1);
  ignore (Probe.rtt p ~src:2 ~dst:3);
  Probe.invalidate p 1;
  ignore (Probe.rtt p ~src:0 ~dst:1);
  ignore (Probe.rtt p ~src:2 ~dst:3);
  (* (0,1) re-measured after invalidation; (2,3) still served from cache *)
  Alcotest.(check (list (pair int int))) "only the invalidated pair re-measures"
    [ (0, 1); (2, 3); (0, 1) ]
    (calls ())

let qcheck_cache_equivalence =
  QCheck.Test.make ~name:"cached and uncached probers agree on every RTT" ~count:100
    QCheck.(pair (int_range 2 40) small_nat)
    (fun (pairs, salt) ->
      let gen = Rng.create (salt + 1) in
      let plan = List.init pairs (fun _ -> (Rng.int gen 8, Rng.int gen 8)) in
      let measure_a, _ = synthetic () in
      let measure_b, calls_b = synthetic () in
      let plain = Probe.create ~measure:measure_a () in
      let cached = Probe.create ~config:(cfg ~cache_ttl:1e12 ()) ~measure:measure_b () in
      let agree =
        List.for_all
          (fun (src, dst) -> Probe.rtt plain ~src ~dst = Probe.rtt cached ~src ~dst)
          plan
      in
      let distinct = List.length (List.sort_uniq compare plan) in
      agree
      && List.length (calls_b ()) = distinct
      && Probe.cache_hits cached = List.length plan - distinct)

let test_submit_batch_async () =
  let sim = Sim.create () in
  let p = Probe.create ~sim ~config:(cfg ~window:4 ()) ~measure:(fun _ dst -> float_of_int dst) () in
  let fired = ref None in
  Probe.submit_batch p ~src:0 ~dsts:[| 25; 75; 50 |] (fun b ->
      fired := Some (Sim.now sim, b));
  Alcotest.(check bool) "callback waits for the simulation" true (!fired = None);
  Sim.run ~until:1000.0 sim;
  match !fired with
  | None -> Alcotest.fail "callback never fired"
  | Some (at, b) ->
    Alcotest.(check (float 1e-9)) "fires at the batch completion time" b.Probe.finished at;
    Alcotest.(check (float 1e-9)) "wide window prices the max" 75.0 (Probe.elapsed b)

let test_submit_requires_sim () =
  let p = Probe.create ~measure:(fun _ _ -> 1.0) () in
  Alcotest.check_raises "no sim" (Invalid_argument "Probe.submit: prober has no simulation")
    (fun () -> Probe.submit p ~src:0 ~dst:1 (fun _ -> ()))

let test_config_validation () =
  let measure _ _ = 1.0 in
  Alcotest.check_raises "window" (Invalid_argument "Probe.create: window must be >= 1")
    (fun () -> ignore (Probe.create ~config:(cfg ~window:0 ()) ~measure ()));
  Alcotest.check_raises "timeout" (Invalid_argument "Probe.create: timeout must be positive")
    (fun () -> ignore (Probe.create ~config:(cfg ~timeout:0.0 ()) ~measure ()));
  Alcotest.check_raises "retries" (Invalid_argument "Probe.create: retries must be >= 0")
    (fun () -> ignore (Probe.create ~config:(cfg ~retries:(-1) ()) ~measure ()))

let test_metrics_instruments () =
  let m = Metrics.create () in
  let p = Probe.create ~metrics:m ~config:(cfg ~window:2 ~cache_ttl:100.0 ()) ~measure:(fun _ d -> float_of_int d) () in
  ignore (Probe.run_batch p ~src:0 ~dsts:[| 1; 2; 1 |]);
  let count name = Metrics.count (Metrics.counter m name) in
  Alcotest.(check int) "submitted" 3 (count "probe_submitted");
  Alcotest.(check int) "measured (third probe cached)" 2 (count "probe_measured");
  Alcotest.(check int) "cache hits" 1 (count "probe_cache_hits");
  Alcotest.(check int) "cache misses" 2 (count "probe_cache_misses");
  Alcotest.(check int) "batch histogram" 1
    (Metrics.observations (Metrics.histogram m "probe_batch_ms"))

(* The consumer-facing contract: a default-configured prober wired to the
   oracle reproduces Landmarks.vector byte for byte, measurement count
   included. *)
let test_vector_via_equivalence () =
  let topo =
    Ts.generate (Rng.create 3)
      {
        Ts.transit_domains = 2;
        transit_nodes_per_domain = 2;
        stubs_per_transit_node = 2;
        stub_size = 6;
        extra_domain_edges = 1;
        extra_edge_fraction = 0.3;
        latency = Ts.Gtitm_random;
      }
  in
  let oracle = Oracle.build topo in
  let lms = Landmarks.choose (Rng.create 4) oracle 5 in
  let node = 17 in
  Oracle.reset_measurements oracle;
  let seq = Landmarks.vector lms node in
  let seq_count = Oracle.measurements oracle in
  let p = Probe.create ~measure:(Oracle.measure oracle) () in
  Oracle.reset_measurements oracle;
  let via = Landmarks.vector_via lms p node in
  Alcotest.(check (array (float 0.0))) "identical vector" seq via;
  Alcotest.(check int) "identical measurement count" seq_count (Oracle.measurements oracle)

let suite =
  [
    Alcotest.test_case "window 1 = sequential loop" `Quick test_window1_matches_sequential;
    Alcotest.test_case "wide window prices the max" `Quick test_wide_window_prices_max;
    Alcotest.test_case "window 2 queueing schedule" `Quick test_window2_queueing;
    Alcotest.test_case "retry exhaustion" `Quick test_retry_exhaustion;
    Alcotest.test_case "timeout without faults" `Quick test_timeout_without_faults;
    Alcotest.test_case "cache hit and stale" `Quick test_cache_hit_and_stale;
    Alcotest.test_case "cache invalidate" `Quick test_cache_invalidate;
    Alcotest.test_case "submit_batch async" `Quick test_submit_batch_async;
    Alcotest.test_case "submit requires sim" `Quick test_submit_requires_sim;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "metrics instruments" `Quick test_metrics_instruments;
    Alcotest.test_case "vector_via = vector" `Quick test_vector_via_equivalence;
    QCheck_alcotest.to_alcotest qcheck_cache_equivalence;
  ]
