let () =
  Alcotest.run "topo_overlay"
    [
      ("prelude", Test_prelude.suite);
      ("geometry", Test_geometry.suite);
      ("topology", Test_topology.suite);
      ("engine", Test_engine.suite);
      ("probe", Test_probe.suite);
      ("metrics", Test_metrics.suite);
      ("landmark", Test_landmark.suite);
      ("can", Test_can.suite);
      ("ecan", Test_ecan.suite);
      ("chord", Test_chord.suite);
      ("pastry", Test_pastry.suite);
      ("koorde", Test_koorde.suite);
      ("conformance", Test_conformance.suite);
      ("softstate", Test_softstate.suite);
      ("pubsub", Test_pubsub.suite);
      ("faults", Test_faults.suite);
      ("repair", Test_repair.suite);
      ("proximity", Test_proximity.suite);
      ("core", Test_core.suite);
      ("extensions", Test_extensions.suite);
      ("workload", Test_workload.suite);
      ("cache", Test_cache.suite);
      ("mcast", Test_mcast.suite);
      ("domains", Test_domains.suite);
      ("properties", Test_properties.suite);
      ("perf", Test_perf.suite);
      ("edges", Test_edges.suite);
    ]
