(* Tests for the Pastry mesh. *)

module Mesh = Pastry.Mesh
module Rng = Prelude.Rng

let random_selector rng ~node:_ ~prefix:_ ~candidates = Some (Rng.pick rng candidates)

let build ?(n = 100) ~seed () =
  let rng = Rng.create seed in
  let t = Mesh.create () in
  for id = 0 to n - 1 do
    Mesh.add_node t ~rng id
  done;
  let sel = Rng.create (seed + 1) in
  Mesh.build_tables t ~selector:(random_selector sel);
  (t, Rng.create (seed + 2))

let check_ok = function Ok () -> () | Error e -> Alcotest.fail e

let test_digits () =
  let t = Mesh.create ~digit_bits:2 ~num_digits:4 () in
  let rng = Rng.create 1 in
  Mesh.add_node t ~rng 0;
  let pid = Mesh.pastry_id t 0 in
  let reconstructed = ref 0 in
  for r = 0 to 3 do
    reconstructed := (!reconstructed lsl 2) lor Mesh.digit t pid r
  done;
  Alcotest.(check int) "digits reconstruct the id" pid !reconstructed

let test_shared_prefix () =
  let t = Mesh.create ~digit_bits:2 ~num_digits:4 () in
  Alcotest.(check int) "identical" 4 (Mesh.shared_prefix_len t 0b10110100 0b10110100);
  Alcotest.(check int) "first digit differs" 0 (Mesh.shared_prefix_len t 0b10110100 0b00110100);
  Alcotest.(check int) "two digits shared" 2 (Mesh.shared_prefix_len t 0b10110100 0b10111111)

let test_members_with_prefix_partition () =
  let t, _ = build ~n:80 ~seed:2 () in
  let all = Mesh.members_with_prefix t [||] in
  Alcotest.(check int) "root prefix" 80 (Array.length all);
  let total = ref 0 in
  for c = 0 to 3 do
    total := !total + Array.length (Mesh.members_with_prefix t [| c |])
  done;
  Alcotest.(check int) "first-digit classes partition" 80 !total

let test_owner_is_numerically_closest () =
  let t, rng = build ~n:60 ~seed:3 () in
  let space = 1 lsl (Mesh.digit_bits t * Mesh.num_digits t) in
  for _ = 1 to 100 do
    let key = Rng.int rng space in
    let owner = Mesh.owner_of t key in
    let dist pid =
      let d = abs (pid - key) in
      min d (space - d)
    in
    let od = dist (Mesh.pastry_id t owner) in
    Array.iter
      (fun id ->
        Alcotest.(check bool) "owner at least as close" true
          (dist (Mesh.pastry_id t id) >= od))
      (Mesh.node_ids t)
  done

let test_invariants () =
  let t, _ = build ~n:120 ~seed:4 () in
  check_ok (Mesh.check_invariants t)

let test_leaves () =
  let t, _ = build ~n:50 ~seed:7 () in
  Array.iter
    (fun id ->
      let l = Mesh.leaves t id in
      Alcotest.(check bool) "leaf count" true (Array.length l >= 1 && Array.length l <= 8);
      Array.iter
        (fun leaf -> Alcotest.(check bool) "leaf is member, not self" true (Mesh.mem t leaf && leaf <> id))
        l)
    (Mesh.node_ids t)

let test_remove_node () =
  let t, rng = build ~n:80 ~seed:8 () in
  let victims = Rng.sample rng 30 (Mesh.node_ids t) in
  Array.iter (fun id -> Mesh.remove_node t id) victims;
  Alcotest.(check int) "size" 50 (Mesh.size t);
  check_ok (Mesh.check_invariants t);
  (* rebuild and verify routing is intact *)
  let sel = Rng.create 9 in
  Mesh.build_tables t ~selector:(random_selector sel);
  let ids = Mesh.node_ids t in
  let space = 1 lsl (Mesh.digit_bits t * Mesh.num_digits t) in
  for _ = 1 to 50 do
    let key = Rng.int rng space in
    match Mesh.route t ~src:(Rng.pick rng ids) ~key with
    | None -> Alcotest.fail "routing failed after removals"
    | Some hops ->
      Alcotest.(check int) "owner reached" (Mesh.owner_of t key)
        (List.nth hops (List.length hops - 1))
  done

(* Generic routing/owner/log-hop properties live in the shared
   backend-conformance suite (test_conformance.ml). *)
let suite =
  [
    Alcotest.test_case "digit extraction" `Quick test_digits;
    Alcotest.test_case "shared prefix length" `Quick test_shared_prefix;
    Alcotest.test_case "prefix membership partitions" `Quick test_members_with_prefix_partition;
    Alcotest.test_case "owner is closest id" `Quick test_owner_is_numerically_closest;
    Alcotest.test_case "table invariants" `Quick test_invariants;
    Alcotest.test_case "leaf sets" `Quick test_leaves;
    Alcotest.test_case "node removal" `Quick test_remove_node;
  ]
