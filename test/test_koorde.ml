(* Tests for the Koorde-style de Bruijn overlay. *)

module Dbj = Koorde.Debruijn
module Rng = Prelude.Rng

let exact_selector ~node:_ ~arc:_ ~candidates:_ = None
let random_selector rng ~node:_ ~arc:_ ~candidates = Some (Rng.pick rng candidates)

let build ?(key_bits = 24) ?(degree = 2) ~n ~seed () =
  let rng = Rng.create seed in
  let t = Dbj.create ~key_bits ~degree () in
  for id = 0 to n - 1 do
    Dbj.add_node t ~rng id
  done;
  let sel = Rng.create (seed + 1) in
  Dbj.build_fingers t ~selector:(random_selector sel);
  (t, Rng.create (seed + 2))

(* Dense 8-node ring, key_bits = 3, degree = 2: node id i sits at key i,
   so every imaginary position p is hosted (charged) by node p-1 and
   owned by node p — hop sequences are hand-checkable. *)
let dense8 () =
  let t = Dbj.create ~key_bits:3 ~degree:2 () in
  for i = 0 to 7 do
    Dbj.add_node_at t i ~key:i
  done;
  Dbj.build_fingers t ~selector:exact_selector;
  t

let check_ok = function Ok () -> () | Error e -> Alcotest.fail e

let test_membership () =
  let t, _ = build ~n:50 ~seed:1 () in
  Alcotest.(check int) "size" 50 (Dbj.size t);
  Alcotest.(check bool) "member" true (Dbj.mem t 7);
  Alcotest.(check bool) "non-member" false (Dbj.mem t 99);
  Alcotest.(check int) "degree" 2 (Dbj.degree t)

let test_create_validation () =
  Alcotest.check_raises "odd degree"
    (Invalid_argument "Koorde.create: degree must be a power of two in [2,64]") (fun () ->
      ignore (Dbj.create ~degree:3 ()));
  Alcotest.check_raises "indivisible width"
    (Invalid_argument "Koorde.create: key_bits must be a multiple of log2 degree") (fun () ->
      ignore (Dbj.create ~key_bits:25 ~degree:4 ()))

let test_charge_vs_successor () =
  let t = dense8 () in
  (* owner of position p is node p; charge of p is its predecessor p-1 *)
  for p = 0 to 7 do
    Alcotest.(check int) "successor" p (Dbj.successor_node t p);
    Alcotest.(check int) "charge" ((p + 7) mod 8) (Dbj.charge_node t p)
  done

let test_cover_structure () =
  let t = dense8 () in
  (* node 0's domain is {1}; its image arc is [2,4) and the cover is the
     anchor (charge of 2 = node 1) plus the arc members 2 and 3 *)
  Alcotest.(check (pair int int)) "image arc" (2, 2) (Dbj.image_arc t 0);
  Alcotest.(check (array int)) "cover" [| 1; 2; 3 |] (Dbj.cover t 0);
  Alcotest.(check (option int)) "exact policy picks nothing" None (Dbj.preferred t 0)

(* Hand-computed imaginary-node walks on the dense ring (k = 2, so each
   hop doubles the register and feeds one bit of the key, top bit of the
   remaining suffix first; the start register is the position in the
   source's domain sharing the longest target prefix). *)
let test_hand_routes () =
  let t = dense8 () in
  let route src key = Dbj.route t ~src ~key in
  (* key 6 = 110b from node 0: start register 1 (= prefix "1"), feed
     "1" -> 3 (charge: node 2), feed "0" -> 6 (charge: node 5), then the
     owner hop to node 6 *)
  Alcotest.(check (option (list int))) "0 -> 6" (Some [ 0; 2; 5; 6 ]) (route 0 6);
  (* key 5 = 101b: register 1, "0" -> 2 (node 1), "1" -> 5 (node 4), owner 5 *)
  Alcotest.(check (option (list int))) "0 -> 5" (Some [ 0; 1; 4; 5 ]) (route 0 5);
  (* key 0 = 000b from node 1: register 2 (domain {2} agrees with the
     one-digit prefix "0"), feed "0" -> 4 (charge: node 3), feed
     "0" -> 0 (charge: node 7), then the owner hop wraps to node 0 *)
  Alcotest.(check (option (list int))) "1 -> 0" (Some [ 1; 3; 7; 0 ]) (route 1 0);
  (* adjacent key: pure owner hop, no digits *)
  Alcotest.(check (option (list int))) "0 -> 1" (Some [ 0; 1 ]) (route 0 1);
  (* self-owned key: no hops at all *)
  Alcotest.(check (option (list int))) "3 -> 3" (Some [ 3 ]) (route 3 3)

let test_preferred_entry_corrections () =
  (* Force every node to prefer its anchor: hops enter the image arc one
     node early and pay a successor correction before the next digit. *)
  let t = dense8 () in
  Dbj.build_fingers t ~selector:(fun ~node:_ ~arc:_ ~candidates -> Some candidates.(0));
  Alcotest.(check (option (list int)))
    "0 -> 6 via anchors" (Some [ 0; 1; 2; 5; 6 ])
    (Dbj.route t ~src:0 ~key:6);
  check_ok (Dbj.check_invariants t)

let test_invariants_random_build () =
  let t, _ = build ~n:64 ~seed:5 () in
  check_ok (Dbj.check_invariants t)

let test_remove_node () =
  let t, rng = build ~n:60 ~seed:10 () in
  let victims = Rng.sample rng 20 (Dbj.node_ids t) in
  Array.iter (fun id -> Dbj.remove_node t id) victims;
  Alcotest.(check int) "size" 40 (Dbj.size t);
  (* stale cover entries and preferred picks were cleared *)
  Array.iter
    (fun id ->
      Array.iter
        (fun c -> Alcotest.(check bool) "cover entry alive" true (Dbj.mem t c))
        (Dbj.cover t id);
      match Dbj.preferred t id with
      | Some p -> Alcotest.(check bool) "preferred alive" true (Dbj.mem t p)
      | None -> ())
    (Dbj.node_ids t);
  (* routing still reaches owners without a rebuild: charge fallback *)
  let ids = Dbj.node_ids t in
  for _ = 1 to 50 do
    let key = Rng.int rng (1 lsl Dbj.key_bits t) in
    match Dbj.route t ~src:(Rng.pick rng ids) ~key with
    | None -> Alcotest.fail "routing failed after removals"
    | Some hops ->
      Alcotest.(check int) "owner reached" (Dbj.successor_node t key)
        (List.nth hops (List.length hops - 1))
  done

let test_single_node () =
  let rng = Rng.create 11 in
  let t = Dbj.create () in
  Dbj.add_node t ~rng 42;
  Alcotest.(check int) "owns all keys" 42 (Dbj.successor_node t 12345);
  Alcotest.(check (option (list int))) "self route" (Some [ 42 ]) (Dbj.route t ~src:42 ~key:7)

let ceil_log ~base n =
  let rec go acc v = if v >= n then acc else go (acc + 1) (v * base) in
  go 0 1

let qcheck_route_reaches =
  QCheck.Test.make ~name:"koorde routing reaches the key successor" ~count:25
    QCheck.(pair (int_range 0 1000) (int_range 1 80))
    (fun (seed, n) ->
      let degree = [| 2; 4; 8; 16 |].(seed mod 4) in
      let t, rng = build ~degree ~n ~seed () in
      let ids = Dbj.node_ids t in
      let ok = ref true in
      for _ = 1 to 20 do
        let key = Rng.int rng (1 lsl Dbj.key_bits t) in
        match Dbj.route t ~src:(Rng.pick rng ids) ~key with
        | Some hops ->
          if List.nth hops (List.length hops - 1) <> Dbj.successor_node t key then ok := false
        | None -> ok := false
      done;
      !ok)

let qcheck_hop_bound =
  (* With the exact-charge policy the imaginary walk feeds about
     log_k (ring / domain) digits; over random sources that averages to
     ceil(log_k N) + O(1), which is the constant-degree bound the backend
     advertises. *)
  QCheck.Test.make ~name:"koorde hop count is ceil(log_k n) + O(1) on average" ~count:25
    QCheck.(pair (int_range 0 1000) (int_range 8 96))
    (fun (seed, n) ->
      let degree = [| 2; 4; 8; 16 |].(seed mod 4) in
      let rng = Rng.create (seed + 3) in
      let t = Dbj.create ~degree () in
      for id = 0 to n - 1 do
        Dbj.add_node t ~rng id
      done;
      Dbj.build_fingers t ~selector:exact_selector;
      let ids = Dbj.node_ids t in
      let total = ref 0 in
      let routes = 32 in
      for _ = 1 to routes do
        let key = Rng.int rng (1 lsl Dbj.key_bits t) in
        match Dbj.route t ~src:(Rng.pick rng ids) ~key with
        | Some hops -> total := !total + List.length hops - 1
        | None -> QCheck.Test.fail_report "route failed"
      done;
      let mean = float_of_int !total /. float_of_int routes in
      mean <= float_of_int (ceil_log ~base:degree n) +. 4.0)

let qcheck_churn_invariants =
  QCheck.Test.make ~name:"koorde join/leave churn preserves invariants" ~count:20
    QCheck.(pair (int_range 0 500) (int_range 10 60))
    (fun (seed, n) ->
      let t, rng = build ~degree:4 ~n ~seed () in
      let sel = Rng.create (seed + 7) in
      for step = 0 to 19 do
        (if Dbj.size t > 4 && Rng.int rng 2 = 0 then
           Dbj.remove_node t (Rng.pick rng (Dbj.node_ids t))
         else Dbj.add_node t ~rng (1000 + (seed * 100) + step));
        Dbj.build_fingers t ~selector:(random_selector sel)
      done;
      match Dbj.check_invariants t with Ok () -> true | Error _ -> false)

let suite =
  [
    Alcotest.test_case "membership" `Quick test_membership;
    Alcotest.test_case "create validation" `Quick test_create_validation;
    Alcotest.test_case "charge vs successor" `Quick test_charge_vs_successor;
    Alcotest.test_case "cover structure" `Quick test_cover_structure;
    Alcotest.test_case "hand-computed de Bruijn walks" `Quick test_hand_routes;
    Alcotest.test_case "preferred entry pays corrections" `Quick test_preferred_entry_corrections;
    Alcotest.test_case "invariants after random build" `Quick test_invariants_random_build;
    Alcotest.test_case "node removal" `Quick test_remove_node;
    Alcotest.test_case "single-node overlay" `Quick test_single_node;
    QCheck_alcotest.to_alcotest qcheck_route_reaches;
    QCheck_alcotest.to_alcotest qcheck_hop_bound;
    QCheck_alcotest.to_alcotest qcheck_churn_invariants;
  ]
