(* Integration tests: Builder + Measure + Maintenance over a real
   transit-stub topology. *)

module Builder = Core.Builder
module Strategy = Core.Strategy
module Measure = Core.Measure
module Maintenance = Core.Maintenance
module Oracle = Topology.Oracle
module Ts = Topology.Transit_stub
module Can_overlay = Can.Overlay
module Ecan_exp = Ecan.Expressway
module Store = Softstate.Store
module Sim = Engine.Sim
module Rng = Prelude.Rng

let oracle =
  (* One shared small topology for the whole suite (cheap to build). *)
  lazy
    (let topo = Ts.generate (Rng.create 7) (Ts.tsk_large ~scale:16 ~latency:Ts.Manual ()) in
     Oracle.build topo)

let small_config strategy =
  {
    Builder.default_config with
    Builder.overlay_size = 200;
    landmark_count = 8;
    strategy;
    seed = 11;
  }

let test_build_basics () =
  let b = Builder.build (Lazy.force oracle) (small_config (Strategy.hybrid ~rtts:5 ())) in
  Alcotest.(check int) "members" 200 (Array.length b.Builder.members);
  Alcotest.(check int) "overlay populated" 200 (Can_overlay.size (Ecan_exp.can b.Builder.ecan));
  Alcotest.(check int) "every member has a vector" 200 (Hashtbl.length b.Builder.vectors);
  Array.iter
    (fun m ->
      Alcotest.(check int) "vector dimensionality" 8 (Array.length (Builder.vector_of b m)))
    b.Builder.members;
  (* every member is published at least in the root map *)
  Alcotest.(check int) "root map complete" 200
    (List.length (Store.region_entries b.Builder.store [||]))

let test_build_rejects_oversized () =
  let o = Lazy.force oracle in
  let config = { (small_config Strategy.Random_pick) with Builder.overlay_size = 10_000_000 } in
  Alcotest.check_raises "too big" (Invalid_argument "Builder.build: overlay larger than the topology")
    (fun () -> ignore (Builder.build o config))

let test_determinism () =
  let o = Lazy.force oracle in
  let config = small_config (Strategy.hybrid ~rtts:4 ()) in
  let b1 = Builder.build o config and b2 = Builder.build o config in
  Alcotest.(check bool) "same membership" true (b1.Builder.members = b2.Builder.members);
  let r1 = Measure.route_stretch ~pairs:50 b1 and r2 = Measure.route_stretch ~pairs:50 b2 in
  Alcotest.(check (float 1e-9)) "same stretch" r1.Measure.stretch.Prelude.Stats.mean
    r2.Measure.stretch.Prelude.Stats.mean

let test_stretch_ordering () =
  (* The paper's central claim at small scale:
     optimal <= hybrid <= random (on average), and all >= 1. *)
  let o = Lazy.force oracle in
  let mean strategy =
    let b = Builder.build o (small_config strategy) in
    let r = Measure.route_stretch ~pairs:400 b in
    r.Measure.stretch.Prelude.Stats.mean
  in
  let optimal = mean Strategy.Optimal in
  let hybrid = mean (Strategy.hybrid ~rtts:10 ()) in
  let random = mean Strategy.Random_pick in
  Alcotest.(check bool) (Printf.sprintf "optimal %.3f >= 1" optimal) true (optimal >= 1.0);
  Alcotest.(check bool)
    (Printf.sprintf "optimal %.3f <= hybrid %.3f (with slack)" optimal hybrid)
    true
    (optimal <= hybrid +. 0.05);
  Alcotest.(check bool)
    (Printf.sprintf "hybrid %.3f < random %.3f" hybrid random)
    true (hybrid < random)

let test_neighbor_quality_ordering () =
  let o = Lazy.force oracle in
  let quality strategy =
    let b = Builder.build o (small_config strategy) in
    (Measure.neighbor_quality b).Prelude.Stats.mean
  in
  let optimal = quality Strategy.Optimal in
  let hybrid = quality (Strategy.hybrid ~rtts:10 ()) in
  let random = quality Strategy.Random_pick in
  Alcotest.(check (float 1e-9)) "optimal picks the best everywhere" 1.0 optimal;
  Alcotest.(check bool)
    (Printf.sprintf "hybrid %.2f closer to optimal than random %.2f" hybrid random)
    true
    (hybrid < random)

let test_measure_samples () =
  let o = Lazy.force oracle in
  let b = Builder.build o (small_config (Strategy.hybrid ~rtts:5 ())) in
  let r = Measure.route_stretch ~pairs:100 b in
  Alcotest.(check int) "sample count" 100 (List.length r.Measure.samples);
  List.iter
    (fun s ->
      Alcotest.(check bool) "latency >= shortest" true
        (s.Measure.latency >= s.Measure.shortest -. 1e-9);
      Alcotest.(check bool) "hops >= 1" true (s.Measure.hops >= 1))
    r.Measure.samples

let test_can_vs_ecan_hops () =
  let o = Lazy.force oracle in
  let b = Builder.build o (small_config Strategy.Random_pick) in
  let ecan = Measure.route_stretch ~pairs:150 b in
  let can = Measure.can_route_report ~pairs:150 b in
  Alcotest.(check bool)
    (Printf.sprintf "ecan hops %.1f < can hops %.1f" ecan.Measure.hops.Prelude.Stats.mean
       can.Measure.hops.Prelude.Stats.mean)
    true
    (ecan.Measure.hops.Prelude.Stats.mean < can.Measure.hops.Prelude.Stats.mean)

let test_rebuild_tables_changes_strategy () =
  let o = Lazy.force oracle in
  let b = Builder.build o (small_config Strategy.Random_pick) in
  let before = (Measure.neighbor_quality b).Prelude.Stats.mean in
  Builder.rebuild_tables b Strategy.Optimal;
  let after = (Measure.neighbor_quality b).Prelude.Stats.mean in
  Alcotest.(check (float 1e-9)) "optimal after rebuild" 1.0 after;
  Alcotest.(check bool) "was worse before" true (before > after)

let test_dynamic_join_leave () =
  let o = Lazy.force oracle in
  let b = Builder.build o { (small_config (Strategy.hybrid ~rtts:4 ())) with Builder.overlay_size = 120 } in
  let can = Ecan_exp.can b.Builder.ecan in
  (* pick physical nodes not already members *)
  let member_set = Hashtbl.create 128 in
  Array.iter (fun m -> Hashtbl.replace member_set m ()) b.Builder.members;
  let fresh = ref [] in
  let i = ref 0 in
  while List.length !fresh < 5 do
    if not (Hashtbl.mem member_set !i) then fresh := !i :: !fresh;
    incr i
  done;
  List.iter (fun node -> ignore (Builder.join_node b node)) !fresh;
  Alcotest.(check int) "grown" 125 (Can_overlay.size can);
  Alcotest.(check bool) "store consistent after joins" true
    (Store.check_invariants b.Builder.store = Ok ());
  List.iter (fun node -> Builder.leave_node b node) !fresh;
  Alcotest.(check int) "shrunk back" 120 (Can_overlay.size can);
  Alcotest.(check bool) "store consistent after leaves" true
    (Store.check_invariants b.Builder.store = Ok ());
  (* routing still works *)
  let r = Measure.route_stretch ~pairs:50 b in
  Alcotest.(check int) "routes fine after churn" 50 (List.length r.Measure.samples)

let test_maintenance_refresh_keeps_state_alive () =
  let o = Lazy.force oracle in
  let sim = Sim.create () in
  let config = { (small_config (Strategy.hybrid ~rtts:4 ())) with Builder.overlay_size = 80 } in
  let b = Builder.build ~clock:(fun () -> Sim.now sim) o config in
  let m = Maintenance.start ~sim ~refresh_period:200_000.0 ~sweep_period:100_000.0 b in
  (* default ttl 600s; run for 2,000s of virtual time *)
  Sim.run ~until:2_000_000.0 sim;
  Alcotest.(check bool) "refreshes happened" true (Maintenance.refreshes m > 0);
  Alcotest.(check int) "root map still fully populated" 80
    (List.length (Store.region_entries b.Builder.store [||]));
  Maintenance.stop m;
  (* without maintenance the state now decays *)
  Sim.run ~until:4_000_000.0 sim;
  ignore (Store.expire_sweep b.Builder.store);
  Alcotest.(check int) "state expired after maintenance stopped" 0
    (List.length (Store.region_entries b.Builder.store [||]))

let test_maintenance_reselects_on_departure () =
  let o = Lazy.force oracle in
  let sim = Sim.create () in
  let config = { (small_config (Strategy.hybrid ~rtts:4 ())) with Builder.overlay_size = 80 } in
  let b = Builder.build ~clock:(fun () -> Sim.now sim) o config in
  let m = Maintenance.start ~sim b in
  Maintenance.subscribe_all_slots m;
  (* find a node that is someone's table entry *)
  let ecan = b.Builder.ecan in
  let can = Ecan_exp.can ecan in
  let victim = ref (-1) in
  Array.iter
    (fun id ->
      if !victim = -1 then begin
        match Ecan_exp.entries ecan id with
        | (_, _, target) :: _ -> victim := target
        | [] -> ()
      end)
    (Can_overlay.node_ids can);
  Alcotest.(check bool) "found a victim" true (!victim >= 0);
  Maintenance.node_departs m !victim;
  (* bounded: the periodic refresh timers never exhaust the queue *)
  Sim.run ~until:1_000_000.0 sim;
  Alcotest.(check bool) "re-selections happened" true (Maintenance.reselections m > 0);
  (* no table may still point at the departed node *)
  Array.iter
    (fun id ->
      List.iter
        (fun (_, _, target) ->
          Alcotest.(check bool) "no dangling entry" true (target <> !victim))
        (Ecan_exp.entries ecan id))
    (Can_overlay.node_ids can)

let test_liveness_polling_retracts_dead_entries () =
  let o = Lazy.force oracle in
  let sim = Sim.create () in
  let config = { (small_config (Strategy.hybrid ~rtts:4 ())) with Builder.overlay_size = 60 } in
  let b = Builder.build ~clock:(fun () -> Sim.now sim) o config in
  let m = Maintenance.start ~sim b in
  (* a "crashed" node: silently gone, its soft state left behind *)
  let dead = b.Builder.members.(7) in
  let departed = ref 0 in
  let _sub =
    Core.Maintenance.bus m
    |> fun bus ->
    Pubsub.Bus.subscribe bus ~subscriber:1 ~region:[||] ~condition:(Pubsub.Bus.Departure_of dead)
      ~handler:(fun _ -> incr departed)
  in
  Maintenance.enable_liveness_polling m ~period:10_000.0 ~is_alive:(fun id -> id <> dead) ();
  Alcotest.(check bool) "state present before polling" true
    (Store.find b.Builder.store ~region:[||] ~node:dead <> None);
  Sim.run ~until:25_000.0 sim;
  Alcotest.(check bool) "dead node's state retracted" true
    (Store.find b.Builder.store ~region:[||] ~node:dead = None);
  Alcotest.(check int) "watchers notified" 1 !departed;
  Maintenance.stop m

let test_leave_rebuilds_relocated_tables () =
  let o = Lazy.force oracle in
  let b = Builder.build o { (small_config (Strategy.hybrid ~rtts:4 ())) with Builder.overlay_size = 120 } in
  let ecan = b.Builder.ecan in
  let can = Ecan_exp.can ecan in
  (* remove a third of the membership through the public API *)
  let victims = Prelude.Rng.sample (Rng.create 77) 40 (Can_overlay.node_ids can) in
  Array.iter (fun v -> Builder.leave_node b v) victims;
  let victim_set = Hashtbl.create 64 in
  Array.iter (fun v -> Hashtbl.replace victim_set v ()) victims;
  Array.iter
    (fun id ->
      List.iter
        (fun (row, digit, target) ->
          Alcotest.(check bool) "no dangling entries" false (Hashtbl.mem victim_set target);
          (* every entry is a member of the region it represents *)
          let region = Ecan_exp.region_prefix ecan id ~row ~digit in
          let path = (Can_overlay.node can target).Can_overlay.path in
          Alcotest.(check bool) "entry consistent with its region" true
            (Array.length path >= Array.length region
            && Array.for_all2 ( = ) region (Array.sub path 0 (Array.length region))))
        (Ecan_exp.entries ecan id))
    (Can_overlay.node_ids can);
  (* and the store still matches the shrunken overlay *)
  Alcotest.(check bool) "store consistent" true (Store.check_invariants b.Builder.store = Ok ());
  let r = Measure.route_stretch ~pairs:80 b in
  Alcotest.(check int) "routing intact" 80 (List.length r.Measure.samples)

let test_strategy_validation () =
  Alcotest.check_raises "hybrid rtts" (Invalid_argument "Strategy.hybrid: rtts must be >= 1")
    (fun () -> ignore (Strategy.hybrid ~rtts:0 ()));
  Alcotest.(check string) "hybrid print" "hybrid(rtts=7)"
    (Strategy.to_string (Strategy.hybrid ~rtts:7 ()));
  Alcotest.(check string) "random print" "random" (Strategy.to_string Strategy.Random_pick);
  Alcotest.(check string) "optimal print" "optimal" (Strategy.to_string Strategy.Optimal)

let test_maintenance_adopts_newcomers () =
  let o = Lazy.force oracle in
  let sim = Sim.create () in
  let config = { (small_config (Strategy.hybrid ~rtts:4 ())) with Builder.overlay_size = 100 } in
  let b = Builder.build ~clock:(fun () -> Sim.now sim) o config in
  let m = Maintenance.start ~sim b in
  Maintenance.subscribe_all_slots m;
  let member_set = Hashtbl.create 128 in
  Array.iter (fun x -> Hashtbl.replace member_set x ()) b.Builder.members;
  let joined = ref 0 in
  let i = ref 0 in
  while !joined < 20 do
    if not (Hashtbl.mem member_set !i) then begin
      Maintenance.node_joins m !i;
      incr joined
    end;
    incr i
  done;
  Sim.run ~until:500_000.0 sim;
  Alcotest.(check bool) "newcomers triggered re-selections" true (Maintenance.reselections m > 0);
  (* overlay remains routable and the store consistent *)
  let r = Measure.route_stretch ~pairs:60 b in
  Alcotest.(check int) "routes fine" 60 (List.length r.Measure.samples);
  Alcotest.(check bool) "store consistent" true
    (Store.check_invariants b.Builder.store = Ok ());
  Maintenance.stop m

let test_join_cost_windows () =
  (* The probe plane prices a join's landmark-vector phase as the sum of
     landmark RTTs at window 1 and as the single slowest RTT at window L;
     the join itself (membership, vectors, tables) is window-invariant. *)
  let o = Lazy.force oracle in
  let join_with window =
    let config =
      {
        (small_config (Strategy.hybrid ~rtts:5 ())) with
        Builder.probe = { Engine.Probe.default_config with Engine.Probe.window };
      }
    in
    let b = Builder.build o config in
    let can = Ecan_exp.can b.Builder.ecan in
    let joiner =
      let rec find i = if Can_overlay.mem can i then find (i + 1) else i in
      find 0
    in
    Oracle.reset_measurements o;
    let cost = Builder.join_node b joiner in
    (b, joiner, cost, Oracle.measurements o)
  in
  let lcount = (small_config Strategy.Random_pick).Builder.landmark_count in
  let b1, joiner, seq, probes1 = join_with 1 in
  let _, joiner', con, probes2 = join_with lcount in
  Alcotest.(check int) "same joiner" joiner joiner';
  Alcotest.(check int) "same probe count at any window" probes1 probes2;
  let lms = Landmark.Landmarks.nodes b1.Builder.landmarks in
  let sum = Array.fold_left (fun a l -> a +. Oracle.dist o joiner l) 0.0 lms in
  let max_rtt = Array.fold_left (fun a l -> Float.max a (Oracle.dist o joiner l)) 0.0 lms in
  Alcotest.(check (float 1e-9)) "window 1 vector phase = sum of landmark RTTs" sum
    seq.Builder.vector_ms;
  Alcotest.(check (float 1e-9)) "window L vector phase = max landmark RTT" max_rtt
    con.Builder.vector_ms;
  Alcotest.(check bool) "selection phase never slower at window L" true
    (con.Builder.selection_ms <= seq.Builder.selection_ms)

let suite =
  [
    Alcotest.test_case "build basics" `Quick test_build_basics;
    Alcotest.test_case "build validation" `Quick test_build_rejects_oversized;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "stretch ordering optimal<=hybrid<random" `Slow test_stretch_ordering;
    Alcotest.test_case "neighbor quality ordering" `Slow test_neighbor_quality_ordering;
    Alcotest.test_case "measurement samples" `Quick test_measure_samples;
    Alcotest.test_case "ecan beats can on hops" `Quick test_can_vs_ecan_hops;
    Alcotest.test_case "rebuild under new strategy" `Quick test_rebuild_tables_changes_strategy;
    Alcotest.test_case "dynamic join/leave" `Quick test_dynamic_join_leave;
    Alcotest.test_case "maintenance keeps soft state alive" `Quick
      test_maintenance_refresh_keeps_state_alive;
    Alcotest.test_case "pub/sub repairs departures" `Quick test_maintenance_reselects_on_departure;
    Alcotest.test_case "pub/sub adopts newcomers" `Quick test_maintenance_adopts_newcomers;
    Alcotest.test_case "leave rebuilds relocated tables" `Quick test_leave_rebuilds_relocated_tables;
    Alcotest.test_case "liveness polling retracts dead state" `Quick
      test_liveness_polling_retracts_dead_entries;
    Alcotest.test_case "strategy validation" `Quick test_strategy_validation;
    Alcotest.test_case "join cost vs probe window" `Quick test_join_cost_windows;
  ]
