(* Tests for the graph, Dijkstra, the transit-stub generator and the exact
   distance oracle. *)

module Graph = Topology.Graph
module Dijkstra = Topology.Dijkstra
module Ts = Topology.Transit_stub
module Oracle = Topology.Oracle
module Rng = Prelude.Rng

let small_params latency =
  {
    Ts.transit_domains = 3;
    transit_nodes_per_domain = 2;
    stubs_per_transit_node = 2;
    stub_size = 5;
    extra_domain_edges = 2;
    extra_edge_fraction = 0.4;
    latency;
  }

let test_graph_basics () =
  let g = Graph.make 4 [ (0, 1, 1.0); (1, 2, 2.0); (2, 3, 3.0); (3, 0, 4.0) ] in
  Alcotest.(check int) "nodes" 4 (Graph.node_count g);
  Alcotest.(check int) "edges" 4 (Graph.edge_count g);
  Alcotest.(check int) "degree" 2 (Graph.degree g 0);
  Alcotest.(check (option (float 0.0))) "weight" (Some 2.0) (Graph.weight g 1 2);
  Alcotest.(check (option (float 0.0))) "missing edge" None (Graph.weight g 0 2);
  Alcotest.(check bool) "connected" true (Graph.is_connected g)

let test_graph_validation () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.make: self loop") (fun () ->
      ignore (Graph.make 2 [ (0, 0, 1.0) ]));
  Alcotest.check_raises "bad weight" (Invalid_argument "Graph.make: non-positive weight")
    (fun () -> ignore (Graph.make 2 [ (0, 1, 0.0) ]));
  Alcotest.check_raises "duplicate" (Invalid_argument "Graph.make: duplicate edge") (fun () ->
      ignore (Graph.make 2 [ (0, 1, 1.0); (1, 0, 2.0) ]));
  Alcotest.check_raises "range" (Invalid_argument "Graph.make: endpoint out of range")
    (fun () -> ignore (Graph.make 2 [ (0, 2, 1.0) ]))

let test_graph_disconnected () =
  let g = Graph.make 3 [ (0, 1, 1.0) ] in
  Alcotest.(check bool) "disconnected" false (Graph.is_connected g)

let test_graph_subgraph () =
  let g = Graph.make 5 [ (0, 1, 1.0); (1, 2, 2.0); (2, 3, 3.0); (0, 4, 5.0) ] in
  let sub, mapping = Graph.subgraph g [| 1; 2; 3 |] in
  Alcotest.(check int) "sub nodes" 3 (Graph.node_count sub);
  Alcotest.(check int) "sub edges" 2 (Graph.edge_count sub);
  Alcotest.(check (array int)) "mapping" [| 1; 2; 3 |] mapping;
  Alcotest.(check (option (float 0.0))) "kept weight" (Some 2.0) (Graph.weight sub 0 1)

let test_dijkstra_line () =
  let g = Graph.make 4 [ (0, 1, 1.0); (1, 2, 2.0); (2, 3, 4.0) ] in
  let d = Dijkstra.distances g 0 in
  Alcotest.(check (array (float 1e-12))) "line distances" [| 0.0; 1.0; 3.0; 7.0 |] d

let test_dijkstra_prefers_shortcut () =
  let g = Graph.make 3 [ (0, 1, 10.0); (0, 2, 1.0); (2, 1, 1.0) ] in
  Alcotest.(check (float 1e-12)) "shortcut" 2.0 (Dijkstra.distance g 0 1)

let test_dijkstra_unreachable () =
  let g = Graph.make 3 [ (0, 1, 1.0) ] in
  Alcotest.(check (float 0.0)) "unreachable" infinity (Dijkstra.distance g 0 2);
  Alcotest.(check bool) "no path" true (Dijkstra.path g 0 2 = None)

let test_dijkstra_path () =
  let g = Graph.make 4 [ (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0); (0, 3, 10.0) ] in
  Alcotest.(check (option (list int))) "path" (Some [ 0; 1; 2; 3 ]) (Dijkstra.path g 0 3)

let test_ts_generation_shape () =
  let rng = Rng.create 1 in
  let p = small_params Ts.Manual in
  let t = Ts.generate rng p in
  Alcotest.(check int) "total nodes" (Ts.total_nodes p) (Graph.node_count t.Ts.graph);
  Alcotest.(check int) "transit nodes" 6 (Array.length t.Ts.transit_nodes);
  Alcotest.(check int) "stubs" 12 (Array.length t.Ts.stub_members);
  Alcotest.(check bool) "connected" true (Graph.is_connected t.Ts.graph);
  Array.iteri
    (fun s members ->
      Alcotest.(check int) "stub size" 5 (Array.length members);
      Alcotest.(check bool) "gateway inside stub" true
        (Array.exists (fun m -> m = t.Ts.stub_attach_stub_node.(s)) members))
    t.Ts.stub_members

let test_ts_strict_hierarchy () =
  (* No stub-stub cross links and exactly one access link per stub. *)
  let rng = Rng.create 2 in
  let t = Ts.generate rng (small_params Ts.Gtitm_random) in
  let access = Array.make (Array.length t.Ts.stub_members) 0 in
  List.iter
    (fun (u, v, _) ->
      match (t.Ts.kind.(u), t.Ts.kind.(v)) with
      | Ts.Stub_node { stub = a }, Ts.Stub_node { stub = b } ->
        Alcotest.(check int) "intra-stub only" a b
      | Ts.Stub_node { stub }, Ts.Transit _ | Ts.Transit _, Ts.Stub_node { stub } ->
        access.(stub) <- access.(stub) + 1
      | Ts.Transit _, Ts.Transit _ -> ())
    (Graph.edges t.Ts.graph);
  Array.iter (fun c -> Alcotest.(check int) "one access link" 1 c) access

let test_ts_manual_latencies () =
  let rng = Rng.create 3 in
  let t = Ts.generate rng (small_params Ts.Manual) in
  List.iter
    (fun (u, v, w) ->
      let expected =
        match Ts.classify_link t u v with
        | Ts.Inter_transit -> 20.0
        | Ts.Intra_transit -> 5.0
        | Ts.Transit_stub_link -> 2.0
        | Ts.Intra_stub -> 1.0
      in
      Alcotest.(check (float 0.0)) "manual latency by class" expected w)
    (Graph.edges t.Ts.graph)

let test_ts_random_latency_ranges () =
  let rng = Rng.create 4 in
  let t = Ts.generate rng (small_params Ts.Gtitm_random) in
  List.iter
    (fun (u, v, w) ->
      let lo, hi =
        match Ts.classify_link t u v with
        | Ts.Inter_transit -> (10.0, 50.0)
        | Ts.Intra_transit -> (5.0, 30.0)
        | Ts.Transit_stub_link -> (2.0, 20.0)
        | Ts.Intra_stub -> (1.0, 10.0)
      in
      Alcotest.(check bool) "latency in class range" true (w >= lo && w <= hi))
    (Graph.edges t.Ts.graph)

let test_ts_presets () =
  let large = Ts.tsk_large () and small = Ts.tsk_small () in
  Alcotest.(check bool) "tsk-large about 10k" true
    (abs (Ts.total_nodes large - 10_000) < 200);
  Alcotest.(check bool) "tsk-small about 10k" true
    (abs (Ts.total_nodes small - 10_000) < 200);
  Alcotest.(check bool) "large has bigger backbone" true
    (large.Ts.transit_domains * large.Ts.transit_nodes_per_domain
    > small.Ts.transit_domains * small.Ts.transit_nodes_per_domain);
  Alcotest.(check bool) "small has denser stubs" true (small.Ts.stub_size > large.Ts.stub_size);
  let scaled = Ts.tsk_large ~scale:10 () in
  Alcotest.(check bool) "scale shrinks" true (Ts.total_nodes scaled < Ts.total_nodes large / 5)

let test_ts_determinism () =
  let p = small_params Ts.Gtitm_random in
  let t1 = Ts.generate (Rng.create 99) p and t2 = Ts.generate (Rng.create 99) p in
  Alcotest.(check bool) "same edges for same seed" true
    (Graph.edges t1.Ts.graph = Graph.edges t2.Ts.graph)

let test_waxman_shape () =
  let p = Topology.Waxman.default ~nodes:300 () in
  let g = Topology.Waxman.generate (Rng.create 41) p in
  Alcotest.(check int) "nodes" 300 (Graph.node_count g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g);
  (* spanning tree guarantees at least n-1 edges; Waxman adds more *)
  Alcotest.(check bool) "has extra edges" true (Graph.edge_count g > 299);
  List.iter
    (fun (_, _, w) ->
      Alcotest.(check bool) "latency within plane bounds" true
        (w >= p.Topology.Waxman.min_latency
        && w <= p.Topology.Waxman.min_latency +. (sqrt 2.0 *. p.Topology.Waxman.latency_per_unit)))
    (Graph.edges g)

let test_waxman_validation () =
  let p = Topology.Waxman.default () in
  Alcotest.check_raises "beta range" (Invalid_argument "Waxman.generate: beta out of [0,1]")
    (fun () -> ignore (Topology.Waxman.generate (Rng.create 1) { p with Topology.Waxman.beta = 1.5 }))

let test_dense_oracle_matches_dijkstra () =
  let g = Topology.Waxman.generate (Rng.create 42) (Topology.Waxman.default ~nodes:120 ()) in
  let o = Oracle.of_graph g in
  Alcotest.(check int) "node count" 120 (Oracle.node_count o);
  Alcotest.(check bool) "no transit-stub structure" true (Oracle.topology o = None);
  let rng = Rng.create 43 in
  for _ = 1 to 200 do
    let a = Rng.int rng 120 and b = Rng.int rng 120 in
    Alcotest.(check (float 1e-9)) "dense = dijkstra" (Dijkstra.distance g a b) (Oracle.dist o a b)
  done;
  Oracle.reset_measurements o;
  ignore (Oracle.measure o 0 1);
  Alcotest.(check int) "counter works on dense oracle" 1 (Oracle.measurements o)

let test_serialize_roundtrip () =
  let t = Ts.generate (Rng.create 21) (small_params Ts.Gtitm_random) in
  match Topology.Serialize.of_string (Topology.Serialize.to_string t) with
  | Error m -> Alcotest.fail m
  | Ok t' ->
    Alcotest.(check bool) "edges identical" true
      (List.sort compare (Graph.edges t.Ts.graph)
      = List.sort compare (Graph.edges t'.Ts.graph));
    Alcotest.(check bool) "kinds identical" true (t.Ts.kind = t'.Ts.kind);
    Alcotest.(check bool) "stub membership identical" true
      (t.Ts.stub_members = t'.Ts.stub_members);
    Alcotest.(check bool) "attachments identical" true
      (t.Ts.stub_attach_stub_node = t'.Ts.stub_attach_stub_node
      && t.Ts.stub_attach_transit = t'.Ts.stub_attach_transit
      && t.Ts.stub_attach_weight = t'.Ts.stub_attach_weight);
    (* oracle over the roundtripped topology answers identically *)
    let o = Oracle.build t and o' = Oracle.build t' in
    let rng = Rng.create 22 in
    let n = Graph.node_count t.Ts.graph in
    for _ = 1 to 100 do
      let a = Rng.int rng n and b = Rng.int rng n in
      Alcotest.(check (float 1e-12)) "same distances" (Oracle.dist o a b) (Oracle.dist o' a b)
    done

let test_serialize_rejects_garbage () =
  (match Topology.Serialize.of_string "nonsense" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted garbage");
  let t = Ts.generate (Rng.create 23) (small_params Ts.Manual) in
  let s = Topology.Serialize.to_string t in
  let truncated = String.sub s 0 (String.length s / 2) in
  match Topology.Serialize.of_string truncated with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted truncated input"

let test_serialize_file_io () =
  let t = Ts.generate (Rng.create 24) (small_params Ts.Manual) in
  let path = Filename.temp_file "topo" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Topology.Serialize.save t path;
      match Topology.Serialize.load path with
      | Ok t' ->
        Alcotest.(check bool) "file roundtrip" true
          (List.sort compare (Graph.edges t.Ts.graph)
          = List.sort compare (Graph.edges t'.Ts.graph))
      | Error m -> Alcotest.fail m);
  match Topology.Serialize.load "/nonexistent/path" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "loaded a nonexistent file"

let test_oracle_matches_dijkstra () =
  let rng = Rng.create 5 in
  let t = Ts.generate rng (small_params Ts.Gtitm_random) in
  let o = Oracle.build t in
  let n = Graph.node_count t.Ts.graph in
  (* Exhaustive check against Dijkstra on this small topology. *)
  for src = 0 to n - 1 do
    let d = Dijkstra.distances t.Ts.graph src in
    for dst = 0 to n - 1 do
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "d(%d,%d)" src dst)
        d.(dst) (Oracle.dist o src dst)
    done
  done

let qcheck_oracle_matches_dijkstra =
  QCheck.Test.make ~name:"oracle = dijkstra on random transit-stub topologies" ~count:15
    QCheck.(
      quad (int_range 1 4) (int_range 1 3) (int_range 1 3) (int_range 1 8)
      |> pair (int_range 0 10_000))
    (fun (seed, (domains, per_domain, stubs_per, stub_size)) ->
      let p =
        {
          Ts.transit_domains = domains;
          transit_nodes_per_domain = per_domain;
          stubs_per_transit_node = stubs_per;
          stub_size;
          extra_domain_edges = domains;
          extra_edge_fraction = 0.5;
          latency = Ts.Gtitm_random;
        }
      in
      let t = Ts.generate (Rng.create seed) p in
      let o = Oracle.build t in
      let n = Graph.node_count t.Ts.graph in
      let check_rng = Rng.create (seed + 1) in
      let ok = ref true in
      for _ = 1 to 30 do
        let src = Rng.int check_rng n in
        let d = Dijkstra.distances t.Ts.graph src in
        let dst = Rng.int check_rng n in
        if Float.abs (d.(dst) -. Oracle.dist o src dst) > 1e-9 then ok := false
      done;
      !ok)

let test_oracle_measurement_counter () =
  let rng = Rng.create 6 in
  let t = Ts.generate rng (small_params Ts.Manual) in
  let o = Oracle.build t in
  Alcotest.(check int) "starts at zero" 0 (Oracle.measurements o);
  ignore (Oracle.dist o 0 1);
  Alcotest.(check int) "dist is free" 0 (Oracle.measurements o);
  ignore (Oracle.measure o 0 1);
  ignore (Oracle.measure o 0 2);
  Alcotest.(check int) "measure counts" 2 (Oracle.measurements o);
  Oracle.reset_measurements o;
  Alcotest.(check int) "reset" 0 (Oracle.measurements o)

let test_oracle_nearest () =
  let rng = Rng.create 7 in
  let t = Ts.generate rng (small_params Ts.Manual) in
  let o = Oracle.build t in
  let n = Graph.node_count t.Ts.graph in
  let candidates = Array.init n (fun i -> i) in
  (match Oracle.nearest o 0 candidates with
  | None -> Alcotest.fail "expected a nearest node"
  | Some (best, d) ->
    Alcotest.(check bool) "not self" true (best <> 0);
    (* brute force cross-check *)
    let brute = ref infinity in
    for v = 1 to n - 1 do
      brute := Float.min !brute (Oracle.dist o 0 v)
    done;
    Alcotest.(check (float 1e-12)) "matches brute force" !brute d);
  Alcotest.(check bool) "empty candidates" true (Oracle.nearest o 0 [| 0 |] = None)

let test_oracle_nearest_tiebreak () =
  (* Star: node 0 at the center, leaves 1..4 all at exactly 5.0.  Equal
     distances must resolve to the smallest node id regardless of the
     order candidates are presented in. *)
  let g = Graph.make 5 [ (0, 1, 5.0); (0, 2, 5.0); (0, 3, 5.0); (0, 4, 5.0) ] in
  let o = Oracle.of_graph g in
  Alcotest.(check (option (pair int (float 1e-12))))
    "ascending candidates" (Some (1, 5.0))
    (Oracle.nearest o 0 [| 1; 2; 3; 4 |]);
  Alcotest.(check (option (pair int (float 1e-12))))
    "descending candidates" (Some (1, 5.0))
    (Oracle.nearest o 0 [| 4; 3; 2; 1 |]);
  Alcotest.(check (option (pair int (float 1e-12))))
    "shuffled candidates" (Some (2, 5.0))
    (Oracle.nearest o 0 [| 3; 2; 4 |]);
  (* A strictly closer node still wins over a smaller tied id. *)
  let g2 = Graph.make 4 [ (0, 1, 5.0); (0, 2, 5.0); (0, 3, 4.0) ] in
  let o2 = Oracle.of_graph g2 in
  Alcotest.(check (option (pair int (float 1e-12))))
    "closer beats smaller id" (Some (3, 4.0))
    (Oracle.nearest o2 0 [| 1; 2; 3 |])

let test_oracle_symmetry () =
  let rng = Rng.create 8 in
  let t = Ts.generate rng (small_params Ts.Gtitm_random) in
  let o = Oracle.build t in
  let n = Graph.node_count t.Ts.graph in
  let pair_rng = Rng.create 9 in
  for _ = 1 to 200 do
    let u = Rng.int pair_rng n and v = Rng.int pair_rng n in
    Alcotest.(check (float 1e-9)) "symmetric" (Oracle.dist o u v) (Oracle.dist o v u)
  done

let suite =
  [
    Alcotest.test_case "graph basics" `Quick test_graph_basics;
    Alcotest.test_case "graph validation" `Quick test_graph_validation;
    Alcotest.test_case "graph disconnected" `Quick test_graph_disconnected;
    Alcotest.test_case "graph subgraph" `Quick test_graph_subgraph;
    Alcotest.test_case "dijkstra line" `Quick test_dijkstra_line;
    Alcotest.test_case "dijkstra shortcut" `Quick test_dijkstra_prefers_shortcut;
    Alcotest.test_case "dijkstra unreachable" `Quick test_dijkstra_unreachable;
    Alcotest.test_case "dijkstra path" `Quick test_dijkstra_path;
    Alcotest.test_case "transit-stub shape" `Quick test_ts_generation_shape;
    Alcotest.test_case "transit-stub strict hierarchy" `Quick test_ts_strict_hierarchy;
    Alcotest.test_case "manual latencies" `Quick test_ts_manual_latencies;
    Alcotest.test_case "random latency ranges" `Quick test_ts_random_latency_ranges;
    Alcotest.test_case "paper presets" `Quick test_ts_presets;
    Alcotest.test_case "generation determinism" `Quick test_ts_determinism;
    Alcotest.test_case "waxman shape" `Quick test_waxman_shape;
    Alcotest.test_case "waxman validation" `Quick test_waxman_validation;
    Alcotest.test_case "dense oracle = dijkstra" `Quick test_dense_oracle_matches_dijkstra;
    Alcotest.test_case "serialize roundtrip" `Quick test_serialize_roundtrip;
    Alcotest.test_case "serialize rejects garbage" `Quick test_serialize_rejects_garbage;
    Alcotest.test_case "serialize file io" `Quick test_serialize_file_io;
    Alcotest.test_case "oracle = dijkstra (exhaustive small)" `Slow test_oracle_matches_dijkstra;
    Alcotest.test_case "oracle measurement counter" `Quick test_oracle_measurement_counter;
    Alcotest.test_case "oracle nearest" `Quick test_oracle_nearest;
    Alcotest.test_case "oracle nearest tie-break" `Quick test_oracle_nearest_tiebreak;
    Alcotest.test_case "oracle symmetry" `Quick test_oracle_symmetry;
    QCheck_alcotest.to_alcotest qcheck_oracle_matches_dijkstra;
  ]
