(* Shared backend-conformance suite: one property harness over all five
   overlay backends (CAN, eCAN, Chord, Pastry, Koorde).  Each backend is
   wrapped in the same record — keyed routing, a membership-model owner
   oracle, join/leave, stabilization, invariants — so the properties the
   per-backend suites used to copy (routes terminate within the hop
   bound, routes end at the oracle's owner, churn preserves invariants,
   same-seed and domains-1-vs-4 metrics JSON are byte-identical per
   DESIGN §12) are written exactly once. *)

module Rng = Prelude.Rng
module Point = Geometry.Point
module Metrics = Engine.Metrics
module Dpool = Engine.Dpool
module Json = Prelude.Json

type backend = {
  name : string;
  members : unit -> int array;
  route : src:int -> key:int -> int list option;
  owner : int -> int;  (* membership-model oracle: expected route terminal *)
  key_space : int;  (* route keys are drawn from [0, key_space) *)
  mean_hop_bound : int -> float;  (* allowed mean hops at a given size *)
  join : int -> unit;
  leave : int -> unit;
  stabilize : unit -> unit;
  invariants : unit -> (unit, string) result;
}

let log2f n = log (float_of_int (max 2 n)) /. log 2.

(* ---- the five wrappers ---- *)

let make_chord ~seed ~n =
  let module Ring = Chord.Ring in
  let rng = Rng.create seed in
  let t = Ring.create () in
  for id = 0 to n - 1 do
    Ring.add_node t ~rng id
  done;
  let sel = Rng.create (seed + 1) in
  let selector ~node:_ ~arc:_ ~candidates = Some (Rng.pick sel candidates) in
  Ring.build_fingers t ~selector;
  {
    name = "chord";
    members = (fun () -> Ring.node_ids t);
    route = (fun ~src ~key -> Ring.route t ~src ~key);
    owner = (fun key -> Ring.successor_node t key);
    key_space = 1 lsl Ring.key_bits t;
    mean_hop_bound = (fun n -> (2. *. log2f n) +. 6.);
    join = (fun id -> Ring.add_node t ~rng id);
    leave = (fun id -> Ring.remove_node t id);
    stabilize = (fun () -> Ring.build_fingers t ~selector);
    invariants = (fun () -> Ring.check_invariants t);
  }

let make_pastry ~seed ~n =
  let module Mesh = Pastry.Mesh in
  let rng = Rng.create seed in
  let t = Mesh.create () in
  for id = 0 to n - 1 do
    Mesh.add_node t ~rng id
  done;
  let sel = Rng.create (seed + 1) in
  let selector ~node:_ ~prefix:_ ~candidates = Some (Rng.pick sel candidates) in
  Mesh.build_tables t ~selector;
  {
    name = "pastry";
    members = (fun () -> Mesh.node_ids t);
    route = (fun ~src ~key -> Mesh.route t ~src ~key);
    owner = (fun key -> Mesh.owner_of t key);
    key_space = 1 lsl (Mesh.digit_bits t * Mesh.num_digits t);
    mean_hop_bound = (fun n -> (2. *. log2f n) +. 6.);
    join = (fun id -> Mesh.add_node t ~rng id);
    leave = (fun id -> Mesh.remove_node t id);
    stabilize = (fun () -> Mesh.build_tables t ~selector);
    invariants = (fun () -> Mesh.check_invariants t);
  }

let make_koorde ~seed ~n =
  let module Dbj = Koorde.Debruijn in
  let rng = Rng.create seed in
  let degree = [| 2; 4; 8; 16 |].(seed mod 4) in
  let t = Dbj.create ~degree () in
  for id = 0 to n - 1 do
    Dbj.add_node t ~rng id
  done;
  let sel = Rng.create (seed + 1) in
  let selector ~node:_ ~arc:_ ~candidates = Some (Rng.pick sel candidates) in
  Dbj.build_fingers t ~selector;
  {
    name = "koorde";
    members = (fun () -> Dbj.node_ids t);
    route = (fun ~src ~key -> Dbj.route t ~src ~key);
    owner = (fun key -> Dbj.successor_node t key);
    key_space = 1 lsl Dbj.key_bits t;
    (* log_k N digit hops plus successor corrections, which random
       preferred entries make more frequent than the exact policy's O(1) *)
    mean_hop_bound = (fun n -> (2. *. log2f n) +. 8.);
    join = (fun id -> Dbj.add_node t ~rng id);
    leave = (fun id -> Dbj.remove_node t id);
    stabilize = (fun () -> Dbj.build_fingers t ~selector);
    invariants = (fun () -> Dbj.check_invariants t);
  }

(* CAN and eCAN route on points; keys map onto the unit square through a
   fixed 2 x 10-bit grid so the keyed interface is shared. *)
let can_key_bits = 20

let point_of_key key =
  let side = 1 lsl (can_key_bits / 2) in
  let cell v = (float_of_int v +. 0.5) /. float_of_int side in
  [| cell (key lsr (can_key_bits / 2)); cell (key land (side - 1)) |]

let make_can ~seed ~n =
  let module Can_overlay = Can.Overlay in
  let rng = Rng.create seed in
  let t = Can_overlay.create ~dims:2 0 in
  for id = 1 to n - 1 do
    ignore (Can_overlay.join t id (Point.random rng 2))
  done;
  {
    name = "can";
    members = (fun () -> Can_overlay.node_ids t);
    route = (fun ~src ~key -> Can_overlay.route t ~src (point_of_key key));
    owner = (fun key -> Can_overlay.owner_of t (point_of_key key));
    key_space = 1 lsl can_key_bits;
    mean_hop_bound = (fun n -> (4. *. sqrt (float_of_int n)) +. 8.);
    join = (fun id -> ignore (Can_overlay.join t id (Point.random rng 2)));
    leave = (fun id -> ignore (Can_overlay.leave t id));
    stabilize = (fun () -> ());
    invariants = (fun () -> Can_overlay.check_invariants t);
  }

let make_ecan ~seed ~n =
  let module Can_overlay = Can.Overlay in
  let module Ecan_x = Ecan.Expressway in
  let rng = Rng.create seed in
  let t = Can_overlay.create ~dims:2 0 in
  for id = 1 to n - 1 do
    ignore (Can_overlay.join t id (Point.random rng 2))
  done;
  let e = Ecan_x.create ~span_bits:2 t in
  let sel = Rng.create (seed + 1) in
  let selector ~node:_ ~region:_ ~candidates = Some (Rng.pick sel candidates) in
  Ecan_x.build_tables e ~selector;
  {
    name = "ecan";
    members = (fun () -> Can_overlay.node_ids t);
    route = (fun ~src ~key -> Ecan_x.route e ~src (point_of_key key));
    owner = (fun key -> Can_overlay.owner_of t (point_of_key key));
    key_space = 1 lsl can_key_bits;
    mean_hop_bound = (fun n -> (4. *. sqrt (float_of_int n)) +. 8.);
    join = (fun id -> ignore (Can_overlay.join t id (Point.random rng 2)));
    leave = (fun id -> ignore (Can_overlay.leave t id));
    stabilize = (fun () -> Ecan_x.build_tables e ~selector);
    invariants = (fun () -> Can_overlay.check_invariants t);
  }

let backends =
  [
    ("can", make_can);
    ("ecan", make_ecan);
    ("chord", make_chord);
    ("pastry", make_pastry);
    ("koorde", make_koorde);
  ]

(* ---- properties ---- *)

let qcheck_terminates_within_bound (name, make) =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: routes terminate within the hop bound" name)
    ~count:15
    QCheck.(pair (int_range 0 1000) (int_range 8 80))
    (fun (seed, n) ->
      let b = make ~seed ~n in
      let rng = Rng.create (seed + 2) in
      let ids = b.members () in
      let total = ref 0 in
      let routes = 24 in
      for _ = 1 to routes do
        let key = Rng.int rng b.key_space in
        match b.route ~src:(Rng.pick rng ids) ~key with
        | Some hops -> total := !total + List.length hops - 1
        | None -> QCheck.Test.fail_report (b.name ^ ": route did not terminate")
      done;
      float_of_int !total /. float_of_int routes <= b.mean_hop_bound n)

let qcheck_lookup_matches_oracle (name, make) =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: lookups end at the membership model's owner" name)
    ~count:15
    QCheck.(pair (int_range 0 1000) (int_range 8 80))
    (fun (seed, n) ->
      let b = make ~seed ~n in
      let rng = Rng.create (seed + 2) in
      let ids = b.members () in
      let ok = ref true in
      for _ = 1 to 24 do
        let key = Rng.int rng b.key_space in
        match b.route ~src:(Rng.pick rng ids) ~key with
        | Some hops -> if List.nth hops (List.length hops - 1) <> b.owner key then ok := false
        | None -> ok := false
      done;
      !ok)

let qcheck_churn_preserves_invariants (name, make) =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: join/leave churn preserves invariants" name)
    ~count:10
    QCheck.(pair (int_range 0 500) (int_range 12 48))
    (fun (seed, n) ->
      let b = make ~seed ~n in
      let rng = Rng.create (seed + 3) in
      let next_id = ref 10_000 in
      for _ = 1 to 16 do
        (if Array.length (b.members ()) > 8 && Rng.int rng 2 = 0 then
           b.leave (Rng.pick rng (b.members ()))
         else begin
           b.join !next_id;
           incr next_id
         end);
        b.stabilize ()
      done;
      (match b.invariants () with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_report (b.name ^ ": " ^ e));
      (* and the survivors still resolve lookups correctly *)
      let ids = b.members () in
      let ok = ref true in
      for _ = 1 to 12 do
        let key = Rng.int rng b.key_space in
        match b.route ~src:(Rng.pick rng ids) ~key with
        | Some hops -> if List.nth hops (List.length hops - 1) <> b.owner key then ok := false
        | None -> ok := false
      done;
      !ok)

(* ---- determinism: same seed and domains 1 vs 4 give byte-identical
   metrics JSON (DESIGN §12) ---- *)

let with_default_pool ~domains f =
  Dpool.set_default (Some (Dpool.get ~domains));
  Fun.protect ~finally:(fun () -> Dpool.set_default None) f

let workload_json make ~seed ~domains =
  with_default_pool ~domains (fun () ->
      let m = Metrics.create () in
      let b = make ~seed ~n:32 in
      let labels = [ ("overlay", b.name) ] in
      let routes = Metrics.counter m ~labels "conf_routes" in
      let failures = Metrics.counter m ~labels "conf_failures" in
      let hops = Metrics.histogram m ~labels "conf_hops" in
      let rng = Rng.create (seed + 4) in
      let next_id = ref 20_000 in
      for step = 1 to 24 do
        (if step mod 3 = 0 then begin
           if Array.length (b.members ()) > 8 then b.leave (Rng.pick rng (b.members ()));
           b.join !next_id;
           incr next_id;
           b.stabilize ()
         end);
        let key = Rng.int rng b.key_space in
        match b.route ~src:(Rng.pick rng (b.members ())) ~key with
        | Some h ->
          Metrics.incr routes;
          Metrics.observe hops (float_of_int (List.length h - 1))
        | None -> Metrics.incr failures
      done;
      Json.to_string (Metrics.to_json m))

let test_deterministic_json (name, make) () =
  let a = workload_json make ~seed:97 ~domains:1 in
  let b = workload_json make ~seed:97 ~domains:1 in
  Alcotest.(check string) (name ^ " same seed is byte-identical") a b;
  let c = workload_json make ~seed:97 ~domains:4 in
  Alcotest.(check string) (name ^ " domains 1 vs 4 is byte-identical") a c

let suite =
  List.concat_map
    (fun entry ->
      let name = fst entry in
      [
        QCheck_alcotest.to_alcotest (qcheck_terminates_within_bound entry);
        QCheck_alcotest.to_alcotest (qcheck_lookup_matches_oracle entry);
        QCheck_alcotest.to_alcotest (qcheck_churn_preserves_invariants entry);
        Alcotest.test_case
          (name ^ ": metrics JSON deterministic across seed and domains")
          `Quick
          (test_deterministic_json entry);
      ])
    backends
