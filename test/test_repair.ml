(* Tests for Engine.Repair (trace correlation and the adaptive
   controller) and for the adaptive maintenance mode: hand-built span
   sequences yield exact latencies, qcheck pins the monotonicity /
   partition / bounds invariants, the repair experiment replays
   byte-identically from a seed, a no-op adaptive policy leaves the
   simulation's event stream untouched, and a crashed node's cached RTTs
   are never served stale. *)

module Sim = Engine.Sim
module Trace = Engine.Trace
module Repair = Engine.Repair
module Metrics = Engine.Metrics
module Probe = Engine.Probe
module Builder = Core.Builder
module Maintenance = Core.Maintenance
module Bus = Pubsub.Bus
module Can_overlay = Can.Overlay
module Ecan_exp = Ecan.Expressway
module Exp_repair = Workload.Exp_repair
module Json = Prelude.Json

let span ?(dur = 0.0) ?(node = -1) ?(peer = -1) ?(note = "") ~seq ~at kind =
  { Trace.seq; at; dur; kind; node; peer; note }

(* ---- hand-built correlation cases ---- *)

(* One crash, two departure notifications: latencies are exact. *)
let test_single_crash () =
  let spans =
    [
      span ~seq:0 ~at:50.0 ~node:7 ~peer:7 ~note:"01" Trace.Map_publish;
      span ~seq:1 ~at:100.0 ~node:7 ~note:"crash" Trace.Fault_inject;
      span ~seq:2 ~at:130.0 ~node:(-1) ~note:"2 purged" Trace.Ttl_sweep;
      span ~seq:3 ~at:130.0 ~dur:20.0 ~node:3 ~peer:4 ~note:"dep:7@01" Trace.Notify;
      span ~seq:4 ~at:130.0 ~dur:45.0 ~node:3 ~peer:5 ~note:"dep:7@01" Trace.Notify;
    ]
  in
  let r = Repair.analyze spans in
  Alcotest.(check int) "one fault" 1 (List.length r.Repair.records);
  Alcotest.(check int) "none unrepaired" 0 r.Repair.unrepaired;
  let rec0 = List.hd r.Repair.records in
  Alcotest.(check bool) "repaired" true (Repair.repaired rec0);
  Alcotest.(check int) "two notifications" 2 rec0.Repair.notifies;
  Alcotest.(check (float 1e-9)) "detection = first send - inject" 30.0 (Repair.detection_ms rec0);
  Alcotest.(check (float 1e-9)) "first notify delivered" 50.0 (Repair.first_notify_ms rec0);
  Alcotest.(check (float 1e-9)) "full repair = last delivery" 75.0 (Repair.repair_ms rec0);
  Alcotest.(check int) "one sweep waited on" 1 rec0.Repair.sweeps;
  Alcotest.(check (list string)) "region set" [ "01" ] rec0.Repair.regions

(* A fault with no matching notifications stays unrepaired; notifications
   about other nodes or sent before the injection never attach to it. *)
let test_unrepaired_and_misattribution () =
  let spans =
    [
      span ~seq:0 ~at:10.0 ~dur:5.0 ~node:3 ~peer:4 ~note:"dep:7@root" Trace.Notify;
      (* pre-injection: must not count *)
      span ~seq:1 ~at:100.0 ~node:7 ~note:"crash" Trace.Fault_inject;
      span ~seq:2 ~at:150.0 ~dur:5.0 ~node:3 ~peer:4 ~note:"dep:9@root" Trace.Notify;
      (* other victim *)
      span ~seq:3 ~at:150.0 ~dur:5.0 ~node:3 ~peer:4 ~note:"pub:7@root" Trace.Notify;
      (* wrong tag *)
    ]
  in
  let r = Repair.analyze spans in
  Alcotest.(check int) "one fault" 1 (List.length r.Repair.records);
  Alcotest.(check int) "unrepaired" 1 r.Repair.unrepaired;
  let rec0 = List.hd r.Repair.records in
  Alcotest.(check bool) "not repaired" false (Repair.repaired rec0);
  Alcotest.(check bool) "latency is nan" true (Float.is_nan (Repair.repair_ms rec0))

(* Re-injection: a victim that crashes, rejoins and crashes again gets two
   records, and each notification lands on the latest prior fault. *)
let test_reinjection_attribution () =
  let spans =
    [
      span ~seq:0 ~at:100.0 ~node:7 ~note:"crash" Trace.Fault_inject;
      span ~seq:1 ~at:120.0 ~dur:10.0 ~node:3 ~peer:4 ~note:"dep:7@root" Trace.Notify;
      span ~seq:2 ~at:500.0 ~node:7 ~note:"leave" Trace.Fault_inject;
      span ~seq:3 ~at:530.0 ~dur:10.0 ~node:3 ~peer:4 ~note:"dep:7@root" Trace.Notify;
    ]
  in
  let r = Repair.analyze spans in
  (match r.Repair.records with
  | [ a; b ] ->
    Alcotest.(check (float 1e-9)) "first fault repaired at 30" 30.0 (Repair.repair_ms a);
    Alcotest.(check (float 1e-9)) "second fault repaired at 40" 40.0 (Repair.repair_ms b);
    Alcotest.(check bool) "kinds differ" true (a.Repair.fault.Repair.kind = Repair.Crash);
    Alcotest.(check bool) "second is leave" true (b.Repair.fault.Repair.kind = Repair.Leave)
  | l -> Alcotest.failf "expected 2 records, got %d" (List.length l));
  Alcotest.(check int) "none unrepaired" 0 r.Repair.unrepaired

(* Region restriction: when the victim's region set is known, departure
   notifications in foreign regions are not its repair traffic. *)
let test_region_restriction () =
  let spans =
    [
      span ~seq:0 ~at:10.0 ~node:7 ~peer:7 ~note:"00" Trace.Map_publish;
      span ~seq:1 ~at:100.0 ~node:7 ~note:"crash" Trace.Fault_inject;
      span ~seq:2 ~at:150.0 ~dur:5.0 ~node:3 ~peer:4 ~note:"dep:7@11" Trace.Notify;
      (* foreign region: ignored *)
      span ~seq:3 ~at:180.0 ~dur:5.0 ~node:3 ~peer:4 ~note:"dep:7@00" Trace.Notify;
    ]
  in
  let r = Repair.analyze spans in
  let rec0 = List.hd r.Repair.records in
  Alcotest.(check int) "only the in-region notification" 1 rec0.Repair.notifies;
  Alcotest.(check (float 1e-9)) "detected by the in-region one" 80.0 (Repair.detection_ms rec0)

(* Republishes: map publishes by OTHERS into the victim's regions between
   injection and full repair are counted; the victim's own publishes and
   later publishes are not. *)
let test_republish_count () =
  let spans =
    [
      span ~seq:0 ~at:10.0 ~node:7 ~peer:7 ~note:"0" Trace.Map_publish;
      span ~seq:1 ~at:100.0 ~node:7 ~note:"crash" Trace.Fault_inject;
      span ~seq:2 ~at:110.0 ~node:3 ~peer:9 ~note:"0" Trace.Map_publish;
      (* counted *)
      span ~seq:3 ~at:115.0 ~node:3 ~peer:9 ~note:"1" Trace.Map_publish;
      (* foreign region *)
      span ~seq:4 ~at:120.0 ~dur:10.0 ~node:3 ~peer:4 ~note:"dep:7@0" Trace.Notify;
      span ~seq:5 ~at:500.0 ~node:3 ~peer:9 ~note:"0" Trace.Map_publish;
      (* after repair *)
    ]
  in
  let r = Repair.analyze spans in
  let rec0 = List.hd r.Repair.records in
  Alcotest.(check int) "one republish inside the repair window" 1 rec0.Repair.republishes

let test_dist_of () =
  let d = Repair.dist_of (Array.init 100 (fun i -> float_of_int (i + 1))) in
  Alcotest.(check int) "n" 100 d.Repair.n;
  Alcotest.(check (float 1e-6)) "p50" 50.5 d.Repair.p50;
  Alcotest.(check (float 1e-6)) "max" 100.0 d.Repair.max;
  let z = Repair.dist_of [||] in
  Alcotest.(check int) "empty n" 0 z.Repair.n;
  Alcotest.(check (float 1e-9)) "empty p99" 0.0 z.Repair.p99

(* record_metrics publishes one histogram sample per repaired fault and
   partition-consistent counters. *)
let test_record_metrics () =
  let spans =
    [
      span ~seq:0 ~at:100.0 ~node:7 ~note:"crash" Trace.Fault_inject;
      span ~seq:1 ~at:120.0 ~dur:10.0 ~node:3 ~peer:4 ~note:"dep:7@root" Trace.Notify;
      span ~seq:2 ~at:200.0 ~node:9 ~note:"leave" Trace.Fault_inject;
    ]
  in
  let m = Metrics.create () in
  let r = Repair.analyze spans in
  Repair.record_metrics m r;
  Alcotest.(check int) "faults counter" 2 (Metrics.count (Metrics.counter m "repair_faults"));
  Alcotest.(check int) "repaired counter" 1 (Metrics.count (Metrics.counter m "repair_repaired"));
  Alcotest.(check int) "unrepaired counter" 1
    (Metrics.count (Metrics.counter m "repair_unrepaired"));
  Alcotest.(check int) "one latency sample" 1
    (Metrics.observations (Metrics.histogram m "repair_latency_ms"))

(* ---- qcheck: correlation invariants over random span soups ---- *)

(* Random span streams mixing faults, notifications about random victims,
   sweeps and publishes — the analyzer must always satisfy the partition
   and monotonicity invariants no matter the soup. *)
let arbitrary_spans =
  QCheck.make
    ~print:(fun l -> Printf.sprintf "<%d spans>" (List.length l))
    QCheck.Gen.(
      let victim = int_range 0 5 in
      let time = map float_of_int (int_range 0 1000) in
      let fault_span seq =
        map2
          (fun v (at, crash) ->
            span ~seq ~at ~node:v ~note:(if crash then "crash" else "leave") Trace.Fault_inject)
          victim (pair time bool)
      in
      let notify_span seq =
        map2
          (fun v (at, dur) ->
            span ~seq ~at ~dur ~node:0 ~peer:1
              ~note:(Printf.sprintf "dep:%d@root" v)
              Trace.Notify)
          victim
          (pair time (map float_of_int (int_range 0 100)))
      in
      let sweep_span seq = map (fun at -> span ~seq ~at ~note:"1 purged" Trace.Ttl_sweep) time in
      let publish_span seq =
        map2 (fun v at -> span ~seq ~at ~node:0 ~peer:v ~note:"root" Trace.Map_publish) victim time
      in
      let any seq = oneof [ fault_span seq; notify_span seq; sweep_span seq; publish_span seq ] in
      sized (fun n ->
          let rec go i acc = if i >= min n 60 then return acc
            else any i >>= fun s -> go (i + 1) (s :: acc)
          in
          go 0 []))

let qcheck_partition_and_monotone =
  QCheck.Test.make ~name:"analyze partitions faults and keeps timestamps monotone" ~count:300
    arbitrary_spans (fun spans ->
      let r = Repair.analyze spans in
      let faults =
        List.length
          (List.filter
             (fun (s : Trace.span) ->
               s.Trace.kind = Trace.Fault_inject && s.Trace.node >= 0
               && (s.Trace.note = "crash" || s.Trace.note = "leave"))
             spans)
      in
      let repaired = List.filter Repair.repaired r.Repair.records in
      List.length r.Repair.records = faults
      && List.length repaired + r.Repair.unrepaired = faults
      && List.for_all
           (fun rc ->
             let f = rc.Repair.fault in
             f.Repair.injected_at <= rc.Repair.detected_at
             && rc.Repair.detected_at <= rc.Repair.first_notify
             && rc.Repair.first_notify <= rc.Repair.last_notify
             && Repair.detection_ms rc >= 0.0
             && Repair.repair_ms rc >= Repair.first_notify_ms rc)
           repaired
      && List.for_all
           (fun rc -> Float.is_nan (Repair.repair_ms rc) && rc.Repair.notifies = 0)
           (List.filter (fun rc -> not (Repair.repaired rc)) r.Repair.records))

let qcheck_analyze_order_independent =
  QCheck.Test.make ~name:"analyze is independent of span arrival order" ~count:100
    arbitrary_spans (fun spans ->
      let a = Repair.analyze spans in
      let b = Repair.analyze (List.rev spans) in
      (* structural compare, not (=): unrepaired records carry nans *)
      compare a b = 0)

(* ---- qcheck: controller bounds ---- *)

let qcheck_controller_bounds =
  QCheck.Test.make ~name:"controller periods always stay within the policy bounds" ~count:200
    QCheck.(
      pair (int_range 0 100_000)
        (list_of_size Gen.(int_range 0 80) (int_range 0 100_000)))
    (fun (seed, samples) ->
      let p =
        {
          Repair.default_policy with
          Repair.target_ms = 10_000.0;
          window = 1 + (seed mod 5);
          step = 1.5 +. (float_of_int (seed mod 10) /. 10.0);
          min_refresh = 1_000.0;
          max_refresh = 50_000.0;
          min_sweep = 200.0;
          max_sweep = 8_000.0;
        }
      in
      let c = Repair.controller ~refresh:(float_of_int (1 + (seed mod 60_000))) p in
      List.for_all
        (fun s ->
          ignore (Repair.observe c (float_of_int s));
          Repair.refresh_period c >= p.Repair.min_refresh
          && Repair.refresh_period c <= p.Repair.max_refresh
          && Repair.sweep_period c >= p.Repair.min_sweep
          && Repair.sweep_period c <= p.Repair.max_sweep)
        samples
      && Repair.observed c = List.length samples)

let qcheck_controller_digest_bounds =
  QCheck.Test.make
    ~name:"digest-tuning controller keeps the window within [min_digest, max_digest]"
    ~count:200
    QCheck.(
      triple (int_range 0 100_000)
        (list_of_size Gen.(int_range 0 80) (int_range 0 100_000))
        (float_range 0.0 500.0))
    (fun (seed, samples, digest0) ->
      let p =
        {
          Repair.default_policy with
          Repair.target_ms = 10_000.0;
          window = 1 + (seed mod 5);
          step = 1.5 +. (float_of_int (seed mod 10) /. 10.0);
          sample_pct = 50.0 +. float_of_int (seed mod 51);
          min_refresh = 1_000.0;
          max_refresh = 50_000.0;
          min_sweep = 200.0;
          max_sweep = 8_000.0;
          min_digest = 5.0;
          max_digest = 120.0;
        }
      in
      let c =
        Repair.controller ~refresh:(float_of_int (1 + (seed mod 60_000))) ~digest:digest0 p
      in
      let in_bounds () =
        match Repair.digest_window c with
        | Some w -> w >= p.Repair.min_digest && w <= p.Repair.max_digest
        | None -> false
      in
      in_bounds ()
      && List.for_all
           (fun s ->
             ignore (Repair.observe c (float_of_int s));
             in_bounds ())
           samples)

let test_controller_digest_inert_without_bounds () =
  (* max_digest = 0 (the default) leaves digest tuning off: the window
     holds whatever it started at and digest_window reports None, so
     Maintenance never touches the bus. *)
  let c = Repair.controller ~refresh:10_000.0 ~digest:50.0 Repair.default_policy in
  Alcotest.(check bool) "no digest tuning by default" true (Repair.digest_window c = None);
  for _ = 1 to 20 do
    ignore (Repair.observe c 1_000_000.0)
  done;
  Alcotest.(check bool) "still none after pressure" true (Repair.digest_window c = None)

let test_controller_directions () =
  let p =
    {
      Repair.default_policy with
      Repair.target_ms = 10_000.0;
      headroom = 0.5;
      window = 2;
      step = 2.0;
      min_refresh = 1_000.0;
      max_refresh = 100_000.0;
      min_sweep = 100.0;
      max_sweep = 10_000.0;
    }
  in
  let c = Repair.controller ~refresh:10_000.0 ~sweep:1_000.0 p in
  (* Over target: refresh up, sweep down — only on the window boundary. *)
  Alcotest.(check bool) "first sample holds" false (Repair.observe c 50_000.0);
  Alcotest.(check (float 1e-9)) "unchanged mid-window" 10_000.0 (Repair.refresh_period c);
  Alcotest.(check bool) "window closes, adjusts" true (Repair.observe c 50_000.0);
  Alcotest.(check (float 1e-9)) "refresh doubled" 20_000.0 (Repair.refresh_period c);
  Alcotest.(check (float 1e-9)) "sweep halved" 500.0 (Repair.sweep_period c);
  (* Comfortably under the headroom: both step back. *)
  ignore (Repair.observe c 1_000.0);
  Alcotest.(check bool) "relax" true (Repair.observe c 2_000.0);
  Alcotest.(check (float 1e-9)) "refresh back" 10_000.0 (Repair.refresh_period c);
  Alcotest.(check (float 1e-9)) "sweep back" 1_000.0 (Repair.sweep_period c);
  (* In the dead band: hold. *)
  ignore (Repair.observe c 7_000.0);
  Alcotest.(check bool) "hold in band" false (Repair.observe c 7_000.0);
  Alcotest.(check int) "two moves so far" 2 (Repair.adjustments c)

let test_controller_validation () =
  let expect_invalid p =
    match Repair.controller p with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid { Repair.default_policy with Repair.target_ms = 0.0 };
  expect_invalid { Repair.default_policy with Repair.headroom = 1.5 };
  expect_invalid { Repair.default_policy with Repair.window = 0 };
  expect_invalid { Repair.default_policy with Repair.step = 1.0 };
  expect_invalid { Repair.default_policy with Repair.min_refresh = 0.0 };
  expect_invalid
    { Repair.default_policy with Repair.min_sweep = 10.0; max_sweep = 5.0 }

(* ---- adaptive maintenance: determinism and no-op equivalence ---- *)

(* Two full experiment runs from the same seed into fresh registries must
   serialize byte-identically — the determinism contract that makes the
   bench baseline gate meaningful. *)
let test_exp_repair_deterministic () =
  let dump () =
    let m = Metrics.create () in
    let r = Exp_repair.run_one ~scale:32 ~seed:7 ~metrics:m Exp_repair.adaptive in
    (Json.to_string (Metrics.to_json m), r.Exp_repair.adaptations, r.Exp_repair.final_sweep)
  in
  let j1, a1, s1 = dump () and j2, a2, s2 = dump () in
  Alcotest.(check string) "metrics JSON byte-identical" j1 j2;
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "repair instruments present" true (contains j1 "repair_latency_ms");
  Alcotest.(check int) "same adjustments" a1 a2;
  Alcotest.(check (float 0.0)) "same final sweep" s1 s2

(* The adaptive machinery must be inert when the policy cannot move: a
   controller clamped to its starting periods observes everything but
   never retunes, so the traced event stream — publishes, notifications,
   sweeps, faults — is identical to a run with no controller at all. *)
let run_storm ?adapt () =
  let oracle = Workload.Ctx.oracle ~scale:32 Workload.Ctx.Tsk_large Topology.Transit_stub.Manual in
  let sim = Sim.create () in
  let tracer = Trace.create ~clock:(fun () -> Sim.now sim) () in
  let faults = Engine.Faults.create ~seed:99 () in
  let metrics = Metrics.create () in
  let b =
    Builder.build ~metrics ~trace:tracer
      ~clock:(fun () -> Sim.now sim)
      oracle
      { Builder.default_config with Builder.overlay_size = 24; ttl = 30_000.0; seed = 5 }
  in
  let can = Ecan_exp.can b.Builder.ecan in
  let m =
    Maintenance.start ~sim ~metrics ~trace:tracer ~refresh_period:10_000.0 ~sweep_period:2_000.0
      ~channel:(Engine.Faults.perturb faults) ?adapt b
  in
  Maintenance.subscribe_all_slots m;
  let drv = Prelude.Rng.create 17 in
  let handler (ev : Engine.Faults.event) =
    match ev.Engine.Faults.action with
    | Engine.Faults.Crash | Engine.Faults.Leave ->
      let ids = Can_overlay.node_ids can in
      if Array.length ids > 8 then begin
        let victim = Prelude.Rng.pick drv ids in
        if ev.Engine.Faults.action = Engine.Faults.Crash then Maintenance.node_crashes m victim
        else Maintenance.node_departs m victim
      end
    | Engine.Faults.Join -> ()
    | Engine.Faults.Expire fraction ->
      ignore (Softstate.Store.inject_staleness b.Builder.store ~rng:drv ~fraction)
  in
  let storm =
    {
      Engine.Faults.crashes = 4;
      leaves = 2;
      joins = 0;
      expire_bursts = 1;
      expire_fraction = 0.1;
      start = 5_000.0;
      spread = 20_000.0;
    }
  in
  Engine.Faults.install faults ~sim ~plan:(Engine.Faults.plan faults storm) ~handler;
  Sim.run ~until:80_000.0 sim;
  let out =
    ( Trace.spans tracer,
      Maintenance.reselections m,
      Bus.delivered_count (Maintenance.bus m),
      Maintenance.refresh_period m,
      Maintenance.sweep_period m )
  in
  Maintenance.stop m;
  out

let test_noop_policy_equivalence () =
  let noop =
    {
      Repair.default_policy with
      Repair.min_refresh = 10_000.0;
      max_refresh = 10_000.0;
      min_sweep = 2_000.0;
      max_sweep = 2_000.0;
    }
  in
  let spans_a, resel_a, deliv_a, _, _ = run_storm () in
  let spans_b, resel_b, deliv_b, fr, fs = run_storm ~adapt:noop () in
  Alcotest.(check int) "same reselections" resel_a resel_b;
  Alcotest.(check int) "same deliveries" deliv_a deliv_b;
  Alcotest.(check (float 0.0)) "refresh pinned" 10_000.0 fr;
  Alcotest.(check (float 0.0)) "sweep pinned" 2_000.0 fs;
  Alcotest.(check int) "same span count" (List.length spans_a) (List.length spans_b);
  Alcotest.(check bool) "identical span streams" true (spans_a = spans_b)

(* An adaptive run against a real storm must actually move the periods —
   and end inside the policy bounds. *)
let test_adaptive_moves_and_stays_bounded () =
  let p =
    {
      Repair.default_policy with
      Repair.target_ms = 8_000.0;
      window = 3;
      step = 2.0;
      min_refresh = 5_000.0;
      max_refresh = 25_000.0;
      min_sweep = 500.0;
      max_sweep = 4_000.0;
    }
  in
  let _, _, _, fr, fs = run_storm ~adapt:p () in
  Alcotest.(check bool) "refresh inside bounds" true (fr >= 5_000.0 && fr <= 25_000.0);
  Alcotest.(check bool) "sweep inside bounds" true (fs >= 500.0 && fs <= 4_000.0);
  Alcotest.(check bool) "periods moved off the start" true
    (fr <> 10_000.0 || fs <> 2_000.0)

(* ---- probe cache vs crash faults ---- *)

(* A crash must invalidate the victim's cached RTTs: the next probe of any
   pair involving it is a miss, never a stale hit. *)
let test_probe_cache_invalidated_on_crash () =
  let oracle = Workload.Ctx.oracle ~scale:32 Workload.Ctx.Tsk_large Topology.Transit_stub.Manual in
  let sim = Sim.create () in
  let b =
    Builder.build
      ~clock:(fun () -> Sim.now sim)
      oracle
      {
        Builder.default_config with
        Builder.overlay_size = 24;
        probe = { Probe.default_config with Probe.cache_ttl = Float.infinity };
        seed = 3;
      }
  in
  let m = Maintenance.start ~sim b in
  let prober = b.Builder.prober in
  let ids = Can_overlay.node_ids (Ecan_exp.can b.Builder.ecan) in
  let a = ids.(0) and v = ids.(1) in
  ignore (Probe.rtt prober ~src:a ~dst:v);
  let misses_before = Probe.cache_misses prober in
  ignore (Probe.rtt prober ~src:a ~dst:v);
  Alcotest.(check int) "second probe hits the cache" misses_before (Probe.cache_misses prober);
  Maintenance.node_crashes m v;
  (* The crash handling itself probes (table rebuilds), so snapshot the
     counters only now: the next (a, v) probe must be a miss, not a stale
     hit. *)
  let hits_after_crash = Probe.cache_hits prober in
  let misses_after_crash = Probe.cache_misses prober in
  ignore (Probe.rtt prober ~src:a ~dst:v);
  Alcotest.(check int) "post-crash probe does not hit stale cache" hits_after_crash
    (Probe.cache_hits prober);
  Alcotest.(check int) "post-crash probe re-measures" (misses_after_crash + 1)
    (Probe.cache_misses prober);
  Maintenance.stop m

let suite =
  [
    Alcotest.test_case "single crash yields exact latencies" `Quick test_single_crash;
    Alcotest.test_case "unrepaired faults and misattribution" `Quick
      test_unrepaired_and_misattribution;
    Alcotest.test_case "re-injected victims do not cross-talk" `Quick
      test_reinjection_attribution;
    Alcotest.test_case "region set restricts correlation" `Quick test_region_restriction;
    Alcotest.test_case "republishes counted inside the repair window" `Quick
      test_republish_count;
    Alcotest.test_case "dist_of quantiles" `Quick test_dist_of;
    Alcotest.test_case "record_metrics publishes the partition" `Quick test_record_metrics;
    QCheck_alcotest.to_alcotest qcheck_partition_and_monotone;
    QCheck_alcotest.to_alcotest qcheck_analyze_order_independent;
    QCheck_alcotest.to_alcotest qcheck_controller_bounds;
    QCheck_alcotest.to_alcotest qcheck_controller_digest_bounds;
    Alcotest.test_case "digest tuning inert without bounds" `Quick
      test_controller_digest_inert_without_bounds;
    Alcotest.test_case "controller control directions" `Quick test_controller_directions;
    Alcotest.test_case "controller rejects bad policies" `Quick test_controller_validation;
    Alcotest.test_case "repair experiment replays byte-identically" `Quick
      test_exp_repair_deterministic;
    Alcotest.test_case "no-op adaptive policy changes nothing" `Quick
      test_noop_policy_equivalence;
    Alcotest.test_case "adaptive run moves periods within bounds" `Quick
      test_adaptive_moves_and_stays_bounded;
    Alcotest.test_case "crash invalidates the victim's cached RTTs" `Quick
      test_probe_cache_invalidated_on_crash;
  ]
