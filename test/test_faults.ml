(* Tests for the fault-injection subsystem and the churn convergence
   oracles: seeded plans replay byte-identically, oracles pass on clean
   overlays and catch corrupted ones, and the full churn workload repairs
   every overlay after a storm — deterministically. *)

module Sim = Engine.Sim
module Faults = Engine.Faults
module Oracle = Topology.Oracle
module Builder = Core.Builder
module Ecan_exp = Ecan.Expressway
module Ring = Chord.Ring
module Mesh = Pastry.Mesh
module Exp_churn = Workload.Exp_churn
module Can_overlay = Can.Overlay
module Rng = Prelude.Rng

let oracle = lazy (Workload.Ctx.oracle ~scale:32 Workload.Ctx.Tsk_large Topology.Transit_stub.Manual)

let small_storm =
  {
    Faults.crashes = 3;
    leaves = 3;
    joins = 6;
    expire_bursts = 1;
    expire_fraction = 0.1;
    start = 5_000.0;
    spread = 15_000.0;
  }

let lossy = { Faults.loss = 0.1; delay_min = 5.0; delay_max = 50.0 }

(* ---- trace determinism (the replay contract) ---- *)

let action_name = function
  | Faults.Crash -> "crash"
  | Faults.Leave -> "leave"
  | Faults.Join -> "join"
  | Faults.Expire _ -> "expire"

(* One full injector lifecycle: plan, install, run, perturb a message
   stream.  Returns the trace digest. *)
let injector_digest ~seed ~storm ~channel ~perturbs =
  let f = Faults.create ~channel ~seed () in
  let sim = Sim.create () in
  let plan = Faults.plan f storm in
  Faults.install f ~sim ~plan ~handler:(fun ev -> Faults.note f (action_name ev.Faults.action));
  Sim.run sim;
  for i = 1 to perturbs do
    ignore (Faults.perturb f (float_of_int i))
  done;
  Faults.trace_digest f

let qcheck_replay_identical =
  QCheck.Test.make ~name:"same seed replays a byte-identical trace" ~count:60
    QCheck.(
      quad (int_range 0 100_000) (int_range 0 12) (int_range 0 12) (int_range 0 100))
    (fun (seed, crashes, joins, loss_pct) ->
      let storm =
        { small_storm with Faults.crashes; joins; leaves = crashes / 2 }
      in
      let channel =
        { Faults.loss = float_of_int loss_pct /. 100.0; delay_min = 1.0; delay_max = 10.0 }
      in
      let d1 = injector_digest ~seed ~storm ~channel ~perturbs:25 in
      let d2 = injector_digest ~seed ~storm ~channel ~perturbs:25 in
      String.equal d1 d2)

let qcheck_plan_shape =
  QCheck.Test.make ~name:"plans are sorted, in-window, and complete" ~count:100
    QCheck.(pair (int_range 0 100_000) (int_range 0 15))
    (fun (seed, n) ->
      let storm = { small_storm with Faults.crashes = n; leaves = n; joins = n } in
      let f = Faults.create ~seed () in
      let plan = Faults.plan f storm in
      let count p = List.length (List.filter p plan) in
      let sorted = ref true and in_window = ref true in
      let last = ref neg_infinity in
      List.iter
        (fun (ev : Faults.event) ->
          if ev.Faults.at < !last then sorted := false;
          last := ev.Faults.at;
          if ev.Faults.at < storm.Faults.start
             || ev.Faults.at >= storm.Faults.start +. storm.Faults.spread
          then in_window := false)
        plan;
      !sorted && !in_window
      && count (fun e -> e.Faults.action = Faults.Crash) = n
      && count (fun e -> e.Faults.action = Faults.Leave) = n
      && count (fun e -> e.Faults.action = Faults.Join) = n
      && count (fun e -> match e.Faults.action with Faults.Expire _ -> true | _ -> false)
         = storm.Faults.expire_bursts)

let test_reliable_channel_is_transparent () =
  let f = Faults.create ~seed:3 () in
  for i = 0 to 9 do
    match Faults.perturb f (float_of_int i) with
    | Some d -> Alcotest.(check (float 1e-9)) "base delay preserved" (float_of_int i) d
    | None -> Alcotest.fail "reliable channel dropped a message"
  done;
  Alcotest.(check int) "all messages counted" 10 (Faults.messages f);
  Alcotest.(check int) "none dropped" 0 (Faults.dropped f)

let test_lossy_channel_bounds () =
  let f = Faults.create ~channel:{ Faults.loss = 0.5; delay_min = 2.0; delay_max = 8.0 } ~seed:4 () in
  let delivered = ref 0 in
  for _ = 1 to 200 do
    match Faults.perturb f 10.0 with
    | Some d ->
      incr delivered;
      Alcotest.(check bool) "delay within channel bounds" true (d >= 12.0 && d < 18.0)
    | None -> ()
  done;
  Alcotest.(check int) "drop counter consistent" (200 - !delivered) (Faults.dropped f);
  Alcotest.(check bool) "some dropped at 50% loss" true (Faults.dropped f > 50);
  Alcotest.(check bool) "some delivered at 50% loss" true (!delivered > 50)

(* ---- convergence oracles ---- *)

let small_builder () =
  let oracle = Lazy.force oracle in
  Builder.build oracle { Builder.default_config with Builder.overlay_size = 64; seed = 3 }

let test_ecan_oracle_clean () =
  let b = small_builder () in
  match Exp_churn.ecan_convergence b with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("clean overlay should converge: " ^ m)

let test_ecan_oracle_detects_corruption () =
  let b = small_builder () in
  let ecan = b.Builder.ecan in
  let can = Ecan_exp.can ecan in
  (* Blow away every table: far more than tolerance's worth of unfilled
     slots whose regions are inhabited. *)
  Array.iter
    (fun id ->
      for row = 0 to Ecan_exp.rows ecan id - 1 do
        let own = Ecan_exp.own_digit ecan id ~row in
        for digit = 0 to (1 lsl Ecan_exp.span_bits ecan) - 1 do
          if digit <> own then Ecan_exp.set_entry ecan id ~row ~digit None
        done
      done)
    (Can_overlay.node_ids can);
  (match Exp_churn.ecan_convergence b with
  | Ok () -> Alcotest.fail "emptied tables must not pass the oracle"
  | Error _ -> ());
  (* The oracle must restore the churned (here: emptied) tables. *)
  Array.iter
    (fun id ->
      Alcotest.(check int) "snapshot restored" 0 (List.length (Ecan_exp.entries ecan id)))
    (Can_overlay.node_ids can)

let first_candidate ~node ~candidates =
  let rec go i =
    if i >= Array.length candidates then None
    else if candidates.(i) <> node then Some candidates.(i)
    else go (i + 1)
  in
  go 0

let test_chord_oracle () =
  let oracle = Lazy.force oracle in
  let rng = Rng.create 21 in
  let members = Rng.sample rng 64 (Array.init (Oracle.node_count oracle) (fun i -> i)) in
  let ring = Ring.create () in
  Array.iter (fun id -> Ring.add_node ring ~rng id) members;
  Ring.build_fingers ring ~selector:(fun ~node ~arc:_ ~candidates -> first_candidate ~node ~candidates);
  (match Exp_churn.chord_convergence ~seed:5 ring with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("freshly built ring should converge: " ^ m));
  (* Tear out several members: their fingers vanish and fingers pointing
     at them are cleared, leaving inhabited arcs uncovered. *)
  for i = 0 to 7 do
    Ring.remove_node ring members.(i)
  done;
  (match Exp_churn.chord_convergence ~seed:5 ring with
  | Ok () -> Alcotest.fail "unrepaired ring must not pass the oracle"
  | Error _ -> ());
  Ring.build_fingers ring ~selector:(fun ~node ~arc:_ ~candidates -> first_candidate ~node ~candidates);
  match Exp_churn.chord_convergence ~seed:5 ring with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("rebuilt ring should converge again: " ^ m)

let test_pastry_oracle () =
  let oracle = Lazy.force oracle in
  let rng = Rng.create 22 in
  let members = Rng.sample rng 64 (Array.init (Oracle.node_count oracle) (fun i -> i)) in
  let mesh = Mesh.create () in
  Array.iter (fun id -> Mesh.add_node mesh ~rng id) members;
  let build () =
    Mesh.build_tables mesh ~selector:(fun ~node ~prefix:_ ~candidates ->
        first_candidate ~node ~candidates)
  in
  build ();
  (match Exp_churn.pastry_convergence ~seed:6 mesh with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("freshly built mesh should converge: " ^ m));
  (* Remove nodes that other members actually reference in their routing
     tables, so the removals are guaranteed to leave cleared slots. *)
  let referenced = Hashtbl.create 64 in
  Array.iter
    (fun id -> List.iter (fun (_, _, t) -> Hashtbl.replace referenced t ()) (Mesh.table_entries mesh id))
    (Mesh.node_ids mesh);
  let victims = ref [] in
  Hashtbl.iter (fun t () -> if List.length !victims < 8 then victims := t :: !victims) referenced;
  List.iter (fun v -> Mesh.remove_node mesh v) !victims;
  (match Exp_churn.pastry_convergence ~seed:6 mesh with
  | Ok () -> Alcotest.fail "unrepaired mesh must not pass the oracle"
  | Error _ -> ());
  build ();
  match Exp_churn.pastry_convergence ~seed:6 mesh with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("rebuilt mesh should converge again: " ^ m)

(* ---- full churn workload ---- *)

let test_ecan_storm_repairs () =
  let oracle = Lazy.force oracle in
  let ecan_o, can_o =
    Exp_churn.ecan_outcomes ~size:48 ~seed:5 ~storm:small_storm ~channel:lossy oracle
  in
  Alcotest.(check bool) "eCAN converges after the storm" true ecan_o.Exp_churn.converged;
  Alcotest.(check bool) "repair latency is finite" false
    (Float.is_nan ecan_o.Exp_churn.repair_ms);
  Alcotest.(check bool) "repair latency non-negative" true (ecan_o.Exp_churn.repair_ms >= 0.0);
  Alcotest.(check bool) "pub/sub did repair work" true (ecan_o.Exp_churn.repair_work > 0);
  Alcotest.(check bool) "notifications were sent" true (ecan_o.Exp_churn.notifications > 0);
  Alcotest.(check bool) "CAN substrate stays consistent" true can_o.Exp_churn.converged

let test_chord_pastry_storm_repairs () =
  let oracle = Lazy.force oracle in
  let chord_o = Exp_churn.chord_outcome ~size:48 ~seed:5 ~storm:small_storm oracle in
  Alcotest.(check bool) "Chord converges after the storm" true chord_o.Exp_churn.converged;
  Alcotest.(check bool) "stabilisation did work" true (chord_o.Exp_churn.repair_work > 0);
  let pastry_o = Exp_churn.pastry_outcome ~size:48 ~seed:5 ~storm:small_storm oracle in
  Alcotest.(check bool) "Pastry converges after the storm" true pastry_o.Exp_churn.converged;
  Alcotest.(check bool) "stabilisation did work" true (pastry_o.Exp_churn.repair_work > 0)

(* The maintenance-plane knobs under churn: the full churn driver still
   converges with a sharded store and digest-batched notifications, and
   the sharded store's invariants (shard assignment, reverse indexes,
   heap coverage) hold at every point of a raw maintenance storm. *)
let test_sharded_digest_churn () =
  let oracle = Lazy.force oracle in
  let ecan_o, _ =
    Exp_churn.ecan_outcomes ~size:48 ~seed:5 ~storm:small_storm ~channel:lossy ~shards:4
      ~digest_window:40.0 oracle
  in
  Alcotest.(check bool) "converges with sharded store + digests" true
    ecan_o.Exp_churn.converged;
  Alcotest.(check bool) "notifications still flow" true (ecan_o.Exp_churn.notifications > 0);
  (* Raw maintenance storm with a mid-run invariant probe. *)
  let sim = Sim.create () in
  let b =
    Builder.build
      ~clock:(fun () -> Sim.now sim)
      oracle
      { Builder.default_config with Builder.overlay_size = 48; ttl = 60_000.0; shards = 3; seed = 7 }
  in
  let store = b.Builder.store in
  Alcotest.(check int) "builder wired the shards through" 3
    (Softstate.Store.shard_count store);
  let m =
    Core.Maintenance.start ~sim ~refresh_period:20_000.0 ~sweep_period:5_000.0
      ~digest_window:40.0 b
  in
  Core.Maintenance.subscribe_all_slots m;
  let can = Ecan_exp.can b.Builder.ecan in
  let drv = Rng.create 99 in
  let assert_invariants () =
    match Softstate.Store.check_invariants store with
    | Ok () -> ()
    | Error e -> Alcotest.fail ("sharded invariants violated mid-churn: " ^ e)
  in
  let joiners =
    Array.of_seq
      (Seq.filter
         (fun i -> not (Can_overlay.mem can i))
         (Seq.init (Oracle.node_count oracle) (fun i -> i)))
  in
  List.iteri
    (fun i delay ->
      ignore
        (Sim.schedule sim ~delay (fun () ->
          match i mod 3 with
          | 0 -> Core.Maintenance.node_crashes m (Rng.pick drv (Can_overlay.node_ids can))
          | 1 -> Core.Maintenance.node_departs m (Rng.pick drv (Can_overlay.node_ids can))
          | _ -> Core.Maintenance.node_joins m joiners.(i))))
    [ 10_000.0; 20_000.0; 30_000.0; 40_000.0; 50_000.0; 60_000.0 ];
  ignore (Sim.every sim ~period:7_500.0 assert_invariants);
  Sim.run ~until:150_000.0 sim;
  assert_invariants ();
  Core.Maintenance.stop m

let test_storm_metrics_deterministic () =
  let oracle = Lazy.force oracle in
  let run () = Exp_churn.ecan_outcomes ~size:48 ~seed:9 ~storm:small_storm ~channel:lossy oracle in
  let a = run () and b = run () in
  Alcotest.(check bool) "same seed, same metrics" true (a = b);
  let c = Exp_churn.chord_outcome ~size:48 ~seed:9 ~storm:small_storm oracle in
  let d = Exp_churn.chord_outcome ~size:48 ~seed:9 ~storm:small_storm oracle in
  Alcotest.(check bool) "chord metrics deterministic" true (c = d)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_replay_identical;
    QCheck_alcotest.to_alcotest qcheck_plan_shape;
    Alcotest.test_case "reliable channel is transparent" `Quick test_reliable_channel_is_transparent;
    Alcotest.test_case "lossy channel bounds" `Quick test_lossy_channel_bounds;
    Alcotest.test_case "ecan oracle: clean overlay passes" `Quick test_ecan_oracle_clean;
    Alcotest.test_case "ecan oracle: corruption detected, snapshot restored" `Quick
      test_ecan_oracle_detects_corruption;
    Alcotest.test_case "chord oracle: storm then rebuild" `Quick test_chord_oracle;
    Alcotest.test_case "pastry oracle: storm then rebuild" `Quick test_pastry_oracle;
    Alcotest.test_case "ecan storm repairs" `Quick test_ecan_storm_repairs;
    Alcotest.test_case "sharded store + digests under churn" `Quick test_sharded_digest_churn;
    Alcotest.test_case "chord/pastry storm repairs" `Quick test_chord_pastry_storm_repairs;
    Alcotest.test_case "storm metrics deterministic" `Quick test_storm_metrics_deterministic;
  ]
