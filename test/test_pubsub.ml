(* Tests for the publish/subscribe bus. *)

module Bus = Pubsub.Bus
module Store = Softstate.Store
module Can_overlay = Can.Overlay
module Number = Landmark.Number
module Point = Geometry.Point
module Sim = Engine.Sim
module Rng = Prelude.Rng

let scheme = Number.default_scheme ~max_latency:100.0 ()

let setup ?(n = 30) ~seed () =
  let rng = Rng.create seed in
  let can = Can_overlay.create ~dims:2 0 in
  for id = 1 to n - 1 do
    ignore (Can_overlay.join can id (Point.random rng 2))
  done;
  let sim = Sim.create () in
  let store = Store.create ~clock:(fun () -> Sim.now sim) ~scheme can in
  let bus = Bus.create ~sim store in
  (bus, sim, rng)

let vec rng = Array.init 5 (fun _ -> Rng.float rng 100.0)

let test_any_new_entry () =
  let bus, sim, rng = setup ~seed:1 () in
  let events = ref [] in
  let _sub =
    Bus.subscribe bus ~subscriber:7 ~region:[||] ~condition:Bus.Any_new_entry
      ~handler:(fun n -> events := n :: !events)
  in
  Bus.publish bus ~region:[||] ~node:3 ~vector:(vec rng);
  Sim.run sim;
  Alcotest.(check int) "one notification" 1 (List.length !events);
  (match !events with
  | [ { Bus.subscriber; event = Bus.Entry_published { entry_node; _ }; _ } ] ->
    Alcotest.(check int) "subscriber" 7 subscriber;
    Alcotest.(check int) "entry node" 3 entry_node
  | _ -> Alcotest.fail "unexpected event shape");
  (* refresh of the same node must NOT re-notify *)
  Bus.publish bus ~region:[||] ~node:3 ~vector:(vec rng);
  Sim.run sim;
  Alcotest.(check int) "no notification on refresh" 1 (List.length !events)

let test_region_isolation () =
  let bus, sim, rng = setup ~seed:2 () in
  let fired = ref 0 in
  let _sub =
    Bus.subscribe bus ~subscriber:1 ~region:[| 0; 0 |] ~condition:Bus.Any_new_entry
      ~handler:(fun _ -> incr fired)
  in
  Bus.publish bus ~region:[| 1; 1 |] ~node:3 ~vector:(vec rng);
  Sim.run sim;
  Alcotest.(check int) "other region does not fire" 0 !fired;
  Bus.publish bus ~region:[| 0; 0 |] ~node:3 ~vector:(vec rng);
  Sim.run sim;
  Alcotest.(check int) "right region fires" 1 !fired

let test_closer_than () =
  let bus, sim, _ = setup ~seed:3 () in
  let mine = [| 10.0; 10.0; 10.0; 10.0; 10.0 |] in
  let fired = ref 0 in
  let _sub =
    Bus.subscribe bus ~subscriber:1 ~region:[||]
      ~condition:(Bus.Closer_than (mine, 5.0))
      ~handler:(fun _ -> incr fired)
  in
  (* far entry: no fire *)
  Bus.publish bus ~region:[||] ~node:2 ~vector:[| 90.0; 90.0; 90.0; 90.0; 90.0 |];
  Sim.run sim;
  Alcotest.(check int) "far newcomer ignored" 0 !fired;
  (* close entry: fire *)
  Bus.publish bus ~region:[||] ~node:3 ~vector:[| 11.0; 10.0; 10.0; 10.0; 10.0 |];
  Sim.run sim;
  Alcotest.(check int) "close newcomer fires" 1 !fired

let test_load_above () =
  let bus, sim, rng = setup ~seed:4 () in
  let fired = ref [] in
  let _sub =
    Bus.subscribe bus ~subscriber:1 ~region:[||]
      ~condition:(Bus.Load_above { watched = 5; threshold = 0.8 })
      ~handler:(fun n -> fired := n :: !fired)
  in
  Bus.publish bus ~region:[||] ~node:5 ~vector:(vec rng);
  Bus.update_load bus ~region:[||] ~node:5 ~load:0.5 ~capacity:1.0;
  Sim.run sim;
  Alcotest.(check int) "below threshold silent" 0 (List.length !fired);
  Bus.update_load bus ~region:[||] ~node:5 ~load:0.9 ~capacity:1.0;
  Sim.run sim;
  Alcotest.(check int) "above threshold fires" 1 (List.length !fired);
  (match !fired with
  | [ { Bus.event = Bus.Load_changed { load; _ }; _ } ] ->
    Alcotest.(check (float 0.0)) "load carried" 0.9 load
  | _ -> Alcotest.fail "unexpected event");
  (* a different node's load does not fire *)
  Bus.publish bus ~region:[||] ~node:6 ~vector:(vec rng);
  Bus.update_load bus ~region:[||] ~node:6 ~load:0.99 ~capacity:1.0;
  Sim.run sim;
  Alcotest.(check int) "other node silent" 1 (List.length !fired)

let test_departure () =
  let bus, sim, rng = setup ~seed:5 () in
  let fired = ref 0 in
  Bus.publish_all bus ~span_bits:2 ~node:9 ~vector:(vec rng);
  let _sub =
    Bus.subscribe bus ~subscriber:1 ~region:[||] ~condition:(Bus.Departure_of 9)
      ~handler:(fun _ -> incr fired)
  in
  Bus.depart bus ~node:9;
  Sim.run sim;
  Alcotest.(check int) "departure fires" 1 !fired;
  Alcotest.(check bool) "state retracted" true
    (Store.find (Bus.store bus) ~region:[||] ~node:9 = None)

let test_unsubscribe () =
  let bus, sim, rng = setup ~seed:6 () in
  let fired = ref 0 in
  let sub =
    Bus.subscribe bus ~subscriber:1 ~region:[||] ~condition:Bus.Any_new_entry
      ~handler:(fun _ -> incr fired)
  in
  Alcotest.(check int) "counted" 1 (Bus.subscription_count bus ~region:[||]);
  Bus.unsubscribe bus sub;
  Alcotest.(check int) "removed" 0 (Bus.subscription_count bus ~region:[||]);
  Bus.publish bus ~region:[||] ~node:2 ~vector:(vec rng);
  Sim.run sim;
  Alcotest.(check int) "no fire after unsubscribe" 0 !fired

let test_delivery_latency () =
  let rng = Rng.create 7 in
  let can = Can_overlay.create ~dims:2 0 in
  for id = 1 to 19 do
    ignore (Can_overlay.join can id (Point.random rng 2))
  done;
  let sim = Sim.create () in
  let store = Store.create ~clock:(fun () -> Sim.now sim) ~scheme can in
  let bus = Bus.create ~sim ~latency:(fun ~host:_ ~subscriber:_ -> 25.0) store in
  let delivered_at = ref (-1.0) in
  let _sub =
    Bus.subscribe bus ~subscriber:1 ~region:[||] ~condition:Bus.Any_new_entry
      ~handler:(fun n -> delivered_at := n.Bus.delivered_at)
  in
  Bus.publish bus ~region:[||] ~node:2 ~vector:(vec rng);
  Sim.run sim;
  Alcotest.(check (float 1e-9)) "delivered after the modeled latency" 25.0 !delivered_at

let test_multiple_subscribers () =
  let bus, sim, rng = setup ~seed:8 () in
  let fired = Array.make 3 0 in
  for i = 0 to 2 do
    ignore
      (Bus.subscribe bus ~subscriber:i ~region:[||] ~condition:Bus.Any_new_entry
         ~handler:(fun _ -> fired.(i) <- fired.(i) + 1))
  done;
  Bus.publish bus ~region:[||] ~node:9 ~vector:(vec rng);
  Sim.run sim;
  Array.iteri (fun i c -> Alcotest.(check int) (Printf.sprintf "sub %d fired" i) 1 c) fired

(* A handler that unsubscribes another subscription mid-dispatch: the
   victim must not be notified for the event being dispatched (nor later).
   Subscriptions are dispatched most-recent-first, so subscribe the victim
   first and the killer second. *)
let test_unsubscribe_during_dispatch () =
  let bus, sim, rng = setup ~seed:9 () in
  let victim_fired = ref 0 in
  let victim =
    Bus.subscribe bus ~subscriber:2 ~region:[||] ~condition:Bus.Any_new_entry
      ~handler:(fun _ -> incr victim_fired)
  in
  let _killer =
    Bus.subscribe bus ~subscriber:1 ~region:[||] ~condition:Bus.Any_new_entry
      ~handler:(fun _ -> Bus.unsubscribe bus victim)
  in
  Bus.publish bus ~region:[||] ~node:3 ~vector:(vec rng);
  Sim.run sim;
  Alcotest.(check int) "victim silenced by in-flight unsubscribe" 0 !victim_fired;
  Bus.publish bus ~region:[||] ~node:4 ~vector:(vec rng);
  Sim.run sim;
  Alcotest.(check int) "victim stays silent" 0 !victim_fired;
  Alcotest.(check int) "only the killer remains" 1 (Bus.subscription_count bus ~region:[||])

let test_duplicate_subscription () =
  let bus, sim, rng = setup ~seed:10 () in
  let fired = ref 0 in
  let handler _ = incr fired in
  let first =
    Bus.subscribe bus ~subscriber:1 ~region:[||] ~condition:Bus.Any_new_entry ~handler
  in
  let _second =
    Bus.subscribe bus ~subscriber:1 ~region:[||] ~condition:Bus.Any_new_entry ~handler
  in
  Bus.publish bus ~region:[||] ~node:5 ~vector:(vec rng);
  Sim.run sim;
  Alcotest.(check int) "identical subscriptions both fire" 2 !fired;
  Bus.unsubscribe bus first;
  Bus.publish bus ~region:[||] ~node:6 ~vector:(vec rng);
  Sim.run sim;
  Alcotest.(check int) "removing one duplicate leaves the other" 3 !fired

(* Channel-injected delay reorders deliveries: the engine must deliver in
   total-delay order regardless of send order, and delivered_at must carry
   the perturbed time. *)
let test_ordering_under_injected_delay () =
  let rng = Rng.create 11 in
  let can = Can_overlay.create ~dims:2 0 in
  for id = 1 to 19 do
    ignore (Can_overlay.join can id (Point.random rng 2))
  done;
  let sim = Sim.create () in
  let store = Store.create ~clock:(fun () -> Sim.now sim) ~scheme can in
  (* First message gets +30 ms, second +0: the second overtakes. *)
  let extras = ref [ 30.0; 0.0 ] in
  let channel base =
    match !extras with
    | e :: rest ->
      extras := rest;
      Some (base +. e)
    | [] -> Some base
  in
  let bus = Bus.create ~sim ~latency:(fun ~host:_ ~subscriber:_ -> 10.0) ~channel store in
  let deliveries = ref [] in
  let _sub =
    Bus.subscribe bus ~subscriber:1 ~region:[||] ~condition:Bus.Any_new_entry
      ~handler:(fun n ->
        match n.Bus.event with
        | Bus.Entry_published { entry_node; _ } ->
          deliveries := (entry_node, n.Bus.delivered_at) :: !deliveries
        | _ -> ())
  in
  Bus.publish bus ~region:[||] ~node:7 ~vector:(vec rng);
  Bus.publish bus ~region:[||] ~node:8 ~vector:(vec rng);
  Sim.run sim;
  (match List.rev !deliveries with
  | [ (n1, t1); (n2, t2) ] ->
    Alcotest.(check int) "delayed message overtaken" 8 n1;
    Alcotest.(check (float 1e-9)) "undelayed arrives at base latency" 10.0 t1;
    Alcotest.(check int) "perturbed message arrives last" 7 n2;
    Alcotest.(check (float 1e-9)) "perturbed arrival time" 40.0 t2
  | l -> Alcotest.fail (Printf.sprintf "expected 2 deliveries, got %d" (List.length l)));
  Alcotest.(check int) "both sent" 2 (Bus.sent_count bus);
  Alcotest.(check int) "both delivered" 2 (Bus.delivered_count bus);
  Alcotest.(check int) "none dropped" 0 (Bus.dropped_count bus)

let test_channel_drop () =
  let bus, sim, rng = setup ~seed:12 () in
  ignore bus;
  (* A fresh bus over the same store but with a black-hole channel. *)
  let store = Bus.store bus in
  let dead_bus = Bus.create ~sim ~channel:(fun _ -> None) store in
  let fired = ref 0 in
  let _sub =
    Bus.subscribe dead_bus ~subscriber:1 ~region:[||] ~condition:Bus.Any_new_entry
      ~handler:(fun _ -> incr fired)
  in
  Bus.publish dead_bus ~region:[||] ~node:3 ~vector:(vec rng);
  Sim.run sim;
  Alcotest.(check int) "nothing delivered through a black hole" 0 !fired;
  Alcotest.(check int) "send counted" 1 (Bus.sent_count dead_bus);
  Alcotest.(check int) "drop counted" 1 (Bus.dropped_count dead_bus);
  Alcotest.(check int) "no delivery counted" 0 (Bus.delivered_count dead_bus)

(* ---- digest batching ---- *)

let event_str = function
  | Bus.Entry_published { region; entry_node } ->
    Printf.sprintf "pub[%s]%d" (String.concat "" (List.map string_of_int (Array.to_list region))) entry_node
  | Bus.Entry_departed { region; entry_node } ->
    Printf.sprintf "dep[%s]%d" (String.concat "" (List.map string_of_int (Array.to_list region))) entry_node
  | Bus.Load_changed { region; entry_node; load } ->
    Printf.sprintf "load[%s]%d=%.3f"
      (String.concat "" (List.map string_of_int (Array.to_list region)))
      entry_node load

let test_digest_batches_per_subscriber () =
  let rng = Rng.create 13 in
  let can = Can_overlay.create ~dims:2 0 in
  for id = 1 to 29 do
    ignore (Can_overlay.join can id (Point.random rng 2))
  done;
  let sim = Sim.create () in
  let store = Store.create ~clock:(fun () -> Sim.now sim) ~scheme can in
  let bus = Bus.create ~sim ~digest_window:50.0 store in
  let per_sub = Array.make 3 [] in
  for s = 0 to 2 do
    ignore
      (Bus.subscribe bus ~subscriber:s ~region:[||] ~condition:Bus.Any_new_entry
         ~handler:(fun n ->
           (match n.Bus.event with
           | Bus.Entry_published { entry_node; _ } ->
             per_sub.(s) <- (entry_node, n.Bus.delivered_at) :: per_sub.(s)
           | _ -> ())))
  done;
  (* five publishes at the same instant: one digest per subscriber *)
  for node = 100 to 104 do
    Bus.publish bus ~region:[||] ~node ~vector:(vec rng)
  done;
  Sim.run sim;
  Alcotest.(check int) "15 notifications sent" 15 (Bus.sent_count bus);
  Alcotest.(check int) "all delivered" 15 (Bus.delivered_count bus);
  Alcotest.(check int) "but only one engine event per subscriber" 3 (Bus.batched_count bus);
  Array.iteri
    (fun s deliveries ->
      let deliveries = List.rev deliveries in
      Alcotest.(check (list int))
        (Printf.sprintf "sub %d gets the digest items in arrival order" s)
        [ 100; 101; 102; 103; 104 ]
        (List.map fst deliveries);
      List.iter
        (fun (_, at) ->
          Alcotest.(check (float 1e-9)) "delivered when the window closes" 50.0 at)
        deliveries)
    per_sub

let test_digest_unsubscribe_before_flush () =
  let bus, sim, rng = setup ~seed:14 () in
  ignore bus;
  let store = Bus.store bus in
  let dbus = Bus.create ~sim ~digest_window:50.0 store in
  let victim_fired = ref 0 and keeper_fired = ref 0 in
  let victim =
    Bus.subscribe dbus ~subscriber:1 ~region:[||] ~condition:Bus.Any_new_entry
      ~handler:(fun _ -> incr victim_fired)
  in
  let _keeper =
    Bus.subscribe dbus ~subscriber:2 ~region:[||] ~condition:Bus.Any_new_entry
      ~handler:(fun _ -> incr keeper_fired)
  in
  Bus.publish dbus ~region:[||] ~node:100 ~vector:(vec rng);
  (* the digest is pending; the victim unsubscribes before it flushes *)
  Bus.unsubscribe dbus victim;
  Sim.run sim;
  Alcotest.(check int) "unsubscribed before the flush: not delivered" 0 !victim_fired;
  Alcotest.(check int) "survivor delivered" 1 !keeper_fired

(* The same scripted op sequence (bursty publishes and departures over a
   lossy, delay-jittering channel) against a bus built with the given
   window.  Returns the delivery log and the bus accounting. *)
let run_script ?digest_window ~seed () =
  let rng = Rng.create seed in
  let can = Can_overlay.create ~dims:2 0 in
  for id = 1 to 29 do
    ignore (Can_overlay.join can id (Point.random rng 2))
  done;
  let sim = Sim.create () in
  let store = Store.create ~clock:(fun () -> Sim.now sim) ~scheme can in
  let k = ref 0 in
  let channel base =
    incr k;
    if !k mod 3 = 0 then None else Some (base +. float_of_int (!k mod 5))
  in
  let bus =
    Bus.create ~sim ~latency:(fun ~host:_ ~subscriber:_ -> 10.0) ~channel ?digest_window store
  in
  let log = ref [] in
  let watch s condition =
    ignore
      (Bus.subscribe bus ~subscriber:s ~region:[||] ~condition ~handler:(fun n ->
           log := (n.Bus.subscriber, event_str n.Bus.event, n.Bus.delivered_at) :: !log))
  in
  for s = 0 to 3 do
    watch s Bus.Any_new_entry
  done;
  watch 9 (Bus.Departure_of 100);
  let next = ref 100 in
  for step = 0 to 19 do
    Sim.run ~until:(float_of_int step *. 20.0) sim;
    match Rng.int rng 3 with
    | 0 | 1 ->
      Bus.publish bus ~region:[||] ~node:!next ~vector:(vec rng);
      incr next
    | _ -> if !next > 100 then Bus.depart bus ~node:(100 + Rng.int rng (!next - 100))
  done;
  Sim.run sim;
  ( List.rev !log,
    (Bus.sent_count bus, Bus.delivered_count bus, Bus.dropped_count bus, Bus.batched_count bus) )

(* The zero-window contract: building the bus with [~digest_window:0.0]
   is byte-for-byte the seed path — same deliveries, same order, same
   times, same accounting, no digests. *)
let test_digest_window_zero_is_seed_path () =
  let seed_log, (s1, d1, x1, b1) = run_script ~seed:42 () in
  let zero_log, (s2, d2, x2, b2) = run_script ~digest_window:0.0 ~seed:42 () in
  Alcotest.(check int) "same sent" s1 s2;
  Alcotest.(check int) "same delivered" d1 d2;
  Alcotest.(check int) "same dropped" x1 x2;
  Alcotest.(check int) "no digests either way" b1 b2;
  Alcotest.(check int) "no digests at window 0" 0 b2;
  Alcotest.(check int) "same delivery count" (List.length seed_log) (List.length zero_log);
  List.iter2
    (fun (sub1, ev1, at1) (sub2, ev2, at2) ->
      Alcotest.(check int) "same subscriber" sub1 sub2;
      Alcotest.(check string) "same event" ev1 ev2;
      Alcotest.(check (float 1e-9)) "same delivery time" at1 at2)
    seed_log zero_log

let qcheck_digest_same_multiset =
  QCheck.Test.make ~name:"digest window preserves the delivered multiset" ~count:40
    QCheck.(pair (int_range 0 10_000) (int_range 1 120))
    (fun (seed, window) ->
      let seed_log, (s1, d1, x1, _) = run_script ~seed () in
      let digest_log, (s2, d2, x2, _) =
        run_script ~digest_window:(float_of_int window) ~seed ()
      in
      let multiset log = List.sort compare (List.map (fun (s, e, _) -> (s, e)) log) in
      s1 = s2 && d1 = d2 && x1 = x2 && multiset seed_log = multiset digest_log)

let suite =
  [
    Alcotest.test_case "any-new-entry condition" `Quick test_any_new_entry;
    Alcotest.test_case "region isolation" `Quick test_region_isolation;
    Alcotest.test_case "closer-than condition" `Quick test_closer_than;
    Alcotest.test_case "load-above condition" `Quick test_load_above;
    Alcotest.test_case "departure condition" `Quick test_departure;
    Alcotest.test_case "unsubscribe" `Quick test_unsubscribe;
    Alcotest.test_case "delivery latency" `Quick test_delivery_latency;
    Alcotest.test_case "multiple subscribers" `Quick test_multiple_subscribers;
    Alcotest.test_case "unsubscribe during dispatch" `Quick test_unsubscribe_during_dispatch;
    Alcotest.test_case "duplicate subscription" `Quick test_duplicate_subscription;
    Alcotest.test_case "ordering under injected delay" `Quick test_ordering_under_injected_delay;
    Alcotest.test_case "channel drop" `Quick test_channel_drop;
    Alcotest.test_case "digest batches per subscriber" `Quick test_digest_batches_per_subscriber;
    Alcotest.test_case "digest skips early unsubscriber" `Quick test_digest_unsubscribe_before_flush;
    Alcotest.test_case "digest window 0 = seed path" `Quick test_digest_window_zero_is_seed_path;
    QCheck_alcotest.to_alcotest qcheck_digest_same_multiset;
  ]
