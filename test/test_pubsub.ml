(* Tests for the publish/subscribe bus. *)

module Bus = Pubsub.Bus
module Store = Softstate.Store
module Can_overlay = Can.Overlay
module Number = Landmark.Number
module Point = Geometry.Point
module Sim = Engine.Sim
module Rng = Prelude.Rng

let scheme = Number.default_scheme ~max_latency:100.0 ()

let setup ?(n = 30) ~seed () =
  let rng = Rng.create seed in
  let can = Can_overlay.create ~dims:2 0 in
  for id = 1 to n - 1 do
    ignore (Can_overlay.join can id (Point.random rng 2))
  done;
  let sim = Sim.create () in
  let store = Store.create ~clock:(fun () -> Sim.now sim) ~scheme can in
  let bus = Bus.create ~sim store in
  (bus, sim, rng)

let vec rng = Array.init 5 (fun _ -> Rng.float rng 100.0)

let test_any_new_entry () =
  let bus, sim, rng = setup ~seed:1 () in
  let events = ref [] in
  let _sub =
    Bus.subscribe bus ~subscriber:7 ~region:[||] ~condition:Bus.Any_new_entry
      ~handler:(fun n -> events := n :: !events)
  in
  Bus.publish bus ~region:[||] ~node:3 ~vector:(vec rng);
  Sim.run sim;
  Alcotest.(check int) "one notification" 1 (List.length !events);
  (match !events with
  | [ { Bus.subscriber; event = Bus.Entry_published { entry_node; _ }; _ } ] ->
    Alcotest.(check int) "subscriber" 7 subscriber;
    Alcotest.(check int) "entry node" 3 entry_node
  | _ -> Alcotest.fail "unexpected event shape");
  (* refresh of the same node must NOT re-notify *)
  Bus.publish bus ~region:[||] ~node:3 ~vector:(vec rng);
  Sim.run sim;
  Alcotest.(check int) "no notification on refresh" 1 (List.length !events)

let test_region_isolation () =
  let bus, sim, rng = setup ~seed:2 () in
  let fired = ref 0 in
  let _sub =
    Bus.subscribe bus ~subscriber:1 ~region:[| 0; 0 |] ~condition:Bus.Any_new_entry
      ~handler:(fun _ -> incr fired)
  in
  Bus.publish bus ~region:[| 1; 1 |] ~node:3 ~vector:(vec rng);
  Sim.run sim;
  Alcotest.(check int) "other region does not fire" 0 !fired;
  Bus.publish bus ~region:[| 0; 0 |] ~node:3 ~vector:(vec rng);
  Sim.run sim;
  Alcotest.(check int) "right region fires" 1 !fired

let test_closer_than () =
  let bus, sim, _ = setup ~seed:3 () in
  let mine = [| 10.0; 10.0; 10.0; 10.0; 10.0 |] in
  let fired = ref 0 in
  let _sub =
    Bus.subscribe bus ~subscriber:1 ~region:[||]
      ~condition:(Bus.Closer_than (mine, 5.0))
      ~handler:(fun _ -> incr fired)
  in
  (* far entry: no fire *)
  Bus.publish bus ~region:[||] ~node:2 ~vector:[| 90.0; 90.0; 90.0; 90.0; 90.0 |];
  Sim.run sim;
  Alcotest.(check int) "far newcomer ignored" 0 !fired;
  (* close entry: fire *)
  Bus.publish bus ~region:[||] ~node:3 ~vector:[| 11.0; 10.0; 10.0; 10.0; 10.0 |];
  Sim.run sim;
  Alcotest.(check int) "close newcomer fires" 1 !fired

let test_load_above () =
  let bus, sim, rng = setup ~seed:4 () in
  let fired = ref [] in
  let _sub =
    Bus.subscribe bus ~subscriber:1 ~region:[||]
      ~condition:(Bus.Load_above { watched = 5; threshold = 0.8 })
      ~handler:(fun n -> fired := n :: !fired)
  in
  Bus.publish bus ~region:[||] ~node:5 ~vector:(vec rng);
  Bus.update_load bus ~region:[||] ~node:5 ~load:0.5 ~capacity:1.0;
  Sim.run sim;
  Alcotest.(check int) "below threshold silent" 0 (List.length !fired);
  Bus.update_load bus ~region:[||] ~node:5 ~load:0.9 ~capacity:1.0;
  Sim.run sim;
  Alcotest.(check int) "above threshold fires" 1 (List.length !fired);
  (match !fired with
  | [ { Bus.event = Bus.Load_changed { load; _ }; _ } ] ->
    Alcotest.(check (float 0.0)) "load carried" 0.9 load
  | _ -> Alcotest.fail "unexpected event");
  (* a different node's load does not fire *)
  Bus.publish bus ~region:[||] ~node:6 ~vector:(vec rng);
  Bus.update_load bus ~region:[||] ~node:6 ~load:0.99 ~capacity:1.0;
  Sim.run sim;
  Alcotest.(check int) "other node silent" 1 (List.length !fired)

let test_departure () =
  let bus, sim, rng = setup ~seed:5 () in
  let fired = ref 0 in
  Bus.publish_all bus ~span_bits:2 ~node:9 ~vector:(vec rng);
  let _sub =
    Bus.subscribe bus ~subscriber:1 ~region:[||] ~condition:(Bus.Departure_of 9)
      ~handler:(fun _ -> incr fired)
  in
  Bus.depart bus ~node:9;
  Sim.run sim;
  Alcotest.(check int) "departure fires" 1 !fired;
  Alcotest.(check bool) "state retracted" true
    (Store.find (Bus.store bus) ~region:[||] ~node:9 = None)

let test_unsubscribe () =
  let bus, sim, rng = setup ~seed:6 () in
  let fired = ref 0 in
  let sub =
    Bus.subscribe bus ~subscriber:1 ~region:[||] ~condition:Bus.Any_new_entry
      ~handler:(fun _ -> incr fired)
  in
  Alcotest.(check int) "counted" 1 (Bus.subscription_count bus ~region:[||]);
  Bus.unsubscribe bus sub;
  Alcotest.(check int) "removed" 0 (Bus.subscription_count bus ~region:[||]);
  Bus.publish bus ~region:[||] ~node:2 ~vector:(vec rng);
  Sim.run sim;
  Alcotest.(check int) "no fire after unsubscribe" 0 !fired

let test_delivery_latency () =
  let rng = Rng.create 7 in
  let can = Can_overlay.create ~dims:2 0 in
  for id = 1 to 19 do
    ignore (Can_overlay.join can id (Point.random rng 2))
  done;
  let sim = Sim.create () in
  let store = Store.create ~clock:(fun () -> Sim.now sim) ~scheme can in
  let bus = Bus.create ~sim ~latency:(fun ~host:_ ~subscriber:_ -> 25.0) store in
  let delivered_at = ref (-1.0) in
  let _sub =
    Bus.subscribe bus ~subscriber:1 ~region:[||] ~condition:Bus.Any_new_entry
      ~handler:(fun n -> delivered_at := n.Bus.delivered_at)
  in
  Bus.publish bus ~region:[||] ~node:2 ~vector:(vec rng);
  Sim.run sim;
  Alcotest.(check (float 1e-9)) "delivered after the modeled latency" 25.0 !delivered_at

let test_multiple_subscribers () =
  let bus, sim, rng = setup ~seed:8 () in
  let fired = Array.make 3 0 in
  for i = 0 to 2 do
    ignore
      (Bus.subscribe bus ~subscriber:i ~region:[||] ~condition:Bus.Any_new_entry
         ~handler:(fun _ -> fired.(i) <- fired.(i) + 1))
  done;
  Bus.publish bus ~region:[||] ~node:9 ~vector:(vec rng);
  Sim.run sim;
  Array.iteri (fun i c -> Alcotest.(check int) (Printf.sprintf "sub %d fired" i) 1 c) fired

(* A handler that unsubscribes another subscription mid-dispatch: the
   victim must not be notified for the event being dispatched (nor later).
   Subscriptions are dispatched most-recent-first, so subscribe the victim
   first and the killer second. *)
let test_unsubscribe_during_dispatch () =
  let bus, sim, rng = setup ~seed:9 () in
  let victim_fired = ref 0 in
  let victim =
    Bus.subscribe bus ~subscriber:2 ~region:[||] ~condition:Bus.Any_new_entry
      ~handler:(fun _ -> incr victim_fired)
  in
  let _killer =
    Bus.subscribe bus ~subscriber:1 ~region:[||] ~condition:Bus.Any_new_entry
      ~handler:(fun _ -> Bus.unsubscribe bus victim)
  in
  Bus.publish bus ~region:[||] ~node:3 ~vector:(vec rng);
  Sim.run sim;
  Alcotest.(check int) "victim silenced by in-flight unsubscribe" 0 !victim_fired;
  Bus.publish bus ~region:[||] ~node:4 ~vector:(vec rng);
  Sim.run sim;
  Alcotest.(check int) "victim stays silent" 0 !victim_fired;
  Alcotest.(check int) "only the killer remains" 1 (Bus.subscription_count bus ~region:[||])

let test_duplicate_subscription () =
  let bus, sim, rng = setup ~seed:10 () in
  let fired = ref 0 in
  let handler _ = incr fired in
  let first =
    Bus.subscribe bus ~subscriber:1 ~region:[||] ~condition:Bus.Any_new_entry ~handler
  in
  let _second =
    Bus.subscribe bus ~subscriber:1 ~region:[||] ~condition:Bus.Any_new_entry ~handler
  in
  Bus.publish bus ~region:[||] ~node:5 ~vector:(vec rng);
  Sim.run sim;
  Alcotest.(check int) "identical subscriptions both fire" 2 !fired;
  Bus.unsubscribe bus first;
  Bus.publish bus ~region:[||] ~node:6 ~vector:(vec rng);
  Sim.run sim;
  Alcotest.(check int) "removing one duplicate leaves the other" 3 !fired

(* Channel-injected delay reorders deliveries: the engine must deliver in
   total-delay order regardless of send order, and delivered_at must carry
   the perturbed time. *)
let test_ordering_under_injected_delay () =
  let rng = Rng.create 11 in
  let can = Can_overlay.create ~dims:2 0 in
  for id = 1 to 19 do
    ignore (Can_overlay.join can id (Point.random rng 2))
  done;
  let sim = Sim.create () in
  let store = Store.create ~clock:(fun () -> Sim.now sim) ~scheme can in
  (* First message gets +30 ms, second +0: the second overtakes. *)
  let extras = ref [ 30.0; 0.0 ] in
  let channel base =
    match !extras with
    | e :: rest ->
      extras := rest;
      Some (base +. e)
    | [] -> Some base
  in
  let bus = Bus.create ~sim ~latency:(fun ~host:_ ~subscriber:_ -> 10.0) ~channel store in
  let deliveries = ref [] in
  let _sub =
    Bus.subscribe bus ~subscriber:1 ~region:[||] ~condition:Bus.Any_new_entry
      ~handler:(fun n ->
        match n.Bus.event with
        | Bus.Entry_published { entry_node; _ } ->
          deliveries := (entry_node, n.Bus.delivered_at) :: !deliveries
        | _ -> ())
  in
  Bus.publish bus ~region:[||] ~node:7 ~vector:(vec rng);
  Bus.publish bus ~region:[||] ~node:8 ~vector:(vec rng);
  Sim.run sim;
  (match List.rev !deliveries with
  | [ (n1, t1); (n2, t2) ] ->
    Alcotest.(check int) "delayed message overtaken" 8 n1;
    Alcotest.(check (float 1e-9)) "undelayed arrives at base latency" 10.0 t1;
    Alcotest.(check int) "perturbed message arrives last" 7 n2;
    Alcotest.(check (float 1e-9)) "perturbed arrival time" 40.0 t2
  | l -> Alcotest.fail (Printf.sprintf "expected 2 deliveries, got %d" (List.length l)));
  Alcotest.(check int) "both sent" 2 (Bus.sent_count bus);
  Alcotest.(check int) "both delivered" 2 (Bus.delivered_count bus);
  Alcotest.(check int) "none dropped" 0 (Bus.dropped_count bus)

let test_channel_drop () =
  let bus, sim, rng = setup ~seed:12 () in
  ignore bus;
  (* A fresh bus over the same store but with a black-hole channel. *)
  let store = Bus.store bus in
  let dead_bus = Bus.create ~sim ~channel:(fun _ -> None) store in
  let fired = ref 0 in
  let _sub =
    Bus.subscribe dead_bus ~subscriber:1 ~region:[||] ~condition:Bus.Any_new_entry
      ~handler:(fun _ -> incr fired)
  in
  Bus.publish dead_bus ~region:[||] ~node:3 ~vector:(vec rng);
  Sim.run sim;
  Alcotest.(check int) "nothing delivered through a black hole" 0 !fired;
  Alcotest.(check int) "send counted" 1 (Bus.sent_count dead_bus);
  Alcotest.(check int) "drop counted" 1 (Bus.dropped_count dead_bus);
  Alcotest.(check int) "no delivery counted" 0 (Bus.delivered_count dead_bus)

let suite =
  [
    Alcotest.test_case "any-new-entry condition" `Quick test_any_new_entry;
    Alcotest.test_case "region isolation" `Quick test_region_isolation;
    Alcotest.test_case "closer-than condition" `Quick test_closer_than;
    Alcotest.test_case "load-above condition" `Quick test_load_above;
    Alcotest.test_case "departure condition" `Quick test_departure;
    Alcotest.test_case "unsubscribe" `Quick test_unsubscribe;
    Alcotest.test_case "delivery latency" `Quick test_delivery_latency;
    Alcotest.test_case "multiple subscribers" `Quick test_multiple_subscribers;
    Alcotest.test_case "unsubscribe during dispatch" `Quick test_unsubscribe_during_dispatch;
    Alcotest.test_case "duplicate subscription" `Quick test_duplicate_subscription;
    Alcotest.test_case "ordering under injected delay" `Quick test_ordering_under_injected_delay;
    Alcotest.test_case "channel drop" `Quick test_channel_drop;
  ]
