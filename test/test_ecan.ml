(* Tests for eCAN expressway routing. *)

module Can_overlay = Can.Overlay
module Ecan = Ecan.Expressway
module Point = Geometry.Point
module Rng = Prelude.Rng

let random_selector rng ~node:_ ~region:_ ~candidates =
  Some (Rng.pick rng candidates)

let build ?(span_bits = 2) ~n ~seed () =
  let rng = Rng.create seed in
  let t = Can_overlay.create ~dims:2 0 in
  for id = 1 to n - 1 do
    ignore (Can_overlay.join t id (Point.random rng 2))
  done;
  let e = Ecan.create ~span_bits t in
  let sel_rng = Rng.create (seed + 1) in
  Ecan.build_tables e ~selector:(random_selector sel_rng);
  (e, Rng.create (seed + 2))

let test_digits () =
  let e, _ = build ~n:64 ~seed:1 () in
  let t = Ecan.can e in
  Array.iter
    (fun id ->
      let n = Can_overlay.node t id in
      let len = Array.length n.Can_overlay.path in
      Alcotest.(check int) "rows = len/span" (len / 2) (Ecan.rows e id);
      for row = 0 to Ecan.rows e id - 1 do
        let d = Ecan.own_digit e id ~row in
        let expect = (n.Can_overlay.path.(2 * row) * 2) + n.Can_overlay.path.((2 * row) + 1) in
        Alcotest.(check int) "digit packs two bits" expect d
      done)
    (Can_overlay.node_ids t)

let test_region_prefix () =
  let e, _ = build ~n:32 ~seed:2 () in
  let t = Ecan.can e in
  let id = (Can_overlay.node_ids t).(0) in
  if Ecan.rows e id > 0 then begin
    let prefix = Ecan.region_prefix e id ~row:0 ~digit:3 in
    Alcotest.(check int) "prefix length" 2 (Array.length prefix);
    Alcotest.(check (array int)) "digit 3 = bits 1 1" [| 1; 1 |] prefix
  end

let test_entries_point_into_region () =
  let e, _ = build ~n:100 ~seed:3 () in
  let t = Ecan.can e in
  Array.iter
    (fun id ->
      List.iter
        (fun (row, digit, target) ->
          let region = Ecan.region_prefix e id ~row ~digit in
          let target_path = (Can_overlay.node t target).Can_overlay.path in
          Alcotest.(check bool) "entry member of its region" true
            (Array.length target_path >= Array.length region
            && Array.for_all2 ( = ) region (Array.sub target_path 0 (Array.length region))))
        (Ecan.entries e id))
    (Can_overlay.node_ids t)

let avg_hops route_fn t rng ~count =
  let ids = Can_overlay.node_ids t in
  let total = ref 0 in
  for _ = 1 to count do
    let src = Rng.pick rng ids in
    let p = Point.random rng 2 in
    match route_fn ~src p with
    | Some hops -> total := !total + List.length hops - 1
    | None -> Alcotest.fail "routing failed"
  done;
  float_of_int !total /. float_of_int count

let test_expressway_beats_plain_can () =
  let e, rng = build ~n:500 ~seed:5 () in
  let t = Ecan.can e in
  let ecan_hops = avg_hops (fun ~src p -> Ecan.route e ~src p) t rng ~count:200 in
  let can_hops = avg_hops (fun ~src p -> Can_overlay.route t ~src p) t rng ~count:200 in
  Alcotest.(check bool)
    (Printf.sprintf "ecan %.2f hops well under CAN %.2f" ecan_hops can_hops)
    true
    (ecan_hops < can_hops /. 2.0)

let test_route_without_tables_falls_back () =
  (* With no tables built, eCAN degenerates to greedy CAN and must still
     reach the owner. *)
  let rng = Rng.create 6 in
  let t = Can_overlay.create ~dims:2 0 in
  for id = 1 to 63 do
    ignore (Can_overlay.join t id (Point.random rng 2))
  done;
  let e = Ecan.create t in
  for _ = 1 to 50 do
    let p = Point.random rng 2 in
    match Ecan.route e ~src:0 p with
    | None -> Alcotest.fail "fallback routing failed"
    | Some hops ->
      Alcotest.(check int) "owner reached" (Can_overlay.owner_of t p)
        (List.nth hops (List.length hops - 1))
  done

let test_set_entry_and_table_size () =
  let e, _ = build ~n:64 ~seed:7 () in
  let t = Ecan.can e in
  let id = (Can_overlay.node_ids t).(0) in
  let before = Ecan.table_size e id in
  Alcotest.(check bool) "some entries filled" true (before > 0);
  (match Ecan.entries e id with
  | (row, digit, _) :: _ ->
    Ecan.set_entry e id ~row ~digit None;
    Alcotest.(check int) "entry cleared" (before - 1) (Ecan.table_size e id);
    Alcotest.(check (option int)) "reads back" None (Ecan.entry e id ~row ~digit)
  | [] -> Alcotest.fail "expected entries");
  Alcotest.check_raises "bad row" (Invalid_argument "Ecan.set_entry: row out of range")
    (fun () -> Ecan.set_entry e id ~row:999 ~digit:0 None)

let test_span_bits_3 () =
  let e, rng = build ~span_bits:3 ~n:300 ~seed:8 () in
  let t = Ecan.can e in
  for _ = 1 to 100 do
    let p = Point.random rng 2 in
    match Ecan.route e ~src:(Prelude.Rng.pick rng (Can_overlay.node_ids t)) p with
    | None -> Alcotest.fail "span=3 routing failed"
    | Some hops ->
      Alcotest.(check int) "owner reached" (Can_overlay.owner_of t p)
        (List.nth hops (List.length hops - 1))
  done

(* Generic routing/owner properties live in the shared
   backend-conformance suite (test_conformance.ml). *)
let suite =
  [
    Alcotest.test_case "digit extraction" `Quick test_digits;
    Alcotest.test_case "region prefixes" `Quick test_region_prefix;
    Alcotest.test_case "entries live in their regions" `Quick test_entries_point_into_region;
    Alcotest.test_case "expressways beat plain CAN" `Quick test_expressway_beats_plain_can;
    Alcotest.test_case "fallback without tables" `Quick test_route_without_tables_falls_back;
    Alcotest.test_case "set_entry / table_size" `Quick test_set_entry_and_table_size;
    Alcotest.test_case "span_bits = 3" `Quick test_span_bits_3;
  ]
