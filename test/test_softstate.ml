(* Tests for the global soft-state store. *)

module Store = Softstate.Store
module Can_overlay = Can.Overlay
module Number = Landmark.Number
module Point = Geometry.Point
module Zone = Geometry.Zone
module Rng = Prelude.Rng

let scheme = Number.default_scheme ~max_latency:100.0 ()

let check_ok = function Ok () -> () | Error e -> Alcotest.fail e

(* A small CAN plus a clock we can advance by hand. *)
let setup ?(condense = 1.0) ?(ttl = 100.0) ?(n = 40) ?(shards = 1) ~seed () =
  let rng = Rng.create seed in
  let can = Can_overlay.create ~dims:2 0 in
  for id = 1 to n - 1 do
    ignore (Can_overlay.join can id (Point.random rng 2))
  done;
  let now = ref 0.0 in
  let store =
    Store.create ~shards ~condense ~default_ttl:ttl ~clock:(fun () -> !now) ~scheme can
  in
  (store, can, now, rng)

let vec rng = Array.init 5 (fun _ -> Rng.float rng 100.0)

let test_publish_find () =
  let store, _, _, rng = setup ~seed:1 () in
  let v = vec rng in
  Store.publish store ~region:[||] ~node:3 ~vector:v;
  (match Store.find store ~region:[||] ~node:3 with
  | Some e ->
    Alcotest.(check (array (float 0.0))) "vector stored" v e.Store.Entry.vector;
    Alcotest.(check int) "landmark number consistent" (Number.number scheme v)
      e.Store.Entry.number
  | None -> Alcotest.fail "entry not found");
  Alcotest.(check bool) "other region empty" true (Store.find store ~region:[| 0 |] ~node:3 = None);
  check_ok (Store.check_invariants store)

let test_publish_overwrites () =
  let store, _, _, rng = setup ~seed:2 () in
  Store.publish store ~region:[||] ~node:3 ~vector:(vec rng);
  let v2 = vec rng in
  Store.publish store ~region:[||] ~node:3 ~vector:v2;
  Alcotest.(check int) "one entry" 1 (List.length (Store.region_entries store [||]));
  (match Store.find store ~region:[||] ~node:3 with
  | Some e -> Alcotest.(check (array (float 0.0))) "updated" v2 e.Store.Entry.vector
  | None -> Alcotest.fail "missing");
  check_ok (Store.check_invariants store)

let test_entry_position_in_condensed_box () =
  let store, _, _, rng = setup ~condense:0.5 ~seed:3 () in
  let region = [| 0; 1 |] in
  for node = 0 to 20 do
    Store.publish store ~region ~node ~vector:(vec rng)
  done;
  let box = Store.map_box store region in
  let zone = Can_overlay.zone_of_path ~dims:2 region in
  Alcotest.(check bool) "box strictly smaller than the region" true
    (Zone.volume box < Zone.volume zone);
  List.iter
    (fun e ->
      Alcotest.(check bool) "position inside condensed box" true
        (Zone.contains box e.Store.Entry.position))
    (Store.region_entries store region);
  check_ok (Store.check_invariants store)

let test_ttl_expiry () =
  let store, _, now, rng = setup ~ttl:50.0 ~seed:4 () in
  Store.publish store ~region:[||] ~node:1 ~vector:(vec rng);
  now := 49.0;
  Alcotest.(check bool) "alive before ttl" true (Store.find store ~region:[||] ~node:1 <> None);
  now := 51.0;
  Alcotest.(check bool) "dead after ttl" true (Store.find store ~region:[||] ~node:1 = None);
  Alcotest.(check int) "sweep drops it" 1 (Store.expire_sweep store);
  Alcotest.(check int) "sweep idempotent" 0 (Store.expire_sweep store)

let test_refresh_extends () =
  let store, _, now, rng = setup ~ttl:50.0 ~seed:5 () in
  Store.publish store ~region:[||] ~node:1 ~vector:(vec rng);
  now := 40.0;
  Store.refresh store ~region:[||] ~node:1;
  now := 80.0;
  Alcotest.(check bool) "alive thanks to refresh" true
    (Store.find store ~region:[||] ~node:1 <> None);
  now := 91.0;
  Alcotest.(check bool) "eventually expires" true (Store.find store ~region:[||] ~node:1 = None)

let test_unpublish () =
  let store, _, _, rng = setup ~seed:6 () in
  Store.publish store ~region:[||] ~node:1 ~vector:(vec rng);
  Store.publish store ~region:[| 0 |] ~node:1 ~vector:(vec rng);
  Store.unpublish store ~region:[||] ~node:1;
  Alcotest.(check bool) "gone from root" true (Store.find store ~region:[||] ~node:1 = None);
  Alcotest.(check bool) "still in the other map" true
    (Store.find store ~region:[| 0 |] ~node:1 <> None);
  Store.unpublish_everywhere store 1;
  Alcotest.(check bool) "gone everywhere" true (Store.find store ~region:[| 0 |] ~node:1 = None);
  check_ok (Store.check_invariants store)

let test_publish_all_regions () =
  let store, can, _, rng = setup ~n:64 ~seed:7 () in
  let node = (Can_overlay.node_ids can).(5) in
  let v = vec rng in
  Store.publish_all store ~span_bits:2 ~node ~vector:v;
  let regions = Store.regions_of store node in
  let path_len = Array.length (Can_overlay.node can node).Can_overlay.path in
  Alcotest.(check int) "one map per complete high-order zone plus the root"
    ((path_len / 2) + 1) (List.length regions);
  List.iter
    (fun region ->
      (* every region is a prefix of the node's path with even length *)
      let len = Array.length region in
      Alcotest.(check bool) "digit-aligned" true (len mod 2 = 0);
      let path = (Can_overlay.node can node).Can_overlay.path in
      Alcotest.(check bool) "prefix of the node's path" true
        (Array.for_all2 ( = ) region (Array.sub path 0 len)))
    regions

let test_lookup_finds_closest () =
  let store, _, _, rng = setup ~n:60 ~seed:8 () in
  let region = [||] in
  (* publish clusters: nodes 0-9 near vector A, nodes 10-19 near vector B *)
  let base_a = [| 10.0; 10.0; 10.0; 10.0; 10.0 |] in
  let base_b = [| 80.0; 80.0; 80.0; 80.0; 80.0 |] in
  let jitter base = Array.map (fun x -> x +. Rng.float rng 2.0) base in
  for node = 0 to 9 do
    Store.publish store ~region ~node ~vector:(jitter base_a)
  done;
  for node = 10 to 19 do
    Store.publish store ~region ~node ~vector:(jitter base_b)
  done;
  let results = Store.lookup store ~region ~vector:base_a ~max_results:5 ~ttl:8 () in
  Alcotest.(check bool) "got results" true (results <> []);
  List.iter
    (fun e ->
      Alcotest.(check bool) "results from cluster A" true (e.Store.Entry.node < 10))
    results;
  (* sorted by vector distance *)
  let dists =
    List.map (fun e -> Landmark.Landmarks.vector_dist base_a e.Store.Entry.vector) results
  in
  Alcotest.(check (list (float 1e-9))) "sorted ascending" (List.sort compare dists) dists

let test_lookup_respects_max_results () =
  let store, _, _, rng = setup ~n:40 ~seed:9 () in
  for node = 0 to 30 do
    Store.publish store ~region:[||] ~node ~vector:(vec rng)
  done;
  let results = Store.lookup store ~region:[||] ~vector:(vec rng) ~max_results:7 ~ttl:6 () in
  Alcotest.(check bool) "bounded" true (List.length results <= 7)

let test_lookup_skips_expired () =
  let store, _, now, rng = setup ~ttl:50.0 ~seed:10 () in
  Store.publish store ~region:[||] ~node:1 ~vector:(vec rng);
  now := 100.0;
  Store.publish store ~region:[||] ~node:2 ~vector:(vec rng);
  let results = Store.lookup store ~region:[||] ~vector:(vec rng) ~max_results:10 ~ttl:8 () in
  List.iter
    (fun e -> Alcotest.(check int) "only the live entry" 2 e.Store.Entry.node)
    results

let test_lookup_empty_region () =
  let store, _, _, rng = setup ~seed:11 () in
  Alcotest.(check (list reject)) "empty" []
    (Store.lookup store ~region:[| 1; 1 |] ~vector:(vec rng) ())

let test_condense_concentrates_entries () =
  (* With a tiny condensed box, all entries land on few hosts; with the
     whole region, they spread out. *)
  let region = [||] in
  let fill store rng =
    for node = 0 to 39 do
      Store.publish store ~region ~node ~vector:(vec rng)
    done
  in
  let hosts store can =
    Array.fold_left
      (fun acc id -> if Store.entries_at_host store id > 0 then acc + 1 else acc)
      0 (Can_overlay.node_ids can)
  in
  let store_tight, can_tight, _, rng_tight = setup ~condense:0.05 ~n:60 ~seed:12 () in
  fill store_tight rng_tight;
  let store_wide, can_wide, _, rng_wide = setup ~condense:8.0 ~n:60 ~seed:12 () in
  fill store_wide rng_wide;
  Alcotest.(check bool)
    (Printf.sprintf "tight %d hosts <= wide %d hosts" (hosts store_tight can_tight)
       (hosts store_wide can_wide))
    true
    (hosts store_tight can_tight <= hosts store_wide can_wide);
  Alcotest.(check bool) "avg entries per node consistent" true
    (Store.avg_entries_per_node store_tight > 0.0)

let test_update_stats () =
  let store, _, _, rng = setup ~seed:13 () in
  Store.publish store ~region:[||] ~node:1 ~vector:(vec rng);
  Store.update_stats store ~region:[||] ~node:1 ~load:0.9 ~capacity:4.0;
  match Store.find store ~region:[||] ~node:1 with
  | Some e ->
    Alcotest.(check (float 0.0)) "load" 0.9 e.Store.Entry.load;
    Alcotest.(check (float 0.0)) "capacity" 4.0 e.Store.Entry.capacity
  | None -> Alcotest.fail "missing"

let test_lookup_route_reaches_host () =
  let store, can, _, rng = setup ~n:50 ~seed:15 () in
  for node = 0 to 20 do
    Store.publish store ~region:[| 0 |] ~node ~vector:(vec rng)
  done;
  for _ = 1 to 30 do
    let v = vec rng in
    let from = Prelude.Rng.pick rng (Can_overlay.node_ids can) in
    match Store.lookup_route store ~from ~region:[| 0 |] ~vector:v with
    | None -> Alcotest.fail "lookup route failed"
    | Some hops ->
      Alcotest.(check int) "route starts at the querier" from (List.hd hops);
      Alcotest.(check int) "route ends at the map host"
        (Store.host_of store ~region:[| 0 |] ~vector:v)
        (List.nth hops (List.length hops - 1))
  done

let test_rehost_after_churn () =
  let store, can, _, rng = setup ~n:30 ~seed:14 () in
  for node = 0 to 29 do
    Store.publish_all store ~span_bits:2 ~node ~vector:(vec rng)
  done;
  check_ok (Store.check_invariants store);
  (* churn: join a few new nodes, then fix hosting *)
  for id = 100 to 105 do
    ignore (Can_overlay.join can id (Point.random rng 2))
  done;
  Store.rehost store;
  check_ok (Store.check_invariants store);
  (* and after leaves *)
  ignore (Can_overlay.leave can 100);
  ignore (Can_overlay.leave can 101);
  Store.rehost store;
  check_ok (Store.check_invariants store)

let test_republish_preserves_stats () =
  let store, _, _, rng = setup ~seed:16 () in
  Store.publish store ~region:[||] ~node:1 ~vector:(vec rng);
  Store.update_stats store ~region:[||] ~node:1 ~load:0.7 ~capacity:3.0;
  (* overwrite = refresh-by-replacement: the vector changes, the load
     statistics survive *)
  Store.publish store ~region:[||] ~node:1 ~vector:(vec rng);
  (match Store.find store ~region:[||] ~node:1 with
  | Some e ->
    Alcotest.(check (float 0.0)) "load carried over" 0.7 e.Store.Entry.load;
    Alcotest.(check (float 0.0)) "capacity carried over" 3.0 e.Store.Entry.capacity
  | None -> Alcotest.fail "missing");
  (* a brand-new node starts from the defaults *)
  Store.publish store ~region:[||] ~node:2 ~vector:(vec rng);
  match Store.find store ~region:[||] ~node:2 with
  | Some e -> Alcotest.(check (float 0.0)) "fresh entry unloaded" 0.0 e.Store.Entry.load
  | None -> Alcotest.fail "missing"

(* ---- sharded sweeps ---- *)

let regions_under_test = [ [||]; [| 0 |]; [| 1 |]; [| 0; 1 |]; [| 1; 0 |]; [| 1; 1 |] ]

let test_shard_sweep_partition () =
  let store, _, now, rng = setup ~shards:4 ~ttl:50.0 ~seed:17 () in
  Alcotest.(check int) "shard count" 4 (Store.shard_count store);
  List.iter
    (fun region ->
      let s = Store.shard_of_region store region in
      Alcotest.(check bool) "shard in range" true (s >= 0 && s < 4);
      Alcotest.(check int) "shard assignment stable" s (Store.shard_of_region store region);
      for node = 0 to 9 do
        Store.publish store ~region ~node ~vector:(vec rng)
      done)
    regions_under_test;
  check_ok (Store.check_invariants store);
  now := 60.0;
  (* per-shard sweeps partition the expired population: each purged
     region belongs to the swept shard, and the union covers everything *)
  let total = ref 0 in
  for i = 0 to Store.shard_count store - 1 do
    let purged = Store.sweep_shard store i in
    List.iter
      (fun (region, _) ->
        Alcotest.(check int) "purged region owned by the swept shard" i
          (Store.shard_of_region store region))
      purged;
    total := !total + List.length purged
  done;
  Alcotest.(check int) "union of shard sweeps purges everything"
    (10 * List.length regions_under_test)
    !total;
  Alcotest.(check int) "nothing left" 0 (Store.expire_sweep store);
  check_ok (Store.check_invariants store);
  Alcotest.check_raises "shard index range-checked"
    (Invalid_argument "Store.sweep_shard: shard out of range") (fun () ->
      ignore (Store.sweep_shard store 4))

(* The heap-swept sharded store must purge exactly what a naive
   full-scan reference model would, under any interleaving of publish /
   refresh / unpublish / clock advance / sweep.  The model is an assoc
   table ((region, node) -> expires) mutated by the same rules. *)
let qcheck_sweep_matches_scan_model =
  let key region node = (Array.to_list region, node) in
  QCheck.Test.make ~name:"sharded heap sweeps = full-scan reference model" ~count:40
    QCheck.(triple (int_range 0 1_000) (int_range 1 5) (int_range 30 120))
    (fun (seed, shards, steps) ->
      let ttl = 50.0 in
      let store, _, now, rng = setup ~shards ~ttl ~seed () in
      let model : ((int list * int), float) Hashtbl.t = Hashtbl.create 64 in
      let regions = Array.of_list regions_under_test in
      let pick_region () = regions.(Rng.int rng (Array.length regions)) in
      let pick_node () = Rng.int rng 12 in
      let model_live k = match Hashtbl.find_opt model k with
        | Some e -> e > !now
        | None -> false
      in
      let sweep_and_compare () =
        let purged =
          Store.sweep_expired store
          |> List.map (fun (region, (e : Store.Entry.t)) -> key region e.Store.Entry.node)
          |> List.sort compare
        in
        let expected =
          Hashtbl.fold (fun k e acc -> if e <= !now then k :: acc else acc) model []
          |> List.sort compare
        in
        List.iter (fun k -> Hashtbl.remove model k) expected;
        purged = expected
      in
      let ok = ref true in
      for _ = 1 to steps do
        (match Rng.int rng 6 with
        | 0 | 1 ->
          let region = pick_region () and node = pick_node () in
          Store.publish store ~region ~node ~vector:(vec rng);
          Hashtbl.replace model (key region node) (!now +. ttl)
        | 2 ->
          let region = pick_region () and node = pick_node () in
          Store.refresh store ~region ~node;
          let k = key region node in
          if model_live k then Hashtbl.replace model k (!now +. ttl)
        | 3 ->
          let region = pick_region () and node = pick_node () in
          Store.unpublish store ~region ~node;
          Hashtbl.remove model (key region node)
        | 4 -> now := !now +. Rng.float rng 30.0
        | _ -> if not (sweep_and_compare ()) then ok := false);
        if Store.check_invariants store <> Ok () then ok := false
      done;
      now := !now +. (2.0 *. ttl);
      !ok && sweep_and_compare () && Hashtbl.length model = 0
      && Store.check_invariants store = Ok ())

let qcheck_host_index_consistent =
  QCheck.Test.make ~name:"hosting matches CAN ownership after random publishes" ~count:20
    QCheck.(pair (int_range 0 500) (int_range 5 40))
    (fun (seed, n) ->
      let store, _, _, rng = setup ~n ~seed () in
      for node = 0 to (n / 2) - 1 do
        Store.publish_all store ~span_bits:2 ~node ~vector:(vec rng)
      done;
      Store.check_invariants store = Ok ())

let suite =
  [
    Alcotest.test_case "publish and find" `Quick test_publish_find;
    Alcotest.test_case "publish overwrites" `Quick test_publish_overwrites;
    Alcotest.test_case "condensed map placement" `Quick test_entry_position_in_condensed_box;
    Alcotest.test_case "ttl expiry" `Quick test_ttl_expiry;
    Alcotest.test_case "refresh extends life" `Quick test_refresh_extends;
    Alcotest.test_case "unpublish" `Quick test_unpublish;
    Alcotest.test_case "publish into all enclosing regions" `Quick test_publish_all_regions;
    Alcotest.test_case "lookup returns the closest cluster" `Quick test_lookup_finds_closest;
    Alcotest.test_case "lookup bounded by max_results" `Quick test_lookup_respects_max_results;
    Alcotest.test_case "lookup skips expired entries" `Quick test_lookup_skips_expired;
    Alcotest.test_case "lookup on empty region" `Quick test_lookup_empty_region;
    Alcotest.test_case "condense rate concentrates entries" `Quick test_condense_concentrates_entries;
    Alcotest.test_case "load statistics" `Quick test_update_stats;
    Alcotest.test_case "lookup routes reach the host" `Quick test_lookup_route_reaches_host;
    Alcotest.test_case "rehost after churn" `Quick test_rehost_after_churn;
    Alcotest.test_case "re-publish preserves load stats" `Quick test_republish_preserves_stats;
    Alcotest.test_case "per-shard sweeps partition expiry" `Quick test_shard_sweep_partition;
    QCheck_alcotest.to_alcotest qcheck_sweep_matches_scan_model;
    QCheck_alcotest.to_alcotest qcheck_host_index_consistent;
  ]
