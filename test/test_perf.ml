(* Raw-speed pass regressions: the CSR graph layout against an
   edge-list model, the workspace Dijkstra against a naive reference,
   and experiment-level byte-identity against checked-in metrics-JSON
   fixtures captured before the layout refactor. *)

module Graph = Topology.Graph
module Dijkstra = Topology.Dijkstra
module Waxman = Topology.Waxman
module Rng = Prelude.Rng
module Metrics = Engine.Metrics
module Dpool = Engine.Dpool
module Json = Prelude.Json

(* ---- CSR vs edge-list model ---- *)

(* Random connected multigraph-free edge list, returned alongside the
   graph so properties can compare against the raw model. *)
let random_edges seed n extra =
  let rng = Rng.create seed in
  let edges = ref [] in
  for i = 1 to n - 1 do
    edges := (Rng.int rng i, i, Rng.float_in rng 1.0 20.0) :: !edges
  done;
  let seen = Hashtbl.create 16 in
  List.iter (fun (u, v, _) -> Hashtbl.replace seen (min u v, max u v) ()) !edges;
  let added = ref 0 in
  let attempts = ref 0 in
  while !added < extra && !attempts < extra * 10 do
    incr attempts;
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v && not (Hashtbl.mem seen (min u v, max u v)) then begin
      Hashtbl.replace seen (min u v, max u v) ();
      edges := (u, v, Rng.float_in rng 1.0 20.0) :: !edges;
      incr added
    end
  done;
  !edges

let model_weight edges u v =
  List.find_map
    (fun (a, b, w) -> if (a = u && b = v) || (a = v && b = u) then Some w else None)
    edges

let qcheck_csr_weight_matches_model =
  QCheck.Test.make ~name:"CSR weight agrees with the edge-list model" ~count:100
    QCheck.(pair (int_range 0 10_000) (int_range 2 32))
    (fun (seed, n) ->
      let edges = random_edges seed n n in
      let g = Graph.make n edges in
      (* Every listed edge is found, in both directions. *)
      List.for_all
        (fun (u, v, w) -> Graph.weight g u v = Some w && Graph.weight g v u = Some w)
        edges
      (* And a sample of pairs agrees with the model either way. *)
      && begin
           let rng = Rng.create (seed + 1) in
           let ok = ref true in
           for _ = 1 to 50 do
             let u = Rng.int rng n and v = Rng.int rng n in
             if u <> v && Graph.weight g u v <> model_weight edges u v then ok := false
           done;
           !ok
         end)

let qcheck_csr_neighbors_sorted =
  QCheck.Test.make ~name:"CSR neighbor segments are strictly ascending" ~count:100
    QCheck.(pair (int_range 0 10_000) (int_range 2 32))
    (fun (seed, n) ->
      let g = Graph.make n (random_edges seed n (2 * n)) in
      let ok = ref true in
      for u = 0 to n - 1 do
        let ns = Graph.neighbors g u in
        for i = 1 to Array.length ns - 1 do
          if fst ns.(i - 1) >= fst ns.(i) then ok := false
        done
      done;
      !ok)

let qcheck_csr_edges_roundtrip =
  QCheck.Test.make ~name:"CSR edges round-trip the input edge set" ~count:100
    QCheck.(pair (int_range 0 10_000) (int_range 2 32))
    (fun (seed, n) ->
      let edges = random_edges seed n n in
      let g = Graph.make n edges in
      let norm (u, v, w) = (min u v, max u v, w) in
      List.sort compare (List.map norm (Graph.edges g))
      = List.sort compare (List.map norm edges))

(* ---- Dijkstra over CSR vs a naive reference ---- *)

(* O(n^2) textbook Dijkstra: no heap, no shared scratch.  Settling order
   can differ from the CSR implementation, but every final distance is
   the same minimum over the same [dist.(u) +. w] relaxation candidates,
   so the arrays must match bitwise. *)
let reference_distances g src =
  let n = Graph.node_count g in
  let dist = Array.make n infinity in
  let settled = Array.make n false in
  dist.(src) <- 0.0;
  for _ = 1 to n do
    let u = ref (-1) in
    for i = 0 to n - 1 do
      if (not settled.(i)) && (!u < 0 || dist.(i) < dist.(!u)) then u := i
    done;
    if !u >= 0 && dist.(!u) < infinity then begin
      settled.(!u) <- true;
      Array.iter
        (fun (v, w) ->
          let nd = dist.(!u) +. w in
          if nd < dist.(v) then dist.(v) <- nd)
        (Graph.neighbors g !u)
    end
  done;
  dist

let qcheck_dijkstra_matches_reference_waxman =
  QCheck.Test.make ~name:"Dijkstra over CSR = naive reference on Waxman graphs" ~count:25
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g =
        Waxman.generate (Rng.create seed)
          { Waxman.nodes = 60; alpha = 0.2; beta = 0.1; latency_per_unit = 100.0; min_latency = 0.5 }
      in
      let src = seed mod 60 in
      Dijkstra.distances g src = reference_distances g src)

let qcheck_workspace_reuse_is_pure =
  QCheck.Test.make ~name:"distances_into with a reused workspace = fresh distances" ~count:50
    QCheck.(pair (int_range 0 10_000) (int_range 2 32))
    (fun (seed, n) ->
      let ws = Dijkstra.Workspace.create 1 in
      (* Two different graphs through one workspace, interleaved sources:
         reuse must not leak state between runs. *)
      let g1 = Graph.make n (random_edges seed n n) in
      let g2 = Graph.make (n + 3) (random_edges (seed + 1) (n + 3) n) in
      let ok = ref true in
      let buf = Array.make (n + 3) nan in
      for src = 0 to 2 do
        Dijkstra.distances_into ws g1 (src mod n) buf;
        if Array.sub buf 0 n <> Dijkstra.distances g1 (src mod n) then ok := false;
        Dijkstra.distances_into ws g2 src buf;
        if Array.sub buf 0 (n + 3) <> Dijkstra.distances g2 src then ok := false
      done;
      !ok)

(* ---- experiment-level byte-identity vs pre-refactor fixtures ---- *)

(* The fixtures are `bench --only NAME --scale 16 --json` dumps captured
   before the CSR/flat-oracle/bucket-store refactor.  The raw-speed pass
   is gated on not changing a single metrics byte, so each experiment is
   replayed through the same harness test_domains uses and compared
   byte-for-byte. *)
let experiment_json name =
  Metrics.reset Metrics.global;
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  (match Workload.Registry.find name with
  | Some e -> e.Workload.Registry.run ~scale:16 ppf
  | None -> Alcotest.fail ("unknown experiment " ^ name));
  Format.pp_print_flush ppf ();
  let json = Json.to_string (Metrics.to_json Metrics.global) in
  Metrics.reset Metrics.global;
  json

let with_default_pool ~domains f =
  Dpool.set_default (Some (Dpool.get ~domains));
  Fun.protect ~finally:(fun () -> Dpool.set_default None) f

let read_fixture name =
  let path = Filename.concat "fixtures" ("identity_" ^ name ^ ".json") in
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_fixture_identity name () =
  let expected = read_fixture name in
  let got = with_default_pool ~domains:1 (fun () -> experiment_json name) in
  (* bench/main.exe terminates the dump with a newline. *)
  Alcotest.(check string) (name ^ " metrics JSON is byte-identical") expected (got ^ "\n")

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      qcheck_csr_weight_matches_model;
      qcheck_csr_neighbors_sorted;
      qcheck_csr_edges_roundtrip;
      qcheck_dijkstra_matches_reference_waxman;
      qcheck_workspace_reuse_is_pure;
    ]
  @ List.map
      (fun name ->
        Alcotest.test_case ("fixture identity: " ^ name) `Slow (test_fixture_identity name))
      [ "storm"; "churn"; "cache"; "repair"; "domains" ]
